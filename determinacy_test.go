package determinacy_test

import (
	"io"
	"strings"
	"testing"

	"determinacy"
)

func TestAnalyzeQuickstart(t *testing.T) {
	res, err := determinacy.Analyze(`
		var a = 1 + 2;
		var b = Math.random();
		var c = a * 10;
	`, determinacy.Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFacts() == 0 || res.NumDeterminate() == 0 {
		t.Fatalf("no facts collected: %d/%d", res.NumDeterminate(), res.NumFacts())
	}
	if res.NumDeterminate() >= res.NumFacts() {
		t.Error("Math.random must yield at least one indeterminate fact")
	}
	sawC := false
	for _, f := range res.FactsAtLine(4) {
		if strings.Contains(f.Point, "*") {
			if !f.Determinate || f.Value != "30" {
				t.Errorf("fact for a*10: %+v", f)
			}
			sawC = true
		}
	}
	if !sawC {
		t.Error("no fact for the multiplication at line 4")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := determinacy.Analyze("var x = ;", determinacy.Options{}); err == nil {
		t.Error("syntax error must be reported")
	}
	if _, err := determinacy.Analyze("undefinedFn();", determinacy.Options{}); err == nil {
		t.Error("uncaught exception must be reported")
	}
}

func TestRunMatchesAnalyzeOutput(t *testing.T) {
	src := `
		var parts = [];
		for (var i = 0; i < 3; i++) parts.push("v" + i);
		console.log(parts.join(","));
	`
	var runOut, anaOut strings.Builder
	if _, err := determinacy.Run(src, determinacy.Options{Out: &runOut}); err != nil {
		t.Fatal(err)
	}
	if _, err := determinacy.Analyze(src, determinacy.Options{Out: &anaOut}); err != nil {
		t.Fatal(err)
	}
	if runOut.String() != anaOut.String() {
		t.Errorf("instrumentation changed behaviour: %q vs %q", runOut.String(), anaOut.String())
	}
	if !strings.Contains(runOut.String(), "v0,v1,v2") {
		t.Errorf("unexpected output %q", runOut.String())
	}
}

func TestInputsFlowIndeterminate(t *testing.T) {
	res, err := determinacy.Analyze(`var x = __input("n") + 1;`, determinacy.Options{
		Inputs: map[string]determinacy.Value{"n": determinacy.NumberValue(41)},
		Out:    io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.FactsAtLine(1) {
		if strings.Contains(f.Point, "+") && f.Determinate {
			t.Errorf("input-derived value must be indeterminate: %+v", f)
		}
	}
}

func TestSpecializeEndToEnd(t *testing.T) {
	src := `
		var cfg = {mode: "fast"};
		if (cfg.mode === "fast") { console.log("F"); } else { console.log("S"); }
	`
	res, err := determinacy.Analyze(src, determinacy.Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.Specialize(determinacy.SpecializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Stats.BranchesPruned != 1 {
		t.Errorf("stats: %+v", spec.Stats)
	}
	if strings.Contains(spec.Source, `"S"`) {
		t.Errorf("dead branch survived:\n%s", spec.Source)
	}
	out, err := determinacy.Run(spec.Source, determinacy.Options{})
	if err != nil || !strings.Contains(out, "F") {
		t.Errorf("specialized program misbehaves: %q, %v", out, err)
	}
}

func TestDeadBranchReport(t *testing.T) {
	src := `
		function classify(x) {
			if (typeof x === "string") { return "s"; }
			return "o";
		}
		classify("hello");
		classify(42);
	`
	res, err := determinacy.Analyze(src, determinacy.Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := res.Specialize(determinacy.SpecializeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.DeadBranches) != 2 {
		t.Fatalf("dead branches: %+v, want one per context", spec.DeadBranches)
	}
	var taken, notTaken bool
	for _, db := range spec.DeadBranches {
		if db.Line != 3 {
			t.Errorf("dead branch at line %d, want 3", db.Line)
		}
		if db.Taken {
			taken = true
		} else {
			notTaken = true
		}
	}
	if !taken || !notTaken {
		t.Errorf("expected one live-then and one live-else context: %+v", spec.DeadBranches)
	}
}

func TestPointsToAPI(t *testing.T) {
	rep, err := determinacy.PointsTo(`
		function f() { return 1; }
		f();
		var r = eval("2");
	`, determinacy.PointsToOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BudgetExceeded {
		t.Error("tiny program exceeded the budget")
	}
	if rep.EvalSites != 1 {
		t.Errorf("eval sites = %d, want 1", rep.EvalSites)
	}
	if rep.ReachableFuncs != 2 {
		t.Errorf("reachable funcs = %d, want 2", rep.ReachableFuncs)
	}
}

func TestDOMOptions(t *testing.T) {
	src := `console.log(document.getElementById("main").tagName);`
	out, err := determinacy.Run(src, determinacy.Options{WithDOM: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "DIV" {
		t.Errorf("got %q", out)
	}
	res, err := determinacy.Analyze(src, determinacy.Options{WithDOM: true, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFacts() == 0 {
		t.Error("no facts with DOM")
	}
}

func TestFlushLimitSurfacesAsStopped(t *testing.T) {
	res, err := determinacy.Analyze(`
		var fns = [function(){ return 1; }, function(){ return 2; }];
		for (var i = 0; i < 50; i++) {
			fns[Math.random() < 0.5 ? 0 : 1]();
		}
	`, determinacy.Options{MaxFlushes: 5, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped == nil {
		t.Error("expected the flush limit to stop the analysis")
	}
	if res.NumFacts() == 0 {
		t.Error("facts collected before the stop must be available")
	}
}

func TestAnalyzeRunsMergesSoundly(t *testing.T) {
	// A program whose coverage depends on the random seed: different runs
	// observe different branches, and merged facts stay consistent.
	src := `
		var mode = Math.random() < 0.5;
		var out;
		if (mode) { out = "low"; } else { out = "high"; }
		var stable = 1 + 2;
		var r = eval("stable + 39");
	`
	res, err := determinacy.AnalyzeRuns(src, determinacy.Options{Out: io.Discard}, 1, 2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	sawStable := false
	for _, f := range res.FactsAtLine(5) {
		if strings.Contains(f.Point, "+") {
			if !f.Determinate || f.Value != "3" {
				t.Errorf("stable fact lost in merge: %+v", f)
			}
			sawStable = true
		}
	}
	if !sawStable {
		t.Error("missing merged fact for the stable computation")
	}
	for _, f := range res.FactsAtLine(4) {
		if f.Determinate && (f.Value == `"low"` || f.Value == `"high"`) && strings.Contains(f.Point, "const") {
			// Constants inside branches stay determinate; that is fine. The
			// loaded value of `out` afterwards must not be determinate.
			continue
		}
	}
}

func TestAblationOptionsExposed(t *testing.T) {
	src := `
		var o = {p: 1};
		if (Math.random() > 2) { o.p = 9; }
		var probe = o.p;
	`
	normal, err := determinacy.Analyze(src, determinacy.Options{Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := determinacy.Analyze(src, determinacy.Options{DisableCounterfactual: true, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if normal.Stats.HeapFlushes >= ablated.Stats.HeapFlushes {
		t.Errorf("counterfactual should avoid flushes: %d vs %d",
			normal.Stats.HeapFlushes, ablated.Stats.HeapFlushes)
	}
}
