module determinacy

go 1.22
