// Command detrun runs a mini-JS program under the dynamic determinacy
// analysis and prints the inferred facts.
//
// Usage:
//
//	detrun [-dom] [-detdom] [-seed N] [-det-only] [-stats] [-dump-ir] file.js
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"determinacy"
	"determinacy/internal/ir"
)

func main() {
	var (
		withDOM  = flag.Bool("dom", false, "install the synthetic DOM emulation")
		detDOM   = flag.Bool("detdom", false, "assume a determinate DOM (implies -dom; unsound, §5.1)")
		seed     = flag.Uint64("seed", 0, "PRNG seed for Math.random")
		handlers = flag.Int("handlers", 8, "max DOM event handlers to drive")
		detOnly  = flag.Bool("det-only", false, "print only determinate facts")
		stats    = flag.Bool("stats", false, "print run statistics")
		dumpIR   = flag.Bool("dump-ir", false, "print the lowered IR instead of running")
		flushes  = flag.Int("max-flushes", 1000, "stop after this many heap flushes (0 = unlimited)")
		jsonOut  = flag.Bool("json", false, "emit facts as JSON lines instead of rendered text")
		runs     = flag.Int("runs", 1, "instrumented runs with distinct seeds, merged per the paper's §7")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: detrun [flags] file.js")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *dumpIR {
		mod, err := ir.Compile(flag.Arg(0), string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(mod.String())
		return
	}

	opts := determinacy.Options{
		Seed:             *seed,
		WithDOM:          *withDOM || *detDOM,
		DeterministicDOM: *detDOM,
		RunHandlers:      *handlers,
		MaxFlushes:       *flushes,
		Out:              os.Stdout,
	}
	if *jsonOut {
		// Keep stdout clean for the fact dump.
		opts.Out = os.Stderr
	}
	var res *determinacy.Result
	if *runs > 1 {
		seeds := make([]uint64, *runs)
		for i := range seeds {
			seeds[i] = *seed + uint64(i)
		}
		res, err = determinacy.AnalyzeRuns(string(src), opts, seeds...)
	} else {
		res, err = determinacy.AnalyzeFile(flag.Arg(0), string(src), opts)
	}
	if err != nil {
		fatal(err)
	}
	if res.Stopped != nil {
		fmt.Fprintf(os.Stderr, "note: analysis stopped early: %v\n", res.Stopped)
	}

	if *jsonOut {
		if err := res.Store().Encode(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fs := res.Facts()
	if *detOnly {
		fs = res.DeterminateFacts()
	}
	for _, f := range fs {
		fmt.Println(f)
	}

	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "facts: %d (%d determinate)\n", res.NumFacts(), res.NumDeterminate())
		fmt.Fprintf(os.Stderr, "steps: %d, heap flushes: %d, counterfactuals: %d (aborts %d)\n",
			st.Steps, st.HeapFlushes, st.Counterfacts, st.CFAborts)
		var reasons []string
		for r := range st.FlushReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(os.Stderr, "  flush %-22s %d\n", r, st.FlushReasons[r])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "detrun:", err)
	os.Exit(1)
}
