// Command detrun runs a mini-JS program under the dynamic determinacy
// analysis and prints the inferred facts.
//
// Usage:
//
//	detrun [-dom] [-detdom] [-seed N] [-det-only] [-stats] [-dump-ir]
//	       [-trace out.jsonl] [-trace-format jsonl|chrome] [-metrics -] file.js
//
// Exit codes distinguish analysis outcomes (see -help).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"determinacy"
	"determinacy/internal/cliexit"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/version"
)

func main() {
	var (
		withDOM  = flag.Bool("dom", false, "install the synthetic DOM emulation")
		detDOM   = flag.Bool("detdom", false, "assume a determinate DOM (implies -dom; unsound, §5.1)")
		seed     = flag.Uint64("seed", 0, "PRNG seed for Math.random")
		handlers = flag.Int("handlers", 8, "max DOM event handlers to drive")
		detOnly  = flag.Bool("det-only", false, "print only determinate facts")
		stats    = flag.Bool("stats", false, "print run statistics")
		dumpIR   = flag.Bool("dump-ir", false, "print the lowered IR instead of running")
		flushes  = flag.Int("max-flushes", 1000, "stop after this many heap flushes (0 = unlimited)")
		jsonOut  = flag.Bool("json", false, "emit facts as JSON lines instead of rendered text")
		runs     = flag.Int("runs", 1, "instrumented runs with distinct seeds, merged per the paper's §7")
		traceOut = flag.String("trace", "", `write a pipeline trace to this file ("-" = stdout)`)
		traceFmt = flag.String("trace-format", "jsonl", "trace format: jsonl or chrome (trace_event JSON for Perfetto)")
		metrics  = flag.String("metrics", "", `write Prometheus-style metrics to this file ("-" = stdout)`)
		engine   = flag.String("engine", "bytecode", "execution engine: bytecode or tree (identical output, different speed)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the analysis (0 = none); a timed-out run still prints its sound partial facts")
		factDir  = flag.String("factcache", "", "directory for the on-disk fact DB; warm re-runs of an unchanged program serve byte-identical memoized facts")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: detrun [flags] file.js")
		flag.PrintDefaults()
		fmt.Fprintln(o)
		fmt.Fprintln(o, cliexit.UsageText("detrun"))
	}
	flag.Parse()
	if *showVer {
		fmt.Println("detrun", version.String())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: detrun [flags] file.js")
		flag.Usage()
		os.Exit(cliexit.Usage)
	}
	badFlag := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detrun: "+format+"\n", args...)
		os.Exit(cliexit.Usage)
	}
	if *runs < 1 {
		badFlag("-runs must be at least 1, got %d", *runs)
	}
	if *flushes < 0 {
		badFlag("-max-flushes must be non-negative, got %d", *flushes)
	}
	if *handlers < 0 {
		badFlag("-handlers must be non-negative, got %d", *handlers)
	}
	if *timeout < 0 {
		badFlag("-timeout must be non-negative, got %v", *timeout)
	}
	eng, err := determinacy.ParseEngine(*engine)
	if err != nil {
		badFlag("%v", err)
	}
	src, rerr := os.ReadFile(flag.Arg(0))
	if rerr != nil {
		fatal(rerr)
	}

	if *dumpIR {
		mod, err := ir.Compile(flag.Arg(0), string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(mod.String())
		return
	}

	opts := determinacy.Options{
		Seed:             *seed,
		WithDOM:          *withDOM || *detDOM,
		DeterministicDOM: *detDOM,
		RunHandlers:      *handlers,
		MaxFlushes:       *flushes,
		Out:              os.Stdout,
		Engine:           eng,
	}
	if *jsonOut {
		// Keep stdout clean for the fact dump.
		opts.Out = os.Stderr
	}
	if *factDir != "" {
		fc, err := determinacy.OpenFactCache(*factDir)
		if err != nil {
			fatal(err)
		}
		opts.FactCache = fc
	}

	// Tracing: jsonl streams events as they happen; chrome buffers in memory
	// and is written out after the run.
	var (
		chrome     *obs.ChromeTrace
		jsonl      *obs.JSONLWriter
		closeJSONL func()
	)
	if *traceOut != "" {
		switch *traceFmt {
		case "jsonl":
			w, cl, err := openOut(*traceOut)
			if err != nil {
				fatal(err)
			}
			jsonl, closeJSONL = obs.NewJSONLWriter(w), cl
			opts.Tracer = jsonl
		case "chrome":
			chrome = obs.NewChromeTrace()
			opts.Tracer = chrome
		default:
			fmt.Fprintf(os.Stderr, "detrun: unknown -trace-format %q (want jsonl or chrome)\n", *traceFmt)
			os.Exit(cliexit.Usage)
		}
	}
	finishTrace := func() {
		if chrome != nil {
			w, cl, err := openOut(*traceOut)
			if err != nil {
				fatal(err)
			}
			_, werr := chrome.WriteTo(w)
			cl()
			chrome = nil
			if werr != nil {
				fatal(werr)
			}
		}
		if jsonl != nil {
			werr := jsonl.Err()
			closeJSONL()
			jsonl = nil
			if werr != nil {
				fatal(werr)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		opts.Deadline = time.Now().Add(*timeout)
	}

	var res *determinacy.Result
	if *runs > 1 {
		seeds := make([]uint64, *runs)
		for i := range seeds {
			seeds[i] = *seed + uint64(i)
		}
		res, err = determinacy.AnalyzeRunsContext(ctx, string(src), opts, seeds...)
	} else {
		res, err = determinacy.AnalyzeFileContext(ctx, flag.Arg(0), string(src), opts)
	}
	if err != nil {
		finishTrace()
		fatal(err)
	}
	finishTrace()
	if res.Partial {
		fmt.Fprintf(os.Stderr, "note: partial result (%s): analysis stopped early: %v\n", res.Degraded, res.Stopped)
	}

	if *jsonOut {
		if err := res.Store().Encode(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		fs := res.Facts()
		if *detOnly {
			fs = res.DeterminateFacts()
		}
		for _, f := range fs {
			fmt.Println(f)
		}
	}

	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "facts: %d (%d determinate)\n", res.NumFacts(), res.NumDeterminate())
		fmt.Fprintf(os.Stderr, "steps: %d, heap flushes: %d, counterfactuals: %d (aborts %d)\n",
			st.Steps, st.HeapFlushes, st.Counterfacts, st.CFAborts)
		var reasons []string
		for r := range st.FlushReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(os.Stderr, "  flush %-22s %d\n", r, st.FlushReasons[r])
		}
	}

	if *metrics != "" {
		m := determinacy.NewMetrics()
		res.ExportMetrics(m)
		w, cl, err := openOut(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteProm(w); err != nil {
			fatal(err)
		}
		cl()
	}

	if res.Partial {
		os.Exit(partialExit(res.Degraded))
	}
}

// partialExit maps a degradation reason to its documented exit code; the
// legacy flush-cap and budget codes are preserved, everything else (deadline,
// cancellation) reports the partial-run code.
func partialExit(r determinacy.DegradeReason) int {
	switch r {
	case determinacy.DegradeFlushCap:
		return cliexit.FlushCap
	case determinacy.DegradeBudget:
		return cliexit.Budget
	default:
		return cliexit.Partial
	}
}

// openOut opens path for writing, with "-" meaning stdout (whose returned
// close func is a no-op).
func openOut(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "detrun:", err)
	os.Exit(exitCode(err))
}

// exitCode maps analysis outcome errors to the documented exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, determinacy.ErrFlushLimit):
		return cliexit.FlushCap
	case errors.Is(err, determinacy.ErrBudget):
		return cliexit.Budget
	case errors.Is(err, determinacy.ErrStack):
		return cliexit.Stack
	case errors.Is(err, determinacy.ErrUncaughtException):
		return cliexit.Exception
	default:
		return cliexit.Error
	}
}
