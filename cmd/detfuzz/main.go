// Command detfuzz runs the randomized differential-soundness campaign: it
// generates seeded mini-JS programs, collects determinacy facts from
// instrumented runs, replays concrete executions under random resolutions
// of every indeterminate input cross-checking each fact (Theorem 1), and
// differentially compares the concrete interpreter against the
// instrumented one. Failing programs are shrunk to minimal reproducers.
//
// Usage:
//
//	detfuzz [-seeds N] [-resolutions N] [-base S] [-duration D]
//	        [-workers N] [-json] [-no-reduce]
//
// Exit codes: 0 all programs clean, 2 usage error, 3 at least one oracle
// violation found.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"determinacy/internal/cliexit"
	"determinacy/internal/diffcheck"
	"determinacy/internal/version"
	"determinacy/internal/vm"
)

func main() {
	var (
		seeds       = flag.Int("seeds", 200, "generated programs per round")
		resolutions = flag.Int("resolutions", 8, "concrete replays per program")
		base        = flag.Uint64("base", 1, "first generator seed")
		duration    = flag.Duration("duration", 0, "repeat rounds (advancing seeds) until this much time has passed; 0 = a single round")
		workers     = flag.Int("workers", 0, "concurrent programs (0 = GOMAXPROCS)")
		jsonOut     = flag.Bool("json", false, "write the report as JSON to stdout")
		noReduce    = flag.Bool("no-reduce", false, "skip delta-debugging failing programs")
		engine      = flag.String("engine", "bytecode", "primary execution engine: bytecode or tree (the oracle always cross-checks the other)")
		timeout     = flag.Duration("timeout", 0, "hard wall-clock cap for the campaign (0 = none); unchecked seeds are reported as skipped")
		factDir     = flag.String("factcache", "", "also run the memoization oracle against the fact DB in this directory: every program runs cold and warm and must be byte-identical")
		showVer     = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: detfuzz [flags]")
		flag.PrintDefaults()
		fmt.Fprintln(o)
		fmt.Fprintln(o, cliexit.UsageText("detfuzz"))
	}
	flag.Parse()
	if *showVer {
		fmt.Println("detfuzz", version.String())
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: detfuzz [flags]")
		flag.Usage()
		os.Exit(cliexit.Usage)
	}
	if *seeds <= 0 || *resolutions <= 0 || *workers < 0 {
		fmt.Fprintln(os.Stderr, "detfuzz: -seeds and -resolutions must be positive and -workers non-negative")
		os.Exit(cliexit.Usage)
	}
	if *timeout < 0 {
		fmt.Fprintln(os.Stderr, "detfuzz: -timeout must be non-negative")
		os.Exit(cliexit.Usage)
	}
	eng, engErr := vm.ParseEngine(*engine)
	if engErr != nil {
		fmt.Fprintln(os.Stderr, "detfuzz: "+engErr.Error())
		os.Exit(cliexit.Usage)
	}

	cfg := diffcheck.Config{
		Seeds:        *seeds,
		Resolutions:  *resolutions,
		BaseSeed:     *base,
		Workers:      *workers,
		Reduce:       !*noReduce,
		Engine:       eng,
		FactCacheDir: *factDir,
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	var rep diffcheck.Report
	if *duration > 0 {
		rep = diffcheck.RunFor(cfg, *duration)
	} else {
		rep = diffcheck.Run(cfg)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "detfuzz:", err)
			os.Exit(cliexit.Error)
		}
	} else {
		fmt.Printf("detfuzz: %d programs x %d resolutions, %d determinate fact checks, %d failures (%.1fs)\n",
			rep.Programs, rep.Resolutions, rep.FactsChecked, len(rep.Failures),
			time.Duration(rep.ElapsedMS*int64(time.Millisecond)).Seconds())
		if rep.MemoChecks > 0 {
			fmt.Printf("detfuzz: %d cold/warm memoization checks\n", rep.MemoChecks)
		}
		if rep.Skipped > 0 {
			fmt.Printf("detfuzz: %d seeds skipped (timeout)\n", rep.Skipped)
		}
		for i := range rep.Failures {
			f := &rep.Failures[i]
			fmt.Printf("\n--- failure %d: %s\n", i+1, f.String())
			if f.Minimized != "" {
				fmt.Printf("minimized reproducer:\n%s", f.Minimized)
			} else {
				fmt.Printf("program:\n%s", f.Program)
			}
		}
	}
	if len(rep.Failures) > 0 {
		os.Exit(cliexit.Violation)
	}
}
