// Command detspec specializes a mini-JS program using determinacy facts
// from a dynamic analysis run: branches with determinately-false conditions
// are pruned, dynamic property accesses with determinate names become
// static, loops with determinate bounds unroll, functions are cloned per
// calling context, and (with -eval) determinate eval calls are replaced by
// their parsed code.
//
// Usage:
//
//	detspec [-dom] [-detdom] [-eval] [-stats] file.js > specialized.js
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"determinacy"
	"determinacy/internal/cliexit"
	"determinacy/internal/version"
)

func main() {
	var (
		withDOM    = flag.Bool("dom", false, "install the synthetic DOM emulation")
		detDOM     = flag.Bool("detdom", false, "assume a determinate DOM (implies -dom; unsound, §5.1)")
		seed       = flag.Uint64("seed", 0, "PRNG seed for Math.random")
		elimEval   = flag.Bool("eval", false, "also eliminate determinate eval calls")
		stats      = flag.Bool("stats", false, "print specialization statistics to stderr")
		maxUnroll  = flag.Int("max-unroll", 32, "loop unrolling bound")
		depth      = flag.Int("clone-depth", 4, "context clone nesting bound")
		factsFile  = flag.String("facts", "", "load facts from a detrun -json dump instead of running the dynamic analysis")
		generalize = flag.Bool("generalize", false, "also apply context-insensitive fact projections (§7)")
		metrics    = flag.String("metrics", "", `write Prometheus-style metrics to this file ("-" = stdout)`)
		runs       = flag.Int("runs", 1, "merge facts from this many dynamic runs with consecutive seeds (§7) before specializing")
		workers    = flag.Int("workers", 0, "concurrent dynamic runs when -runs > 1 (0 = GOMAXPROCS, 1 = serial); the merged facts are identical for every setting")
		engine     = flag.String("engine", "bytecode", "execution engine: bytecode or tree (identical output, different speed)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the dynamic analysis (0 = none); a timed-out run still specializes with its sound partial facts and exits 7")
		factDir    = flag.String("factcache", "", "directory for the on-disk fact DB; re-specializing an unchanged program reuses memoized dynamic-analysis facts")
		showVer    = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: detspec [flags] file.js")
		flag.PrintDefaults()
		fmt.Fprintln(o)
		fmt.Fprintln(o, cliexit.UsageText("detspec"))
	}
	flag.Parse()
	if *showVer {
		fmt.Println("detspec", version.String())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: detspec [flags] file.js")
		flag.Usage()
		os.Exit(cliexit.Usage)
	}
	badFlag := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detspec: "+format+"\n", args...)
		os.Exit(cliexit.Usage)
	}
	if *runs < 1 {
		badFlag("-runs must be at least 1, got %d", *runs)
	}
	if *workers < 0 {
		badFlag("-workers must be non-negative, got %d", *workers)
	}
	if *maxUnroll < 0 {
		badFlag("-max-unroll must be non-negative, got %d", *maxUnroll)
	}
	if *depth < 0 {
		badFlag("-clone-depth must be non-negative, got %d", *depth)
	}
	if *timeout < 0 {
		badFlag("-timeout must be non-negative, got %v", *timeout)
	}
	eng, engErr := determinacy.ParseEngine(*engine)
	if engErr != nil {
		badFlag("%v", engErr)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	specOpts := determinacy.SpecializeOptions{
		MaxUnroll:     *maxUnroll,
		MaxCloneDepth: *depth,
		EliminateEval: *elimEval,
		Generalize:    *generalize,
	}
	var spec *determinacy.Specialized
	var res *determinacy.Result
	if *factsFile != "" {
		f, err := os.Open(*factsFile)
		if err != nil {
			fatal(err)
		}
		spec, err = determinacy.SpecializeWithFacts(flag.Arg(0), string(src), f, specOpts)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		opts := determinacy.Options{
			Seed:             *seed,
			WithDOM:          *withDOM || *detDOM,
			DeterministicDOM: *detDOM,
			RunHandlers:      8,
			MaxFlushes:       1000,
			Out:              io.Discard,
			Workers:          *workers,
			Engine:           eng,
		}
		if *factDir != "" {
			fc, err := determinacy.OpenFactCache(*factDir)
			if err != nil {
				fatal(err)
			}
			opts.FactCache = fc
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
			opts.Deadline = time.Now().Add(*timeout)
		}
		if *runs > 1 {
			// §7: facts from runs on different seeds are all sound and merge
			// by union; the runs fan out across the worker pool.
			seeds := make([]uint64, *runs)
			for i := range seeds {
				seeds[i] = *seed + uint64(i)
			}
			res, err = determinacy.AnalyzeRunsContext(ctx, string(src), opts, seeds...)
		} else {
			res, err = determinacy.AnalyzeFileContext(ctx, flag.Arg(0), string(src), opts)
		}
		if err != nil {
			fatal(err)
		}
		if res.Partial {
			// Partial facts are sound, so specializing with them is safe —
			// just potentially less aggressive than a complete run's.
			fmt.Fprintf(os.Stderr, "detspec: warning: dynamic analysis stopped early (%s); specializing with partial facts\n", res.Degraded)
		}
		spec, err = res.Specialize(specOpts)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(spec.Source)

	if *stats {
		s := spec.Stats
		fmt.Fprintf(os.Stderr, "branches pruned:      %d\n", s.BranchesPruned)
		fmt.Fprintf(os.Stderr, "accesses staticized:  %d\n", s.AccessesStaticized)
		fmt.Fprintf(os.Stderr, "loops unrolled:       %d (%d iterations)\n", s.LoopsUnrolled, s.UnrolledIterations)
		fmt.Fprintf(os.Stderr, "clones created:       %d\n", s.ClonesCreated)
		fmt.Fprintf(os.Stderr, "constants folded:     %d\n", s.ConstsFolded)
		if *elimEval {
			fmt.Fprintf(os.Stderr, "evals eliminated:     %d\n", s.EvalsEliminated)
			for _, site := range spec.EvalSites {
				fmt.Fprintf(os.Stderr, "  eval at line %-5d %s\n", site.Line, site.Status)
			}
		}
	}

	if *metrics != "" {
		m := determinacy.NewMetrics()
		if res != nil {
			res.ExportMetrics(m)
		}
		s := spec.Stats
		m.Counter("spec_branches_pruned_total").Add(int64(s.BranchesPruned))
		m.Counter("spec_accesses_staticized_total").Add(int64(s.AccessesStaticized))
		m.Counter("spec_loops_unrolled_total").Add(int64(s.LoopsUnrolled))
		m.Counter("spec_unrolled_iterations_total").Add(int64(s.UnrolledIterations))
		m.Counter("spec_clones_created_total").Add(int64(s.ClonesCreated))
		m.Counter("spec_consts_folded_total").Add(int64(s.ConstsFolded))
		m.Counter("spec_evals_eliminated_total").Add(int64(s.EvalsEliminated))
		// "-" appends the dump to stdout after the specialized program.
		w := os.Stdout
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := m.WriteProm(w); err != nil {
			fatal(err)
		}
	}

	// Flush-cap stops keep exiting 0 (long-standing behavior: the cap is a
	// routine analysis bound); only wall-clock/cancellation stops signal 7.
	if res != nil && (res.Degraded == determinacy.DegradeDeadline || res.Degraded == determinacy.DegradeCancel) {
		os.Exit(cliexit.Partial)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "detspec:", err)
	os.Exit(cliexit.Error)
}
