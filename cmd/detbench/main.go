// Command detbench reproduces the paper's evaluation (§5):
//
//	detbench -table1     Table 1 — pointer-analysis scalability on the
//	                     synthetic jQuery-version workloads, in the three
//	                     configurations Baseline / Spec / Spec+DetDOM.
//	detbench -eval       §5.2 — eval elimination over the 28-program corpus,
//	                     with and without the determinate-DOM assumption.
//	detbench -all        Both.
//
// The -budget flag sets the points-to work budget standing in for the
// paper's 10-minute timeout; -v prints per-benchmark details.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"determinacy/internal/cliexit"
	"determinacy/internal/experiment"
	"determinacy/internal/factcache"
	"determinacy/internal/obs"
	"determinacy/internal/version"
	"determinacy/internal/vm"
)

func main() {
	var (
		table1      = flag.Bool("table1", false, "reproduce Table 1")
		evalst      = flag.Bool("eval", false, "reproduce the §5.2 eval study")
		all         = flag.Bool("all", false, "run everything")
		budget      = flag.Int("budget", 0, "points-to work budget (0 = default)")
		seed        = flag.Uint64("seed", 0, "PRNG seed for the dynamic runs")
		workers     = flag.Int("workers", 0, "concurrent analysis jobs (0 = GOMAXPROCS, 1 = serial); output is byte-identical for every setting")
		metricsJSON = flag.String("metrics-json", "", `also write experiment metrics as JSON to this file ("-" = stdout); EXPERIMENTS.md numbers regenerate from this dump`)
		engine      = flag.String("engine", "bytecode", "execution engine for the dynamic runs: bytecode or tree (identical output, different speed)")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); on expiry remaining cells are skipped and the exit code is 7")
		factDir     = flag.String("factcache", "", "directory for the on-disk fact DB; a warm second invocation serves memoized dynamic runs with byte-identical tables")
		showVer     = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: detbench [-table1 | -eval | -all] [flags]")
		flag.PrintDefaults()
		fmt.Fprintln(o)
		fmt.Fprintln(o, cliexit.UsageText("detbench"))
	}
	flag.Parse()
	if *showVer {
		fmt.Println("detbench", version.String())
		return
	}
	if !*table1 && !*evalst && !*all {
		flag.Usage()
		os.Exit(cliexit.Usage)
	}
	badFlag := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detbench: "+format+"\n", args...)
		os.Exit(cliexit.Usage)
	}
	if *budget < 0 {
		badFlag("-budget must be non-negative, got %d", *budget)
	}
	if *workers < 0 {
		badFlag("-workers must be non-negative, got %d", *workers)
	}
	if *timeout < 0 {
		badFlag("-timeout must be non-negative, got %v", *timeout)
	}
	eng, engErr := vm.ParseEngine(*engine)
	if engErr != nil {
		badFlag("%v", engErr)
	}
	var m *obs.Metrics
	if *metricsJSON != "" {
		m = obs.NewMetrics()
	}
	cfg := experiment.Config{Budget: *budget, Seed: *seed, Workers: *workers, Metrics: m, Engine: eng}
	if *factDir != "" {
		fc, err := factcache.Open(*factDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detbench:", err)
			os.Exit(cliexit.Error)
		}
		cfg.FactCache = fc.WithMetrics(m)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		cfg.Ctx = ctx
		cfg.Deadline = time.Now().Add(*timeout)
	}

	if *table1 || *all {
		fmt.Println("== Table 1: pointer analysis scalability (paper §5.1) ==")
		rows := experiment.RunTable1(cfg)
		fmt.Print(experiment.FormatTable1(rows))
		fmt.Println()
		fmt.Println("propagation work (budget-limited points-to events):")
		for _, r := range rows {
			fmt.Printf("  %-6s baseline=%-8d spec=%-8d spec+detdom=%-8d\n",
				r.Version, r.Baseline.Propagations, r.Spec.Propagations, r.DetDOM.Propagations)
		}
		fmt.Println()
		if m != nil {
			experiment.Table1Metrics(rows, m)
		}
	}

	if *evalst || *all {
		fmt.Println("== §5.2: eliminating calls to eval ==")
		for _, det := range []bool{false, true} {
			s := experiment.RunEvalStudy(det, cfg)
			fmt.Print(experiment.FormatEvalStudy(s))
			fmt.Println()
			if m != nil {
				experiment.EvalStudyMetrics(s, m)
			}
		}
	}

	if m != nil {
		w := os.Stdout
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "detbench:", err)
				os.Exit(cliexit.Error)
			}
			defer f.Close()
			w = f
		}
		if err := m.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "detbench:", err)
			os.Exit(cliexit.Error)
		}
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "detbench: timeout expired; results above cover only the cells that completed")
		os.Exit(cliexit.Partial)
	}
}
