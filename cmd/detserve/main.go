// Command detserve is the analysis service: an HTTP/JSON frontend over
// the dynamic determinacy pipeline, hardened for sustained load.
//
// Endpoints:
//
//	POST /v1/analyze   source + seed + options → facts/stats JSON; a run
//	                   stopped by its deadline answers 200 with sound
//	                   partial facts and a degrade_reason
//	POST /v1/batch     several programs, fanned over the worker pool
//	GET  /metrics      Prometheus text: analysis, pool, cache, and server
//	                   series (in-flight, queue depth, shed/quarantine
//	                   counters, latency histograms)
//	GET  /healthz      liveness + build version
//	GET  /readyz       readiness; 503 while draining or circuit-broken
//	GET  /debug/statusz  flight recorder: last N request summaries
//	                     (JSON, or ?format=text)
//	GET  /debug/tracez   one request's retained trace by ?id=
//	                     (JSONL, or ?format=chrome)
//
// Streaming: POST /v1/analyze?stream=1 answers chunked NDJSON — trace
// events as the run executes, then one terminal result line; ?stream=sse
// uses text/event-stream framing. -debug-addr mounts the debug surface
// plus net/http/pprof on a second (private) listener.
//
// Overload is shed with 429 + Retry-After (bounded admission queue, never
// unbounded buffering). SIGTERM/SIGINT starts a graceful drain: readiness
// flips, in-flight runs get -drain to finish before being force-cancelled
// into sound partials, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"determinacy"
	"determinacy/internal/cliexit"
	"determinacy/internal/cluster"
	"determinacy/internal/obs"
	"determinacy/internal/server"
	"determinacy/internal/server/sched"
	"determinacy/internal/version"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8420", "listen address")
		inflight  = flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth beyond -workers (0 = 2x workers); excess requests are shed with 429")
		maxBody   = flag.Int64("max-body", 4<<20, "request body size limit in bytes")
		timeout   = flag.Duration("timeout", 10*time.Second, "default per-request analysis budget")
		maxTO     = flag.Duration("max-timeout", 30*time.Second, "hard ceiling over client-requested budgets")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT before in-flight runs are sealed partial")
		breaker   = flag.Int("breaker", 5, "consecutive quarantined requests that trip /readyz")
		cacheSize = flag.Int("cache", 0, "compile-cache capacity in programs (0 = default)")
		finalDump = flag.String("final-metrics", "", `write a last Prometheus metrics snapshot here on shutdown ("-" = stderr)`)
		debugAddr = flag.String("debug-addr", "", "if set, serve /debug/statusz, /debug/tracez, /metrics and net/http/pprof on this (private) address")
		flightN   = flag.Int("flight", 0, "flight-recorder capacity in requests (0 = default 512)")
		traceCap  = flag.Int("trace-events", 0, "retained trace events per request (0 = default 4096)")
		engine    = flag.String("engine", "bytecode", "execution engine for analysis requests: bytecode or tree (identical responses, different speed)")
		noTrace   = flag.Bool("no-trace", false, "disable per-request tracing (requests run on the zero-alloc nil-tracer path)")
		factDir   = flag.String("factcache", "", "directory for the on-disk fact DB (L2 under the compile cache); warm re-submissions of an unchanged program serve memoized facts")
		schedPol  = flag.String("scheduler", "fifo", "admission scheduler: fifo (first come first served), wfq (weighted-fair across tenants), or priority (strict interactive > batch > background classes)")
		tenants   = flag.String("tenants", "", `per-tenant scheduling config, JSON or @file: {"pro":{"weight":4,"rate":50},"bulk":{"weight":1,"class":"batch"},"*":{"weight":1}}`)
		heartbeat = flag.Duration("stream-heartbeat", 15*time.Second, "keepalive interval on ?stream= responses (0 = disabled)")
		peers     = flag.String("peers", "", `cluster topology, JSON or @file: {"self":"a","peers":{"a":"http://host-a:8420","b":"http://host-b:8420"}}; requests route to content-hash owners with full local fallback`)
		drainTO   = flag.Duration("drain-timeout", 0, "graceful-drain budget on SIGTERM/SIGINT before in-flight runs are sealed partial (0 = use -drain)")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintln(o, "usage: detserve [flags]")
		flag.PrintDefaults()
		fmt.Fprintln(o)
		fmt.Fprintln(o, cliexit.UsageText("detserve"))
	}
	flag.Parse()
	if *showVer {
		fmt.Println("detserve", version.String())
		return
	}
	badFlag := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "detserve: "+format+"\n", args...)
		os.Exit(cliexit.Usage)
	}
	if flag.NArg() != 0 {
		badFlag("unexpected arguments %v", flag.Args())
	}
	if *inflight < 0 || *queue < 0 || *breaker < 0 || *cacheSize < 0 || *flightN < 0 || *traceCap < 0 {
		badFlag("-workers, -queue, -breaker, -cache, -flight and -trace-events must be non-negative")
	}
	if *maxBody <= 0 {
		badFlag("-max-body must be positive, got %d", *maxBody)
	}
	if *timeout <= 0 || *maxTO <= 0 || *drain <= 0 {
		badFlag("-timeout, -max-timeout and -drain must be positive")
	}
	if *drainTO < 0 {
		badFlag("-drain-timeout must be non-negative, got %v", *drainTO)
	}
	// -drain-timeout is the documented drain knob; -drain is kept for
	// compatibility and supplies the default when -drain-timeout is unset.
	drainBudget := *drainTO
	if drainBudget == 0 {
		drainBudget = *drain
	}
	if *timeout > *maxTO {
		badFlag("-timeout %v exceeds -max-timeout %v", *timeout, *maxTO)
	}
	eng, engErr := determinacy.ParseEngine(*engine)
	if engErr != nil {
		badFlag("%v", engErr)
	}
	if *heartbeat < 0 {
		badFlag("-stream-heartbeat must be non-negative, got %v", *heartbeat)
	}
	policy, polErr := sched.ParsePolicy(*schedPol)
	if polErr != nil {
		badFlag("%v", polErr)
	}
	tenantTable, tErr := sched.ParseTableFlag(*tenants)
	if tErr != nil {
		badFlag("%v", tErr)
	}
	topology, topErr := cluster.ParseTopologyFlag(*peers)
	if topErr != nil {
		badFlag("%v", topErr)
	}
	// Flag 0 disables heartbeats; Config 0 means "default", so map it to
	// the Config's explicit-disable (negative) encoding.
	streamHB := *heartbeat
	if streamHB == 0 {
		streamHB = -1
	}

	m := obs.NewMetrics()
	var router *cluster.Router
	if topology.Enabled() {
		var clErr error
		router, clErr = cluster.New(cluster.Config{Topology: topology, Metrics: m})
		if clErr != nil {
			badFlag("%v", clErr)
		}
	}
	var fc *determinacy.FactCache
	if *factDir != "" {
		var fcErr error
		fc, fcErr = determinacy.OpenFactCache(*factDir)
		if fcErr != nil {
			fmt.Fprintln(os.Stderr, "detserve:", fcErr)
			os.Exit(cliexit.Error)
		}
		fc = fc.WithMetrics(m)
	}
	srv := server.New(server.Config{
		MaxInFlight:      *inflight,
		QueueDepth:       *queue,
		MaxBodyBytes:     *maxBody,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTO,
		BreakerThreshold: *breaker,
		CacheEntries:     *cacheSize,
		Metrics:          m,
		FlightEntries:    *flightN,
		TraceEventCap:    *traceCap,
		DisableTracing:   *noTrace,
		Engine:           eng,
		FactCache:        fc,
		SchedPolicy:      policy,
		Tenants:          tenantTable,
		StreamHeartbeat:  streamHB,
		Cluster:          router,
		DrainTimeout:     drainBudget,
	})
	if router != nil {
		router.Start()
		defer router.Close()
		log.Printf("detserve: cluster node %q with peers %v", router.Self(), router.Peers())
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detserve:", err)
		os.Exit(cliexit.Error)
	}
	log.Printf("detserve %s listening on http://%s", version.String(), ln.Addr())

	// The debug surface — flight recorder, trace dumps, metrics, pprof —
	// lives on its own listener so it never shares exposure with the
	// public API.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.Handle("/debug/", srv.DebugHandler())
		dmux.Handle("/metrics", srv.DebugHandler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detserve:", err)
			os.Exit(cliexit.Error)
		}
		dbgSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		log.Printf("detserve: debug surface on http://%s (statusz, tracez, metrics, pprof)", dln.Addr())
		go func() {
			if err := dbgSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("detserve: debug listener: %v", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "detserve:", err)
		os.Exit(cliexit.Error)
	case sig := <-sigCh:
		log.Printf("detserve: %v: draining (budget %v)", sig, drainBudget)
	}

	// Graceful drain: flip readiness and refuse new work immediately, run
	// the in-flight drain (finish or force-seal-partial at the budget)
	// concurrently with the HTTP shutdown that waits on those responses.
	srv.BeginDrain()
	drained := make(chan bool, 1)
	go func() { drained <- srv.Drain(drainBudget) }()
	shCtx, cancel := context.WithTimeout(context.Background(), drainBudget+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("detserve: shutdown: %v; closing remaining connections", err)
		httpSrv.Close()
	}
	if clean := <-drained; clean {
		log.Printf("detserve: drained clean: all in-flight requests completed")
	} else {
		log.Printf("detserve: drain budget expired: in-flight runs sealed sound partial results")
	}
	if dbgSrv != nil {
		dbgSrv.Close()
	}

	// Flush the metric sink so the final state of the run survives.
	if *finalDump != "" {
		w := os.Stderr
		if *finalDump != "-" {
			f, err := os.Create(*finalDump)
			if err != nil {
				fmt.Fprintln(os.Stderr, "detserve:", err)
				os.Exit(cliexit.Error)
			}
			defer f.Close()
			w = f
		}
		if err := m.WriteProm(w); err != nil {
			fmt.Fprintln(os.Stderr, "detserve:", err)
			os.Exit(cliexit.Error)
		}
	}
	os.Exit(cliexit.OK)
}
