package determinacy_test

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"determinacy"
)

// longSrc is long enough (hundreds of thousands of instrumented steps)
// that cooperative interrupt checkpoints fire many times mid-run.
const longSrc = `
	var acc = 0;
	var i = 0;
	while (i < 50000) { acc = acc + i; i = i + 1; }
	console.log(acc);
`

func TestDeadlineYieldsPartialResult(t *testing.T) {
	// A deadline that expires mid-run: the loop takes on the order of a
	// second, the deadline fires within tens of milliseconds, and the
	// facts recorded before the stop survive.
	res, err := determinacy.Analyze(longSrc, determinacy.Options{
		Out:      io.Discard,
		Deadline: time.Now().Add(20 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("Analyze returned error %v, want a partial result", err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeDeadline {
		t.Fatalf("Partial=%v Degraded=%q, want partial/deadline", res.Partial, res.Degraded)
	}
	if !errors.Is(res.Stopped, determinacy.ErrDeadline) || !errors.Is(res.Stopped, context.DeadlineExceeded) {
		t.Fatalf("Stopped = %v, want ErrDeadline wrapping context.DeadlineExceeded", res.Stopped)
	}
	if res.NumFacts() == 0 {
		t.Error("facts recorded before the deadline must survive")
	}
}

func TestExpiredDeadlineStopsBeforeExecuting(t *testing.T) {
	res, err := determinacy.Analyze(`var x = 1;`, determinacy.Options{
		Out:      io.Discard,
		Deadline: time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatalf("Analyze returned error %v, want a partial result", err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeDeadline {
		t.Fatalf("Partial=%v Degraded=%q, want partial/deadline even on a tiny program", res.Partial, res.Degraded)
	}
}

func TestCancelYieldsPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := determinacy.AnalyzeContext(ctx, longSrc, determinacy.Options{Out: io.Discard})
	if err != nil {
		t.Fatalf("AnalyzeContext returned error %v, want a partial result", err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeCancel {
		t.Fatalf("Partial=%v Degraded=%q, want partial/cancel", res.Partial, res.Degraded)
	}
	if !errors.Is(res.Stopped, context.Canceled) {
		t.Fatalf("Stopped = %v, want wrapped context.Canceled", res.Stopped)
	}
}

func TestBudgetYieldsPartialResult(t *testing.T) {
	res, err := determinacy.Analyze(longSrc, determinacy.Options{Out: io.Discard, MaxSteps: 5000})
	if err != nil {
		t.Fatalf("Analyze returned error %v, want a partial result", err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeBudget {
		t.Fatalf("Partial=%v Degraded=%q, want partial/budget", res.Partial, res.Degraded)
	}
	if !errors.Is(res.Stopped, determinacy.ErrBudget) {
		t.Fatalf("Stopped = %v, want ErrBudget", res.Stopped)
	}
	if res.NumFacts() == 0 {
		t.Error("facts recorded before the budget stop must survive")
	}
}

func TestFlushCapYieldsPartialResult(t *testing.T) {
	res, err := determinacy.Analyze(`
		var fns = [function(){ return 1; }, function(){ return 2; }];
		for (var i = 0; i < 50; i++) {
			fns[Math.random() < 0.5 ? 0 : 1]();
		}
	`, determinacy.Options{MaxFlushes: 5, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeFlushCap {
		t.Fatalf("Partial=%v Degraded=%q, want partial/flush-cap", res.Partial, res.Degraded)
	}
	if !errors.Is(res.Stopped, determinacy.ErrFlushLimit) {
		t.Fatalf("Stopped = %v, want ErrFlushLimit", res.Stopped)
	}
}

func TestAnalyzeRunsMergedPartial(t *testing.T) {
	// All seeds hit the deadline, so every per-seed result is partial and
	// the merge must say so rather than presenting the union as complete.
	res, err := determinacy.AnalyzeRuns(longSrc, determinacy.Options{
		Out:      io.Discard,
		Deadline: time.Now().Add(-time.Second),
		Workers:  2,
	}, 1, 2, 3)
	if err != nil {
		t.Fatalf("AnalyzeRuns returned error %v, want merged partial result", err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeDeadline {
		t.Fatalf("merged Partial=%v Degraded=%q, want partial/deadline", res.Partial, res.Degraded)
	}
}

func TestPointsToContextInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The solver polls its context between propagation rounds; a large
	// strongly-connected flow graph guarantees several rounds.
	rep, err := determinacy.PointsToContext(ctx, longSrc+`
		var f = function(){ return f; };
		var g = f; var h = g; f = h;
	`, time.Time{}, determinacy.PointsToOptions{})
	if err != nil {
		t.Fatalf("PointsToContext: %v", err)
	}
	if !rep.Interrupted {
		t.Fatal("cancelled context did not mark the report Interrupted")
	}
}
