package determinacy_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"determinacy"
	"determinacy/internal/obs"
)

// TestObsPipelineEvents runs the whole pipeline (parse → lower → exec →
// specialize) with a collector attached and checks the event stream has the
// promised shape: phase pairs in order, reasoned heap flushes, balanced
// counterfactual nesting, and fact recording.
func TestObsPipelineEvents(t *testing.T) {
	col := obs.NewCollector(1 << 14)
	res, err := determinacy.Analyze(fig2Bench, determinacy.Options{
		Seed: 2, MuJSLocals: true, Out: io.Discard, Tracer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Specialize(determinacy.SpecializeOptions{}); err != nil {
		t.Fatal(err)
	}

	// Phase begin/end events pair up and nest properly per phase name.
	open := map[string]int{}
	var order []string
	for _, e := range col.Events() {
		switch e.Kind {
		case obs.EvPhaseBegin:
			open[e.Phase]++
			order = append(order, e.Phase)
		case obs.EvPhaseEnd:
			open[e.Phase]--
			if open[e.Phase] < 0 {
				t.Fatalf("phase %q ended before it began", e.Phase)
			}
		}
	}
	for p, n := range open {
		if n != 0 {
			t.Errorf("phase %q left %d unclosed begins", p, n)
		}
	}
	want := []string{"parse", "lower", "exec", "specialize"}
	if len(order) != len(want) {
		t.Fatalf("phases = %v, want %v", order, want)
	}
	for i, p := range want {
		if order[i] != p {
			t.Fatalf("phase order = %v, want %v", order, want)
		}
	}

	if n := col.Count(obs.EvHeapFlush); n == 0 {
		t.Error("expected at least one heap-flush event")
	}
	for _, e := range col.Events() {
		if e.Kind == obs.EvHeapFlush && e.Phase == "" {
			t.Errorf("heap flush without a reason: %+v", e)
		}
	}
	if cf := col.Count(obs.EvCFEnter); cf == 0 || cf != col.Count(obs.EvCFExit) {
		t.Errorf("counterfactual events unbalanced or absent: enter=%d exit=%d",
			cf, col.Count(obs.EvCFExit))
	}
	if col.Count(obs.EvFactRecord) == 0 {
		t.Error("expected fact-record events")
	}
}

// TestObsChromeThroughPipeline feeds the full pipeline into the Chrome
// trace_event sink and validates the finalized JSON.
func TestObsChromeThroughPipeline(t *testing.T) {
	ct := obs.NewChromeTrace()
	if _, err := determinacy.Analyze(fig2Bench, determinacy.Options{
		Seed: 2, MuJSLocals: true, Out: io.Discard, Tracer: ct,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON: %.200s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	sawFlush := false
	for _, rec := range doc.TraceEvents {
		if _, ok := rec["ph"]; !ok {
			t.Fatalf("record without ph: %v", rec)
		}
		if _, ok := rec["ts"]; !ok {
			t.Fatalf("record without ts: %v", rec)
		}
		if name, _ := rec["name"].(string); strings.HasPrefix(name, "flush:") {
			sawFlush = true
		}
	}
	if !sawFlush {
		t.Error("no flush instant in the chrome trace")
	}
}

// TestObsMetricsExport checks Result.ExportMetrics publishes the aggregate
// counters and that the dump is deterministic.
func TestObsMetricsExport(t *testing.T) {
	res, err := determinacy.Analyze(fig2Bench, determinacy.Options{
		Seed: 2, MuJSLocals: true, Out: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	dump := func() string {
		m := determinacy.NewMetrics()
		res.ExportMetrics(m)
		var b bytes.Buffer
		if err := m.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	d1, d2 := dump(), dump()
	if d1 != d2 {
		t.Fatalf("metrics dump not deterministic:\n%s\n---\n%s", d1, d2)
	}
	for _, want := range []string{
		"analysis_steps_total",
		"analysis_heap_flushes_total",
		"analysis_counterfactuals_total",
		"facts_total",
		"facts_determinate_total",
	} {
		if !strings.Contains(d1, want) {
			t.Errorf("metrics dump missing %s:\n%s", want, d1)
		}
	}
}
