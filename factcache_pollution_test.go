// Fault-injection tests for the fact cache's pollution contract: a run
// stopped by an injected panic, cancellation, or deadline expiry at any
// instrumented core site must never populate the fact DB, and a
// subsequent clean cold run followed by a warm run must agree
// byte-for-byte. Sealed partials are sound but truncated, so caching
// them would serve wrong (incomplete) facts to a later complete request.
package determinacy_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"determinacy"
	"determinacy/internal/guard/faultinject"
)

// pollutionSrc runs long enough (a call, an indeterminate branch, and a
// store through an indeterminate base — a guaranteed heap flush — per
// iteration) that plans on every core checkpoint site reliably fire
// mid-run.
const pollutionSrc = `
var obj = {a: 0, b: 1};
var alt = {a: 0, b: 0};
function bump(o, i) { o.a = o.a + i; return o.a; }
var r = Math.random();
var pick;
if (r < 0.5) { pick = obj; } else { pick = alt; }
var i = 0;
while (i < 500) {
  bump(obj, i);
  pick.b = i;
  if (r < 0.5) { obj.b = obj.b + 1; } else { obj.b = obj.b - 1; }
  i = i + 1;
}
console.log(obj.a);
`

// renderResult flattens a run for byte comparison (same shape as the
// diffcheck memo oracle's render).
func renderResult(res *determinacy.Result, out []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "partial=%v degraded=%s handlers=%d\n", res.Partial, res.Degraded, res.HandlersRan)
	fmt.Fprintf(&b, "stats=%+v\n", res.Stats)
	fmt.Fprintf(&b, "out=%q\n", out)
	for _, f := range res.Store().Sorted() {
		fmt.Fprintf(&b, "%d|%s|%d det=%v hits=%d val=%v\n", f.Instr, f.Ctx.Key(), f.Seq, f.Det, f.Hits, f.Val)
	}
	return b.String()
}

func TestFaultedRunsNeverPolluteFactDB(t *testing.T) {
	dir := t.TempDir()
	sites := []string{faultinject.SiteCoreStep, faultinject.SiteCoreFlush, faultinject.SiteCoreCall}
	actions := []faultinject.Action{faultinject.Panic, faultinject.Cancel, faultinject.Expire}
	combo := 0
	for _, site := range sites {
		for _, action := range actions {
			combo++
			// A distinct seed per combination gives each its own cache key,
			// so one combination's state can never mask another's pollution.
			seed := uint64(1000 + combo)
			eng := determinacy.EngineBytecode
			if combo%2 == 1 {
				eng = determinacy.EngineTree
			}
			t.Run(fmt.Sprintf("%s-%s", site, action), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				plan := &faultinject.Plan{Site: site, After: int64(2 + combo), Action: action, OnCancel: cancel}
				faultinject.Arm(plan)
				fc, err := determinacy.OpenFactCache(dir)
				if err != nil {
					faultinject.Disarm()
					t.Fatal(err)
				}
				opts := determinacy.Options{Seed: seed, MaxFlushes: 100000, Engine: eng, FactCache: fc}
				res, runErr := determinacy.AnalyzeContext(ctx, pollutionSrc, opts)
				faultinject.Disarm()
				if !plan.Fired() {
					t.Fatalf("plan never fired (hits %d)", plan.Hits())
				}
				st := fc.Internal().Stats()
				faulted := runErr != nil || (res != nil && res.Partial)
				if faulted && st.Stores != 0 {
					t.Fatalf("faulted run (err=%v partial=%v) populated the fact DB: %+v", runErr, res != nil && res.Partial, st)
				}
				if faulted && st.Skips == 0 {
					t.Fatalf("faulted run recorded no eligibility skip: %+v", st)
				}

				// A clean cold run on the same key must now miss (nothing was
				// cached), complete, and populate; a warm run through a fresh
				// handle on the opposite engine must serve it byte-identically.
				cold, err := determinacy.OpenFactCache(dir)
				if err != nil {
					t.Fatal(err)
				}
				var coldOut bytes.Buffer
				coldOpts := opts
				coldOpts.FactCache, coldOpts.Out = cold, &coldOut
				resC, err := determinacy.Analyze(pollutionSrc, coldOpts)
				if err != nil || resC.Partial {
					t.Fatalf("clean run failed: err=%v partial=%v", err, resC != nil && resC.Partial)
				}
				cst := cold.Internal().Stats()
				if faulted && cst.Hits != 0 {
					t.Fatalf("clean run after a faulted one hit the cache: the faulted run must not have populated it (%+v)", cst)
				}
				if cst.Stores+cst.Hits == 0 {
					t.Fatalf("clean run neither stored nor hit: %+v", cst)
				}
				warm, err := determinacy.OpenFactCache(dir)
				if err != nil {
					t.Fatal(err)
				}
				other := determinacy.EngineTree
				if eng == determinacy.EngineTree {
					other = determinacy.EngineBytecode
				}
				var warmOut bytes.Buffer
				warmOpts := opts
				warmOpts.FactCache, warmOpts.Out, warmOpts.Engine = warm, &warmOut, other
				resW, err := determinacy.Analyze(pollutionSrc, warmOpts)
				if err != nil {
					t.Fatalf("warm run failed: %v", err)
				}
				if got := warm.Internal().Stats(); got.Hits != 1 {
					t.Fatalf("warm run did not hit the cache: %+v", got)
				}
				if c, w := renderResult(resC, coldOut.Bytes()), renderResult(resW, warmOut.Bytes()); c != w {
					t.Fatalf("warm run differs from cold run:\ncold:\n%s\nwarm:\n%s", c, w)
				}
			})
		}
	}
}
