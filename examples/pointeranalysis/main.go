// Pointer analysis improvement: the paper's Figure 3 Rectangle program
// defines accessors through computed property names. A baseline 0-CFA
// smears the dynamic writes over every property, so r.getWidth() resolves
// to getters, setters and toString alike. Determinacy facts let the
// specializer unroll the definition loop and staticize the writes, after
// which the same analysis resolves the call precisely (§2.2).
package main

import (
	"fmt"
	"io"
	"log"

	"determinacy"
)

const figure3 = `
function Rectangle(w, h) {
	this.width = w;
	this.height = h;
}
Rectangle.prototype.toString = function() {
	return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
	return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
	Rectangle.prototype["get" + prop.cap()] =
		function() { return this[prop]; };
	Rectangle.prototype["set" + prop.cap()] =
		function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++)
	defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
alert(r.toString());
`

func main() {
	base, err := determinacy.PointsTo(figure3, determinacy.PointsToOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline 0-CFA:    worst call site resolves to %d callees (%d propagation events)\n",
		base.MaxCallees, base.Propagations)

	res, err := determinacy.Analyze(figure3, determinacy.Options{Out: io.Discard})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := res.Specialize(determinacy.SpecializeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialization:    loop unrolled %dx, %d accesses staticized, %d clones\n",
		spec.Stats.UnrolledIterations, spec.Stats.AccessesStaticized, spec.Stats.ClonesCreated)

	after, err := determinacy.PointsTo(spec.Source, determinacy.PointsToOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized 0-CFA: worst call site resolves to %d callees (%d propagation events)\n",
		after.MaxCallees, after.Propagations)

	fmt.Println()
	fmt.Println("specialized program:")
	fmt.Println(spec.Source)

	out, err := determinacy.Run(spec.Source, determinacy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized program still prints: %s", out)
}
