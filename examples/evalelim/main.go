// Eval elimination: the paper's Figure 4 program (extracted by Jensen et
// al. from a real website) builds its eval argument by string
// concatenation, which a purely syntactic rewriter cannot resolve. The
// dynamic analysis shows both arguments determinate under their call
// sites, so the specializer clones showIvyViaJs per context and replaces
// each eval with the parsed expression (§2.3).
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"determinacy"
)

const figure4 = `
var ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("tcck banner"); };
function showIvyViaJs(locationId) {
	var _f = undefined;
	var _fconv = "ivymap['" + locationId + "']";
	try {
		_f = eval(_fconv);
		if (_f != undefined) {
			_f();
		}
	} catch(e) {
	}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
`

func main() {
	res, err := determinacy.Analyze(figure4, determinacy.Options{
		WithDOM: true,
		Out:     os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The facts the paper lists: [[_fconv]] under each call site.
	fmt.Println("facts for _fconv at the eval line, per calling context:")
	for _, f := range res.FactsAtLine(8) {
		if strings.Contains(f.Point, "_fconv") {
			fmt.Println(" ", f)
		}
	}

	spec, err := res.Specialize(determinacy.SpecializeOptions{EliminateEval: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevals eliminated: %d\n", spec.Stats.EvalsEliminated)
	for _, s := range spec.EvalSites {
		fmt.Printf("  eval at line %d: %s\n", s.Line, s.Status)
	}

	fmt.Println("\neval-free program:")
	fmt.Println(spec.Source)

	after, err := determinacy.PointsTo(spec.Source, determinacy.PointsToOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statically reachable eval sites after specialization: %d\n", after.EvalSites)
}
