// Polymorphic dispatch: the paper's Figure 1 jQuery-style $ function
// behaves differently per argument type. Individual call sites are
// monomorphic, so under each call site's context the typeof conditions are
// determinate — a client can prune the dead branches per specialized
// clone, gaining flow sensitivity (§2.1). This example runs the dynamic
// analysis and shows both the context-qualified condition facts and the
// specialized program with per-call-site clones of $.
package main

import (
	"fmt"
	"io"
	"log"
	"strings"

	"determinacy"
)

const figure1 = `
function isHTML(s) { return s.charAt(0) === "<"; }
function parseHTML(s) { return {kind: "dom", src: s}; }
function queryCSS(s) { return {kind: "css", sel: s}; }
var readyHandlers = [];

function $(selector) {
	if (typeof selector === "string") {
		if (isHTML(selector)) {
			return parseHTML(selector);
		} else {
			return queryCSS(selector);
		}
	} else if (typeof selector === "function") {
		readyHandlers.push(selector);
		return readyHandlers;
	} else {
		return [selector];
	}
}

var a = $("div.item");             // string, CSS path
var b = $(function() { return 1; }); // function, handler path
var c = $(42);                     // fallback path
`

func main() {
	res, err := determinacy.Analyze(figure1, determinacy.Options{Out: io.Discard})
	if err != nil {
		log.Fatal(err)
	}

	// The typeof-comparison conditions inside $ (lines 8 and 13) are
	// indeterminate in general but determinate under each call site.
	fmt.Println("context-qualified condition facts inside $:")
	for _, line := range []int{8, 13} {
		for _, f := range res.FactsAtLine(line) {
			if strings.Contains(f.Point, "===") {
				fmt.Println(" ", f)
			}
		}
	}

	spec, err := res.Specialize(determinacy.SpecializeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("specialization: %d clones of $, %d branches pruned\n",
		spec.Stats.ClonesCreated, spec.Stats.BranchesPruned)
	fmt.Println("dead-code report (per context):")
	for _, db := range spec.DeadBranches {
		arm := "else-arm"
		if !db.Taken {
			arm = "then-arm"
		}
		fmt.Printf("  conditional at line %d under ctx %q: %s is dead\n", db.Line, db.Context, arm)
	}
	fmt.Println()
	fmt.Println("specialized program:")
	fmt.Println(spec.Source)

	// The specialized program must behave identically.
	orig, err := determinacy.Run(figure1+"\nconsole.log(a.kind, b.length, c.length);", determinacy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	specOut, err := determinacy.Run(spec.Source+"\nconsole.log(a.kind, b.length, c.length);", determinacy.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("behaviour check: original %q == specialized %q -> %v\n",
		strings.TrimSpace(orig), strings.TrimSpace(specOut), orig == specOut)
}
