// Quickstart: run the paper's Figure 2 program under the dynamic
// determinacy analysis and print the key facts the paper derives —
// ⟦x.f⟧ = 23, ⟦y.f⟧ = ?, context-qualified branch conditions, the
// post-branch marking of y.g, the heap flush at the indeterminate call,
// and the counterfactual treatment of z.g.
package main

import (
	"fmt"
	"log"
	"os"

	"determinacy"
)

// figure2 is the paper's Figure 2 program with probe reads at the points
// whose facts the paper discusses in comments.
const figure2 = `(function() {
function checkf(p) {
	if (p.f < 32)
		setg(p, 42);
}
function setg(r, v) {
	r.g = v;
}
var x = { f : 23 },
	y = { f : Math.random()*100 };
var probe_xf = x.f;       // paper line 14: [[x.f]] = 23
var probe_yf = y.f;       //               [[y.f]] = ?
checkf(x);
var probe_xg = x.g;       // paper line 17: [[x.g]] = 42
checkf(y);
var probe_yg = y.g;       // paper line 19: [[y.g]] = ? (post-branch marking)
(y.f > 50 ? checkf : setg)(x, 72);
var probe_xg2 = x.g;      // paper line 22: [[x.g]] = ? (heap flush)
var z = { f: x.g - 16, h: true };
checkf(z);
var probe_zg = z.g;       // [[z.g]] = ? (counterfactual execution)
var probe_zh = z.h;       // [[z.h]] = true (untouched by the counterfactual)
})();`

func main() {
	res, err := determinacy.Analyze(figure2, determinacy.Options{
		Seed: 2, // a seed for which Math.random()*100 < 32, as in the paper
		Out:  os.Stdout,
		// The paper's Figure 2 narrative uses the µJS treatment of locals.
		MuJSLocals: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("facts at the probe lines (lines 11-12, 14, 16, 18, 20-21):")
	for _, line := range []int{11, 12, 14, 16, 18, 20, 21} {
		for _, f := range res.FactsAtLine(line) {
			fmt.Println(" ", f)
		}
	}

	fmt.Println()
	fmt.Printf("run summary: %d facts (%d determinate), %d heap flushes, %d counterfactual executions\n",
		res.NumFacts(), res.NumDeterminate(), res.Stats.HeapFlushes, res.Stats.Counterfacts)
	for reason, n := range res.Stats.FlushReasons {
		fmt.Printf("  flush reason %-20s %d\n", reason, n)
	}
}
