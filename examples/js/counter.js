// A small mixed-determinacy workload for the detserve CI smoke test: a
// determinate accumulator loop, a function called in several contexts,
// and one indeterminate branch that forces a heap flush mid-run.
var total = { sum: 0, checks: 0 };
function add(t, v) { t.sum = t.sum + v; return t.sum; }
var noise = Math.random();
var i = 0;
while (i < 200) {
  add(total, i);
  if (i % 50 == 0) {
    total.checks = total.checks + 1;
    if (noise < 0.5) { total.bias = 1; } else { total.bias = -1; }
  }
  i = i + 1;
}
var probe_sum = total.sum;       // determinate: 19900
var probe_checks = total.checks; // determinate: 4
var probe_bias = total.bias;     // indeterminate: depends on the PRNG
console.log(probe_sum);
