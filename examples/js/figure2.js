// The paper's Figure 2 program (PLDI 2013, "Dynamic Determinacy
// Analysis"), with probe reads at the points whose facts the paper
// discusses. Used by examples/quickstart and by the detserve CI smoke
// test, which analyzes it over HTTP.
(function() {
function checkf(p) {
	if (p.f < 32)
		setg(p, 42);
}
function setg(r, v) {
	r.g = v;
}
var x = { f : 23 },
	y = { f : Math.random()*100 };
var probe_xf = x.f;       // [[x.f]] = 23 (determinate)
var probe_yf = y.f;       // [[y.f]] = ?  (random input)
checkf(x);
var probe_xg = x.g;       // [[x.g]] = 42
checkf(y);
var probe_yg = y.g;       // [[y.g]] = ?  (post-branch marking)
(y.f > 50 ? checkf : setg)(x, 72);
var probe_xg2 = x.g;      // [[x.g]] = ?  (heap flush at indeterminate call)
var z = { f: x.g - 16, h: true };
checkf(z);
var probe_zg = z.g;       // [[z.g]] = ?  (counterfactual execution)
var probe_zh = z.h;       // [[z.h]] = true (untouched by the counterfactual)
})();
