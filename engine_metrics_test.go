// Deterministic-series tests for engine-counter publication. vm_ic_hits /
// vm_ic_misses publication is delta-based: a run publishes at the end of
// the main script, again after the DOM handler phase, and again at a
// partial seal, and each cache probe must land in the registry exactly
// once — including when one registry is shared across many runs and both
// engines, the detbench -all configuration that used to double-count.
package determinacy_test

import (
	"io"
	"testing"

	"determinacy"
)

const icSeriesSrc = `
var o = {f: 1};
var s = 0;
var i = 0;
while (i < 200) { s = s + o.f; o.f = s; i = i + 1; }
document.addEventListener("DOMContentLoaded", function(ev) {
  var j = 0;
  while (j < 50) { s = s + o.f; o.f = s; j = j + 1; }
});
console.log(s);
`

func TestEngineMetricsDeltaPublishing(t *testing.T) {
	run := func(m *determinacy.Metrics, eng determinacy.Engine, handlers int) {
		t.Helper()
		res, err := determinacy.Analyze(icSeriesSrc, determinacy.Options{
			WithDOM: true, RunHandlers: handlers, Out: io.Discard, Engine: eng, Metrics: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		if handlers > 0 && res.HandlersRan == 0 {
			t.Fatal("no DOM handlers ran; the handler-phase assertion below would be vacuous")
		}
	}
	counters := func(m *determinacy.Metrics) (int64, int64) {
		return m.Counter("vm_ic_hits").Value(), m.Counter("vm_ic_misses").Value()
	}

	m1 := determinacy.NewMetrics()
	run(m1, determinacy.EngineBytecode, 4)
	hits, misses := counters(m1)
	if hits == 0 || misses == 0 {
		t.Fatalf("bytecode run published hits=%d misses=%d, want both non-zero", hits, misses)
	}

	// Same workload into a fresh registry: the series must be identical.
	m2 := determinacy.NewMetrics()
	run(m2, determinacy.EngineBytecode, 4)
	if h2, s2 := counters(m2); h2 != hits || s2 != misses {
		t.Errorf("second run published hits=%d misses=%d, want the identical series %d/%d", h2, s2, hits, misses)
	}

	// Handler-phase cache probes must be included: dropping the handler
	// phase must strictly reduce the hit count.
	mNoH := determinacy.NewMetrics()
	run(mNoH, determinacy.EngineBytecode, 0)
	if hNoH, _ := counters(mNoH); hNoH >= hits {
		t.Errorf("run without handlers published %d hits, want fewer than the %d of the handler run", hNoH, hits)
	}

	// Repeated runs sharing one registry: exact doubling, not the
	// re-publication inflation the detbench -all path used to show.
	shared := determinacy.NewMetrics()
	run(shared, determinacy.EngineBytecode, 4)
	run(shared, determinacy.EngineBytecode, 4)
	if hS, sS := counters(shared); hS != 2*hits || sS != 2*misses {
		t.Errorf("two shared-registry runs published hits=%d misses=%d, want exactly %d/%d", hS, sS, 2*hits, 2*misses)
	}

	// The tree engine has no caches: interleaving it on the same shared
	// registry must add exactly zero to both series.
	run(shared, determinacy.EngineTree, 4)
	if hS, sS := counters(shared); hS != 2*hits || sS != 2*misses {
		t.Errorf("tree run changed the shared series to hits=%d misses=%d", hS, sS)
	}
}
