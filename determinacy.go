// Package determinacy is a Go implementation of dynamic determinacy
// analysis for a JavaScript subset (mini-JS), reproducing "Dynamic
// Determinacy Analysis" (Schäfer, Sridharan, Dolby, Tip — PLDI 2013).
//
// The analysis instruments a single program execution and infers
// determinacy facts — statements of the form ⟦e⟧ c = v meaning the
// expression at program point e has value v under calling context c in
// *every* execution. Facts drive two clients: specializing a static
// points-to analysis (branch pruning, staticizing dynamic property
// accesses, loop unrolling, context cloning) and eliminating eval calls.
//
// Quick start:
//
//	result, err := determinacy.Analyze(src, determinacy.Options{})
//	for _, f := range result.Facts() {
//	    fmt.Println(f)
//	}
//	spec, err := result.Specialize(determinacy.SpecializeOptions{})
//	fmt.Println(spec.Source)
//
// The runnable programs under examples/ and the experiment harness in
// cmd/detbench exercise the full pipeline; DESIGN.md maps every paper
// artifact to its implementation.
package determinacy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"determinacy/internal/ast"
	"determinacy/internal/batch"
	"determinacy/internal/batch/progcache"
	"determinacy/internal/core"
	"determinacy/internal/dom"
	"determinacy/internal/factcache"
	"determinacy/internal/facts"
	"determinacy/internal/guard"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/parser"
	"determinacy/internal/pointsto"
	"determinacy/internal/specialize"
	"determinacy/internal/vm"
)

// Engine selects the execution engine for both the instrumented analysis
// and the concrete interpreter. The engines are semantically
// indistinguishable — identical facts, statistics, output and step counts
// — and differ only in dispatch cost.
type Engine = vm.Engine

const (
	// EngineDefault resolves to the bytecode engine.
	EngineDefault = vm.EngineDefault
	// EngineTree selects the reference tree-walking engine.
	EngineTree = vm.EngineTree
	// EngineBytecode selects the compiled bytecode engine with inline
	// caches (the default).
	EngineBytecode = vm.EngineBytecode
)

// ParseEngine parses an engine name ("tree", "bytecode", or "" for the
// default) as used by the CLI -engine flags.
func ParseEngine(s string) (Engine, error) { return vm.ParseEngine(s) }

// Observability aliases, so embedders configure tracing without importing
// the internal package path directly.
type (
	// Tracer receives the pipeline's typed event stream; see internal/obs
	// for the event taxonomy and the built-in sinks.
	Tracer = obs.Tracer
	// TraceEvent is one trace record.
	TraceEvent = obs.Event
	// Metrics is a registry of named counters/gauges/histograms.
	Metrics = obs.Metrics
)

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// Analysis outcome errors, re-exported so CLI frontends can map them to
// distinct exit codes. All of them support errors.Is/errors.As through
// every public entry point, including batch (AnalyzeRuns) result slots.
var (
	// ErrFlushLimit reports that the analysis stopped at the heap-flush
	// cap; facts collected before the stop remain sound.
	ErrFlushLimit = core.ErrFlushLimit
	// ErrBudget reports that the instrumented execution exhausted its step
	// budget.
	ErrBudget = core.ErrBudget
	// ErrStack reports instrumented call-stack overflow.
	ErrStack = core.ErrStack
	// ErrDeadline reports that a wall-clock deadline expired mid-run; it
	// wraps context.DeadlineExceeded.
	ErrDeadline = guard.ErrDeadline
	// ErrParseDepth reports that the parser hit its nesting-depth cap.
	ErrParseDepth = parser.ErrDepth
	// ErrUncaughtException reports that the analyzed program threw an
	// exception that nothing caught.
	ErrUncaughtException = errors.New("determinacy: uncaught exception in analyzed program")
)

// RunError is the structured record of a panic recovered at a run
// boundary: phase, program point, and the recovered value with its stack.
// Extract one from any analysis error with errors.As.
type RunError = guard.RunError

// DegradeReason classifies why a run returned a partial result.
type DegradeReason = guard.DegradeReason

// Degradation reasons reported in Result.Degraded.
const (
	DegradeNone     = guard.DegradeNone
	DegradeBudget   = guard.DegradeBudget
	DegradeFlushCap = guard.DegradeFlushCap
	DegradeDeadline = guard.DegradeDeadline
	DegradeCancel   = guard.DegradeCancel
)

// Options configures a dynamic determinacy analysis run.
type Options struct {
	// Seed drives Math.random (an indeterminate source; the seed only
	// selects the concrete witness execution).
	Seed uint64
	// Now backs Date.now (indeterminate source).
	Now float64
	// Inputs backs the __input(name) native (indeterminate sources).
	Inputs map[string]Value
	// Out receives console.log output; nil discards it.
	Out io.Writer
	// WithDOM installs the synthetic DOM emulation (document, window,
	// navigator, timers). DeterministicDOM additionally applies the paper's
	// Spec+DetDOM assumption (§5.1): DOM reads are determinate.
	WithDOM          bool
	DeterministicDOM bool
	// RunHandlers drives up to this many registered DOM event handlers
	// after the main script (each entry flushes the heap, §4).
	RunHandlers int
	// MaxCounterfactualDepth is the cut-off k for nested counterfactual
	// executions (0 = default 4).
	MaxCounterfactualDepth int
	// MaxFlushes stops the analysis after this many heap flushes
	// (0 = unlimited; the paper uses 1000). Facts gathered before the stop
	// remain sound.
	MaxFlushes int
	// MaxSteps bounds the executed instruction count (0 = default).
	MaxSteps int
	// Deadline stops the run when the wall clock passes it (zero = none).
	// The interpreter checks it every few thousand steps; a run stopped by
	// the deadline returns a partial Result (Degraded = DegradeDeadline)
	// whose facts are sound. Combine with the Context entry points
	// (AnalyzeContext etc.) for cancellation.
	Deadline time.Time

	// Engine selects the execution engine (EngineBytecode when zero); both
	// engines produce byte-identical results. See the README's Engines
	// section.
	Engine Engine

	// Metrics, when non-nil, receives engine counters (vm_ic_hits,
	// vm_ic_misses) in addition to whatever the embedder records in it.
	Metrics *Metrics

	// Ablations (see DESIGN.md): disable counterfactual execution,
	// information-flow-style immediate tainting, µJS-faithful locals.
	DisableCounterfactual bool
	ImmediateTaint        bool
	MuJSLocals            bool

	// Tracer observes the whole pipeline: phase begin/end (parse, lower,
	// exec, handlers, specialize), heap/env flushes with reasons,
	// counterfactual nesting, taint spread, fact recording and eval
	// encounters. nil disables tracing with near-zero overhead.
	Tracer Tracer

	// Workers bounds how many instrumented runs AnalyzeRuns executes
	// concurrently (0 = GOMAXPROCS, 1 = strictly serial). Per-seed results
	// are merged in seed submission order, so the merged facts and
	// statistics are identical for every setting; see internal/batch.
	Workers int

	// FactCache, when non-nil, memoizes completed analyses at function
	// granularity in an on-disk fact database — the L2 cache under the
	// compile cache: a re-submitted (source, options) pair is served from
	// cached facts without re-executing, byte-identical to a fresh run.
	// Partial, degraded, errored, or eval-containing runs never populate
	// it. The engine is not part of the cache key (both engines are
	// byte-identical by contract), so warm hits serve across engines. See
	// the README's Caching section and internal/factcache.
	FactCache *FactCache
}

// Value is a concrete input value for Options.Inputs.
type Value = interp.Value

// Convenience constructors for input values.
var (
	NumberValue = interp.NumberVal
	StringValue = interp.StringVal
	BoolValue   = interp.BoolVal
)

// Fact is one determinacy fact, rendered for consumption.
type Fact struct {
	// Line and Col locate the program point in the source.
	Line, Col int
	// Point describes the instruction at the program point.
	Point string
	// Context renders the qualifying call stack (site lines with
	// occurrence indices), empty for top-level facts.
	Context string
	// Determinate reports ⟦e⟧c = v (true) versus ⟦e⟧c = ? (false).
	Determinate bool
	// Value renders v for determinate facts (and the concretely observed
	// value otherwise).
	Value string
}

func (f Fact) String() string {
	ctx := f.Context
	if ctx == "" {
		ctx = "·"
	}
	v := f.Value
	if !f.Determinate {
		v = "?"
	}
	return fmt.Sprintf("[[ %s @%d:%d ]] %s = %s", f.Point, f.Line, f.Col, ctx, v)
}

// Result holds the outcome of an analysis run.
type Result struct {
	prog  *ast.Program
	mod   *ir.Module
	store *facts.Store
	// staticInstrs is the instruction count before execution; program
	// points at or beyond it belong to runtime-lowered eval code.
	staticInstrs int
	// tracer carries the run's tracer forward so client phases
	// (Specialize) join the same event stream.
	tracer obs.Tracer

	// Stats summarizes the run: heap flushes by reason, counterfactual
	// executions and aborts, executed steps.
	Stats core.Stats
	// Stopped is non-nil when the analysis stopped early (flush cap, step
	// budget, deadline, or cancellation); the collected facts are still
	// sound. Partial and Degraded say why in structured form.
	Stopped error
	// Partial reports that the run stopped before completing: the facts
	// reflect only the executed prefix but every one of them is sound (the
	// analysis flushes conservatively at the stop point, §4.3).
	Partial bool
	// Degraded classifies a partial run: DegradeBudget, DegradeFlushCap,
	// DegradeDeadline, or DegradeCancel (DegradeNone for complete runs).
	Degraded DegradeReason
	// HandlersRan counts DOM event handlers driven after the main script.
	HandlersRan int
}

// Analyze parses src, runs it under the instrumented semantics and collects
// determinacy facts.
func Analyze(src string, opts Options) (*Result, error) {
	return AnalyzeFile("program.js", src, opts)
}

// AnalyzeContext is Analyze with cooperative cancellation: when ctx is
// cancelled mid-run the analysis stops at the next checkpoint and returns
// a partial Result (Degraded = DegradeCancel) whose facts are sound.
func AnalyzeContext(ctx context.Context, src string, opts Options) (*Result, error) {
	return AnalyzeFileContext(ctx, "program.js", src, opts)
}

// AnalyzeFile is Analyze with an explicit display name for diagnostics.
func AnalyzeFile(name, src string, opts Options) (*Result, error) {
	return AnalyzeFileContext(context.Background(), name, src, opts)
}

// AnalyzeFileContext is AnalyzeFile with cooperative cancellation.
func AnalyzeFileContext(ctx context.Context, name, src string, opts Options) (*Result, error) {
	tr := opts.Tracer
	endParse := obs.PhaseScope(tr, "parse")
	prog, err := parser.Parse(name, src)
	endParse()
	if err != nil {
		return nil, err
	}
	endLower := obs.PhaseScope(tr, "lower")
	mod, err := ir.Lower(prog)
	endLower()
	if err != nil {
		return nil, err
	}
	return analyzeLowered(ctx, prog, mod, opts)
}

// degradeReason classifies an execution stop as a graceful degradation.
// DegradeNone means the error is a genuine failure, not a resource stop.
func degradeReason(err error) DegradeReason {
	switch {
	case err == nil:
		return DegradeNone
	case errors.Is(err, core.ErrFlushLimit):
		return DegradeFlushCap
	case errors.Is(err, core.ErrBudget):
		return DegradeBudget
	default:
		return guard.ContextReason(err)
	}
}

// degrade finalizes a partial run: conservatively seals the fact store
// (final flush, §4.3), records why, and emits a guard trace event. The
// returned Result is usable — its facts are sound for the executed prefix.
func degrade(res *Result, a *core.Analysis, runErr error, reason DegradeReason) (*Result, error) {
	a.SealPartial()
	res.Partial = true
	res.Degraded = reason
	res.Stopped = runErr
	res.Stats = a.Stats()
	if res.tracer != nil {
		res.tracer.Event(obs.Event{Kind: obs.EvGuard, Phase: "degrade", Detail: string(reason)})
	}
	return res, nil
}

// FactCache is the public handle on an on-disk function-level fact
// database (internal/factcache) — the L2 cache under the compile cache.
// One FactCache is safe to share across concurrent analyses and across
// engines; see Options.FactCache for the memoization contract.
type FactCache struct{ c *factcache.Cache }

// OpenFactCache creates or opens the fact database rooted at dir.
func OpenFactCache(dir string) (*FactCache, error) {
	c, err := factcache.Open(dir)
	if err != nil {
		return nil, err
	}
	return &FactCache{c: c}, nil
}

// WithMetrics attaches a metrics registry; the cache then maintains
// factcache_* hit/miss/join/invalidation series live. Returns the cache
// for chaining.
func (f *FactCache) WithMetrics(m *Metrics) *FactCache {
	f.c.WithMetrics(m)
	return f
}

// Internal exposes the underlying cache for in-module embedders (the
// experiment harness, the diffcheck memo oracle).
func (f *FactCache) Internal() *factcache.Cache { return f.c }

// factSig canonicalizes the fact-shaping options into a cache signature.
func factSig(opts Options) factcache.Sig {
	sig := factcache.Sig{
		Seed:                  opts.Seed,
		NowBits:               factcache.NumSigBits(opts.Now),
		WithDOM:               opts.WithDOM,
		DetDOM:                opts.DeterministicDOM,
		RunHandlers:           opts.RunHandlers,
		MaxCFDepth:            opts.MaxCounterfactualDepth,
		MaxFlushes:            opts.MaxFlushes,
		MaxSteps:              opts.MaxSteps,
		DisableCounterfactual: opts.DisableCounterfactual,
		ImmediateTaint:        opts.ImmediateTaint,
		MuJSLocals:            opts.MuJSLocals,
	}
	for name, v := range opts.Inputs {
		sig.Inputs = append(sig.Inputs, factcache.InputSig{
			Name: name, Kind: int(v.Kind),
			NumBits: factcache.NumSigBits(v.N), Str: v.S, Bool: v.B,
		})
	}
	return sig
}

// captureWriter tees console output for caching, bounded so a printing
// loop can't balloon the fact DB; overflowing runs simply aren't cached.
type captureWriter struct {
	b        []byte
	overflow bool
}

func (w *captureWriter) Write(p []byte) (int, error) {
	if len(w.b)+len(p) > factcache.MaxOutputBytes {
		w.overflow = true
	} else {
		w.b = append(w.b, p...)
	}
	return len(p), nil
}

// memoState carries one analyzeLowered call's fact-cache context.
type memoState struct {
	fc  *factcache.Cache
	key factcache.Key
	rec *factcache.Recorder
	out *captureWriter
}

// skip records a non-cacheable outcome, tolerating absent memoization.
func (m *memoState) skip(reason string) {
	if m != nil {
		m.fc.Skip(reason)
	}
}

// analyzeLowered runs the instrumented semantics over an already-compiled
// program. The module is mutated during the run (eval'd code lowers into
// it), so callers sharing a cached compile must pass a fresh Clone.
//
// With Options.FactCache set, a completed run is memoized and an exact
// re-submission is served from the cache: the fact store is stitched from
// per-function chunks through the ordinary Store.Record path, and output,
// statistics and handler count replay from the manifest, so a warm result
// is byte-identical to a cold one. Only clean completions are stored —
// every degraded, errored or eval-lowering path skips the cache.
func analyzeLowered(ctx context.Context, prog *ast.Program, mod *ir.Module, opts Options) (*Result, error) {
	tr := opts.Tracer
	var memo *memoState
	coreOut := opts.Out
	if opts.FactCache != nil {
		fc := opts.FactCache.c
		key := factcache.KeyFor(mod.File, mod.Source, factSig(opts))
		if hit, ok := fc.Lookup(key); ok {
			if opts.Out != nil {
				opts.Out.Write(hit.Output)
			}
			if tr != nil {
				tr.Event(obs.Event{Kind: obs.EvCache, Phase: "factcache", Detail: "hit"})
			}
			return &Result{
				prog: prog, mod: mod, store: hit.Store,
				staticInstrs: mod.NumInstrs, tracer: tr,
				Stats: hit.Stats, HandlersRan: hit.HandlersRan,
			}, nil
		}
		if tr != nil {
			tr.Event(obs.Event{Kind: obs.EvCache, Phase: "factcache", Detail: "miss"})
		}
		// Incremental report: which functions changed since the last cached
		// run of this (program, options) anchor.
		fc.Diff(key, mod)
		memo = &memoState{fc: fc, key: key, rec: factcache.NewRecorder(), out: &captureWriter{}}
		if coreOut != nil {
			coreOut = io.MultiWriter(coreOut, memo.out)
		} else {
			coreOut = memo.out
		}
	}
	store := facts.NewStore()
	coreOpts := core.Options{
		Seed:                   opts.Seed,
		Now:                    opts.Now,
		Inputs:                 opts.Inputs,
		Out:                    coreOut,
		MaxCounterfactualDepth: opts.MaxCounterfactualDepth,
		MaxFlushes:             opts.MaxFlushes,
		MaxSteps:               opts.MaxSteps,
		DisableCounterfactual:  opts.DisableCounterfactual,
		ImmediateTaint:         opts.ImmediateTaint,
		MuJSLocals:             opts.MuJSLocals,
		Tracer:                 tr,
		Ctx:                    ctx,
		Deadline:               opts.Deadline,
		Engine:                 opts.Engine,
		Metrics:                opts.Metrics,
	}
	if memo != nil {
		coreOpts.OnEnterFunc = memo.rec.OnEnter
	}
	a := core.New(mod, store, coreOpts)
	res := &Result{prog: prog, mod: mod, store: store, staticInstrs: mod.NumInstrs, tracer: tr}

	var binding *dom.CoreBinding
	if opts.WithDOM {
		binding = dom.InstallCore(a, dom.NewDocument(dom.Options{}), opts.DeterministicDOM)
	}
	endExec := obs.PhaseScope(tr, "exec")
	_, runErr := a.Run()
	endExec()
	if runErr != nil {
		if reason := degradeReason(runErr); reason != DegradeNone {
			memo.skip("partial")
			return degrade(res, a, runErr, reason)
		}
		res.Stats = a.Stats()
		memo.skip("error")
		var thrown *core.Thrown
		if errors.As(runErr, &thrown) {
			return nil, ErrUncaughtException
		}
		return nil, runErr
	}
	if binding != nil && opts.RunHandlers > 0 {
		n, herr := runHandlersGuarded(binding, opts.RunHandlers, tr, a.CurrentPoint)
		res.HandlersRan = n
		// Handler-phase inline-cache traffic lands after Run's own publish;
		// the watermark makes this a pure delta, never a double count.
		a.PublishEngineMetrics()
		if herr != nil {
			if reason := degradeReason(herr); reason != DegradeNone {
				memo.skip("partial")
				return degrade(res, a, herr, reason)
			}
			res.Stats = a.Stats()
			memo.skip("error")
			return nil, herr
		}
	}
	res.Stats = a.Stats()
	if memo != nil {
		switch {
		case mod.NumInstrs > res.staticInstrs:
			// Runtime eval lowered fresh instructions whose IDs are not
			// stable across executions; such runs are never cacheable.
			memo.skip("eval")
		case memo.out.overflow:
			memo.skip("output-cap")
		default:
			memo.fc.Store(memo.key, mod, store, memo.rec, memo.out.b, res.Stats, res.HandlersRan)
		}
	}
	return res, nil
}

// runHandlersGuarded drives DOM event handlers inside a panic boundary so
// a handler crash surfaces as a structured *RunError instead of unwinding
// through the caller.
func runHandlersGuarded(binding *dom.CoreBinding, max int, tr obs.Tracer, point func() (int, string)) (n int, err error) {
	defer obs.PhaseScope(tr, "handlers")()
	defer guard.Boundary(&err, "handlers", point)
	return binding.RunHandlers(max)
}

// AnalyzeRuns performs several instrumented runs with different seeds and
// merges their fact stores, per the paper's §7: "running the determinacy
// analysis on different inputs yields more facts, which are all sound and
// hence can be used together". The merged store joins disagreeing
// observations to indeterminate; two runs claiming different determinate
// values at the same key would indicate an analysis bug and is surfaced as
// an error.
// The runs are fanned across a bounded worker pool (Options.Workers) and a
// shared compilation cache, so the source compiles once regardless of seed
// count; merging per-seed results in seed submission order keeps the merged
// store and statistics identical to a serial sweep.
func AnalyzeRuns(src string, opts Options, seeds ...uint64) (*Result, error) {
	return AnalyzeRunsContext(context.Background(), src, opts, seeds...)
}

// AnalyzeRunsContext is AnalyzeRuns with cooperative cancellation. A
// cancelled ctx stops both the batch (unstarted seeds are skipped) and
// each in-flight run at its next checkpoint; a run that panics is
// quarantined by the pool and surfaced here as that seed's error without
// aborting the other seeds' work.
func AnalyzeRunsContext(ctx context.Context, src string, opts Options, seeds ...uint64) (*Result, error) {
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	type runOut struct {
		res *Result
		err error
	}
	pool := batch.New(opts.Workers)
	outs, qs := batch.MapCtx(ctx, pool, len(seeds), func(i int) runOut {
		o := opts
		o.Seed = seeds[i]
		prog, mod, err := runsCache.Compile("program.js", src)
		if err != nil {
			return runOut{err: fmt.Errorf("determinacy: run with seed %d: %w", seeds[i], err)}
		}
		res, err := analyzeLowered(ctx, prog, mod, o)
		if err != nil {
			return runOut{err: fmt.Errorf("determinacy: run with seed %d: %w", seeds[i], err)}
		}
		// Runtime-lowered eval code gets fresh instruction IDs per run, so
		// only facts at static program points merge across runs.
		res.store = res.store.Restrict(ir.ID(res.staticInstrs))
		return runOut{res: res}
	})
	for _, q := range qs {
		outs[q.Index].err = fmt.Errorf("determinacy: run with seed %d: %w", seeds[q.Index], q.Err)
	}
	var merged *Result
	for _, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		if merged == nil {
			merged = out.res
			continue
		}
		merged.store.Merge(out.res.store)
		merged.Stats.Merge(out.res.Stats)
		// A degraded seed degrades the merge: the merged facts are sound
		// but reflect incomplete executions.
		if out.res.Partial && !merged.Partial {
			merged.Partial = true
			merged.Degraded = out.res.Degraded
			merged.Stopped = out.res.Stopped
		}
	}
	if len(merged.store.Conflicts) > 0 {
		return nil, fmt.Errorf("determinacy: %d conflicting determinate facts across runs (analysis bug)",
			len(merged.store.Conflicts))
	}
	return merged, nil
}

// runsCache backs AnalyzeRuns' per-seed compiles: content-addressed, so
// repeated sweeps over the same source (and the first sweep's N-1 extra
// seeds) skip the front end entirely.
var runsCache = progcache.New(0)

// Program is a compiled analysis input: the parsed AST plus a run-ready
// clone of the lowered module. A Program is SINGLE-USE — running an
// analysis mutates its module (runtime eval lowering), so obtain a fresh
// one from Cache.Compile per run.
type Program struct {
	prog *ast.Program
	mod  *ir.Module
}

// Cache is a bounded, content-addressed front-end compile cache shared
// across analyses — the compile-once layer behind AnalyzeRuns, exposed so
// long-lived embedders (cmd/detserve serves every request through one)
// can skip lex→parse→lower for repeated sources. Safe for concurrent use;
// see internal/batch/progcache for the exact sharing contract.
type Cache struct{ c *progcache.Cache }

// NewCache creates a compile cache bounded to maxEntries programs
// (non-positive selects the default capacity).
func NewCache(maxEntries int) *Cache {
	return &Cache{c: progcache.New(maxEntries)}
}

// WithMetrics attaches a metrics registry; the cache then maintains
// progcache_* hit/miss/eviction series live. Returns the cache for
// chaining.
func (c *Cache) WithMetrics(m *Metrics) *Cache {
	c.c.WithMetrics(m)
	return c
}

// Compile parses and lowers src, serving repeated requests for the same
// (name, src) pair from the cache. Each call returns a fresh single-use
// Program; front-end errors are cached too.
func (c *Cache) Compile(name, src string) (*Program, error) {
	p, _, err := c.CompileHit(name, src)
	return p, err
}

// CompileHit is Compile plus a hit report: hit is true when the front-end
// work (including a cached front-end error) was served from the cache.
func (c *Cache) CompileHit(name, src string) (*Program, bool, error) {
	prog, mod, hit, err := c.c.CompileHit(name, src)
	if err != nil {
		return nil, hit, err
	}
	return &Program{prog: prog, mod: mod}, hit, nil
}

// AnalyzeProgram runs the instrumented analysis over a compiled Program
// (see Cache.Compile). The Program is consumed: its module is mutated by
// the run and must not be reused.
func AnalyzeProgram(p *Program, opts Options) (*Result, error) {
	return AnalyzeProgramContext(context.Background(), p, opts)
}

// AnalyzeProgramContext is AnalyzeProgram with cooperative cancellation.
func AnalyzeProgramContext(ctx context.Context, p *Program, opts Options) (*Result, error) {
	return analyzeLowered(ctx, p.prog, p.mod, opts)
}

// Run executes src under the plain concrete interpreter (no
// instrumentation), returning everything printed to console.
func Run(src string, opts Options) (string, error) {
	return RunContext(context.Background(), src, opts)
}

// RunContext is Run with cooperative cancellation and Options.Deadline
// support: the interpreter stops at its next checkpoint when ctx is
// cancelled or the deadline passes, returning the output so far together
// with the wrapped context error.
func RunContext(ctx context.Context, src string, opts Options) (string, error) {
	mod, err := ir.Compile("program.js", src)
	if err != nil {
		return "", err
	}
	var buf writerBuffer
	out := io.Writer(&buf)
	if opts.Out != nil {
		out = io.MultiWriter(&buf, opts.Out)
	}
	it := interp.New(mod, interp.Options{
		Seed: opts.Seed, Now: opts.Now, Inputs: opts.Inputs, Out: out,
		MaxSteps: opts.MaxSteps, Ctx: ctx, Deadline: opts.Deadline,
		Engine: opts.Engine,
	})
	var binding *dom.Binding
	if opts.WithDOM {
		binding = dom.Install(it, dom.NewDocument(dom.Options{}))
	}
	if _, err := it.Run(); err != nil {
		return buf.String(), err
	}
	if binding != nil && opts.RunHandlers > 0 {
		if _, err := binding.RunHandlers(opts.RunHandlers); err != nil {
			return buf.String(), err
		}
	}
	return buf.String(), nil
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writerBuffer) String() string { return string(w.b) }

// Facts returns every recorded fact in stable order.
func (r *Result) Facts() []Fact {
	var out []Fact
	for _, f := range r.store.Sorted() {
		out = append(out, r.renderFact(f))
	}
	return out
}

// DeterminateFacts returns only the determinate facts.
func (r *Result) DeterminateFacts() []Fact {
	var out []Fact
	for _, f := range r.store.Sorted() {
		if f.Det {
			out = append(out, r.renderFact(f))
		}
	}
	return out
}

// FactsAtLine returns the facts whose program point lies on a source line.
func (r *Result) FactsAtLine(line int) []Fact {
	var out []Fact
	for _, f := range r.store.Sorted() {
		if in := r.mod.InstrAt(f.Instr); in != nil && in.IPos().Line == line {
			out = append(out, r.renderFact(f))
		}
	}
	return out
}

// NumFacts and NumDeterminate report store sizes.
func (r *Result) NumFacts() int         { return r.store.Len() }
func (r *Result) NumDeterminate() int   { return r.store.NumDeterminate() }
func (r *Result) Store() *facts.Store   { return r.store }
func (r *Result) Module() *ir.Module    { return r.mod }
func (r *Result) Program() *ast.Program { return r.prog }

func (r *Result) renderFact(f *facts.Fact) Fact {
	out := Fact{Determinate: f.Det, Value: f.Val.String()}
	if in := r.mod.InstrAt(f.Instr); in != nil {
		out.Line = in.IPos().Line
		out.Col = in.IPos().Col
		out.Point = ir.InstrString(in)
	}
	ctx := ""
	for i, e := range f.Ctx {
		if i > 0 {
			ctx += "→"
		}
		if in := r.mod.InstrAt(e.Site); in != nil {
			ctx += fmt.Sprintf("L%d_%d", in.IPos().Line, e.Seq)
		}
	}
	if f.Seq > 0 {
		ctx += fmt.Sprintf("(occ %d)", f.Seq)
	}
	out.Context = ctx
	return out
}

// ---------------------------------------------------------------------------
// Clients

// SpecializeOptions configures fact-driven specialization (§2.2/§5.1).
type SpecializeOptions struct {
	// MaxUnroll bounds loop unrolling (0 = default 32).
	MaxUnroll int
	// MaxCloneDepth bounds context-clone nesting (0 = default 4).
	MaxCloneDepth int
	// EliminateEval also replaces determinate eval calls with parsed code
	// (§2.3/§5.2).
	EliminateEval bool
	// Generalize additionally applies context-insensitive fact projections
	// (the paper's §7 "shallower calling contexts"), specializing original
	// function bodies in place when every observed context agrees.
	Generalize bool
}

// Specialized is the output of Result.Specialize.
type Specialized struct {
	// Source is the specialized program.
	Source string
	// Stats counts the applied specializations.
	Stats specialize.Stats
	// EvalSites classifies each syntactic eval call site (when
	// EliminateEval was set).
	EvalSites []specialize.EvalSite
	// DeadBranches lists conditionals proven one-sided under specific
	// contexts — the dead-code-detection client the paper's introduction
	// motivates with Figure 1.
	DeadBranches []specialize.DeadBranch
}

// ExportMetrics publishes the run's statistics into a metrics registry:
// step/flush/counterfactual counters (with per-reason flush labels), the
// counterfactual-depth histogram, and fact-store totals.
func (r *Result) ExportMetrics(m *Metrics) {
	r.Stats.Export(m)
	m.Counter("facts_total").Add(int64(r.store.Len()))
	m.Counter("facts_determinate_total").Add(int64(r.store.NumDeterminate()))
	m.Gauge("analysis_handlers_ran").Set(float64(r.HandlersRan))
	if r.Partial {
		guard.CountDegraded(m, r.Degraded)
	}
}

// Specialize rewrites the analyzed program using the collected facts.
func (r *Result) Specialize(opts SpecializeOptions) (*Specialized, error) {
	defer obs.PhaseScope(r.tracer, "specialize")()
	res, err := specialize.Specialize(r.prog, r.mod, r.store, specialize.Options{
		MaxUnroll:     opts.MaxUnroll,
		MaxCloneDepth: opts.MaxCloneDepth,
		EliminateEval: opts.EliminateEval,
		Generalize:    opts.Generalize,
	})
	if err != nil {
		return nil, err
	}
	return &Specialized{
		Source:       ast.Print(res.Program),
		Stats:        res.Stats,
		EvalSites:    res.EvalSites,
		DeadBranches: res.DeadBranches,
	}, nil
}

// SpecializeWithFacts specializes src using a previously serialized fact
// store (see Result.Store().Encode and cmd/detrun -json). Instruction IDs
// are deterministic per source text, so facts recorded against the same
// program apply directly.
func SpecializeWithFacts(name, src string, factsJSON io.Reader, opts SpecializeOptions) (*Specialized, error) {
	prog, err := parser.Parse(name, src)
	if err != nil {
		return nil, err
	}
	mod, err := ir.Lower(prog)
	if err != nil {
		return nil, err
	}
	store, err := facts.Decode(factsJSON)
	if err != nil {
		return nil, err
	}
	res, err := specialize.Specialize(prog, mod, store, specialize.Options{
		MaxUnroll:     opts.MaxUnroll,
		MaxCloneDepth: opts.MaxCloneDepth,
		EliminateEval: opts.EliminateEval,
		Generalize:    opts.Generalize,
	})
	if err != nil {
		return nil, err
	}
	return &Specialized{
		Source:       ast.Print(res.Program),
		Stats:        res.Stats,
		EvalSites:    res.EvalSites,
		DeadBranches: res.DeadBranches,
	}, nil
}

// PointsToOptions configures the static points-to client.
type PointsToOptions struct {
	// Budget bounds solver work (0 = default); exceeding it reports
	// BudgetExceeded, the stand-in for the paper's analysis timeout.
	Budget int
	// Tracer observes the solver: a "solve" phase pair plus periodic
	// worklist snapshots. nil disables tracing.
	Tracer Tracer
}

// PointsToReport summarizes a points-to run.
type PointsToReport struct {
	BudgetExceeded bool
	// Interrupted reports that the solver stopped early on deadline or
	// cancellation. Unlike determinacy facts, an interrupted points-to
	// result is an UNDER-approximation — clients must treat it exactly
	// like BudgetExceeded (unusable for sound claims).
	Interrupted  bool
	Propagations int

	ReachableFuncs int
	// MaxCallees is the largest callee set of any call site, a precision
	// indicator (1 = monomorphic resolution everywhere it matters).
	MaxCallees int
	// EvalSites counts call sites that resolve only to the eval native.
	EvalSites int
}

// PointsTo runs the Andersen-style points-to analysis over source text.
func PointsTo(src string, opts PointsToOptions) (*PointsToReport, error) {
	return PointsToContext(context.Background(), src, time.Time{}, opts)
}

// PointsToContext is PointsTo with cooperative cancellation and an
// optional wall-clock deadline (zero = none). Solver panics are recovered
// into a *RunError; an interrupted solve reports Interrupted rather than
// failing.
func PointsToContext(ctx context.Context, src string, deadline time.Time, opts PointsToOptions) (*PointsToReport, error) {
	mod, err := ir.Compile("program.js", src)
	if err != nil {
		return nil, err
	}
	res, err := pointsto.AnalyzeGuarded(mod, pointsto.Options{
		Budget: opts.Budget, Tracer: opts.Tracer, Ctx: ctx, Deadline: deadline,
	})
	if err != nil {
		return nil, err
	}
	rep := &PointsToReport{
		BudgetExceeded: res.BudgetExceeded,
		Interrupted:    res.Interrupted != nil,
		Propagations:   res.Propagations,
		ReachableFuncs: res.ReachableFuncs,
		EvalSites:      len(res.EvalSites),
	}
	for _, cs := range res.Callees {
		if len(cs) > rep.MaxCallees {
			rep.MaxCallees = len(cs)
		}
	}
	return rep, nil
}
