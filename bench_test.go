// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus ablation benches for the design choices DESIGN.md calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The benchmark *metrics* (ReportMetric) carry the reproduced numbers: for
// Table 1 the points-to propagation work per configuration and the dynamic
// analysis' heap flush counts; for the §5.2 study the handled counts. The
// shapes, not the absolute timings, are what reproduces the paper.
package determinacy_test

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"determinacy"
	"determinacy/internal/batch/progcache"
	"determinacy/internal/core"
	"determinacy/internal/experiment"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/pointsto"
	"determinacy/internal/workload"
)

func newConcrete(mod *ir.Module) *interp.Interp {
	return interp.New(mod, interp.Options{})
}

// ---------------------------------------------------------------------------
// Table 1: pointer-analysis scalability per jQuery version. One bench per
// row; metrics report the three configurations' propagation work and flush
// counts.

func benchTable1(b *testing.B, v workload.JQueryVersion) {
	var row experiment.Table1Row
	for i := 0; i < b.N; i++ {
		row = experiment.RunTable1Version(v, experiment.Config{})
	}
	if row.Err != nil {
		b.Fatal(row.Err)
	}
	b.ReportMetric(float64(row.Baseline.Propagations), "baseline-work")
	b.ReportMetric(float64(row.Spec.Propagations), "spec-work")
	b.ReportMetric(float64(row.DetDOM.Propagations), "detdom-work")
	b.ReportMetric(float64(row.Spec.Flushes), "spec-flushes")
	b.ReportMetric(float64(row.DetDOM.Flushes), "detdom-flushes")
	b.ReportMetric(boolMetric(row.Baseline.Completed), "baseline-ok")
	b.ReportMetric(boolMetric(row.Spec.Completed), "spec-ok")
	b.ReportMetric(boolMetric(row.DetDOM.Completed), "detdom-ok")
}

func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

func BenchmarkTable1JQuery10(b *testing.B) { benchTable1(b, workload.JQ10) }
func BenchmarkTable1JQuery11(b *testing.B) { benchTable1(b, workload.JQ11) }
func BenchmarkTable1JQuery12(b *testing.B) { benchTable1(b, workload.JQ12) }
func BenchmarkTable1JQuery13(b *testing.B) { benchTable1(b, workload.JQ13) }

// benchTable1Engine pins one Table 1 row to an explicit execution engine.
// The Bytecode/Tree pair below measures the engine delta EXPERIMENTS.md
// reports; their work metrics must be identical — only ns/op may move.
func benchTable1Engine(b *testing.B, v workload.JQueryVersion, eng determinacy.Engine) {
	var row experiment.Table1Row
	for i := 0; i < b.N; i++ {
		row = experiment.RunTable1Version(v, experiment.Config{Engine: eng})
	}
	if row.Err != nil {
		b.Fatal(row.Err)
	}
	b.ReportMetric(float64(row.Spec.Propagations), "spec-work")
	b.ReportMetric(float64(row.DetDOM.Propagations), "detdom-work")
}

func BenchmarkTable1JQuery10Bytecode(b *testing.B) {
	benchTable1Engine(b, workload.JQ10, determinacy.EngineBytecode)
}

func BenchmarkTable1JQuery10Tree(b *testing.B) {
	benchTable1Engine(b, workload.JQ10, determinacy.EngineTree)
}

// BenchmarkTable1JQuery10Traced runs the same row with a request-scoped
// trace attached — the exact tracer the serving stack threads through
// every traced request — so the delta against BenchmarkTable1JQuery10 is
// the tracing overhead EXPERIMENTS.md reports (<10% acceptance target).
func BenchmarkTable1JQuery10Traced(b *testing.B) {
	var row experiment.Table1Row
	var rt *obs.RequestTrace
	for i := 0; i < b.N; i++ {
		rt = obs.NewRequestTrace("bench", obs.DefaultTraceEventCap)
		row = experiment.RunTable1Version(workload.JQ10, experiment.Config{Tracer: rt})
	}
	if row.Err != nil {
		b.Fatal(row.Err)
	}
	b.ReportMetric(float64(rt.Total()), "trace-events")
	b.ReportMetric(float64(row.Spec.Propagations), "spec-work")
}

// ---------------------------------------------------------------------------
// §5.2: eval elimination study. Metrics report handled counts.

func BenchmarkEvalElimination(b *testing.B) {
	var plain, det *experiment.EvalStudy
	for i := 0; i < b.N; i++ {
		plain = experiment.RunEvalStudy(false, experiment.Config{})
		det = experiment.RunEvalStudy(true, experiment.Config{})
	}
	b.ReportMetric(float64(plain.Runnable), "runnable")
	b.ReportMetric(float64(plain.Handled), "handled")
	b.ReportMetric(float64(det.Handled), "handled-detdom")
	b.ReportMetric(float64(plain.OnlyOurs), "beyond-syntactic")
}

// ---------------------------------------------------------------------------
// Figure 2/3/4 pipelines as micro-benchmarks of the analysis itself.

func benchAnalyze(b *testing.B, src string, opts determinacy.Options) {
	opts.Out = io.Discard
	b.ReportAllocs()
	var res *determinacy.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = determinacy.Analyze(src, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.NumFacts()), "facts")
	b.ReportMetric(float64(res.NumDeterminate()), "det-facts")
}

const fig2Bench = `(function() {
function checkf(p) { if (p.f < 32) setg(p, 42); }
function setg(r, v) { r.g = v; }
var x = { f : 23 }, y = { f : Math.random()*100 };
checkf(x); checkf(y);
(y.f > 50 ? checkf : setg)(x, 72);
var z = { f: x.g - 16, h: true };
checkf(z);
})();`

func BenchmarkFigure2Analysis(b *testing.B) {
	benchAnalyze(b, fig2Bench, determinacy.Options{Seed: 2, MuJSLocals: true})
}

const fig3Bench = `
function Rectangle(w, h) { this.width = w; this.height = h; }
Rectangle.prototype.toString = function() { return "[" + this.width + "x" + this.height + "]"; };
String.prototype.cap = function() { return this[0].toUpperCase() + this.substr(1); };
function defAccessors(prop) {
	Rectangle.prototype["get" + prop.cap()] = function() { return this[prop]; };
	Rectangle.prototype["set" + prop.cap()] = function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++) defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
`

func BenchmarkFigure3Pipeline(b *testing.B) {
	b.ReportAllocs()
	var specWork, baseWork int
	for i := 0; i < b.N; i++ {
		res, err := determinacy.Analyze(fig3Bench, determinacy.Options{})
		if err != nil {
			b.Fatal(err)
		}
		spec, err := res.Specialize(determinacy.SpecializeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		base, err := determinacy.PointsTo(fig3Bench, determinacy.PointsToOptions{})
		if err != nil {
			b.Fatal(err)
		}
		after, err := determinacy.PointsTo(spec.Source, determinacy.PointsToOptions{})
		if err != nil {
			b.Fatal(err)
		}
		specWork, baseWork = after.Propagations, base.Propagations
	}
	b.ReportMetric(float64(baseWork), "baseline-work")
	b.ReportMetric(float64(specWork), "spec-work")
}

const fig4Bench = `
var ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { return 1; };
function showIvyViaJs(locationId) {
	var _f = undefined;
	var _fconv = "ivymap['" + locationId + "']";
	try { _f = eval(_fconv); if (_f != undefined) { _f(); } } catch(e) { }
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
`

func BenchmarkFigure4EvalElim(b *testing.B) {
	b.ReportAllocs()
	var eliminated int
	for i := 0; i < b.N; i++ {
		res, err := determinacy.Analyze(fig4Bench, determinacy.Options{WithDOM: true, Out: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		spec, err := res.Specialize(determinacy.SpecializeOptions{EliminateEval: true})
		if err != nil {
			b.Fatal(err)
		}
		eliminated = spec.Stats.EvalsEliminated
	}
	b.ReportMetric(float64(eliminated), "evals-eliminated")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md "key design decisions").

// BenchmarkAblationCounterfactual compares the fact yield with and without
// counterfactual execution on a branch-heavy indeterminate workload: without
// it, every indeterminate-false branch costs a conservative heap flush and
// the determinate fact count collapses.
func BenchmarkAblationCounterfactual(b *testing.B) {
	src := workload.RandomProgram(workload.GenConfig{Seed: 1234, MaxStmts: 60, IndetPercent: 40})
	run := func(disable bool) (detFacts, flushes int) {
		mod := ir.MustCompile("ablate.js", src)
		store := facts.NewStore()
		a := core.New(mod, store, core.Options{DisableCounterfactual: disable})
		if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
			b.Fatal(err)
		}
		return store.NumDeterminate(), a.Stats().HeapFlushes
	}
	var onDet, onFl, offDet, offFl int
	for i := 0; i < b.N; i++ {
		onDet, onFl = run(false)
		offDet, offFl = run(true)
	}
	b.ReportMetric(float64(onDet), "det-facts/counterfactual")
	b.ReportMetric(float64(offDet), "det-facts/ablated")
	b.ReportMetric(float64(onFl), "flushes/counterfactual")
	b.ReportMetric(float64(offFl), "flushes/ablated")
	if offDet > onDet {
		b.Fatalf("ablation yielded more determinate facts (%d > %d)?", offDet, onDet)
	}
}

// BenchmarkAblationImmediateTaint compares post-branch indeterminacy marking
// (the paper's rule ÎF1) against information-flow-style immediate tainting.
func BenchmarkAblationImmediateTaint(b *testing.B) {
	src := workload.RandomProgram(workload.GenConfig{Seed: 99, MaxStmts: 60, IndetPercent: 40})
	run := func(immediate bool) int {
		mod := ir.MustCompile("ablate.js", src)
		store := facts.NewStore()
		a := core.New(mod, store, core.Options{ImmediateTaint: immediate})
		if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
			b.Fatal(err)
		}
		return store.NumDeterminate()
	}
	var deferred, immediate int
	for i := 0; i < b.N; i++ {
		deferred = run(false)
		immediate = run(true)
	}
	b.ReportMetric(float64(deferred), "det-facts/post-branch")
	b.ReportMetric(float64(immediate), "det-facts/immediate")
}

// BenchmarkAblationCutoffDepth sweeps the counterfactual nesting cut-off k.
func BenchmarkAblationCutoffDepth(b *testing.B) {
	src := workload.RandomProgram(workload.GenConfig{Seed: 777, MaxStmts: 80, MaxDepth: 5, IndetPercent: 45})
	for _, k := range []int{1, 2, 4, 8} {
		k := k
		b.Run(sprintInt("k", k), func(b *testing.B) {
			var det, aborts int
			for i := 0; i < b.N; i++ {
				mod := ir.MustCompile("ablate.js", src)
				store := facts.NewStore()
				a := core.New(mod, store, core.Options{MaxCounterfactualDepth: k})
				if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
					b.Fatal(err)
				}
				det, aborts = store.NumDeterminate(), a.Stats().CFAborts
			}
			b.ReportMetric(float64(det), "det-facts")
			b.ReportMetric(float64(aborts), "cf-aborts")
		})
	}
}

func sprintInt(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + digits
}

// BenchmarkEpochFlush measures the O(1) epoch-based heap flush (§4) against
// the size of the heap it conceptually invalidates.
func BenchmarkEpochFlush(b *testing.B) {
	mod := ir.MustCompile("heap.js", `
		var objs = [];
		for (var i = 0; i < 200; i++) {
			objs.push({a: i, b: i + 1, c: "s" + i});
		}
	`)
	a := core.New(mod, nil, core.Options{})
	if _, err := a.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.FlushHeap("bench")
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

func BenchmarkInterpreterConcrete(b *testing.B) {
	src := workload.RandomProgram(workload.GenConfig{Seed: 5, MaxStmts: 40})
	mod := ir.MustCompile("bench.js", src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := newConcrete(mod)
		if _, err := it.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterInstrumented(b *testing.B) {
	src := workload.RandomProgram(workload.GenConfig{Seed: 5, MaxStmts: 40})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mod := ir.MustCompile("bench.js", src)
		a := core.New(mod, facts.NewStore(), core.Options{})
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	src := workload.JQuery(workload.JQ10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ir.Compile("jq.js", src); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Tracer overhead. The nil-tracer benchmark is the regression guard for the
// near-zero-overhead contract (compare against BenchmarkFigure2Analysis from
// before the obs layer existed); the collector benchmark shows the cost of
// turning tracing on.

func BenchmarkTracerDisabled(b *testing.B) {
	benchAnalyze(b, fig2Bench, determinacy.Options{Seed: 2, MuJSLocals: true})
}

func BenchmarkTracerCollector(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		col := obs.NewCollector(4096)
		_, err := determinacy.Analyze(fig2Bench, determinacy.Options{
			Seed: 2, MuJSLocals: true, Out: io.Discard, Tracer: col,
		})
		if err != nil {
			b.Fatal(err)
		}
		events = col.Total()
	}
	b.ReportMetric(float64(events), "events")
}

// ---------------------------------------------------------------------------
// Batch engine: full Table 1 serial vs parallel, and the compile cache.
// On a single-core runner the two Table 1 variants coincide (see
// EXPERIMENTS.md); the busy/longest-job metrics expose the scheduling bound
// — busy-ms/longest-ms is the speedup ceiling any worker count can reach.

func benchTable1Pool(b *testing.B, workers int) {
	m := obs.NewMetrics()
	var rows []experiment.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiment.RunTable1(experiment.Config{Workers: workers, Metrics: m})
	}
	for _, r := range rows {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	busy := float64(m.Counter("batch_pool_busy_nanoseconds_total").Value())
	wall := float64(m.Counter("batch_pool_wall_nanoseconds_total").Value())
	b.ReportMetric(busy/float64(b.N)/1e6, "busy-ms")
	b.ReportMetric(wall/float64(b.N)/1e6, "wall-ms")
	b.ReportMetric(m.Gauge("batch_pool_longest_job_seconds").Value()*1e3, "longest-ms")
}

func BenchmarkTable1Serial(b *testing.B)   { benchTable1Pool(b, 1) }
func BenchmarkTable1Parallel(b *testing.B) { benchTable1Pool(b, 4) }

func BenchmarkProgCacheMiss(b *testing.B) {
	src := workload.JQuery(workload.JQ10)
	c := progcache.New(b.N + 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh display name per iteration forces a distinct key, so every
		// call pays the full lex→parse→lower cost plus insertion.
		if _, _, err := c.Compile(sprintInt("jq-", i), src); err != nil {
			b.Fatal(err)
		}
	}
	if s := c.Stats(); s.Hits != 0 {
		b.Fatalf("miss benchmark hit the cache: %+v", s)
	}
}

func BenchmarkProgCacheHit(b *testing.B) {
	src := workload.JQuery(workload.JQ10)
	c := progcache.New(0)
	if _, _, err := c.Compile("jq.js", src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compile("jq.js", src); err != nil {
			b.Fatal(err)
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		b.Fatalf("hit benchmark missed the cache: %+v", s)
	}
}

func BenchmarkPointsToBaselineJQ10(b *testing.B) {
	mod := ir.MustCompile("jq.js", workload.JQuery(workload.JQ10))
	b.ReportAllocs()
	var work int
	for i := 0; i < b.N; i++ {
		res := pointsto.Analyze(mod, pointsto.Options{Budget: 10_000_000})
		work = res.Propagations
	}
	b.ReportMetric(float64(work), "propagations")
}

// ---------------------------------------------------------------------------
// Guard overhead. The interrupt checkpoints and panic boundary are always
// on; BenchmarkTable1JQuery10 above is therefore already the "idle guard"
// configuration (nil context, zero deadline: a checkpoint is two nil
// checks every 2048 steps). This bench runs the same Table 1 row with a
// live context and armed deadline, so every checkpoint takes the full poll
// path — the worst case a -timeout user pays. EXPERIMENTS.md records the
// measured delta against BenchmarkTable1JQuery10 (target: < 3%).

func BenchmarkTable1JQuery10GuardLive(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var row experiment.Table1Row
	for i := 0; i < b.N; i++ {
		row = experiment.RunTable1Version(workload.JQ10, experiment.Config{
			Ctx:      ctx,
			Deadline: time.Now().Add(time.Hour),
		})
	}
	if row.Err != nil {
		b.Fatal(row.Err)
	}
	b.ReportMetric(boolMetric(row.Baseline.Completed && row.Spec.Completed && row.DetDOM.Completed), "all-ok")
}
