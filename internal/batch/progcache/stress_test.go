package progcache

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentStressSmallLRU hammers a 4-entry cache from many
// goroutines over 16 overlapping sources, forcing constant eviction and
// re-admission races. Run under -race in CI. Invariants: every Compile
// returns a working module for its own source (never another entry's),
// the bookkeeping balances (hits+misses == lookups), and the entry count
// respects the cap.
func TestConcurrentStressSmallLRU(t *testing.T) {
	const (
		workers  = 16
		rounds   = 50
		programs = 16
		cap      = 4
	)
	c := New(cap)

	srcs := make([]string, programs)
	for i := range srcs {
		// Distinct constants make each program's lowering distinguishable.
		srcs[i] = fmt.Sprintf("var a = %d; var b = a + %d; console.log(b);", i, i*i)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w*rounds + r*7) % programs
				file := fmt.Sprintf("p%d.js", i)
				prog, mod, err := c.Compile(file, srcs[i])
				if err != nil {
					t.Errorf("worker %d round %d: Compile(%s): %v", w, r, file, err)
					return
				}
				if prog == nil || mod == nil {
					t.Errorf("worker %d round %d: nil program/module", w, r)
					return
				}
				if mod.File != file || mod.Source != srcs[i] {
					t.Errorf("worker %d round %d: cache returned %q's entry for %q", w, r, mod.File, file)
					return
				}
				if len(mod.Funcs) == 0 || mod.NumInstrs == 0 {
					t.Errorf("worker %d round %d: empty module for %s", w, r, file)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	lookups := int64(workers * rounds)
	if s.Hits+s.Misses != lookups {
		t.Errorf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, lookups)
	}
	if s.Entries > cap {
		t.Errorf("entries %d exceed cap %d", s.Entries, cap)
	}
	if s.Misses < programs {
		t.Errorf("misses %d < %d distinct programs", s.Misses, programs)
	}
	if s.Evictions < s.Misses-int64(cap) {
		t.Errorf("evictions %d cannot hold %d misses in %d slots", s.Evictions, s.Misses, cap)
	}
}

// TestConcurrentStressCachedErrors checks that broken sources race-safely
// cache their compile error: every caller gets the same failure, and
// error entries occupy LRU slots without corrupting good ones.
func TestConcurrentStressCachedErrors(t *testing.T) {
	c := New(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 30; r++ {
				if (w+r)%2 == 0 {
					_, _, err := c.Compile("bad.js", `var = broken`)
					if err == nil {
						t.Error("broken source compiled")
						return
					}
				} else {
					_, mod, err := c.Compile("good.js", `var x = 1;`)
					if err != nil || mod == nil {
						t.Errorf("good source failed: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
