package progcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"determinacy/internal/obs"
)

const progA = `var x = 1 + 2; var y = x * 3;`
const progB = `function f(n) { return n + 1; } var r = f(41);`
const progC = `var s = "hello"; var t = s + " world";`

func TestCompileHitMiss(t *testing.T) {
	c := New(0)
	p1, m1, err := c.Compile("a.js", progA)
	if err != nil {
		t.Fatal(err)
	}
	p2, m2, err := c.Compile("a.js", progA)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cached AST should be the shared pointer on a hit")
	}
	if m1 == m2 {
		t.Fatal("modules must be fresh clones, never the same pointer")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	// Same source under a different display name is a different key: the
	// name is embedded in diagnostics, so sharing across names would leak
	// the wrong file name into errors and fact rendering.
	if _, _, err := c.Compile("b.js", progA); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("distinct file name should miss; stats = %+v", s)
	}
}

func TestCloneIsolation(t *testing.T) {
	c := New(0)
	_, m1, err := c.Compile("a.js", progA)
	if err != nil {
		t.Fatal(err)
	}
	nFuncs, nInstrs := len(m1.Funcs), m1.NumInstrs
	// Simulate what runtime eval lowering does to a module: grow it.
	m1.Funcs = append(m1.Funcs, m1.Funcs[0])
	m1.NumInstrs += 100

	_, m2, err := c.Compile("a.js", progA)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Funcs) != nFuncs || m2.NumInstrs != nInstrs {
		t.Fatalf("mutating one clone leaked into the cache: funcs=%d instrs=%d, want %d/%d",
			len(m2.Funcs), m2.NumInstrs, nFuncs, nInstrs)
	}
}

func TestErrorsAreCached(t *testing.T) {
	c := New(0)
	_, _, err1 := c.Compile("bad.js", `var = = ;`)
	if err1 == nil {
		t.Fatal("expected a parse error")
	}
	_, _, err2 := c.Compile("bad.js", `var = = ;`)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("cached error mismatch: %v vs %v", err1, err2)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("error entries should hit like any other; stats = %+v", s)
	}
	if !strings.Contains(err1.Error(), "expected") {
		t.Fatalf("unexpected diagnostic: %v", err1)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	mustCompile(t, c, "a.js", progA)
	mustCompile(t, c, "b.js", progB)
	mustCompile(t, c, "a.js", progA) // refresh a: b is now LRU
	mustCompile(t, c, "c.js", progC) // evicts b
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	mustCompile(t, c, "a.js", progA) // still resident
	if s := c.Stats(); s.Hits != 2 {
		t.Fatalf("refreshed entry should survive; stats = %+v", s)
	}
	mustCompile(t, c, "b.js", progB) // evicted, so a miss again
	if s := c.Stats(); s.Misses != 4 || s.Evictions != 2 {
		t.Fatalf("stats = %+v, want 4 misses / 2 evictions", s)
	}
}

// TestConcurrentSingleflight checks that racing misses on one key compile
// once and share the entry. Run under -race this also exercises the lock
// discipline around the LRU list.
func TestConcurrentSingleflight(t *testing.T) {
	c := New(0)
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, m, err := c.Compile("a.js", progA)
			if err != nil || p == nil || m == nil {
				t.Errorf("concurrent Compile failed: %v", err)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss / 1 entry for %d racers", s, goroutines)
	}
	if s.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, goroutines-1)
	}
}

func TestMetricsMirror(t *testing.T) {
	m := obs.NewMetrics()
	c := New(0).WithMetrics(m)
	mustCompile(t, c, "a.js", progA)
	mustCompile(t, c, "a.js", progA)
	mustCompile(t, c, "b.js", progB)
	if got := m.Counter("progcache_hits_total").Value(); got != 1 {
		t.Fatalf("hits_total = %d, want 1", got)
	}
	if got := m.Counter("progcache_misses_total").Value(); got != 2 {
		t.Fatalf("misses_total = %d, want 2", got)
	}
	if got := m.Gauge("progcache_entries").Value(); got != 2 {
		t.Fatalf("entries gauge = %v, want 2", got)
	}
	want := Stats{Hits: 1, Misses: 2}.HitRate()
	if got := m.Gauge("progcache_hit_ratio").Value(); got != want {
		t.Fatalf("hit_ratio = %v, want %v", got, want)
	}
}

func TestHitRate(t *testing.T) {
	if hr := (Stats{}).HitRate(); hr != 0 {
		t.Fatalf("empty HitRate = %v, want 0", hr)
	}
	if hr := (Stats{Hits: 3, Misses: 1}).HitRate(); hr != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", hr)
	}
}

func mustCompile(t *testing.T, c *Cache, file, src string) {
	t.Helper()
	if _, _, err := c.Compile(file, src); err != nil {
		t.Fatalf("Compile(%s): %v", file, err)
	}
}

// TestErrorEntryCapAndMetrics pins the error-entry accounting: cached
// front-end errors are counted, capped well below the main capacity, and
// evicted oldest-first with their own eviction series — a stream of
// distinct bad sources must never displace compiled programs wholesale.
func TestErrorEntryCapAndMetrics(t *testing.T) {
	m := obs.NewMetrics()
	c := New(40).WithMetrics(m) // error cap = 40/4 = 10
	mustCompile(t, c, "good-a.js", progA)
	mustCompile(t, c, "good-b.js", progB)

	bad := func(i int) (string, string) {
		return fmt.Sprintf("bad-%d.js", i), fmt.Sprintf("var %d = = ;", i)
	}
	for i := 0; i < 25; i++ {
		file, src := bad(i)
		if _, _, err := c.Compile(file, src); err == nil {
			t.Fatalf("%s: expected a parse error", file)
		}
	}
	s := c.Stats()
	if s.ErrorEntries != 10 {
		t.Fatalf("error entries = %d, want the cap of 10 (stats %+v)", s.ErrorEntries, s)
	}
	if s.ErrorEvictions != 15 {
		t.Fatalf("error evictions = %d, want 15 (stats %+v)", s.ErrorEvictions, s)
	}
	if s.Evictions != 15 {
		t.Fatalf("evictions = %d, want error evictions included (stats %+v)", s.Evictions, s)
	}
	// The compiled programs survive untouched, far below the main cap.
	mustCompile(t, c, "good-a.js", progA)
	mustCompile(t, c, "good-b.js", progB)
	if got := c.Stats(); got.Hits != 2 {
		t.Fatalf("compiled entries were displaced by error entries: %+v", got)
	}

	// Oldest errors went first: the most recent ones still hit, the
	// earliest miss again.
	if file, src := bad(24); func() bool { _, _, err := c.Compile(file, src); return err != nil }() {
		if got := c.Stats(); got.Hits != 3 {
			t.Fatalf("recent error entry did not hit: %+v", got)
		}
	}
	if file, src := bad(0); func() bool { _, _, err := c.Compile(file, src); return err != nil }() {
		if got := c.Stats(); got.Misses != 28 {
			t.Fatalf("oldest error entry should have been evicted (misses %d, want 28): %+v", got.Misses, got)
		}
	}

	if got := m.Counter("progcache_error_evictions_total").Value(); got < 15 {
		t.Fatalf("error_evictions_total = %d, want >= 15", got)
	}
	if got := m.Gauge("progcache_error_entries").Value(); got != float64(c.Stats().ErrorEntries) {
		t.Fatalf("error_entries gauge = %v, want %d", got, c.Stats().ErrorEntries)
	}

	// Re-requesting a cached error must not inflate the count.
	for i := 20; i < 25; i++ {
		file, src := bad(i)
		c.Compile(file, src)
	}
	if got := c.Stats(); got.ErrorEntries > 10 {
		t.Fatalf("error entries exceeded the cap after repeat lookups: %+v", got)
	}
}

// TestErrorCapConcurrent hammers the error cap from many goroutines so
// -race proves the accounting's lock discipline.
func TestErrorCapConcurrent(t *testing.T) {
	c := New(16) // error cap = minErrorEntries = 4
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				file := fmt.Sprintf("bad-%d-%d.js", g, i%10)
				if _, _, err := c.Compile(file, `var = = ;`); err == nil {
					t.Errorf("%s: expected a parse error", file)
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.ErrorEntries > 4 {
		t.Fatalf("error entries = %d, want <= cap 4 (stats %+v)", s.ErrorEntries, s)
	}
	if s.ErrorEntries < 0 {
		t.Fatalf("error accounting went negative: %+v", s)
	}
}
