// Package progcache is a content-addressed compilation cache for the
// determinacy pipeline's front end. Lex→parse→lower results are keyed by a
// hash of the display name and source text, bounded by an LRU policy, and
// shared read-only across concurrent workers: the baseline/specialized
// cells of one Table 1 row and the N seeds of a seed-sweep analysis all
// compile the same source exactly once.
//
// Cached ASTs are handed out by pointer — every downstream consumer
// (lowering, the specializer, fact rendering) treats the AST as read-only.
// Cached modules are never handed out directly: runtime eval lowering
// mutates a module, so Compile returns a fresh ir.Module.Clone per call,
// which shares the immutable instructions but isolates all mutation.
package progcache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"determinacy/internal/ast"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/parser"
	"determinacy/internal/vm"
)

// DefaultMaxEntries bounds the cache when New is given a non-positive
// capacity. The experiment harness holds at most a few dozen distinct
// sources (4 jQuery versions × a handful of specialized variants plus the
// 28-program corpus), so this keeps every workload resident.
const DefaultMaxEntries = 128

// minErrorEntries floors the error-entry cap so tiny caches still retain
// a few cached diagnostics.
const minErrorEntries = 4

// Cache is a bounded, content-addressed compile cache. It is safe for
// concurrent use; concurrent misses on the same key compile once and share
// the result (the losers block until the winner finishes).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*entry
	lru     *list.List // front = most recently used; values are *entry

	// Error entries (cached front-end failures) are capped separately at
	// errMax: a diagnostic costs microseconds to recreate, so a stream of
	// distinct bad sources must never be able to evict expensively
	// compiled programs wholesale. errCount tracks live error entries
	// under mu.
	errMax   int
	errCount int

	metrics *obs.Metrics

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	errEvictions atomic.Int64
}

// cacheKey is the content address: a hash of display name and source text.
// The name participates so diagnostics (which embed it) stay byte-identical
// to an uncached compile.
type cacheKey [sha256.Size]byte

type entry struct {
	key  cacheKey
	elem *list.Element

	// once guards the single compilation of this entry; concurrent misses
	// on the same key wait on it rather than compiling redundantly.
	once sync.Once
	prog *ast.Program
	mod  *ir.Module // pristine master, never executed — only cloned
	err  error

	// isErr and counted implement error-entry accounting, both under
	// Cache.mu: counted flips when the finished compilation's outcome has
	// been folded into errCount, isErr marks the entry as a cached error
	// so eviction paths can maintain the count.
	isErr   bool
	counted bool
}

// New creates a cache bounded to max entries (DefaultMaxEntries when
// max <= 0).
func New(max int) *Cache {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	errMax := max / 4
	if errMax < minErrorEntries {
		errMax = minErrorEntries
	}
	return &Cache{max: max, errMax: errMax, entries: make(map[cacheKey]*entry), lru: list.New()}
}

// WithMetrics attaches a metrics registry; the cache then maintains
// progcache_{hits,misses,evictions}_total counters and a progcache_entries
// gauge live. Returns the cache for chaining.
func (c *Cache) WithMetrics(m *obs.Metrics) *Cache {
	c.metrics = m
	return c
}

func keyOf(file, src string) cacheKey {
	h := sha256.New()
	h.Write([]byte(file))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// Compile parses and lowers source, serving repeated requests for the same
// (file, src) from the cache. The returned program is the shared cached AST
// (read-only by convention); the returned module is a fresh clone that the
// caller may execute and mutate freely. Front-end errors are cached too —
// they are deterministic per source text.
func (c *Cache) Compile(file, src string) (*ast.Program, *ir.Module, error) {
	prog, mod, _, err := c.CompileHit(file, src)
	return prog, mod, err
}

// CompileHit is Compile plus a hit report: hit is true when the front-end
// work was served from the cache (including cached front-end errors).
func (c *Cache) CompileHit(file, src string) (prog *ast.Program, mod *ir.Module, hit bool, err error) {
	k := keyOf(file, src)

	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		e = &entry{key: k}
		e.elem = c.lru.PushFront(e)
		c.entries[k] = e
		for len(c.entries) > c.max {
			back := c.lru.Back()
			be := back.Value.(*entry)
			c.lru.Remove(back)
			delete(c.entries, be.key)
			if be.isErr {
				c.errCount--
			}
			c.evictions.Add(1)
			c.count(func(m *obs.Metrics) { m.Counter("progcache_evictions_total").Inc() })
		}
	}
	entries := len(c.entries)
	c.mu.Unlock()

	if ok {
		c.hits.Add(1)
		c.count(func(m *obs.Metrics) { m.Counter("progcache_hits_total").Inc() })
	} else {
		c.misses.Add(1)
		c.count(func(m *obs.Metrics) { m.Counter("progcache_misses_total").Inc() })
	}
	c.count(func(m *obs.Metrics) {
		m.Gauge("progcache_entries").Set(float64(entries))
		s := c.Stats()
		m.Gauge("progcache_hit_ratio").Set(s.HitRate())
	})

	e.once.Do(func() {
		prog, err := parser.Parse(file, src)
		if err != nil {
			e.err = err
			return
		}
		mod, err := ir.Lower(prog)
		if err != nil {
			e.err = err
			return
		}
		// Compile to bytecode under the same singleflight: clones share the
		// master's blocks, so the code must be attached before any clone can
		// execute concurrently. The compiled module serves both engines —
		// tree-engine runs simply ignore the attached code — and is evicted
		// (and thus invalidated) together with the lowered module.
		vm.Ensure(mod)
		e.prog, e.mod = prog, mod
	})
	if e.err != nil {
		c.noteError(e)
		return nil, nil, ok, e.err
	}
	return e.prog, e.mod.Clone(), ok, nil
}

// noteError folds a finished compilation's error outcome into the
// error-entry accounting, exactly once per entry, and enforces the error
// cap by evicting the least-recently-used cached errors beyond it.
// Cached diagnostics cost microseconds to recreate, so shedding them
// protects the expensive compiled programs sharing the LRU.
func (c *Cache) noteError(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.counted {
		return
	}
	e.counted = true
	// The entry may have been evicted by the capacity sweep while its
	// compilation was still in flight; it then holds no cache slot.
	if c.entries[e.key] != e {
		return
	}
	e.isErr = true
	c.errCount++
	for elem := c.lru.Back(); elem != nil && c.errCount > c.errMax; {
		prev := elem.Prev()
		be := elem.Value.(*entry)
		if be.isErr {
			c.lru.Remove(elem)
			delete(c.entries, be.key)
			c.errCount--
			c.evictions.Add(1)
			c.errEvictions.Add(1)
			c.count(func(m *obs.Metrics) {
				m.Counter("progcache_evictions_total").Inc()
				m.Counter("progcache_error_evictions_total").Inc()
			})
		}
		elem = prev
	}
	entries, errs := len(c.entries), c.errCount
	c.count(func(m *obs.Metrics) {
		m.Gauge("progcache_entries").Set(float64(entries))
		m.Gauge("progcache_error_entries").Set(float64(errs))
	})
}

// count runs f against the attached registry, if any.
func (c *Cache) count(f func(*obs.Metrics)) {
	if c.metrics != nil {
		f(c.metrics)
	}
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits, Misses, Evictions int64
	// ErrorEvictions counts evictions forced by the error-entry cap (also
	// included in Evictions).
	ErrorEvictions int64
	Entries        int
	// ErrorEntries counts live entries caching a front-end error; they
	// are capped separately from Entries (see New).
	ErrorEntries int
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats reports cumulative hit/miss/eviction counts and the live entry
// count.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n, errs := len(c.entries), c.errCount
	c.mu.Unlock()
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		ErrorEvictions: c.errEvictions.Load(),
		Entries:        n,
		ErrorEntries:   errs,
	}
}
