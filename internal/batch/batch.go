// Package batch is a bounded worker-pool engine for fanning independent
// analysis jobs across goroutines. The paper's two case studies (Table 1
// jQuery specialization, §5.2 eval elimination) and multi-seed fact
// gathering (§7) are embarrassingly parallel batches of independent
// analyses; this package runs them concurrently while guaranteeing output
// byte-identical to the serial path.
//
// The determinism contract: Map places each job's result at its submission
// index and callers fold results in submission order, so for deterministic
// jobs the merged outcome is independent of worker count and goroutine
// scheduling. The differential suite in this package's tests asserts the
// contract end to end against the experiment harness.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"determinacy/internal/obs"
)

// Pool runs batches of jobs on a bounded set of worker goroutines. A Pool
// is cheap (it holds no goroutines between batches — workers are spawned
// per Map call and exit when the batch drains) and safe for concurrent use.
type Pool struct {
	workers int
	metrics *obs.Metrics
	pubMu   sync.Mutex // serializes publish so delta accounting stays exact
	// published is the snapshot already mirrored into the registry; publish
	// adds only the delta, so several pools can share one registry and
	// their counters accumulate instead of clobbering.
	published Snapshot

	jobs    atomic.Int64
	batches atomic.Int64
	busyNS  atomic.Int64
	wallNS  atomic.Int64
	longNS  atomic.Int64 // longest single job observed
}

// New creates a pool with the given worker bound; non-positive means
// GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// WithMetrics attaches a metrics registry; the pool then maintains
// batch_pool_* counters and gauges (jobs, batches, busy/wall time,
// utilization, longest job) live. Returns the pool for chaining.
func (p *Pool) WithMetrics(m *obs.Metrics) *Pool {
	p.metrics = m
	if m != nil {
		m.Gauge("batch_pool_workers").Set(float64(p.workers))
	}
	return p
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Snapshot is a point-in-time view of cumulative pool activity.
type Snapshot struct {
	Jobs, Batches int64
	// Busy is the summed duration of all jobs; Wall is the summed
	// wall-clock duration of all Map calls.
	Busy, Wall time.Duration
	// LongestJob is the longest single job observed — the lower bound on
	// any batch's wall-clock time regardless of worker count.
	LongestJob time.Duration
}

// Utilization is Busy / (Wall × workers): the fraction of available worker
// time spent executing jobs.
func (s Snapshot) utilization(workers int) float64 {
	if s.Wall <= 0 || workers <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Wall) * float64(workers))
}

// Snapshot reports cumulative pool activity.
func (p *Pool) Snapshot() Snapshot {
	return Snapshot{
		Jobs:       p.jobs.Load(),
		Batches:    p.batches.Load(),
		Busy:       time.Duration(p.busyNS.Load()),
		Wall:       time.Duration(p.wallNS.Load()),
		LongestJob: time.Duration(p.longNS.Load()),
	}
}

// Utilization reports cumulative busy time over available worker time.
func (p *Pool) Utilization() float64 { return p.Snapshot().utilization(p.workers) }

// Map runs job(0..n-1) on the pool's workers and returns the n results in
// submission order. Jobs are claimed from a shared counter, so workers stay
// busy under uneven job costs, but the result slice layout — and therefore
// everything a caller derives from it by in-order folding — is identical to
// a serial loop. A panicking job stops the batch after in-flight jobs
// finish and re-panics on the calling goroutine.
func Map[T any](p *Pool, n int, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := p.workers
	if workers > n {
		workers = n
	}

	start := time.Now()
	var busy atomic.Int64

	timedJob := func(i int) {
		t0 := time.Now()
		out[i] = job(i)
		d := int64(time.Since(t0))
		busy.Add(d)
		atomicMax(&p.longNS, d)
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			timedJob(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicOnce sync.Once
		var panicked atomic.Bool
		var panicVal any
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n || panicked.Load() {
						return
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								panicOnce.Do(func() {
									panicVal = fmt.Errorf("batch: job %d panicked: %v", i, r)
									panicked.Store(true)
								})
							}
						}()
						timedJob(i)
					}()
				}
			}()
		}
		wg.Wait()
		if panicked.Load() {
			panic(panicVal)
		}
	}

	wall := time.Since(start)
	p.jobs.Add(int64(n))
	p.batches.Add(1)
	p.busyNS.Add(busy.Load())
	p.wallNS.Add(int64(wall))
	p.publish()
	return out
}

// publish mirrors cumulative activity into the attached registry. The
// pool-wide mutex serializes concurrent batch completions so the raise-to-
// cumulative-total counter updates stay exact.
func (p *Pool) publish() {
	m := p.metrics
	if m == nil {
		return
	}
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	s := p.Snapshot()
	m.Counter("batch_pool_jobs_total").Add(s.Jobs - p.published.Jobs)
	m.Counter("batch_pool_batches_total").Add(s.Batches - p.published.Batches)
	m.Counter("batch_pool_busy_nanoseconds_total").Add(int64(s.Busy - p.published.Busy))
	m.Counter("batch_pool_wall_nanoseconds_total").Add(int64(s.Wall - p.published.Wall))
	m.Gauge("batch_pool_workers").Set(float64(p.workers))
	m.Gauge("batch_pool_utilization").Set(s.utilization(p.workers))
	m.Gauge("batch_pool_longest_job_seconds").SetMax(s.LongestJob.Seconds())
	p.published = s
}

// atomicMax stores v into p if it exceeds the current value.
func atomicMax(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if cur >= v || p.CompareAndSwap(cur, v) {
			return
		}
	}
}
