// Package batch is a bounded worker-pool engine for fanning independent
// analysis jobs across goroutines. The paper's two case studies (Table 1
// jQuery specialization, §5.2 eval elimination) and multi-seed fact
// gathering (§7) are embarrassingly parallel batches of independent
// analyses; this package runs them concurrently while guaranteeing output
// byte-identical to the serial path.
//
// The determinism contract: Map places each job's result at its submission
// index and callers fold results in submission order, so for deterministic
// jobs the merged outcome is independent of worker count and goroutine
// scheduling. The differential suite in this package's tests asserts the
// contract end to end against the experiment harness.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

// Pool runs batches of jobs on a bounded set of worker goroutines. A Pool
// is cheap (it holds no goroutines between batches — workers are spawned
// per Map call and exit when the batch drains) and safe for concurrent use.
type Pool struct {
	workers int
	metrics *obs.Metrics
	pubMu   sync.Mutex // serializes publish so delta accounting stays exact
	// published is the snapshot already mirrored into the registry; publish
	// adds only the delta, so several pools can share one registry and
	// their counters accumulate instead of clobbering.
	published Snapshot

	jobs        atomic.Int64
	batches     atomic.Int64
	quarantined atomic.Int64 // jobs that panicked and were quarantined
	cancelled   atomic.Int64 // jobs skipped because the batch ctx was cancelled
	busyNS      atomic.Int64
	wallNS      atomic.Int64
	longNS      atomic.Int64 // longest single job observed
}

// New creates a pool with the given worker bound; non-positive means
// GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// WithMetrics attaches a metrics registry; the pool then maintains
// batch_pool_* counters and gauges (jobs, batches, busy/wall time,
// utilization, longest job) live. Returns the pool for chaining.
func (p *Pool) WithMetrics(m *obs.Metrics) *Pool {
	p.metrics = m
	if m != nil {
		m.Gauge("batch_pool_workers").Set(float64(p.workers))
	}
	return p
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Snapshot is a point-in-time view of cumulative pool activity.
type Snapshot struct {
	Jobs, Batches int64
	// Quarantined counts jobs that panicked (recovered into their result
	// slot); Cancelled counts jobs skipped after batch-ctx cancellation.
	Quarantined, Cancelled int64
	// Busy is the summed duration of all jobs; Wall is the summed
	// wall-clock duration of all Map calls.
	Busy, Wall time.Duration
	// LongestJob is the longest single job observed — the lower bound on
	// any batch's wall-clock time regardless of worker count.
	LongestJob time.Duration
}

// Utilization is Busy / (Wall × workers): the fraction of available worker
// time spent executing jobs.
func (s Snapshot) utilization(workers int) float64 {
	if s.Wall <= 0 || workers <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Wall) * float64(workers))
}

// Snapshot reports cumulative pool activity.
func (p *Pool) Snapshot() Snapshot {
	return Snapshot{
		Jobs:        p.jobs.Load(),
		Batches:     p.batches.Load(),
		Quarantined: p.quarantined.Load(),
		Cancelled:   p.cancelled.Load(),
		Busy:        time.Duration(p.busyNS.Load()),
		Wall:        time.Duration(p.wallNS.Load()),
		LongestJob:  time.Duration(p.longNS.Load()),
	}
}

// Utilization reports cumulative busy time over available worker time.
func (p *Pool) Utilization() float64 { return p.Snapshot().utilization(p.workers) }

// Quarantine records a job that produced no result: a panic (converted to
// a *guard.RunError and wrapped with the job index) or the batch
// context's cancellation error. The result slot at Index holds T's zero
// value.
type Quarantine struct {
	Index int
	Err   error
}

// Map runs job(0..n-1) on the pool's workers and returns the n results in
// submission order. Jobs are claimed from a shared counter, so workers stay
// busy under uneven job costs, but the result slice layout — and therefore
// everything a caller derives from it by in-order folding — is identical to
// a serial loop. A panicking job no longer poisons the batch: the pool
// quarantines it, finishes every other job, and only after the batch has
// fully drained re-panics the lowest-index quarantined error on the
// calling goroutine. Callers that want quarantines as values use MapCtx.
func Map[T any](p *Pool, n int, job func(i int) T) []T {
	out, qs := MapCtx(context.Background(), p, n, job)
	if len(qs) > 0 {
		panic(qs[0].Err)
	}
	return out
}

// MapCtx is Map with cooperative cancellation and panic quarantine. A
// panicking job is recovered into a *guard.RunError recorded in the
// returned quarantine list (sorted by job index) while every other job
// still runs; its result slot keeps T's zero value. When ctx is cancelled
// mid-batch, in-flight jobs finish, workers stop starting new ones, and
// every unstarted job gets a ctx-wrapped quarantine entry — the pool
// drains cleanly without leaking queued jobs or goroutines. Completed
// jobs' results land at their submission index, preserving the
// determinism contract for the jobs that did run.
func MapCtx[T any](ctx context.Context, p *Pool, n int, job func(i int) T) ([]T, []Quarantine) {
	return MapCtxGated(ctx, p, n, nil, job)
}

// MapCtxGated is MapCtx with a dispatch gate: when gate is non-nil it runs
// before each job starts. A gate returning an error skips the job (it gets
// a quarantine entry wrapping that error, like ctx cancellation); a gate
// that briefly blocks paces the batch's dispatch — the server's priority
// scheduler uses this to make a slot-holding bulk batch yield CPU to
// queued interactive work. Gates must be bounded: a gate that waits on the
// very requests this batch's slot is blocking would deadlock the pool.
func MapCtxGated[T any](ctx context.Context, p *Pool, n int, gate func(context.Context) error, job func(i int) T) ([]T, []Quarantine) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	qerr := make([]error, n)
	workers := p.workers
	if workers > n {
		workers = n
	}

	start := time.Now()
	var busy atomic.Int64

	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				re, ok := r.(*guard.RunError)
				if !ok {
					re = guard.New("batch", r)
				}
				qerr[i] = fmt.Errorf("batch: job %d panicked: %w", i, re)
			}
		}()
		if faultinject.Armed() {
			faultinject.Hit(faultinject.SiteBatchJob)
		}
		t0 := time.Now()
		out[i] = job(i)
		d := int64(time.Since(t0))
		busy.Add(d)
		atomicMax(&p.longNS, d)
	}

	oneJob := func(i int) {
		if err := ctx.Err(); err != nil {
			qerr[i] = fmt.Errorf("batch: job %d not run: %w", i, err)
			return
		}
		if gate != nil {
			if err := gate(ctx); err != nil {
				qerr[i] = fmt.Errorf("batch: job %d not run: %w", i, err)
				return
			}
		}
		runOne(i)
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			oneJob(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					oneJob(i)
				}
			}()
		}
		wg.Wait()
	}

	var qs []Quarantine
	var quarantined, cancelled int64
	for i, err := range qerr {
		if err == nil {
			continue
		}
		qs = append(qs, Quarantine{Index: i, Err: err})
		var re *guard.RunError
		if errors.As(err, &re) {
			quarantined++
		} else {
			cancelled++
		}
	}

	wall := time.Since(start)
	p.jobs.Add(int64(n))
	p.batches.Add(1)
	p.quarantined.Add(quarantined)
	p.cancelled.Add(cancelled)
	p.busyNS.Add(busy.Load())
	p.wallNS.Add(int64(wall))
	p.publish()
	return out, qs
}

// publish mirrors cumulative activity into the attached registry. The
// pool-wide mutex serializes concurrent batch completions so the raise-to-
// cumulative-total counter updates stay exact.
func (p *Pool) publish() {
	m := p.metrics
	if m == nil {
		return
	}
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	s := p.Snapshot()
	m.Counter("batch_pool_jobs_total").Add(s.Jobs - p.published.Jobs)
	m.Counter("batch_pool_batches_total").Add(s.Batches - p.published.Batches)
	m.Counter("batch_pool_quarantined_total").Add(s.Quarantined - p.published.Quarantined)
	m.Counter("batch_pool_cancelled_jobs_total").Add(s.Cancelled - p.published.Cancelled)
	m.Counter("batch_pool_busy_nanoseconds_total").Add(int64(s.Busy - p.published.Busy))
	m.Counter("batch_pool_wall_nanoseconds_total").Add(int64(s.Wall - p.published.Wall))
	m.Gauge("batch_pool_workers").Set(float64(p.workers))
	m.Gauge("batch_pool_utilization").Set(s.utilization(p.workers))
	m.Gauge("batch_pool_longest_job_seconds").SetMax(s.LongestJob.Seconds())
	p.published = s
}

// atomicMax stores v into p if it exceeds the current value.
func atomicMax(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if cur >= v || p.CompareAndSwap(cur, v) {
			return
		}
	}
}
