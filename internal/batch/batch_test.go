package batch

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"determinacy/internal/guard"
	"determinacy/internal/obs"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		p := New(workers)
		out := Map(p, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyBatch(t *testing.T) {
	p := New(4)
	if out := Map(p, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("Map with n=0 returned %v, want nil", out)
	}
	if s := p.Snapshot(); s.Batches != 0 || s.Jobs != 0 {
		t.Fatalf("empty batch recorded activity: %+v", s)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := New(w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("New(%d).Workers() = %d, want GOMAXPROCS = %d", w, got, runtime.GOMAXPROCS(0))
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	const n = 500
	var counts [n]int32
	var mu sync.Mutex
	p := New(8)
	Map(p, n, func(i int) struct{} {
		mu.Lock()
		counts[i]++
		mu.Unlock()
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times, want exactly once", i, c)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	p := New(4)
	var ran [8]bool
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map did not re-panic on the caller")
		}
		msg, ok := r.(error)
		if !ok || !strings.Contains(msg.Error(), "job 3 panicked") || !strings.Contains(msg.Error(), "boom") {
			t.Fatalf("panic value = %v, want wrapped job-3 boom", r)
		}
		var re *guard.RunError
		if !errors.As(msg, &re) {
			t.Fatalf("panic value %v does not unwrap to *guard.RunError", r)
		}
		if re.Phase != "batch" {
			t.Fatalf("RunError.Phase = %q, want batch", re.Phase)
		}
		// The quarantine contract: the panicking job must not have killed
		// the rest of the batch.
		for i, ok := range ran {
			if i != 3 && !ok {
				t.Fatalf("job %d never ran: panic in job 3 leaked into the batch", i)
			}
		}
	}()
	Map(p, 8, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		ran[i] = true
		return i
	})
}

func TestSnapshotAccounting(t *testing.T) {
	p := New(2)
	const n = 6
	Map(p, n, func(i int) int {
		time.Sleep(2 * time.Millisecond)
		return i
	})
	s := p.Snapshot()
	if s.Jobs != n || s.Batches != 1 {
		t.Fatalf("jobs=%d batches=%d, want %d/1", s.Jobs, s.Batches, n)
	}
	if s.Busy < n*2*time.Millisecond {
		t.Fatalf("busy = %v, want >= %v", s.Busy, n*2*time.Millisecond)
	}
	if s.Wall <= 0 || s.LongestJob < 2*time.Millisecond {
		t.Fatalf("wall = %v longest = %v, want both positive", s.Wall, s.LongestJob)
	}
	if u := p.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("utilization = %v, want in (0, 1] (small scheduling slop tolerated)", u)
	}
}

// TestSharedRegistryAccumulates pins the delta-publishing contract: several
// pools mirroring into one registry must accumulate, not clobber each other.
func TestSharedRegistryAccumulates(t *testing.T) {
	m := obs.NewMetrics()
	p1 := New(2).WithMetrics(m)
	p2 := New(4).WithMetrics(m)
	Map(p1, 10, func(i int) int { return i })
	Map(p2, 7, func(i int) int { return i })
	Map(p1, 3, func(i int) int { return i })
	if got := m.Counter("batch_pool_jobs_total").Value(); got != 20 {
		t.Fatalf("jobs_total = %d, want 20 (10+7+3 across two pools)", got)
	}
	if got := m.Counter("batch_pool_batches_total").Value(); got != 3 {
		t.Fatalf("batches_total = %d, want 3", got)
	}
}

// TestConcurrentBatches drives one pool from many goroutines at once; run
// under -race this checks Map and the metrics mirror for data races.
func TestConcurrentBatches(t *testing.T) {
	m := obs.NewMetrics()
	p := New(4).WithMetrics(m)
	var wg sync.WaitGroup
	const batches, jobs = 8, 25
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := Map(p, jobs, func(i int) int { return i + 1 })
			for i, v := range out {
				if v != i+1 {
					t.Errorf("out[%d] = %d, want %d", i, v, i+1)
				}
			}
		}()
	}
	wg.Wait()
	if s := p.Snapshot(); s.Jobs != batches*jobs || s.Batches != batches {
		t.Fatalf("snapshot %+v, want %d jobs / %d batches", s, batches*jobs, batches)
	}
	if got := m.Counter("batch_pool_jobs_total").Value(); got != batches*jobs {
		t.Fatalf("jobs_total = %d, want %d", got, batches*jobs)
	}
}

func TestMapCtxQuarantinesPanics(t *testing.T) {
	p := New(4)
	out, qs := MapCtx(context.Background(), p, 10, func(i int) int {
		if i == 2 || i == 7 {
			panic(i)
		}
		return i * 10
	})
	if len(qs) != 2 || qs[0].Index != 2 || qs[1].Index != 7 {
		t.Fatalf("quarantines = %+v, want indices [2 7]", qs)
	}
	for _, q := range qs {
		var re *guard.RunError
		if !errors.As(q.Err, &re) {
			t.Fatalf("quarantine %d error %v does not unwrap to *guard.RunError", q.Index, q.Err)
		}
		if out[q.Index] != 0 {
			t.Fatalf("out[%d] = %d, want zero value for quarantined slot", q.Index, out[q.Index])
		}
	}
	for _, i := range []int{0, 1, 3, 4, 5, 6, 8, 9} {
		if out[i] != i*10 {
			t.Fatalf("out[%d] = %d, want %d: healthy jobs must complete", i, out[i], i*10)
		}
	}
	if s := p.Snapshot(); s.Quarantined != 2 || s.Cancelled != 0 {
		t.Fatalf("snapshot quarantined=%d cancelled=%d, want 2/0", s.Quarantined, s.Cancelled)
	}
}

func TestMapCtxCancelDrainsCleanly(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 64
	var started atomic.Int64
	out, qs := MapCtx(ctx, p, n, func(i int) int {
		if started.Add(1) == 3 {
			cancel()
		}
		return i + 1
	})
	if len(qs) == 0 {
		t.Fatal("expected some jobs to be skipped after cancellation")
	}
	skipped := map[int]bool{}
	for _, q := range qs {
		if !errors.Is(q.Err, context.Canceled) {
			t.Fatalf("skip error %v does not wrap context.Canceled", q.Err)
		}
		var re *guard.RunError
		if errors.As(q.Err, &re) {
			t.Fatalf("skip error %v misclassified as a panic quarantine", q.Err)
		}
		skipped[q.Index] = true
	}
	// Every slot either completed with its real value or was skipped with a
	// ctx-wrapped error — no slot silently lost.
	for i := 0; i < n; i++ {
		if skipped[i] {
			if out[i] != 0 {
				t.Fatalf("out[%d] = %d, want zero for skipped job", i, out[i])
			}
		} else if out[i] != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
		}
	}
	if s := p.Snapshot(); s.Cancelled != int64(len(qs)) || s.Quarantined != 0 {
		t.Fatalf("snapshot quarantined=%d cancelled=%d, want 0/%d", s.Quarantined, s.Cancelled, len(qs))
	}
}

func TestMapCtxNilCtxAndSerialPath(t *testing.T) {
	p := New(1) // serial path
	out, qs := MapCtx(nil, p, 4, func(i int) int {
		if i == 1 {
			panic("serial boom")
		}
		return i
	})
	if len(qs) != 1 || qs[0].Index != 1 {
		t.Fatalf("quarantines = %+v, want exactly job 1", qs)
	}
	if out[3] != 3 {
		t.Fatalf("job after the panicking one did not run on the serial path")
	}
}

// TestMapCtxCancelStress hammers a workers=8 pool with batches whose jobs
// race panics against mid-batch cancellation; under -race this proves the
// drain logic leaks neither goroutines nor result slots. Every batch must
// account for all n slots as completed, quarantined, or cancelled.
func TestMapCtxCancelStress(t *testing.T) {
	p := New(8)
	const rounds, n = 40, 64
	for r := 0; r < rounds; r++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancelAt := int64(1 + r%17)
		var started atomic.Int64
		out, qs := MapCtx(ctx, p, n, func(i int) int {
			if started.Add(1) == cancelAt {
				cancel()
			}
			if i%13 == 5 {
				panic("stress boom")
			}
			return i + 1
		})
		cancel()
		seen := map[int]bool{}
		for _, q := range qs {
			if seen[q.Index] {
				t.Fatalf("round %d: index %d quarantined twice", r, q.Index)
			}
			seen[q.Index] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] && i%13 != 5 && out[i] != i+1 && out[i] != 0 {
				t.Fatalf("round %d: out[%d] = %d is neither a result, zero, nor quarantined", r, i, out[i])
			}
			if i%13 == 5 && !seen[i] && out[i] != 0 {
				t.Fatalf("round %d: panicking job %d has a result %d", r, i, out[i])
			}
		}
	}
	if s := p.Snapshot(); s.Jobs != rounds*n {
		t.Fatalf("snapshot jobs=%d, want %d: batches must fully drain", s.Jobs, rounds*n)
	}
}
