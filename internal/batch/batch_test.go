package batch

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"determinacy/internal/obs"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		p := New(workers)
		out := Map(p, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results, want 100", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyBatch(t *testing.T) {
	p := New(4)
	if out := Map(p, 0, func(i int) int { return i }); out != nil {
		t.Fatalf("Map with n=0 returned %v, want nil", out)
	}
	if s := p.Snapshot(); s.Batches != 0 || s.Jobs != 0 {
		t.Fatalf("empty batch recorded activity: %+v", s)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	for _, w := range []int{0, -3} {
		if got := New(w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("New(%d).Workers() = %d, want GOMAXPROCS = %d", w, got, runtime.GOMAXPROCS(0))
		}
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	const n = 500
	var counts [n]int32
	var mu sync.Mutex
	p := New(8)
	Map(p, n, func(i int) struct{} {
		mu.Lock()
		counts[i]++
		mu.Unlock()
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("job %d ran %d times, want exactly once", i, c)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	p := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map did not re-panic on the caller")
		}
		msg, ok := r.(error)
		if !ok || !strings.Contains(msg.Error(), "job 3 panicked: boom") {
			t.Fatalf("panic value = %v, want wrapped job-3 boom", r)
		}
	}()
	Map(p, 8, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		return i
	})
}

func TestSnapshotAccounting(t *testing.T) {
	p := New(2)
	const n = 6
	Map(p, n, func(i int) int {
		time.Sleep(2 * time.Millisecond)
		return i
	})
	s := p.Snapshot()
	if s.Jobs != n || s.Batches != 1 {
		t.Fatalf("jobs=%d batches=%d, want %d/1", s.Jobs, s.Batches, n)
	}
	if s.Busy < n*2*time.Millisecond {
		t.Fatalf("busy = %v, want >= %v", s.Busy, n*2*time.Millisecond)
	}
	if s.Wall <= 0 || s.LongestJob < 2*time.Millisecond {
		t.Fatalf("wall = %v longest = %v, want both positive", s.Wall, s.LongestJob)
	}
	if u := p.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("utilization = %v, want in (0, 1] (small scheduling slop tolerated)", u)
	}
}

// TestSharedRegistryAccumulates pins the delta-publishing contract: several
// pools mirroring into one registry must accumulate, not clobber each other.
func TestSharedRegistryAccumulates(t *testing.T) {
	m := obs.NewMetrics()
	p1 := New(2).WithMetrics(m)
	p2 := New(4).WithMetrics(m)
	Map(p1, 10, func(i int) int { return i })
	Map(p2, 7, func(i int) int { return i })
	Map(p1, 3, func(i int) int { return i })
	if got := m.Counter("batch_pool_jobs_total").Value(); got != 20 {
		t.Fatalf("jobs_total = %d, want 20 (10+7+3 across two pools)", got)
	}
	if got := m.Counter("batch_pool_batches_total").Value(); got != 3 {
		t.Fatalf("batches_total = %d, want 3", got)
	}
}

// TestConcurrentBatches drives one pool from many goroutines at once; run
// under -race this checks Map and the metrics mirror for data races.
func TestConcurrentBatches(t *testing.T) {
	m := obs.NewMetrics()
	p := New(4).WithMetrics(m)
	var wg sync.WaitGroup
	const batches, jobs = 8, 25
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := Map(p, jobs, func(i int) int { return i + 1 })
			for i, v := range out {
				if v != i+1 {
					t.Errorf("out[%d] = %d, want %d", i, v, i+1)
				}
			}
		}()
	}
	wg.Wait()
	if s := p.Snapshot(); s.Jobs != batches*jobs || s.Batches != batches {
		t.Fatalf("snapshot %+v, want %d jobs / %d batches", s, batches*jobs, batches)
	}
	if got := m.Counter("batch_pool_jobs_total").Value(); got != batches*jobs {
		t.Fatalf("jobs_total = %d, want %d", got, batches*jobs)
	}
}
