package batch

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapCtxGatedRunsGatePerJob: a nil-error gate runs exactly once per
// job and leaves results byte-identical to the ungated path.
func TestMapCtxGatedRunsGatePerJob(t *testing.T) {
	p := New(4)
	var gateCalls atomic.Int64
	gate := func(ctx context.Context) error {
		gateCalls.Add(1)
		return nil
	}
	out, qs := MapCtxGated(context.Background(), p, 16, gate, func(i int) int { return i * i })
	if len(qs) != 0 {
		t.Fatalf("quarantines from a permissive gate: %v", qs)
	}
	if got := gateCalls.Load(); got != 16 {
		t.Fatalf("gate ran %d times, want 16 (once per job)", got)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapCtxGatedGateErrorSkipsJob: a gate refusal quarantines the job
// (zero-value result slot, wrapped error) without poisoning the batch.
func TestMapCtxGatedGateErrorSkipsJob(t *testing.T) {
	p := New(1) // serial: job order is submission order, so the cut is exact
	refusal := errors.New("yielding to higher-priority work")
	var calls int
	gate := func(ctx context.Context) error {
		calls++
		if calls > 3 {
			return refusal
		}
		return nil
	}
	out, qs := MapCtxGated(context.Background(), p, 6, gate, func(i int) int { return i + 100 })
	if len(qs) != 3 {
		t.Fatalf("quarantined %d jobs, want 3: %v", len(qs), qs)
	}
	for _, q := range qs {
		if !errors.Is(q.Err, refusal) {
			t.Fatalf("quarantine %d does not wrap the gate error: %v", q.Index, q.Err)
		}
		if !strings.Contains(q.Err.Error(), "not run") {
			t.Fatalf("quarantine message %q does not say the job was skipped", q.Err)
		}
		if out[q.Index] != 0 {
			t.Fatalf("skipped job %d has non-zero result %d", q.Index, out[q.Index])
		}
	}
	for i := 0; i < 3; i++ {
		if out[i] != i+100 {
			t.Fatalf("gated-through job %d result = %d, want %d", i, out[i], i+100)
		}
	}
	// Gate skips account as cancelled (no result), not quarantined (panic).
	if s := p.Snapshot(); s.Cancelled != 3 || s.Quarantined != 0 {
		t.Fatalf("snapshot cancelled=%d quarantined=%d, want 3/0", s.Cancelled, s.Quarantined)
	}
}

// TestMapCtxGatedGateSeesCancellation: the gate receives the batch ctx so
// a pacing gate can stop waiting the moment the batch is cancelled.
func TestMapCtxGatedGateSeesCancellation(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	gate := func(gctx context.Context) error {
		cancel() // cancel mid-batch from inside the first gate call
		select {
		case <-gctx.Done():
			return gctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	}
	_, qs := MapCtxGated(ctx, p, 4, gate, func(i int) int { return i })
	if len(qs) != 4 {
		t.Fatalf("quarantined %d jobs after mid-batch cancel, want all 4", len(qs))
	}
	for _, q := range qs {
		if !errors.Is(q.Err, context.Canceled) {
			t.Fatalf("quarantine %d: %v, want context.Canceled", q.Index, q.Err)
		}
	}
}
