package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"determinacy/internal/guard"
)

// TestMapCtxNoGoroutineLeakUnderCancelAndQuarantine is the regression
// test for the drain contract: batches whose jobs panic while the batch
// context is being cancelled must still return every worker. An early
// worker-teardown bug class leaks one goroutine per quarantined job; this
// fails loudly on any of them. The TestMapCtx prefix keeps it inside the
// CI fault-injection job's -run filter.
func TestMapCtxNoGoroutineLeakUnderCancelAndQuarantine(t *testing.T) {
	p := New(4)
	base := runtime.NumGoroutine()

	for round := 0; round < 50; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		out, qs := MapCtx(ctx, p, 32, func(i int) int {
			switch {
			case i%5 == 1:
				panic("poisoned job")
			case i%5 == 2:
				// Cancel mid-batch from inside a job, racing the workers'
				// claim loop against the panic recovery path.
				once.Do(cancel)
			}
			return i
		})
		cancel()

		if len(out) != 32 {
			t.Fatalf("round %d: %d results, want 32", round, len(out))
		}
		for _, q := range qs {
			var re *guard.RunError
			if !errors.As(q.Err, &re) && !errors.Is(q.Err, context.Canceled) {
				t.Fatalf("round %d: quarantine %d is neither RunError nor ctx error: %v", round, q.Index, q.Err)
			}
		}
		if len(qs) == 0 {
			t.Fatalf("round %d: no quarantines despite panicking jobs", round)
		}
	}

	// Workers are per-batch: after every MapCtx returns, the goroutine
	// count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d at baseline, %d after 50 cancel+quarantine batches", base, n)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapCtxCancelRaceDeterministicSlots pins that a cancel arriving at an
// arbitrary point still yields results at their submission indices for
// the jobs that ran, and ctx-wrapped quarantines for the ones that did
// not — never a zero-value slot without a matching quarantine entry.
func TestMapCtxCancelRaceDeterministicSlots(t *testing.T) {
	p := New(4)
	for round := 0; round < 25; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
			cancel()
		}()
		out, qs := MapCtx(ctx, p, 64, func(i int) int {
			time.Sleep(50 * time.Microsecond)
			return i + 1
		})
		cancel()

		skipped := map[int]bool{}
		for _, q := range qs {
			skipped[q.Index] = true
			if !errors.Is(q.Err, context.Canceled) {
				t.Fatalf("round %d: quarantine %d: %v, want ctx.Canceled wrap", round, q.Index, q.Err)
			}
		}
		for i, v := range out {
			if skipped[i] {
				if v != 0 {
					t.Fatalf("round %d: skipped job %d has non-zero result %d", round, i, v)
				}
				continue
			}
			if v != i+1 {
				t.Fatalf("round %d: job %d result %d, want %d", round, i, v, i+1)
			}
		}
	}
}
