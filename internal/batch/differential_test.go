// Differential tests for the batch engine's determinism contract: every
// user-visible product of the pipeline — analysis facts, merged statistics,
// formatted experiment tables — must be byte-identical whether computed
// serially (workers=1) or on a parallel pool. The tests live in an external
// test package so they can drive the public determinacy API, which itself
// sits on top of internal/batch.
package batch_test

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"determinacy"
	"determinacy/internal/experiment"
	"determinacy/internal/workload"
)

// parallelWorkers is the worker count differential runs compare against the
// serial path. CI pins it via BATCH_WORKERS=8; the default oversubscribes a
// small machine on purpose so job claiming interleaves even under -race.
func parallelWorkers(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("BATCH_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			t.Fatalf("BATCH_WORKERS=%q: want an integer >= 2", s)
		}
		return n
	}
	return 8
}

// figure2 is the paper's Figure 2 program as used by examples/quickstart —
// the canonical mix of determinate and indeterminate facts, heap flushes,
// and counterfactual execution.
const figure2 = `(function() {
function checkf(p) {
	if (p.f < 32)
		setg(p, 42);
}
function setg(r, v) {
	r.g = v;
}
var x = { f : 23 },
	y = { f : Math.random()*100 };
var probe_xf = x.f;
var probe_yf = y.f;
checkf(x);
var probe_xg = x.g;
checkf(y);
var probe_yg = y.g;
(y.f > 50 ? checkf : setg)(x, 72);
var probe_xg2 = x.g;
var z = { f: x.g - 16, h: true };
checkf(z);
var probe_zg = z.g;
var probe_zh = z.h;
})();`

// resultFingerprint reduces a Result to its deterministic observable
// surface. Fact values render through Fact.String, which shows "?" for
// indeterminate facts — their retained sample value is first-merge-wins and
// deliberately outside the determinism contract.
func resultFingerprint(res *determinacy.Result) []string {
	var fp []string
	fp = append(fp, fmt.Sprintf("facts=%d determinate=%d handlers=%d stopped=%v",
		res.NumFacts(), res.NumDeterminate(), res.HandlersRan, res.Stopped))
	for _, f := range res.Facts() {
		fp = append(fp, f.String())
	}
	return fp
}

func diffFingerprints(t *testing.T, label string, serial, parallel []string) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: %d serial lines vs %d parallel", label, len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("%s: line %d differs\n  serial:   %s\n  parallel: %s",
				label, i, serial[i], parallel[i])
		}
	}
}

// TestDifferentialAnalyzeRuns sweeps representative programs — the paper's
// Figure 2, eval-corpus benchmarks, a jQuery workload, and generated random
// programs — through multi-seed AnalyzeRuns serially and in parallel, and
// requires identical facts and merged statistics.
func TestDifferentialAnalyzeRuns(t *testing.T) {
	workers := parallelWorkers(t)
	seeds := []uint64{1, 2, 3, 4, 5, 6}

	type program struct {
		name string
		src  string
		opts determinacy.Options
	}
	progs := []program{
		{name: "figure2", src: figure2, opts: determinacy.Options{MuJSLocals: true}},
	}
	corpus := workload.EvalCorpus()
	limit := len(corpus)
	if testing.Short() {
		limit = 4
	}
	for i, b := range corpus {
		if i >= limit {
			break
		}
		progs = append(progs, program{
			name: "corpus/" + b.Name,
			src:  b.Source,
			opts: determinacy.Options{WithDOM: true, RunHandlers: 8, MaxFlushes: 1000},
		})
	}
	if !testing.Short() {
		progs = append(progs, program{
			name: "jquery/" + string(workload.JQ10),
			src:  workload.JQuery(workload.JQ10),
			opts: determinacy.Options{WithDOM: true, RunHandlers: 8, MaxFlushes: 1000},
		})
		for i := 0; i < 3; i++ {
			progs = append(progs, program{
				name: fmt.Sprintf("random/%d", i),
				src:  workload.RandomProgram(workload.GenConfig{Seed: uint64(100 + i)}),
			})
		}
	}

	for _, p := range progs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			serOpts := p.opts
			serOpts.Workers = 1
			parOpts := p.opts
			parOpts.Workers = workers

			ser, serErr := determinacy.AnalyzeRuns(p.src, serOpts, seeds...)
			par, parErr := determinacy.AnalyzeRuns(p.src, parOpts, seeds...)
			// Some corpus programs are deliberately non-runnable (missing
			// libraries, unsupported DOM calls); the contract there is that
			// both paths fail with the same error.
			if serErr != nil || parErr != nil {
				if fmt.Sprint(serErr) != fmt.Sprint(parErr) {
					t.Fatalf("error divergence:\n  serial:   %v\n  parallel: %v", serErr, parErr)
				}
				return
			}
			diffFingerprints(t, p.name, resultFingerprint(ser), resultFingerprint(par))
			if !reflect.DeepEqual(ser.Stats, par.Stats) {
				t.Fatalf("merged Stats diverge:\n  serial:   %+v\n  parallel: %+v", ser.Stats, par.Stats)
			}
		})
	}
}

// TestSeedSweepOrderIndependence pins the other half of the merge contract:
// AnalyzeRuns merges per-seed results in submission order, and Stats.Merge
// and the fact join are commutative, so permuting the seed list must leave
// the merged facts and statistics unchanged.
func TestSeedSweepOrderIndependence(t *testing.T) {
	workers := parallelWorkers(t)
	orders := [][]uint64{
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{3, 1, 5, 2, 4},
	}
	var baseFP []string
	var baseStats any
	for i, seeds := range orders {
		res, err := determinacy.AnalyzeRuns(figure2, determinacy.Options{
			MuJSLocals: true,
			Workers:    workers,
		}, seeds...)
		if err != nil {
			t.Fatalf("order %v: %v", seeds, err)
		}
		fp := resultFingerprint(res)
		if i == 0 {
			baseFP, baseStats = fp, res.Stats
			continue
		}
		diffFingerprints(t, fmt.Sprintf("order %v", seeds), baseFP, fp)
		if !reflect.DeepEqual(baseStats, res.Stats) {
			t.Fatalf("order %v: merged Stats diverge:\n  base:  %+v\n  got:   %+v",
				seeds, baseStats, res.Stats)
		}
	}
}

// normalizeRows strips the only legitimately nondeterministic field
// (Duration) and flattens errors to text so rows compare with DeepEqual.
func normalizeRows(rows []experiment.Table1Row) []experiment.Table1Row {
	out := append([]experiment.Table1Row(nil), rows...)
	for i := range out {
		out[i].Baseline.Duration = 0
		out[i].Spec.Duration = 0
		out[i].DetDOM.Duration = 0
		if out[i].Err != nil {
			out[i].Err = fmt.Errorf("%v", out[i].Err)
		}
	}
	return out
}

// TestDifferentialTable1 reruns the paper's Table 1 serially and on the
// pool and requires byte-identical formatted output plus field-identical
// rows (modulo wall-clock durations).
func TestDifferentialTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full Table 1 pipeline twice")
	}
	workers := parallelWorkers(t)
	serial := experiment.RunTable1(experiment.Config{Workers: 1})
	parallel := experiment.RunTable1(experiment.Config{Workers: workers})

	serText := experiment.FormatTable1(serial)
	parText := experiment.FormatTable1(parallel)
	if serText != parText {
		t.Fatalf("FormatTable1 output diverges:\n-- serial --\n%s\n-- parallel --\n%s", serText, parText)
	}
	if !reflect.DeepEqual(normalizeRows(serial), normalizeRows(parallel)) {
		t.Fatalf("row fields diverge:\n  serial:   %+v\n  parallel: %+v",
			normalizeRows(serial), normalizeRows(parallel))
	}
}

// normalizeStudy flattens per-benchmark errors to text for DeepEqual.
func normalizeStudy(s *experiment.EvalStudy) *experiment.EvalStudy {
	out := *s
	out.Benchmarks = append([]experiment.EvalOutcome(nil), s.Benchmarks...)
	for i := range out.Benchmarks {
		if out.Benchmarks[i].Err != nil {
			out.Benchmarks[i].Err = fmt.Errorf("%v", out.Benchmarks[i].Err)
		}
	}
	return &out
}

// TestDifferentialEvalStudy reruns the §5.2 eval-elimination study in both
// DOM modes serially and on the pool.
func TestDifferentialEvalStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 28-benchmark corpus four times")
	}
	workers := parallelWorkers(t)
	for _, detDOM := range []bool{false, true} {
		serial := experiment.RunEvalStudy(detDOM, experiment.Config{Workers: 1})
		parallel := experiment.RunEvalStudy(detDOM, experiment.Config{Workers: workers})

		serText := experiment.FormatEvalStudy(serial)
		parText := experiment.FormatEvalStudy(parallel)
		if serText != parText {
			t.Fatalf("detDOM=%v: FormatEvalStudy diverges:\n-- serial --\n%s\n-- parallel --\n%s",
				detDOM, serText, parText)
		}
		if !reflect.DeepEqual(normalizeStudy(serial), normalizeStudy(parallel)) {
			t.Fatalf("detDOM=%v: study fields diverge", detDOM)
		}
	}
}
