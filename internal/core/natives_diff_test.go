package core_test

import (
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

// nativeSuite exercises the standard library; every snippet runs under both
// interpreters and the console outputs must agree — the instrumented native
// models must compute exactly what the concrete kernels do.
var nativeSuite = []string{
	// Arrays.
	`var a = [3, 1, 2]; console.log(a.shift(), a.join("+"), a.length);`,
	`var a = [1]; a.push(2, 3); console.log(a.pop(), a.join(","));`,
	`console.log([1, 2, 3].indexOf(2), [1].indexOf(9));`,
	`console.log([1, 2, 3, 4].slice(1, 3).join(","), [1, 2].slice(-1).join(","));`,
	`console.log([1].concat([2, 3], 4).join(","));`,
	`console.log([1, 2, 3].map(function(x) { return x * 2; }).join(","));`,
	`console.log([1, 2, 3, 4].filter(function(x) { return x % 2 === 0; }).join(","));`,
	`var s = 0; [1, 2, 3].forEach(function(x, i) { s += x * i; }); console.log(s);`,
	`console.log(Array.isArray([1]), Array.isArray("no"), new Array(4).length);`,
	`var a = [9, 8]; a.length = 1; console.log(a.join(","), a[1]);`,
	// Strings.
	`var s = "Hello World"; console.log(s.toUpperCase(), s.toLowerCase());`,
	`console.log("abc".charAt(1), "abc".charCodeAt(2), "abc".charAt(9));`,
	`console.log("hay-needle-hay".indexOf("needle"), "aXa".lastIndexOf("a"));`,
	`console.log("substring".substring(3, 6), "substring".substring(6, 3));`,
	`console.log("substr".substr(1, 3), "substr".substr(-3));`,
	`console.log("slice me".slice(2, 5), "slice".slice(-3));`,
	`console.log("a,b,c".split(",").join("|"), "abc".split("").length);`,
	`console.log("  trim  ".trim() + "!");`,
	`console.log("repXlace".replace("X", "_"), "no match".replace("z", "_"));`,
	`console.log("con".concat("cat", 42), String.fromCharCode(104, 105));`,
	`console.log("str"[0], "str".length, "str"["length"]);`,
	// Math.
	`console.log(Math.abs(-4), Math.floor(1.9), Math.ceil(1.1), Math.round(0.5));`,
	`console.log(Math.pow(3, 4), Math.sqrt(144), Math.min(5, 2, 8), Math.max(5, 2, 8));`,
	`console.log(Math.floor(Math.PI), Math.floor(Math.E));`,
	// Numbers.
	`console.log((254).toString(16), (6.456).toFixed(1), (10).toString());`,
	`console.log(Number("3.5") + 1, Number(""), Number(true));`,
	`console.log(parseInt(" 42abc"), parseInt("z"), parseFloat("2.5x"));`,
	`console.log(isNaN("abc"), isNaN("42"), isFinite(1), isFinite(Infinity));`,
	// Objects.
	`var o = {x: 1, y: 2}; console.log(Object.keys(o).join(","), o.hasOwnProperty("x"), o.hasOwnProperty("z"));`,
	`var p = Object.create({base: 9}); console.log(p.base, p.hasOwnProperty("base"));`,
	`console.log(Object.getPrototypeOf([]) === Array.prototype);`,
	`console.log(({a: 1}).toString(), [1, 2].toString());`,
	// Function.prototype.
	`function who() { return this.name; } console.log(who.call({name: "n1"}), who.apply({name: "n2"}));`,
	`function add3(a, b, c) { return a + b + c; } console.log(add3.apply(null, [1, 2, 3]));`,
	// Booleans, equality, bit ops.
	`console.log(Boolean(0), Boolean("x"), Boolean(null));`,
	`console.log(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 4, -16 >> 2, -16 >>> 28);`,
	`console.log(1 == "1", 1 === "1", null == undefined, null === undefined);`,
	`console.log("a" < "b", 2 <= "2", "10" < 9);`,
	// Errors.
	`try { null.f; } catch (e) { console.log(e.name, e instanceof TypeError); }`,
	`var e = new RangeError("r"); console.log(e.message, "" + e);`,
	// eval.
	`console.log(eval("[1,2,3].length"), eval("'s' + 'tr'"));`,
	// typeof / delete / in / instanceof.
	`console.log(typeof [], typeof {}, typeof "", typeof 0, typeof undefined, typeof null, typeof eval);`,
	`var o = {k: 1}; console.log(delete o.k, "k" in o, delete o.missing);`,
	`function C() {} var c = new C(); console.log(c instanceof C, ({}) instanceof C);`,
	// Conversions with objects.
	`console.log("" + [1, 2], "" + {}, 1 + [2], [3] * 2);`,
	`console.log([1] == 1, [1, 2] == "1,2");`,
	// Date (fixed instant).
	`console.log(Date.now() === Date.now());`,
}

func TestNativeModelsMatchConcrete(t *testing.T) {
	for i, src := range nativeSuite {
		src := src
		t.Run(strings.Fields(src)[0]+sprintIdx(i), func(t *testing.T) {
			cm, err := ir.Compile("n.js", src)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, src)
			}
			var cb strings.Builder
			it := interp.New(cm, interp.Options{Out: &cb, Seed: 4, Now: 1000})
			if _, err := it.Run(); err != nil {
				t.Fatalf("concrete: %v\n%s", err, src)
			}

			im, err := ir.Compile("n.js", src)
			if err != nil {
				t.Fatal(err)
			}
			var ib strings.Builder
			a := core.New(im, facts.NewStore(), core.Options{Out: &ib, Seed: 4, Now: 1000})
			if _, err := a.Run(); err != nil {
				t.Fatalf("instrumented: %v\n%s", err, src)
			}

			if cb.String() != ib.String() {
				t.Errorf("native model diverges for %q:\nconcrete:     %q\ninstrumented: %q",
					src, cb.String(), ib.String())
			}
		})
	}
}

func sprintIdx(i int) string {
	return "_" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestNativeDeterminacyModels spot-checks the annotation side of a few
// models: determinate inputs yield determinate results; indeterminate
// receivers taint value-dependent results but not method identity.
func TestNativeDeterminacyModels(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		var det = "abc".toUpperCase();
		var s = "" + Math.random();
		var tainted = s.charAt(0);
		var viaArr = [1, 2, Math.random()].join(",");
		var cleanArr = [1, 2, 3].join(",");
	})();`, core.Options{})
	wantCall := func(line int, det bool) {
		t.Helper()
		for _, f := range factsAtLine(t, mod, store, line, func(in ir.Instr) bool {
			_, ok := in.(*ir.Call)
			return ok
		}) {
			if f.Det != det {
				t.Errorf("line %d: det=%v, want %v (%s)", line, f.Det, det, facts.RenderFact(mod, f))
			}
		}
	}
	wantCall(2, true)  // "abc".toUpperCase() determinate
	wantCall(4, false) // charAt on indeterminate string: value tainted
	wantCall(5, false) // join over an indeterminate element
	wantCall(6, true)  // join over determinate elements
}
