// Package core implements the paper's contribution: the instrumented
// semantics for dynamic determinacy analysis (Figures 7 and 9). It is a
// complete second interpreter for the mini-JS IR in which every value
// carries a determinacy annotation (v! or v?), records can be open or
// closed, the heap supports O(1) epoch-based flushing (§4), and branches
// guarded by indeterminate conditions are handled by post-branch
// indeterminacy marking (rule ÎF1) and counterfactual execution (rule CNTR).
package core

import (
	"math"
	"strconv"
	"strings"

	"determinacy/internal/ast"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/vm"
)

// Kind aliases the concrete interpreter's value kinds; the two interpreters
// agree on the value universe and differ only in annotations.
type Kind = interp.Kind

// Re-exported kinds for readability inside this package.
const (
	Undefined = interp.Undefined
	Null      = interp.Null
	Bool      = interp.Bool
	Number    = interp.Number
	String    = interp.String
	Object    = interp.Object
)

// Value is an instrumented runtime value v^d: a concrete value plus a
// determinacy flag. Det=true corresponds to v! (same value in every
// execution); Det=false to v? (may differ in other executions).
type Value struct {
	Kind Kind
	B    bool
	N    float64
	S    string
	O    *DObj
	Det  bool
}

// Convenience constructors. The trailing D marks determinate values.
var (
	UndefD = Value{Kind: Undefined, Det: true}
	NullD  = Value{Kind: Null, Det: true}
)

// BoolV returns an annotated boolean.
func BoolV(b, det bool) Value { return Value{Kind: Bool, B: b, Det: det} }

// NumberV returns an annotated number.
func NumberV(n float64, det bool) Value { return Value{Kind: Number, N: n, Det: det} }

// StringV returns an annotated string.
func StringV(s string, det bool) Value { return Value{Kind: String, S: s, Det: det} }

// ObjV returns an annotated object reference.
func ObjV(o *DObj, det bool) Value { return Value{Kind: Object, O: o, Det: det} }

// Indet returns v with its annotation dropped to indeterminate (v?).
func (v Value) Indet() Value { v.Det = false; return v }

// WithDet returns v with determinacy det ∧ v.Det, implementing the paper's
// (v̂^d) annotation application: applying ? forces ?, applying ! keeps the
// existing annotation.
func (v Value) WithDet(det bool) Value {
	v.Det = v.Det && det
	return v
}

// IsCallable reports whether v is a function.
func (v Value) IsCallable() bool {
	return v.Kind == Object && (v.O.Fn != nil || v.O.Native != nil)
}

// prim converts a primitive core value to the concrete representation so
// that the conversion helpers of internal/interp can be reused. Object
// values must not be passed.
func prim(v Value) interp.Value {
	return interp.Value{Kind: v.Kind, B: v.B, N: v.N, S: v.S}
}

// dprop is one instrumented object property: an annotated value plus the
// recency epoch of its last write. The property counts as determinate only
// if its own flag is set and its epoch is not older than the last heap
// flush (§4: "every property has a recency annotation, and is only
// considered determinate if this annotation equals the current epoch").
type dprop struct {
	val   Value
	epoch uint64
	// phantom marks properties absent in this execution whose existence in
	// other executions is uncertain: a counterfactually executed branch
	// created them and was undone. They read as undefined?, make `in` tests
	// indeterminate, and taint for-in key sets, realizing the paper's
	// total-function view of records where an undone write leaves
	// r̂(p) = undefined?.
	phantom bool
	// maybeAbsent marks properties present in this execution that other
	// executions may have deleted (a delete through an indeterminate
	// property name). They read as v?, and `in` tests are indeterminate.
	maybeAbsent bool
}

// DObj is an instrumented object. Openness follows the paper's open records
// {x: v̂, ...}: an object is open if it was live across a heap flush or was
// written through an indeterminate property name (rule ŜTO with d' = ?).
type DObj struct {
	Class string
	Proto *DObj
	// ProtoDet records whether the identity of the prototype link is
	// determinate (a constructor with an indeterminate prototype property
	// produces objects with indeterminate prototype chains).
	ProtoDet bool

	props map[string]dprop
	keys  []string

	// shape is the object's hidden class under the bytecode engine, or nil
	// for dictionary mode. Invariant: a shaped object's own keys are exactly
	// the shape's key path in insertion order, with no phantom cells and no
	// own accessors; every operation that could break this (delete,
	// counterfactual undo, phantom installation, accessor definition) drops
	// the object to dictionary mode. maybeAbsent and open/flushed cells are
	// compatible with shapes: the inline caches recompute cell determinacy
	// on every hit.
	shape *vm.Shape

	// createdEpoch dates the allocation; forcedOpen records rule ŜTO.
	createdEpoch uint64
	forcedOpen   bool

	Fn     *ir.Function
	Env    *DEnv
	Native *DNative

	// Getters and Setters hold accessor properties (used by the DOM
	// emulation). Each accessor is its own determinacy model.
	Getters map[string]func(a *Analysis, this Value, args []Value) (Value, error)
	Setters map[string]func(a *Analysis, this Value, args []Value) (Value, error)

	Data  any
	Alloc int
}

// DefineGetter installs an accessor getter for name.
func (o *DObj) DefineGetter(name string, fn func(a *Analysis, this Value, args []Value) (Value, error)) {
	o.shape = nil
	if o.Getters == nil {
		o.Getters = make(map[string]func(a *Analysis, this Value, args []Value) (Value, error))
	}
	o.Getters[name] = fn
}

// DefineSetter installs an accessor setter for name.
func (o *DObj) DefineSetter(name string, fn func(a *Analysis, this Value, args []Value) (Value, error)) {
	o.shape = nil
	if o.Setters == nil {
		o.Setters = make(map[string]func(a *Analysis, this Value, args []Value) (Value, error))
	}
	o.Setters[name] = fn
}

func (o *DObj) findGetter(name string) (func(a *Analysis, this Value, args []Value) (Value, error), bool) {
	for cur := o; cur != nil; cur = cur.Proto {
		if fn, ok := cur.Getters[name]; ok {
			return fn, true
		}
		if _, ok := cur.props[name]; ok {
			return nil, false
		}
	}
	return nil, false
}

func (o *DObj) findSetter(name string) (func(a *Analysis, this Value, args []Value) (Value, error), bool) {
	for cur := o; cur != nil; cur = cur.Proto {
		if fn, ok := cur.Setters[name]; ok {
			return fn, true
		}
	}
	return nil, false
}

// DNative is a built-in function of the instrumented interpreter. Each
// native is its own determinacy model (§4: "hand-written models that
// conservatively approximate their effects on determinacy information").
type DNative struct {
	Name string
	Fn   func(a *Analysis, this Value, args []Value) (Value, error)
	// IsEval marks the global eval binding.
	IsEval bool
	// External marks natives with effects outside the instrumented heap
	// (e.g. DOM mutation); encountering one during counterfactual execution
	// aborts the counterfactual (§4).
	External bool
}

// DEnv is an instrumented environment frame. Slot determinacy combines the
// stored value's flag with a recency epoch so that an "environment flush"
// (used on indeterminate calls, where full JavaScript closures would let an
// unknown callee write enclosing locals — see DESIGN.md) is O(1).
type DEnv struct {
	Parent *DEnv
	Slots  []Value
	Epochs []uint64
	Fn     *ir.Function
}

func (e *DEnv) at(hops int) *DEnv {
	for i := 0; i < hops; i++ {
		e = e.Parent
	}
	return e
}

// ---------------------------------------------------------------------------
// Object operations (performed through the analysis, which owns the epochs)

// IsOpen reports whether o is an open record under the current heap epoch.
func (a *Analysis) IsOpen(o *DObj) bool {
	return o.forcedOpen || o.createdEpoch < a.heapEpoch
}

// propDet reports the effective determinacy of a property cell.
func (a *Analysis) propDet(p dprop) bool {
	return p.val.Det && p.epoch >= a.heapEpoch && !p.phantom && !p.maybeAbsent
}

// getOwn reads an own property; det reflects the cell's effective flag, and
// exists reports physical presence (phantoms count as existing with an
// indeterminate undefined value).
func (a *Analysis) getOwn(o *DObj, name string) (v Value, exists bool) {
	p, ok := o.props[name]
	if !ok {
		return Value{}, false
	}
	if p.phantom {
		return Value{Kind: Undefined, Det: false}, true
	}
	v = p.val
	v.Det = a.propDet(p)
	return v, true
}

// setOwn writes an own property, journaling the write in all active branch
// frames and maintaining array length semantics.
func (a *Analysis) setOwn(o *DObj, name string, v Value) {
	if o.Class == "Array" {
		if name == "length" {
			a.setArrayLength(o, v)
			return
		}
		if idx, ok := arrayIndex(name); ok {
			if cur := a.arrayLength(o); idx >= cur {
				lv := NumberV(float64(idx+1), v.Det)
				a.setRawProp(o, "length", lv)
			}
		}
	}
	a.setRawProp(o, name, v)
}

func (a *Analysis) setRawProp(o *DObj, name string, v Value) {
	a.journalProp(o, name)
	if o.props == nil {
		o.props = make(map[string]dprop)
	}
	if _, exists := o.props[name]; !exists {
		o.keys = append(o.keys, name)
		if o.shape != nil {
			o.shape = o.shape.Transition(name)
		}
	}
	o.props[name] = dprop{val: v, epoch: a.heapEpoch}
}

// deleteProp removes an own property with journaling.
func (a *Analysis) deleteProp(o *DObj, name string) bool {
	if _, ok := o.props[name]; !ok {
		return false
	}
	o.shape = nil
	a.journalProp(o, name)
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

func (a *Analysis) arrayLength(o *DObj) int {
	if p, ok := o.props["length"]; ok && !p.phantom && p.val.Kind == Number {
		return int(p.val.N)
	}
	return 0
}

func (a *Analysis) setArrayLength(o *DObj, v Value) {
	n := int(a.toNumber(v))
	cur := a.arrayLength(o)
	for i := n; i < cur; i++ {
		a.deleteProp(o, strconv.Itoa(i))
	}
	a.setRawProp(o, "length", Value{Kind: Number, N: float64(n), Det: v.Det})
}

func arrayIndex(name string) (int, bool) {
	if name == "" {
		return 0, false
	}
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(name)
	if err != nil {
		return 0, false
	}
	return n, true
}

// lookup walks the prototype chain. The result combines the found cell's
// determinacy with the openness of every record inspected on the way: if a
// record on the chain is open, another execution might find the property
// there, so both a hit further up and a miss are indeterminate.
func (a *Analysis) lookup(o *DObj, name string) (v Value, found bool, pathDet bool) {
	pathDet = true
	for cur := o; cur != nil; cur = cur.Proto {
		if p, ok := cur.props[name]; ok {
			if p.phantom {
				// Concretely absent here, but possibly present in other
				// executions: keep walking, with the path tainted.
				pathDet = false
			} else {
				v = p.val
				v.Det = a.propDet(p) && pathDet
				return v, true, pathDet
			}
		}
		if a.IsOpen(cur) {
			pathDet = false
		}
		if !cur.ProtoDet {
			pathDet = false
		}
	}
	return Value{Kind: Undefined, Det: pathDet}, false, pathDet
}

// has reports property presence along the prototype chain, with a
// determinacy flag for the answer.
func (a *Analysis) has(o *DObj, name string) (bool, bool) {
	det := true
	for cur := o; cur != nil; cur = cur.Proto {
		if p, ok := cur.props[name]; ok {
			if p.phantom {
				det = false // concretely absent here; keep walking
				continue
			}
			if p.maybeAbsent {
				return true, false
			}
			return true, det
		}
		if a.IsOpen(cur) {
			det = false
		}
		if !cur.ProtoDet {
			det = false
		}
	}
	return false, det
}

// ---------------------------------------------------------------------------
// Conversions over annotated values. Determinacy of a conversion result is
// the determinacy of its input; object-to-primitive conversions additionally
// fold in the determinacy of the object contents they read.

func (a *Analysis) toBool(v Value) bool {
	if v.Kind == Object {
		return true
	}
	return interp.ToBool(prim(v))
}

func (a *Analysis) toNumber(v Value) float64 {
	if v.Kind == Object {
		p, _ := a.toPrimitive(v)
		if p.Kind == Object {
			// Plain objects stay objects under toPrimitive; feeding them
			// through prim would fabricate an interp object value with a
			// nil pointer. ToNumber of "[object Object]" is NaN.
			// (Found by detfuzz.)
			return math.NaN()
		}
		return interp.ToNumber(prim(p))
	}
	return interp.ToNumber(prim(v))
}

func (a *Analysis) toString(v Value) (string, bool) {
	if v.Kind == Object {
		p, det := a.toPrimitive(v)
		if p.Kind == Object {
			return "[object Object]", det && v.Det
		}
		s, _ := a.toString(p)
		return s, det && p.Det && v.Det
	}
	return interp.ToString(prim(v)), v.Det
}

// toPrimitive mirrors interp.toPrimitive over instrumented objects; the
// second result is the determinacy of the conversion (an array join reads
// every element, so any indeterminate element taints it).
func (a *Analysis) toPrimitive(v Value) (Value, bool) {
	if v.Kind != Object {
		return v, v.Det
	}
	o := v.O
	switch o.Class {
	case "Array":
		det := v.Det && !a.IsOpen(o)
		if p, ok := o.props["length"]; ok {
			det = det && a.propDet(p)
		}
		n := a.arrayLength(o)
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			el, ok := a.getOwn(o, strconv.Itoa(i))
			if ok {
				det = det && el.Det
			}
			if !ok || el.Kind == Undefined || el.Kind == Null {
				parts = append(parts, "")
				continue
			}
			s, sdet := a.toString(el)
			det = det && sdet
			parts = append(parts, s)
		}
		return StringV(strings.Join(parts, ","), det), det
	case "Function":
		name := ""
		if o.Fn != nil {
			name = o.Fn.Name
		} else if o.Native != nil {
			name = o.Native.Name
		}
		return StringV("function "+name+"() { [native or user code] }", v.Det), v.Det
	case "Error":
		det := v.Det
		name, msg := "Error", ""
		if nv, found, _ := a.lookup(o, "name"); found {
			det = det && nv.Det
			s, sdet := a.toString(nv)
			det = det && sdet
			name = s
		}
		if mv, found, _ := a.lookup(o, "message"); found {
			det = det && mv.Det
			s, sdet := a.toString(mv)
			det = det && sdet
			msg = s
		}
		if msg == "" {
			return StringV(name, det), det
		}
		return StringV(name+": "+msg, det), det
	default:
		return v, v.Det
	}
}

func (a *Analysis) typeOf(v Value) string {
	switch v.Kind {
	case Undefined:
		return "undefined"
	case Null:
		return "object"
	case Bool:
		return "boolean"
	case Number:
		return "number"
	case String:
		return "string"
	default:
		if v.IsCallable() {
			return "function"
		}
		return "object"
	}
}

// strictEquals compares values; the determinacy of the answer is the meet of
// the operand annotations.
func strictEquals(x, y Value) bool {
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Undefined, Null:
		return true
	case Bool:
		return x.B == y.B
	case Number:
		return x.N == y.N
	case String:
		return x.S == y.S
	default:
		return x.O == y.O
	}
}

func (a *Analysis) looseEquals(x, y Value) bool {
	if x.Kind == y.Kind {
		return strictEquals(x, y)
	}
	switch {
	case (x.Kind == Null && y.Kind == Undefined) || (x.Kind == Undefined && y.Kind == Null):
		return true
	case x.Kind == Number && y.Kind == String:
		return x.N == a.toNumber(y)
	case x.Kind == String && y.Kind == Number:
		return a.toNumber(x) == y.N
	case x.Kind == Bool:
		return a.looseEquals(NumberV(a.toNumber(x), true), y)
	case y.Kind == Bool:
		return a.looseEquals(x, NumberV(a.toNumber(y), true))
	case x.Kind == Object && (y.Kind == Number || y.Kind == String):
		px, _ := a.toPrimitive(x)
		return a.looseEquals(px, y)
	case y.Kind == Object && (x.Kind == Number || x.Kind == String):
		py, _ := a.toPrimitive(y)
		return a.looseEquals(x, py)
	}
	return false
}

// Snapshot converts a value to a fact snapshot.
func Snapshot(v Value) facts.Snapshot {
	switch v.Kind {
	case Undefined:
		return facts.Snapshot{Kind: facts.VUndefined}
	case Null:
		return facts.Snapshot{Kind: facts.VNull}
	case Bool:
		return facts.Snapshot{Kind: facts.VBool, Bool: v.B}
	case Number:
		return facts.Snapshot{Kind: facts.VNumber, Num: v.N}
	case String:
		return facts.Snapshot{Kind: facts.VString, Str: v.S}
	default:
		if v.O.Fn != nil {
			return facts.Snapshot{Kind: facts.VFunction, FnIndex: v.O.Fn.Index, Alloc: v.O.Alloc}
		}
		if v.O.Native != nil {
			return facts.Snapshot{Kind: facts.VFunction, Native: v.O.Native.Name, Alloc: v.O.Alloc}
		}
		return facts.Snapshot{Kind: facts.VObject, Alloc: v.O.Alloc}
	}
}

// ToDisplay renders an instrumented value for console output. Annotations
// do not affect concrete output, keeping instrumented and concrete runs
// textually comparable.
func (a *Analysis) ToDisplay(v Value) string {
	if v.Kind == String {
		return v.S
	}
	if v.Kind == Object && v.O.Class == "Object" {
		var b strings.Builder
		b.WriteString("{")
		for i, k := range v.O.keys {
			if i > 0 {
				b.WriteString(", ")
			}
			p := v.O.props[k]
			if p.phantom {
				continue
			}
			b.WriteString(k)
			b.WriteString(": ")
			b.WriteString(a.shortDisplay(p.val))
		}
		b.WriteString("}")
		return b.String()
	}
	if v.Kind == Object && v.O.Class == "Array" {
		var b strings.Builder
		b.WriteString("[")
		n := a.arrayLength(v.O)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			el, _ := a.getOwn(v.O, strconv.Itoa(i))
			b.WriteString(a.shortDisplay(el))
		}
		b.WriteString("]")
		return b.String()
	}
	s, _ := a.toString(v)
	return s
}

func (a *Analysis) shortDisplay(v Value) string {
	if v.Kind == String {
		return ast.QuoteString(v.S)
	}
	if v.Kind == Object {
		switch v.O.Class {
		case "Array":
			return "[...]"
		case "Function":
			return "function"
		default:
			return "{...}"
		}
	}
	s, _ := a.toString(v)
	return s
}

// litValue converts an IR literal to a determinate value (constants are
// determinate, §2.1).
func litValue(l ir.Literal) Value {
	switch l.Kind {
	case ir.LitUndefined:
		return UndefD
	case ir.LitNull:
		return NullD
	case ir.LitBool:
		return BoolV(l.Bool, true)
	case ir.LitNumber:
		return NumberV(l.Num, true)
	case ir.LitString:
		return StringV(l.Str, true)
	}
	return UndefD
}
