package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"determinacy/internal/facts"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/vm"
)

// Errors reported by the analysis.
var (
	// ErrBudget means the instrumented execution exceeded its step budget.
	ErrBudget = errors.New("core: step budget exhausted")
	// ErrStack means the call stack exceeded its limit.
	ErrStack = errors.New("core: call stack overflow")
	// ErrFlushLimit means the analysis stopped after too many heap flushes
	// (the paper stops after 1000, "since at this point it is unlikely to
	// detect new determinacy facts"). Facts gathered so far remain sound.
	ErrFlushLimit = errors.New("core: heap flush limit reached")
)

// Thrown wraps an uncaught instrumented exception.
type Thrown struct {
	Val Value
}

func (t *Thrown) Error() string { return "js exception (instrumented)" }

// Options configures the analysis.
type Options struct {
	// MaxSteps bounds executed instructions (0 = default).
	MaxSteps int
	// MaxDepth bounds call-stack depth (0 = default 1000).
	MaxDepth int
	// Out receives console output (suppressed during counterfactual
	// execution); nil discards.
	Out io.Writer
	// Seed drives Math.random; Now backs Date.now; Inputs backs __input.
	// All three are indeterminate sources regardless of their concrete
	// values.
	Seed   uint64
	Now    float64
	Inputs map[string]interp.Value

	// MaxCounterfactualDepth is the paper's cut-off k for nested
	// counterfactual executions (rule CNTRABORT). 0 means the default of 4.
	MaxCounterfactualDepth int
	// DisableCounterfactual ablates counterfactual execution: an
	// indeterminate-false branch is handled by the conservative
	// CNTRABORT rule (heap flush + static write-set marking) instead.
	DisableCounterfactual bool
	// ImmediateTaint ablates post-branch marking: values written under an
	// indeterminate condition are marked indeterminate at write time, as a
	// classical dynamic information-flow analysis would. This loses facts
	// like the paper's ⟦r.g⟧ 18→5→10 = 42.
	ImmediateTaint bool
	// MuJSLocals reproduces the paper's µJS-faithful treatment of locals:
	// indeterminate calls flush only the heap, not environments. Full
	// JavaScript closures make this unsound (see DESIGN.md), so the default
	// performs an environment flush as well.
	MuJSLocals bool
	// AbortCFOnNativeWrite mimics the paper's implementation, which aborts
	// counterfactual execution at any native call that is not known to be
	// side-effect free. Our natives mutate the instrumented heap through
	// journaled operations and are therefore undoable; the default only
	// aborts on External natives (DOM and console-like effects).
	AbortCFOnNativeWrite bool
	// MaxFlushes stops the analysis after this many heap flushes (0 =
	// unlimited). The paper uses 1000.
	MaxFlushes int
	// Tracer receives the analysis' event stream (flushes, branch frames,
	// counterfactuals, taint marking, fact recording, eval encounters).
	// nil disables tracing; every emission site is guarded so the disabled
	// path costs one branch and no allocations.
	Tracer obs.Tracer
	// Ctx, when non-nil, is polled every interruptEvery steps; once it is
	// cancelled the run unwinds through the normal abort path (branch
	// frames pop with their journal undo and indeterminacy marking) and
	// Run returns the ctx-wrapped error. nil disables the poll's select.
	Ctx context.Context
	// Deadline, when nonzero, is the wall-clock instant past which the run
	// aborts the same way with guard.ErrDeadline.
	Deadline time.Time

	// Engine selects the execution engine: vm.EngineBytecode (the default)
	// dispatches through blocks' compiled bytecode with inline caches;
	// vm.EngineTree walks the IR node-by-node. Both produce byte-identical
	// facts, statistics, and output.
	Engine vm.Engine
	// Metrics, when non-nil, receives engine counters (vm_ic_hits,
	// vm_ic_misses). Publication is delta-based and idempotent (see
	// PublishEngineMetrics): the counters advance by exactly the activity
	// since the previous publication, so shared registries aggregate
	// correctly across engines, repeated runs, and the handler phase.
	Metrics *obs.Metrics

	// OnEnterFunc, when set, observes every user-function activation as its
	// frame is created: the callee, the packed determinacy signature of its
	// inputs (see EntrySig), and the heap-flush epoch at entry. The fact
	// cache uses it to key per-function fact chunks by input determinacy and
	// to anchor them at flush-epoch join points. Both engines call it at the
	// same activations in the same order.
	OnEnterFunc func(fn *ir.Function, sig uint64, epoch uint64)
}

// EntrySig packs the determinacy of a call's inputs into one word: bit 62
// is the receiver, bit i (i < 62) is the i-th provided argument, and bit
// 63 folds the determinacy of any arguments beyond the 62nd. Missing
// arguments bind determinate undefined and contribute nothing.
func EntrySig(this Value, args []Value) uint64 {
	var sig uint64
	if this.Det {
		sig |= 1 << 62
	}
	overflow := true // vacuously "all determinate"
	for i, av := range args {
		if i < 62 {
			if av.Det {
				sig |= 1 << uint(i)
			}
		} else if !av.Det {
			overflow = false
		}
	}
	if overflow {
		sig |= 1 << 63
	}
	return sig
}

// MaxTrackedCFDepth is the size of Stats.CFDepthHist; deeper nestings fold
// into the last bucket.
const MaxTrackedCFDepth = 8

// Stats summarizes one instrumented run.
type Stats struct {
	Steps        int
	HeapFlushes  int
	EnvFlushes   int
	FlushReasons map[string]int
	Counterfacts int // counterfactual branch executions
	CFAborts     int // counterfactual aborts (depth, native, exception)
	// CFDepthHist counts counterfactual executions by nesting depth
	// (index 1 = outermost; nestings ≥ MaxTrackedCFDepth-1 fold into the
	// last bucket).
	CFDepthHist [MaxTrackedCFDepth]int
}

// NewStats returns a Stats with all maps initialized. It is the one place
// the FlushReasons map is created, so merging and direct construction never
// hit a nil map.
func NewStats() Stats {
	return Stats{FlushReasons: map[string]int{}}
}

// Merge folds another run's statistics into s, tolerating nil maps on
// either side (a Stats constructed directly rather than via NewStats).
func (s *Stats) Merge(o Stats) {
	s.Steps += o.Steps
	s.HeapFlushes += o.HeapFlushes
	s.EnvFlushes += o.EnvFlushes
	s.Counterfacts += o.Counterfacts
	s.CFAborts += o.CFAborts
	for i, n := range o.CFDepthHist {
		s.CFDepthHist[i] += n
	}
	if len(o.FlushReasons) == 0 {
		return
	}
	if s.FlushReasons == nil {
		s.FlushReasons = make(map[string]int, len(o.FlushReasons))
	}
	for r, n := range o.FlushReasons {
		s.FlushReasons[r] += n
	}
}

// Export publishes the run statistics into a metrics registry using the
// pipeline's canonical metric names.
func (s Stats) Export(m *obs.Metrics) {
	m.Counter("analysis_steps_total").Add(int64(s.Steps))
	m.Counter("analysis_heap_flushes_total").Add(int64(s.HeapFlushes))
	m.Counter("analysis_env_flushes_total").Add(int64(s.EnvFlushes))
	m.Counter("analysis_counterfactuals_total").Add(int64(s.Counterfacts))
	m.Counter("analysis_cf_aborts_total").Add(int64(s.CFAborts))
	for r, n := range s.FlushReasons {
		m.Counter(`analysis_heap_flushes_total{reason="` + r + `"}`).Add(int64(n))
	}
	h := m.Histogram("analysis_cf_depth", 1, 2, 3, 4, 5, 6, 7)
	for depth, n := range s.CFDepthHist {
		for i := 0; i < n; i++ {
			h.Observe(float64(depth))
		}
	}
}

// Analysis is the instrumented interpreter. Create with New, execute with
// Run, and read facts from Facts.
type Analysis struct {
	Mod    *ir.Module
	Global *DObj
	Facts  *facts.Store

	ObjectProto   *DObj
	FunctionProto *DObj
	ArrayProto    *DObj
	StringProto   *DObj
	NumberProto   *DObj
	BooleanProto  *DObj
	ErrorProto    *DObj

	// OnFlush, when set, observes every heap flush with its reason.
	OnFlush func(reason string)

	opts      Options
	tracer    obs.Tracer
	stats     Stats
	heapEpoch uint64
	envEpoch  uint64
	nalloc    int
	frames    []*DFrame
	branches  []*branchFrame
	cfDepth   int
	evalCache map[string]*ir.Function
	rng       uint64
	stopped   error
	// curIn is the instruction currently executing, tracked so the panic
	// boundary can report where a crash happened.
	curIn ir.Instr

	// Bytecode-engine state (zero when Options.Engine is tree). info is the
	// module's shared compilation metadata; evalFns extends it with this
	// run's runtime-lowered eval functions. rootShape anchors the run-private
	// hidden-class transition tree, and ics holds the per-site inline caches
	// (static sites first, eval sites appended per run). icHits/icMisses are
	// kept out of Stats — both engines must report identical statistics — and
	// publish through Options.Metrics instead. bfPool recycles dead branch
	// frames and their journal backing until the run ends.
	useVM     bool
	info      *vm.Info
	evalFns   map[*ir.Function]*vm.FnInfo
	rootShape *vm.Shape
	ics       []propIC
	icHits    int64
	icMisses  int64
	bfPool    []*branchFrame
	// icPubHits/icPubMisses are the publication watermarks: how much of
	// icHits/icMisses has already been added to Options.Metrics. Delta
	// publication makes PublishEngineMetrics idempotent, so the counters
	// never double-add when a run publishes at several points (end of the
	// main script, after the handler phase, at a partial seal).
	icPubHits   int64
	icPubMisses int64
}

// DFrame is one instrumented activation record.
type DFrame struct {
	Fn       *ir.Function
	Env      *DEnv
	Regs     []Value
	CallSite ir.ID
	Ctx      facts.Context
	siteSeq  map[ir.ID]int
	instrSeq map[ir.ID]int
	// taintedSeq marks instructions whose occurrence numbering in this
	// activation is no longer stable across executions (an arrival happened
	// under an indeterminate branch inside a loop). Facts at such points
	// would be keyed by indices other executions may not share, so they are
	// recorded indeterminate.
	taintedSeq map[ir.ID]bool
	// allSeqTainted poisons the whole activation's occurrence numbering; it
	// is set when a counterfactual was aborted, leaving an unexecuted block
	// whose arrivals other executions may perform.
	allSeqTainted bool
	// ctxUnstable marks frames whose calling context contains an
	// occurrence-unstable entry; all facts recorded under it are
	// indeterminate.
	ctxUnstable bool
	// fnInfo, under the bytecode engine, densely indexes the function's
	// instruction IDs so occurrence tracking uses the flat cells slice
	// instead of the maps above; IDs foreign to the index (runtime-lowered
	// eval code observed through this frame) fall back to the maps.
	fnInfo *vm.FnInfo
	cells  []seqCell
}

// seqCell is one instruction's per-activation occurrence state under the
// bytecode engine.
type seqCell struct {
	instr   int32 // occurrence counter for fact recording
	site    int32 // occurrence counter as a call site
	tainted bool  // occurrence numbering no longer stable
}

// initSeq attaches the frame's dense occurrence index when the bytecode
// engine knows its function.
func (a *Analysis) initSeq(f *DFrame) {
	if !a.useVM {
		return
	}
	if fi, ok := a.info.Fns[f.Fn]; ok {
		f.fnInfo = fi
	} else if fi, ok := a.evalFns[f.Fn]; ok {
		f.fnInfo = fi
	}
}

func (f *DFrame) ensureCells() {
	if f.cells == nil {
		f.cells = make([]seqCell, f.fnInfo.NumSlots())
	}
}

// nextInstrSeq returns and advances id's occurrence index in f.
func (f *DFrame) nextInstrSeq(id ir.ID) int {
	if s := f.fnInfo.Slot(id); s >= 0 {
		f.ensureCells()
		n := f.cells[s].instr
		f.cells[s].instr = n + 1
		return int(n)
	}
	if f.instrSeq == nil {
		f.instrSeq = make(map[ir.ID]int)
	}
	seq := f.instrSeq[id]
	f.instrSeq[id] = seq + 1
	return seq
}

// seqTaintedAt reports whether id's occurrence numbering is tainted in f.
func (f *DFrame) seqTaintedAt(id ir.ID) bool {
	if s := f.fnInfo.Slot(id); s >= 0 {
		return f.cells != nil && f.cells[s].tainted
	}
	return f.taintedSeq[id]
}

// taintSeq marks id occurrence-unstable in f.
func (f *DFrame) taintSeq(id ir.ID) {
	if s := f.fnInfo.Slot(id); s >= 0 {
		f.ensureCells()
		f.cells[s].tainted = true
		return
	}
	if f.taintedSeq == nil {
		f.taintedSeq = make(map[ir.ID]bool)
	}
	f.taintedSeq[id] = true
}

// New creates an analysis for mod. Pass a fact store to collect facts, or
// nil to run for statistics only.
func New(mod *ir.Module, store *facts.Store, opts Options) *Analysis {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 20_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 1000
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	if opts.MaxCounterfactualDepth == 0 {
		opts.MaxCounterfactualDepth = 4
	}
	a := &Analysis{
		Mod:       mod,
		Facts:     store,
		opts:      opts,
		tracer:    opts.Tracer,
		rng:       opts.Seed*2862933555777941757 + 3037000493,
		evalCache: make(map[string]*ir.Function),
		stats:     NewStats(),
	}
	if opts.Engine.Bytecode() {
		a.useVM = true
		a.info = vm.Ensure(mod)
		a.rootShape = vm.NewRootShape()
		a.ics = make([]propIC, a.info.NumICs)
	}
	a.setupRuntime()
	return a
}

// Stats returns run statistics.
func (a *Analysis) Stats() Stats { return a.stats }

// Options returns the analysis configuration.
func (a *Analysis) Options() Options { return a.opts }

// HeapEpoch returns the current heap-flush epoch. Epochs advance on every
// heap flush and are the sound join points for stitching memoized facts
// back into a live run (internal/factcache).
func (a *Analysis) HeapEpoch() uint64 { return a.heapEpoch }

// PublishEngineMetrics adds the engine counters (vm_ic_hits, vm_ic_misses)
// accumulated since the previous publication to Options.Metrics. The
// counters live outside Stats so both engines report identical statistics;
// delta accounting makes repeated calls safe: a run that publishes at the
// end of Run, again after the DOM handler phase, and again at a partial
// seal adds each cache probe exactly once, even when one registry is
// shared across engines and many runs (the detbench -all configuration).
// The first call materializes both series even at zero, so a tree-engine
// run still pins them in metric dumps.
func (a *Analysis) PublishEngineMetrics() {
	if a.opts.Metrics == nil {
		return
	}
	a.opts.Metrics.Counter("vm_ic_hits").Add(a.icHits - a.icPubHits)
	a.opts.Metrics.Counter("vm_ic_misses").Add(a.icMisses - a.icPubMisses)
	a.icPubHits, a.icPubMisses = a.icHits, a.icMisses
}

// ---------------------------------------------------------------------------
// Allocation

// NewObj allocates an instrumented object closed under the current epoch.
// Under the bytecode engine, non-array objects start at the run's root shape
// so property sites can cache them; arrays stay in dictionary mode (index
// keys would explode the transition tree for no cache benefit — array
// element reads go through GetProp, which has no cache sites).
func (a *Analysis) NewObj(class string, proto *DObj) *DObj {
	a.nalloc++
	o := &DObj{Class: class, Proto: proto, ProtoDet: true, createdEpoch: a.heapEpoch, Alloc: a.nalloc}
	if a.useVM && class != "Array" {
		o.shape = a.rootShape
	}
	return o
}

// NewPlainObj allocates an object inheriting from Object.prototype.
func (a *Analysis) NewPlainObj() *DObj { return a.NewObj("Object", a.ObjectProto) }

// NewArrayObj allocates an array with the given annotated elements.
func (a *Analysis) NewArrayObj(elems []Value) *DObj {
	o := a.NewObj("Array", a.ArrayProto)
	a.setRawProp(o, "length", NumberV(float64(len(elems)), true))
	for i, e := range elems {
		a.setRawProp(o, fmt.Sprint(i), e)
	}
	return o
}

// NewNativeObj wraps a native implementation as a callable object.
func (a *Analysis) NewNativeObj(name string, fn func(*Analysis, Value, []Value) (Value, error)) *DObj {
	o := a.NewObj("Function", a.FunctionProto)
	o.Native = &DNative{Name: name, Fn: fn}
	return o
}

// NewClosureObj creates a function object for fn closing over env.
func (a *Analysis) NewClosureObj(fn *ir.Function, env *DEnv) *DObj {
	c := a.NewObj("Function", a.FunctionProto)
	c.Fn = fn
	c.Env = env
	proto := a.NewPlainObj()
	a.setOwn(proto, "constructor", ObjV(c, true))
	a.setOwn(c, "prototype", ObjV(proto, true))
	a.setOwn(c, "length", NumberV(float64(len(fn.Params)), true))
	return c
}

// NewErrorObj creates an instrumented error object; det annotates both name
// and message.
func (a *Analysis) NewErrorObj(name, msg string, det bool) *DObj {
	e := a.NewObj("Error", a.ErrorProto)
	a.setOwn(e, "name", StringV(name, det))
	a.setOwn(e, "message", StringV(msg, det))
	return e
}

// SetGlobal defines a global binding (for embedders like the DOM bridge).
func (a *Analysis) SetGlobal(name string, v Value) { a.setOwn(a.Global, name, v) }

// SetProp writes a property through the journaled write path.
func (a *Analysis) SetProp(o *DObj, name string, v Value) { a.setOwn(o, name, v) }

// GetProp reads an own property of o.
func (a *Analysis) GetProp(o *DObj, name string) (Value, bool) { return a.getOwn(o, name) }

// ToNumberPub exposes JavaScript ToNumber for embedders.
func (a *Analysis) ToNumberPub(v Value) float64 { return a.toNumber(v) }

// ToStringPub exposes JavaScript ToString for embedders, with the
// conversion's determinacy.
func (a *Analysis) ToStringPub(v Value) (string, bool) { return a.toString(v) }

// DefNativeOn installs a native function as a property of o. When external,
// the native aborts counterfactual execution (it has effects outside the
// instrumented, journal-protected heap).
func (a *Analysis) DefNativeOn(o *DObj, name string, fn func(*Analysis, Value, []Value) (Value, error), external bool) {
	nat := a.NewNativeObj(name, fn)
	nat.Native.External = external
	a.setOwn(o, name, ObjV(nat, true))
}

// MarkObjectIndeterminate forces every property of o indeterminate and the
// record open, used by embedders importing host data with an indeterminacy
// policy (e.g. DOM node lists).
func (a *Analysis) MarkObjectIndeterminate(o *DObj) {
	a.openRecord(o, false)
}

// LookupGlobal reads a global binding (for embedders and tests), returning
// the value, whether it exists, and whether the lookup path is determinate.
func (a *Analysis) LookupGlobal(name string) (Value, bool, bool) {
	v, found, det := a.lookup(a.Global, name)
	return v, found, det
}

// DisplayValue renders a value using JavaScript ToString semantics.
func (a *Analysis) DisplayValue(v Value) string {
	s, _ := a.toString(v)
	return s
}

// Random steps the deterministic PRNG (concrete value; always annotated
// indeterminate by the Math.random model).
func (a *Analysis) Random() float64 {
	a.rng ^= a.rng >> 12
	a.rng ^= a.rng << 25
	a.rng ^= a.rng >> 27
	return float64((a.rng*2685821657736338717)>>11) / float64(1<<53)
}

// ---------------------------------------------------------------------------
// Flushing

// FlushHeap performs a heap flush (§4): a single epoch increment marks every
// property of every object indeterminate and every record open.
func (a *Analysis) FlushHeap(reason string) {
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteCoreFlush)
	}
	a.heapEpoch++
	a.stats.HeapFlushes++
	if a.stats.FlushReasons == nil {
		a.stats.FlushReasons = map[string]int{}
	}
	a.stats.FlushReasons[reason]++
	if a.tracer != nil {
		a.tracer.Event(obs.Event{Kind: obs.EvHeapFlush, Phase: reason,
			N1: int64(a.heapEpoch), N2: int64(a.stats.HeapFlushes)})
	}
	if a.OnFlush != nil {
		a.OnFlush(reason)
	}
	if a.opts.MaxFlushes > 0 && a.stats.HeapFlushes > a.opts.MaxFlushes && a.stopped == nil {
		a.stopped = ErrFlushLimit
	}
}

// flushEnv marks every local slot of every live environment indeterminate.
// See Options.MuJSLocals for when this runs.
func (a *Analysis) flushEnv() {
	a.envEpoch++
	a.stats.EnvFlushes++
	if a.tracer != nil {
		a.tracer.Event(obs.Event{Kind: obs.EvEnvFlush, N1: int64(a.envEpoch)})
	}
}

// flushAll is the conservative merge used for indeterminate calls and
// escapes: heap plus (unless in µJS-locals mode) environments.
func (a *Analysis) flushAll(reason string) {
	a.FlushHeap(reason)
	if !a.opts.MuJSLocals {
		a.flushEnv()
	}
}

// SealPartial conservatively flushes heap and environments after an
// interrupted run, per the §4.3 flush semantics: any state the aborted
// epoch may have left half-written is joined to indeterminate, so the
// facts collected before the stop stay sound for clients that keep using
// this analysis' state (e.g. embedders inspecting globals). Per-occurrence
// facts are untouched — stopping early only means fewer of them, exactly
// like the paper's 1000-flush cut-off — but the occurrence-cap bucket
// (facts.Store.MaxSeq) aggregates every occurrence past the cap, and a
// truncated run saw only a prefix of those, so that bucket is joined to
// indeterminate.
func (a *Analysis) SealPartial() {
	stopped := a.stopped
	a.stopped = nil // the seal flush must run even past the flush cap
	a.flushAll("partial-seal")
	if a.Facts != nil {
		a.Facts.InvalidateSaturated()
	}
	a.stopped = stopped
	a.PublishEngineMetrics()
}

// interruptEvery is the step interval between cooperative interrupt polls
// (context cancellation, wall-clock deadline, armed fault plans); a power
// of two so the hot-loop check is a mask.
const interruptEvery = 2048

// checkpoint polls the cooperative stop conditions. Injected panics
// unwind to the Run boundary; interrupts make the stop sticky via
// a.stopped, so every in-flight branch frame unwinds through the normal
// oFail path and journal undo / indeterminacy marking stay exact.
func (a *Analysis) checkpoint() {
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteCoreStep)
	}
	if a.stopped == nil {
		if err := guard.CheckInterrupt(a.opts.Ctx, a.opts.Deadline); err != nil {
			a.stopped = err
		}
	}
}

// CurrentPoint reports the instruction the interpreter is currently
// executing, for panic diagnostics: its ID and "line:col" source
// position, or (-1, "") outside execution.
func (a *Analysis) CurrentPoint() (int, string) {
	if a.curIn == nil {
		return -1, ""
	}
	p := a.curIn.IPos()
	return int(a.curIn.IID()), fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// ---------------------------------------------------------------------------
// Environment access with epochs

func (a *Analysis) loadSlot(env *DEnv, hops, slot int) Value {
	e := env.at(hops)
	v := e.Slots[slot]
	v.Det = v.Det && e.Epochs[slot] >= a.envEpoch
	return v
}

func (a *Analysis) storeSlot(env *DEnv, hops, slot int, v Value) {
	e := env.at(hops)
	a.journalVar(e, slot)
	if a.opts.ImmediateTaint && a.inIndetBranch() {
		v.Det = false
	}
	e.Slots[slot] = v
	e.Epochs[slot] = a.envEpoch
}

// newEnv creates an environment frame with all slots undefined-determinate.
func (a *Analysis) newEnv(parent *DEnv, fn *ir.Function) *DEnv {
	e := &DEnv{Parent: parent, Fn: fn, Slots: make([]Value, fn.NumSlots), Epochs: make([]uint64, fn.NumSlots)}
	for i := range e.Slots {
		e.Slots[i] = UndefD
		e.Epochs[i] = a.envEpoch
	}
	return e
}

// ---------------------------------------------------------------------------
// Branch frames and the write journal

type writeKind uint8

const (
	wVar writeKind = iota
	wReg
	wProp
	// wOpen records a transition of an object to forced-open (rule ŜTO with
	// an indeterminate property name), so counterfactual undo can close it
	// again.
	wOpen
)

type writeRec struct {
	kind writeKind
	// var writes
	env  *DEnv
	slot int
	// reg writes
	regs []Value
	reg  ir.Reg
	// prop writes
	obj  *DObj
	name string

	oldVal   Value
	oldEpoch uint64
	oldProp  dprop
	existed  bool
	// oldKeyIdx is the property's position in the object's key order at
	// journal time (-1 when absent), so undoing a delete reinserts the key
	// where it was: key order is observable through for-in.
	oldKeyIdx     int
	oldForcedOpen bool
	kindProp      bool
}

// locKey identifies a journaled heap location for deduplication. It is a
// plain comparable struct — not an interface — so map operations on it
// never box: cell carries slot/register identity (their backing arrays are
// allocated once and never reallocated, so element pointers are stable),
// obj+name a property, and obj+open an open-transition.
type locKey struct {
	cell *Value
	obj  *DObj
	name string
	open bool
}

// loc identifies the location a record writes.
func (w *writeRec) loc() locKey {
	switch w.kind {
	case wVar:
		return locKey{cell: &w.env.Slots[w.slot]}
	case wReg:
		return locKey{cell: &w.regs[w.reg]}
	case wProp:
		return locKey{obj: w.obj, name: w.name}
	default:
		return locKey{obj: w.obj, open: true}
	}
}

// branchFrame tracks writes performed while executing a branch guarded by an
// indeterminate condition (or counterfactually).
type branchFrame struct {
	journal []writeRec
	// seen indexes journaled locations once this frame has absorbed a
	// child journal (see mergeUp); nil until then. addJournal keeps it
	// fresh so later merges still deduplicate correctly.
	seen           map[locKey]bool
	counterfactual bool
	// isLoop marks frames opened for a loop continuation under an
	// indeterminate condition (rules ÎF1/CNTR applied to the while
	// desugaring). Occurrence indices of instructions inside such frames
	// remain stable — the k-th arrival at a loop-body point is iteration k
	// in every execution — so fact recording does not taint them until the
	// loop ends (see seqStable and tainStamp below). Non-loop frames
	// destabilize reentrant occurrence counting immediately.
	isLoop bool
	// recorded collects the fact observations made while this frame was
	// innermost, so loop frames can taint their occurrence counters once
	// the loop is over.
	recorded map[*DFrame]map[ir.ID]bool
	// indet marks frames created for indeterminate-condition branches; all
	// current frames of this analysis are indet frames, but the flag keeps
	// the intent explicit.
	indet bool
}

func (a *Analysis) inIndetBranch() bool { return len(a.branches) > 0 }

// hasNonLoopBranch reports whether any active indeterminate frame is a
// non-loop frame (if-branch, counterfactual of a branch, indeterminate
// for-in or eval), which makes reentrant occurrence counting unstable.
func (a *Analysis) hasNonLoopBranch() bool {
	for _, bf := range a.branches {
		if !bf.isLoop {
			return true
		}
	}
	return false
}

func (a *Analysis) pushBranch(counterfactual bool) *branchFrame {
	return a.pushBranchKind(counterfactual, false)
}

func (a *Analysis) pushLoopBranch(counterfactual bool) *branchFrame {
	return a.pushBranchKind(counterfactual, true)
}

func (a *Analysis) pushBranchKind(counterfactual, isLoop bool) *branchFrame {
	var bf *branchFrame
	if n := len(a.bfPool); n > 0 {
		bf = a.bfPool[n-1]
		a.bfPool = a.bfPool[:n-1]
		bf.counterfactual, bf.isLoop, bf.indet = counterfactual, isLoop, true
	} else {
		bf = &branchFrame{counterfactual: counterfactual, isLoop: isLoop, indet: true}
	}
	a.branches = append(a.branches, bf)
	if counterfactual {
		a.cfDepth++
		a.stats.Counterfacts++
		d := a.cfDepth
		if d >= MaxTrackedCFDepth {
			d = MaxTrackedCFDepth - 1
		}
		a.stats.CFDepthHist[d]++
	}
	if a.tracer != nil {
		a.tracer.Event(branchEvent(bf, true, int64(len(a.branches)), int64(a.cfDepth)))
	}
	return bf
}

// noteRecorded registers a fact observation with the innermost frame.
func (a *Analysis) noteRecorded(f *DFrame, id ir.ID) {
	if len(a.branches) == 0 {
		return
	}
	bf := a.branches[len(a.branches)-1]
	if bf.recorded == nil {
		bf.recorded = map[*DFrame]map[ir.ID]bool{}
	}
	m := bf.recorded[f]
	if m == nil {
		m = map[ir.ID]bool{}
		bf.recorded[f] = m
	}
	m[id] = true
}

// applyLoopTaints marks every observation made under a popped loop frame as
// occurrence-unstable for the rest of its activation: arrivals after the
// loop (e.g. via an enclosing loop) no longer align across executions.
func (a *Analysis) applyLoopTaints(bf *branchFrame) {
	for df, ids := range bf.recorded {
		for id := range ids {
			df.taintSeq(id)
		}
	}
	bf.recorded = nil
}

// releaseBranch recycles a popped frame whose journal has been fully
// consumed (marked, undone, or merged up — merges copy records by value, so
// reusing the backing array is safe). Only the audited frame-death sites in
// execIf and counterfactual call it; anywhere else a frame may still be
// referenced.
func (a *Analysis) releaseBranch(bf *branchFrame) {
	bf.journal = bf.journal[:0]
	clear(bf.seen)
	bf.recorded = nil
	a.bfPool = append(a.bfPool, bf)
}

// popBranch removes the frame; callers then invoke markIndeterminate or
// undoAndMark on it.
func (a *Analysis) popBranch(bf *branchFrame) {
	if a.tracer != nil {
		a.tracer.Event(branchEvent(bf, false, int64(len(a.branches)), int64(a.cfDepth)))
	}
	a.branches = a.branches[:len(a.branches)-1]
	if bf.counterfactual {
		a.cfDepth--
	}
}

// branchEvent builds the enter/exit event for a branch frame. Enter and
// exit report the same depth for the same frame so B/E pairs in the Chrome
// exporter match up.
func branchEvent(bf *branchFrame, enter bool, branchDepth, cfDepth int64) obs.Event {
	e := obs.Event{N1: branchDepth}
	switch {
	case bf.counterfactual && enter:
		e.Kind, e.N1 = obs.EvCFEnter, cfDepth
	case bf.counterfactual:
		e.Kind, e.N1 = obs.EvCFExit, cfDepth
	case enter:
		e.Kind = obs.EvBranchEnter
	default:
		e.Kind = obs.EvBranchExit
	}
	if bf.isLoop {
		e.Detail = "loop"
	}
	return e
}

// addJournal appends a write record, keeping the location index fresh once
// a merge has materialized it.
func (bf *branchFrame) addJournal(w writeRec) {
	bf.journal = append(bf.journal, w)
	if bf.seen != nil {
		bf.seen[w.loc()] = true
	}
}

func (a *Analysis) journalVar(env *DEnv, slot int) {
	if len(a.branches) == 0 {
		return
	}
	bf := a.branches[len(a.branches)-1]
	bf.addJournal(writeRec{
		kind: wVar, env: env, slot: slot,
		oldVal: env.Slots[slot], oldEpoch: env.Epochs[slot],
	})
}

func (a *Analysis) journalReg(regs []Value, reg ir.Reg) {
	if len(a.branches) == 0 {
		return
	}
	bf := a.branches[len(a.branches)-1]
	bf.addJournal(writeRec{
		kind: wReg, regs: regs, reg: reg, oldVal: regs[reg],
	})
}

func (a *Analysis) journalProp(o *DObj, name string) {
	if len(a.branches) == 0 {
		return
	}
	bf := a.branches[len(a.branches)-1]
	p, existed := o.props[name]
	keyIdx := -1
	if existed {
		for i, k := range o.keys {
			if k == name {
				keyIdx = i
				break
			}
		}
	}
	bf.addJournal(writeRec{
		kind: wProp, obj: o, name: name, oldProp: p, existed: existed,
		oldKeyIdx:     keyIdx,
		oldForcedOpen: o.forcedOpen,
	})
}

func (a *Analysis) journalOpen(o *DObj) {
	if len(a.branches) == 0 {
		return
	}
	bf := a.branches[len(a.branches)-1]
	bf.addJournal(writeRec{kind: wOpen, obj: o, oldForcedOpen: o.forcedOpen})
}

// openRecord implements rule ŜTO with an indeterminate property name d'=?:
// the record becomes open and every property indeterminate, since any
// property may have been written (or a new one added) in other executions.
// For deletes through indeterminate names, markAbsent additionally flags
// every property's existence as uncertain.
func (a *Analysis) openRecord(o *DObj, markAbsent bool) {
	if a.tracer != nil {
		a.tracer.Event(obs.Event{Kind: obs.EvTaint, Phase: "open-record", N1: int64(len(o.keys))})
	}
	a.journalOpen(o)
	o.forcedOpen = true
	for _, k := range o.OwnKeys() {
		a.journalProp(o, k)
		p := o.props[k]
		p.val.Det = false
		if markAbsent {
			p.maybeAbsent = true
		}
		o.props[k] = p
	}
}

// OwnKeys returns a copy of the own property key order of o.
func (o *DObj) OwnKeys() []string {
	out := make([]string, len(o.keys))
	copy(out, o.keys)
	return out
}

// OwnProp returns the concrete value of an own property. Phantom cells are
// concretely absent and report false. The differential harness uses this to
// snapshot final object state without touching instrumentation.
func (o *DObj) OwnProp(name string) (Value, bool) {
	p, ok := o.props[name]
	if !ok || p.phantom {
		return Value{}, false
	}
	return p.val, true
}

// hasOwnConcrete reports the concrete own-property answer plus its
// determinacy (phantoms are concretely absent, maybeAbsent concretely
// present; both indeterminate).
func (a *Analysis) hasOwnConcrete(o *DObj, name string) (bool, bool) {
	p, ok := o.props[name]
	if !ok {
		return false, !a.IsOpen(o)
	}
	if p.phantom {
		return false, false
	}
	if p.maybeAbsent {
		return true, false
	}
	// On an open record even a present cell may have been deleted by the
	// unknown effects that opened the record.
	return true, !a.IsOpen(o)
}

// markIndeterminate implements the post-branch marking of rule ÎF1:
// ρ̂'[vd(t̂) := ρ̂'?] and ĥ'[pd(t̂) := ĥ'?]. Values keep their current
// (really computed) state but drop to indeterminate. Journal entries are
// then merged into the enclosing branch frame, since nested branches
// contribute to the outer branch's write domains.
func (a *Analysis) markIndeterminate(bf *branchFrame) {
	if a.tracer != nil && len(bf.journal) > 0 {
		a.tracer.Event(obs.Event{Kind: obs.EvTaint, Phase: "post-branch-mark", N1: int64(len(bf.journal))})
	}
	for _, w := range bf.journal {
		switch w.kind {
		case wVar:
			w.env.Slots[w.slot] = w.env.Slots[w.slot].Indet()
		case wReg:
			w.regs[w.reg] = w.regs[w.reg].Indet()
		case wProp:
			if p, ok := w.obj.props[w.name]; ok {
				p.val = p.val.Indet()
				if !w.existed || w.oldProp.phantom || w.oldProp.maybeAbsent {
					// The property did not determinately exist before the
					// branch, so executions that skip the branch may lack
					// it entirely: existence joins to indeterminate along
					// with the value. (Found by detfuzz: a for-in over the
					// object otherwise enumerates the key as a determinate
					// fact that executions skipping the branch violate.)
					p.maybeAbsent = true
				}
				w.obj.props[w.name] = p
			} else if w.existed {
				// Deleted during the branch: other executions may still
				// have it, so it reads as undefined? from here on.
				a.phantomProp(w.obj, w.name)
			}
		case wOpen:
			// The record really became open; nothing to mark.
		}
	}
	a.mergeUp(bf)
}

// undoAndMark implements rule CNTR's post-processing: every write performed
// by the counterfactual branch is reverted to its pre-branch state
// (ρ̂'[vd := ρ̂?], ĥ'[pd := ĥ?]) and then marked indeterminate, since other
// executions may perform it.
func (a *Analysis) undoAndMark(bf *branchFrame) {
	if a.tracer != nil && len(bf.journal) > 0 {
		a.tracer.Event(obs.Event{Kind: obs.EvTaint, Phase: "cf-undo-mark", N1: int64(len(bf.journal))})
	}
	// Capture each journaled property's end-of-branch presence before the
	// undo: a property the counterfactual deleted comes back when the
	// journal is reverted, but executions that really take the branch lose
	// it, so its existence must join to indeterminate.
	type propKey struct {
		obj  *DObj
		name string
	}
	var cfAbsent map[propKey]bool
	for _, w := range bf.journal {
		if w.kind != wProp {
			continue
		}
		if cfAbsent == nil {
			cfAbsent = make(map[propKey]bool)
		}
		p, ok := w.obj.props[w.name]
		cfAbsent[propKey{w.obj, w.name}] = !ok || p.phantom
	}
	a.undoJournal(bf)
	for _, w := range bf.journal {
		switch w.kind {
		case wVar:
			w.env.Slots[w.slot] = w.env.Slots[w.slot].Indet()
		case wReg:
			w.regs[w.reg] = w.regs[w.reg].Indet()
		case wProp:
			if p, ok := w.obj.props[w.name]; ok {
				p.val = p.val.Indet()
				if cfAbsent[propKey{w.obj, w.name}] {
					p.maybeAbsent = true
				}
				w.obj.props[w.name] = p
			} else {
				a.phantomProp(w.obj, w.name)
			}
		case wOpen:
			// An opening performed only counterfactually still means other
			// executions may add or remove arbitrary properties.
			w.obj.forcedOpen = true
		}
	}
	a.mergeUp(bf)
}

// undoJournal reverts all journaled writes in reverse order.
func (a *Analysis) undoJournal(bf *branchFrame) {
	for i := len(bf.journal) - 1; i >= 0; i-- {
		w := bf.journal[i]
		switch w.kind {
		case wVar:
			w.env.Slots[w.slot] = w.oldVal
			w.env.Epochs[w.slot] = w.oldEpoch
		case wReg:
			w.regs[w.reg] = w.oldVal
		case wProp:
			// Undo can resurrect phantoms and reshuffle key order, both of
			// which break the shape invariant: dictionary mode from here on.
			w.obj.shape = nil
			if w.existed {
				w.obj.props[w.name] = w.oldProp
				w.obj.restoreKey(w.name, w.oldKeyIdx)
			} else {
				a.rawDelete(w.obj, w.name)
			}
		case wOpen:
			w.obj.forcedOpen = w.oldForcedOpen
		}
	}
}

// undoOnly reverts writes without marking, used when a counterfactual is
// aborted and followed by a conservative flush (the flush subsumes the
// marking for heap locations; environment marking is handled by the
// caller's env flush).
func (a *Analysis) undoOnly(bf *branchFrame) {
	a.undoJournal(bf)
	a.mergeUp(bf)
}

// mergeUp folds a popped frame's journal into the enclosing frame, since
// nested branches contribute to the outer branch's write domains. Only the
// first record per location survives the merge: it carries the oldest
// pre-write state, which is all that undo and marking need (marking acts on
// the location's current value, undo restores the oldest). Wholesale
// concatenation made the journal grow with the number of writes rather than
// the number of locations, and a budget-aborted indeterminate while loop —
// which pops one nested frame per iteration, each merge feeding the next
// frame's marking pass — turned that into a quadratic cascade, hanging the
// analysis long after ErrBudget fired. (Found by detfuzz.)
func (a *Analysis) mergeUp(bf *branchFrame) {
	if len(a.branches) == 0 {
		return
	}
	parent := a.branches[len(a.branches)-1]
	if parent.seen == nil {
		parent.seen = make(map[locKey]bool, len(parent.journal)+len(bf.journal))
		for i := range parent.journal {
			parent.seen[parent.journal[i].loc()] = true
		}
	}
	for i := range bf.journal {
		k := bf.journal[i].loc()
		if parent.seen[k] {
			continue
		}
		parent.seen[k] = true
		parent.journal = append(parent.journal, bf.journal[i])
	}
}

// restoreKey puts name back at its pre-journal position in the key order
// when a write performed inside a branch is undone. Without it a restored
// deleted property would be invisible to for-in — or sit at the wrong
// position after a delete-then-readd, whose intermediate records a journal
// merge may have dropped — and concrete key order (which for-in facts
// observe) would diverge from an uninstrumented run.
func (o *DObj) restoreKey(name string, idx int) {
	for i, k := range o.keys {
		if k == name {
			if i == idx {
				return
			}
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	if idx < 0 || idx > len(o.keys) {
		idx = len(o.keys)
	}
	o.keys = append(o.keys, "")
	copy(o.keys[idx+1:], o.keys[idx:])
	o.keys[idx] = name
}

// phantomProp installs an existence-uncertain property reading undefined?.
// Phantom cells are incompatible with shapes (a cached own hit would return
// undefined instead of walking the prototype chain), so the object drops to
// dictionary mode.
func (a *Analysis) phantomProp(o *DObj, name string) {
	o.shape = nil
	if o.props == nil {
		o.props = make(map[string]dprop)
	}
	if _, exists := o.props[name]; !exists {
		o.keys = append(o.keys, name)
	}
	o.props[name] = dprop{val: Value{Kind: Undefined}, epoch: a.heapEpoch, phantom: true}
}

func (a *Analysis) rawDelete(o *DObj, name string) {
	if _, ok := o.props[name]; !ok {
		return
	}
	o.shape = nil
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

// markStaticWrites marks the statically determined write-set of a block
// indeterminate (rule CNTRABORT's ρ̂[vd(s) := ρ̂?]).
func (a *Analysis) markStaticWrites(f *DFrame, b *ir.Block) {
	writes := ir.WritesOf(b)
	if a.tracer != nil && len(writes) > 0 {
		a.tracer.Event(obs.Event{Kind: obs.EvTaint, Phase: "static-writes", N1: int64(len(writes))})
	}
	for _, v := range writes {
		e := f.Env.at(v.Hops)
		a.journalVar(e, v.Slot)
		e.Slots[v.Slot] = e.Slots[v.Slot].Indet()
	}
}

// ---------------------------------------------------------------------------
// Fact recording

// record stores a fact observation for a register-defining instruction.
// The fact is determinate only if the computed value is determinate AND the
// observation's position — its occurrence index and every context entry —
// is stable across executions (otherwise another execution could reach the
// same key with a different value; see DFrame.taintedSeq).
func (a *Analysis) record(f *DFrame, in ir.Instr, v Value) {
	if a.Facts == nil {
		return
	}
	if a.opts.ImmediateTaint && a.inIndetBranch() {
		v.Det = false
	}
	seq := f.nextInstrSeq(in.IID())
	det := v.Det && a.seqStable(f, in.IID()) && !f.ctxUnstable
	a.noteRecorded(f, in.IID())
	invalidated := a.Facts.Record(in.IID(), f.Ctx, seq, det, Snapshot(v))
	if a.tracer != nil {
		detN := int64(0)
		if det {
			detN = 1
		}
		a.tracer.Event(obs.Event{Kind: obs.EvFactRecord, N1: int64(in.IID()), N2: detN})
		if invalidated {
			a.tracer.Event(obs.Event{Kind: obs.EvFactInvalidate, N1: int64(in.IID())})
		}
	}
}

// seqStable reports whether the current arrival at id has a stable
// occurrence index in frame f, and taints future arrivals when the current
// one happens under an indeterminate branch (other executions may skip it,
// shifting every later index at a reentrant point).
func (a *Analysis) seqStable(f *DFrame, id ir.ID) bool {
	stable := !f.allSeqTainted && !f.seqTaintedAt(id)
	if a.hasNonLoopBranch() {
		if a.Mod.IsReentrant(id) {
			stable = false
		}
		f.taintSeq(id)
	}
	return stable
}

// nextCallSeq returns the occurrence number for a call site within f.
func (f *DFrame) nextCallSeq(site ir.ID) int {
	if s := f.fnInfo.Slot(site); s >= 0 {
		f.ensureCells()
		n := f.cells[s].site
		f.cells[s].site = n + 1
		return int(n)
	}
	if f.siteSeq == nil {
		f.siteSeq = make(map[ir.ID]int)
	}
	s := f.siteSeq[site]
	f.siteSeq[site] = s + 1
	return s
}
