package core_test

import (
	"context"
	"errors"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

// abortPrefix builds heap state whose exact restoration the tests check:
// scalar globals plus an object whose key order has been churned by a
// delete-then-readd, so a sloppy undo that merely restores values (but not
// insertion order) is caught.
const abortPrefix = `
var total = 41;
var label = "pre";
var obj = {x: 1, y: 2, z: 3};
delete obj.y;
obj.y = 5;
obj.w = 6;
delete obj.z;
`

// abortBody loops long enough (~hundreds of thousands of steps) that the
// cooperative checkpoint inside the counterfactual fires well before the
// branch finishes, while mutating every location the prefix set up: scalar
// overwrites, property writes, deletes, re-adds, and fresh keys.
const abortBody = `
var i = 0;
while (i < 50000) {
  total = total + 1;
  label = "cf" + i;
  obj.x = i;
  delete obj.w;
  obj.q = i;
  obj.w = i;
  i = i + 1;
}
`

// TestInterruptMidCounterfactualUndoneExactly: a deadline or cancellation
// that fires while a counterfactual branch is executing must unwind the
// branch through the ordinary journal undo, leaving heap values AND
// property enumeration order exactly as they were at branch entry — and
// without the conservative cf-abort flush, since nothing escaped. The
// reference state is the concrete interpreter running the same program
// (which skips the branch outright, and here the branch is the last
// statement, so its final state is the branch-entry state).
func TestInterruptMidCounterfactualUndoneExactly(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		action faultinject.Action
		reason guard.DegradeReason
	}{
		{"cancel-flat", abortPrefix + "if (Math.random() > 2) {" + abortBody + "}\n",
			faultinject.Cancel, guard.DegradeCancel},
		{"deadline-flat", abortPrefix + "if (Math.random() > 2) {" + abortBody + "}\n",
			faultinject.Expire, guard.DegradeDeadline},
		// Nested indeterminate branches: the interrupt unwinds several
		// branch frames in one cascade, each popping its own journal span.
		{"cancel-nested", abortPrefix +
			"if (Math.random() > 2) { obj.n1 = 1; if (Math.random() > 2) { obj.n2 = 2;" + abortBody + "} }\n",
			faultinject.Cancel, guard.DegradeCancel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: concrete run of the same source; Math.random() > 2
			// is always false, so the branch body never executes.
			cmod := ir.MustCompile("abort.js", tc.src)
			it := interp.New(cmod, interp.Options{Seed: 9})
			if _, err := it.Run(); err != nil {
				t.Fatalf("concrete reference run: %v", err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// The prefix is a few dozen steps, so the second checkpoint
			// (step 4096) lands inside the counterfactual loop.
			faultinject.Arm(&faultinject.Plan{
				Site: faultinject.SiteCoreStep, After: 2,
				Action: tc.action, OnCancel: cancel,
			})
			defer faultinject.Disarm()

			imod := ir.MustCompile("abort.js", tc.src)
			store := facts.NewStore()
			a := core.New(imod, store, core.Options{Seed: 9, Ctx: ctx})
			_, err := a.Run()
			if err == nil {
				t.Fatal("injected interrupt never aborted the run")
			}
			if got := guard.ContextReason(err); got != tc.reason {
				t.Fatalf("run error %v classified as %q, want %q", err, got, tc.reason)
			}
			if tc.action == faultinject.Expire && !errors.Is(err, guard.ErrDeadline) {
				t.Fatalf("expire abort error %v does not wrap ErrDeadline", err)
			}

			// The abort unwound via undoOnly: no cf-abort flush may have run.
			if n := a.Stats().FlushReasons["cf-abort"]; n != 0 {
				t.Errorf("interrupted counterfactual took the cf-abort flush path %d times; want pure undo", n)
			}
			a.SealPartial()
			if n := a.Stats().FlushReasons["partial-seal"]; n != 1 {
				t.Errorf("partial-seal flushes = %d, want 1", n)
			}

			// Heap values restored exactly.
			for _, k := range []string{"total", "label", "obj"} {
				cv, _ := it.Global.Get(k)
				iv, found, _ := a.LookupGlobal(k)
				if !found {
					t.Fatalf("global %s lost after aborted counterfactual", k)
				}
				if want, got := interp.ToString(cv), a.DisplayValue(iv); want != got {
					t.Errorf("global %s: concrete %q vs aborted-instrumented %q", k, want, got)
				}
			}

			// Enumeration order restored exactly: the branch body deleted and
			// re-added keys, so a value-only undo would leave "w" (and any
			// nested-test keys) in the wrong position or present.
			cobj, _ := it.Global.Get("obj")
			iobj, _, _ := a.LookupGlobal("obj")
			if iobj.O == nil {
				t.Fatal("obj is not an object after abort")
			}
			ckeys, ikeys := cobj.O.OwnKeys(), iobj.O.OwnKeys()
			if len(ckeys) != len(ikeys) {
				t.Fatalf("key sets diverge: concrete %v vs aborted %v", ckeys, ikeys)
			}
			for i := range ckeys {
				if ckeys[i] != ikeys[i] {
					t.Fatalf("enumeration order diverges at %d: concrete %v vs aborted %v", i, ckeys, ikeys)
				}
			}
			for i := range ckeys {
				cv, _ := cobj.O.Get(ckeys[i])
				iv, ok := iobj.O.OwnProp(ikeys[i])
				if !ok {
					t.Fatalf("obj.%s lost after abort", ckeys[i])
				}
				if want, got := interp.ToString(cv), a.DisplayValue(iv); want != got {
					t.Errorf("obj.%s: concrete %q vs aborted %q", ckeys[i], want, got)
				}
			}

			// The store stays coherent for partial-result consumers.
			if store.Len() == 0 {
				t.Error("facts recorded before the abort must survive")
			}
		})
	}
}

// TestInterruptOutsideCounterfactualStopsWithFactsIntact pins the plain
// (non-branch) interrupt path: the run stops at the next checkpoint with
// the sticky error and the facts recorded so far survive.
func TestInterruptOutsideCounterfactualStopsWithFactsIntact(t *testing.T) {
	src := `
		var n = 0;
		while (n < 50000) { n = n + 1; }
	`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(&faultinject.Plan{
		Site: faultinject.SiteCoreStep, After: 3,
		Action: faultinject.Cancel, OnCancel: cancel,
	})
	defer faultinject.Disarm()
	mod := ir.MustCompile("abort.js", src)
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{Ctx: ctx})
	_, err := a.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("run error = %v, want wrapped context.Canceled", err)
	}
	if store.Len() == 0 {
		t.Error("no facts survived the interrupt")
	}
	// The loop checkpointed at step 6144: the run must have stopped there,
	// not burned through the remaining ~44k iterations.
	if steps := a.Stats().Steps; steps > 4*2048+512 {
		t.Errorf("run executed %d steps after a cancel at the third checkpoint", steps)
	}
}
