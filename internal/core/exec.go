package core

import (
	"errors"
	"fmt"
	"math"

	"determinacy/internal/facts"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/vm"
)

// outKind enumerates statement completions. oCFAbort is internal: it unwinds
// to the nearest counterfactual boundary when the counterfactual must be
// abandoned (external native, §4).
type outKind int

const (
	oNormal outKind = iota
	oReturn
	oBreak
	oContinue
	oThrow
	oFail
	oCFAbort
)

type outcome struct {
	kind outKind
	val  Value
	err  error
	// pathIndet marks abrupt completions whose occurrence is
	// control-dependent on indeterminate state: other executions may not
	// perform this throw/return at all. A catch block entered by such a
	// throw executes under an indeterminacy frame (rule ÎF1 applied to the
	// exceptional edge).
	pathIndet bool
}

var okOut = outcome{kind: oNormal}

func failed(err error) outcome { return outcome{kind: oFail, err: err} }

func (a *Analysis) throwError(name, msg string, det bool) outcome {
	return outcome{kind: oThrow, val: ObjV(a.NewErrorObj(name, msg, det), det)}
}

// InCounterfactual reports whether execution is currently counterfactual.
func (a *Analysis) InCounterfactual() bool { return a.cfDepth > 0 }

// Run executes the module top level under the instrumented semantics,
// populating the fact store. It is a guard boundary: a panic anywhere in
// the instrumented execution returns as a structured *guard.RunError
// carrying the phase, the active program point and the recovered stack,
// instead of crashing the caller.
func (a *Analysis) Run() (v Value, err error) {
	defer guard.Boundary(&err, "exec", a.CurrentPoint)
	defer func() {
		// The run is over: drop the recycled branch frames and their journal
		// arenas, and publish the engine counters (kept out of Stats so both
		// engines report identical statistics). Publication is delta-based,
		// so handler-phase activity after Run returns is picked up by a later
		// PublishEngineMetrics without re-adding anything counted here.
		a.bfPool = nil
		a.PublishEngineMetrics()
	}()
	top := a.Mod.Top()
	f := &DFrame{
		Fn:       top,
		Env:      a.newEnv(nil, top),
		Regs:     make([]Value, top.NumRegs),
		CallSite: -1,
	}
	a.initSeq(f)
	a.frames = append(a.frames, f)
	defer func() { a.frames = a.frames[:len(a.frames)-1] }()
	// Poll once before executing anything (without counting an injector
	// hit): a context that is already dead must stop even a program too
	// short to reach a step checkpoint.
	if a.stopped == nil {
		if ierr := guard.CheckInterrupt(a.opts.Ctx, a.opts.Deadline); ierr != nil {
			a.stopped = ierr
		}
	}
	out := a.execBlock(f, top.Body)
	switch out.kind {
	case oNormal, oReturn:
		return out.val, nil
	case oThrow:
		return out.val, &Thrown{Val: out.val}
	case oFail:
		return Value{Kind: Undefined}, out.err
	default:
		return Value{Kind: Undefined}, fmt.Errorf("core: abrupt completion %d escaped top level", out.kind)
	}
}

// CallFunction invokes a function value from native models or embedders
// (e.g. the DOM event loop).
func (a *Analysis) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	out := a.callValue(fn, this, args, -1)
	switch out.kind {
	case oThrow:
		return out.val, &Thrown{Val: out.val}
	case oFail:
		return Value{Kind: Undefined}, out.err
	case oCFAbort:
		return Value{Kind: Undefined}, errCFAbort
	default:
		return out.val, nil
	}
}

// errCFAbort carries the counterfactual-abort signal through native
// callback boundaries.
var errCFAbort = errors.New("core: counterfactual aborted")

// ---------------------------------------------------------------------------

func (a *Analysis) execBlock(f *DFrame, b *ir.Block) outcome {
	if a.useVM && b.Code != nil {
		if code, ok := b.Code.(*vm.Code); ok {
			return a.execBlockVM(f, code)
		}
	}
	for _, in := range b.Instrs {
		a.stats.Steps++
		if a.stats.Steps > a.opts.MaxSteps {
			return failed(ErrBudget)
		}
		if a.stats.Steps&(interruptEvery-1) == 0 {
			a.checkpoint()
		}
		if a.stopped != nil {
			return failed(a.stopped)
		}
		a.curIn = in
		out := a.execInstr(f, in)
		if out.kind != oNormal {
			return out
		}
	}
	// A statement may absorb an interrupt without failing — a counterfactual
	// undoes and taints instead of propagating — so re-check at block exit;
	// otherwise a stop inside a trailing branch would let the run report
	// full (unsealed) completion.
	if a.stopped != nil {
		return failed(a.stopped)
	}
	return okOut
}

// setReg writes a register with journaling so branch post-processing can
// mark or undo expression temporaries (e.g. the result registers of lowered
// && / || / ?: expressions).
func (a *Analysis) setReg(f *DFrame, r ir.Reg, v Value) {
	a.journalReg(f.Regs, r)
	if a.opts.ImmediateTaint && a.inIndetBranch() {
		v.Det = false
	}
	f.Regs[r] = v
}

// define writes a register and records the determinacy fact for the
// defining instruction.
func (a *Analysis) define(f *DFrame, in ir.Instr, r ir.Reg, v Value) {
	a.setReg(f, r, v)
	a.record(f, in, f.Regs[r])
}

func (a *Analysis) execInstr(f *DFrame, in ir.Instr) outcome {
	switch in := in.(type) {
	case *ir.Const:
		a.define(f, in, in.Dst, litValue(in.Val))
	case *ir.Move:
		a.define(f, in, in.Dst, f.Regs[in.Src])
	case *ir.LoadVar:
		a.define(f, in, in.Dst, a.loadSlot(f.Env, in.Var.Hops, in.Var.Slot))
	case *ir.StoreVar:
		a.storeSlot(f.Env, in.Var.Hops, in.Var.Slot, f.Regs[in.Src])
	case *ir.LoadGlobal:
		v, found, pathDet := a.lookup(a.Global, in.Name)
		if !found && !in.ForTypeof {
			return a.throwError("ReferenceError", in.Name+" is not defined", pathDet)
		}
		a.define(f, in, in.Dst, v)
	case *ir.StoreGlobal:
		a.setOwn(a.Global, in.Name, f.Regs[in.Src])
	case *ir.MakeClosure:
		a.define(f, in, in.Dst, ObjV(a.NewClosureObj(in.Fn, f.Env), true))
	case *ir.MakeObject:
		o := a.NewPlainObj()
		for _, p := range in.Props {
			a.setOwn(o, p.Key, f.Regs[p.Val])
		}
		a.define(f, in, in.Dst, ObjV(o, true))
	case *ir.MakeArray:
		elems := make([]Value, len(in.Elems))
		for i, r := range in.Elems {
			elems[i] = f.Regs[r]
		}
		a.define(f, in, in.Dst, ObjV(a.NewArrayObj(elems), true))
	case *ir.GetField:
		v, out := a.getProp(f.Regs[in.Obj], in.Name, true)
		if out.kind != oNormal {
			return out
		}
		a.define(f, in, in.Dst, v)
	case *ir.GetProp:
		// Rule L̂D: the result carries both the base's and the property
		// name's annotations: (v̂^d)^d'.
		name, nameDet := a.toString(f.Regs[in.Prop])
		v, out := a.getProp(f.Regs[in.Obj], name, nameDet)
		if out.kind != oNormal {
			return out
		}
		a.define(f, in, in.Dst, v)
	case *ir.SetField:
		return a.execStore(f.Regs[in.Obj], in.Name, true, f.Regs[in.Src])
	case *ir.SetProp:
		name, nameDet := a.toString(f.Regs[in.Prop])
		return a.execStore(f.Regs[in.Obj], name, nameDet, f.Regs[in.Src])
	case *ir.DelField:
		v, out := a.execDelete(f.Regs[in.Obj], in.Name, true)
		if out.kind != oNormal {
			return out
		}
		a.define(f, in, in.Dst, v)
	case *ir.DelProp:
		name, nameDet := a.toString(f.Regs[in.Prop])
		v, out := a.execDelete(f.Regs[in.Obj], name, nameDet)
		if out.kind != oNormal {
			return out
		}
		a.define(f, in, in.Dst, v)
	case *ir.BinOp:
		v, out := a.binOp(in.Op, f.Regs[in.L], f.Regs[in.R])
		if out.kind != oNormal {
			return out
		}
		a.define(f, in, in.Dst, v)
	case *ir.UnOp:
		a.define(f, in, in.Dst, a.unOp(in.Op, f.Regs[in.X]))
	case *ir.Call:
		return a.execCall(f, in)
	case *ir.New:
		return a.execNew(f, in)
	case *ir.If:
		return a.execIf(f, in)
	case *ir.While:
		return a.execWhile(f, in)
	case *ir.ForIn:
		return a.execForIn(f, in)
	case *ir.Return:
		v := UndefD
		if in.Src != ir.NoReg {
			v = f.Regs[in.Src]
		}
		return outcome{kind: oReturn, val: v}
	case *ir.Throw:
		return outcome{kind: oThrow, val: f.Regs[in.Src]}
	case *ir.Break:
		return outcome{kind: oBreak}
	case *ir.Continue:
		return outcome{kind: oContinue}
	case *ir.Try:
		return a.execTry(f, in)
	default:
		return failed(fmt.Errorf("core: unknown instruction %T", in))
	}
	return okOut
}

// ---------------------------------------------------------------------------
// Property access

func (a *Analysis) getProp(base Value, name string, nameDet bool) (Value, outcome) {
	switch base.Kind {
	case Object:
		if g, ok := base.O.findGetter(name); ok {
			v, err := g(a, base, nil)
			if err != nil {
				return Value{}, a.nativeErrOutcome(err)
			}
			return v.WithDet(base.Det).WithDet(nameDet), okOut
		}
		v, _, _ := a.lookup(base.O, name)
		return v.WithDet(base.Det).WithDet(nameDet), okOut
	case String:
		if name == "length" {
			return NumberV(float64(len(base.S)), base.Det && nameDet), okOut
		}
		if idx, ok := arrayIndex(name); ok {
			det := base.Det && nameDet
			if idx < len(base.S) {
				return StringV(string(base.S[idx]), det), okOut
			}
			return Value{Kind: Undefined, Det: det}, okOut
		}
		// Method lookup on a primitive resolves through the (shared)
		// prototype regardless of the primitive's value, so an
		// indeterminate receiver does not make the method identity
		// indeterminate — this keeps s.charAt() on an indeterminate string
		// from flushing the heap (§4: string models).
		v, _, _ := a.lookup(a.StringProto, name)
		return v.WithDet(nameDet), okOut
	case Number:
		v, _, _ := a.lookup(a.NumberProto, name)
		return v.WithDet(nameDet), okOut
	case Bool:
		v, _, _ := a.lookup(a.BooleanProto, name)
		return v.WithDet(nameDet), okOut
	default:
		return Value{}, a.throwError("TypeError",
			fmt.Sprintf("cannot read property %q of %s", name, base.Kind), base.Det && nameDet)
	}
}

// execStore implements rule ŜTO: the write happens on the concrete target;
// an indeterminate base flushes the heap (the write may land anywhere in
// other executions); an indeterminate property name opens the record.
// nativeErrOutcome converts a native callback error to an outcome.
func (a *Analysis) nativeErrOutcome(err error) outcome {
	if errors.Is(err, errCFAbort) {
		return outcome{kind: oCFAbort}
	}
	var th *Thrown
	if errors.As(err, &th) {
		return outcome{kind: oThrow, val: th.Val}
	}
	return failed(err)
}

func (a *Analysis) execStore(base Value, name string, nameDet bool, v Value) outcome {
	switch base.Kind {
	case Object:
		if s, ok := base.O.findSetter(name); ok {
			if a.cfDepth > 0 {
				// Accessor setters reach host state that the journal cannot
				// undo: abort the counterfactual (§4).
				return outcome{kind: oCFAbort}
			}
			if _, err := s(a, base, []Value{v}); err != nil {
				return a.nativeErrOutcome(err)
			}
			if !base.Det {
				a.FlushHeap("indet-store-base")
			}
			return okOut
		}
		if !nameDet {
			a.setOwn(base.O, name, v.Indet())
			a.openRecord(base.O, false)
		} else {
			a.setOwn(base.O, name, v)
		}
		if !base.Det {
			a.FlushHeap("indet-store-base")
		}
		return okOut
	case String, Number, Bool:
		return okOut
	default:
		return a.throwError("TypeError",
			fmt.Sprintf("cannot set property %q of %s", name, base.Kind), base.Det && nameDet)
	}
}

func (a *Analysis) execDelete(base Value, name string, nameDet bool) (Value, outcome) {
	switch base.Kind {
	case Object:
		hadIt, hadDet := a.hasOwnConcrete(base.O, name)
		deleted := a.deleteProp(base.O, name)
		if !nameDet {
			// Any property might have been the target in other executions.
			a.openRecord(base.O, true)
		}
		if !base.Det {
			a.FlushHeap("indet-delete-base")
		}
		_ = hadIt
		return BoolV(deleted, base.Det && nameDet && hadDet), okOut
	case String, Number, Bool:
		return BoolV(true, base.Det && nameDet), okOut
	default:
		return Value{}, a.throwError("TypeError",
			fmt.Sprintf("cannot delete property %q of %s", name, base.Kind), base.Det && nameDet)
	}
}

// ---------------------------------------------------------------------------
// Operators. Rule P̂RIMOP: the result carries (pv₃^d1)^d2.

func (a *Analysis) binOp(op string, l, r Value) (Value, outcome) {
	det := l.Det && r.Det
	switch op {
	case "+":
		lp, lpd := a.toPrimitive(l)
		rp, rpd := a.toPrimitive(r)
		det = det && lpd && rpd
		if lp.Kind == Object {
			lp = StringV("[object Object]", lp.Det)
		}
		if rp.Kind == Object {
			rp = StringV("[object Object]", rp.Det)
		}
		if lp.Kind == String || rp.Kind == String {
			ls, _ := a.toString(lp)
			rs, _ := a.toString(rp)
			return StringV(ls+rs, det), okOut
		}
		return NumberV(interp.ToNumber(prim(lp))+interp.ToNumber(prim(rp)), det), okOut
	case "-":
		return NumberV(a.toNumber(l)-a.toNumber(r), det), okOut
	case "*":
		return NumberV(a.toNumber(l)*a.toNumber(r), det), okOut
	case "/":
		return NumberV(a.toNumber(l)/a.toNumber(r), det), okOut
	case "%":
		return NumberV(math.Mod(a.toNumber(l), a.toNumber(r)), det), okOut
	case "<", ">", "<=", ">=":
		return a.compareOp(op, l, r, det), okOut
	case "==":
		return BoolV(a.looseEquals(l, r), det), okOut
	case "!=":
		return BoolV(!a.looseEquals(l, r), det), okOut
	case "===":
		return BoolV(strictEquals(l, r), det), okOut
	case "!==":
		return BoolV(!strictEquals(l, r), det), okOut
	case "&":
		return NumberV(float64(a.toInt32(l)&a.toInt32(r)), det), okOut
	case "|":
		return NumberV(float64(a.toInt32(l)|a.toInt32(r)), det), okOut
	case "^":
		return NumberV(float64(a.toInt32(l)^a.toInt32(r)), det), okOut
	case "<<":
		return NumberV(float64(a.toInt32(l)<<(a.toUint32(r)&31)), det), okOut
	case ">>":
		return NumberV(float64(a.toInt32(l)>>(a.toUint32(r)&31)), det), okOut
	case ">>>":
		return NumberV(float64(a.toUint32(l)>>(a.toUint32(r)&31)), det), okOut
	case "||#":
		return BoolV(a.toBool(l) || a.toBool(r), det), okOut
	case "in":
		if r.Kind != Object {
			return Value{}, a.throwError("TypeError", "'in' requires an object", det)
		}
		name, nameDet := a.toString(l)
		present, presDet := a.has(r.O, name)
		return BoolV(present, det && nameDet && presDet), okOut
	case "instanceof":
		if !r.IsCallable() {
			return Value{}, a.throwError("TypeError", "right-hand side of instanceof is not callable", det)
		}
		pv, hasProto := a.getOwn(r.O, "prototype")
		det = det && pv.Det
		if !hasProto || pv.Kind != Object {
			return BoolV(false, det), okOut
		}
		if l.Kind != Object {
			return BoolV(false, det), okOut
		}
		for cur := l.O; cur != nil; cur = cur.Proto {
			if !cur.ProtoDet {
				det = false
			}
			if cur.Proto == pv.O {
				return BoolV(true, det), okOut
			}
		}
		return BoolV(false, det), okOut
	default:
		return Value{}, failed(fmt.Errorf("core: unknown binary operator %q", op))
	}
}

func (a *Analysis) compareOp(op string, l, r Value, det bool) Value {
	lp, lpd := a.toPrimitive(l)
	rp, rpd := a.toPrimitive(r)
	det = det && lpd && rpd
	if lp.Kind == String && rp.Kind == String {
		var b bool
		switch op {
		case "<":
			b = lp.S < rp.S
		case ">":
			b = lp.S > rp.S
		case "<=":
			b = lp.S <= rp.S
		default:
			b = lp.S >= rp.S
		}
		return BoolV(b, det)
	}
	// Plain objects survive toPrimitive as objects and convert to NaN;
	// they must not reach prim, which would drop the object pointer.
	ln, rn := math.NaN(), math.NaN()
	if lp.Kind != Object {
		ln = interp.ToNumber(prim(lp))
	}
	if rp.Kind != Object {
		rn = interp.ToNumber(prim(rp))
	}
	if math.IsNaN(ln) || math.IsNaN(rn) {
		return BoolV(false, det)
	}
	var b bool
	switch op {
	case "<":
		b = ln < rn
	case ">":
		b = ln > rn
	case "<=":
		b = ln <= rn
	default:
		b = ln >= rn
	}
	return BoolV(b, det)
}

func (a *Analysis) toInt32(v Value) int32   { return interp.ToInt32(interp.NumberVal(a.toNumber(v))) }
func (a *Analysis) toUint32(v Value) uint32 { return interp.ToUint32(interp.NumberVal(a.toNumber(v))) }

func (a *Analysis) unOp(op string, x Value) Value {
	switch op {
	case "!":
		return BoolV(!a.toBool(x), x.Det)
	case "-":
		return NumberV(-a.toNumber(x), x.Det)
	case "+":
		return NumberV(a.toNumber(x), x.Det)
	case "~":
		return NumberV(float64(^a.toInt32(x)), x.Det)
	case "typeof":
		return StringV(a.typeOf(x), x.Det)
	default:
		return Value{Kind: Undefined}
	}
}

// ---------------------------------------------------------------------------
// Conditionals: rules ÎF1, ÎF2-DET, CNTR, CNTRABORT

func (a *Analysis) execIf(f *DFrame, in *ir.If) outcome {
	cond := f.Regs[in.Cond]
	truthy := a.toBool(cond)

	if cond.Det {
		// Rules ÎF1 (determinate true) and ÎF2-DET: ordinary execution.
		if truthy {
			return a.execBlock(f, in.Then)
		}
		if in.Else != nil {
			return a.execBlock(f, in.Else)
		}
		return okOut
	}

	taken, untaken := in.Then, in.Else
	if !truthy {
		taken, untaken = in.Else, in.Then
	}

	// Rule ÎF1 with an indeterminate condition: execute the taken branch,
	// then mark everything it wrote indeterminate.
	if taken != nil {
		bf := a.pushBranch(false)
		out := a.execBlock(f, taken)
		a.popBranch(bf)
		a.markIndeterminate(bf)
		a.releaseBranch(bf)
		if out.kind != oNormal {
			return a.escapeIndet(out)
		}
	}

	// Rule CNTR: counterfactually execute the branch that was not taken.
	if untaken != nil {
		a.counterfactual(f, untaken)
	}
	return okOut
}

// escapeIndet handles an abrupt completion crossing out of a branch guarded
// by an indeterminate condition. Other executions may not perform this
// escape and would go on executing code whose effects we cannot see, so the
// state is conservatively flushed and the completion value marked
// indeterminate. This is the conservative control-flow merge of §4
// ("adjusts determinacy information at every control flow merge point").
func (a *Analysis) escapeIndet(out outcome) outcome {
	if out.kind == oFail || out.kind == oCFAbort {
		return out
	}
	a.flushAll("indet-branch-escape")
	out.val = out.val.Indet()
	out.pathIndet = true
	return out
}

// counterfactual executes a block that concrete execution skips (rule CNTR),
// then undoes its writes and marks them indeterminate. Rule CNTRABORT
// applies beyond the nesting cut-off or when ablated: flush the heap and
// mark the block's static write set.
func (a *Analysis) counterfactual(f *DFrame, b *ir.Block) {
	if a.opts.DisableCounterfactual || a.cfDepth >= a.opts.MaxCounterfactualDepth {
		a.stats.CFAborts++
		a.flushAll("cntr-abort")
		a.markStaticWrites(f, b)
		f.allSeqTainted = true
		return
	}
	// Counterfactual execution must not leak into real state: the PRNG is
	// part of that state (a counterfactual Math.random call would otherwise
	// desynchronize the instrumented run from concrete runs).
	savedRng := a.rng
	bf := a.pushBranch(true)
	out := a.execBlock(f, b)
	a.popBranch(bf)
	a.rng = savedRng
	switch out.kind {
	case oNormal:
		a.undoAndMark(bf)
	case oFail:
		a.undoOnly(bf)
		f.allSeqTainted = true
		if a.stopped == nil && out.err != nil && !errors.Is(out.err, ErrFlushLimit) {
			// Resource exhaustion inside a counterfactual is contained
			// conservatively rather than aborting the whole analysis.
			a.flushAll("cf-abort")
			a.stats.CFAborts++
		}
	default:
		// A throw, return, break, continue or explicit abort escaping the
		// counterfactual: abandon it (§4) and flush conservatively. The
		// unexecuted remainder poisons occurrence numbering in this frame.
		a.undoOnly(bf)
		a.flushAll("cf-abort")
		a.stats.CFAborts++
		f.allSeqTainted = true
	}
	a.releaseBranch(bf)
}

// ---------------------------------------------------------------------------
// Loops. The paper treats while via the desugaring
// while(x){s} ≡ if(x){s; while(x){s}}, so an indeterminate-true condition
// puts the entire rest of the loop under one ÎF1 frame, and an
// indeterminate-false condition counterfactually executes one more body
// followed (recursively, up to the cut-off) by the rest of the loop.
func (a *Analysis) execWhile(f *DFrame, in *ir.While) outcome {
	var pushed []*branchFrame
	// finish pops every ÎF1 frame opened for indeterminate-true iterations.
	finish := func(out outcome) outcome {
		escaped := out.kind != oNormal && out.kind != oBreak
		for i := len(pushed) - 1; i >= 0; i-- {
			a.popBranch(pushed[i])
			a.markIndeterminate(pushed[i])
			a.applyLoopTaints(pushed[i])
			a.releaseBranch(pushed[i])
		}
		if len(pushed) > 0 {
			if out.kind == oBreak {
				// The loop exit is itself control-dependent on an
				// indeterminate condition: other executions may iterate
				// further.
				a.flushAll("indet-loop-escape")
				return okOut
			}
			if escaped {
				return a.escapeIndet(out)
			}
		}
		if out.kind == oBreak {
			return okOut
		}
		return out
	}

	first := true
	for {
		if !(in.PostTest && first) {
			if out := a.execBlock(f, in.CondBlock); out.kind != oNormal {
				return finish(out)
			}
			cond := f.Regs[in.Cond]
			truthy := a.toBool(cond)
			switch {
			case cond.Det && !truthy:
				return finish(okOut)
			case cond.Det && truthy:
				// fall through to the body
			case !cond.Det && truthy:
				// A loop that is itself inside another loop can be
				// re-entered: its occurrence indices only align across
				// executions within a single entry, so indeterminate
				// continuation frames must taint like branch frames there.
				// A non-reentrant loop's k-th body arrival is iteration k
				// in every execution, keeping facts like the paper's
				// 24_0/24_1 determinate.
				if a.Mod.IsReentrant(in.ID) {
					pushed = append(pushed, a.pushBranch(false))
				} else {
					pushed = append(pushed, a.pushLoopBranch(false))
				}
			default: // indeterminate false: counterfactual tail, then exit
				a.cfLoopTail(f, in)
				return finish(okOut)
			}
		}
		first = false

		out := a.execBlock(f, in.Body)
		switch out.kind {
		case oNormal, oContinue:
			if in.Update != nil {
				if uout := a.execBlock(f, in.Update); uout.kind != oNormal {
					return finish(uout)
				}
			}
		case oBreak:
			return finish(outcome{kind: oBreak})
		default:
			return finish(out)
		}
	}
}

// cfLoopTail counterfactually executes one more iteration (body, update)
// followed by the remainder of the loop, mirroring the desugaring. The
// recursion through execWhile bounds itself via the counterfactual depth.
func (a *Analysis) cfLoopTail(f *DFrame, in *ir.While) {
	if a.opts.DisableCounterfactual || a.cfDepth >= a.opts.MaxCounterfactualDepth {
		a.stats.CFAborts++
		a.flushAll("cntr-abort")
		a.markStaticWrites(f, in.Body)
		if in.Update != nil {
			a.markStaticWrites(f, in.Update)
		}
		a.markStaticWrites(f, in.CondBlock)
		f.allSeqTainted = true
		return
	}
	savedRng := a.rng
	var bf *branchFrame
	if a.Mod.IsReentrant(in.ID) {
		bf = a.pushBranch(true) // see execWhile: re-enterable loop
	} else {
		bf = a.pushLoopBranch(true)
	}
	out := a.execBlock(f, in.Body)
	if out.kind == oNormal || out.kind == oContinue {
		if in.Update != nil {
			out = a.execBlock(f, in.Update)
		} else {
			out = okOut
		}
	}
	if out.kind == oNormal {
		// Continue the loop counterfactually; a nested indeterminate-false
		// condition recurses into cfLoopTail at depth+1.
		rest := *in
		rest.PostTest = false
		out = a.execWhile(f, &rest)
	}
	if out.kind == oBreak {
		out = okOut
	}
	a.popBranch(bf)
	a.rng = savedRng
	switch out.kind {
	case oNormal:
		a.undoAndMark(bf)
	case oFail:
		a.undoOnly(bf)
		f.allSeqTainted = true
	default:
		a.undoOnly(bf)
		a.flushAll("cf-abort")
		a.stats.CFAborts++
		f.allSeqTainted = true
	}
	a.applyLoopTaints(bf)
	a.releaseBranch(bf)
}

// execForIn iterates property names. When the key set is determinate the
// loop variable is determinate per iteration (§5.2: determinate property
// sets iterate in determinate order); otherwise the whole loop runs under an
// indeterminacy frame and is followed by a conservative flush, since other
// executions may iterate different keys entirely.
func (a *Analysis) execForIn(f *DFrame, in *ir.ForIn) outcome {
	obj := f.Regs[in.Obj]
	if obj.Kind != Object {
		return okOut
	}
	names, keysDet := a.enumKeys(obj.O)
	keysDet = keysDet && obj.Det

	var bf *branchFrame
	if !keysDet {
		bf = a.pushBranch(false)
	}
	finish := func(out outcome) outcome {
		if bf != nil {
			a.popBranch(bf)
			a.markIndeterminate(bf)
			a.releaseBranch(bf)
			a.flushAll("forin-indet")
			if out.kind != oNormal && out.kind != oBreak {
				return a.escapeIndet(out)
			}
			return okOut
		}
		if out.kind == oBreak {
			return okOut
		}
		return out
	}

	for _, name := range names {
		if present, _ := a.has(obj.O, name); !present {
			continue // deleted during iteration
		}
		nv := StringV(name, keysDet)
		// Record a per-iteration fact for the loop itself: the key visited
		// at each occurrence. The specializer uses the run of determinate
		// key facts to unroll for-in loops over determinate property sets
		// (§5.2: determinate sets iterate in determinate order).
		a.record(f, in, nv)
		if in.Global {
			a.setOwn(a.Global, in.TargetGlobal, nv)
		} else {
			a.storeSlot(f.Env, in.Target.Hops, in.Target.Slot, nv)
		}
		out := a.execBlock(f, in.Body)
		switch out.kind {
		case oNormal, oContinue:
		case oBreak:
			return finish(outcome{kind: oBreak})
		default:
			return finish(out)
		}
	}
	return finish(okOut)
}

// enumKeys mirrors interp.enumKeys over instrumented objects, additionally
// reporting whether the key set (and thus iteration order) is determinate.
func (a *Analysis) enumKeys(o *DObj) ([]string, bool) {
	det := true
	var out []string
	seen := map[string]bool{}
	for cur := o; cur != nil; cur = cur.Proto {
		if a.IsOpen(cur) {
			det = false
		}
		if !cur.ProtoDet {
			det = false
		}
		for _, k := range cur.keys {
			p := cur.props[k]
			if p.phantom || p.maybeAbsent {
				det = false
				if p.phantom {
					continue
				}
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			if cur.Class == "Array" && k == "length" {
				continue
			}
			if cur.Class == "Function" && (k == "prototype" || k == "length") {
				continue
			}
			if cur != o && cur.Data == protoMarker {
				continue
			}
			out = append(out, k)
		}
	}
	return out, det
}

// protoMarker tags built-in prototypes, hiding their properties from for-in.
var protoMarker = new(int)

func (a *Analysis) execTry(f *DFrame, in *ir.Try) outcome {
	out := a.execBlock(f, in.Body)
	if out.kind == oCFAbort {
		return out
	}
	if out.kind == oThrow && in.HasCatch {
		pathIndet := out.pathIndet
		var bf *branchFrame
		if pathIndet {
			// The catch only runs in executions that throw here; treat it
			// like a branch under an indeterminate condition.
			bf = a.pushBranch(false)
		}
		if in.GlobalCatch != "" {
			a.setOwn(a.Global, in.GlobalCatch, out.val)
		} else {
			a.storeSlot(f.Env, in.CatchVar.Hops, in.CatchVar.Slot, out.val)
		}
		out = a.execBlock(f, in.Catch)
		if bf != nil {
			a.popBranch(bf)
			a.markIndeterminate(bf)
			a.releaseBranch(bf)
			if out.kind != oNormal {
				out = a.escapeIndet(out)
			}
		}
	}
	if in.Finally != nil {
		fout := a.execBlock(f, in.Finally)
		if fout.kind != oNormal {
			return fout
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Calls: rule ÎNV. The callee's determinacy flag d applies to the result
// value and, when d = ?, to the whole heap (flush): another execution may
// invoke a different function with arbitrary effects.

func (a *Analysis) execCall(f *DFrame, in *ir.Call) outcome {
	fnv := f.Regs[in.Fn]
	if fnv.Kind == Object && fnv.O.Native != nil && fnv.O.Native.IsEval {
		return a.execEval(f, in)
	}
	this := Value{Kind: Undefined, Det: true}
	if in.This != ir.NoReg {
		this = f.Regs[in.This]
	}
	args := make([]Value, len(in.Args))
	for i, r := range in.Args {
		args[i] = f.Regs[r]
	}
	out := a.callValue(fnv, this, args, in.ID)
	if out.kind != oNormal {
		return out
	}
	a.define(f, in, in.Dst, out.val)
	return okOut
}

func (a *Analysis) callValue(fnv Value, this Value, args []Value, site ir.ID) outcome {
	if !fnv.IsCallable() {
		s, _ := a.toString(fnv)
		return a.throwError("TypeError", s+" is not a function", fnv.Det)
	}
	if len(a.frames) >= a.opts.MaxDepth {
		return failed(ErrStack)
	}
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteCoreCall)
	}
	d := fnv.Det
	o := fnv.O

	if o.Native != nil {
		if a.cfDepth > 0 && (o.Native.External || a.opts.AbortCFOnNativeWrite) {
			// §4: abort counterfactual execution at natives that are not
			// known to be side-effect free.
			if !a.isCFSafeNative(o.Native) {
				return outcome{kind: oCFAbort}
			}
		}
		v, err := o.Native.Fn(a, this, args)
		if err != nil {
			if errors.Is(err, errCFAbort) {
				return outcome{kind: oCFAbort}
			}
			var th *Thrown
			if errors.As(err, &th) {
				return outcome{kind: oThrow, val: th.Val}
			}
			return failed(err)
		}
		if !d {
			a.flushAll("indet-call")
		}
		return outcome{kind: oNormal, val: v.WithDet(d)}
	}

	fn := o.Fn
	env := a.newEnv(o.Env, fn)
	if fn.SelfSlot >= 0 {
		env.Slots[fn.SelfSlot] = fnv
	}
	for i := range fn.Params {
		var av Value
		if i < len(args) {
			av = args[i]
		} else {
			av = Value{Kind: Undefined, Det: true}
		}
		env.Slots[paramSlot(fn, i)] = av
	}
	if fn.ThisSlot >= 0 {
		if this.Kind == Undefined || this.Kind == Null {
			this = ObjV(a.Global, this.Det)
		}
		env.Slots[fn.ThisSlot] = this
	}

	var ctx facts.Context
	ctxUnstable := false
	if len(a.frames) > 0 {
		parent := a.frames[len(a.frames)-1]
		ctx = parent.Ctx
		ctxUnstable = parent.ctxUnstable
		if site >= 0 {
			ctx = append(parent.Ctx.Clone(), facts.ContextEntry{Site: site, Seq: parent.nextCallSeq(site)})
			if !a.seqStable(parent, site) {
				ctxUnstable = true
			}
		}
	}
	nf := &DFrame{Fn: fn, Env: env, Regs: make([]Value, fn.NumRegs), CallSite: site, Ctx: ctx, ctxUnstable: ctxUnstable}
	a.initSeq(nf)
	if a.opts.OnEnterFunc != nil {
		a.opts.OnEnterFunc(fn, EntrySig(this, args), a.heapEpoch)
	}
	a.frames = append(a.frames, nf)
	out := a.execBlock(nf, fn.Body)
	a.frames = a.frames[:len(a.frames)-1]

	var ret outcome
	switch out.kind {
	case oNormal:
		ret = outcome{kind: oNormal, val: UndefD}
	case oReturn:
		ret = outcome{kind: oNormal, val: out.val}
	case oBreak, oContinue:
		return failed(fmt.Errorf("core: loop completion escaped function body"))
	default:
		if !d && out.kind == oThrow {
			a.flushAll("indet-call")
			out.val = out.val.Indet()
			out.pathIndet = true
		}
		return out
	}
	if !d {
		a.flushAll("indet-call")
		ret.val = ret.val.Indet()
	}
	return ret
}

// isCFSafeNative reports whether a native may run during counterfactual
// execution. All instrumented-heap natives are safe because their writes go
// through the journal; External ones (DOM, I/O) are not.
func (a *Analysis) isCFSafeNative(n *DNative) bool {
	if a.opts.AbortCFOnNativeWrite {
		return cfPureNatives[n.Name]
	}
	return !n.External
}

func paramSlot(fn *ir.Function, i int) int {
	name := fn.Params[i]
	for s, n := range fn.SlotNames {
		if n == name {
			return s
		}
	}
	return i
}

func (a *Analysis) execNew(f *DFrame, in *ir.New) outcome {
	fnv := f.Regs[in.Fn]
	if !fnv.IsCallable() {
		s, _ := a.toString(fnv)
		return a.throwError("TypeError", s+" is not a constructor", fnv.Det)
	}
	proto := a.ObjectProto
	protoDet := true
	if pv, ok := a.getOwn(fnv.O, "prototype"); ok {
		protoDet = pv.Det
		if pv.Kind == Object {
			proto = pv.O
		}
	}
	obj := a.NewObj("Object", proto)
	obj.ProtoDet = protoDet && fnv.Det

	args := make([]Value, len(in.Args))
	for i, r := range in.Args {
		args[i] = f.Regs[r]
	}
	out := a.callValue(fnv, ObjV(obj, true), args, in.ID)
	if out.kind != oNormal {
		return out
	}
	res := ObjV(obj, true)
	if out.val.Kind == Object {
		res = out.val
	}
	a.define(f, in, in.Dst, res.WithDet(fnv.Det))
	return okOut
}

// ---------------------------------------------------------------------------
// eval (§4): runtime code is recursively instrumented; an indeterminate
// argument means other executions run different code, so after executing the
// concretely observed code, its writes are marked and the state flushed.

func (a *Analysis) execEval(f *DFrame, in *ir.Call) outcome {
	var argv Value
	if len(in.Args) > 0 {
		argv = f.Regs[in.Args[0]]
	} else {
		argv = UndefD
	}
	if argv.Kind != String {
		a.define(f, in, in.Dst, argv)
		return okOut
	}
	if a.tracer != nil {
		detail := "det"
		if !argv.Det {
			detail = "indet"
		}
		a.tracer.Event(obs.Event{Kind: obs.EvEval, Detail: detail, N1: int64(len(argv.S))})
	}
	fn, out := a.lowerEvalFor(f.Fn, argv.S)
	if out.kind != oNormal {
		if out.kind == oThrow {
			out.val = out.val.WithDet(argv.Det)
		}
		return out
	}

	var bf *branchFrame
	if !argv.Det {
		bf = a.pushBranch(false)
	}

	env := a.newEnv(f.Env, fn)
	ctx := append(f.Ctx.Clone(), facts.ContextEntry{Site: in.ID, Seq: f.nextCallSeq(in.ID)})
	ctxUnstable := f.ctxUnstable || !a.seqStable(f, in.ID)
	nf := &DFrame{Fn: fn, Env: env, Regs: make([]Value, fn.NumRegs), CallSite: in.ID, Ctx: ctx, ctxUnstable: ctxUnstable}
	a.initSeq(nf)
	if len(a.frames) >= a.opts.MaxDepth {
		if bf != nil {
			a.popBranch(bf)
			a.mergeUp(bf)
			a.releaseBranch(bf)
		}
		return failed(ErrStack)
	}
	a.frames = append(a.frames, nf)
	bout := a.execBlock(nf, fn.Body)
	a.frames = a.frames[:len(a.frames)-1]

	if bf != nil {
		a.popBranch(bf)
		a.markIndeterminate(bf)
		a.releaseBranch(bf)
		a.flushAll("eval-indet")
	}

	switch bout.kind {
	case oReturn, oNormal:
		v := bout.val
		if bout.kind == oNormal {
			v = UndefD
		}
		a.define(f, in, in.Dst, v.WithDet(argv.Det))
		return okOut
	case oThrow:
		if !argv.Det {
			bout.val = bout.val.Indet()
		}
		return bout
	default:
		return bout
	}
}

func (a *Analysis) lowerEvalFor(caller *ir.Function, src string) (*ir.Function, outcome) {
	key := fmt.Sprintf("%d\x00%s", caller.Index, src)
	if fn, ok := a.evalCache[key]; ok {
		return fn, okOut
	}
	nfuncs := len(a.Mod.Funcs)
	fn, err := ir.LowerEval(a.Mod, src, caller)
	if err != nil {
		return nil, a.throwError("SyntaxError", err.Error(), true)
	}
	if a.useVM {
		// Compile the eval function and any nested function literals it
		// lowered, numbering their cache sites past the run's current table
		// (the module-level counter is shared state; this run's clone owns
		// these functions exclusively).
		ics := len(a.ics)
		if a.evalFns == nil {
			a.evalFns = make(map[*ir.Function]*vm.FnInfo)
		}
		for _, efn := range a.Mod.Funcs[nfuncs:] {
			a.evalFns[efn] = vm.CompileFunc(efn, &ics)
		}
		for len(a.ics) < ics {
			a.ics = append(a.ics, propIC{})
		}
	}
	a.evalCache[key] = fn
	return fn, okOut
}
