package core_test

import (
	"bytes"
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

// analyze compiles src and runs the instrumented interpreter, returning the
// module, fact store and analysis.
func analyze(t *testing.T, src string, opts core.Options) (*ir.Module, *facts.Store, *core.Analysis) {
	t.Helper()
	mod, err := ir.Compile("test.js", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	store := facts.NewStore()
	var buf bytes.Buffer
	if opts.Out == nil {
		opts.Out = &buf
	}
	a := core.New(mod, store, opts)
	if _, err := a.Run(); err != nil {
		t.Fatalf("run: %v\noutput:\n%s\nIR:\n%s", err, buf.String(), mod)
	}
	if len(store.Conflicts) > 0 {
		t.Fatalf("fact conflicts: %v", store.Conflicts)
	}
	return mod, store, a
}

// instrPred matches instructions for fact queries.
type instrPred func(in ir.Instr) bool

func getField(name string) instrPred {
	return func(in ir.Instr) bool {
		g, ok := in.(*ir.GetField)
		return ok && g.Name == name
	}
}

func loadVar(name string) instrPred {
	return func(in ir.Instr) bool {
		l, ok := in.(*ir.LoadVar)
		return ok && l.Var.Name == name
	}
}

func anyInstr(in ir.Instr) bool { return true }

// factsAtLine returns all facts whose instruction is on the given source
// line and matches pred.
func factsAtLine(t *testing.T, mod *ir.Module, store *facts.Store, line int, pred instrPred) []*facts.Fact {
	t.Helper()
	var out []*facts.Fact
	for _, f := range store.All() {
		in := mod.InstrAt(f.Instr)
		if in == nil || in.IPos().Line != line {
			continue
		}
		if pred(in) {
			out = append(out, f)
		}
	}
	return out
}

// oneFactAtLine expects exactly one matching fact.
func oneFactAtLine(t *testing.T, mod *ir.Module, store *facts.Store, line int, pred instrPred) *facts.Fact {
	t.Helper()
	fs := factsAtLine(t, mod, store, line, pred)
	if len(fs) != 1 {
		t.Fatalf("line %d: want 1 fact, got %d:\n%s", line, len(fs), facts.Render(mod, fs))
	}
	return fs[0]
}

// ctxLines maps a fact's context to the source lines of its call sites.
func ctxLines(mod *ir.Module, f *facts.Fact) []int {
	var out []int
	for _, e := range f.Ctx {
		if in := mod.InstrAt(e.Site); in != nil {
			out = append(out, in.IPos().Line)
		} else {
			out = append(out, -1)
		}
	}
	return out
}

// endsWith reports whether a ends with suffix (outer IIFE call sites
// prepend entries that individual assertions do not care about).
func endsWith(a, suffix []int) bool {
	if len(a) < len(suffix) {
		return false
	}
	off := len(a) - len(suffix)
	for i := range suffix {
		if a[off+i] != suffix[i] {
			return false
		}
	}
	return true
}

func wantDet(t *testing.T, f *facts.Fact, mod *ir.Module, det bool) {
	t.Helper()
	if f.Det != det {
		t.Errorf("fact %s: det=%v, want %v", facts.RenderFact(mod, f), f.Det, det)
	}
}

func wantNum(t *testing.T, f *facts.Fact, mod *ir.Module, n float64) {
	t.Helper()
	wantDet(t, f, mod, true)
	if f.Val.Kind != facts.VNumber || f.Val.Num != n {
		t.Errorf("fact %s: value=%s, want %v", facts.RenderFact(mod, f), f.Val, n)
	}
}

// figure2 is the paper's Figure 2 program with probe reads inserted at the
// commented fact points. Line numbers are significant and asserted below.
const figure2 = `(function() {
function checkf(p) {
	var c = p.f < 32;
	if (c)
		setg(p, 42);
}
function setg(r, v) {
	r.g = v;
}
var x = { f : 23 },
	y = { f : Math.random()*100 };
var xf14 = x.f;
var yf14 = y.f;
checkf(x);
var xf17 = x.f;
var xg17 = x.g;
checkf(y);
var yg19 = y.g;
(y.f > 50 ? checkf : setg)(x, 72);
var xg22 = x.g;
var xf22 = x.f;
var x22 = x;
var z = { f: x.g - 16, h: true };
checkf(z);
var zg = z.g;
var zh = z.h;
})();`

// Line map for figure2 (1-based):
//
//	 3  var c = p.f < 32
//	 5  setg(p, 42)
//	 8  r.g = v
//	12  xf14 = x.f     (paper line 14: ⟦x.f⟧ = 23)
//	13  yf14 = y.f     (⟦y.f⟧ = ?)
//	14  checkf(x)      (paper call site 16)
//	15  xf17 = x.f     (⟦x.f⟧ = 23)
//	16  xg17 = x.g     (⟦x.g⟧ = 42)
//	17  checkf(y)      (paper call site 18)
//	18  yg19 = y.g     (⟦y.g⟧ = ?)
//	19  indeterminate call (paper line 21)
//	20  xg22 = x.g     (⟦x.g⟧ = ?)
//	21  xf22 = x.f     (⟦x.f⟧ = ? after heap flush)
//	22  x22 = x        (x itself stays determinate: local variable)
//	23  var z = ...
//	24  checkf(z)      (paper line 25; condition indeterminate false)
//	25  zg = z.g       (⟦z.g⟧ = ? via counterfactual execution)
//	26  zh = z.h       (⟦z.h⟧ = true: untouched by the counterfactual)
func TestFigure2Facts(t *testing.T) {
	// Seed chosen so Math.random()*100 < 32 at line 11 and < 50 at line 19,
	// matching the paper's narrative (31.4).
	var seed uint64
	for s := uint64(0); s < 100; s++ {
		it := interp.New(ir.MustCompile("p.js", "x = Math.random();"), interp.Options{Seed: s})
		if _, err := it.Run(); err != nil {
			t.Fatal(err)
		}
		v, _ := it.Global.Get("x")
		if v.N*100 < 32 {
			seed = s
			goto found
		}
	}
	t.Fatal("no suitable seed found")
found:
	// MuJSLocals reproduces the paper's µJS treatment of locals, which the
	// Figure 2 narrative assumes (x stays determinate across the
	// indeterminate call at line 21).
	mod, store, a := analyze(t, figure2, core.Options{Seed: seed, MuJSLocals: true})

	wantNum(t, oneFactAtLine(t, mod, store, 12, getField("f")), mod, 23)    // ⟦x.f⟧14 = 23
	wantDet(t, oneFactAtLine(t, mod, store, 13, getField("f")), mod, false) // ⟦y.f⟧14 = ?
	wantNum(t, oneFactAtLine(t, mod, store, 15, getField("f")), mod, 23)    // ⟦x.f⟧17 = 23
	wantNum(t, oneFactAtLine(t, mod, store, 16, getField("g")), mod, 42)    // ⟦x.g⟧17 = 42
	wantDet(t, oneFactAtLine(t, mod, store, 18, getField("g")), mod, false) // ⟦y.g⟧19 = ?
	wantDet(t, oneFactAtLine(t, mod, store, 20, getField("g")), mod, false) // ⟦x.g⟧22 = ?
	wantDet(t, oneFactAtLine(t, mod, store, 21, getField("f")), mod, false) // ⟦x.f⟧22 = ? (flush)
	wantDet(t, oneFactAtLine(t, mod, store, 25, getField("g")), mod, false) // ⟦z.g⟧ = ? (counterfactual)

	// x itself is a local and stays determinate (µJS locals).
	xfact := oneFactAtLine(t, mod, store, 22, loadVar("x"))
	wantDet(t, xfact, mod, true)

	// z.h untouched by the counterfactual branch stays determinate.
	zh := oneFactAtLine(t, mod, store, 26, getField("h"))
	wantDet(t, zh, mod, true)
	if zh.Val.Kind != facts.VBool || !zh.Val.Bool {
		t.Errorf("z.h: got %s, want true", zh.Val)
	}

	// ⟦p.f < 32⟧ 16→4: determinately true under the first call, yet
	// indeterminate under the second. The comparison is the BinOp feeding
	// `c` on line 3; facts are context-qualified.
	var sawDet, sawIndet bool
	for _, f := range factsAtLine(t, mod, store, 3, func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "<"
	}) {
		lines := ctxLines(mod, f)
		switch {
		case endsWith(lines, []int{14}): // called from checkf(x)
			wantDet(t, f, mod, true)
			if f.Val.Kind != facts.VBool || !f.Val.Bool {
				t.Errorf("⟦p.f<32⟧ via line 14: got %s, want true", f.Val)
			}
			sawDet = true
		case endsWith(lines, []int{17}): // called from checkf(y)
			wantDet(t, f, mod, false)
			sawIndet = true
		}
	}
	if !sawDet || !sawIndet {
		t.Errorf("missing context-qualified facts for p.f<32: det=%v indet=%v", sawDet, sawIndet)
	}

	// ⟦v⟧ 18→5→(line 8): even under the indeterminate-condition branch, the
	// paper's post-branch marking lets facts inside the branch stay
	// determinate: v is 42 under the stack through checkf(y).
	var sawV bool
	for _, f := range factsAtLine(t, mod, store, 8, loadVar("v")) {
		lines := ctxLines(mod, f)
		if endsWith(lines, []int{17, 5}) {
			wantNum(t, f, mod, 42)
			sawV = true
		}
	}
	if !sawV {
		t.Error("missing fact for v under checkf(y)→setg stack")
	}

	// The analysis performed exactly one heap flush: the indeterminate call.
	st := a.Stats()
	if st.FlushReasons["indet-call"] == 0 {
		t.Errorf("expected an indet-call flush, reasons: %v", st.FlushReasons)
	}
	if st.Counterfacts == 0 {
		t.Error("expected at least one counterfactual execution")
	}
}

func TestConstantsDeterminate(t *testing.T) {
	mod, store, _ := analyze(t, `
		var a = 1 + 2;
		var b = "x" + "y";
		var c = a * 10;
	`, core.Options{})
	for _, f := range store.All() {
		if !f.Det {
			t.Errorf("expected all facts determinate, got %s", facts.RenderFact(mod, f))
		}
	}
}

func TestIndeterminacyPropagatesDirect(t *testing.T) {
	mod, store, _ := analyze(t, `
		var r = Math.random();
		var a = r + 1;
		var b = a * 2;
		var c = 5;
	`, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 3, func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "+"
	}), mod, false)
	wantDet(t, oneFactAtLine(t, mod, store, 4, func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "*"
	}), mod, false)
	c := oneFactAtLine(t, mod, store, 5, func(in ir.Instr) bool {
		k, ok := in.(*ir.Const)
		return ok && k.Val.Kind == ir.LitNumber
	})
	wantNum(t, c, mod, 5)
}

func TestIndirectPropagationIndetTrueBranch(t *testing.T) {
	// Condition indeterminate, concretely true: the branch runs, facts
	// inside stay determinate, but writes are marked after (rule ÎF1).
	mod, store, _ := analyze(t, `(function(){
		var w = 0;
		if (Math.random() < 2) {
			w = 7;
			var inside = w + 1;
		}
		var after = w;
	})();`, core.Options{})
	// inside the branch: determinate.
	inside := oneFactAtLine(t, mod, store, 5, func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "+"
	})
	wantNum(t, inside, mod, 8)
	// after the branch: w indeterminate.
	after := oneFactAtLine(t, mod, store, 7, loadVar("w"))
	wantDet(t, after, mod, false)
}

func TestCounterfactualExecution(t *testing.T) {
	// Condition indeterminate, concretely false: the branch runs
	// counterfactually; its writes are undone but marked indeterminate.
	mod, store, a := analyze(t, `(function(){
		var w = 1;
		var u = 2;
		var o = {p: 3};
		if (Math.random() > 2) {
			w = 99;
			o.p = 98;
			o.q = 97;
		}
		var wAfter = w;
		var uAfter = u;
		var opAfter = o.p;
		var oqAfter = o.q;
	})();`, core.Options{})
	if a.Stats().Counterfacts == 0 {
		t.Fatal("expected a counterfactual execution")
	}
	// Values were undone (concrete semantics preserved)...
	wantDet(t, oneFactAtLine(t, mod, store, 10, loadVar("w")), mod, false)
	w := oneFactAtLine(t, mod, store, 10, loadVar("w"))
	if w.Val.Kind != facts.VNumber || w.Val.Num != 1 {
		t.Errorf("w after counterfactual: concrete value %s, want 1", w.Val)
	}
	// ...untouched locations stay determinate...
	u := oneFactAtLine(t, mod, store, 11, loadVar("u"))
	wantNum(t, u, mod, 2)
	// ...written property indeterminate but concretely restored...
	op := oneFactAtLine(t, mod, store, 12, getField("p"))
	wantDet(t, op, mod, false)
	if op.Val.Num != 3 {
		t.Errorf("o.p: concrete %v, want 3", op.Val.Num)
	}
	// ...and a property created only counterfactually reads undefined?.
	oq := oneFactAtLine(t, mod, store, 13, getField("q"))
	wantDet(t, oq, mod, false)
	if oq.Val.Kind != facts.VUndefined {
		t.Errorf("o.q: concrete %s, want undefined", oq.Val)
	}
	// No heap flush was needed.
	if a.Stats().HeapFlushes != 0 {
		t.Errorf("unexpected flushes: %v", a.Stats().FlushReasons)
	}
}

func TestCounterfactualAblation(t *testing.T) {
	src := `(function(){
		var o = {p: 3};
		if (Math.random() > 2) {
			o.p = 98;
		}
		var after = o.p;
	})();`
	_, _, aOn := analyze(t, src, core.Options{})
	_, _, aOff := analyze(t, src, core.Options{DisableCounterfactual: true})
	if aOn.Stats().HeapFlushes != 0 {
		t.Errorf("counterfactual on: want 0 flushes, got %d", aOn.Stats().HeapFlushes)
	}
	if aOff.Stats().HeapFlushes == 0 {
		t.Error("counterfactual off: expected a conservative heap flush")
	}
}

func TestImmediateTaintAblation(t *testing.T) {
	// With post-branch marking (default), facts inside an indeterminate
	// branch are determinate; with immediate taint they are not.
	src := `(function(){
		var x = 0;
		if (Math.random() < 2) {
			x = 7;
			var probe = 1 + 2;
		}
	})();`
	pred := func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "+"
	}
	mod, store, _ := analyze(t, src, core.Options{})
	wantNum(t, oneFactAtLine(t, mod, store, 5, pred), mod, 3)
	mod2, store2, _ := analyze(t, src, core.Options{ImmediateTaint: true})
	wantDet(t, oneFactAtLine(t, mod2, store2, 5, pred), mod2, false)
}

func TestIndeterminateCallFlushesHeap(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		function f(){ return 1; }
		function g(){ return 2; }
		var o = {p: 5};
		var h = Math.random() < 2 ? f : g;
		h();
		var after = o.p;
	})();`, core.Options{})
	if a.Stats().FlushReasons["indet-call"] == 0 {
		t.Fatalf("expected indet-call flush, got %v", a.Stats().FlushReasons)
	}
	wantDet(t, oneFactAtLine(t, mod, store, 7, getField("p")), mod, false)
}

func TestDeterminateCallNoFlush(t *testing.T) {
	_, _, a := analyze(t, `(function(){
		function f(){ return 1; }
		var o = {p: 5};
		f();
		var after = o.p;
	})();`, core.Options{})
	if a.Stats().HeapFlushes != 0 {
		t.Errorf("unexpected flushes: %v", a.Stats().FlushReasons)
	}
}

func TestIndeterminatePropertyNameOpensRecord(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		var o = {a: 1, b: 2};
		var k = Math.random() < 2 ? "a" : "b";
		o[k] = 9;
		var ra = o.a;
		var rb = o.b;
		var rc = o.c;
	})();`, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 5, getField("a")), mod, false)
	wantDet(t, oneFactAtLine(t, mod, store, 6, getField("b")), mod, false)
	// Missing property on an open record: undefined?.
	wantDet(t, oneFactAtLine(t, mod, store, 7, getField("c")), mod, false)
}

func TestClosedRecordMissingPropertyDeterminate(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		var o = {a: 1};
		var missing = o.nope;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 3, getField("nope"))
	wantDet(t, f, mod, true)
	if f.Val.Kind != facts.VUndefined {
		t.Errorf("missing prop: %s, want undefined", f.Val)
	}
}

func TestEvalDeterminate(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var x = 40;
		var r = eval("x + 2");
	})();`, core.Options{})
	if a.Stats().HeapFlushes != 0 {
		t.Errorf("unexpected flushes: %v", a.Stats().FlushReasons)
	}
	fs := factsAtLine(t, mod, store, 3, func(in ir.Instr) bool {
		_, ok := in.(*ir.Call)
		return ok
	})
	if len(fs) != 1 {
		t.Fatalf("want 1 eval call fact, got %d", len(fs))
	}
	wantNum(t, fs[0], mod, 42)
}

func TestEvalIndeterminateFlushes(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var o = {p: 1};
		var code = Math.random() < 2 ? "1+1" : "2+2";
		var r = eval(code);
		var after = o.p;
	})();`, core.Options{})
	if a.Stats().FlushReasons["eval-indet"] == 0 {
		t.Fatalf("expected eval-indet flush, got %v", a.Stats().FlushReasons)
	}
	wantDet(t, oneFactAtLine(t, mod, store, 5, getField("p")), mod, false)
	fs := factsAtLine(t, mod, store, 4, func(in ir.Instr) bool { _, ok := in.(*ir.Call); return ok })
	if len(fs) != 1 || fs[0].Det {
		t.Errorf("eval result should be indeterminate: %s", facts.Render(mod, fs))
	}
}

func TestLoopIterationFacts(t *testing.T) {
	// The paper's loop-unrolling client needs per-iteration facts:
	// ⟦prop⟧ 24₀→15 = "width", ⟦prop⟧ 24₁→15 = "height".
	mod, store, _ := analyze(t, `(function(){
		function def(prop) {
			var name = "get" + prop;
		}
		var props = ["width", "height"];
		for (var i = 0; i < props.length; i++)
			def(props[i]);
	})();`, core.Options{})
	var vals []string
	for _, f := range store.All() {
		in := mod.InstrAt(f.Instr)
		b, ok := in.(*ir.BinOp)
		if !ok || b.Op != "+" || in.IPos().Line != 3 {
			continue
		}
		if !f.Det {
			t.Errorf("concat fact indeterminate: %s", facts.RenderFact(mod, f))
		}
		vals = append(vals, f.Val.Str)
	}
	want := map[string]bool{"getwidth": true, "getheight": true}
	if len(vals) != 2 {
		t.Fatalf("want 2 per-iteration facts, got %v", vals)
	}
	for _, v := range vals {
		if !want[strings.ToLower(v)] {
			t.Errorf("unexpected concat value %q", v)
		}
	}
}

func TestWhileIndeterminateBound(t *testing.T) {
	// Loop bound indeterminate: writes inside marked indeterminate, and the
	// final counterfactual iteration accounts for extra iterations.
	mod, store, _ := analyze(t, `(function(){
		var n = Math.random() * 3 + 1;
		var sum = 0;
		var i = 0;
		while (i < n) {
			sum = sum + 1;
			i = i + 1;
		}
		var after = sum;
	})();`, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 9, loadVar("sum")), mod, false)
}

func TestWhileDeterminateBound(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var sum = 0;
		for (var i = 0; i < 3; i++) {
			sum = sum + 1;
		}
		var after = sum;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 6, loadVar("sum"))
	wantNum(t, f, mod, 3)
	if a.Stats().HeapFlushes != 0 {
		t.Errorf("unexpected flushes: %v", a.Stats().FlushReasons)
	}
}

func TestForInDeterminate(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var o = {a: 1, b: 2};
		var keys = "";
		for (var k in o) keys = keys + k;
		var after = keys;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 5, loadVar("keys"))
	wantDet(t, f, mod, true)
	if f.Val.Str != "ab" {
		t.Errorf("keys=%s, want ab", f.Val)
	}
	if a.Stats().HeapFlushes != 0 {
		t.Errorf("unexpected flushes: %v", a.Stats().FlushReasons)
	}
}

func TestForInIndeterminateKeySet(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var o = {a: 1};
		var k2 = Math.random() < 2 ? "x" : "y";
		o[k2] = 2;
		var keys = "";
		for (var k in o) keys = keys + k;
		var after = keys;
	})();`, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 7, loadVar("keys")), mod, false)
	if a.Stats().FlushReasons["forin-indet"] == 0 {
		t.Errorf("expected forin-indet flush, got %v", a.Stats().FlushReasons)
	}
}

func TestForInKeysAfterIndetBranchWrite(t *testing.T) {
	// A property created under an indeterminate branch exists only in the
	// executions that take the branch, so the key set — and any for-in
	// derived value — must be indeterminate. Found by detfuzz (seed 1799):
	// the key facts were recorded determinate and replays that skipped the
	// branch violated them.
	mod, store, a := analyze(t, `(function(){
		var o = {a: 1};
		if (Math.random() < 2) { o.b = 2; }
		var keys = "";
		for (var k in o) keys = keys + k;
		var after = keys;
	})();`, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 6, loadVar("keys")), mod, false)
	if a.Stats().FlushReasons["forin-indet"] == 0 {
		t.Errorf("expected forin-indet flush, got %v", a.Stats().FlushReasons)
	}
}

func TestForInKeysAfterCounterfactualDelete(t *testing.T) {
	// The concretely-false branch deletes a property; executions that take
	// it lose the key, so its existence joins to indeterminate after the
	// counterfactual undo.
	mod, store, a := analyze(t, `(function(){
		var o = {a: 1, b: 2};
		if (Math.random() > 2) { delete o.b; }
		var keys = "";
		for (var k in o) keys = keys + k;
		var after = keys;
	})();`, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 6, loadVar("keys")), mod, false)
	if a.Stats().FlushReasons["forin-indet"] == 0 {
		t.Errorf("expected forin-indet flush, got %v", a.Stats().FlushReasons)
	}
}

func TestEscapeFromIndetBranchFlushes(t *testing.T) {
	// A return crossing an indeterminate branch boundary is a conservative
	// control-flow merge: everything flushes.
	mod, store, a := analyze(t, `(function(){
		var o = {p: 1};
		function f() {
			if (Math.random() < 2) return 10;
			return 20;
		}
		var r = f();
		var after = o.p;
	})();`, core.Options{})
	if a.Stats().FlushReasons["indet-branch-escape"] == 0 {
		t.Fatalf("expected escape flush, got %v", a.Stats().FlushReasons)
	}
	fs := factsAtLine(t, mod, store, 7, func(in ir.Instr) bool { _, ok := in.(*ir.Call); return ok })
	if len(fs) != 1 || fs[0].Det {
		t.Errorf("return value through indeterminate branch must be ?: %s", facts.Render(mod, fs))
	}
	wantDet(t, oneFactAtLine(t, mod, store, 8, getField("p")), mod, false)
}

func TestCounterfactualDepthLimit(t *testing.T) {
	// Nested indeterminate-false conditionals beyond the cut-off trigger
	// CNTRABORT (flush + static write-set marking).
	src := `(function(){
		var r = Math.random();
		if (r > 2) { if (r > 3) { if (r > 4) { var deep = 1; } } }
	})();`
	_, _, a := analyze(t, src, core.Options{MaxCounterfactualDepth: 2})
	if a.Stats().CFAborts == 0 {
		t.Error("expected a counterfactual abort at the depth limit")
	}
	_, _, b := analyze(t, src, core.Options{MaxCounterfactualDepth: 8})
	if b.Stats().CFAborts != 0 {
		t.Errorf("unexpected aborts with deep limit: %d", b.Stats().CFAborts)
	}
}

func TestMuJSLocalsVsEnvFlush(t *testing.T) {
	// A closure-writing indeterminate callee: the µJS-faithful mode keeps
	// the local determinate (matching the paper but unsound for full JS);
	// the default environment flush catches it.
	src := `(function(){
		var n = 1;
		function f() { n = 2; }
		function g() { n = 3; }
		var h = Math.random() < 2 ? f : g;
		h();
		var after = n;
	})();`
	mod, store, _ := analyze(t, src, core.Options{})
	wantDet(t, oneFactAtLine(t, mod, store, 7, loadVar("n")), mod, false)

	modM, storeM, _ := analyze(t, src, core.Options{MuJSLocals: true})
	fs := factsAtLine(t, modM, storeM, 7, loadVar("n"))
	if len(fs) != 1 {
		t.Fatalf("want 1 fact, got %d", len(fs))
	}
	// Under MuJSLocals the write n=2 happened concretely through f and was
	// journaled nowhere (no branch frame), so the analysis reports it
	// determinate — exactly the µJS-soundness boundary the paper notes.
	if !fs[0].Det {
		t.Skip("implementation marks it anyway (more conservative is fine)")
	}
}

func TestConsoleOutputMatchesConcrete(t *testing.T) {
	src := `
		var parts = ["a", "b", "c"];
		var s = "";
		for (var i = 0; i < parts.length; i++) s += parts[i];
		console.log(s, parts.length, 1 + 2);
		if (Math.random() > 2) { console.log("counterfactual only"); }
	`
	mod := ir.MustCompile("t.js", src)
	var cbuf bytes.Buffer
	it := interp.New(mod, interp.Options{Out: &cbuf, Seed: 3})
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}
	mod2 := ir.MustCompile("t.js", src)
	var ibuf bytes.Buffer
	a := core.New(mod2, facts.NewStore(), core.Options{Out: &ibuf, Seed: 3})
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if cbuf.String() != ibuf.String() {
		t.Errorf("output divergence:\nconcrete:  %q\ninstrumented: %q", cbuf.String(), ibuf.String())
	}
	if strings.Contains(ibuf.String(), "counterfactual only") {
		t.Error("counterfactual output leaked to console")
	}
}

func TestFlushLimitStopsAnalysis(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		var fns = [function(){}, function(){}];
		for (var i = 0; i < 100; i++) {
			var f = fns[Math.random() < 2 ? 0 : 1];
			f();
		}
	`)
	a := core.New(mod, facts.NewStore(), core.Options{MaxFlushes: 10})
	_, err := a.Run()
	if err == nil || !strings.Contains(err.Error(), "flush limit") {
		t.Fatalf("expected flush-limit stop, got %v", err)
	}
}
