package core_test

import (
	"io"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
)

// TestObsDisabledTracerZeroAlloc pins the contract that a nil tracer costs
// nothing on the hot path: every emission site guards on the tracer before
// constructing the event, so the disabled path must not allocate.
func TestObsDisabledTracerZeroAlloc(t *testing.T) {
	mod := ir.MustCompile("p.js", "var x = 1;")
	a := core.New(mod, facts.NewStore(), core.Options{Out: io.Discard})
	// First flush allocates the reasons-map entry; steady state must not.
	a.FlushHeap("warmup")
	allocs := testing.AllocsPerRun(200, func() {
		a.FlushHeap("warmup")
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracer FlushHeap allocates %v times per op, want 0", allocs)
	}
}

// TestObsCoreEvents checks the event stream of an execution that branches on
// an indeterminate condition: branch/counterfactual enter and exit events
// must pair up, and the counterfactual abort must surface as a reasoned heap
// flush.
func TestObsCoreEvents(t *testing.T) {
	src := `
var k = "a";
if (Math.random() < 0.5) { k = "b"; }
var o = { a: function() { return 1; }, b: function() { return 2; } };
var r = o[k]();
`
	col := obs.NewCollector(1024)
	mod := ir.MustCompile("p.js", src)
	a := core.New(mod, facts.NewStore(), core.Options{Out: io.Discard, Tracer: col})
	if _, err := a.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	if enter, exit := col.Count(obs.EvBranchEnter), col.Count(obs.EvBranchExit); enter != exit {
		t.Errorf("branch enter/exit unbalanced: %d vs %d", enter, exit)
	}
	cfEnter, cfExit := col.Count(obs.EvCFEnter), col.Count(obs.EvCFExit)
	if cfEnter != cfExit {
		t.Errorf("counterfactual enter/exit unbalanced: %d vs %d", cfEnter, cfExit)
	}
	if cfEnter == 0 {
		t.Error("expected at least one counterfactual execution for an indeterminate branch")
	}
	flushes := 0
	for _, e := range col.Events() {
		if e.Kind != obs.EvHeapFlush {
			continue
		}
		flushes++
		if e.Phase == "" {
			t.Errorf("heap-flush event without a reason: %+v", e)
		}
	}
	if flushes == 0 {
		t.Error("expected at least one heap-flush event")
	}
	if col.Count(obs.EvFactRecord) == 0 {
		t.Error("expected fact-record events")
	}
	// Event counts mirror the aggregate stats.
	st := a.Stats()
	if flushes != st.HeapFlushes {
		t.Errorf("flush events %d != Stats.HeapFlushes %d", flushes, st.HeapFlushes)
	}
	if cfEnter != st.Counterfacts {
		t.Errorf("counterfactual events %d != Stats.Counterfacts %d", cfEnter, st.Counterfacts)
	}
}

// TestObsStatsMergeNilSafe covers the satellite requirement that merging
// stats never panics on nil maps, whichever side lacks one.
func TestObsStatsMergeNilSafe(t *testing.T) {
	var a core.Stats // zero value: nil FlushReasons
	b := core.NewStats()
	b.HeapFlushes = 2
	b.FlushReasons["call-indet"] = 2
	a.Merge(b)
	if a.HeapFlushes != 2 || a.FlushReasons["call-indet"] != 2 {
		t.Fatalf("merge into zero-value stats: %+v", a)
	}

	c := core.NewStats()
	c.Steps = 7
	c.Merge(core.Stats{Steps: 3}) // nil-map right operand
	if c.Steps != 10 {
		t.Fatalf("merge with nil-map operand: %+v", c)
	}
}
