package core_test

import (
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/dom"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// TestCounterfactualUndoInvariant: wrapping arbitrary generated code in an
// indeterminate-false branch must leave the program's observable state
// exactly as if the branch body did not exist — counterfactual execution
// runs it and undoes every effect. We compare the final global state of
//
//	<prefix>; if (Math.random() > 2) { <body> } <suffix-observations>
//
// under the instrumented interpreter against the concrete interpreter
// running the same program (which skips the branch outright).
func TestCounterfactualUndoInvariant(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		prefix := workload.RandomProgram(workload.GenConfig{Seed: 3000 + seed, MaxStmts: 10})
		body := workload.RandomProgram(workload.GenConfig{Seed: 4000 + seed, MaxStmts: 8, NamePrefix: "cf"})
		// The body fragment's identifiers carry a distinct prefix so its
		// hoisted function declarations cannot collide with the prefix
		// program's.
		src := prefix + "\nif (Math.random() > 2) {\n" + body + "\n}\n"

		cmod, err := ir.Compile("cf.js", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		it := interp.New(cmod, interp.Options{Seed: 9, Inputs: inputs()})
		if _, err := it.Run(); err != nil {
			t.Fatalf("seed %d concrete: %v\n%s", seed, err, src)
		}

		// Alternate engines across seeds: undo exactness must hold — and
		// hold identically — whether the counterfactual body executed on
		// the tree walker or through the bytecode dispatch loop.
		eng := vm.EngineBytecode
		if seed%2 == 1 {
			eng = vm.EngineTree
		}
		imod, err := ir.Compile("cf.js", src)
		if err != nil {
			t.Fatal(err)
		}
		a := core.New(imod, facts.NewStore(), core.Options{Seed: 9, Inputs: inputs(), Engine: eng})
		if _, err := a.Run(); err != nil {
			t.Fatalf("seed %d instrumented: %v\n%s", seed, err, src)
		}

		// Every concrete global must exist with the same string rendering.
		for _, k := range it.Global.OwnKeys() {
			if strings.HasPrefix(k, "__") || isRuntimeGlobal(k) {
				continue
			}
			cv, _ := it.Global.Get(k)
			iv, found, _ := a.LookupGlobal(k)
			if !found {
				t.Errorf("seed %d: global %s lost after counterfactual", seed, k)
				continue
			}
			want := interp.ToString(cv)
			got := a.DisplayValue(iv)
			if want != got {
				t.Errorf("seed %d: global %s: concrete %q vs instrumented %q\nprogram:\n%s",
					seed, k, want, got, src)
			}
		}
	}
}

func inputs() map[string]interp.Value {
	return map[string]interp.Value{
		"a": interp.NumberVal(3),
		"b": interp.NumberVal(-2),
		"c": interp.StringVal("in"),
	}
}

func isRuntimeGlobal(k string) bool {
	switch k {
	case "globalThis", "undefined", "NaN", "Infinity", "console", "Math",
		"Object", "Function", "Array", "String", "Number", "Boolean",
		"Error", "TypeError", "ReferenceError", "RangeError", "SyntaxError",
		"parseInt", "parseFloat", "isNaN", "isFinite", "eval", "Date",
		"alert", "print":
		return true
	}
	return false
}

// TestWorkloadOutputEquivalence: the instrumented interpreter must be
// semantically transparent on the real workloads — console output under
// identical seeds matches the concrete interpreter, eval corpus included.
func TestWorkloadOutputEquivalence(t *testing.T) {
	var programs []struct{ name, src string }
	for _, b := range workload.EvalCorpus() {
		if b.Runnable {
			programs = append(programs, struct{ name, src string }{b.Name, b.Source})
		}
	}
	for _, p := range programs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			concrete := runConcreteOut(t, p.src)
			instrumented := runInstrumentedOut(t, p.src)
			if concrete != instrumented {
				t.Errorf("output divergence:\nconcrete:\n%s\ninstrumented:\n%s", concrete, instrumented)
			}
		})
	}
}

func runConcreteOut(t *testing.T, src string) string {
	t.Helper()
	mod, err := ir.Compile("w.js", src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	it := interp.New(mod, interp.Options{Out: &buf, Seed: 11})
	dom.Install(it, dom.NewDocument(dom.Options{}))
	if _, err := it.Run(); err != nil {
		t.Fatalf("concrete: %v", err)
	}
	return buf.String()
}

func runInstrumentedOut(t *testing.T, src string) string {
	t.Helper()
	mod, err := ir.Compile("w.js", src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	a := core.New(mod, facts.NewStore(), core.Options{Out: &buf, Seed: 11})
	dom.InstallCore(a, dom.NewDocument(dom.Options{}), false)
	if _, err := a.Run(); err != nil {
		t.Fatalf("instrumented: %v", err)
	}
	return buf.String()
}
