package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"determinacy/internal/interp"
)

// cfPureNatives lists natives known side-effect free, used only when
// Options.AbortCFOnNativeWrite mimics the paper's implementation (which had
// to abort counterfactuals at any native that might write).
var cfPureNatives = map[string]bool{
	"abs": true, "floor": true, "ceil": true, "sqrt": true, "sin": true,
	"cos": true, "log": true, "exp": true, "round": true, "pow": true,
	"min": true, "max": true, "random": true,
	"charAt": true, "charCodeAt": true, "indexOf": true, "lastIndexOf": true,
	"toUpperCase": true, "toLowerCase": true, "trim": true, "substring": true,
	"substr": true, "slice": true, "replace": true, "concat": true,
	"toString": true, "toFixed": true, "fromCharCode": true,
	"parseInt": true, "parseFloat": true, "isNaN": true, "isFinite": true,
	"hasOwnProperty": true, "isArray": true, "now": true, "__input": true,
}

// setupRuntime builds the instrumented global object and standard library.
// Every native is its own determinacy model (§4): most are pure over their
// inputs, a few (Math.random, Date.now, __input) are indeterminate sources,
// and console-style natives have external effects.
func (a *Analysis) setupRuntime() {
	a.ObjectProto = &DObj{Class: "Object", ProtoDet: true, Data: protoMarker}
	protoOf := func() *DObj {
		return &DObj{Class: "Object", Proto: a.ObjectProto, ProtoDet: true, Data: protoMarker}
	}
	a.FunctionProto = protoOf()
	a.ArrayProto = protoOf()
	a.StringProto = protoOf()
	a.NumberProto = protoOf()
	a.BooleanProto = protoOf()
	a.ErrorProto = protoOf()

	g := a.NewObj("Object", a.ObjectProto)
	a.Global = g
	a.setOwn(g, "globalThis", ObjV(g, true))
	a.setOwn(g, "undefined", UndefD)
	a.setOwn(g, "NaN", NumberV(math.NaN(), true))
	a.setOwn(g, "Infinity", NumberV(math.Inf(1), true))

	a.setupConsoleD(g)
	a.setupMathD(g)
	a.setupObjectD(g)
	a.setupFunctionD(g)
	a.setupArrayD(g)
	a.setupStringD(g)
	a.setupNumberBooleanD(g)
	a.setupErrorsD(g)
	a.setupTopLevelD(g)
}

func (a *Analysis) defN(o *DObj, name string, external bool, fn func(*Analysis, Value, []Value) (Value, error)) {
	nat := a.NewNativeObj(name, fn)
	nat.Native.External = external
	a.setOwn(o, name, ObjV(nat, true))
}

func argAt(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return UndefD
}

// foldDet is the default determinacy model for pure natives: the result is
// determinate iff the receiver and all arguments are.
func foldDet(this Value, args []Value) bool {
	det := this.Det
	for _, a := range args {
		det = det && a.Det
	}
	return det
}

func (a *Analysis) throwN(name, msg string, det bool) error {
	return &Thrown{Val: ObjV(a.NewErrorObj(name, msg, det), det)}
}

// ---------------------------------------------------------------------------

func (a *Analysis) setupConsoleD(g *DObj) {
	console := a.NewPlainObj()
	log := func(an *Analysis, this Value, args []Value) (Value, error) {
		if !an.InCounterfactual() {
			parts := make([]string, len(args))
			for i, v := range args {
				parts[i] = an.ToDisplay(v)
			}
			fmt.Fprintln(an.opts.Out, strings.Join(parts, " "))
		}
		return UndefD, nil
	}
	// Console output is an external effect, but suppression during
	// counterfactual execution makes it safe to model without aborting.
	a.defN(console, "log", false, log)
	a.defN(console, "warn", false, log)
	a.defN(console, "error", false, log)
	a.defN(console, "info", false, log)
	a.setOwn(g, "console", ObjV(console, true))
	a.defN(g, "alert", false, log)
	a.defN(g, "print", false, log)
}

func (a *Analysis) setupMathD(g *DObj) {
	m := a.NewPlainObj()
	num1 := func(f func(float64) float64) func(*Analysis, Value, []Value) (Value, error) {
		return func(an *Analysis, this Value, args []Value) (Value, error) {
			x := argAt(args, 0)
			return NumberV(f(an.toNumber(x)), x.Det), nil
		}
	}
	a.defN(m, "abs", false, num1(math.Abs))
	a.defN(m, "floor", false, num1(math.Floor))
	a.defN(m, "ceil", false, num1(math.Ceil))
	a.defN(m, "sqrt", false, num1(math.Sqrt))
	a.defN(m, "sin", false, num1(math.Sin))
	a.defN(m, "cos", false, num1(math.Cos))
	a.defN(m, "log", false, num1(math.Log))
	a.defN(m, "exp", false, num1(math.Exp))
	a.defN(m, "round", false, num1(func(x float64) float64 { return math.Floor(x + 0.5) }))
	a.defN(m, "pow", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		x, y := argAt(args, 0), argAt(args, 1)
		return NumberV(math.Pow(an.toNumber(x), an.toNumber(y)), x.Det && y.Det), nil
	})
	minmax := func(init float64, pick func(a, b float64) float64) func(*Analysis, Value, []Value) (Value, error) {
		return func(an *Analysis, this Value, args []Value) (Value, error) {
			r, det := init, true
			for _, v := range args {
				det = det && v.Det
				n := an.toNumber(v)
				if math.IsNaN(n) {
					return NumberV(math.NaN(), det), nil
				}
				r = pick(r, n)
			}
			return NumberV(r, det), nil
		}
	}
	a.defN(m, "min", false, minmax(math.Inf(1), math.Min))
	a.defN(m, "max", false, minmax(math.Inf(-1), math.Max))
	// Math.random is the canonical indeterminate source (§2.1).
	a.defN(m, "random", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		return NumberV(an.Random(), false), nil
	})
	a.setOwn(m, "PI", NumberV(math.Pi, true))
	a.setOwn(m, "E", NumberV(math.E, true))
	a.setOwn(g, "Math", ObjV(m, true))
}

func (a *Analysis) setupObjectD(g *DObj) {
	ctor := a.NewNativeObj("Object", func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		if v.Kind == Object {
			return v, nil
		}
		return ObjV(an.NewPlainObj(), true), nil
	})
	a.setOwn(ctor, "prototype", ObjV(a.ObjectProto, true))
	a.defN(ctor, "keys", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		if v.Kind != Object {
			return Value{}, an.throwN("TypeError", "Object.keys requires an object", v.Det)
		}
		det := v.Det && !an.IsOpen(v.O)
		var elems []Value
		for _, k := range v.O.OwnKeys() {
			p := v.O.props[k]
			if p.phantom {
				det = false
				continue
			}
			if p.maybeAbsent {
				det = false
			}
			if v.O.Class == "Array" && k == "length" {
				continue
			}
			elems = append(elems, StringV(k, det))
		}
		arr := an.NewArrayObj(elems)
		return ObjV(arr, det), nil
	})
	a.defN(ctor, "getPrototypeOf", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		if v.Kind != Object || v.O.Proto == nil {
			return Value{Kind: Null, Det: v.Det}, nil
		}
		return ObjV(v.O.Proto, v.Det && v.O.ProtoDet), nil
	})
	a.defN(ctor, "create", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		var proto *DObj
		if v.Kind == Object {
			proto = v.O
		}
		o := an.NewObj("Object", proto)
		o.ProtoDet = v.Det
		return ObjV(o, true), nil
	})
	a.setOwn(g, "Object", ObjV(ctor, true))

	a.defN(a.ObjectProto, "hasOwnProperty", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return BoolV(false, this.Det), nil
		}
		name, nameDet := an.toString(argAt(args, 0))
		present, presDet := an.hasOwnConcrete(this.O, name)
		return BoolV(present, this.Det && nameDet && presDet), nil
	})
	a.defN(a.ObjectProto, "toString", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		s, det := an.toString(this)
		return StringV(s, det && this.Det), nil
	})
}

func (a *Analysis) setupFunctionD(g *DObj) {
	ctor := a.NewNativeObj("Function", func(an *Analysis, this Value, args []Value) (Value, error) {
		return Value{}, an.throwN("TypeError", "the Function constructor is not supported; use eval", true)
	})
	a.setOwn(ctor, "prototype", ObjV(a.FunctionProto, true))
	a.setOwn(g, "Function", ObjV(ctor, true))

	a.defN(a.FunctionProto, "call", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		rest := args
		if len(rest) > 0 {
			rest = rest[1:]
		}
		return an.CallFunction(this, argAt(args, 0), rest)
	})
	a.defN(a.FunctionProto, "apply", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		var rest []Value
		arrDet := true
		if v := argAt(args, 1); v.Kind == Object {
			arrDet = v.Det && !an.IsOpen(v.O)
			n := an.arrayLength(v.O)
			for k := 0; k < n; k++ {
				el, _ := an.getOwn(v.O, strconv.Itoa(k))
				if !arrDet {
					el = el.Indet()
				}
				rest = append(rest, el)
			}
		}
		return an.CallFunction(this, argAt(args, 0), rest)
	})
}

func (a *Analysis) setupArrayD(g *DObj) {
	ctor := a.NewNativeObj("Array", func(an *Analysis, this Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].Kind == Number {
			arr := an.NewArrayObj(nil)
			an.setOwn(arr, "length", args[0])
			return ObjV(arr, true), nil
		}
		return ObjV(an.NewArrayObj(args), true), nil
	})
	a.setOwn(ctor, "prototype", ObjV(a.ArrayProto, true))
	a.defN(ctor, "isArray", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		return BoolV(v.Kind == Object && v.O.Class == "Array", v.Det), nil
	})
	a.setOwn(g, "Array", ObjV(ctor, true))

	p := a.ArrayProto
	lengthDet := func(an *Analysis, o *DObj) bool {
		lp, ok := o.props["length"]
		return ok && an.propDet(lp)
	}
	a.defN(p, "push", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefD, nil
		}
		det := this.Det && lengthDet(an, this.O)
		n := an.arrayLength(this.O)
		for _, v := range args {
			an.setOwn(this.O, strconv.Itoa(n), v.WithDet(det))
			n++
		}
		an.setOwn(this.O, "length", NumberV(float64(n), det))
		return NumberV(float64(n), det), nil
	})
	a.defN(p, "pop", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefD, nil
		}
		det := this.Det && lengthDet(an, this.O)
		n := an.arrayLength(this.O)
		if n == 0 {
			return Value{Kind: Undefined, Det: det}, nil
		}
		v, _ := an.getOwn(this.O, strconv.Itoa(n-1))
		an.deleteProp(this.O, strconv.Itoa(n-1))
		an.setOwn(this.O, "length", NumberV(float64(n-1), det))
		return v.WithDet(det), nil
	})
	a.defN(p, "join", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		sep, sepDet := ",", true
		if v := argAt(args, 0); v.Kind != Undefined {
			sep, sepDet = an.toString(v)
		}
		if this.Kind != Object {
			return StringV("", this.Det), nil
		}
		det := this.Det && sepDet && lengthDet(an, this.O) && !an.IsOpen(this.O)
		n := an.arrayLength(this.O)
		parts := make([]string, 0, n)
		for k := 0; k < n; k++ {
			el, ok := an.getOwn(this.O, strconv.Itoa(k))
			if ok {
				det = det && el.Det
			}
			if !ok || el.Kind == Undefined || el.Kind == Null {
				parts = append(parts, "")
				continue
			}
			s, sdet := an.toString(el)
			det = det && sdet
			parts = append(parts, s)
		}
		return StringV(strings.Join(parts, sep), det), nil
	})
	a.defN(p, "indexOf", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return NumberV(-1, this.Det), nil
		}
		det := this.Det && lengthDet(an, this.O) && !an.IsOpen(this.O) && argAt(args, 0).Det
		n := an.arrayLength(this.O)
		target := argAt(args, 0)
		for k := 0; k < n; k++ {
			el, ok := an.getOwn(this.O, strconv.Itoa(k))
			if ok {
				det = det && el.Det
			}
			if strictEquals(el, target) {
				return NumberV(float64(k), det), nil
			}
		}
		return NumberV(-1, det), nil
	})
	a.defN(p, "slice", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return ObjV(an.NewArrayObj(nil), true), nil
		}
		det := this.Det && lengthDet(an, this.O) && foldDet(UndefD, args)
		n := an.arrayLength(this.O)
		start, end := 0, n
		if v := argAt(args, 0); v.Kind != Undefined {
			start = clampIdx(int(an.toNumber(v)), n)
		}
		if v := argAt(args, 1); v.Kind != Undefined {
			end = clampIdx(int(an.toNumber(v)), n)
		}
		if end < start {
			end = start
		}
		var elems []Value
		for k := start; k < end; k++ {
			el, _ := an.getOwn(this.O, strconv.Itoa(k))
			elems = append(elems, el.WithDet(det))
		}
		return ObjV(an.NewArrayObj(elems), det), nil
	})
	a.defN(p, "concat", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		var elems []Value
		det := true
		appendVal := func(v Value) {
			det = det && v.Det
			if v.Kind == Object && v.O.Class == "Array" {
				det = det && !an.IsOpen(v.O) && lengthDet(an, v.O)
				n := an.arrayLength(v.O)
				for k := 0; k < n; k++ {
					el, _ := an.getOwn(v.O, strconv.Itoa(k))
					elems = append(elems, el)
				}
			} else {
				elems = append(elems, v)
			}
		}
		appendVal(this)
		for _, v := range args {
			appendVal(v)
		}
		return ObjV(an.NewArrayObj(elems), det), nil
	})
	a.defN(p, "forEach", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefD, nil
		}
		cb := argAt(args, 0)
		n := an.arrayLength(this.O)
		for k := 0; k < n; k++ {
			el, _ := an.getOwn(this.O, strconv.Itoa(k))
			if _, err := an.CallFunction(cb, UndefD, []Value{el, NumberV(float64(k), lengthDet(an, this.O)), this}); err != nil {
				return UndefD, err
			}
		}
		return UndefD, nil
	})
	a.defN(p, "map", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return ObjV(an.NewArrayObj(nil), true), nil
		}
		cb := argAt(args, 0)
		det := this.Det && lengthDet(an, this.O) && cb.Det
		n := an.arrayLength(this.O)
		elems := make([]Value, 0, n)
		for k := 0; k < n; k++ {
			el, _ := an.getOwn(this.O, strconv.Itoa(k))
			v, err := an.CallFunction(cb, UndefD, []Value{el, NumberV(float64(k), det), this})
			if err != nil {
				return UndefD, err
			}
			elems = append(elems, v)
		}
		return ObjV(an.NewArrayObj(elems), det), nil
	})
	a.defN(p, "filter", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return ObjV(an.NewArrayObj(nil), true), nil
		}
		cb := argAt(args, 0)
		det := this.Det && lengthDet(an, this.O) && cb.Det
		n := an.arrayLength(this.O)
		var elems []Value
		for k := 0; k < n; k++ {
			el, _ := an.getOwn(this.O, strconv.Itoa(k))
			v, err := an.CallFunction(cb, UndefD, []Value{el, NumberV(float64(k), det), this})
			if err != nil {
				return UndefD, err
			}
			det = det && v.Det
			if an.toBool(v) {
				elems = append(elems, el)
			}
		}
		return ObjV(an.NewArrayObj(elems), det), nil
	})
	a.defN(p, "shift", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		if this.Kind != Object {
			return UndefD, nil
		}
		det := this.Det && lengthDet(an, this.O)
		n := an.arrayLength(this.O)
		if n == 0 {
			return Value{Kind: Undefined, Det: det}, nil
		}
		first, _ := an.getOwn(this.O, "0")
		for k := 1; k < n; k++ {
			v, ok := an.getOwn(this.O, strconv.Itoa(k))
			if ok {
				an.setOwn(this.O, strconv.Itoa(k-1), v)
			} else {
				an.deleteProp(this.O, strconv.Itoa(k-1))
			}
		}
		an.deleteProp(this.O, strconv.Itoa(n-1))
		an.setOwn(this.O, "length", NumberV(float64(n-1), det))
		return first.WithDet(det), nil
	})
}

func clampIdx(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func (a *Analysis) setupStringD(g *DObj) {
	ctor := a.NewNativeObj("String", func(an *Analysis, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return StringV("", true), nil
		}
		s, det := an.toString(args[0])
		return StringV(s, det && args[0].Det), nil
	})
	a.setOwn(ctor, "prototype", ObjV(a.StringProto, true))
	a.defN(ctor, "fromCharCode", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		var b strings.Builder
		det := true
		for _, v := range args {
			det = det && v.Det
			b.WriteRune(rune(int(an.toNumber(v))))
		}
		return StringV(b.String(), det), nil
	})
	a.setOwn(g, "String", ObjV(ctor, true))

	p := a.StringProto
	// pure string natives: result determinate iff receiver and args are.
	pure := func(f func(s string, an *Analysis, args []Value) Value) func(*Analysis, Value, []Value) (Value, error) {
		return func(an *Analysis, this Value, args []Value) (Value, error) {
			s, sdet := an.toString(this)
			v := f(s, an, args)
			v.Det = sdet && this.Det && foldDet(UndefD, args)
			return v, nil
		}
	}
	a.defN(p, "charAt", false, pure(func(s string, an *Analysis, args []Value) Value {
		k := int(an.toNumber(argAt(args, 0)))
		if k < 0 || k >= len(s) {
			return StringV("", true)
		}
		return StringV(string(s[k]), true)
	}))
	a.defN(p, "charCodeAt", false, pure(func(s string, an *Analysis, args []Value) Value {
		k := int(an.toNumber(argAt(args, 0)))
		if k < 0 || k >= len(s) {
			return NumberV(math.NaN(), true)
		}
		return NumberV(float64(s[k]), true)
	}))
	a.defN(p, "indexOf", false, pure(func(s string, an *Analysis, args []Value) Value {
		sub, _ := an.toString(argAt(args, 0))
		return NumberV(float64(strings.Index(s, sub)), true)
	}))
	a.defN(p, "lastIndexOf", false, pure(func(s string, an *Analysis, args []Value) Value {
		sub, _ := an.toString(argAt(args, 0))
		return NumberV(float64(strings.LastIndex(s, sub)), true)
	}))
	a.defN(p, "toUpperCase", false, pure(func(s string, an *Analysis, args []Value) Value {
		return StringV(strings.ToUpper(s), true)
	}))
	a.defN(p, "toLowerCase", false, pure(func(s string, an *Analysis, args []Value) Value {
		return StringV(strings.ToLower(s), true)
	}))
	a.defN(p, "trim", false, pure(func(s string, an *Analysis, args []Value) Value {
		return StringV(strings.TrimSpace(s), true)
	}))
	a.defN(p, "substring", false, pure(func(s string, an *Analysis, args []Value) Value {
		x := clampIdx(int(an.toNumber(argAt(args, 0))), len(s))
		y := len(s)
		if v := argAt(args, 1); v.Kind != Undefined {
			y = clampIdx(int(an.toNumber(v)), len(s))
		}
		if x > y {
			x, y = y, x
		}
		return StringV(s[x:y], true)
	}))
	a.defN(p, "substr", false, pure(func(s string, an *Analysis, args []Value) Value {
		start := int(an.toNumber(argAt(args, 0)))
		if start < 0 {
			start += len(s)
			if start < 0 {
				start = 0
			}
		}
		if start > len(s) {
			return StringV("", true)
		}
		n := len(s) - start
		if v := argAt(args, 1); v.Kind != Undefined {
			n = int(an.toNumber(v))
		}
		if n < 0 {
			n = 0
		}
		if start+n > len(s) {
			n = len(s) - start
		}
		return StringV(s[start:start+n], true)
	}))
	a.defN(p, "slice", false, pure(func(s string, an *Analysis, args []Value) Value {
		x := 0
		if v := argAt(args, 0); v.Kind != Undefined {
			x = clampIdx(int(an.toNumber(v)), len(s))
		}
		y := len(s)
		if v := argAt(args, 1); v.Kind != Undefined {
			y = clampIdx(int(an.toNumber(v)), len(s))
		}
		if y < x {
			y = x
		}
		return StringV(s[x:y], true)
	}))
	a.defN(p, "split", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		s, sdet := an.toString(this)
		det := sdet && this.Det && foldDet(UndefD, args)
		sepv := argAt(args, 0)
		if sepv.Kind == Undefined {
			return ObjV(an.NewArrayObj([]Value{StringV(s, det)}), det), nil
		}
		sep, _ := an.toString(sepv)
		var parts []string
		if sep == "" {
			for _, c := range s {
				parts = append(parts, string(c))
			}
		} else {
			parts = strings.Split(s, sep)
		}
		elems := make([]Value, len(parts))
		for k, part := range parts {
			elems[k] = StringV(part, det)
		}
		return ObjV(an.NewArrayObj(elems), det), nil
	})
	a.defN(p, "replace", false, pure(func(s string, an *Analysis, args []Value) Value {
		pat, _ := an.toString(argAt(args, 0))
		rep, _ := an.toString(argAt(args, 1))
		return StringV(strings.Replace(s, pat, rep, 1), true)
	}))
	a.defN(p, "concat", false, pure(func(s string, an *Analysis, args []Value) Value {
		var b strings.Builder
		b.WriteString(s)
		for _, v := range args {
			part, _ := an.toString(v)
			b.WriteString(part)
		}
		return StringV(b.String(), true)
	}))
	a.defN(p, "toString", false, pure(func(s string, an *Analysis, args []Value) Value {
		return StringV(s, true)
	}))
}

func (a *Analysis) setupNumberBooleanD(g *DObj) {
	numCtor := a.NewNativeObj("Number", func(an *Analysis, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return NumberV(0, true), nil
		}
		return NumberV(an.toNumber(args[0]), args[0].Det), nil
	})
	a.setOwn(numCtor, "prototype", ObjV(a.NumberProto, true))
	a.setOwn(numCtor, "MAX_VALUE", NumberV(math.MaxFloat64, true))
	a.setOwn(numCtor, "MIN_VALUE", NumberV(5e-324, true))
	a.setOwn(g, "Number", ObjV(numCtor, true))

	a.defN(a.NumberProto, "toString", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		det := this.Det && foldDet(UndefD, args)
		n := an.toNumber(this)
		if v := argAt(args, 0); v.Kind != Undefined {
			radix := int(an.toNumber(v))
			if radix >= 2 && radix <= 36 && n == math.Trunc(n) {
				return StringV(strconv.FormatInt(int64(n), radix), det), nil
			}
		}
		return StringV(interp.ToString(interp.NumberVal(n)), det), nil
	})
	a.defN(a.NumberProto, "toFixed", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		det := this.Det && foldDet(UndefD, args)
		return StringV(strconv.FormatFloat(an.toNumber(this), 'f', int(an.toNumber(argAt(args, 0))), 64), det), nil
	})

	boolCtor := a.NewNativeObj("Boolean", func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		return BoolV(an.toBool(v), v.Det), nil
	})
	a.setOwn(boolCtor, "prototype", ObjV(a.BooleanProto, true))
	a.setOwn(g, "Boolean", ObjV(boolCtor, true))
}

func (a *Analysis) setupErrorsD(g *DObj) {
	a.setOwn(a.ErrorProto, "name", StringV("Error", true))
	a.setOwn(a.ErrorProto, "message", StringV("", true))
	a.defN(a.ErrorProto, "toString", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		s, det := an.toString(this)
		return StringV(s, det), nil
	})
	mk := func(name string) *DObj {
		ctor := a.NewNativeObj(name, func(an *Analysis, this Value, args []Value) (Value, error) {
			v := argAt(args, 0)
			msg, msgDet := "", true
			if v.Kind != Undefined {
				msg, msgDet = an.toString(v)
			}
			e := an.NewErrorObj(name, msg, msgDet && v.Det || v.Kind == Undefined)
			return ObjV(e, true), nil
		})
		a.setOwn(ctor, "prototype", ObjV(a.ErrorProto, true))
		return ctor
	}
	for _, name := range []string{"Error", "TypeError", "ReferenceError", "RangeError", "SyntaxError"} {
		a.setOwn(g, name, ObjV(mk(name), true))
	}
}

func (a *Analysis) setupTopLevelD(g *DObj) {
	a.defN(g, "parseInt", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		det := foldDet(UndefD, args)
		s, sdet := an.toString(argAt(args, 0))
		det = det && sdet
		radix := 10
		if v := argAt(args, 1); v.Kind != Undefined {
			radix = int(an.toNumber(v))
			if radix == 0 {
				radix = 10
			}
		}
		return NumberV(parseIntKernel(s, radix), det), nil
	})
	a.defN(g, "parseFloat", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		det := foldDet(UndefD, args)
		s, sdet := an.toString(argAt(args, 0))
		return NumberV(parseFloatKernel(s), det && sdet), nil
	})
	a.defN(g, "isNaN", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		return BoolV(math.IsNaN(an.toNumber(v)), v.Det), nil
	})
	a.defN(g, "isFinite", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		v := argAt(args, 0)
		n := an.toNumber(v)
		return BoolV(!math.IsNaN(n) && !math.IsInf(n, 0), v.Det), nil
	})

	// Indirect eval evaluates in the global scope; direct eval is handled at
	// call sites by execEval.
	evalObj := a.NewNativeObj("eval", func(an *Analysis, this Value, args []Value) (Value, error) {
		argv := argAt(args, 0)
		if argv.Kind != String {
			return argv, nil
		}
		fn, lout := an.lowerEvalFor(an.Mod.Top(), argv.S)
		if lout.kind != oNormal {
			return Value{}, &Thrown{Val: lout.val}
		}
		var bf *branchFrame
		if !argv.Det {
			bf = an.pushBranch(false)
		}
		topEnv := an.newEnv(nil, an.Mod.Top())
		env := an.newEnv(topEnv, fn)
		nf := &DFrame{Fn: fn, Env: env, Regs: make([]Value, fn.NumRegs), CallSite: -1}
		an.initSeq(nf)
		if len(an.frames) > 0 {
			parent := an.frames[len(an.frames)-1]
			nf.Ctx = parent.Ctx
			nf.ctxUnstable = parent.ctxUnstable
		}
		an.frames = append(an.frames, nf)
		out := an.execBlock(nf, fn.Body)
		an.frames = an.frames[:len(an.frames)-1]
		if bf != nil {
			an.popBranch(bf)
			an.markIndeterminate(bf)
			an.releaseBranch(bf)
			an.flushAll("eval-indet")
		}
		switch out.kind {
		case oReturn, oNormal:
			return out.val.WithDet(argv.Det), nil
		case oThrow:
			return Value{}, &Thrown{Val: out.val.WithDet(argv.Det)}
		case oCFAbort:
			return Value{}, errCFAbort
		default:
			return Value{}, out.err
		}
	})
	evalObj.Native.IsEval = true
	a.setOwn(g, "eval", ObjV(evalObj, true))

	// Date.now is an indeterminate input source.
	date := a.NewNativeObj("Date", func(an *Analysis, this Value, args []Value) (Value, error) {
		o := an.NewPlainObj()
		an.setOwn(o, "__time", NumberV(an.opts.Now, false))
		return ObjV(o, true), nil
	})
	a.defN(date, "now", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		return NumberV(an.opts.Now, false), nil
	})
	a.setOwn(g, "Date", ObjV(date, true))

	// __observe(label, value) is a no-op marker for generated test programs.
	a.defN(g, "__observe", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		return UndefD, nil
	})

	// __input(name) reads a configured program input: always indeterminate.
	a.defN(g, "__input", false, func(an *Analysis, this Value, args []Value) (Value, error) {
		name, _ := an.toString(argAt(args, 0))
		if iv, ok := an.opts.Inputs[name]; ok {
			return fromConcrete(an, iv), nil
		}
		return Value{Kind: Undefined, Det: false}, nil
	})
}

// fromConcrete imports a concrete input value as an indeterminate
// instrumented value (program inputs are indeterminate by definition, §2.1).
func fromConcrete(a *Analysis, v interp.Value) Value {
	switch v.Kind {
	case interp.Undefined:
		return Value{Kind: Undefined, Det: false}
	case interp.Null:
		return Value{Kind: Null, Det: false}
	case interp.Bool:
		return BoolV(v.B, false)
	case interp.Number:
		return NumberV(v.N, false)
	case interp.String:
		return StringV(v.S, false)
	default:
		// Structured inputs are imported as fresh indeterminate objects.
		o := a.NewPlainObj()
		for _, k := range v.O.OwnKeys() {
			pv, _ := v.O.Get(k)
			a.setOwn(o, k, fromConcrete(a, pv))
		}
		o.forcedOpen = true
		return ObjV(o, false)
	}
}

func parseIntKernel(s string, radix int) float64 {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	if radix == 16 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		s = s[2:]
	}
	end := 0
	for end < len(s) && digitValue(s[end]) < radix {
		end++
	}
	if end == 0 {
		return math.NaN()
	}
	n, err := strconv.ParseInt(s[:end], radix, 64)
	if err != nil {
		return math.NaN()
	}
	if neg {
		n = -n
	}
	return float64(n)
}

func parseFloatKernel(s string) float64 {
	s = strings.TrimSpace(s)
	end := len(s)
	for end > 0 {
		if _, err := strconv.ParseFloat(s[:end], 64); err == nil {
			break
		}
		end--
	}
	if end == 0 {
		return math.NaN()
	}
	n, _ := strconv.ParseFloat(s[:end], 64)
	return n
}

func digitValue(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'z':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'Z':
		return int(b-'A') + 10
	}
	return 99
}
