package core

import (
	"determinacy/internal/ir"
	"determinacy/internal/vm"
)

// This file is the instrumented engine's bytecode dispatch loop. It executes
// the same instrumented semantics as the tree walker in exec.go — every
// handler either replicates its execInstr case operation-for-operation
// (including step accounting, journaling and fact recording) or delegates to
// it — so the two engines produce byte-identical facts, statistics and
// output. What changes is dispatch cost: operands arrive pre-decoded, the
// dominant instruction pairs run fused, and property-access sites carry
// inline caches keyed by hidden shapes (see internal/vm/DESIGN.md).

// execBlockVM dispatches one compiled block. The per-instruction prologue is
// the same as execBlock's; fused superinstructions run it once per
// constituent via stepGate, keeping Stats.Steps and interrupt polling
// positions identical to tree execution.
func (a *Analysis) execBlockVM(f *DFrame, code *vm.Code) outcome {
	ins := code.Ins
	for i := range ins {
		p := &ins[i]
		a.stats.Steps++
		if a.stats.Steps > a.opts.MaxSteps {
			return failed(ErrBudget)
		}
		if a.stats.Steps&(interruptEvery-1) == 0 {
			a.checkpoint()
		}
		if a.stopped != nil {
			return failed(a.stopped)
		}
		a.curIn = p.Src

		switch p.Op {
		case vm.OpConst:
			a.define(f, p.Src, ir.Reg(p.A), litValue(p.Src.(*ir.Const).Val))
		case vm.OpMove:
			a.define(f, p.Src, ir.Reg(p.A), f.Regs[p.B])
		case vm.OpLoadVar:
			a.define(f, p.Src, ir.Reg(p.A), a.loadSlot(f.Env, int(p.B), int(p.C)))
		case vm.OpStoreVar:
			a.storeSlot(f.Env, int(p.B), int(p.C), f.Regs[p.A])
		case vm.OpLoadGlobal:
			v, found, pathDet := a.lookup(a.Global, p.Name)
			if !found && p.C == 0 {
				return a.throwError("ReferenceError", p.Name+" is not defined", pathDet)
			}
			a.define(f, p.Src, ir.Reg(p.A), v)
		case vm.OpStoreGlobal:
			a.setOwn(a.Global, p.Name, f.Regs[p.A])
		case vm.OpGetField:
			base := f.Regs[p.B]
			v, hit := a.icLoad(p.Site, p.Name, base)
			if !hit {
				var out outcome
				v, out = a.getProp(base, p.Name, true)
				if out.kind != oNormal {
					return out
				}
				a.primeLoad(p.Site, p.Name, base)
			}
			a.define(f, p.Src, ir.Reg(p.A), v)
		case vm.OpGetProp:
			name, nameDet := a.toString(f.Regs[p.C])
			v, out := a.getProp(f.Regs[p.B], name, nameDet)
			if out.kind != oNormal {
				return out
			}
			a.define(f, p.Src, ir.Reg(p.A), v)
		case vm.OpSetField:
			if out := a.icStore(p.Site, p.Name, f.Regs[p.A], f.Regs[p.B]); out.kind != oNormal {
				return out
			}
		case vm.OpSetProp:
			name, nameDet := a.toString(f.Regs[p.B])
			if out := a.execStore(f.Regs[p.A], name, nameDet, f.Regs[p.C]); out.kind != oNormal {
				return out
			}
		case vm.OpBinOp:
			v, out := a.binOp(p.Name, f.Regs[p.B], f.Regs[p.C])
			if out.kind != oNormal {
				return out
			}
			a.define(f, p.Src, ir.Reg(p.A), v)
		case vm.OpUnOp:
			a.define(f, p.Src, ir.Reg(p.A), a.unOp(p.Name, f.Regs[p.B]))
		case vm.OpIf:
			in := p.Src.(*ir.If)
			cond := f.Regs[in.Cond]
			if cond.Det {
				// Determinate branch: ordinary execution, inline.
				var out outcome
				if a.toBool(cond) {
					out = a.execBlock(f, in.Then)
				} else if in.Else != nil {
					out = a.execBlock(f, in.Else)
				} else {
					continue
				}
				if out.kind != oNormal {
					return out
				}
				continue
			}
			if out := a.execIf(f, in); out.kind != oNormal {
				return out
			}
		case vm.OpReturn:
			v := UndefD
			if p.A >= 0 {
				v = f.Regs[p.A]
			}
			return outcome{kind: oReturn, val: v}
		case vm.OpThrow:
			return outcome{kind: oThrow, val: f.Regs[p.A]}
		case vm.OpBreak:
			return outcome{kind: oBreak}
		case vm.OpContinue:
			return outcome{kind: oContinue}
		case vm.OpLoadVarField:
			// Fused LoadVar + GetField (`x.f`).
			a.define(f, p.Src, ir.Reg(p.A), a.loadSlot(f.Env, int(p.B), int(p.C)))
			if out := a.stepGate(p.Src2); out.kind != oNormal {
				return out
			}
			base := f.Regs[p.A]
			v, hit := a.icLoad(p.Site, p.Name, base)
			if !hit {
				var out outcome
				v, out = a.getProp(base, p.Name, true)
				if out.kind != oNormal {
					return out
				}
				a.primeLoad(p.Site, p.Name, base)
			}
			a.define(f, p.Src2, ir.Reg(p.B2), v)
		case vm.OpConstBin:
			// Fused Const + BinOp (`i < 10`, `n + 1`).
			a.define(f, p.Src, ir.Reg(p.A), litValue(p.Src.(*ir.Const).Val))
			if out := a.stepGate(p.Src2); out.kind != oNormal {
				return out
			}
			v, out := a.binOp(p.Name, f.Regs[p.C2], f.Regs[p.A])
			if out.kind != oNormal {
				return out
			}
			a.define(f, p.Src2, ir.Reg(p.B2), v)
		default: // vm.OpOther
			if out := a.execInstr(f, p.Src); out.kind != oNormal {
				return out
			}
		}
	}
	// Mirror execBlock's block-exit recheck: a statement may absorb an
	// interrupt without failing (a counterfactual undoes and taints instead).
	if a.stopped != nil {
		return failed(a.stopped)
	}
	return okOut
}

// stepGate runs the per-instruction step prologue for the second constituent
// of a fused superinstruction, so fused and unfused execution count steps and
// poll interrupts identically.
func (a *Analysis) stepGate(in ir.Instr) outcome {
	a.stats.Steps++
	if a.stats.Steps > a.opts.MaxSteps {
		return failed(ErrBudget)
	}
	if a.stats.Steps&(interruptEvery-1) == 0 {
		a.checkpoint()
	}
	if a.stopped != nil {
		return failed(a.stopped)
	}
	a.curIn = in
	return okOut
}

// ---------------------------------------------------------------------------
// Inline caches

// icKind classifies what a property-access site has cached.
type icKind uint8

const (
	icEmpty icKind = iota
	icLoadOwn
	icLoadProto
	icStore
	icMega
)

// icMegaMisses is the miss threshold past which a site goes megamorphic and
// stops probing (and counting) entirely.
const icMegaMisses = 8

// icMaxProtoDepth bounds the prototype chain a store cache validates.
const icMaxProtoDepth = 3

// propIC is one site's inline cache. Load sites cache the receiver shape
// (own hit) or receiver + prototype shapes (one-hop prototype hit); store
// sites cache the receiver shape plus the identity of its prototype chain.
// Hits recompute all determinacy live (propDet, IsOpen, ProtoDet), so a
// cache hit never changes annotations — only lookup cost.
type propIC struct {
	kind   icKind
	misses uint8
	depth  uint8
	shape  *vm.Shape
	proto  *DObj
	pshape *vm.Shape
	chain  [icMaxProtoDepth]*DObj
}

// icLoad attempts a cached property read for `base.name` at the given site.
// A hit requires, beyond shape equality, exactly the facts the slow path
// would rediscover: the shape invariant guarantees no phantom cells and no
// own accessors, so an own hit is `props[name]` with live determinacy; a
// prototype hit additionally pins the prototype identity and its shape and
// folds in the live receiver openness and ProtoDet, matching lookup's path
// determinacy for a one-hop walk.
func (a *Analysis) icLoad(site int32, name string, base Value) (Value, bool) {
	if site < 0 || int(site) >= len(a.ics) || base.Kind != Object {
		return Value{}, false
	}
	ic := &a.ics[site]
	if ic.kind == icMega {
		return Value{}, false
	}
	o := base.O
	switch ic.kind {
	case icLoadOwn:
		if o.shape == ic.shape {
			a.icHits++
			pr := o.props[name]
			v := pr.val
			v.Det = a.propDet(pr)
			return v.WithDet(base.Det), true
		}
	case icLoadProto:
		if o.shape == ic.shape && o.Proto == ic.proto && ic.proto.shape == ic.pshape {
			a.icHits++
			pr := ic.proto.props[name]
			v := pr.val
			v.Det = a.propDet(pr) && !a.IsOpen(o) && o.ProtoDet
			return v.WithDet(base.Det), true
		}
	}
	a.icMiss(ic)
	return Value{}, false
}

// primeLoad refills a load site after the slow path ran, when the receiver's
// state is cacheable.
func (a *Analysis) primeLoad(site int32, name string, base Value) {
	if site < 0 || int(site) >= len(a.ics) || base.Kind != Object {
		return
	}
	ic := &a.ics[site]
	if ic.kind == icMega {
		return
	}
	o := base.O
	if o.shape == nil {
		return
	}
	if o.shape.Has(name) {
		*ic = propIC{kind: icLoadOwn, misses: ic.misses, shape: o.shape}
		return
	}
	if p := o.Proto; p != nil && p.shape != nil && p.shape.Has(name) {
		*ic = propIC{kind: icLoadProto, misses: ic.misses, shape: o.shape, proto: p, pshape: p.shape}
	}
}

// icStore performs a SetField, through the cache when possible. A store hit
// must prove what execStore's slow path checks: no setter anywhere on the
// prototype chain. The receiver's shape implies it has no own accessors;
// chain members are pinned by identity and checked setter-free live (a shape
// would be too strong — built-in prototypes are dictionary-mode). The write
// itself goes through setOwn, so journaling, shape transitions and the
// indeterminate-base flush are the slow path's own code.
func (a *Analysis) icStore(site int32, name string, base, v Value) outcome {
	if site >= 0 && int(site) < len(a.ics) && base.Kind == Object {
		ic := &a.ics[site]
		if ic.kind == icStore && base.O.shape == ic.shape {
			o := base.O
			cur := o.Proto
			ok := true
			for i := 0; i < int(ic.depth); i++ {
				if cur != ic.chain[i] || len(cur.Setters) != 0 {
					ok = false
					break
				}
				cur = cur.Proto
			}
			if ok && cur == nil {
				a.icHits++
				a.setOwn(o, name, v)
				if !base.Det {
					a.FlushHeap("indet-store-base")
				}
				return okOut
			}
		}
		if ic.kind != icMega {
			a.icMiss(ic)
			out := a.execStore(base, name, true, v)
			if out.kind == oNormal {
				a.primeStore(ic, base.O)
			}
			return out
		}
	}
	return a.execStore(base, name, true, v)
}

// primeStore refills a store site after a successful slow-path store.
func (a *Analysis) primeStore(ic *propIC, o *DObj) {
	if o.shape == nil || len(o.Setters) != 0 {
		return
	}
	n := propIC{kind: icStore, misses: ic.misses, shape: o.shape}
	cur := o.Proto
	for cur != nil {
		if int(n.depth) >= icMaxProtoDepth || len(cur.Setters) != 0 {
			return
		}
		n.chain[n.depth] = cur
		n.depth++
		cur = cur.Proto
	}
	*ic = n
}

func (a *Analysis) icMiss(ic *propIC) {
	a.icMisses++
	ic.misses++
	if ic.misses >= icMegaMisses {
		*ic = propIC{kind: icMega}
	}
}
