package core_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/vm"
)

// ensureHammerSrc exercises the shared compiled state aggressively: inline
// caches on loads and stores, shape transitions, a megamorphic site, and a
// superinstruction-fused LoadVar+GetField pair inside a loop.
const ensureHammerSrc = `
function mk(n) { var o = {}; o.a = n; o.b = n + 1; return o; }
function get(o) { return o.a + o.b; }
var total = 0;
for (var i = 0; i < 50; i = i + 1) {
  var o = mk(i);
  total = total + get(o);
  o.c = i; // shape transition past the cached shapes
  total = total + o.c;
}
console.log(total);
`

// runCloneHammer lowers one pristine master and fans N never-ensured clones
// to concurrent bytecode analyses, returning each run's rendered facts and
// output. The harness is two-phase on purpose: every goroutine first
// creates its analysis — core.New is where first-time bytecode compilation
// attaches code to the master's shared blocks, so this is where concurrent
// clones contend — and only after a barrier do the runs execute. Without
// the phase split, the first goroutine's execution floods the shared
// *ir.Block.Code words with reads and the race detector's bounded shadow
// history can lose the compile-time write before a later goroutine's
// conflicting access, masking the very bug this test pins.
func runCloneHammer(t *testing.T, goroutines int) []string {
	t.Helper()
	master, err := ir.Compile("hammer.js", ensureHammerSrc)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		a     *core.Analysis
		store *facts.Store
		out   bytes.Buffer
	}
	jobs := make([]*job, goroutines)
	results := make([]string, goroutines)
	errs := make([]error, goroutines)
	var created, done sync.WaitGroup
	release := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		created.Add(1)
		done.Add(1)
		go func(g int) {
			defer done.Done()
			j := &job{store: facts.NewStore()}
			// Phase 1: concurrent creation. Before the Ensure fix, the
			// clones' first-time compiles raced here on the shared blocks.
			j.a = core.New(master.Clone(), j.store, core.Options{Engine: vm.EngineBytecode, Out: &j.out})
			jobs[g] = j
			created.Done()
			<-release
			// Phase 2: concurrent execution over the shared compiled code
			// with per-run IC and shape state.
			if _, err := j.a.Run(); err != nil {
				errs[g] = err
				return
			}
			var b bytes.Buffer
			for _, f := range j.store.Sorted() {
				fmt.Fprintf(&b, "%d|%s|%d det=%v hits=%d val=%v\n", f.Instr, f.Ctx.Key(), f.Seq, f.Det, f.Hits, f.Val)
			}
			b.WriteString("OUT:" + j.out.String())
			results[g] = b.String()
		}(g)
	}
	created.Wait()
	close(release)
	done.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	return results
}

// TestEnsureConcurrentClones is the -race regression test for cross-request
// mutable sharing of cached bytecode state: many goroutines take clones of
// one cached (lowered-but-not-compiled) program and run them concurrently.
// Every run must produce identical facts and output, and the race detector
// must stay quiet while the goroutines contend on first-time compilation.
func TestEnsureConcurrentClones(t *testing.T) {
	for round := 0; round < 4; round++ {
		results := runCloneHammer(t, 16)
		for g := 1; g < len(results); g++ {
			if results[g] != results[0] {
				t.Fatalf("round %d: goroutine %d produced different facts/output than goroutine 0:\n%s\nvs\n%s",
					round, g, results[g], results[0])
			}
		}
	}
}

// TestEnsureRecoversICCount pins the index-rebuild path: an Ensure that
// finds the shared blocks already compiled must recover the same inline
// cache site count the compiling Ensure allocated, or IC slot lookups would
// index out of range at run time.
func TestEnsureRecoversICCount(t *testing.T) {
	master, err := ir.Compile("hammer.js", ensureHammerSrc)
	if err != nil {
		t.Fatal(err)
	}
	first := master.Clone()
	second := master.Clone()
	infoA := vm.Ensure(first)  // compiles the shared blocks
	infoB := vm.Ensure(second) // must rebuild metadata from them
	if infoA.NumICs == 0 {
		t.Fatal("test program allocated no IC sites; it no longer exercises the recovery path")
	}
	if infoB.NumICs != infoA.NumICs {
		t.Fatalf("recovered NumICs = %d, compiling Ensure allocated %d", infoB.NumICs, infoA.NumICs)
	}
	if len(infoB.Fns) != len(infoA.Fns) {
		t.Fatalf("recovered %d function indexes, want %d", len(infoB.Fns), len(infoA.Fns))
	}
}
