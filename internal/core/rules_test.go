package core_test

import (
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
)

// Tests in this file cover individual instrumented-semantics rules beyond
// the Figure 2 walkthrough in core_test.go.

func TestStoreThroughIndeterminateBaseFlushes(t *testing.T) {
	// Rule ŜTO with d = ?: a write through an indeterminate object
	// reference may land anywhere, so the heap flushes.
	mod, store, a := analyze(t, `(function(){
		var a = {p: 1}, b = {p: 2};
		var t = Math.random() < 2 ? a : b;
		t.q = 9;
		var probe = a.p;
	})();`, core.Options{})
	if a.Stats().FlushReasons["indet-store-base"] == 0 {
		t.Fatalf("expected indet-store-base flush: %v", a.Stats().FlushReasons)
	}
	wantDet(t, oneFactAtLine(t, mod, store, 5, getField("p")), mod, false)
}

func TestDeleteWithIndeterminateName(t *testing.T) {
	// Deleting through an indeterminate name leaves every property's
	// existence uncertain: `in` becomes indeterminate even for survivors.
	mod, store, _ := analyze(t, `(function(){
		var o = {a: 1, b: 2};
		var k = Math.random() < 2 ? "a" : "b";
		delete o[k];
		var hasB = "b" in o;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 5, func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "in"
	})
	wantDet(t, f, mod, false)
}

func TestDeterminateDeleteStaysPrecise(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		var o = {a: 1, b: 2};
		delete o.a;
		var hasA = "a" in o;
		var hasB = "b" in o;
	})();`, core.Options{})
	inOp := func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "in"
	}
	fa := oneFactAtLine(t, mod, store, 4, inOp)
	wantDet(t, fa, mod, true)
	if fa.Val.Bool {
		t.Error(`"a" in o should be false`)
	}
	fb := oneFactAtLine(t, mod, store, 5, inOp)
	wantDet(t, fb, mod, true)
	if !fb.Val.Bool {
		t.Error(`"b" in o should be true`)
	}
}

func TestInstanceofDeterminacy(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		function A() {}
		var a = new A();
		var is = a instanceof A;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 4, func(in ir.Instr) bool {
		b, ok := in.(*ir.BinOp)
		return ok && b.Op == "instanceof"
	})
	wantDet(t, f, mod, true)
	if !f.Val.Bool {
		t.Error("a instanceof A should be true")
	}
}

func TestThrowCatchDeterminate(t *testing.T) {
	// A deterministic throw/catch keeps determinacy: the exception happens
	// in every execution.
	mod, store, a := analyze(t, `(function(){
		var got = 0;
		try {
			throw 42;
		} catch (e) {
			got = e;
		}
		var probe = got;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 8, loadVar("got"))
	wantNum(t, f, mod, 42)
	if a.Stats().HeapFlushes != 0 {
		t.Errorf("deterministic exception should not flush: %v", a.Stats().FlushReasons)
	}
}

func TestThrowUnderIndeterminateConditionFlushes(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var got = 0;
		try {
			if (Math.random() < 2) { throw 1; }
			got = 5;
		} catch (e) {
			got = 9;
		}
		var probe = got;
	})();`, core.Options{})
	if a.Stats().FlushReasons["indet-branch-escape"] == 0 {
		t.Fatalf("throw out of an indeterminate branch must flush: %v", a.Stats().FlushReasons)
	}
	wantDet(t, oneFactAtLine(t, mod, store, 9, loadVar("got")), mod, false)
}

func TestNestedCounterfactualsUndoInOrder(t *testing.T) {
	mod, store, a := analyze(t, `(function(){
		var x = 1;
		if (Math.random() > 2) {
			x = 2;
			if (Math.random() > 3) {
				x = 3;
			}
			x = 4;
		}
		var probe = x;
	})();`, core.Options{})
	f := oneFactAtLine(t, mod, store, 10, loadVar("x"))
	wantDet(t, f, mod, false)
	if f.Val.Num != 1 {
		t.Errorf("nested counterfactual left x = %v, want 1", f.Val.Num)
	}
	if a.Stats().Counterfacts < 2 {
		t.Errorf("expected nested counterfactuals, got %d", a.Stats().Counterfacts)
	}
}

func TestAccessorGetterDeterminacy(t *testing.T) {
	// Host accessors decide their own determinacy; wire one through the
	// public embedding APIs.
	mod := ir.MustCompile("t.js", `
		var v1 = host.live;
		var v2 = host.live;
	`)
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{})
	host := a.NewPlainObj()
	host.DefineGetter("live", func(an *core.Analysis, this core.Value, args []core.Value) (core.Value, error) {
		return core.NumberV(7, false), nil // an indeterminate host read
	})
	a.SetGlobal("host", core.ObjV(host, true))
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range store.All() {
		in := mod.InstrAt(f.Instr)
		if g, ok := in.(*ir.GetField); ok && g.Name == "live" && f.Det {
			t.Errorf("accessor result must carry the model's annotation: %s", facts.RenderFact(mod, f))
		}
	}
}

func TestLogicalOperatorsIndeterminacy(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		var r = Math.random();
		var a = r && 5;
		var b = false && r;
		var c = true || r;
	})();`, core.Options{})
	// a depends on r (either r-falsy or 5): indeterminate.
	fs := factsAtLine(t, mod, store, 3, func(in ir.Instr) bool {
		m, ok := in.(*ir.Move)
		_ = m
		return ok
	})
	sawIndet := false
	for _, f := range fs {
		if !f.Det {
			sawIndet = true
		}
	}
	if !sawIndet {
		t.Errorf("r && 5 must be indeterminate:\n%s", facts.Render(mod, fs))
	}
	// b short-circuits on a determinate false: determinate.
	for _, f := range factsAtLine(t, mod, store, 4, anyInstr) {
		if !f.Det {
			t.Errorf("false && r must stay determinate: %s", facts.RenderFact(mod, f))
		}
	}
}

func TestDoWhileRunsBodyOnce(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		var n = 0;
		do { n = n + 1; } while (n < 3);
		var probe = n;
	})();`, core.Options{})
	wantNum(t, oneFactAtLine(t, mod, store, 4, loadVar("n")), mod, 3)
}

func TestEvalInsideFunctionContexts(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		function compute(k) {
			return eval("k * 2");
		}
		var a = compute(3);
		var b = compute(4);
	})();`, core.Options{})
	// Each call site context yields its own determinate eval result.
	var vals []float64
	for _, f := range factsAtLine(t, mod, store, 5, func(in ir.Instr) bool {
		_, ok := in.(*ir.Call)
		return ok
	}) {
		if f.Det {
			vals = append(vals, f.Val.Num)
		}
	}
	for _, f := range factsAtLine(t, mod, store, 6, func(in ir.Instr) bool {
		_, ok := in.(*ir.Call)
		return ok
	}) {
		if f.Det {
			vals = append(vals, f.Val.Num)
		}
	}
	if len(vals) != 2 || vals[0] != 6 || vals[1] != 8 {
		t.Errorf("eval results per context: %v, want [6 8]", vals)
	}
}

func TestGeneralizeOnRealRun(t *testing.T) {
	mod, store, _ := analyze(t, `(function(){
		function id(x) { return x; }
		var a = id(7);
		var b = id(7);
		var c = id(9);
	})();`, core.Options{})
	g := store.Generalize()
	// The LoadVar of x inside id: same value (7) under two contexts, then 9
	// under a third: generalizes to indeterminate. Find it via the module.
	var xLoad ir.ID = -1
	mod.ForEachInstr(func(in ir.Instr, fn *ir.Function) {
		if lv, ok := in.(*ir.LoadVar); ok && lv.Var.Name == "x" && fn.Name == "id" {
			xLoad = in.IID()
		}
	})
	if xLoad < 0 {
		t.Fatal("no load of x found")
	}
	f, ok := g.Lookup(xLoad, nil, 0)
	if !ok {
		t.Fatal("generalized fact missing")
	}
	if f.Det {
		t.Error("x generalizes to indeterminate (7 vs 9 across contexts)")
	}
	// But the per-context facts are still individually determinate.
	det := 0
	for _, pf := range store.AtInstr(xLoad) {
		if pf.Det {
			det++
		}
	}
	if det != 3 {
		t.Errorf("per-context facts determinate: %d, want 3", det)
	}
}

func TestConsoleDisplayStable(t *testing.T) {
	// ToDisplay of instrumented objects matches the concrete renderer.
	var buf strings.Builder
	mod := ir.MustCompile("t.js", `console.log({a: 1, b: [1, 2, "x"]}, [{}, function f(){}]);`)
	a := core.New(mod, nil, core.Options{Out: &buf})
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	want := `{a: 1, b: [...]} [{...}, function]` + "\n"
	if buf.String() != want {
		t.Errorf("got %q want %q", buf.String(), want)
	}
}
