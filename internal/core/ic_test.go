package core

// Inline-cache unit tests: site priming, hits, invalidation on shape
// transition, the megamorphic fallback, and the vm_ic_hits/vm_ic_misses
// metrics contract. These run in-package because the cache state (kinds,
// miss counters) is deliberately not part of the public API — the caches
// must be observationally invisible except through the metrics registry.

import (
	"io"
	"strings"
	"testing"

	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
	"determinacy/internal/vm"
)

func numD(n float64) Value { return NumberV(n, true) }

// icAnalysis builds a bytecode-engine analysis over a trivial module with
// one synthetic property-access site, without running any program.
func icAnalysis(t *testing.T) *Analysis {
	t.Helper()
	a := New(ir.MustCompile("ic.js", ""), facts.NewStore(), Options{})
	if !a.useVM {
		t.Fatal("bytecode engine not selected by default")
	}
	a.ics = append(a.ics, propIC{})
	return a
}

func TestICLoadOwnHitAndShapeInvalidation(t *testing.T) {
	a := icAnalysis(t)
	site := int32(len(a.ics) - 1)
	o := a.NewObj("Object", a.ObjectProto)
	a.setRawProp(o, "f", numD(1))
	base := Value{Kind: Object, O: o, Det: true}

	// Cold site: first probe misses, the slow path primes it.
	if _, hit := a.icLoad(site, "f", base); hit {
		t.Fatal("cold cache reported a hit")
	}
	a.primeLoad(site, "f", base)
	if a.ics[site].kind != icLoadOwn {
		t.Fatalf("prime: kind = %d, want icLoadOwn", a.ics[site].kind)
	}
	v, hit := a.icLoad(site, "f", base)
	if !hit || v.N != 1 || !v.Det {
		t.Fatalf("primed own load: hit=%v v=%+v", hit, v)
	}
	hits, misses := a.icHits, a.icMisses
	if hits != 1 || misses != 1 {
		t.Fatalf("counters after one miss + one hit: hits=%d misses=%d", hits, misses)
	}

	// Adding a property transitions the hidden shape: the cached shape
	// pointer no longer matches and the site must miss, not serve stale
	// layout.
	a.setRawProp(o, "g", numD(2))
	if _, hit := a.icLoad(site, "f", base); hit {
		t.Fatal("load hit across a shape transition")
	}
	// Re-primed on the new shape, it hits again.
	a.primeLoad(site, "f", base)
	if _, hit := a.icLoad(site, "f", base); !hit {
		t.Fatal("re-primed load missed")
	}
}

func TestICHitRecomputesDeterminacyLive(t *testing.T) {
	a := icAnalysis(t)
	site := int32(len(a.ics) - 1)
	o := a.NewObj("Object", a.ObjectProto)
	a.setRawProp(o, "f", numD(1))
	base := Value{Kind: Object, O: o, Det: true}
	a.primeLoad(site, "f", base)

	v, hit := a.icLoad(site, "f", base)
	if !hit || !v.Det {
		t.Fatalf("determinate before flush: hit=%v det=%v", hit, v.Det)
	}
	// A heap flush indeterminates every property cell (epoch bump) but
	// does not change shapes: the cache still hits, and the hit must
	// report the post-flush indeterminate value, proving hits recompute
	// determinacy rather than caching it.
	a.FlushHeap("test")
	v, hit = a.icLoad(site, "f", base)
	if !hit {
		t.Fatal("flush must not invalidate the cache (shapes unchanged)")
	}
	if v.Det {
		t.Fatal("cache hit served a stale determinate annotation across a heap flush")
	}
}

func TestICAccessorAndDeleteDropShape(t *testing.T) {
	a := icAnalysis(t)
	site := int32(len(a.ics) - 1)
	o := a.NewObj("Object", a.ObjectProto)
	a.setRawProp(o, "f", numD(1))
	base := Value{Kind: Object, O: o, Det: true}
	a.primeLoad(site, "f", base)

	// Installing an accessor breaks the shape invariant (shaped objects
	// have no own accessors), so the object leaves shaped mode and the
	// site misses forever after.
	o.DefineGetter("f", func(a *Analysis, this Value, args []Value) (Value, error) {
		return numD(9), nil
	})
	if o.shape != nil {
		t.Fatal("DefineGetter left the object shaped")
	}
	if _, hit := a.icLoad(site, "f", base); hit {
		t.Fatal("load hit on an object with an own getter")
	}

	// Deletion likewise drops the shape (key order can reshuffle).
	o2 := a.NewObj("Object", a.ObjectProto)
	a.setRawProp(o2, "f", numD(1))
	if o2.shape == nil {
		t.Fatal("fresh object not shaped")
	}
	a.deleteProp(o2, "f")
	if o2.shape != nil {
		t.Fatal("deleteProp left the object shaped")
	}
}

func TestICMegamorphicFallback(t *testing.T) {
	a := icAnalysis(t)
	site := int32(len(a.ics) - 1)
	base := Value{Kind: Object, O: a.NewObj("Object", a.ObjectProto), Det: true}

	// Distinctly-shaped receivers on every probe: the site must go
	// megamorphic after icMegaMisses misses.
	for i := 0; i < icMegaMisses; i++ {
		o := a.NewObj("Object", a.ObjectProto)
		a.setRawProp(o, strings.Repeat("k", i+1), numD(1))
		b := Value{Kind: Object, O: o, Det: true}
		if _, hit := a.icLoad(site, "k", b); hit {
			t.Fatalf("probe %d hit on an unprimed site", i)
		}
		a.primeLoad(site, strings.Repeat("k", i+1), b)
	}
	if a.ics[site].kind != icMega {
		t.Fatalf("after %d misses: kind = %d, want icMega", icMegaMisses, a.ics[site].kind)
	}
	// Megamorphic sites stop probing and stop counting.
	before := a.icMisses
	if _, hit := a.icLoad(site, "k", base); hit {
		t.Fatal("megamorphic site reported a hit")
	}
	if a.icMisses != before {
		t.Fatal("megamorphic site still counts misses")
	}
	// And priming is a no-op: the site stays megamorphic.
	a.primeLoad(site, "k", base)
	if a.ics[site].kind != icMega {
		t.Fatal("primeLoad resurrected a megamorphic site")
	}
}

func TestICStoreHitAndSetterInvalidation(t *testing.T) {
	a := icAnalysis(t)
	site := int32(len(a.ics) - 1)
	o := a.NewObj("Object", a.ObjectProto)
	a.setRawProp(o, "f", numD(1))
	base := Value{Kind: Object, O: o, Det: true}

	// Slow-path store primes the site…
	if out := a.icStore(site, "f", base, numD(2)); out.kind != oNormal {
		t.Fatalf("store: %+v", out)
	}
	if a.ics[site].kind != icStore {
		t.Fatalf("after slow store: kind = %d, want icStore", a.ics[site].kind)
	}
	// …and the second store hits.
	hits := a.icHits
	if out := a.icStore(site, "f", base, numD(3)); out.kind != oNormal {
		t.Fatalf("store: %+v", out)
	}
	if a.icHits != hits+1 {
		t.Fatalf("cached store did not hit: hits %d -> %d", hits, a.icHits)
	}
	if pr, ok := o.OwnProp("f"); !ok || pr.N != 3 {
		t.Fatalf("cached store wrote wrong value: %+v ok=%v", pr, ok)
	}

	// A setter appearing anywhere on the prototype chain must defeat the
	// cache: chain members are checked setter-free live on every hit.
	a.ObjectProto.DefineSetter("f", func(a *Analysis, this Value, args []Value) (Value, error) {
		return UndefD, nil
	})
	hits = a.icHits
	if out := a.icStore(site, "f", base, numD(4)); out.kind != oNormal {
		t.Fatalf("store through setter chain: %+v", out)
	}
	if a.icHits != hits {
		t.Fatal("store hit although a prototype setter was installed")
	}
}

func TestICMetricsPublished(t *testing.T) {
	src := `
var o = {f: 1};
var s = 0;
var i = 0;
while (i < 200) { s = s + o.f; o.f = s; i = i + 1; }
console.log(s);
`
	run := func(eng vm.Engine) (hits, misses int64) {
		m := obs.NewMetrics()
		a := New(ir.MustCompile("m.js", src), facts.NewStore(), Options{
			Out: io.Discard, Engine: eng, Metrics: m,
		})
		if _, err := a.Run(); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		return m.Counter("vm_ic_hits").Value(), m.Counter("vm_ic_misses").Value()
	}

	hits, misses := run(vm.EngineBytecode)
	if hits == 0 {
		t.Error("bytecode run published no vm_ic_hits for a monomorphic loop")
	}
	if misses == 0 {
		t.Error("bytecode run published no vm_ic_misses (cold sites must miss once)")
	}
	if hits < misses {
		t.Errorf("monomorphic loop should be hit-dominated: hits=%d misses=%d", hits, misses)
	}

	// The tree walker has no caches: its counters must stay zero.
	if hits, misses := run(vm.EngineTree); hits != 0 || misses != 0 {
		t.Errorf("tree engine published IC activity: hits=%d misses=%d", hits, misses)
	}
}
