//go:build !race

package core_test

// raceTimeMul relaxes wall-clock assertions under the race detector; 1
// when it is off.
const raceTimeMul = 1
