package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

func TestStepBudgetInstrumented(t *testing.T) {
	mod := ir.MustCompile("t.js", `while (true) { var x = 1; }`)
	a := core.New(mod, facts.NewStore(), core.Options{MaxSteps: 500})
	_, err := a.Run()
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestStackLimitInstrumented(t *testing.T) {
	mod := ir.MustCompile("t.js", `function f() { return f(); } f();`)
	a := core.New(mod, facts.NewStore(), core.Options{MaxDepth: 50})
	_, err := a.Run()
	if !errors.Is(err, core.ErrStack) {
		t.Fatalf("want ErrStack, got %v", err)
	}
}

func TestStackLimitConcrete(t *testing.T) {
	mod := ir.MustCompile("t.js", `function f() { return f(); } f();`)
	it := interp.New(mod, interp.Options{MaxDepth: 50})
	_, err := it.Run()
	if !errors.Is(err, interp.ErrStack) {
		t.Fatalf("want ErrStack, got %v", err)
	}
}

func TestBudgetInsideCounterfactualContained(t *testing.T) {
	// A counterfactual that would loop forever: the step budget fires
	// inside it; the analysis contains the failure conservatively instead
	// of crashing, and execution after the branch continues... the budget
	// error aborts the run, but the facts before it remain.
	mod := ir.MustCompile("t.js", `
		var before = 1 + 1;
		if (Math.random() > 2) {
			while (true) { var burn = 0; }
		}
		var after = 2 + 2;
	`)
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{MaxSteps: 5000})
	_, err := a.Run()
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if store.Len() == 0 {
		t.Error("facts before the budget stop must survive")
	}
}

// TestIndetLoopBudgetTerminatesPromptly: a non-terminating loop under an
// indeterminate condition pushes one nested branch frame per iteration, and
// after the step budget fires every frame is popped, marked, and merged into
// its parent. That finish path must stay linear in the distinct locations
// written: wholesale journal concatenation made it quadratic in iteration
// count, hanging the analysis for minutes after ErrBudget. (Found by
// detfuzz, fuzz crasher 82c225e8a0038142.)
func TestIndetLoopBudgetTerminatesPromptly(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		var i = 0;
		var o = {a: 1, b: 2};
		while (Math.random() < 2) {
			i = i + 1;
			o.c = i;
			delete o.a;
			o.a = i;
		}
	`)
	a := core.New(mod, facts.NewStore(), core.Options{MaxSteps: 300000, MaxFlushes: 1 << 20})
	start := time.Now()
	_, err := a.Run()
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second*raceTimeMul {
		t.Fatalf("budget-aborted loop took %v to unwind", elapsed)
	}
}

func TestThrownErrorSurfacesValue(t *testing.T) {
	mod := ir.MustCompile("t.js", `throw new TypeError("kaput");`)
	a := core.New(mod, facts.NewStore(), core.Options{})
	_, err := a.Run()
	var th *core.Thrown
	if !errors.As(err, &th) {
		t.Fatalf("want Thrown, got %T %v", err, err)
	}
	if s := a.DisplayValue(th.Val); !strings.Contains(s, "kaput") {
		t.Errorf("thrown value renders as %q", s)
	}
}

func TestMuJSLocalsOptionSkipsEnvFlush(t *testing.T) {
	src := `(function(){
		var local = 7;
		var f = Math.random() < 2 ? function(){ return 1; } : function(){ return 2; };
		f();
		var probe = local;
	})();`
	// Default: the indeterminate call flushes environments too.
	mod, store, a := analyze(t, src, core.Options{})
	if a.Stats().EnvFlushes == 0 {
		t.Error("default mode must flush environments on indeterminate calls")
	}
	wantDet(t, oneFactAtLine(t, mod, store, 5, loadVar("local")), mod, false)

	// µJS-faithful mode keeps the local determinate (heap-only flush).
	modM, storeM, aM := analyze(t, src, core.Options{MuJSLocals: true})
	if aM.Stats().EnvFlushes != 0 {
		t.Error("µJS mode must not flush environments")
	}
	wantNum(t, oneFactAtLine(t, modM, storeM, 5, loadVar("local")), modM, 7)
}

func TestFactsNilStoreRunsForStatsOnly(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		var fns = [function(){return 1;}, function(){return 2;}];
		fns[Math.random() < 0.5 ? 0 : 1]();
	`)
	a := core.New(mod, nil, core.Options{})
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().HeapFlushes == 0 {
		t.Error("stats must accumulate without a fact store")
	}
}
