//go:build race

package core_test

// raceTimeMul relaxes wall-clock assertions under the race detector, which
// slows the interpreter by an order of magnitude or more.
const raceTimeMul = 4
