package diffcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"determinacy/internal/diffcheck"
)

// TestReproducers runs every minimized reproducer the fuzz campaign has
// produced through the full oracle. Each file documents the bug it caught;
// a failure here means a fixed bug regressed.
func TestReproducers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reproducers in testdata/")
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".js")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			checked, fail := diffcheck.CheckSource(string(src), 8, 1)
			if fail != nil {
				t.Fatalf("reproducer regressed: %s", fail)
			}
			if checked == 0 {
				t.Error("oracle exercised no determinate facts; reproducer no longer meaningful")
			}
		})
	}
}

// TestReproducersAcrossBases replays the reproducers under several
// resolution bases so the input assignments differ from the checked-in
// campaign's, guarding against fixes that only hold for one input vector.
func TestReproducersAcrossBases(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-base replay")
	}
	files, _ := filepath.Glob(filepath.Join("testdata", "*.js"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range []uint64{7, 99, 12345} {
			if _, fail := diffcheck.CheckSource(string(src), 6, base); fail != nil {
				t.Errorf("%s base=%d: %s", filepath.Base(file), base, fail)
			}
		}
	}
}
