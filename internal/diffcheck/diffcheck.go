// Package diffcheck implements a randomized differential-soundness harness
// for the determinacy analysis: the executable, adversarial form of the
// paper's Theorem 1. For each generated program it runs the instrumented
// analysis once to collect facts, replays many concrete executions under
// random resolutions of every indeterminate input (Math.random seeds and
// __input values) cross-checking each fact, and differentially compares the
// tree interpreter against the instrumented interpreter — with identical
// seeds and inputs the two must agree exactly on console output and final
// global state. Failing programs shrink to minimal reproducers with the
// delta-debugging reducer in reduce.go.
package diffcheck

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"determinacy/internal/ast"
	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/soundcheck"
	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// Kind classifies an oracle violation.
type Kind string

// Violation kinds, in decreasing order of severity.
const (
	// KindUnsound: a determinate fact did not hold in a concrete execution
	// (a Theorem 1 counterexample).
	KindUnsound Kind = "unsound-fact"
	// KindConflict: determinate facts from instrumented runs on different
	// inputs contradict each other (a §7 counterexample).
	KindConflict Kind = "fact-conflict"
	// KindDiverge: with identical seeds and inputs, the concrete and
	// instrumented interpreters produced different output or final state.
	KindDiverge Kind = "interp-core-divergence"
	// KindEngineDiverge: the tree-walking and bytecode engines disagreed —
	// on facts, statistics, or console output — for the same program,
	// seed, and inputs. The engines must be indistinguishable.
	KindEngineDiverge Kind = "engine-divergence"
	// KindCrash: a run failed with an unexpected error.
	KindCrash Kind = "crash"
	// KindReject: the program did not compile. Generated programs must
	// always compile, so this flags a generator or front-end bug; during
	// reduction it marks an invalid candidate.
	KindReject Kind = "does-not-compile"
)

// Failure describes one oracle violation, carrying enough information to
// reproduce it deterministically.
type Failure struct {
	Kind Kind `json:"kind"`
	// GenSeed is the generator seed (and resolution base) of the program,
	// when it came from CheckSeed.
	GenSeed uint64 `json:"gen_seed"`
	// Resolution is the concrete replay that violated the oracle; -1 marks
	// failures of the instrumented runs themselves.
	Resolution int    `json:"resolution"`
	Detail     string `json:"detail"`
	Program    string `json:"program"`
	// Minimized is the delta-debugged reproducer, when reduction ran.
	Minimized string `json:"minimized,omitempty"`
}

func (f *Failure) String() string {
	return fmt.Sprintf("%s (seed %d, resolution %d): %s", f.Kind, f.GenSeed, f.Resolution, f.Detail)
}

// GenConfigFor derives the generator configuration for a campaign seed,
// cycling through feature combinations (for-in, eval, prototype mutation,
// console output) and indeterminacy rates — including fully-determinate
// programs, where the interpreters must agree without any flushing at all.
func GenConfigFor(seed uint64) workload.GenConfig {
	h := mix(seed, 0x6d696e6a73) // "minjs"
	cfg := workload.GenConfig{
		Seed:        seed,
		WithForIn:   h&1 != 0,
		WithEval:    h&2 != 0,
		WithProto:   h&4 != 0,
		WithConsole: h&8 != 0,
	}
	switch (h >> 4) % 4 {
	case 0:
		cfg.IndetPercent = -1 // fully determinate
	case 1:
		cfg.IndetPercent = 10
	case 2:
		cfg.IndetPercent = 25
	default:
		cfg.IndetPercent = 50
	}
	return cfg
}

// mix is a splitmix64-style hash combining two words.
func mix(a, b uint64) uint64 {
	h := a ^ (b+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// resolutionSeed is the Math.random seed of concrete replay r.
func resolutionSeed(base uint64, r int) uint64 { return mix(base, uint64(r)*2+1) }

// resolveInputs derives the concrete values of the __input sources for
// replay r, spanning every primitive kind — including NaN and undefined —
// since a determinate fact must survive any of them.
func resolveInputs(base uint64, r int) map[string]interp.Value {
	s := mix(base, uint64(r)*2+2) | 1
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 2685821657736338717
	}
	one := func() interp.Value {
		switch next() % 8 {
		case 0:
			return interp.NumberVal(float64(next() % 10))
		case 1:
			return interp.NumberVal(-float64(next() % 50))
		case 2:
			return interp.NumberVal(0.5 + float64(next()%4))
		case 3:
			return interp.NumberVal(float64(next() % 1000003))
		case 4:
			return interp.NumberVal(math.NaN())
		case 5:
			return interp.BoolVal(next()%2 == 0)
		case 6:
			return interp.StringVal([]string{"", "x", "in7", "zz-top"}[next()%4])
		default:
			return interp.UndefinedVal
		}
	}
	return map[string]interp.Value{"a": one(), "b": one(), "c": one()}
}

// CheckSeed generates the program for genSeed and runs the full oracle
// against it. It returns the number of determinate fact checks exercised
// and the first violation found (nil when the program is clean).
func CheckSeed(genSeed uint64, resolutions int) (int, *Failure) {
	return CheckSeedEngine(genSeed, resolutions, vm.EngineDefault)
}

// CheckSeedEngine is CheckSeed with an explicit primary engine (the
// engine oracle always runs the opposite one for comparison).
func CheckSeedEngine(genSeed uint64, resolutions int, eng vm.Engine) (int, *Failure) {
	src := workload.RandomProgram(GenConfigFor(genSeed))
	checked, f := checkSource(src, resolutions, genSeed, oracleMaxSteps, oracleMaxFlushes, eng)
	if f != nil {
		f.GenSeed = genSeed
	}
	return checked, f
}

// Oracle execution budgets. Generated programs terminate quickly by
// construction, so the campaign budget is generous; delta-debugging
// candidates can lose their loop increments and run forever, so reduction
// uses a much tighter budget that turns runaway candidates into prompt
// crash outcomes the reduction predicate rejects.
const (
	oracleMaxSteps   = 20_000_000
	oracleMaxFlushes = 100_000
	reduceMaxSteps   = 150_000
	reduceMaxFlushes = 500
)

// CheckSource runs the full oracle on one program: an instrumented run
// collecting facts, a second instrumented run on different inputs whose
// merged facts must not conflict (§7), and `resolutions` concrete replays
// each cross-checked against the facts. Replay 0 shares the instrumented
// run's seed and inputs, so its console output and final global state must
// match the instrumented run exactly.
//
// Fact checking is restricted to static program points: eval-lowered
// instruction IDs are run-local (different input resolutions can lower
// different strings, and counterfactual execution can lower evals a
// concrete run never reaches), exactly as AnalyzeRuns treats merged runs.
func CheckSource(src string, resolutions int, base uint64) (int, *Failure) {
	return checkSource(src, resolutions, base, oracleMaxSteps, oracleMaxFlushes, vm.EngineDefault)
}

// checkSource runs the oracle with `eng` as the primary engine for the
// fact-collecting run; the engine-divergence comparison always runs the
// opposite engine, so both are exercised regardless of the choice.
func checkSource(src string, resolutions int, base uint64, maxSteps, maxFlushes int, eng vm.Engine) (int, *Failure) {
	other := vm.EngineTree
	if !eng.Bytecode() {
		other = vm.EngineBytecode
	}
	if resolutions < 1 {
		resolutions = 1
	}
	mod, err := ir.Compile("fuzz.js", src)
	if err != nil {
		return 0, &Failure{Kind: KindReject, Resolution: -1, Detail: "compile: " + err.Error(), Program: src}
	}
	static := ir.ID(mod.NumInstrs)

	var coreOut bytes.Buffer
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{
		Seed:       resolutionSeed(base, 0),
		Inputs:     resolveInputs(base, 0),
		Out:        &coreOut,
		MaxSteps:   maxSteps,
		MaxFlushes: maxFlushes,
		Engine:     eng,
	})
	// A flush-limited run is truncated, so its final state is not comparable
	// against a complete concrete replay: report it as a crash (the campaign
	// budget is far above what generated programs need, so this only fires
	// for runaway reduction candidates and mutated fuzz inputs).
	if _, err := a.Run(); err != nil {
		return 0, &Failure{Kind: KindCrash, Resolution: -1, Detail: "instrumented run: " + err.Error(), Program: src}
	}
	if len(store.Conflicts) > 0 {
		return 0, &Failure{Kind: KindConflict, Resolution: -1,
			Detail: fmt.Sprintf("conflicts within a single run: %v", store.Conflicts), Program: src}
	}

	// Engine oracle: repeat the instrumented run on the tree-walking
	// engine with the identical seed and inputs. The two engines must be
	// byte-for-byte indistinguishable — same facts, same statistics
	// (including step counts), same console output.
	modT, err := ir.Compile("fuzz.js", src)
	if err != nil {
		return 0, &Failure{Kind: KindReject, Resolution: -1, Detail: "recompile: " + err.Error(), Program: src}
	}
	var treeOut bytes.Buffer
	storeT := facts.NewStore()
	aT := core.New(modT, storeT, core.Options{
		Seed:       resolutionSeed(base, 0),
		Inputs:     resolveInputs(base, 0),
		Out:        &treeOut,
		MaxSteps:   maxSteps,
		MaxFlushes: maxFlushes,
		Engine:     other,
	})
	if _, err := aT.Run(); err != nil {
		return 0, &Failure{Kind: KindCrash, Resolution: -1, Detail: "tree-engine run: " + err.Error(), Program: src}
	}
	if d := compareEngines(a, store, coreOut.String(), aT, storeT, treeOut.String()); d != "" {
		return 0, &Failure{Kind: KindEngineDiverge, Resolution: -1, Detail: d, Program: src}
	}

	// §7: facts from instrumented runs on different inputs merge by union
	// and must never contradict on determinate values.
	mod2, err := ir.Compile("fuzz.js", src)
	if err != nil {
		return 0, &Failure{Kind: KindReject, Resolution: -1, Detail: "recompile: " + err.Error(), Program: src}
	}
	store2 := facts.NewStore()
	a2 := core.New(mod2, store2, core.Options{
		Seed:       resolutionSeed(base, 1),
		Inputs:     resolveInputs(base, 1),
		MaxSteps:   maxSteps,
		MaxFlushes: maxFlushes,
		Engine:     eng,
	})
	if _, err := a2.Run(); err != nil {
		return 0, &Failure{Kind: KindCrash, Resolution: -1, Detail: "second instrumented run: " + err.Error(), Program: src}
	}
	rs1, rs2 := store.Restrict(static), store2.Restrict(static)
	merged := facts.NewStore()
	merged.Merge(rs1)
	merged.Merge(rs2)
	if len(merged.Conflicts) > 0 {
		return 0, &Failure{Kind: KindConflict, Resolution: -1,
			Detail:  "determinate facts from two runs conflict:\n" + conflictDetail(merged.Conflicts, rs1, rs2, mod),
			Program: src}
	}

	rstore := store.Restrict(static)
	checked := 0
	for r := 0; r < resolutions; r++ {
		modR, err := ir.Compile("fuzz.js", src)
		if err != nil {
			return checked, &Failure{Kind: KindReject, Resolution: r, Detail: "recompile: " + err.Error(), Program: src}
		}
		// Alternate concrete engines across replays, so both interpreter
		// engines are cross-checked against the facts — and replay 0,
		// running on the opposite engine, pins it against the primary
		// instrumented run's output below.
		ieng := eng
		if r%2 == 0 {
			ieng = other
		}
		var out bytes.Buffer
		it := interp.New(modR, interp.Options{
			Seed:     resolutionSeed(base, r),
			Inputs:   resolveInputs(base, r),
			Out:      &out,
			MaxSteps: maxSteps,
			Engine:   ieng,
		})
		ck := soundcheck.New(rstore)
		ck.Attach(it)
		if _, err := it.Run(); err != nil {
			return checked, &Failure{Kind: KindCrash, Resolution: r, Detail: "concrete run: " + err.Error(), Program: src}
		}
		checked += ck.Checked
		if len(ck.Mismatches) > 0 {
			return checked, &Failure{Kind: KindUnsound, Resolution: r, Detail: ck.Report(modR), Program: src}
		}
		if r == 0 {
			// Identical seed and inputs: instrumentation must be
			// semantically transparent.
			if got, want := out.String(), coreOut.String(); got != want {
				return checked, &Failure{Kind: KindDiverge, Resolution: 0,
					Detail:  fmt.Sprintf("console output differs:\nconcrete:     %q\ninstrumented: %q", got, want),
					Program: src}
			}
			if d := compareGlobals(it, a); d != "" {
				return checked, &Failure{Kind: KindDiverge, Resolution: 0, Detail: d, Program: src}
			}
		}
	}
	return checked, nil
}

// SameFailure builds the reduction predicate: does a candidate still fail
// the oracle with the same kind of violation? Candidates that no longer
// compile never match (unless the original failure was a compile failure),
// and candidates run under the tight reduction budget, so a candidate whose
// loops no longer terminate counts as not failing rather than stalling the
// reduction.
func SameFailure(kind Kind, resolutions int, base uint64) func(string) bool {
	return func(cand string) bool {
		_, f := checkSource(cand, resolutions, base, reduceMaxSteps, reduceMaxFlushes, vm.EngineDefault)
		return f != nil && f.Kind == kind
	}
}

// compareEngines asserts that two instrumented runs — identical except
// for the engine — are indistinguishable: byte-identical console output,
// equal statistics (step counts included), and equal fact stores with
// matching hit counts. Returns "" on success.
func compareEngines(a1 *core.Analysis, s1 *facts.Store, out1 string, a2 *core.Analysis, s2 *facts.Store, out2 string) string {
	if out1 != out2 {
		return fmt.Sprintf("console output differs:\nengine A: %q\nengine B: %q", out1, out2)
	}
	// fmt renders map keys sorted, so this comparison is deterministic.
	if g1, g2 := fmt.Sprintf("%+v", a1.Stats()), fmt.Sprintf("%+v", a2.Stats()); g1 != g2 {
		return fmt.Sprintf("statistics differ:\nengine A: %s\nengine B: %s", g1, g2)
	}
	f1, f2 := s1.Sorted(), s2.Sorted()
	if len(f1) != len(f2) {
		return fmt.Sprintf("fact counts differ: engine A %d vs engine B %d", len(f1), len(f2))
	}
	for i := range f1 {
		x, y := f1[i], f2[i]
		kx := fmt.Sprintf("%d|%s|%d det=%v hits=%d val=%v", x.Instr, x.Ctx.Key(), x.Seq, x.Det, x.Hits, x.Val)
		ky := fmt.Sprintf("%d|%s|%d det=%v hits=%d val=%v", y.Instr, y.Ctx.Key(), y.Seq, y.Det, y.Hits, y.Val)
		if kx != ky {
			return fmt.Sprintf("fact %d differs:\nengine A: %s\nengine B: %s", i, kx, ky)
		}
	}
	return ""
}

// conflictDetail renders both sides of every conflicting fact key, so a
// §7 violation report shows the two determinate values that disagreed.
func conflictDetail(keys []string, s1, s2 *facts.Store, mod *ir.Module) string {
	find := func(s *facts.Store, k string) *facts.Fact {
		for _, f := range s.All() {
			if fmt.Sprintf("%d|%s|%d", f.Instr, f.Ctx.Key(), f.Seq) == k {
				return f
			}
		}
		return nil
	}
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  key %s\n", k)
		if f := find(s1, k); f != nil {
			fmt.Fprintf(&b, "    run A: %s\n", facts.RenderFact(mod, f))
		}
		if f := find(s2, k); f != nil {
			fmt.Fprintf(&b, "    run B: %s\n", facts.RenderFact(mod, f))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Final-state comparison

var (
	builtinOnce  sync.Once
	builtinNames map[string]bool
)

// builtinGlobalNames is the set of globals defined by the runtimes
// themselves, excluded from program-state comparison.
func builtinGlobalNames() map[string]bool {
	builtinOnce.Do(func() {
		builtinNames = map[string]bool{}
		it := interp.New(ir.MustCompile("empty.js", ""), interp.Options{})
		for _, k := range it.Global.OwnKeys() {
			builtinNames[k] = true
		}
		a := core.New(ir.MustCompile("empty.js", ""), facts.NewStore(), core.Options{})
		for _, k := range a.Global.OwnKeys() {
			builtinNames[k] = true
		}
	})
	return builtinNames
}

// compareGlobals deep-compares the program-defined globals of a concrete
// and an instrumented run, returning a description of the first difference
// ("" when identical). Objects compare by own-property state plus any
// user-created prototype chain, so prototype mutations are covered.
func compareGlobals(it *interp.Interp, a *core.Analysis) string {
	builtin := builtinGlobalNames()
	iprotos := map[*interp.Obj]bool{
		it.ObjectProto: true, it.FunctionProto: true, it.ArrayProto: true,
		it.StringProto: true, it.NumberProto: true, it.BooleanProto: true, it.ErrorProto: true,
	}
	cprotos := map[*core.DObj]bool{
		a.ObjectProto: true, a.FunctionProto: true, a.ArrayProto: true,
		a.StringProto: true, a.NumberProto: true, a.BooleanProto: true, a.ErrorProto: true,
	}

	names := map[string]bool{}
	for _, k := range it.Global.OwnKeys() {
		if !builtin[k] {
			names[k] = true
		}
	}
	for _, k := range a.Global.OwnKeys() {
		if !builtin[k] {
			names[k] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		iv, iok := it.Global.Get(k)
		cv, cok := a.Global.OwnProp(k)
		if iok != cok {
			return fmt.Sprintf("global %q: present=%v concretely, present=%v instrumented", k, iok, cok)
		}
		si := snapInterp(iv, 3, iprotos)
		sc := snapCore(cv, 3, cprotos)
		if si != sc {
			return fmt.Sprintf("global %q: concrete %s vs instrumented %s", k, si, sc)
		}
	}
	return ""
}

// snapInterp renders a concrete value structurally: primitives via
// JavaScript ToString, objects as own properties in insertion order plus
// any user-created prototype.
func snapInterp(v interp.Value, depth int, protos map[*interp.Obj]bool) string {
	if v.Kind != interp.Object {
		return interp.ToString(v)
	}
	o := v.O
	if o.Fn != nil || o.Native != nil {
		return "function"
	}
	if depth <= 0 {
		return "{...}"
	}
	var b strings.Builder
	b.WriteString("{")
	for i, k := range o.OwnKeys() {
		if i > 0 {
			b.WriteString(", ")
		}
		pv, _ := o.Get(k)
		fmt.Fprintf(&b, "%s: %s", k, snapInterp(pv, depth-1, protos))
	}
	b.WriteString("}")
	if o.Proto != nil && !protos[o.Proto] {
		b.WriteString(" proto ")
		b.WriteString(snapInterp(interp.ObjVal(o.Proto), depth-1, protos))
	}
	return b.String()
}

// snapCore is snapInterp for instrumented values; determinacy annotations
// are deliberately ignored (they are analysis results, not program state).
func snapCore(v core.Value, depth int, protos map[*core.DObj]bool) string {
	switch v.Kind {
	case core.Undefined:
		return "undefined"
	case core.Null:
		return "null"
	case core.Bool:
		return strconv.FormatBool(v.B)
	case core.Number:
		return ast.FormatNumber(v.N)
	case core.String:
		return v.S
	}
	o := v.O
	if o.Fn != nil || o.Native != nil {
		return "function"
	}
	if depth <= 0 {
		return "{...}"
	}
	var b strings.Builder
	b.WriteString("{")
	n := 0
	for _, k := range o.OwnKeys() {
		// Phantom cells record properties that other executions may have
		// written; concretely the property is absent, so skip it.
		pv, ok := o.OwnProp(k)
		if !ok {
			continue
		}
		if n > 0 {
			b.WriteString(", ")
		}
		n++
		fmt.Fprintf(&b, "%s: %s", k, snapCore(pv, depth-1, protos))
	}
	b.WriteString("}")
	if o.Proto != nil && !protos[o.Proto] {
		b.WriteString(" proto ")
		b.WriteString(snapCore(core.Value{Kind: core.Object, O: o.Proto}, depth-1, protos))
	}
	return b.String()
}
