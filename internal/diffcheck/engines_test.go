package diffcheck

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/ir"
	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// TestReproducersTreePrimary replays the checked-in reproducer corpus with
// the tree walker as the primary engine. The in-oracle engine comparison
// then runs bytecode as the cross-check — the mirror image of the default
// TestReproducers pass — so every reproducer pins both engine assignments.
func TestReproducersTreePrimary(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reproducers in testdata/")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if _, fail := checkSource(string(src), 4, 1, oracleMaxSteps, oracleMaxFlushes, vm.EngineTree); fail != nil {
			t.Errorf("%s: %s", filepath.Base(file), fail)
		}
	}
}

// TestEngineOracleOnGeneratedPrograms sweeps generated programs through
// the oracle under both primary-engine assignments. Any disagreement
// between tree and bytecode — facts, statistics, or output — surfaces as
// KindEngineDiverge.
func TestEngineOracleOnGeneratedPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		for _, eng := range []vm.Engine{vm.EngineBytecode, vm.EngineTree} {
			if _, fail := CheckSeedEngine(seed, 2, eng); fail != nil {
				t.Errorf("seed %d primary=%s: %s", seed, eng, fail)
			}
		}
	}
}

// partialEngineRun aborts an instrumented run after `after` checkpoint
// hits under the given engine and returns the sealed partial store and
// statistics, mirroring CheckPartial's injection protocol.
func partialEngineRun(t *testing.T, src string, base uint64, after int64, eng vm.Engine) (*core.Analysis, *facts.Store, string, bool) {
	t.Helper()
	mod, err := ir.Compile("fuzz.js", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(&faultinject.Plan{
		Site:     faultinject.SiteCoreStep,
		After:    after,
		Action:   faultinject.Cancel,
		OnCancel: cancel,
	})
	defer faultinject.Disarm()
	var out bytes.Buffer
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{
		Seed:       resolutionSeed(base, 0),
		Inputs:     resolveInputs(base, 0),
		Out:        &out,
		MaxSteps:   oracleMaxSteps,
		MaxFlushes: oracleMaxFlushes,
		Ctx:        ctx,
		Engine:     eng,
	})
	_, runErr := a.Run()
	faultinject.Disarm()
	if runErr == nil {
		return a, store, out.String(), false
	}
	if guard.ContextReason(runErr) == guard.DegradeNone {
		t.Fatalf("engine %s: aborted run failed with a non-cancellation error: %v", eng, runErr)
	}
	a.SealPartial()
	return a, store, out.String(), true
}

// TestSealedPartialIdenticalAcrossEngines cancels the same program at the
// same checkpoint under both engines and demands byte-identical sealed
// results. Because the engines count steps identically, the injected
// abort lands at the same program position, so the truncated fact stores,
// statistics, and output must match exactly — the partial-result
// counterpart of the complete-run engine oracle.
func TestSealedPartialIdenticalAcrossEngines(t *testing.T) {
	progs := []string{partialLongSrc}
	for seed := uint64(0); seed < 6; seed++ {
		progs = append(progs, workload.RandomProgram(GenConfigFor(seed)))
	}
	fired := 0
	for pi, src := range progs {
		for _, after := range []int64{1, 2, 4} {
			aT, sT, outT, abT := partialEngineRun(t, src, 77, after, vm.EngineTree)
			aB, sB, outB, abB := partialEngineRun(t, src, 77, after, vm.EngineBytecode)
			if abT != abB {
				t.Fatalf("prog %d after=%d: abort fired on one engine only: tree=%v bytecode=%v", pi, after, abT, abB)
			}
			if !abT {
				continue
			}
			fired++
			if d := compareEngines(aB, sB, outB, aT, sT, outT); d != "" {
				t.Errorf("prog %d after=%d: sealed partials differ: %s", pi, after, d)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no injected abort fired; the comparison never ran")
	}
}
