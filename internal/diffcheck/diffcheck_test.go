package diffcheck

import (
	"strings"
	"testing"

	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

func TestGenConfigForCyclesFeatures(t *testing.T) {
	var forIn, eval, proto, console int
	indet := map[int]int{}
	const n = 64
	for seed := uint64(0); seed < n; seed++ {
		cfg := GenConfigFor(seed)
		if cfg.Seed != seed {
			t.Fatalf("seed %d: cfg.Seed = %d", seed, cfg.Seed)
		}
		if cfg.WithForIn {
			forIn++
		}
		if cfg.WithEval {
			eval++
		}
		if cfg.WithProto {
			proto++
		}
		if cfg.WithConsole {
			console++
		}
		indet[cfg.IndetPercent]++
	}
	for name, c := range map[string]int{"forin": forIn, "eval": eval, "proto": proto, "console": console} {
		if c == 0 || c == n {
			t.Errorf("feature %s never toggles across %d seeds (on %d times)", name, n, c)
		}
	}
	for _, p := range []int{-1, 10, 25, 50} {
		if indet[p] == 0 {
			t.Errorf("indeterminacy rate %d never selected across %d seeds", p, n)
		}
	}
}

func TestResolveInputsDeterministic(t *testing.T) {
	a := resolveInputs(7, 3)
	b := resolveInputs(7, 3)
	for _, k := range []string{"a", "b", "c"} {
		av, aok := a[k]
		bv, bok := b[k]
		if !aok || !bok {
			t.Fatalf("input %q missing", k)
		}
		if av.Kind != bv.Kind {
			t.Errorf("input %q not deterministic: %v vs %v", k, av.Kind, bv.Kind)
		}
	}
	if resolutionSeed(7, 0) == resolutionSeed(7, 1) {
		t.Error("distinct resolutions must use distinct seeds")
	}
	if resolutionSeed(7, 0) == resolutionSeed(8, 0) {
		t.Error("distinct bases must use distinct seeds")
	}
}

func TestCheckSourceClean(t *testing.T) {
	checked, f := CheckSource(`
		var x = 1;
		var y = x + 2;
		var s = "" + y;
		if (Math.random() < 0.5) { x = x + 1; }
	`, 4, 1)
	if f != nil {
		t.Fatalf("clean program failed the oracle: %s", f)
	}
	if checked == 0 {
		t.Error("no determinate facts exercised")
	}
}

func TestCheckSourceRejectsAndCrashes(t *testing.T) {
	if _, f := CheckSource("var x = ;", 1, 1); f == nil || f.Kind != KindReject {
		t.Errorf("syntax error: got %v, want %s", f, KindReject)
	}
	if _, f := CheckSource("throw 1;", 1, 1); f == nil || f.Kind != KindCrash {
		t.Errorf("uncaught throw: got %v, want %s", f, KindCrash)
	}
	// The reduction budget turns non-terminating candidates into crashes.
	if _, f := checkSource("while (true) { var x = 1; }", 1, 1, reduceMaxSteps, reduceMaxFlushes, vm.EngineDefault); f == nil || f.Kind != KindCrash {
		t.Errorf("runaway loop under reduction budget: got %v, want %s", f, KindCrash)
	}
}

func TestSameFailurePredicate(t *testing.T) {
	crashes := SameFailure(KindCrash, 1, 1)
	if !crashes("throw 1;") {
		t.Error("predicate must accept a candidate with the same failure kind")
	}
	if crashes("var x = 1;") {
		t.Error("predicate must reject a clean candidate")
	}
	if crashes("var x = ;") {
		t.Error("predicate must reject a non-compiling candidate")
	}
}

func TestReduceMinimizes(t *testing.T) {
	src := "k1\nk2\na\nb\nc\nd\ne\nf\ng\nh\n"
	fails := func(cand string) bool {
		return strings.Contains(cand, "k1") && strings.Contains(cand, "k2")
	}
	got := Reduce(src, fails)
	if got != "k1\nk2\n" {
		t.Errorf("Reduce = %q, want the two key lines only", got)
	}
	// The reducer must never return a non-failing program.
	if !fails(got) {
		t.Error("reduced program no longer fails")
	}
}

func TestCheckSeedDeterministic(t *testing.T) {
	c1, f1 := CheckSeed(42, 3)
	c2, f2 := CheckSeed(42, 3)
	if c1 != c2 || (f1 == nil) != (f2 == nil) {
		t.Errorf("CheckSeed not deterministic: (%d,%v) vs (%d,%v)", c1, f1, c2, f2)
	}
}

func TestCampaignSmoke(t *testing.T) {
	rep := Run(Config{Seeds: 25, Resolutions: 3, BaseSeed: 1, Reduce: true})
	if rep.Programs != 25 || rep.Resolutions != 3 {
		t.Errorf("report shape: %+v", rep)
	}
	if rep.FactsChecked == 0 {
		t.Error("campaign exercised no facts")
	}
	for i := range rep.Failures {
		t.Errorf("campaign failure: %s\nminimized:\n%s", rep.Failures[i].String(), rep.Failures[i].Minimized)
	}
}

// TestGeneratedProgramsCompile: every generator configuration must produce
// compilable programs — KindReject from CheckSeed flags a generator bug.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := uint64(100); seed < 140; seed++ {
		src := workload.RandomProgram(GenConfigFor(seed))
		if _, f := CheckSource(src, 1, seed); f != nil && f.Kind == KindReject {
			t.Errorf("seed %d generated a non-compiling program: %s\n%s", seed, f.Detail, src)
		}
	}
}
