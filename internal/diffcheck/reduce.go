package diffcheck

import "strings"

// Reduce shrinks a failing program to a locally line-minimal reproducer
// with the ddmin delta-debugging algorithm (Zeller/Hildebrandt, as applied
// to compiler bugs by Regehr et al.): repeatedly remove line chunks at
// increasing granularity while stillFails keeps reporting the violation.
// stillFails must treat non-compiling candidates as not failing (the
// predicates built by SameFailure do), so the result always compiles.
func Reduce(src string, stillFails func(string) bool) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	n := 2
	for len(lines) >= 2 {
		chunk := (len(lines) + n - 1) / n
		removed := false
		for start := 0; start < len(lines); start += chunk {
			end := min(start+chunk, len(lines))
			cand := make([]string, 0, len(lines)-(end-start))
			cand = append(cand, lines[:start]...)
			cand = append(cand, lines[end:]...)
			if len(cand) > 0 && stillFails(strings.Join(cand, "\n")+"\n") {
				lines = cand
				n = max(n-1, 2)
				removed = true
				break
			}
		}
		if !removed {
			if chunk <= 1 {
				break
			}
			n = min(n*2, len(lines))
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
