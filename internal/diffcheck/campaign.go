package diffcheck

import (
	"context"
	"errors"
	"time"

	"determinacy/internal/batch"
	"determinacy/internal/guard"
	"determinacy/internal/vm"
)

// Config parameterizes a fuzz campaign.
type Config struct {
	// Seeds is the number of generated programs per round (default 200).
	Seeds int
	// Resolutions is the number of concrete replays per program, each under
	// a different resolution of the indeterminate inputs (default 8).
	Resolutions int
	// BaseSeed is the first generator seed; program i uses BaseSeed+i.
	BaseSeed uint64
	// Workers bounds campaign concurrency (0 = GOMAXPROCS).
	Workers int
	// Reduce minimizes every failing program with the delta-debugging
	// reducer before reporting it.
	Reduce bool
	// Ctx stops the campaign cooperatively: in-flight seeds finish, the
	// rest are skipped (counted in Report.Skipped). nil means no
	// cancellation.
	Ctx context.Context
	// Engine is the primary execution engine for the campaign's runs
	// (bytecode when zero); the per-seed engine oracle always runs the
	// opposite engine for comparison, so both are exercised either way.
	Engine vm.Engine
	// FactCacheDir, when non-empty, additionally runs the memoization
	// oracle for every seed: each program is analyzed cold (populating
	// the fact DB under this directory) and warm (served from it, on the
	// opposite engine), and the two runs must be byte-identical — see
	// KindMemoDiverge. The cold engine alternates with seed parity so
	// both cold/warm engine orders are exercised.
	FactCacheDir string
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 200
	}
	if c.Resolutions <= 0 {
		c.Resolutions = 8
	}
	return c
}

// Report summarizes a campaign; it marshals directly as the detfuzz JSON
// output.
type Report struct {
	Programs     int       `json:"programs"`
	Resolutions  int       `json:"resolutions"`
	FactsChecked int       `json:"facts_checked"`
	Failures     []Failure `json:"failures"`
	// Skipped counts seeds never checked because Config.Ctx was cancelled
	// mid-campaign.
	Skipped int `json:"skipped,omitempty"`
	// MemoChecks counts cold/warm memoization-oracle comparisons (two per
	// seed when Config.FactCacheDir is set: a complete leg and a
	// budget-limited partial leg).
	MemoChecks int   `json:"memo_checks,omitempty"`
	ElapsedMS  int64 `json:"elapsed_ms"`
}

// Run fans the campaign's programs out across the batch worker pool and
// collects every oracle violation.
func Run(cfg Config) Report {
	cfg = cfg.withDefaults()
	pool := batch.New(cfg.Workers)
	return runOn(pool, cfg)
}

// RunFor repeats campaign rounds, advancing the seed range each time,
// until the deadline passes (at least one round always runs).
func RunFor(cfg Config, d time.Duration) Report {
	cfg = cfg.withDefaults()
	pool := batch.New(cfg.Workers)
	deadline := time.Now().Add(d)
	total := Report{Resolutions: cfg.Resolutions}
	start := time.Now()
	for {
		rep := runOn(pool, cfg)
		total.Programs += rep.Programs
		total.FactsChecked += rep.FactsChecked
		total.MemoChecks += rep.MemoChecks
		total.Failures = append(total.Failures, rep.Failures...)
		total.Skipped += rep.Skipped
		cfg.BaseSeed += uint64(cfg.Seeds)
		if !time.Now().Before(deadline) {
			break
		}
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			break
		}
	}
	total.ElapsedMS = time.Since(start).Milliseconds()
	return total
}

func runOn(pool *batch.Pool, cfg Config) Report {
	start := time.Now()
	type outcome struct {
		checked    int
		memoChecks int
		fail       *Failure
	}
	outs, qs := batch.MapCtx(cfg.Ctx, pool, cfg.Seeds, func(i int) outcome {
		seed := cfg.BaseSeed + uint64(i)
		checked, f := CheckSeedEngine(seed, cfg.Resolutions, cfg.Engine)
		o := outcome{checked: checked, fail: f}
		if cfg.FactCacheDir != "" && o.fail == nil {
			// Alternate the cold engine with seed parity so the oracle
			// exercises both cold/warm engine pairings.
			cold := cfg.Engine
			if i%2 == 1 {
				if cold.Bytecode() {
					cold = vm.EngineTree
				} else {
					cold = vm.EngineBytecode
				}
			}
			o.memoChecks = 2
			o.fail = CheckMemoSeed(seed, cfg.FactCacheDir, cold)
		}
		return o
	})
	rep := Report{Programs: cfg.Seeds, Resolutions: cfg.Resolutions}
	for _, q := range qs {
		var re *guard.RunError
		if errors.As(q.Err, &re) {
			// A panicking seed is itself an oracle violation: the analysis
			// must never crash on a generated program.
			outs[q.Index].fail = &Failure{Kind: KindCrash, GenSeed: cfg.BaseSeed + uint64(q.Index),
				Resolution: -1, Detail: "panic: " + q.Err.Error()}
		} else {
			rep.Skipped++
		}
	}
	for _, o := range outs {
		rep.FactsChecked += o.checked
		rep.MemoChecks += o.memoChecks
		if o.fail != nil {
			// Memo-oracle failures depend on fact-DB state, which the
			// stateless reduction predicate cannot reproduce.
			if cfg.Reduce && o.fail.Kind != KindMemoDiverge {
				o.fail.Minimized = Reduce(o.fail.Program,
					SameFailure(o.fail.Kind, cfg.Resolutions, o.fail.GenSeed))
			}
			rep.Failures = append(rep.Failures, *o.fail)
		}
	}
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep
}
