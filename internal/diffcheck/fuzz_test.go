package diffcheck

import (
	"os"
	"path/filepath"
	"testing"

	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// seedCorpus adds generated programs plus every checked-in reproducer, so
// the mutator starts from inputs that exercise the interesting machinery
// (indeterminate branches, for-in, eval, prototype mutation).
func seedCorpus(f *testing.F) {
	f.Helper()
	for seed := uint64(1); seed <= 12; seed++ {
		f.Add(workload.RandomProgram(GenConfigFor(seed)), seed)
	}
	files, _ := filepath.Glob(filepath.Join("testdata", "*.js"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), uint64(1))
	}
}

// FuzzSoundness feeds arbitrary programs through the soundness oracle.
// Mutated inputs routinely fail to compile, throw, or blow the (tight)
// execution budget — those are skipped; what must never happen is an
// unsound fact, a cross-run fact conflict, or an interp/core divergence.
func FuzzSoundness(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string, base uint64) {
		// Alternate the primary engine with the input seed; the engine
		// oracle inside checkSource always runs the opposite one, so
		// every input cross-checks tree against bytecode both ways.
		eng := vm.EngineBytecode
		if base%2 == 1 {
			eng = vm.EngineTree
		}
		_, fail := checkSource(src, 3, base, reduceMaxSteps, reduceMaxFlushes, eng)
		if fail == nil {
			return
		}
		switch fail.Kind {
		case KindReject, KindCrash:
			t.Skip()
		default:
			t.Fatalf("oracle violation: %s", fail)
		}
	})
}

// FuzzInterpDiff drives the differential interp-vs-core comparison over
// fully determinate generated programs: with no indeterminate inputs at
// all, the two interpreters must agree exactly — on console output, final
// global state, and every recorded fact — and nothing may crash.
func FuzzInterpDiff(f *testing.F) {
	for seed := uint64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		cfg := GenConfigFor(seed)
		cfg.IndetPercent = -1 // force full determinacy
		src := workload.RandomProgram(cfg)
		if _, fail := CheckSource(src, 1, seed); fail != nil {
			t.Fatalf("determinate program failed the oracle: %s\n%s", fail, src)
		}
	})
}
