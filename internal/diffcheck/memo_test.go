package diffcheck

import (
	"os"
	"strconv"
	"testing"

	"determinacy/internal/vm"
)

// memoCampaignSeeds returns how many seeds the memoization campaign
// covers: MEMO_CAMPAIGN_RUNS when set (CI runs 1000+), a moderate default
// otherwise, and a handful under -short.
func memoCampaignSeeds(t *testing.T) int {
	if s := os.Getenv("MEMO_CAMPAIGN_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad MEMO_CAMPAIGN_RUNS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 48
}

// TestMemoCampaign is the memoization oracle's seeded campaign: every
// generated program runs cold and warm (fresh cache handle, opposite
// engine) against one shared fact DB, plus a budget-limited partial leg,
// and must be byte-identical with zero KindMemoDiverge findings. Seeds
// fan out across the campaign pool, so under -race this also hammers the
// shared on-disk DB from many goroutines.
func TestMemoCampaign(t *testing.T) {
	seeds := memoCampaignSeeds(t)
	dir := t.TempDir()
	rep := Run(Config{
		Seeds:        seeds,
		Resolutions:  1,
		BaseSeed:     1,
		FactCacheDir: dir,
		Engine:       vm.EngineBytecode,
	})
	if want := 2 * seeds; rep.MemoChecks != want {
		t.Errorf("memo checks = %d, want %d", rep.MemoChecks, want)
	}
	for i := range rep.Failures {
		f := &rep.Failures[i]
		t.Errorf("failure %d: %s\nprogram:\n%s", i+1, f.String(), f.Program)
		if i >= 4 {
			t.Fatalf("more failures elided (%d total)", len(rep.Failures))
		}
	}
}

// TestMemoSeedDirect pins a handful of specific seeds through
// CheckMemoSeed on both cold-engine orders, independent of the campaign
// plumbing.
func TestMemoSeedDirect(t *testing.T) {
	dir := t.TempDir()
	for seed := uint64(100); seed < 106; seed++ {
		eng := vm.EngineBytecode
		if seed%2 == 1 {
			eng = vm.EngineTree
		}
		if f := CheckMemoSeed(seed, dir, eng); f != nil {
			t.Fatalf("seed %d: %s\nprogram:\n%s", seed, f.String(), f.Program)
		}
	}
}
