package diffcheck

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/soundcheck"
)

// CheckPartial is the graceful-degradation oracle: it aborts an
// instrumented run mid-execution (cancelling its context after `after`
// checkpoint hits, via the fault injector) and verifies that the facts the
// truncated run still reports hold in every complete concrete replay.
// This is the executable form of the partial-result soundness claim: a run
// stopped by deadline or cancellation flushes conservatively (§4.3), so
// the surviving facts are exactly as trustworthy as a complete run's.
//
// It returns the number of fact checks exercised, whether the injected
// abort actually fired (a short program can finish before `after`
// checkpoints accumulate), and the first violation found. The injector is
// process-global, so callers must not run CheckPartial concurrently with
// other injection users.
func CheckPartial(src string, resolutions int, base uint64, after int64) (checked int, aborted bool, fail *Failure) {
	if resolutions < 1 {
		resolutions = 1
	}
	mod, err := ir.Compile("fuzz.js", src)
	if err != nil {
		return 0, false, &Failure{Kind: KindReject, Resolution: -1, Detail: "compile: " + err.Error(), Program: src}
	}
	static := ir.ID(mod.NumInstrs)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(&faultinject.Plan{
		Site:     faultinject.SiteCoreStep,
		After:    after,
		Action:   faultinject.Cancel,
		OnCancel: cancel,
	})
	defer faultinject.Disarm()

	store := facts.NewStore()
	a := core.New(mod, store, core.Options{
		Seed:       resolutionSeed(base, 0),
		Inputs:     resolveInputs(base, 0),
		Out:        io.Discard,
		MaxSteps:   oracleMaxSteps,
		MaxFlushes: oracleMaxFlushes,
		Ctx:        ctx,
	})
	_, runErr := a.Run()
	faultinject.Disarm()
	switch {
	case runErr == nil:
		// Program finished before the abort fired; nothing partial to check.
		return 0, false, nil
	case guard.ContextReason(runErr) == guard.DegradeNone:
		return 0, false, &Failure{Kind: KindCrash, Resolution: -1,
			Detail: "aborted run failed with a non-cancellation error: " + runErr.Error(), Program: src}
	}
	// Seal like the public API does before exposing a partial result.
	a.SealPartial()

	rstore := store.Restrict(static)
	for r := 0; r < resolutions; r++ {
		modR, err := ir.Compile("fuzz.js", src)
		if err != nil {
			return checked, true, &Failure{Kind: KindReject, Resolution: r, Detail: "recompile: " + err.Error(), Program: src}
		}
		var out bytes.Buffer
		it := interp.New(modR, interp.Options{
			Seed:     resolutionSeed(base, r),
			Inputs:   resolveInputs(base, r),
			Out:      &out,
			MaxSteps: oracleMaxSteps,
		})
		ck := soundcheck.New(rstore)
		ck.Attach(it)
		if _, err := it.Run(); err != nil {
			return checked, true, &Failure{Kind: KindCrash, Resolution: r, Detail: "concrete run: " + err.Error(), Program: src}
		}
		checked += ck.Checked
		if len(ck.Mismatches) > 0 {
			return checked, true, &Failure{Kind: KindUnsound, Resolution: r,
				Detail:  fmt.Sprintf("partial facts (aborted after %d checkpoints) violated:\n%s", after, ck.Report(modR)),
				Program: src}
		}
	}
	return checked, true, nil
}
