package diffcheck

import (
	"bytes"
	"fmt"
	"strings"

	"determinacy"
	"determinacy/internal/factcache"
	"determinacy/internal/vm"
	"determinacy/internal/workload"
)

// KindMemoDiverge: a warm (memoized) analysis differed from the cold run
// that populated the fact DB — on facts, statistics, console output, or
// partial/degraded status — or the cache was populated by a run that must
// never populate it (partial or errored). The memoization layer must be
// semantically invisible: byte-identical results, cold or warm, on either
// engine.
const KindMemoDiverge Kind = "memo-divergence"

// memoTightMaxSteps forces the oracle's second leg into a budget-limited
// partial run, checking that sealed partials are byte-stable and never
// reach the fact DB. Small generated programs may still complete under
// it; the leg then degenerates into a second complete-run check, which
// is harmless.
const memoTightMaxSteps = 400

// CheckMemoSeed runs the memoization oracle for one generated program
// against the fact DB in dir: a cold analysis on `eng` populates the
// cache, then a warm analysis through a fresh cache handle (simulating a
// new process) on the OPPOSITE engine must produce byte-identical facts,
// statistics, output, and partial status. A second leg repeats the pair
// under a tight step budget so the run seals partial: the pair must
// still agree and the partial run must never populate the DB.
func CheckMemoSeed(genSeed uint64, dir string, eng vm.Engine) *Failure {
	src := workload.RandomProgram(GenConfigFor(genSeed))
	if f := checkMemoSource(src, genSeed, dir, eng); f != nil {
		f.GenSeed = genSeed
		return f
	}
	return nil
}

func checkMemoSource(src string, base uint64, dir string, eng vm.Engine) *Failure {
	other := vm.EngineTree
	if !eng.Bytecode() {
		other = vm.EngineBytecode
	}
	fail := func(detail string) *Failure {
		return &Failure{Kind: KindMemoDiverge, Resolution: -1, Detail: detail, Program: src}
	}
	run := func(e vm.Engine, maxSteps int, fc *determinacy.FactCache) (*determinacy.Result, []byte, error) {
		var out bytes.Buffer
		res, err := determinacy.Analyze(src, determinacy.Options{
			Seed:       resolutionSeed(base, 0),
			Inputs:     resolveInputs(base, 0),
			Out:        &out,
			MaxSteps:   maxSteps,
			MaxFlushes: oracleMaxFlushes,
			Engine:     e,
			FactCache:  fc,
		})
		return res, out.Bytes(), err
	}

	for _, leg := range []struct {
		name     string
		maxSteps int
	}{{"complete", oracleMaxSteps}, {"partial", memoTightMaxSteps}} {
		fcCold, err := determinacy.OpenFactCache(dir)
		if err != nil {
			return &Failure{Kind: KindCrash, Resolution: -1, Detail: "open fact cache: " + err.Error(), Program: src}
		}
		resC, outC, errC := run(eng, leg.maxSteps, fcCold)
		// A fresh handle for the warm leg simulates a new process: the hit
		// must come off disk, not from the cold handle's in-memory LRU.
		fcWarm, err := determinacy.OpenFactCache(dir)
		if err != nil {
			return &Failure{Kind: KindCrash, Resolution: -1, Detail: "open fact cache: " + err.Error(), Program: src}
		}
		resW, outW, errW := run(other, leg.maxSteps, fcWarm)

		if (errC == nil) != (errW == nil) || (errC != nil && errC.Error() != errW.Error()) {
			return fail(fmt.Sprintf("%s leg: cold and warm errors differ:\ncold: %v\nwarm: %v", leg.name, errC, errW))
		}
		cold := fcCold.Internal().Stats()
		warm := fcWarm.Internal().Stats()
		if errC != nil {
			if cold.Stores != 0 {
				return fail(fmt.Sprintf("%s leg: errored run populated the fact DB (%d stores)", leg.name, cold.Stores))
			}
			if !bytes.Equal(outC, outW) {
				return fail(fmt.Sprintf("%s leg: output before the error differs:\ncold: %q\nwarm: %q", leg.name, outC, outW))
			}
			continue
		}
		coldR, warmR := memoRender(resC, outC), memoRender(resW, outW)
		if coldR != warmR {
			return fail(fmt.Sprintf("%s leg (cold %v, warm %v): runs differ at %s", leg.name, eng, other, firstDiff(coldR, warmR)))
		}
		if resC.Partial {
			if cold.Stores != 0 {
				return fail(fmt.Sprintf("%s leg: partial run populated the fact DB (%d stores)", leg.name, cold.Stores))
			}
			if warm.Hits != 0 {
				return fail(fmt.Sprintf("%s leg: warm run hit the cache even though the cold run was partial", leg.name))
			}
		} else if cold.Stores > 0 && warm.Hits != 1 {
			return fail(fmt.Sprintf("%s leg: warm run missed the cache after a complete cold run (hits=%d misses=%d invalidations=%d)",
				leg.name, warm.Hits, warm.Misses, warm.Invalidations))
		} else if cold.Stores == 0 && cold.Skips == 0 {
			return fail(fmt.Sprintf("%s leg: complete run neither populated the fact DB nor recorded a skip", leg.name))
		}

		// Remote-warm leg: a node with an EMPTY local DB but a remote tier
		// serving dir's records (the sharded cluster's L3) must also answer
		// byte-identically — the records survive export, transfer, and
		// re-validated import with nothing lost or reinterpreted.
		if leg.name == "complete" && !resC.Partial && cold.Stores > 0 {
			fcSrc, err := determinacy.OpenFactCache(dir)
			if err != nil {
				return &Failure{Kind: KindCrash, Resolution: -1, Detail: "open fact cache: " + err.Error(), Program: src}
			}
			fcRemote, err := determinacy.OpenFactCache(dir + "-remoteleg")
			if err != nil {
				return &Failure{Kind: KindCrash, Resolution: -1, Detail: "open remote-leg fact cache: " + err.Error(), Program: src}
			}
			fcRemote.Internal().WithRemote(exportRemote{src: fcSrc.Internal()})
			resR, outR, errR := run(other, leg.maxSteps, fcRemote)
			if errR != nil {
				return fail(fmt.Sprintf("remote-warm leg errored where cold succeeded: %v", errR))
			}
			if remoteR := memoRender(resR, outR); remoteR != coldR {
				return fail(fmt.Sprintf("remote-warm leg (cold %v, remote %v): runs differ at %s", eng, other, firstDiff(coldR, remoteR)))
			}
			rst := fcRemote.Internal().Stats()
			if rst.RemoteHits != 1 || rst.RemoteInvalid != 0 {
				return fail(fmt.Sprintf("remote-warm leg: remote_hits=%d remote_invalid=%d, want 1/0", rst.RemoteHits, rst.RemoteInvalid))
			}
		}
	}
	return nil
}

// exportRemote adapts one cache's peer-facing record export into another
// cache's remote tier — the in-process stand-in for a cluster peer's
// /v1/cluster/cache endpoint.
type exportRemote struct{ src *factcache.Cache }

func (r exportRemote) Fetch(keyID, routeKey string) ([]byte, bool) {
	return r.src.ExportRecords(keyID)
}

// memoRender flattens everything a caller can observe about a run into
// one string, so cold and warm runs can be compared byte-for-byte.
func memoRender(res *determinacy.Result, out []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "partial=%v degraded=%s handlers=%d\n", res.Partial, res.Degraded, res.HandlersRan)
	fmt.Fprintf(&b, "stats=%+v\n", res.Stats)
	fmt.Fprintf(&b, "out=%q\n", out)
	for _, f := range res.Store().Sorted() {
		fmt.Fprintf(&b, "%d|%s|%d det=%v hits=%d val=%v\n", f.Instr, f.Ctx.Key(), f.Seq, f.Det, f.Hits, f.Val)
	}
	return b.String()
}

// firstDiff locates the first line where two renders diverge.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\ncold: %s\nwarm: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length: cold %d lines, warm %d lines", len(la), len(lb))
}
