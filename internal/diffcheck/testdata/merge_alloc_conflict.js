// detfuzz seed 878, minimized: two instrumented runs under different
// resolutions of __input("a") take different arms of the branch below and
// allocate a different number of objects, so a later determinate object
// literal carries a different allocation number in each run. Store.Merge
// used to flag that as a fact conflict even though allocation numbering is
// run-local (the soundness theorem's address bijection is per run pair).
try {
  if ((n2 < n2)) { throw 39; }
  function f4() {
    if ((36 < n2)) {
    }
  }
} catch (e3) {
  n2 = e3 + 1;
}
var n8 = Math.random();
if ((40 > __input("a"))) {
  var o9 = {p0: Math.random()};
} else {
  for (var i10 = 0; i10 < 2; i10++) {
    var o11 = {p0: i10, p1: (i10 + n8), p2: __input("b")};
  }
}
for (var i13 = 0; i13 < 2; i13++) {
  if (((n2 >= n2) || (__input("c") > 36))) {
    function f18() {
    }
  }
}
