// detfuzz seed 1799, minimized: the property written to o18 below is
// created under an indeterminate branch, so it exists only in executions
// that take the branch. The analysis used to record the for-in key
// sequence as determinate facts, which replays skipping the branch
// violated (predicted "al", concrete run enumerated other keys).
var n1 = __input("b");
var n2 = n1;
if ((!(n1 === n2))) {
  function f12() {
  }
}
function C16(a0) {
}
var n17 = (-((n2 < 37) ? 46 : n2));
var o18 = new C16(Math.floor(77));
if ((63 > 40)) {
  if (((n1 >= 46) || (__input("a") >= 73))) {
    var s19 = "alpha".substr(0, 2);
    o18[s19] = n17;
  }
}
function f21() {
  function f22(a0, a1) {
  }
  function C32(a0) {
  }
}
var s41 = "";
for (var k40 in o18) { s41 = s41 + k40; }
