// ToNumber on a plain object (not an array, function, or error) must yield
// NaN via "[object Object]". The concrete interpreter instead recursed
// forever (toPrimitive returns plain objects unchanged, ToNumber called
// itself on the result), and the instrumented one fed the object through
// prim(), fabricating a concrete object value with a nil pointer and
// crashing in toPrimitive. Found by detfuzz (fuzz crasher 23b97f82c0713a4e,
// minimized from `{00:000}%0` in a for-loop update clause).
var o = {a: 1};
var n = o % 2;
var m = o - 1;
var p = -o;
var q = (o < 5);
var r = (5 >= o);
__observe("n", "" + n);
__observe("m", "" + m);
__observe("p", "" + p);
__observe("q", "" + q);
__observe("r", "" + r);
