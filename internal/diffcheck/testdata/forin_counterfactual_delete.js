// Distilled while fixing the forin_indet_branch_key bug: a delete inside a
// counterfactually executed branch (concretely false condition) was undone
// in the property map but not in the key-order slice, leaving the restored
// property invisible to for-in — the instrumented run then computed keys
// "a" (determinate!) where every concrete run computes "ab".
var o = {a: 1, b: 2};
if (Math.random() > 2) { delete o.b; }
var keys = "";
for (var k in o) { keys = keys + k; }
__observe("keys", keys);
