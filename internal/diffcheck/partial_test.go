package diffcheck

import (
	"testing"

	"determinacy/internal/workload"
)

// partialLongSrc guarantees the injected abort fires: the indeterminate
// branch makes the prefix facts genuinely at risk (another resolution takes
// the branch), and the trailing loop supplies enough steps that even a
// one-checkpoint abort lands mid-run.
const partialLongSrc = `
var a = 1;
var o = {p: "q"};
if (Math.random() < 0.5) { o.p = "r"; a = 2; }
var i = 0;
while (i < 20000) { o.n = i; i = i + 1; }
console.log(a + ":" + o.p);
`

// TestCheckPartialAbortFires pins the harness itself: on a long program the
// injected cancellation must actually truncate the run, and the surviving
// facts must hold in every concrete replay.
func TestCheckPartialAbortFires(t *testing.T) {
	for _, after := range []int64{1, 2, 4} {
		checked, aborted, fail := CheckPartial(partialLongSrc, 4, 77, after)
		if fail != nil {
			t.Fatalf("after=%d: %v", after, fail)
		}
		if !aborted {
			t.Fatalf("after=%d: abort never fired on a %d-step program", after, 20000)
		}
		if checked == 0 {
			t.Errorf("after=%d: truncated run produced no checkable facts", after)
		}
	}
}

// TestCheckPartialSoundOnGeneratedPrograms is the injected-abort
// counterpart of the differential fuzzer: across generated programs and
// several abort points, a run truncated by cancellation must never emit a
// fact that a complete concrete execution contradicts. Programs short
// enough to finish before the abort fires contribute nothing and that is
// fine — the handcrafted case above guarantees fired-abort coverage.
func TestCheckPartialSoundOnGeneratedPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	totalChecked, fired := 0, 0
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		src := workload.RandomProgram(GenConfigFor(seed))
		for _, after := range []int64{1, 3} {
			checked, aborted, fail := CheckPartial(src, 3, seed, after)
			if fail != nil {
				t.Errorf("seed %d after=%d: %v", seed, after, fail)
			}
			totalChecked += checked
			if aborted {
				fired++
			}
		}
	}
	t.Logf("partial-soundness sweep: %d aborts fired, %d fact checks", fired, totalChecked)
}
