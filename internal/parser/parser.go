// Package parser builds mini-JS abstract syntax trees from source text.
//
// The grammar is a subset of ECMAScript 5.1 covering everything the paper's
// examples and case studies exercise: function declarations and expressions,
// closures, object/array literals, prototype-based construction with new,
// static and computed property accesses, the full expression operator set,
// if/while/do/for/for-in/switch, try/catch/finally, and eval (which is just
// a call to the global eval binding; the interpreters give it its meaning).
package parser

import (
	"errors"
	"fmt"

	"determinacy/internal/ast"
	"determinacy/internal/lexer"
)

// ErrDepth is the sentinel category of nesting-depth syntax errors, so
// callers can tell resource-limit rejections from plain syntax errors
// with errors.Is through every API layer (the MaxDepth guard exists to
// turn adversarial inputs into errors instead of stack overflows).
var ErrDepth = errors.New("parser: nesting depth limit exceeded")

// Error is a syntax error with a source position.
type Error struct {
	Pos lexer.Pos
	Msg string
	// Err, when non-nil, is the error's sentinel category (ErrDepth).
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Unwrap exposes the sentinel category to errors.Is chains.
func (e *Error) Unwrap() error { return e.Err }

// Parse parses src and returns the program. file is a display name used in
// diagnostics.
func Parse(file, src string) (*ast.Program, error) {
	l := lexer.New(src)
	toks := l.All()
	if err := l.Err(); err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{Source: src, File: file}
	err := p.catching(func() {
		for !p.at(lexer.EOF, "") {
			prog.Body = append(prog.Body, p.statement())
		}
	})
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse but panics on error; for tests and embedded programs.
func MustParse(file, src string) *ast.Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(err)
	}
	return prog
}

// ParseExpr parses a single expression (used by the eval eliminator when
// splicing evaluated strings).
func ParseExpr(src string) (ast.Expr, error) {
	l := lexer.New(src)
	toks := l.All()
	if err := l.Err(); err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var e ast.Expr
	err := p.catching(func() {
		e = p.assignExpr()
		if !p.at(lexer.EOF, "") {
			p.fail(p.cur().Pos, "unexpected %s after expression", p.cur())
		}
	})
	return e, err
}

// MaxDepth bounds syntactic nesting (blocks inside blocks, parenthesized
// expressions, unary chains). The recursive-descent parser spends several Go
// stack frames per level, so without a limit adversarial inputs like
// strings.Repeat("(", 1e6) crash the process with a stack overflow instead
// of returning a syntax error. 512 levels is far beyond any program the
// generator or the paper's case studies produce.
const MaxDepth = 512

type parser struct {
	toks  []lexer.Token
	pos   int
	depth int
	err   error
}

// enter counts one level of statement/expression nesting; paired with leave.
func (p *parser) enter() {
	p.depth++
	if p.depth > MaxDepth {
		e := &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf("nesting exceeds %d levels", MaxDepth), Err: ErrDepth}
		if p.err == nil {
			p.err = e
		}
		panic(e)
	}
}

func (p *parser) leave() { p.depth-- }

func (p *parser) catching(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*Error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }

func (p *parser) lookahead(n int) lexer.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) fail(pos lexer.Pos, format string, args ...any) {
	e := &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	if p.err == nil {
		p.err = e
	}
	panic(e)
}

// at reports whether the current token has the given kind and, when lit is
// non-empty, the given literal.
func (p *parser) at(k lexer.Kind, lit string) bool {
	t := p.cur()
	return t.Kind == k && (lit == "" || t.Lit == lit)
}

func (p *parser) atPunct(lit string) bool   { return p.at(lexer.Punct, lit) }
func (p *parser) atKeyword(lit string) bool { return p.at(lexer.Keyword, lit) }

// eat consumes the current token if it matches, reporting success.
func (p *parser) eat(k lexer.Kind, lit string) bool {
	if p.at(k, lit) {
		p.next()
		return true
	}
	return false
}

// expect consumes a token that must match or fails.
func (p *parser) expect(k lexer.Kind, lit string) lexer.Token {
	if !p.at(k, lit) {
		p.fail(p.cur().Pos, "expected %q, found %s", lit, p.cur())
	}
	return p.next()
}

// semicolon consumes an optional statement-terminating semicolon. Mini-JS
// does not implement automatic semicolon insertion in full; instead,
// semicolons are simply optional before } and EOF, which covers idiomatic
// code.
func (p *parser) semicolon() {
	if p.eat(lexer.Punct, ";") {
		return
	}
	if p.atPunct("}") || p.at(lexer.EOF, "") {
		return
	}
	p.fail(p.cur().Pos, "expected ';', found %s", p.cur())
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) statement() ast.Stmt {
	p.enter()
	defer p.leave()
	t := p.cur()
	switch {
	case p.atKeyword("var"):
		s := p.varDecl()
		p.semicolon()
		return s
	case p.atKeyword("function"):
		return p.functionDecl()
	case p.atPunct("{"):
		return p.blockStmt()
	case p.atKeyword("if"):
		return p.ifStmt()
	case p.atKeyword("while"):
		return p.whileStmt()
	case p.atKeyword("do"):
		return p.doWhileStmt()
	case p.atKeyword("for"):
		return p.forStmt()
	case p.atKeyword("return"):
		p.next()
		s := &ast.Return{P: t.Pos}
		if !p.atPunct(";") && !p.atPunct("}") && !p.at(lexer.EOF, "") {
			s.Value = p.expression()
		}
		p.semicolon()
		return s
	case p.atKeyword("break"):
		p.next()
		p.semicolon()
		return &ast.Break{P: t.Pos}
	case p.atKeyword("continue"):
		p.next()
		p.semicolon()
		return &ast.Continue{P: t.Pos}
	case p.atKeyword("throw"):
		p.next()
		v := p.expression()
		p.semicolon()
		return &ast.Throw{Value: v, P: t.Pos}
	case p.atKeyword("try"):
		return p.tryStmt()
	case p.atKeyword("switch"):
		return p.switchStmt()
	case p.atPunct(";"):
		p.next()
		return &ast.Empty{P: t.Pos}
	default:
		e := p.expression()
		p.semicolon()
		return &ast.ExprStmt{X: e, P: t.Pos}
	}
}

func (p *parser) varDecl() *ast.VarDecl {
	t := p.expect(lexer.Keyword, "var")
	d := &ast.VarDecl{P: t.Pos}
	for {
		name := p.identName()
		var init ast.Expr
		if p.eat(lexer.Punct, "=") {
			init = p.assignExpr()
		}
		d.Decls = append(d.Decls, ast.Declarator{Name: name, Init: init})
		if !p.eat(lexer.Punct, ",") {
			return d
		}
	}
}

func (p *parser) identName() string {
	t := p.cur()
	if t.Kind != lexer.Ident {
		p.fail(t.Pos, "expected identifier, found %s", t)
	}
	p.next()
	return t.Lit
}

func (p *parser) functionDecl() ast.Stmt {
	t := p.cur()
	fn := p.functionLit(true)
	return &ast.FunctionDecl{Fn: fn, P: t.Pos}
}

// functionLit parses a function literal at the "function" keyword. When
// nameRequired, a name must be present (declaration position).
func (p *parser) functionLit(nameRequired bool) *ast.FunctionLit {
	t := p.expect(lexer.Keyword, "function")
	fn := &ast.FunctionLit{P: t.Pos}
	if p.cur().Kind == lexer.Ident {
		fn.Name = p.identName()
	} else if nameRequired {
		p.fail(p.cur().Pos, "expected function name, found %s", p.cur())
	}
	p.expect(lexer.Punct, "(")
	for !p.atPunct(")") {
		fn.Params = append(fn.Params, p.identName())
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	p.expect(lexer.Punct, "{")
	for !p.atPunct("}") && !p.at(lexer.EOF, "") {
		fn.Body = append(fn.Body, p.statement())
	}
	p.expect(lexer.Punct, "}")
	return fn
}

func (p *parser) blockStmt() *ast.Block {
	t := p.expect(lexer.Punct, "{")
	b := &ast.Block{P: t.Pos}
	for !p.atPunct("}") && !p.at(lexer.EOF, "") {
		b.Body = append(b.Body, p.statement())
	}
	p.expect(lexer.Punct, "}")
	return b
}

func (p *parser) ifStmt() ast.Stmt {
	t := p.expect(lexer.Keyword, "if")
	p.expect(lexer.Punct, "(")
	test := p.expression()
	p.expect(lexer.Punct, ")")
	cons := p.statement()
	var alt ast.Stmt
	if p.eat(lexer.Keyword, "else") {
		alt = p.statement()
	}
	return &ast.If{Test: test, Cons: cons, Alt: alt, P: t.Pos}
}

func (p *parser) whileStmt() ast.Stmt {
	t := p.expect(lexer.Keyword, "while")
	p.expect(lexer.Punct, "(")
	test := p.expression()
	p.expect(lexer.Punct, ")")
	body := p.statement()
	return &ast.While{Test: test, Body: body, P: t.Pos}
}

func (p *parser) doWhileStmt() ast.Stmt {
	t := p.expect(lexer.Keyword, "do")
	body := p.statement()
	p.expect(lexer.Keyword, "while")
	p.expect(lexer.Punct, "(")
	test := p.expression()
	p.expect(lexer.Punct, ")")
	p.semicolon()
	return &ast.DoWhile{Body: body, Test: test, P: t.Pos}
}

func (p *parser) forStmt() ast.Stmt {
	t := p.expect(lexer.Keyword, "for")
	p.expect(lexer.Punct, "(")

	// for (var x in e) and for (x in e)
	if p.atKeyword("var") && p.lookahead(1).Kind == lexer.Ident && p.lookahead(2).Kind == lexer.Keyword && p.lookahead(2).Lit == "in" {
		p.next()
		name := p.identName()
		p.expect(lexer.Keyword, "in")
		obj := p.expression()
		p.expect(lexer.Punct, ")")
		body := p.statement()
		return &ast.ForIn{Name: name, Declare: true, Obj: obj, Body: body, P: t.Pos}
	}
	if p.cur().Kind == lexer.Ident && p.lookahead(1).Kind == lexer.Keyword && p.lookahead(1).Lit == "in" {
		name := p.identName()
		p.expect(lexer.Keyword, "in")
		obj := p.expression()
		p.expect(lexer.Punct, ")")
		body := p.statement()
		return &ast.ForIn{Name: name, Declare: false, Obj: obj, Body: body, P: t.Pos}
	}

	f := &ast.For{P: t.Pos}
	if !p.atPunct(";") {
		if p.atKeyword("var") {
			f.Init = p.varDecl()
		} else {
			e := p.expression()
			f.Init = &ast.ExprStmt{X: e, P: e.Pos()}
		}
	}
	p.expect(lexer.Punct, ";")
	if !p.atPunct(";") {
		f.Test = p.expression()
	}
	p.expect(lexer.Punct, ";")
	if !p.atPunct(")") {
		f.Update = p.expression()
	}
	p.expect(lexer.Punct, ")")
	f.Body = p.statement()
	return f
}

func (p *parser) tryStmt() ast.Stmt {
	t := p.expect(lexer.Keyword, "try")
	try := &ast.Try{P: t.Pos}
	try.Block = p.blockStmt()
	if p.eat(lexer.Keyword, "catch") {
		p.expect(lexer.Punct, "(")
		try.CatchParam = p.identName()
		p.expect(lexer.Punct, ")")
		try.Catch = p.blockStmt()
	}
	if p.eat(lexer.Keyword, "finally") {
		try.Finally = p.blockStmt()
	}
	if try.Catch == nil && try.Finally == nil {
		p.fail(t.Pos, "try statement requires catch or finally")
	}
	return try
}

func (p *parser) switchStmt() ast.Stmt {
	t := p.expect(lexer.Keyword, "switch")
	p.expect(lexer.Punct, "(")
	disc := p.expression()
	p.expect(lexer.Punct, ")")
	p.expect(lexer.Punct, "{")
	sw := &ast.Switch{Disc: disc, P: t.Pos}
	seenDefault := false
	for !p.atPunct("}") && !p.at(lexer.EOF, "") {
		var c ast.Case
		if p.eat(lexer.Keyword, "case") {
			c.Test = p.expression()
		} else {
			p.expect(lexer.Keyword, "default")
			if seenDefault {
				p.fail(p.cur().Pos, "multiple default clauses in switch")
			}
			seenDefault = true
		}
		p.expect(lexer.Punct, ":")
		for !p.atKeyword("case") && !p.atKeyword("default") && !p.atPunct("}") && !p.at(lexer.EOF, "") {
			c.Body = append(c.Body, p.statement())
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.expect(lexer.Punct, "}")
	return sw
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) expression() ast.Expr {
	e := p.assignExpr()
	for p.atPunct(",") {
		t := p.next()
		r := p.assignExpr()
		e = &ast.Seq{L: e, R: r, P: t.Pos}
	}
	return e
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
}

func (p *parser) assignExpr() ast.Expr {
	e := p.condExpr()
	t := p.cur()
	if t.Kind == lexer.Punct && assignOps[t.Lit] {
		if !isAssignTarget(e) {
			p.fail(t.Pos, "invalid assignment target")
		}
		p.next()
		v := p.assignExpr()
		return &ast.Assign{Op: t.Lit, Target: e, Value: v, P: t.Pos}
	}
	return e
}

func isAssignTarget(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.Member, *ast.Index:
		return true
	}
	return false
}

func (p *parser) condExpr() ast.Expr {
	e := p.binaryExpr(0)
	if p.atPunct("?") {
		t := p.next()
		cons := p.assignExpr()
		p.expect(lexer.Punct, ":")
		alt := p.assignExpr()
		return &ast.Cond{Test: e, Cons: cons, Alt: alt, P: t.Pos}
	}
	return e
}

// binary operator precedence table; higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7, "instanceof": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) ast.Expr {
	e := p.unaryExpr()
	for {
		t := p.cur()
		op := t.Lit
		isBin := (t.Kind == lexer.Punct || (t.Kind == lexer.Keyword && (op == "in" || op == "instanceof")))
		prec, known := binPrec[op]
		if !isBin || !known || prec <= minPrec {
			return e
		}
		p.next()
		r := p.binaryExpr(prec)
		if op == "&&" || op == "||" {
			e = &ast.Logical{Op: op, L: e, R: r, P: t.Pos}
		} else {
			e = &ast.Binary{Op: op, L: e, R: r, P: t.Pos}
		}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	p.enter()
	defer p.leave()
	t := p.cur()
	switch {
	case p.atPunct("!") || p.atPunct("-") || p.atPunct("+") || p.atPunct("~"):
		p.next()
		x := p.unaryExpr()
		return &ast.Unary{Op: t.Lit, X: x, P: t.Pos}
	case p.atKeyword("typeof") || p.atKeyword("delete"):
		p.next()
		x := p.unaryExpr()
		return &ast.Unary{Op: t.Lit, X: x, P: t.Pos}
	case p.atPunct("++") || p.atPunct("--"):
		p.next()
		x := p.unaryExpr()
		if !isAssignTarget(x) {
			p.fail(t.Pos, "invalid %s target", t.Lit)
		}
		return &ast.Update{Op: t.Lit, X: x, Prefix: true, P: t.Pos}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() ast.Expr {
	e := p.callMemberExpr(p.primaryExpr())
	t := p.cur()
	if p.atPunct("++") || p.atPunct("--") {
		if !isAssignTarget(e) {
			p.fail(t.Pos, "invalid %s target", t.Lit)
		}
		p.next()
		return &ast.Update{Op: t.Lit, X: e, Prefix: false, P: t.Pos}
	}
	return e
}

// callMemberExpr parses the chain of .prop, [index] and (args) suffixes.
func (p *parser) callMemberExpr(e ast.Expr) ast.Expr {
	for {
		t := p.cur()
		switch {
		case p.atPunct("."):
			p.next()
			name := p.propertyName()
			e = &ast.Member{Obj: e, Prop: name, P: t.Pos}
		case p.atPunct("["):
			p.next()
			idx := p.expression()
			p.expect(lexer.Punct, "]")
			e = &ast.Index{Obj: e, Index: idx, P: t.Pos}
		case p.atPunct("("):
			args := p.arguments()
			e = &ast.Call{Callee: e, Args: args, P: t.Pos}
		default:
			return e
		}
	}
}

// propertyName allows keywords as property names after a dot (obj.in etc.).
func (p *parser) propertyName() string {
	t := p.cur()
	if t.Kind == lexer.Ident || t.Kind == lexer.Keyword {
		p.next()
		return t.Lit
	}
	p.fail(t.Pos, "expected property name, found %s", t)
	return ""
}

func (p *parser) arguments() []ast.Expr {
	p.expect(lexer.Punct, "(")
	var args []ast.Expr
	for !p.atPunct(")") {
		args = append(args, p.assignExpr())
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	return args
}

func (p *parser) primaryExpr() ast.Expr {
	// new-expressions recurse here directly (new new f), bypassing
	// unaryExpr, so primary expressions count nesting as well.
	p.enter()
	defer p.leave()
	t := p.cur()
	switch {
	case t.Kind == lexer.Number:
		p.next()
		return &ast.NumberLit{Value: t.Num, P: t.Pos}
	case t.Kind == lexer.String:
		p.next()
		return &ast.StringLit{Value: t.Str, P: t.Pos}
	case p.atKeyword("true"):
		p.next()
		return &ast.BoolLit{Value: true, P: t.Pos}
	case p.atKeyword("false"):
		p.next()
		return &ast.BoolLit{Value: false, P: t.Pos}
	case p.atKeyword("null"):
		p.next()
		return &ast.NullLit{P: t.Pos}
	case p.atKeyword("this"):
		p.next()
		return &ast.ThisExpr{P: t.Pos}
	case p.atKeyword("function"):
		return p.functionLit(false)
	case p.atKeyword("new"):
		p.next()
		// Parse the callee without consuming call parentheses, then the
		// constructor arguments.
		callee := p.newCallee(p.primaryExpr())
		var args []ast.Expr
		if p.atPunct("(") {
			args = p.arguments()
		}
		return &ast.New{Callee: callee, Args: args, P: t.Pos}
	case t.Kind == lexer.Ident:
		p.next()
		if t.Lit == "undefined" {
			return &ast.UndefinedLit{P: t.Pos}
		}
		return &ast.Ident{Name: t.Lit, P: t.Pos}
	case p.atPunct("("):
		p.next()
		e := p.expression()
		p.expect(lexer.Punct, ")")
		return e
	case p.atPunct("{"):
		return p.objectLit()
	case p.atPunct("["):
		return p.arrayLit()
	}
	p.fail(t.Pos, "unexpected %s", t)
	return nil
}

// newCallee parses member suffixes for a new-expression callee but stops at
// call parentheses, which belong to the constructor invocation.
func (p *parser) newCallee(e ast.Expr) ast.Expr {
	for {
		t := p.cur()
		switch {
		case p.atPunct("."):
			p.next()
			e = &ast.Member{Obj: e, Prop: p.propertyName(), P: t.Pos}
		case p.atPunct("["):
			p.next()
			idx := p.expression()
			p.expect(lexer.Punct, "]")
			e = &ast.Index{Obj: e, Index: idx, P: t.Pos}
		default:
			return e
		}
	}
}

func (p *parser) objectLit() ast.Expr {
	t := p.expect(lexer.Punct, "{")
	o := &ast.ObjectLit{P: t.Pos}
	for !p.atPunct("}") {
		kt := p.cur()
		var key string
		switch {
		case kt.Kind == lexer.Ident || kt.Kind == lexer.Keyword:
			key = kt.Lit
			p.next()
		case kt.Kind == lexer.String:
			key = kt.Str
			p.next()
		case kt.Kind == lexer.Number:
			key = ast.FormatNumber(kt.Num)
			p.next()
		default:
			p.fail(kt.Pos, "expected property key, found %s", kt)
		}
		p.expect(lexer.Punct, ":")
		v := p.assignExpr()
		o.Props = append(o.Props, ast.Property{Key: key, Value: v})
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, "}")
	return o
}

func (p *parser) arrayLit() ast.Expr {
	t := p.expect(lexer.Punct, "[")
	a := &ast.ArrayLit{P: t.Pos}
	for !p.atPunct("]") {
		a.Elems = append(a.Elems, p.assignExpr())
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, "]")
	return a
}
