package parser_test

import (
	"testing"

	"determinacy/internal/ast"
	"determinacy/internal/ir"
	"determinacy/internal/parser"
	"determinacy/internal/workload"
)

// FuzzParseAndLower feeds arbitrary bytes through the full front end:
// parse, print, reparse, lower. Run with go test -fuzz=FuzzParseAndLower.
func FuzzParseAndLower(f *testing.F) {
	f.Add("var x = 1 + 2;")
	f.Add(`function f(a) { return a ? f(a - 1) : 0; }`)
	f.Add(`for (var k in {a: 1}) { o[k] = eval("k"); }`)
	f.Add(`try { throw 1; } catch (e) {} finally {}`)
	for seed := uint64(0); seed < 5; seed++ {
		f.Add(workload.RandomProgram(workload.GenConfig{Seed: seed}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.js", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := ast.Print(prog)
		reparsed, err := parser.Parse("printed.js", printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if again := ast.Print(reparsed); again != printed {
			t.Fatalf("print not a fixpoint:\nfirst:  %q\nsecond: %q", printed, again)
		}
		if _, err := ir.Lower(prog); err != nil {
			// Lowering may reject valid parses (e.g. switch fall-through);
			// it must not panic.
			return
		}
	})
}

// FuzzLower targets the lowering phase and the module invariants the rest
// of the pipeline leans on: dense instruction registration, consistent
// index maps, panic-free printing, and Clone producing a structurally
// identical module. The seed corpus is checked in under
// testdata/fuzz/FuzzLower. Run with go test -fuzz=FuzzLower.
func FuzzLower(f *testing.F) {
	f.Add("var x = 1;")
	f.Add(`function outer() { function inner(a) { return a + 1; } return inner(2); } outer();`)
	f.Add(`while (x < 10) { x = x + 1; if (x == 5) { break; } else { continue; } }`)
	f.Add(`var o = {a: 1, b: "two"}; for (var k in o) { delete o[k]; }`)
	f.Add(`try { throw {code: 7}; } catch (e) { var c = e.code; } finally { done = true; }`)
	f.Add(`var f = function g(n) { return n ? g(n - 1) : 0; }; f(3);`)
	f.Add(`var r = eval("1 + " + Math.random());`)
	for seed := uint64(40); seed < 44; seed++ {
		f.Add(workload.RandomProgram(workload.GenConfig{Seed: seed, WithForIn: true}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.js", src)
		if err != nil {
			return
		}
		mod, err := ir.Lower(prog)
		if err != nil {
			return // rejection is fine; panics and invariant breaks are not
		}

		if len(mod.Funcs) == 0 || mod.Top() != mod.Funcs[0] {
			t.Fatalf("module has no coherent top-level function")
		}
		for i, fn := range mod.Funcs {
			if fn == nil || fn.Body == nil {
				t.Fatalf("function %d is nil or bodyless", i)
			}
			if fn.Index != i {
				t.Fatalf("function %q at position %d has Index %d", fn.Name, i, fn.Index)
			}
		}

		seen := 0
		mod.ForEachInstr(func(in ir.Instr, fn *ir.Function) {
			seen++
			id := in.IID()
			if id < 0 || int(id) >= mod.NumInstrs {
				t.Fatalf("instruction ID %d outside [0, NumInstrs=%d)", id, mod.NumInstrs)
			}
			if fn == nil {
				t.Fatalf("instruction %d has no enclosing function", id)
			}
			if got := mod.InstrAt(id); got != in {
				t.Fatalf("InstrAt(%d) does not round-trip", id)
			}
			if got := mod.FuncOf(id); got != fn {
				t.Fatalf("FuncOf(%d) disagrees with ForEachInstr", id)
			}
		})
		if seen > mod.NumInstrs {
			t.Fatalf("%d registered instructions exceed NumInstrs %d", seen, mod.NumInstrs)
		}

		if s := mod.String(); len(s) == 0 && seen > 0 {
			t.Fatalf("module with %d instructions printed empty", seen)
		}

		clone := mod.Clone()
		if clone == mod {
			t.Fatal("Clone returned the receiver")
		}
		if clone.NumInstrs != mod.NumInstrs || len(clone.Funcs) != len(mod.Funcs) {
			t.Fatalf("clone shape differs: %d/%d instrs, %d/%d funcs",
				clone.NumInstrs, mod.NumInstrs, len(clone.Funcs), len(mod.Funcs))
		}
		for id := 0; id < mod.NumInstrs; id++ {
			if clone.InstrAt(ir.ID(id)) != mod.InstrAt(ir.ID(id)) ||
				clone.FuncOf(ir.ID(id)) != mod.FuncOf(ir.ID(id)) ||
				clone.IsReentrant(ir.ID(id)) != mod.IsReentrant(ir.ID(id)) {
				t.Fatalf("clone diverges from original at instruction %d", id)
			}
		}
		if clone.String() != mod.String() {
			t.Fatal("clone prints differently from the original")
		}
	})
}
