package parser_test

import (
	"testing"

	"determinacy/internal/ast"
	"determinacy/internal/ir"
	"determinacy/internal/parser"
	"determinacy/internal/workload"
)

// FuzzParseAndLower feeds arbitrary bytes through the full front end:
// parse, print, reparse, lower. Run with go test -fuzz=FuzzParseAndLower.
func FuzzParseAndLower(f *testing.F) {
	f.Add("var x = 1 + 2;")
	f.Add(`function f(a) { return a ? f(a - 1) : 0; }`)
	f.Add(`for (var k in {a: 1}) { o[k] = eval("k"); }`)
	f.Add(`try { throw 1; } catch (e) {} finally {}`)
	for seed := uint64(0); seed < 5; seed++ {
		f.Add(workload.RandomProgram(workload.GenConfig{Seed: seed}))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse("fuzz.js", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := ast.Print(prog)
		reparsed, err := parser.Parse("printed.js", printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if again := ast.Print(reparsed); again != printed {
			t.Fatalf("print not a fixpoint:\nfirst:  %q\nsecond: %q", printed, again)
		}
		if _, err := ir.Lower(prog); err != nil {
			// Lowering may reject valid parses (e.g. switch fall-through);
			// it must not panic.
			return
		}
	})
}
