package parser_test

import (
	"strings"
	"testing"
	"testing/quick"

	"determinacy/internal/ast"
	"determinacy/internal/parser"
	"determinacy/internal/workload"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3;":              "1 + 2 * 3;",
		"(1 + 2) * 3;":            "(1 + 2) * 3;",
		"a = b = c;":              "a = b = c;",
		"a || b && c;":            "a || b && c;",
		"(a || b) && c;":          "(a || b) && c;",
		"!a.b;":                   "!a.b;",
		"-x * y;":                 "-x * y;",
		"a < b === c < d;":        "a < b === c < d;",
		"a ? b : c ? d : e;":      "a ? b : c ? d : e;",
		"typeof a === 'b';":       `typeof a === "b";`,
		"a.b.c(d)[e](f).g;":       "a.b.c(d)[e](f).g;",
		"new Foo(1).bar;":         "new Foo(1).bar;",
		"1 + 2 + 3;":              "1 + 2 + 3;",
		"x & y | z ^ w;":          "x & y | z ^ w;",
		"a << 2 >>> 1;":           "a << 2 >>> 1;",
		"delete a.b;":             "delete a.b;",
		"a in b;":                 "a in b;",
		"x instanceof Foo;":       "x instanceof Foo;",
		"i++ + ++j;":              "i++ + ++j;",
		"a, b, c;":                "a, b, c;",
		"f(a, (b, c));":           "f(a, (b, c));",
		"x = a ? b : c;":          "x = a ? b : c;",
		"(function() {})();":      "(function() {\n}());",
		"o = {a: 1, \"b c\": 2};": `o = {a: 1, "b c": 2};`,
	}
	for src, want := range cases {
		got := strings.TrimSpace(ast.Print(parse(t, src)))
		if got != want {
			t.Errorf("print(parse(%q)) = %q, want %q", src, got, want)
		}
	}
}

func TestStatements(t *testing.T) {
	srcs := []string{
		"var a = 1, b, c = a + 2;",
		"if (a) b(); else { c(); }",
		"while (x < 3) x++;",
		"do { x--; } while (x);",
		"for (var i = 0; i < 10; i++) f(i);",
		"for (; ;) { break; }",
		"for (var k in o) { delete o[k]; }",
		"for (k in o) g(k);",
		"try { f(); } catch (e) { g(e); } finally { h(); }",
		"try { f(); } finally { h(); }",
		"switch (x) { case 1: a(); break; case 2: default: b(); }",
		"function f(a, b) { return a + b; }",
		"throw new Error('x');",
		";",
	}
	for _, src := range srcs {
		prog := parse(t, src)
		// Printed form must reparse.
		printed := ast.Print(prog)
		if _, err := parser.Parse("printed.js", printed); err != nil {
			t.Errorf("printed form of %q does not reparse: %v\n%s", src, err, printed)
		}
	}
}

func TestParseErrors(t *testing.T) {
	srcs := []string{
		"var = 3;",
		"if (x {)",
		"function (a) {}",
		"a +",
		"try { }",
		"1 = 2;",
		"++1;",
		"o = {a: };",
		"switch (x) { default: a(); default: b(); }",
		"return 5;x(",
	}
	for _, src := range srcs {
		if _, err := parser.Parse("bad.js", src); err == nil {
			t.Errorf("%q: expected a parse error", src)
		}
	}
}

func TestParseExpr(t *testing.T) {
	e, err := parser.ParseExpr("a + b * 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.PrintExpr(e); got != "a + b * 2" {
		t.Errorf("got %q", got)
	}
	if _, err := parser.ParseExpr("a +"); err == nil {
		t.Error("expected error for truncated expression")
	}
	if _, err := parser.ParseExpr("a; b"); err == nil {
		t.Error("expected error for trailing tokens")
	}
}

// TestPrintParseFixpoint: for generated programs, print∘parse must be a
// fixpoint — parsing the printed form and printing again yields the same
// text. This nails down both the parser and the printer (including
// parenthesization) against each other.
func TestPrintParseFixpoint(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		src := workload.RandomProgram(workload.GenConfig{Seed: seed, WithForIn: seed%2 == 0})
		p1, err := parser.Parse("gen.js", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		out1 := ast.Print(p1)
		p2, err := parser.Parse("printed.js", out1)
		if err != nil {
			t.Fatalf("seed %d: printed form does not reparse: %v\n%s", seed, err, out1)
		}
		out2 := ast.Print(p2)
		if out1 != out2 {
			t.Fatalf("seed %d: print not a fixpoint:\n--- first\n%s\n--- second\n%s", seed, out1, out2)
		}
	}
}

// TestParserNeverPanics: arbitrary input must produce a program or an
// error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_, _ = parser.Parse("fuzz.js", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeywordPropertyNames(t *testing.T) {
	src := "a.in = o.typeof + b.delete;"
	printed := strings.TrimSpace(ast.Print(parse(t, src)))
	if printed != "a.in = o.typeof + b.delete;" {
		t.Errorf("got %q", printed)
	}
}

func TestNestedFunctions(t *testing.T) {
	prog := parse(t, `
		function outer() {
			var x = 1;
			function inner() { return x; }
			return inner;
		}
		var f = function named(n) { return n <= 1 ? 1 : n * named(n - 1); };
	`)
	count := 0
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.FunctionLit); ok {
			count++
		}
		return true
	})
	if count != 3 {
		t.Errorf("found %d function literals, want 3", count)
	}
}

// TestDeepNestingRejected: pathologically nested inputs must come back as
// syntax errors, not Go stack overflows. Each shape targets a different
// recursion path through the parser (statements, parenthesized expressions,
// unary chains, new-chains, array literals).
func TestDeepNestingRejected(t *testing.T) {
	const n = 100000
	shapes := map[string]string{
		"blocks": strings.Repeat("{", n),
		"parens": "x = " + strings.Repeat("(", n) + "1",
		"unary":  "x = " + strings.Repeat("!", n) + "1;",
		"news":   "x = " + strings.Repeat("new ", n) + "f();",
		"arrays": "x = " + strings.Repeat("[", n) + "1",
	}
	for name, src := range shapes {
		if _, err := parser.Parse("deep.js", src); err == nil {
			t.Errorf("%s: expected a nesting error", name)
		} else if !strings.Contains(err.Error(), "nesting") {
			t.Errorf("%s: error does not mention nesting: %v", name, err)
		}
	}
	// Reasonable nesting stays well inside the limit.
	ok := "x = " + strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100) + ";"
	if _, err := parser.Parse("ok.js", ok); err != nil {
		t.Errorf("100 levels must parse: %v", err)
	}
}
