// Package ast defines the abstract syntax tree for mini-JS, the JavaScript
// subset used throughout this repository. The parser produces these nodes;
// the IR lowering in internal/ir consumes them; the specializer in
// internal/specialize rewrites them.
package ast

import "determinacy/internal/lexer"

// Node is implemented by every AST node.
type Node interface {
	Pos() lexer.Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Program is a parsed compilation unit.
type Program struct {
	Body []Stmt
	// Source is the original source text, retained so diagnostics and
	// determinacy facts can quote line numbers meaningfully.
	Source string
	// File is an optional display name for the source.
	File string
}

func (p *Program) Pos() lexer.Pos {
	if len(p.Body) > 0 {
		return p.Body[0].Pos()
	}
	return lexer.Pos{}
}

// ---------------------------------------------------------------------------
// Expressions

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	P     lexer.Pos
}

// StringLit is a string literal.
type StringLit struct {
	Value string
	P     lexer.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	P     lexer.Pos
}

// NullLit is the null literal.
type NullLit struct{ P lexer.Pos }

// UndefinedLit is the undefined literal. The parser resolves the identifier
// "undefined" to this node.
type UndefinedLit struct{ P lexer.Pos }

// Ident is a variable reference.
type Ident struct {
	Name string
	P    lexer.Pos
}

// ThisExpr is the this keyword.
type ThisExpr struct{ P lexer.Pos }

// FunctionLit is a function expression or the value of a function
// declaration.
type FunctionLit struct {
	Name   string // optional; "" for anonymous functions
	Params []string
	Body   []Stmt
	P      lexer.Pos
}

// Property is one key-value pair in an object literal.
type Property struct {
	Key   string
	Value Expr
}

// ObjectLit is an object literal {k1: v1, ...}.
type ObjectLit struct {
	Props []Property
	P     lexer.Pos
}

// ArrayLit is an array literal [e1, ...].
type ArrayLit struct {
	Elems []Expr
	P     lexer.Pos
}

// Member is a static property access obj.Prop.
type Member struct {
	Obj  Expr
	Prop string
	P    lexer.Pos
}

// Index is a dynamic (computed) property access obj[index].
type Index struct {
	Obj   Expr
	Index Expr
	P     lexer.Pos
}

// Call is a function or method call. When Callee is a Member or Index the
// call is a method call and the receiver becomes `this`.
type Call struct {
	Callee Expr
	Args   []Expr
	P      lexer.Pos
}

// New is a constructor invocation new Callee(Args...).
type New struct {
	Callee Expr
	Args   []Expr
	P      lexer.Pos
}

// Unary is a prefix unary operator: ! - + ~ typeof delete.
type Unary struct {
	Op string
	X  Expr
	P  lexer.Pos
}

// Update is ++ or -- in prefix or postfix position.
type Update struct {
	Op     string // "++" or "--"
	X      Expr   // Ident, Member or Index
	Prefix bool
	P      lexer.Pos
}

// Binary is a binary operator with strict evaluation of both operands.
type Binary struct {
	Op   string
	L, R Expr
	P    lexer.Pos
}

// Logical is && or || with short-circuit evaluation.
type Logical struct {
	Op   string // "&&" or "||"
	L, R Expr
	P    lexer.Pos
}

// Cond is the ternary operator test ? cons : alt.
type Cond struct {
	Test, Cons, Alt Expr
	P               lexer.Pos
}

// Assign is an assignment; Op is "=" or a compound operator like "+=".
// Target is an Ident, Member or Index.
type Assign struct {
	Op     string
	Target Expr
	Value  Expr
	P      lexer.Pos
}

// Seq is the comma operator: evaluate L, discard, yield R.
type Seq struct {
	L, R Expr
	P    lexer.Pos
}

func (e *NumberLit) Pos() lexer.Pos    { return e.P }
func (e *StringLit) Pos() lexer.Pos    { return e.P }
func (e *BoolLit) Pos() lexer.Pos      { return e.P }
func (e *NullLit) Pos() lexer.Pos      { return e.P }
func (e *UndefinedLit) Pos() lexer.Pos { return e.P }
func (e *Ident) Pos() lexer.Pos        { return e.P }
func (e *ThisExpr) Pos() lexer.Pos     { return e.P }
func (e *FunctionLit) Pos() lexer.Pos  { return e.P }
func (e *ObjectLit) Pos() lexer.Pos    { return e.P }
func (e *ArrayLit) Pos() lexer.Pos     { return e.P }
func (e *Member) Pos() lexer.Pos       { return e.P }
func (e *Index) Pos() lexer.Pos        { return e.P }
func (e *Call) Pos() lexer.Pos         { return e.P }
func (e *New) Pos() lexer.Pos          { return e.P }
func (e *Unary) Pos() lexer.Pos        { return e.P }
func (e *Update) Pos() lexer.Pos       { return e.P }
func (e *Binary) Pos() lexer.Pos       { return e.P }
func (e *Logical) Pos() lexer.Pos      { return e.P }
func (e *Cond) Pos() lexer.Pos         { return e.P }
func (e *Assign) Pos() lexer.Pos       { return e.P }
func (e *Seq) Pos() lexer.Pos          { return e.P }

func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*BoolLit) exprNode()      {}
func (*NullLit) exprNode()      {}
func (*UndefinedLit) exprNode() {}
func (*Ident) exprNode()        {}
func (*ThisExpr) exprNode()     {}
func (*FunctionLit) exprNode()  {}
func (*ObjectLit) exprNode()    {}
func (*ArrayLit) exprNode()     {}
func (*Member) exprNode()       {}
func (*Index) exprNode()        {}
func (*Call) exprNode()         {}
func (*New) exprNode()          {}
func (*Unary) exprNode()        {}
func (*Update) exprNode()       {}
func (*Binary) exprNode()       {}
func (*Logical) exprNode()      {}
func (*Cond) exprNode()         {}
func (*Assign) exprNode()       {}
func (*Seq) exprNode()          {}

// ---------------------------------------------------------------------------
// Statements

// VarDecl declares one or more variables: var x = e, y;
type VarDecl struct {
	Decls []Declarator
	P     lexer.Pos
}

// Declarator is a single name with an optional initializer.
type Declarator struct {
	Name string
	Init Expr // nil when absent
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	X Expr
	P lexer.Pos
}

// Block is a braced statement list.
type Block struct {
	Body []Stmt
	P    lexer.Pos
}

// If is a conditional with optional else.
type If struct {
	Test Expr
	Cons Stmt
	Alt  Stmt // nil when absent
	P    lexer.Pos
}

// While is a while loop.
type While struct {
	Test Expr
	Body Stmt
	P    lexer.Pos
}

// DoWhile is a do-while loop.
type DoWhile struct {
	Body Stmt
	Test Expr
	P    lexer.Pos
}

// For is a C-style for loop. Init may be a *VarDecl or *ExprStmt or nil;
// Test and Update may be nil.
type For struct {
	Init   Stmt
	Test   Expr
	Update Expr
	Body   Stmt
	P      lexer.Pos
}

// ForIn is for (x in obj) or for (var x in obj).
type ForIn struct {
	Name    string
	Declare bool
	Obj     Expr
	Body    Stmt
	P       lexer.Pos
}

// Return is a return statement; Value may be nil.
type Return struct {
	Value Expr
	P     lexer.Pos
}

// Break exits the innermost loop or switch.
type Break struct{ P lexer.Pos }

// Continue continues the innermost loop.
type Continue struct{ P lexer.Pos }

// Throw raises an exception.
type Throw struct {
	Value Expr
	P     lexer.Pos
}

// Try is try/catch/finally. Catch may be nil only if Finally is present.
type Try struct {
	Block      *Block
	CatchParam string
	Catch      *Block // nil when absent
	Finally    *Block // nil when absent
	P          lexer.Pos
}

// FunctionDecl is a hoisted function declaration.
type FunctionDecl struct {
	Fn *FunctionLit
	P  lexer.Pos
}

// Case is one arm of a switch.
type Case struct {
	Test Expr // nil for default
	Body []Stmt
}

// Switch is a switch statement.
type Switch struct {
	Disc  Expr
	Cases []Case
	P     lexer.Pos
}

// Empty is a lone semicolon.
type Empty struct{ P lexer.Pos }

func (s *VarDecl) Pos() lexer.Pos      { return s.P }
func (s *ExprStmt) Pos() lexer.Pos     { return s.P }
func (s *Block) Pos() lexer.Pos        { return s.P }
func (s *If) Pos() lexer.Pos           { return s.P }
func (s *While) Pos() lexer.Pos        { return s.P }
func (s *DoWhile) Pos() lexer.Pos      { return s.P }
func (s *For) Pos() lexer.Pos          { return s.P }
func (s *ForIn) Pos() lexer.Pos        { return s.P }
func (s *Return) Pos() lexer.Pos       { return s.P }
func (s *Break) Pos() lexer.Pos        { return s.P }
func (s *Continue) Pos() lexer.Pos     { return s.P }
func (s *Throw) Pos() lexer.Pos        { return s.P }
func (s *Try) Pos() lexer.Pos          { return s.P }
func (s *FunctionDecl) Pos() lexer.Pos { return s.P }
func (s *Switch) Pos() lexer.Pos       { return s.P }
func (s *Empty) Pos() lexer.Pos        { return s.P }

func (*VarDecl) stmtNode()      {}
func (*ExprStmt) stmtNode()     {}
func (*Block) stmtNode()        {}
func (*If) stmtNode()           {}
func (*While) stmtNode()        {}
func (*DoWhile) stmtNode()      {}
func (*For) stmtNode()          {}
func (*ForIn) stmtNode()        {}
func (*Return) stmtNode()       {}
func (*Break) stmtNode()        {}
func (*Continue) stmtNode()     {}
func (*Throw) stmtNode()        {}
func (*Try) stmtNode()          {}
func (*FunctionDecl) stmtNode() {}
func (*Switch) stmtNode()       {}
func (*Empty) stmtNode()        {}
