package ast_test

import (
	"strings"
	"testing"
	"testing/quick"

	"determinacy/internal/ast"
	"determinacy/internal/lexer"
	"determinacy/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse("t.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWalkVisitsEverything(t *testing.T) {
	prog := mustParse(t, `
		function f(a) {
			for (var i = 0; i < a.length; i++) {
				try { g(a[i]); } catch (e) { throw e; } finally { done(); }
			}
			switch (a.kind) { case 1: return {x: [1, 2]}; default: break; }
			do { a = a ? a - 1 : 0; } while (a && !stop);
			for (var k in a) delete a[k];
			return typeof new Box(a).v;
		}
	`)
	counts := map[string]int{}
	ast.Walk(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.For:
			counts["for"]++
		case *ast.ForIn:
			counts["forin"]++
		case *ast.Try:
			counts["try"]++
		case *ast.Switch:
			counts["switch"]++
		case *ast.DoWhile:
			counts["dowhile"]++
		case *ast.New:
			counts["new"]++
		case *ast.Cond:
			counts["cond"]++
		case *ast.Logical:
			counts["logical"]++
		case *ast.ObjectLit:
			counts["object"]++
		case *ast.ArrayLit:
			counts["array"]++
		case *ast.Unary:
			counts["unary"]++
		case *ast.Ident:
			counts["ident"]++
		}
		return true
	})
	for _, k := range []string{"for", "forin", "try", "switch", "dowhile", "new", "cond", "logical", "object", "array", "unary"} {
		if counts[k] == 0 {
			t.Errorf("walk missed %s nodes", k)
		}
	}
	if counts["ident"] < 10 {
		t.Errorf("suspiciously few identifiers visited: %d", counts["ident"])
	}
}

func TestWalkPrune(t *testing.T) {
	prog := mustParse(t, `function outer() { var inner = 1; } var outside = 2;`)
	sawInner := false
	ast.Walk(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.FunctionLit); ok {
			return false // prune
		}
		if id, ok := n.(*ast.VarDecl); ok && id.Decls[0].Name == "inner" {
			sawInner = true
		}
		return true
	})
	if sawInner {
		t.Error("pruned subtree was visited")
	}
}

func TestQuoteString(t *testing.T) {
	cases := map[string]string{
		"plain":   `"plain"`,
		`q"q`:     `"q\"q"`,
		"a\nb":    `"a\nb"`,
		"tab\t":   `"tab\t"`,
		"back\\":  `"back\\"`,
		"\x01ctl": "\"\\u0001ctl\"",
		"日本語":     `"日本語"`,
	}
	for in, want := range cases {
		if got := ast.QuoteString(in); got != want {
			t.Errorf("QuoteString(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestQuoteStringRoundTrip: every string must survive quote→lex.
func TestQuoteStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !validUTF8(s) {
			return true
		}
		quoted := ast.QuoteString(s)
		l := lexer.New(quoted)
		tok := l.Next()
		if l.Err() != nil || tok.Kind != lexer.String {
			return false
		}
		return tok.Str == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func validUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false // replacement introduced by invalid input bytes
		}
		if r == '\r' {
			// The lexer normalizes nothing, but raw CR inside a literal is
			// re-escaped as \r and round-trips; allow it.
			continue
		}
	}
	return true
}

func TestFormatNumber(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1",
		-3:      "-3",
		2.5:     "2.5",
		1e20:    "100000000000000000000",
		1e21:    "1e+21",
		0.00001: "1e-05",
	}
	for in, want := range cases {
		if got := ast.FormatNumber(in); got != want {
			t.Errorf("FormatNumber(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPrinterParenthesization(t *testing.T) {
	// Build trees directly to force precedence-sensitive printing.
	p := lexer.Pos{Line: 1, Col: 1}
	num := func(n float64) ast.Expr { return &ast.NumberLit{Value: n, P: p} }
	mul := &ast.Binary{Op: "*", P: p,
		L: &ast.Binary{Op: "+", L: num(1), R: num(2), P: p},
		R: num(3),
	}
	if got := ast.PrintExpr(mul); got != "(1 + 2) * 3" {
		t.Errorf("got %q", got)
	}
	negneg := &ast.Unary{Op: "-", X: &ast.Unary{Op: "-", X: num(7), P: p}, P: p}
	if got := ast.PrintExpr(negneg); got != "- -7" {
		t.Errorf("nested unary minus: %q", got)
	}
	seqArg := &ast.Call{P: p, Callee: &ast.Ident{Name: "f", P: p},
		Args: []ast.Expr{&ast.Seq{L: num(1), R: num(2), P: p}}}
	if got := ast.PrintExpr(seqArg); got != "f((1, 2))" {
		t.Errorf("comma in argument: %q", got)
	}
}

func TestPrintStmtForms(t *testing.T) {
	srcs := map[string]string{
		"var a;":                  "var a;",
		"a = {f: function() {}};": "a = {f: function() {\n}};",
	}
	for src, want := range srcs {
		prog := mustParse(t, src)
		got := strings.TrimSpace(ast.PrintStmt(prog.Body[0]))
		if got != want {
			t.Errorf("PrintStmt(%q) = %q, want %q", src, got, want)
		}
	}
}
