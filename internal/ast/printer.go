package ast

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"determinacy/internal/lexer"
)

// Print renders a program back to mini-JS source. The output parses to an
// equivalent tree (modulo positions); it is used by the specializer and the
// eval eliminator to emit transformed programs.
func Print(p *Program) string {
	var pr printer
	pr.stmts(p.Body)
	return pr.b.String()
}

// PrintStmt renders a single statement.
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e, precLowest)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) w(s string)           { p.b.WriteString(s) }
func (p *printer) f(s string, a ...any) { fmt.Fprintf(&p.b, s, a...) }
func (p *printer) nl()                  { p.w("\n"); p.w(strings.Repeat("  ", p.indent)) }
func (p *printer) stmts(ss []Stmt) {
	for _, s := range ss {
		p.stmt(s)
		p.nl()
	}
}

func (p *printer) block(ss []Stmt) {
	p.w("{")
	p.indent++
	for _, s := range ss {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.w("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		p.w("var ")
		for i, d := range s.Decls {
			if i > 0 {
				p.w(", ")
			}
			p.w(d.Name)
			if d.Init != nil {
				p.w(" = ")
				p.expr(d.Init, precAssign)
			}
		}
		p.w(";")
	case *ExprStmt:
		// Parenthesize leading function literals and object literals so the
		// statement does not parse as a declaration or block.
		if needsStmtParens(s.X) {
			p.w("(")
			p.expr(s.X, precLowest)
			p.w(")")
		} else {
			p.expr(s.X, precLowest)
		}
		p.w(";")
	case *Block:
		p.block(s.Body)
	case *If:
		p.w("if (")
		p.expr(s.Test, precLowest)
		p.w(") ")
		p.nested(s.Cons)
		if s.Alt != nil {
			p.w(" else ")
			p.nested(s.Alt)
		}
	case *While:
		p.w("while (")
		p.expr(s.Test, precLowest)
		p.w(") ")
		p.nested(s.Body)
	case *DoWhile:
		p.w("do ")
		p.nested(s.Body)
		p.w(" while (")
		p.expr(s.Test, precLowest)
		p.w(");")
	case *For:
		p.w("for (")
		switch init := s.Init.(type) {
		case nil:
		case *VarDecl:
			p.w("var ")
			for i, d := range init.Decls {
				if i > 0 {
					p.w(", ")
				}
				p.w(d.Name)
				if d.Init != nil {
					p.w(" = ")
					p.expr(d.Init, precAssign)
				}
			}
		case *ExprStmt:
			p.expr(init.X, precLowest)
		}
		p.w("; ")
		if s.Test != nil {
			p.expr(s.Test, precLowest)
		}
		p.w("; ")
		if s.Update != nil {
			p.expr(s.Update, precLowest)
		}
		p.w(") ")
		p.nested(s.Body)
	case *ForIn:
		p.w("for (")
		if s.Declare {
			p.w("var ")
		}
		p.w(s.Name)
		p.w(" in ")
		p.expr(s.Obj, precLowest)
		p.w(") ")
		p.nested(s.Body)
	case *Return:
		p.w("return")
		if s.Value != nil {
			p.w(" ")
			p.expr(s.Value, precLowest)
		}
		p.w(";")
	case *Break:
		p.w("break;")
	case *Continue:
		p.w("continue;")
	case *Throw:
		p.w("throw ")
		p.expr(s.Value, precLowest)
		p.w(";")
	case *Try:
		p.w("try ")
		p.block(s.Block.Body)
		if s.Catch != nil {
			p.f(" catch (%s) ", s.CatchParam)
			p.block(s.Catch.Body)
		}
		if s.Finally != nil {
			p.w(" finally ")
			p.block(s.Finally.Body)
		}
	case *FunctionDecl:
		p.function(s.Fn)
	case *Switch:
		p.w("switch (")
		p.expr(s.Disc, precLowest)
		p.w(") {")
		p.indent++
		for _, c := range s.Cases {
			p.nl()
			if c.Test == nil {
				p.w("default:")
			} else {
				p.w("case ")
				p.expr(c.Test, precLowest)
				p.w(":")
			}
			p.indent++
			for _, b := range c.Body {
				p.nl()
				p.stmt(b)
			}
			p.indent--
		}
		p.indent--
		p.nl()
		p.w("}")
	case *Empty:
		p.w(";")
	default:
		p.f("/* unknown stmt %T */;", s)
	}
}

// nested prints a statement that is the body of a control construct.
func (p *printer) nested(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b.Body)
		return
	}
	p.indent++
	p.nl()
	p.stmt(s)
	p.indent--
}

func needsStmtParens(e Expr) bool {
	switch e := e.(type) {
	case *FunctionLit, *ObjectLit:
		return true
	case *Call:
		return needsStmtParens(e.Callee)
	case *Member:
		return needsStmtParens(e.Obj)
	case *Index:
		return needsStmtParens(e.Obj)
	case *Assign:
		return needsStmtParens(e.Target)
	case *Binary:
		return needsStmtParens(e.L)
	case *Seq:
		return needsStmtParens(e.L)
	}
	return false
}

// Operator precedence levels, loosest to tightest, mirroring the parser.
const (
	precLowest = iota
	precSeq
	precAssign
	precCond
	precOr
	precAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precUnary
	precPostfix
	precCallMember
)

func binaryPrec(op string) int {
	switch op {
	case "||":
		return precOr
	case "&&":
		return precAnd
	case "|":
		return precBitOr
	case "^":
		return precBitXor
	case "&":
		return precBitAnd
	case "==", "!=", "===", "!==":
		return precEq
	case "<", ">", "<=", ">=", "in", "instanceof":
		return precRel
	case "<<", ">>", ">>>":
		return precShift
	case "+", "-":
		return precAdd
	case "*", "/", "%":
		return precMul
	}
	return precLowest
}

func (p *printer) expr(e Expr, outer int) {
	prec := exprPrec(e)
	if prec < outer {
		p.w("(")
		p.exprInner(e)
		p.w(")")
		return
	}
	p.exprInner(e)
}

func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *Seq:
		return precSeq
	case *Assign:
		return precAssign
	case *Cond:
		return precCond
	case *Logical:
		return binaryPrec(e.Op)
	case *Binary:
		return binaryPrec(e.Op)
	case *Unary:
		return precUnary
	case *Update:
		if e.Prefix {
			return precUnary
		}
		return precPostfix
	default:
		return precCallMember
	}
}

func (p *printer) exprInner(e Expr) {
	switch e := e.(type) {
	case *NumberLit:
		p.w(FormatNumber(e.Value))
	case *StringLit:
		p.w(QuoteString(e.Value))
	case *BoolLit:
		p.w(strconv.FormatBool(e.Value))
	case *NullLit:
		p.w("null")
	case *UndefinedLit:
		p.w("undefined")
	case *Ident:
		p.w(e.Name)
	case *ThisExpr:
		p.w("this")
	case *FunctionLit:
		p.function(e)
	case *ObjectLit:
		p.w("{")
		for i, prop := range e.Props {
			if i > 0 {
				p.w(", ")
			}
			if isIdentName(prop.Key) {
				p.w(prop.Key)
			} else {
				p.w(QuoteString(prop.Key))
			}
			p.w(": ")
			p.expr(prop.Value, precAssign)
		}
		p.w("}")
	case *ArrayLit:
		p.w("[")
		for i, el := range e.Elems {
			if i > 0 {
				p.w(", ")
			}
			p.expr(el, precAssign)
		}
		p.w("]")
	case *Member:
		p.expr(e.Obj, precCallMember)
		p.w(".")
		p.w(e.Prop)
	case *Index:
		p.expr(e.Obj, precCallMember)
		p.w("[")
		p.expr(e.Index, precLowest)
		p.w("]")
	case *Call:
		p.expr(e.Callee, precCallMember)
		p.args(e.Args)
	case *New:
		p.w("new ")
		p.expr(e.Callee, precCallMember)
		p.args(e.Args)
	case *Unary:
		p.w(e.Op)
		if e.Op == "typeof" || e.Op == "delete" {
			p.w(" ")
		} else if needsUnarySpace(e.Op, e.X) {
			// Avoid "- -x" fusing into the decrement operator "--x".
			p.w(" ")
		}
		p.expr(e.X, precUnary)
	case *Update:
		if e.Prefix {
			p.w(e.Op)
			p.expr(e.X, precUnary)
		} else {
			p.expr(e.X, precPostfix)
			p.w(e.Op)
		}
	case *Binary:
		prec := binaryPrec(e.Op)
		p.expr(e.L, prec)
		p.f(" %s ", e.Op)
		p.expr(e.R, prec+1)
	case *Logical:
		prec := binaryPrec(e.Op)
		p.expr(e.L, prec)
		p.f(" %s ", e.Op)
		p.expr(e.R, prec+1)
	case *Cond:
		p.expr(e.Test, precOr)
		p.w(" ? ")
		p.expr(e.Cons, precAssign)
		p.w(" : ")
		p.expr(e.Alt, precAssign)
	case *Assign:
		p.expr(e.Target, precCallMember)
		p.f(" %s ", e.Op)
		p.expr(e.Value, precAssign)
	case *Seq:
		p.expr(e.L, precSeq)
		p.w(", ")
		p.expr(e.R, precAssign)
	default:
		p.f("/* unknown expr %T */", e)
	}
}

// needsUnarySpace reports whether a space must separate a prefix +/- from
// its operand to avoid fusing into ++/--.
func needsUnarySpace(op string, inner Expr) bool {
	if op != "-" && op != "+" {
		return false
	}
	switch x := inner.(type) {
	case *Unary:
		return x.Op == op
	case *Update:
		return x.Prefix && x.Op[:1] == op
	}
	return false
}

func (p *printer) function(fn *FunctionLit) {
	p.w("function")
	if fn.Name != "" {
		p.w(" ")
		p.w(fn.Name)
	}
	p.w("(")
	p.w(strings.Join(fn.Params, ", "))
	p.w(") ")
	p.block(fn.Body)
}

func (p *printer) args(args []Expr) {
	p.w("(")
	for i, a := range args {
		if i > 0 {
			p.w(", ")
		}
		p.expr(a, precAssign)
	}
	p.w(")")
}

func isIdentName(s string) bool {
	if s == "" || lexer.IsKeyword(s) {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '$' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// FormatNumber renders a float64 the way JavaScript's default number
// formatting does for the common cases our programs produce.
func FormatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e21 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// QuoteString renders s as a double-quoted mini-JS string literal.
func QuoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString("\\\"")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\t':
			b.WriteString("\\t")
		case '\r':
			b.WriteString("\\r")
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, "\\u%04x", r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
