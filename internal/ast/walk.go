package ast

// Visit is called by Walk for every node in pre-order. Returning false
// prunes the subtree below the node.
type Visit func(Node) bool

// Walk traverses the tree rooted at n in pre-order, calling v for each node.
// A nil node is ignored.
func Walk(n Node, v Visit) {
	if n == nil || !v(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		walkStmts(n.Body, v)
	case *FunctionLit:
		walkStmts(n.Body, v)
	case *ObjectLit:
		for _, p := range n.Props {
			Walk(p.Value, v)
		}
	case *ArrayLit:
		for _, e := range n.Elems {
			Walk(e, v)
		}
	case *Member:
		Walk(n.Obj, v)
	case *Index:
		Walk(n.Obj, v)
		Walk(n.Index, v)
	case *Call:
		Walk(n.Callee, v)
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *New:
		Walk(n.Callee, v)
		for _, a := range n.Args {
			Walk(a, v)
		}
	case *Unary:
		Walk(n.X, v)
	case *Update:
		Walk(n.X, v)
	case *Binary:
		Walk(n.L, v)
		Walk(n.R, v)
	case *Logical:
		Walk(n.L, v)
		Walk(n.R, v)
	case *Cond:
		Walk(n.Test, v)
		Walk(n.Cons, v)
		Walk(n.Alt, v)
	case *Assign:
		Walk(n.Target, v)
		Walk(n.Value, v)
	case *Seq:
		Walk(n.L, v)
		Walk(n.R, v)
	case *VarDecl:
		for _, d := range n.Decls {
			if d.Init != nil {
				Walk(d.Init, v)
			}
		}
	case *ExprStmt:
		Walk(n.X, v)
	case *Block:
		walkStmts(n.Body, v)
	case *If:
		Walk(n.Test, v)
		Walk(n.Cons, v)
		if n.Alt != nil {
			Walk(n.Alt, v)
		}
	case *While:
		Walk(n.Test, v)
		Walk(n.Body, v)
	case *DoWhile:
		Walk(n.Body, v)
		Walk(n.Test, v)
	case *For:
		if n.Init != nil {
			Walk(n.Init, v)
		}
		if n.Test != nil {
			Walk(n.Test, v)
		}
		if n.Update != nil {
			Walk(n.Update, v)
		}
		Walk(n.Body, v)
	case *ForIn:
		Walk(n.Obj, v)
		Walk(n.Body, v)
	case *Return:
		if n.Value != nil {
			Walk(n.Value, v)
		}
	case *Throw:
		Walk(n.Value, v)
	case *Try:
		Walk(n.Block, v)
		if n.Catch != nil {
			Walk(n.Catch, v)
		}
		if n.Finally != nil {
			Walk(n.Finally, v)
		}
	case *FunctionDecl:
		Walk(n.Fn, v)
	case *Switch:
		Walk(n.Disc, v)
		for _, c := range n.Cases {
			if c.Test != nil {
				Walk(c.Test, v)
			}
			walkStmts(c.Body, v)
		}
	}
}

func walkStmts(ss []Stmt, v Visit) {
	for _, s := range ss {
		Walk(s, v)
	}
}
