// Package cliexit is the canonical exit-code table for the command-line
// tools. Every CLI maps its outcomes through these constants, the README's
// "Exit codes" section embeds MarkdownTable() verbatim, and a test in
// internal/clitest asserts the two never drift apart: per-command codes
// stay distinct and the docs match this source of truth.
package cliexit

import (
	"fmt"
	"sort"
	"strings"
)

// Shared outcome codes. 0-2 mean the same thing in every command; 3-7 are
// analysis outcomes used by the tools that run analyses.
const (
	OK    = 0 // success
	Error = 1 // generic failure (I/O, parse, internal)
	Usage = 2 // bad flags or arguments

	FlushCap  = 3 // analysis stopped at the heap-flush cap; facts are sound
	Budget    = 4 // instrumented execution exhausted its step budget
	Stack     = 5 // instrumented call-stack overflow
	Exception = 6 // analyzed program threw an uncaught exception
	Partial   = 7 // stopped by -timeout/cancellation; partial output is sound

	// Violation is detfuzz's "oracle violation found". It reuses the
	// numeric value 3: detfuzz never stops at a flush cap, so the value is
	// unambiguous within that command's table.
	Violation = 3
)

// Row is one documented exit code of one command.
type Row struct {
	Code    int
	Meaning string
}

// Commands lists every CLI in the order the docs present them.
var Commands = []string{"detrun", "detspec", "detbench", "detfuzz", "detserve"}

// Tables is the documented exit-code table per command.
var Tables = map[string][]Row{
	"detrun": {
		{OK, "analysis completed"},
		{Error, "generic error (I/O, parse, internal)"},
		{Usage, "usage error"},
		{FlushCap, "analysis stopped at the heap-flush cap (-max-flushes); facts printed are sound"},
		{Budget, "instrumented execution exhausted its step budget"},
		{Stack, "instrumented call-stack overflow"},
		{Exception, "analyzed program threw an uncaught exception"},
		{Partial, "run stopped by -timeout or cancellation; facts printed are sound"},
	},
	"detspec": {
		{OK, "specialized program emitted"},
		{Error, "generic error (I/O, parse, internal)"},
		{Usage, "usage error"},
		{Partial, "dynamic analysis stopped by -timeout or cancellation; specialized with sound partial facts"},
	},
	"detbench": {
		{OK, "all requested experiment cells completed"},
		{Error, "generic error (I/O, internal)"},
		{Usage, "usage error"},
		{Partial, "-timeout expired; results cover only the cells that completed"},
	},
	"detfuzz": {
		{OK, "campaign clean: no violation survived"},
		{Error, "generic error (report encoding, I/O)"},
		{Usage, "usage error"},
		{Violation, "at least one soundness violation or interpreter divergence found"},
	},
	"detserve": {
		{OK, "clean shutdown, including a graceful SIGTERM/SIGINT drain"},
		{Error, "server error (bind or serve failure)"},
		{Usage, "usage error"},
	},
}

// UsageText renders a command's table for its -help output.
func UsageText(cmd string) string {
	var b strings.Builder
	b.WriteString("exit codes:")
	for _, r := range Tables[cmd] {
		fmt.Fprintf(&b, "\n  %d  %s", r.Code, r.Meaning)
	}
	return b.String()
}

// MarkdownTable renders every command's table as the README "Exit codes"
// section body. The README embeds this output verbatim;
// internal/clitest's TestExitCodeTable fails when the two drift, and its
// failure message carries the expected text to paste back in.
func MarkdownTable() string {
	var b strings.Builder
	for i, cmd := range Commands {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "**%s**\n\n", cmd)
		b.WriteString("| code | meaning |\n|-----:|---------|\n")
		for _, r := range Tables[cmd] {
			fmt.Fprintf(&b, "| %d | %s |\n", r.Code, r.Meaning)
		}
	}
	return b.String()
}

// Distinct reports whether a command's documented codes are pairwise
// distinct, returning the first duplicated code otherwise.
func Distinct(cmd string) (int, bool) {
	seen := map[int]bool{}
	rows := append([]Row(nil), Tables[cmd]...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Code < rows[j].Code })
	for _, r := range rows {
		if seen[r.Code] {
			return r.Code, false
		}
		seen[r.Code] = true
	}
	return 0, true
}
