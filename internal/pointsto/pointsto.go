// Package pointsto is a from-scratch Andersen-style (0-CFA, [29])
// points-to and call-graph analysis for mini-JS, standing in for the WALA
// JavaScript analysis [30] used as the paper's static-analysis client
// (§2.2, §5.1).
//
// It reproduces the baseline's characteristic behaviour on reflective code:
// string values are not tracked beyond same-register constants, so a
// computed property name ("get" + prop.cap()) degrades a property access to
// a wildcard access touching every property of the receiver — exactly the
// imprecision determinacy-fact-driven specialization removes. Functions are
// analyzed on demand when they become reachable, so lazily-initialized code
// (jQuery 1.2's pattern) costs nothing.
//
// The analysis is context-insensitive by design: the specializer
// (internal/specialize) materializes per-context clones as distinct
// functions, which is how the paper applies determinacy facts ("creating
// clones of functions based on the full call stacks present in determinacy
// facts").
package pointsto

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
)

// ObjID identifies an abstract object.
type ObjID int

// ObjKind classifies abstract objects.
type ObjKind int

// Abstract object kinds.
const (
	KAlloc   ObjKind = iota // object/array literal or new-site
	KFunc                   // closure per MakeClosure site (or builtin ctor)
	KProto                  // a .prototype object of a function
	KNative                 // builtin function
	KSpecial                // global object, builtin prototypes, DOM objects
)

// Object is one abstract heap object.
type Object struct {
	ID   ObjID
	Kind ObjKind
	Site ir.ID        // allocation site for KAlloc/KFunc/KProto
	Fn   *ir.Function // for KFunc
	Name string       // for KNative/KSpecial and diagnostics
}

func (o *Object) String() string {
	switch o.Kind {
	case KFunc:
		return fmt.Sprintf("fn:%s@%d", o.Fn.Name, o.Site)
	case KNative:
		return "native:" + o.Name
	case KSpecial:
		return o.Name
	case KProto:
		return fmt.Sprintf("proto@%d", o.Site)
	default:
		return fmt.Sprintf("obj@%d", o.Site)
	}
}

// Options configures the analysis.
type Options struct {
	// Budget bounds solver work (points-to propagation events). 0 means
	// the default of 5 million. Exceeding it sets Result.BudgetExceeded,
	// the deterministic analogue of the paper's 10-minute timeout.
	Budget int
	// Tracer receives solve-phase events and periodic worklist snapshots
	// (EvSolver, every solverSnapshotEvery propagations). nil disables
	// tracing at no cost.
	Tracer obs.Tracer
	// Ctx, when non-nil, is polled every interruptEvery propagations; once
	// cancelled, solving stops and Result.Interrupted carries the error.
	Ctx context.Context
	// Deadline, when nonzero, stops solving the same way once the wall
	// clock passes it.
	Deadline time.Time
}

// solverSnapshotEvery is the propagation-count interval between EvSolver
// snapshots; a power of two so the check is a mask.
const solverSnapshotEvery = 8192

// interruptEvery is the propagation interval between cooperative
// interrupt polls; a power of two so the check is a mask.
const interruptEvery = 2048

// Result carries the analysis outputs.
type Result struct {
	// Callees maps call-site instruction IDs to possible callees.
	Callees map[ir.ID][]*Object
	// BudgetExceeded reports that solving stopped early (the "✗" rows of
	// Table 1).
	BudgetExceeded bool
	// Interrupted is non-nil when solving stopped on context cancellation
	// or a wall-clock deadline. The points-to sets reflect only the work
	// done so far — an under-approximation — so clients must treat an
	// interrupted result like a budget-exceeded one, never as a sound
	// whole-program answer.
	Interrupted error
	// Propagations counts points-to propagation events (the work metric).
	Propagations int
	// NumObjects and NumNodes describe problem size.
	NumObjects int
	NumNodes   int
	// ReachableFuncs counts user functions that became reachable.
	ReachableFuncs int
	// EvalSites lists call sites whose only resolved callee is the eval
	// native: code the static analysis cannot see.
	EvalSites []ir.ID
	// WorklistHWM is the worklist's high-water mark, a measure of how
	// bursty propagation was (sharding/batching candidates watch this).
	WorklistHWM int
	// Duration is solver wall-clock time.
	Duration time.Duration

	an *analysis
}

// PointsToVar returns the abstract objects a function-local variable may
// hold.
func (r *Result) PointsToVar(fn *ir.Function, slot int) []*Object {
	n := r.an.varNode(fn, slot)
	return r.an.objsOf(n)
}

// PointsToGlobal returns the abstract objects a global may hold.
func (r *Result) PointsToGlobal(name string) []*Object {
	n := r.an.fieldNode(r.an.globalObj, name)
	return r.an.objsOf(n)
}

// CalleesAt returns the possible callees of a call site.
func (r *Result) CalleesAt(site ir.ID) []*Object { return r.Callees[site] }

// ---------------------------------------------------------------------------

// bitset is a simple growable bitset over ObjIDs.
type bitset []uint64

func (b *bitset) add(i ObjID) bool {
	w, m := int(i)/64, uint64(1)<<(uint(i)%64)
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	if (*b)[w]&m != 0 {
		return false
	}
	(*b)[w] |= m
	return true
}

func (b bitset) has(i ObjID) bool {
	w, m := int(i)/64, uint64(1)<<(uint(i)%64)
	return w < len(b) && b[w]&m != 0
}

func (b bitset) forEach(f func(ObjID)) {
	for w, word := range b {
		for word != 0 {
			bit := word & -word
			idx := ObjID(w*64 + trailingZeros(bit))
			f(idx)
			word &^= bit
		}
	}
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// constraint reacts to new objects arriving at a node.
type constraint interface {
	apply(a *analysis, o ObjID)
}

type node struct {
	pts         bitset
	delta       []ObjID
	copies      []int
	copySet     map[int]bool
	constraints []constraint
	constrKeys  map[constrKey]bool
	inWorklist  bool
}

// constrKey identifies a deduplicatable constraint as a comparable value,
// so attaching one costs a struct map probe instead of rendering a string:
// kind distinguishes loads from stores, wild/field mirror the selector, and
// node is the constraint's dst (loads) or src (stores) endpoint.
type constrKey struct {
	kind  uint8 // 'l' for loads, 's' for stores
	wild  bool
	field string
	node  int
}

// keyedConstraint marks constraints that participate in deduplication.
type keyedConstraint interface {
	constraint
	ckey() constrKey
}

// analysis is the solver state.
type analysis struct {
	mod  *ir.Module
	opts Options

	objs  []*Object
	nodes []*node

	varNodes   map[varKey]int
	regNodes   map[regKey]int
	fieldNodes map[fieldKey]int
	protoNodes map[ObjID]int
	wildNodes  map[ObjID]int
	retNodes   map[int]int // function index -> return node

	// fieldsOf tracks the named fields materialized per object, and
	// wildcard-load subscribers to notify when new fields appear.
	fieldsOf  map[ObjID]map[string]int
	wildLoads map[ObjID][]int

	// processed marks functions whose bodies have been translated to
	// constraints (reachability).
	processed map[int]bool

	// regStr tracks registers holding known constant strings (same-function
	// constant propagation only, as in typical baselines).
	regStr map[regKey]*string

	// funcObjOf maps MakeClosure sites to their function object, protoObjOf
	// to the associated .prototype object.
	funcObjOf  map[ir.ID]ObjID
	allocObjOf map[ir.ID]ObjID

	callSites map[ir.ID]*callInfo

	globalObj ObjID
	protos    map[string]ObjID
	evalObj   ObjID

	worklist    []int
	worklistHWM int
	work        int
	exceeded    bool
	interrupted error
	tracer      obs.Tracer
}

type varKey struct {
	fn   int
	slot int
}

type regKey struct {
	fn  int
	reg ir.Reg
}

type fieldKey struct {
	obj   ObjID
	field string
}

type callInfo struct {
	site     ir.ID
	fn       *ir.Function // caller
	args     []ir.Reg
	this     ir.Reg
	dst      ir.Reg
	isNew    bool
	resolved map[ObjID]bool
}

// AnalyzeGuarded is Analyze behind a guard panic boundary: a solver panic
// returns as a structured *guard.RunError instead of crashing the caller.
// The batch layers and the public API route through it so one poisoned
// module cannot take down a whole experiment sweep.
func AnalyzeGuarded(mod *ir.Module, opts Options) (res *Result, err error) {
	defer guard.Boundary(&err, "solve", nil)
	return Analyze(mod, opts), nil
}

// Analyze runs the points-to analysis on a module.
func Analyze(mod *ir.Module, opts Options) *Result {
	if opts.Budget == 0 {
		opts.Budget = 5_000_000
	}
	a := &analysis{
		mod:        mod,
		opts:       opts,
		varNodes:   map[varKey]int{},
		regNodes:   map[regKey]int{},
		fieldNodes: map[fieldKey]int{},
		protoNodes: map[ObjID]int{},
		wildNodes:  map[ObjID]int{},
		retNodes:   map[int]int{},
		fieldsOf:   map[ObjID]map[string]int{},
		wildLoads:  map[ObjID][]int{},
		processed:  map[int]bool{},
		regStr:     map[regKey]*string{},
		funcObjOf:  map[ir.ID]ObjID{},
		allocObjOf: map[ir.ID]ObjID{},
		callSites:  map[ir.ID]*callInfo{},
		protos:     map[string]ObjID{},
		tracer:     opts.Tracer,
	}
	start := time.Now()
	done := obs.PhaseScope(a.tracer, "solve")
	a.setupBuiltins()
	a.processFunction(mod.Top())
	a.solve()
	a.snapshot()
	done()

	res := &Result{
		Callees:        map[ir.ID][]*Object{},
		BudgetExceeded: a.exceeded,
		Interrupted:    a.interrupted,
		Propagations:   a.work,
		NumObjects:     len(a.objs),
		NumNodes:       len(a.nodes),
		WorklistHWM:    a.worklistHWM,
		Duration:       time.Since(start),
		an:             a,
	}
	for fi := range a.processed {
		if fi >= 0 {
			res.ReachableFuncs++
		}
	}
	for site, ci := range a.callSites {
		onlyEval := len(ci.resolved) > 0
		for o := range ci.resolved {
			res.Callees[site] = append(res.Callees[site], a.objs[o])
			if o != a.evalObj {
				onlyEval = false
			}
		}
		if onlyEval {
			res.EvalSites = append(res.EvalSites, site)
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Node and object management

func (a *analysis) newObject(o *Object) ObjID {
	o.ID = ObjID(len(a.objs))
	a.objs = append(a.objs, o)
	return o.ID
}

func (a *analysis) newNode() int {
	a.nodes = append(a.nodes, &node{})
	return len(a.nodes) - 1
}

func (a *analysis) varNode(fn *ir.Function, slot int) int {
	k := varKey{fn.Index, slot}
	n, ok := a.varNodes[k]
	if !ok {
		n = a.newNode()
		a.varNodes[k] = n
	}
	return n
}

func (a *analysis) regNode(fn *ir.Function, reg ir.Reg) int {
	k := regKey{fn.Index, reg}
	n, ok := a.regNodes[k]
	if !ok {
		n = a.newNode()
		a.regNodes[k] = n
	}
	return n
}

// fieldNode returns the node for a named field of an object, notifying
// wildcard-load subscribers when the field is new.
func (a *analysis) fieldNode(obj ObjID, field string) int {
	k := fieldKey{obj, field}
	n, ok := a.fieldNodes[k]
	if !ok {
		n = a.newNode()
		a.fieldNodes[k] = n
		fm := a.fieldsOf[obj]
		if fm == nil {
			fm = map[string]int{}
			a.fieldsOf[obj] = fm
		}
		fm[field] = n
		for _, dst := range a.wildLoads[obj] {
			a.addCopy(n, dst)
		}
	}
	return n
}

// wildNode is the store target for property writes with unknown names.
func (a *analysis) wildNode(obj ObjID) int {
	n, ok := a.wildNodes[obj]
	if !ok {
		n = a.newNode()
		a.wildNodes[obj] = n
	}
	return n
}

// protoNode holds the possible prototype objects of an object.
func (a *analysis) protoNode(obj ObjID) int {
	n, ok := a.protoNodes[obj]
	if !ok {
		n = a.newNode()
		a.protoNodes[obj] = n
	}
	return n
}

func (a *analysis) retNode(fn *ir.Function) int {
	n, ok := a.retNodes[fn.Index]
	if !ok {
		n = a.newNode()
		a.retNodes[fn.Index] = n
	}
	return n
}

func (a *analysis) objsOf(n int) []*Object {
	var out []*Object
	a.nodes[n].pts.forEach(func(o ObjID) { out = append(out, a.objs[o]) })
	return out
}

// ---------------------------------------------------------------------------
// Graph construction helpers

func (a *analysis) addObj(n int, o ObjID) {
	nd := a.nodes[n]
	if nd.pts.add(o) {
		nd.delta = append(nd.delta, o)
		a.enqueue(n)
	}
}

func (a *analysis) addCopy(from, to int) {
	if from == to {
		return
	}
	nd := a.nodes[from]
	// Deduplicate edges: shared sources (prototype wildcards) otherwise
	// accumulate one edge per load site per object, a quadratic blowup in
	// solver time without changing the points-to result.
	if nd.copySet == nil {
		nd.copySet = make(map[int]bool, 4)
	}
	if nd.copySet[to] {
		return
	}
	nd.copySet[to] = true
	nd.copies = append(nd.copies, to)
	// Propagate existing objects along the new edge.
	nd.pts.forEach(func(o ObjID) { a.addObj(to, o) })
}

func (a *analysis) addConstraint(n int, c constraint) {
	nd := a.nodes[n]
	if k, ok := c.(keyedConstraint); ok {
		key := k.ckey()
		if nd.constrKeys == nil {
			nd.constrKeys = make(map[constrKey]bool, 4)
		}
		if nd.constrKeys[key] {
			return
		}
		nd.constrKeys[key] = true
	}
	nd.constraints = append(nd.constraints, c)
	nd.pts.forEach(func(o ObjID) { c.apply(a, o) })
}

// addLoad attaches a load constraint to node n like addConstraint would,
// but checks the dedup table before allocating the constraint at all. The
// recursive prototype attachment in loadC.apply re-derives the same load
// once per arriving object, so on the hot path the probe almost always
// hits and the allocation never happens.
func (a *analysis) addLoad(n int, field string, wild bool, dst int) {
	nd := a.nodes[n]
	key := constrKey{kind: 'l', wild: wild, field: field, node: dst}
	if nd.constrKeys == nil {
		nd.constrKeys = make(map[constrKey]bool, 4)
	}
	if nd.constrKeys[key] {
		return
	}
	nd.constrKeys[key] = true
	c := &loadC{field: field, wild: wild, dst: dst}
	nd.constraints = append(nd.constraints, c)
	nd.pts.forEach(func(o ObjID) { c.apply(a, o) })
}

func (a *analysis) enqueue(n int) {
	nd := a.nodes[n]
	if !nd.inWorklist {
		nd.inWorklist = true
		a.worklist = append(a.worklist, n)
		if len(a.worklist) > a.worklistHWM {
			a.worklistHWM = len(a.worklist)
		}
	}
}

// snapshot emits an EvSolver event describing the current solver state.
func (a *analysis) snapshot() {
	if a.tracer == nil {
		return
	}
	a.tracer.Event(obs.Event{Kind: obs.EvSolver,
		N1: int64(a.work), N2: int64(len(a.worklist)),
		N3: int64(len(a.nodes)), N4: int64(len(a.objs))})
}

func (a *analysis) solve() {
	// Poll once up front: a context that is already dead (or a deadline
	// already past) must stop even a solve too small to reach the
	// every-interruptEvery poll inside the loop.
	if err := guard.CheckInterrupt(a.opts.Ctx, a.opts.Deadline); err != nil {
		a.interrupted = err
		return
	}
	for len(a.worklist) > 0 {
		n := a.worklist[len(a.worklist)-1]
		a.worklist = a.worklist[:len(a.worklist)-1]
		nd := a.nodes[n]
		nd.inWorklist = false
		delta := nd.delta
		nd.delta = nil
		for _, o := range delta {
			a.work++
			if a.work > a.opts.Budget {
				a.exceeded = true
				return
			}
			if a.work&(interruptEvery-1) == 0 {
				if faultinject.Armed() {
					faultinject.Hit(faultinject.SiteSolverProp)
				}
				if err := guard.CheckInterrupt(a.opts.Ctx, a.opts.Deadline); err != nil {
					a.interrupted = err
					return
				}
			}
			if a.tracer != nil && a.work%solverSnapshotEvery == 0 {
				a.snapshot()
			}
			for _, to := range nd.copies {
				a.addObj(to, o)
			}
			for _, c := range nd.constraints {
				c.apply(a, o)
			}
		}
	}
}

// Export publishes the solver's result counters into a metrics registry
// using the pipeline's canonical metric names.
func (r *Result) Export(m *obs.Metrics) {
	m.Counter("pointsto_propagations_total").Add(int64(r.Propagations))
	m.Gauge("pointsto_nodes").Set(float64(r.NumNodes))
	m.Gauge("pointsto_objects").Set(float64(r.NumObjects))
	m.Gauge("pointsto_reachable_funcs").Set(float64(r.ReachableFuncs))
	m.Gauge("pointsto_worklist_hwm").SetMax(float64(r.WorklistHWM))
	m.Gauge("pointsto_eval_sites").Set(float64(len(r.EvalSites)))
	exceeded := 0.0
	if r.BudgetExceeded {
		exceeded = 1
	}
	m.Gauge("pointsto_budget_exceeded").Set(exceeded)
	interrupted := 0.0
	if r.Interrupted != nil {
		interrupted = 1
	}
	m.Gauge("pointsto_interrupted").Set(interrupted)
	m.Gauge("pointsto_duration_seconds").Set(r.Duration.Seconds())
}

// FunctionReached reports whether the function with the given index became
// reachable during solving.
func (r *Result) FunctionReached(idx int) bool { return r.an.processed[idx] }

// FieldObjects returns the points-to set of a named field of an abstract
// object (diagnostics).
func (r *Result) FieldObjects(o *Object, field string) []*Object {
	return r.an.objsOf(r.an.fieldNode(o.ID, field))
}

// WildObjects returns the wildcard points-to set of an abstract object
// (diagnostics).
func (r *Result) WildObjects(o *Object) []*Object {
	return r.an.objsOf(r.an.wildNode(o.ID))
}
