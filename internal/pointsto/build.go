package pointsto

import (
	"strconv"

	"determinacy/internal/ir"
)

// processFunction translates a function body into constraints, once. It is
// invoked when a function first becomes reachable: at startup for the top
// level and from call resolution otherwise, so dead code costs nothing.
func (a *analysis) processFunction(fn *ir.Function) {
	if a.processed[fn.Index] {
		return
	}
	a.processed[fn.Index] = true
	a.block(fn, fn.Body)
}

// defFn returns the function whose slots a VarRef resolves into.
func defFn(fn *ir.Function, hops int) *ir.Function {
	for i := 0; i < hops; i++ {
		fn = fn.Parent
	}
	return fn
}

func (a *analysis) block(fn *ir.Function, b *ir.Block) {
	if b == nil {
		return
	}
	for _, in := range b.Instrs {
		a.instr(fn, in)
	}
}

func (a *analysis) instr(fn *ir.Function, in ir.Instr) {
	switch in := in.(type) {
	case *ir.Const:
		if in.Val.Kind == ir.LitString {
			s := in.Val.Str
			a.regStr[regKey{fn.Index, in.Dst}] = &s
		} else {
			a.regStr[regKey{fn.Index, in.Dst}] = nil
		}
	case *ir.Move:
		a.regStr[regKey{fn.Index, in.Dst}] = joinStr(a.regStr[regKey{fn.Index, in.Dst}], a.regStr[regKey{fn.Index, in.Src}], a.seen(fn, in.Dst))
		a.addCopy(a.regNode(fn, in.Src), a.regNode(fn, in.Dst))
	case *ir.LoadVar:
		df := defFn(fn, in.Var.Hops)
		a.addCopy(a.varNode(df, in.Var.Slot), a.regNode(fn, in.Dst))
	case *ir.StoreVar:
		df := defFn(fn, in.Var.Hops)
		a.addCopy(a.regNode(fn, in.Src), a.varNode(df, in.Var.Slot))
	case *ir.LoadGlobal:
		a.addCopy(a.fieldNode(a.globalObj, in.Name), a.regNode(fn, in.Dst))
	case *ir.StoreGlobal:
		a.addCopy(a.regNode(fn, in.Src), a.fieldNode(a.globalObj, in.Name))
	case *ir.MakeClosure:
		fo := a.funcObject(in.ID, in.Fn)
		a.addObj(a.regNode(fn, in.Dst), fo)
	case *ir.MakeObject:
		o := a.allocObject(in.ID, "Object")
		a.addObj(a.protoNode(o), a.protos["Object"])
		for _, p := range in.Props {
			a.addCopy(a.regNode(fn, p.Val), a.fieldNode(o, p.Key))
		}
		a.addObj(a.regNode(fn, in.Dst), o)
	case *ir.MakeArray:
		o := a.allocObject(in.ID, "Array")
		a.addObj(a.protoNode(o), a.protos["Array"])
		for i, e := range in.Elems {
			a.addCopy(a.regNode(fn, e), a.fieldNode(o, strconv.Itoa(i)))
		}
		a.addObj(a.regNode(fn, in.Dst), o)
	case *ir.GetField:
		a.addConstraint(a.regNode(fn, in.Obj),
			&loadC{field: in.Name, dst: a.regNode(fn, in.Dst)})
	case *ir.GetProp:
		if s := a.regStr[regKey{fn.Index, in.Prop}]; s != nil {
			a.addConstraint(a.regNode(fn, in.Obj),
				&loadC{field: *s, dst: a.regNode(fn, in.Dst)})
		} else {
			a.addConstraint(a.regNode(fn, in.Obj),
				&loadC{wild: true, dst: a.regNode(fn, in.Dst)})
		}
	case *ir.SetField:
		a.addConstraint(a.regNode(fn, in.Obj),
			&storeC{field: in.Name, src: a.regNode(fn, in.Src)})
	case *ir.SetProp:
		if s := a.regStr[regKey{fn.Index, in.Prop}]; s != nil {
			a.addConstraint(a.regNode(fn, in.Obj),
				&storeC{field: *s, src: a.regNode(fn, in.Src)})
		} else {
			a.addConstraint(a.regNode(fn, in.Obj),
				&storeC{wild: true, src: a.regNode(fn, in.Src)})
		}
	case *ir.BinOp, *ir.UnOp, *ir.DelField, *ir.DelProp:
		// No pointer flow; results are primitives.
	case *ir.Call:
		ci := &callInfo{site: in.ID, fn: fn, args: in.Args, this: in.This, dst: in.Dst, resolved: map[ObjID]bool{}}
		a.callSites[in.ID] = ci
		a.addConstraint(a.regNode(fn, in.Fn), &callC{ci: ci})
	case *ir.New:
		ci := &callInfo{site: in.ID, fn: fn, args: in.Args, this: ir.NoReg, dst: in.Dst, isNew: true, resolved: map[ObjID]bool{}}
		a.callSites[in.ID] = ci
		a.addConstraint(a.regNode(fn, in.Fn), &callC{ci: ci})
	case *ir.Return:
		if in.Src != ir.NoReg {
			a.addCopy(a.regNode(fn, in.Src), a.retNode(fn))
		}
	case *ir.Throw:
		a.addCopy(a.regNode(fn, in.Src), a.thrownNode())
	case *ir.If:
		a.block(fn, in.Then)
		a.block(fn, in.Else)
	case *ir.While:
		a.block(fn, in.CondBlock)
		a.block(fn, in.Body)
		a.block(fn, in.Update)
	case *ir.ForIn:
		a.block(fn, in.Body)
	case *ir.Try:
		a.block(fn, in.Body)
		if in.HasCatch {
			if in.GlobalCatch != "" {
				a.addCopy(a.thrownNode(), a.fieldNode(a.globalObj, in.GlobalCatch))
			} else {
				df := defFn(fn, in.CatchVar.Hops)
				a.addCopy(a.thrownNode(), a.varNode(df, in.CatchVar.Slot))
			}
		}
		a.block(fn, in.Catch)
		a.block(fn, in.Finally)
	}
}

// seen reports whether a register already had a string constant recorded
// (two joins at a merge degrade to unknown unless equal).
func (a *analysis) seen(fn *ir.Function, r ir.Reg) bool {
	_, ok := a.regStr[regKey{fn.Index, r}]
	return ok
}

func joinStr(old, new *string, hadOld bool) *string {
	if !hadOld {
		return new
	}
	if old == nil || new == nil {
		return nil
	}
	if *old == *new {
		return old
	}
	return nil
}

var thrownNodeKey = -1

func (a *analysis) thrownNode() int {
	n, ok := a.retNodes[thrownNodeKey]
	if !ok {
		n = a.newNode()
		a.retNodes[thrownNodeKey] = n
	}
	return n
}

// funcObject materializes the function object and its .prototype object for
// a closure site.
func (a *analysis) funcObject(site ir.ID, fn *ir.Function) ObjID {
	if fo, ok := a.funcObjOf[site]; ok {
		return fo
	}
	fo := a.newObject(&Object{Kind: KFunc, Site: site, Fn: fn})
	a.funcObjOf[site] = fo
	a.addObj(a.protoNode(fo), a.protos["Function"])
	po := a.newObject(&Object{Kind: KProto, Site: site, Name: fn.Name + ".prototype"})
	a.addObj(a.protoNode(po), a.protos["Object"])
	a.addObj(a.fieldNode(fo, "prototype"), po)
	a.addObj(a.fieldNode(po, "constructor"), fo)
	return fo
}

func (a *analysis) allocObject(site ir.ID, class string) ObjID {
	if o, ok := a.allocObjOf[site]; ok {
		return o
	}
	o := a.newObject(&Object{Kind: KAlloc, Site: site, Name: class})
	a.allocObjOf[site] = o
	return o
}

// ---------------------------------------------------------------------------
// Constraints

// loadC is dst ⊇ o.field (or all fields when wild), following prototype
// chains.
type loadC struct {
	field string
	wild  bool
	dst   int
}

// ckey dedups identical loads attached to the same node (the recursive
// prototype attachment re-derives them constantly).
func (c *loadC) ckey() constrKey {
	return constrKey{kind: 'l', wild: c.wild, field: c.field, node: c.dst}
}

func (c *loadC) apply(a *analysis, o ObjID) {
	if c.wild {
		for _, fnode := range a.fieldsOf[o] {
			a.addCopy(fnode, c.dst)
		}
		a.wildLoads[o] = append(a.wildLoads[o], c.dst)
	} else {
		a.addCopy(a.fieldNode(o, c.field), c.dst)
	}
	a.addCopy(a.wildNode(o), c.dst)
	// Follow the prototype chain: the same load applies to every prototype
	// this object may have.
	a.addLoad(a.protoNode(o), c.field, c.wild, c.dst)
}

// storeC is o.field ⊇ src (or the wildcard when wild).
type storeC struct {
	field string
	wild  bool
	src   int
}

func (c *storeC) ckey() constrKey {
	return constrKey{kind: 's', wild: c.wild, field: c.field, node: c.src}
}

func (c *storeC) apply(a *analysis, o ObjID) {
	if c.wild {
		a.addCopy(c.src, a.wildNode(o))
		return
	}
	a.addCopy(c.src, a.fieldNode(o, c.field))
}

// callC resolves callees arriving at a call site's function node.
type callC struct {
	ci *callInfo
}

func (c *callC) apply(a *analysis, o ObjID) {
	ci := c.ci
	if ci.resolved[o] {
		return
	}
	obj := a.objs[o]
	switch obj.Kind {
	case KFunc:
		ci.resolved[o] = true
		a.wireCall(ci, o, obj.Fn)
	case KNative:
		ci.resolved[o] = true
		a.wireNative(ci, obj)
	default:
		// Calling a non-function: no call edge (a runtime TypeError).
	}
}

// wireCall connects arguments, receiver, return and self-reference for a
// user-function callee.
func (a *analysis) wireCall(ci *callInfo, funcObj ObjID, callee *ir.Function) {
	a.processFunction(callee)
	for i := range callee.Params {
		if i < len(ci.args) {
			slot := paramSlotIdx(callee, i)
			a.addCopy(a.regNode(ci.fn, ci.args[i]), a.varNode(callee, slot))
		}
	}
	if callee.SelfSlot >= 0 {
		a.addObj(a.varNode(callee, callee.SelfSlot), funcObj)
	}
	if ci.isNew {
		// The new-site object gets the callee's .prototype objects as
		// prototypes, becomes the receiver, and flows to the result
		// (together with any returned objects, per JS semantics).
		site := a.allocObject(ci.site, "New")
		a.addCopy(a.fieldNode(funcObj, "prototype"), a.protoNode(site))
		if callee.ThisSlot >= 0 {
			a.addObj(a.varNode(callee, callee.ThisSlot), site)
		}
		a.addObj(a.regNode(ci.fn, ci.dst), site)
		a.addCopy(a.retNode(callee), a.regNode(ci.fn, ci.dst))
		return
	}
	if callee.ThisSlot >= 0 {
		if ci.this != ir.NoReg {
			a.addCopy(a.regNode(ci.fn, ci.this), a.varNode(callee, callee.ThisSlot))
		} else {
			a.addObj(a.varNode(callee, callee.ThisSlot), a.globalObj)
		}
	}
	a.addCopy(a.retNode(callee), a.regNode(ci.fn, ci.dst))
}

func paramSlotIdx(fn *ir.Function, i int) int {
	name := fn.Params[i]
	for s, n := range fn.SlotNames {
		if n == name {
			return s
		}
	}
	return i
}

// wireNative models the pointer behaviour of builtins. Unmodeled natives
// return primitives and have no pointer effects — the standard baseline
// treatment (string semantics are exactly what the analysis cannot see).
func (a *analysis) wireNative(ci *callInfo, obj *Object) {
	switch obj.Name {
	case "call":
		// f.call(this, ...args): the receiver of the .call is the function.
		if ci.this == ir.NoReg {
			return
		}
		derived := &callInfo{site: ci.site, fn: ci.fn, dst: ci.dst, this: ir.NoReg, resolved: map[ObjID]bool{}}
		if len(ci.args) > 0 {
			derived.this = ci.args[0]
			derived.args = ci.args[1:]
		}
		a.addConstraint(a.regNode(ci.fn, ci.this), &callC{ci: derived})
	case "apply":
		// f.apply(this, arr): argument values are approximated by the
		// array's fields flowing to every parameter (coarse but sound for
		// the object graph).
		if ci.this == ir.NoReg {
			return
		}
		derived := &callInfo{site: ci.site, fn: ci.fn, dst: ci.dst, this: ir.NoReg, resolved: map[ObjID]bool{}}
		if len(ci.args) > 0 {
			derived.this = ci.args[0]
		}
		a.addConstraint(a.regNode(ci.fn, ci.this), &applyC{ci: derived, arr: argReg(ci, 1)})
	case "push", "unshift":
		if ci.this != ir.NoReg {
			for _, arg := range ci.args {
				a.addConstraint(a.regNode(ci.fn, ci.this), &storeC{wild: true, src: a.regNode(ci.fn, arg)})
			}
		}
	case "pop", "shift":
		if ci.this != ir.NoReg {
			a.addConstraint(a.regNode(ci.fn, ci.this), &loadC{wild: true, dst: a.regNode(ci.fn, ci.dst)})
		}
	case "forEach", "map", "filter":
		if ci.this != ir.NoReg && len(ci.args) > 0 {
			a.addConstraint(a.regNode(ci.fn, ci.args[0]), &callbackC{
				elems: a.regNode(ci.fn, ci.this), caller: ci.fn,
			})
		}
	case "getElementById", "createElement", "createTextNode", "appendChild", "removeChild":
		a.addObj(a.regNode(ci.fn, ci.dst), a.protos["DOMElement"])
	case "getElementsByTagName":
		a.addObj(a.regNode(ci.fn, ci.dst), a.protos["DOMNodeList"])
	case "setTimeout", "setInterval":
		if len(ci.args) > 0 {
			derived := &callInfo{site: ci.site, fn: ci.fn, dst: ci.dst, this: ir.NoReg, resolved: map[ObjID]bool{}}
			a.addConstraint(a.regNode(ci.fn, ci.args[0]), &callC{ci: derived})
		}
	case "addEventListener", "attachEvent":
		if len(ci.args) > 1 {
			derived := &callInfo{site: ci.site, fn: ci.fn, dst: ci.dst, this: ir.NoReg,
				args: nil, resolved: map[ObjID]bool{}}
			a.addConstraint(a.regNode(ci.fn, ci.args[1]), &eventHandlerC{ci: derived})
		}
	case "Object", "Array", "Error", "TypeError", "ReferenceError", "RangeError", "SyntaxError":
		o := a.allocObject(ci.site, obj.Name)
		a.addObj(a.protoNode(o), a.protoForCtor(obj.Name))
		a.addObj(a.regNode(ci.fn, ci.dst), o)
	case "eval":
		// Static analysis cannot see eval'd code; the site is recorded in
		// Result.EvalSites.
	}
}

func argReg(ci *callInfo, i int) int {
	if i < len(ci.args) {
		return int(ci.args[i])
	}
	return -1
}

func (a *analysis) protoForCtor(name string) ObjID {
	switch name {
	case "Array":
		return a.protos["Array"]
	case "Object":
		return a.protos["Object"]
	default:
		return a.protos["Error"]
	}
}

// applyC wires f.apply: functions arriving at the node are invoked with
// array-element arguments.
type applyC struct {
	ci  *callInfo
	arr int // register index of the argument array, or -1
}

func (c *applyC) apply(a *analysis, o ObjID) {
	obj := a.objs[o]
	if obj.Kind != KFunc {
		if obj.Kind == KNative {
			a.wireNative(c.ci, obj)
		}
		return
	}
	if c.ci.resolved[o] {
		return
	}
	c.ci.resolved[o] = true
	callee := obj.Fn
	a.processFunction(callee)
	if c.arr >= 0 {
		// Every element of the array may flow to every parameter.
		for i := range callee.Params {
			slot := paramSlotIdx(callee, i)
			a.addConstraint(a.regNode(c.ci.fn, ir.Reg(c.arr)), &loadC{wild: true, dst: a.varNode(callee, slot)})
		}
	}
	if callee.ThisSlot >= 0 && c.ci.this != ir.NoReg {
		a.addCopy(a.regNode(c.ci.fn, c.ci.this), a.varNode(callee, callee.ThisSlot))
	}
	a.addCopy(a.retNode(callee), a.regNode(c.ci.fn, c.ci.dst))
}

// callbackC invokes array-iteration callbacks with the array's contents.
type callbackC struct {
	elems  int // node holding the array objects
	caller *ir.Function
}

func (c *callbackC) apply(a *analysis, o ObjID) {
	obj := a.objs[o]
	if obj.Kind != KFunc {
		return
	}
	callee := obj.Fn
	a.processFunction(callee)
	if len(callee.Params) > 0 {
		slot := paramSlotIdx(callee, 0)
		a.addConstraint(c.elemsNode(a), &loadC{wild: true, dst: a.varNode(callee, slot)})
	}
	if callee.ThisSlot >= 0 {
		a.addObj(a.varNode(callee, callee.ThisSlot), a.globalObj)
	}
}

func (c *callbackC) elemsNode(a *analysis) int { return c.elems }

// eventHandlerC invokes DOM event handlers with an opaque event object.
type eventHandlerC struct {
	ci *callInfo
}

func (c *eventHandlerC) apply(a *analysis, o ObjID) {
	obj := a.objs[o]
	if obj.Kind != KFunc {
		return
	}
	if c.ci.resolved[o] {
		return
	}
	c.ci.resolved[o] = true
	callee := obj.Fn
	a.processFunction(callee)
	if len(callee.Params) > 0 {
		a.addObj(a.varNode(callee, paramSlotIdx(callee, 0)), a.protos["DOMEvent"])
	}
	if callee.ThisSlot >= 0 {
		a.addObj(a.varNode(callee, callee.ThisSlot), a.protos["DOMElement"])
	}
}
