package pointsto_test

import (
	"testing"

	"determinacy/internal/ir"
	"determinacy/internal/pointsto"
)

func analyze(t *testing.T, src string) (*ir.Module, *pointsto.Result) {
	t.Helper()
	mod, err := ir.Compile("t.js", src)
	if err != nil {
		t.Fatal(err)
	}
	return mod, pointsto.Analyze(mod, pointsto.Options{})
}

// calleesAtLine collects the names of user-function callees of calls on a
// source line.
func calleesAtLine(mod *ir.Module, res *pointsto.Result, line int) map[string]bool {
	out := map[string]bool{}
	for site, objs := range res.Callees {
		in := mod.InstrAt(site)
		if in == nil || in.IPos().Line != line {
			continue
		}
		for _, o := range objs {
			if o.Fn != nil {
				out[o.Fn.Name] = true
			} else {
				out["native:"+o.Name] = true
			}
		}
	}
	return out
}

func TestDirectCallResolution(t *testing.T) {
	mod, res := analyze(t, `
		function f() { return 1; }
		function g() { return 2; }
		f();
	`)
	cs := calleesAtLine(mod, res, 4)
	if !cs["f"] || cs["g"] || len(cs) != 1 {
		t.Errorf("callees = %v, want exactly f", cs)
	}
}

func TestHigherOrderFlow(t *testing.T) {
	mod, res := analyze(t, `
		function apply1(fn, x) { return fn(x); }
		function inc(n) { return n + 1; }
		function dec(n) { return n - 1; }
		apply1(inc, 1);
		apply1(dec, 2);
	`)
	cs := calleesAtLine(mod, res, 2)
	if !cs["inc"] || !cs["dec"] {
		t.Errorf("fn(x) should resolve to inc and dec, got %v", cs)
	}
}

func TestPrototypeMethodResolution(t *testing.T) {
	mod, res := analyze(t, `
		function Dog() {}
		Dog.prototype.bark = function bark() { return "woof"; };
		var d = new Dog();
		d.bark();
	`)
	cs := calleesAtLine(mod, res, 5)
	if !cs["bark"] {
		t.Errorf("method through prototype not resolved: %v", cs)
	}
}

func TestWildcardSmear(t *testing.T) {
	// A computed property write smears values over the wildcard; reads of
	// any field see them (the baseline imprecision the paper exploits).
	mod, res := analyze(t, `
		var table = {};
		function a() { return 1; }
		function b() { return 2; }
		var key = "x" + "y";
		table[key] = a;
		table.other = b;
		table.missing();
	`)
	cs := calleesAtLine(mod, res, 8)
	if !cs["a"] {
		t.Errorf("wildcard value must reach field reads: %v", cs)
	}
	if cs["b"] {
		t.Errorf("named field must not leak into other fields: %v", cs)
	}
}

func TestConstStringIndexPrecise(t *testing.T) {
	// A literal index behaves like a static field access.
	mod, res := analyze(t, `
		var table = {};
		function a() { return 1; }
		function b() { return 2; }
		table["x"] = a;
		table["y"] = b;
		table["x"]();
	`)
	cs := calleesAtLine(mod, res, 7)
	if !cs["a"] || cs["b"] {
		t.Errorf("literal-index call should resolve to exactly a: %v", cs)
	}
}

func TestLazyReachability(t *testing.T) {
	_, res := analyze(t, `
		function dead() {
			var a = heavyCompute();
			return a;
		}
		function live() { return 1; }
		live();
	`)
	// dead is never called: only the top level and live are processed.
	if res.ReachableFuncs != 2 {
		t.Errorf("reachable funcs = %d, want 2 (top level + live)", res.ReachableFuncs)
	}
}

func TestBudgetExceeded(t *testing.T) {
	mod, err := ir.Compile("t.js", `
		var o = {};
		function mk(i) { o["f" + i] = function() { return o; }; }
		for (var i = 0; i < 5; i++) mk(i);
		o.a();
	`)
	if err != nil {
		t.Fatal(err)
	}
	res := pointsto.Analyze(mod, pointsto.Options{Budget: 10})
	if !res.BudgetExceeded {
		t.Error("tiny budget must be exceeded")
	}
}

func TestEvalSiteDetection(t *testing.T) {
	mod, res := analyze(t, `
		var x = eval("1 + 2");
		var f = function real() { return 3; };
		f();
	`)
	if len(res.EvalSites) != 1 {
		t.Errorf("eval sites = %d, want 1", len(res.EvalSites))
	}
	if in := mod.InstrAt(res.EvalSites[0]); in == nil || in.IPos().Line != 2 {
		t.Errorf("eval site at wrong position")
	}
}

func TestCallAndApplyModeled(t *testing.T) {
	mod, res := analyze(t, `
		function target(a) { return a; }
		target.call(null, 1);
		target.apply(null, [2]);
	`)
	for _, line := range []int{3, 4} {
		cs := calleesAtLine(mod, res, line)
		if !cs["native:call"] && !cs["native:apply"] {
			t.Errorf("line %d: call/apply native not resolved: %v", line, cs)
		}
	}
	// target itself must become reachable through both.
	if res.ReachableFuncs < 2 {
		t.Errorf("target not reached through call/apply: %d", res.ReachableFuncs)
	}
}

func TestEventHandlerReachability(t *testing.T) {
	_, res := analyze(t, `
		function handler(ev) { return ev.target; }
		document.addEventListener("click", handler);
		setTimeout(function timer() { return 1; }, 0);
	`)
	if res.ReachableFuncs != 3 {
		t.Errorf("handler and timer must be statically reachable: got %d funcs", res.ReachableFuncs)
	}
}

func TestClosureVariableFlow(t *testing.T) {
	mod, res := analyze(t, `
		function mkCounter() {
			var target = function inner() { return 1; };
			return function get() { return target; };
		}
		var g = mkCounter();
		var inner = g();
		inner();
	`)
	cs := calleesAtLine(mod, res, 8)
	if !cs["inner"] {
		t.Errorf("closure-captured function not resolved: %v", cs)
	}
}

func TestThisBinding(t *testing.T) {
	mod, res := analyze(t, `
		function Box(v) { this.v = v; this.get = function boxGet() { return this.v; }; }
		var b = new Box(7);
		b.get();
	`)
	cs := calleesAtLine(mod, res, 4)
	if !cs["boxGet"] {
		t.Errorf("constructor-installed method not resolved: %v", cs)
	}
}

func TestPointsToGlobals(t *testing.T) {
	_, res := analyze(t, `
		var shared = {tag: 1};
		var alias = shared;
	`)
	a := res.PointsToGlobal("shared")
	b := res.PointsToGlobal("alias")
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("aliases must share the abstract object: %v vs %v", a, b)
	}
}
