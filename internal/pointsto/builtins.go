package pointsto

// setupBuiltins constructs the abstract global environment mirroring the
// runtimes of internal/interp and internal/core: the global object, builtin
// prototypes and constructors, the Math/console namespaces, and a shallow
// DOM model (one abstract element standing for all elements, matching the
// coarse DOM treatment of the paper's baseline [30]).
func (a *analysis) setupBuiltins() {
	special := func(name string) ObjID {
		o := a.newObject(&Object{Kind: KSpecial, Name: name})
		a.protos[name] = o
		return o
	}
	a.globalObj = special("Global")
	objectProto := special("Object")
	functionProto := special("Function")
	arrayProto := special("Array")
	stringProto := special("String")
	numberProto := special("Number")
	booleanProto := special("Boolean")
	errorProto := special("Error")
	domElement := special("DOMElement")
	domNodeList := special("DOMNodeList")
	domEvent := special("DOMEvent")

	a.addObj(a.protoNode(a.globalObj), objectProto)
	for _, p := range []ObjID{functionProto, arrayProto, stringProto, numberProto, booleanProto, errorProto} {
		a.addObj(a.protoNode(p), objectProto)
	}
	a.addObj(a.protoNode(domNodeList), arrayProto)

	native := func(name string) ObjID {
		return a.newObject(&Object{Kind: KNative, Name: name})
	}
	def := func(parent ObjID, name string) ObjID {
		o := native(name)
		a.addObj(a.fieldNode(parent, name), o)
		return o
	}

	// Global functions.
	for _, n := range []string{"parseInt", "parseFloat", "isNaN", "isFinite",
		"alert", "print", "setTimeout", "setInterval", "clearTimeout",
		"clearInterval", "addEventListener", "attachEvent", "__input", "__observe"} {
		def(a.globalObj, n)
	}
	a.evalObj = def(a.globalObj, "eval")
	a.addObj(a.fieldNode(a.globalObj, "globalThis"), a.globalObj)
	a.addObj(a.fieldNode(a.globalObj, "window"), a.globalObj)

	// Constructors with prototypes.
	ctor := func(name string, proto ObjID) ObjID {
		c := native(name)
		a.addObj(a.fieldNode(a.globalObj, name), c)
		a.addObj(a.fieldNode(c, "prototype"), proto)
		a.addObj(a.fieldNode(proto, "constructor"), c)
		return c
	}
	objCtor := ctor("Object", objectProto)
	for _, n := range []string{"keys", "create", "getPrototypeOf"} {
		def(objCtor, n)
	}
	ctor("Function", functionProto)
	arrCtor := ctor("Array", arrayProto)
	def(arrCtor, "isArray")
	strCtor := ctor("String", stringProto)
	def(strCtor, "fromCharCode")
	ctor("Number", numberProto)
	ctor("Boolean", booleanProto)
	for _, n := range []string{"Error", "TypeError", "ReferenceError", "RangeError", "SyntaxError"} {
		ctor(n, errorProto)
	}

	// Prototype methods.
	for _, n := range []string{"hasOwnProperty", "toString"} {
		def(objectProto, n)
	}
	for _, n := range []string{"call", "apply"} {
		def(functionProto, n)
	}
	for _, n := range []string{"push", "pop", "shift", "unshift", "join",
		"indexOf", "slice", "concat", "forEach", "map", "filter"} {
		def(arrayProto, n)
	}
	for _, n := range []string{"charAt", "charCodeAt", "indexOf", "lastIndexOf",
		"toUpperCase", "toLowerCase", "trim", "substring", "substr", "slice",
		"split", "replace", "concat", "toString"} {
		def(stringProto, n)
	}
	for _, n := range []string{"toString", "toFixed"} {
		def(numberProto, n)
	}
	def(errorProto, "toString")

	// Math and console namespaces.
	math := special("MathNS")
	a.addObj(a.fieldNode(a.globalObj, "Math"), math)
	for _, n := range []string{"abs", "floor", "ceil", "sqrt", "sin", "cos",
		"log", "exp", "round", "pow", "min", "max", "random"} {
		def(math, n)
	}
	console := special("ConsoleNS")
	a.addObj(a.fieldNode(a.globalObj, "console"), console)
	for _, n := range []string{"log", "warn", "error", "info"} {
		def(console, n)
	}

	// Date.
	date := native("Date")
	a.addObj(a.fieldNode(a.globalObj, "Date"), date)
	def(date, "now")

	// Shallow DOM: document and window-level APIs, one abstract element.
	document := special("Document")
	a.addObj(a.fieldNode(a.globalObj, "document"), document)
	for _, n := range []string{"getElementById", "getElementsByTagName",
		"createElement", "createTextNode", "write", "addEventListener", "attachEvent"} {
		def(document, n)
	}
	a.addObj(a.fieldNode(document, "body"), domElement)
	a.addObj(a.fieldNode(document, "documentElement"), domElement)

	for _, n := range []string{"getElementsByTagName", "appendChild",
		"removeChild", "setAttribute", "getAttribute", "addEventListener",
		"attachEvent", "removeEventListener"} {
		def(domElement, n)
	}
	// Element-valued element properties.
	for _, f := range []string{"firstChild", "parentNode"} {
		a.addObj(a.fieldNode(domElement, f), domElement)
	}
	a.addObj(a.fieldNode(domElement, "childNodes"), domNodeList)
	a.addObj(a.wildNode(domNodeList), domElement)
	a.addObj(a.fieldNode(domEvent, "target"), domElement)

	navigator := special("Navigator")
	a.addObj(a.fieldNode(a.globalObj, "navigator"), navigator)
	location := special("Location")
	a.addObj(a.fieldNode(a.globalObj, "location"), location)
}
