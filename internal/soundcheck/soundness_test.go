package soundcheck_test

import (
	"errors"
	"fmt"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/dom"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/soundcheck"
	"determinacy/internal/workload"
)

// inputsFor derives the concrete values of the indeterminate __input source
// from a run seed.
func inputsFor(runSeed uint64) map[string]interp.Value {
	return map[string]interp.Value{
		"a": interp.NumberVal(float64(runSeed % 7)),
		"b": interp.NumberVal(float64(runSeed%13) - 6),
		"c": interp.StringVal(fmt.Sprintf("in%d", runSeed%5)),
	}
}

// TestSoundnessDifferential is the executable analogue of the paper's
// Theorem 1: facts inferred from a single instrumented execution must hold
// in every concrete execution, across varying indeterminate inputs
// (Math.random seeds and __input values).
func TestSoundnessDifferential(t *testing.T) {
	const programs = 120
	const concreteRuns = 6

	for genSeed := uint64(0); genSeed < programs; genSeed++ {
		genSeed := genSeed
		t.Run(fmt.Sprintf("gen%d", genSeed), func(t *testing.T) {
			src := workload.RandomProgram(workload.GenConfig{
				Seed:      genSeed,
				WithForIn: genSeed%3 == 0,
			})

			// One instrumented run with one choice of inputs.
			modA, err := ir.Compile("gen.js", src)
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, src)
			}
			store := facts.NewStore()
			a := core.New(modA, store, core.Options{
				Seed:   1000 + genSeed,
				Inputs: inputsFor(0),
			})
			if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
				t.Fatalf("instrumented run failed: %v\nprogram:\n%s", err, src)
			}
			if len(store.Conflicts) > 0 {
				t.Fatalf("fact store conflicts: %v\nprogram:\n%s", store.Conflicts, src)
			}

			// Many concrete runs with different indeterminate inputs; every
			// determinate fact must hold in each.
			totalChecked := 0
			for run := uint64(0); run < concreteRuns; run++ {
				modB, err := ir.Compile("gen.js", src)
				if err != nil {
					t.Fatal(err)
				}
				it := interp.New(modB, interp.Options{
					Seed:   run * 77,
					Inputs: inputsFor(run),
				})
				ck := soundcheck.New(store)
				ck.Attach(it)
				if _, err := it.Run(); err != nil {
					t.Fatalf("concrete run %d failed: %v\nprogram:\n%s", run, err, src)
				}
				if len(ck.Mismatches) > 0 {
					t.Fatalf("soundness violations in run %d:\n%s\nprogram:\n%s",
						run, ck.Report(modB), src)
				}
				totalChecked += ck.Checked
			}
			if totalChecked == 0 {
				t.Logf("warning: no determinate facts exercised for seed %d", genSeed)
			}
		})
	}
}

// TestSoundnessUnderAblations: the ablated configurations trade precision,
// never soundness — their facts must also hold in every concrete run.
func TestSoundnessUnderAblations(t *testing.T) {
	configs := map[string]core.Options{
		"no-counterfactual": {DisableCounterfactual: true},
		"immediate-taint":   {ImmediateTaint: true},
		"shallow-cutoff":    {MaxCounterfactualDepth: 1},
	}
	for name, base := range configs {
		name, base := name, base
		t.Run(name, func(t *testing.T) {
			for genSeed := uint64(0); genSeed < 40; genSeed++ {
				src := workload.RandomProgram(workload.GenConfig{Seed: 7000 + genSeed, WithForIn: true})
				mod, err := ir.Compile("gen.js", src)
				if err != nil {
					t.Fatal(err)
				}
				store := facts.NewStore()
				opts := base
				opts.Seed = genSeed
				opts.Inputs = inputsFor(0)
				a := core.New(mod, store, opts)
				if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
					t.Fatalf("instrumented: %v\n%s", err, src)
				}
				for run := uint64(0); run < 3; run++ {
					modB, _ := ir.Compile("gen.js", src)
					it := interp.New(modB, interp.Options{Seed: run * 31, Inputs: inputsFor(run)})
					ck := soundcheck.New(store)
					ck.Attach(it)
					if _, err := it.Run(); err != nil {
						t.Fatalf("concrete: %v\n%s", err, src)
					}
					if len(ck.Mismatches) > 0 {
						t.Fatalf("config %s unsound:\n%s\nprogram:\n%s", name, ck.Report(modB), src)
					}
				}
			}
		})
	}
}

// TestFactsFromDifferentRunsAgree checks the paper's §7 claim that facts
// from runs on different inputs are all sound and can be combined: two
// instrumented runs must never produce conflicting determinate facts.
func TestFactsFromDifferentRunsAgree(t *testing.T) {
	for genSeed := uint64(0); genSeed < 60; genSeed++ {
		src := workload.RandomProgram(workload.GenConfig{Seed: 5000 + genSeed})
		merged := facts.NewStore()
		for run := uint64(0); run < 3; run++ {
			mod, err := ir.Compile("gen.js", src)
			if err != nil {
				t.Fatal(err)
			}
			store := facts.NewStore()
			a := core.New(mod, store, core.Options{Seed: run * 31, Inputs: inputsFor(run)})
			if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
				t.Fatalf("run %d: %v\n%s", run, err, src)
			}
			merged.Merge(store)
		}
		if len(merged.Conflicts) > 0 {
			t.Fatalf("seed %d: conflicting determinate facts across runs: %v\nprogram:\n%s",
				genSeed, merged.Conflicts, src)
		}
	}
}

// TestInstrumentedMatchesConcreteOutput checks that instrumentation is
// semantically transparent: with identical seeds and inputs, the
// instrumented and concrete interpreters compute identical final global
// state observations.
func TestInstrumentedMatchesConcreteOutput(t *testing.T) {
	for genSeed := uint64(0); genSeed < 60; genSeed++ {
		src := workload.RandomProgram(workload.GenConfig{Seed: 9000 + genSeed, WithForIn: true})

		modC, err := ir.Compile("gen.js", src)
		if err != nil {
			t.Fatalf("%v\n%s", err, src)
		}
		concrete := map[string]string{}
		it := interp.New(modC, interp.Options{Seed: 42, Inputs: inputsFor(1)})
		it.AfterInstr = func(in ir.Instr, val interp.Value) {}
		if _, err := it.Run(); err != nil {
			t.Fatalf("concrete: %v\n%s", err, src)
		}
		for _, k := range it.Global.OwnKeys() {
			v, _ := it.Global.Get(k)
			concrete[k] = interp.ToString(v)
		}

		modI, err := ir.Compile("gen.js", src)
		if err != nil {
			t.Fatal(err)
		}
		a := core.New(modI, facts.NewStore(), core.Options{Seed: 42, Inputs: inputsFor(1)})
		if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
			t.Fatalf("instrumented: %v\n%s", err, src)
		}
		// Compare observable numeric/string globals (generated programs put
		// their state in top-level vars, i.e. globals).
		for k, want := range concrete {
			got, found, _ := a.LookupGlobal(k)
			if !found {
				t.Errorf("seed %d: global %s missing in instrumented run", genSeed, k)
				continue
			}
			if gs := a.DisplayValue(got); gs != want && !(want == "NaN" && gs == "NaN") {
				t.Errorf("seed %d: global %s: concrete %q vs instrumented %q\nprogram:\n%s",
					genSeed, k, want, gs, src)
			}
		}
	}
}

// TestCorpusMultiRunConsistency merges instrumented runs of every runnable
// corpus benchmark across seeds: determinate facts from different runs must
// never contradict (restricted to static program points, since eval-lowered
// instruction IDs are run-local).
func TestCorpusMultiRunConsistency(t *testing.T) {
	for _, b := range workload.EvalCorpus() {
		if !b.Runnable {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			merged := facts.NewStore()
			for run := uint64(0); run < 3; run++ {
				mod, err := ir.Compile(b.Name, b.Source)
				if err != nil {
					t.Fatal(err)
				}
				static := ir.ID(mod.NumInstrs)
				store := facts.NewStore()
				a := core.New(mod, store, core.Options{Seed: run * 17, Inputs: inputsFor(run)})
				dom.InstallCore(a, dom.NewDocument(dom.Options{}), false)
				if _, err := a.Run(); err != nil && !errors.Is(err, core.ErrFlushLimit) {
					t.Fatalf("run %d: %v", run, err)
				}
				merged.Merge(store.Restrict(static))
			}
			if len(merged.Conflicts) > 0 {
				t.Errorf("conflicting determinate facts across seeds: %v", merged.Conflicts)
			}
		})
	}
}
