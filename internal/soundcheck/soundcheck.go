// Package soundcheck verifies determinacy facts against concrete
// executions, the dynamic counterpart of the paper's Theorem 1: a fact
// ⟦p⟧ c = v produced by the instrumented semantics must hold in *every*
// concrete execution — whenever a concrete run reaches program point p
// under context c, the value it computes there must be v.
package soundcheck

import (
	"fmt"
	"strings"

	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
)

// Mismatch is one violated fact: the concrete execution reached the fact's
// program point and context but computed a different value.
type Mismatch struct {
	Instr ir.ID
	Ctx   facts.Context
	Seq   int
	Want  facts.Snapshot
	Got   facts.Snapshot
}

// Checker attaches to a concrete interpreter and checks every executed
// register-defining instruction against a fact store.
type Checker struct {
	Store      *facts.Store
	Mismatches []Mismatch
	// Checked counts how many determinate facts were actually exercised.
	Checked int

	stack []*cframe
}

type cframe struct {
	ctx      facts.Context
	siteSeq  map[ir.ID]int
	instrSeq map[ir.ID]int
}

// New creates a checker over the given fact store.
func New(store *facts.Store) *Checker {
	return &Checker{Store: store}
}

// Attach installs the checker's hooks on a concrete interpreter. The
// interpreter must not have other AfterInstr/frame hooks installed.
func (c *Checker) Attach(it *interp.Interp) {
	c.stack = []*cframe{{}}
	it.OnEnterFrame = func(site ir.ID) {
		parent := c.stack[len(c.stack)-1]
		ctx := parent.ctx
		if site >= 0 {
			if parent.siteSeq == nil {
				parent.siteSeq = make(map[ir.ID]int)
			}
			seq := parent.siteSeq[site]
			parent.siteSeq[site] = seq + 1
			ctx = append(parent.ctx.Clone(), facts.ContextEntry{Site: site, Seq: seq})
		}
		c.stack = append(c.stack, &cframe{ctx: ctx})
	}
	it.OnLeaveFrame = func() {
		c.stack = c.stack[:len(c.stack)-1]
	}
	it.AfterInstr = func(in ir.Instr, val interp.Value) {
		top := c.stack[len(c.stack)-1]
		if top.instrSeq == nil {
			top.instrSeq = make(map[ir.ID]int)
		}
		seq := top.instrSeq[in.IID()]
		top.instrSeq[in.IID()] = seq + 1
		if seq > c.Store.MaxSeq {
			seq = c.Store.MaxSeq
		}
		f, ok := c.Store.Lookup(in.IID(), top.ctx, seq)
		if !ok || !f.Det {
			return
		}
		got := SnapshotConcrete(val)
		if !snapshotsCompatible(f.Val, got) {
			c.Mismatches = append(c.Mismatches, Mismatch{
				Instr: in.IID(), Ctx: top.ctx.Clone(), Seq: seq, Want: f.Val, Got: got,
			})
			return
		}
		c.Checked++
	}
}

// SnapshotConcrete converts a concrete value to a fact snapshot.
func SnapshotConcrete(v interp.Value) facts.Snapshot {
	switch v.Kind {
	case interp.Undefined:
		return facts.Snapshot{Kind: facts.VUndefined}
	case interp.Null:
		return facts.Snapshot{Kind: facts.VNull}
	case interp.Bool:
		return facts.Snapshot{Kind: facts.VBool, Bool: v.B}
	case interp.Number:
		return facts.Snapshot{Kind: facts.VNumber, Num: v.N}
	case interp.String:
		return facts.Snapshot{Kind: facts.VString, Str: v.S}
	default:
		if v.O.Fn != nil {
			return facts.Snapshot{Kind: facts.VFunction, FnIndex: v.O.Fn.Index, Alloc: v.O.Alloc}
		}
		if v.O.Native != nil {
			return facts.Snapshot{Kind: facts.VFunction, Native: v.O.Native.Name, Alloc: v.O.Alloc}
		}
		return facts.Snapshot{Kind: facts.VObject, Alloc: v.O.Alloc}
	}
}

// snapshotsCompatible compares a fact value against a concrete observation.
// Primitives and function identities compare exactly; plain objects compare
// by kind only, since allocation numbering is interpreter-local (Theorem 1's
// address bijection µ is not materialized across interpreters).
func snapshotsCompatible(want, got facts.Snapshot) bool {
	if want.Kind == facts.VObject {
		return got.Kind == facts.VObject
	}
	if want.Kind == facts.VFunction {
		if got.Kind != facts.VFunction {
			return false
		}
		if want.FnIndex != 0 || got.FnIndex != 0 {
			return want.FnIndex == got.FnIndex
		}
		return want.Native == got.Native
	}
	return want.Equal(got)
}

// Report renders mismatches for test output.
func (c *Checker) Report(mod *ir.Module) string {
	var b strings.Builder
	for _, m := range c.Mismatches {
		in := mod.InstrAt(m.Instr)
		loc := fmt.Sprintf("#%d", m.Instr)
		if in != nil {
			loc = fmt.Sprintf("%s @%s", ir.InstrString(in), in.IPos())
		}
		fmt.Fprintf(&b, "UNSOUND fact at %s ctx=%s seq=%d: predicted %s, concrete run computed %s\n",
			loc, m.Ctx.Key(), m.Seq, m.Want, m.Got)
	}
	return b.String()
}
