package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// waitInFlight polls the in-flight gauge until n requests hold slots.
func waitInFlight(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if int(s.Metrics().Gauge("server_inflight").Value()) >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no request reached in-flight state within 5s")
}

func TestDrainCleanWhenIdle(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if !s.Drain(time.Second) {
		t.Fatal("idle server did not drain within budget")
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
}

func TestBeginDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}

	aresp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	body := decodeError(t, aresp)
	if aresp.StatusCode != http.StatusServiceUnavailable || body.Kind != "draining" {
		t.Fatalf("analyze while draining: status=%d kind=%q, want 503 draining", aresp.StatusCode, body.Kind)
	}
	if aresp.Header.Get("Retry-After") == "" {
		t.Error("503 draining without a Retry-After header")
	}

	// Liveness stays green so orchestrators don't kill the pod mid-drain.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", hresp.StatusCode)
	}
}

func TestDrainWaitsForInFlightWithinBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	done := make(chan AnalyzeResponse, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: slowSrc})
		done <- decodeAnalyze(t, resp)
	}()
	waitInFlight(t, s, 1)

	// The ~100ms run fits comfortably in a 10s budget: clean drain.
	if !s.Drain(10 * time.Second) {
		t.Fatal("drain force-cancelled a run that should have finished in budget")
	}
	out := <-done
	if out.Partial {
		t.Fatalf("in-budget drain degraded the run: %s", out.DegradeReason)
	}
}

func TestDrainForceCancelSealsPartial(t *testing.T) {
	// A run that would take minutes gets force-cancelled when the drain
	// budget expires — and must still answer 200 with sound partial facts.
	s, ts := newTestServer(t, Config{MaxTimeout: 5 * time.Minute, DefaultTimeout: 5 * time.Minute})
	long := strings.Replace(slowSrc, "i < 3000", "i < 50000000", 1)
	done := make(chan AnalyzeResponse, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: long})
		done <- decodeAnalyze(t, resp)
	}()
	waitInFlight(t, s, 1)

	if s.Drain(50 * time.Millisecond) {
		t.Fatal("Drain reported clean finish for a 50M-iteration run in 50ms")
	}
	select {
	case out := <-done:
		if !out.Partial {
			t.Fatal("force-cancelled run reported complete")
		}
		if out.DegradeReason != "cancel" && out.DegradeReason != "deadline" {
			t.Fatalf("degrade_reason = %q, want cancel or deadline", out.DegradeReason)
		}
		if out.NumDeterminate > out.NumFacts {
			t.Fatalf("partial store incoherent: %d determinate of %d facts", out.NumDeterminate, out.NumFacts)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("force-cancelled request never responded: drain leak")
	}
}

func TestDrainReleasesQueuedWaiters(t *testing.T) {
	// Requests waiting in the admission queue when drain begins must get a
	// 503, not hang until their client gives up.
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 4, MaxTimeout: 5 * time.Minute, DefaultTimeout: 5 * time.Minute})
	long := strings.Replace(slowSrc, "i < 3000", "i < 50000000", 1)

	holder := make(chan AnalyzeResponse, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: long})
		holder <- decodeAnalyze(t, resp)
	}()
	waitInFlight(t, s, 1)

	queued := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	// Wait for the second request to join the queue before draining.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.Metrics().Gauge("server_queue_depth").Value() < 1 {
		time.Sleep(time.Millisecond)
	}

	s.BeginDrain()
	select {
	case code := <-queued:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("queued waiter got %d at drain, want 503", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter hung through BeginDrain")
	}

	if s.Drain(50 * time.Millisecond) {
		t.Fatal("Drain reported clean while the long run was still in flight")
	}
	select {
	case out := <-holder:
		if !out.Partial {
			t.Fatal("force-cancelled holder reported complete")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("holding request never responded after force-cancel")
	}
}
