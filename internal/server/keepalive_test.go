// Satellite tests for streaming keepalives, client-disconnect hygiene,
// and drain-state reporting on the health surface.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"determinacy/internal/server/sched"
)

// longSrc runs for seconds unless force-cancelled — long enough that a
// heartbeat interval or a disconnect is observable mid-run.
var longSrc = strings.Replace(slowSrc, "i < 3000", "i < 50000000", 1)

func TestStreamHeartbeatNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamHeartbeat: 10 * time.Millisecond})
	recs := streamLines(t, ts.URL+"/v1/analyze?stream=1", AnalyzeRequest{Source: slowSrc})
	beats := 0
	for i, rec := range recs {
		if rec["type"] == "heartbeat" {
			beats++
			if i == len(recs)-1 {
				t.Fatal("heartbeat written after the terminal result line")
			}
		}
	}
	if beats == 0 {
		t.Fatalf("no heartbeat lines in a ~100ms stream at a 10ms interval (%d records)", len(recs))
	}
	last := recs[len(recs)-1]
	if last["type"] != "result" || last["result"] == nil {
		t.Fatalf("terminal record: %v", last)
	}
}

func TestStreamHeartbeatSSEComment(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamHeartbeat: 10 * time.Millisecond})
	raw, _ := json.Marshal(AnalyzeRequest{Source: slowSrc})
	resp, err := http.Post(ts.URL+"/v1/analyze?stream=sse", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	beats, data := 0, 0
	for sc.Scan() {
		switch line := sc.Text(); {
		case line == ": keepalive":
			beats++
		case strings.HasPrefix(line, "data: "):
			data++
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if beats == 0 {
		t.Fatal("no SSE keepalive comments in a ~100ms stream at a 10ms interval")
	}
	if data == 0 {
		t.Fatal("keepalives but no data records")
	}
}

func TestStreamHeartbeatDisabled(t *testing.T) {
	// Negative = explicitly disabled (the flag's 0 maps here).
	_, ts := newTestServer(t, Config{StreamHeartbeat: -1})
	recs := streamLines(t, ts.URL+"/v1/analyze?stream=1", AnalyzeRequest{Source: slowSrc})
	for _, rec := range recs {
		if rec["type"] == "heartbeat" {
			t.Fatal("heartbeat emitted with StreamHeartbeat disabled")
		}
	}
}

// TestStreamClientDisconnectCancelsRun is the disconnect-hygiene
// regression test: a streaming client that goes away mid-run must cancel
// the analysis at the next guard checkpoint, freeing the slot and leaking
// no goroutines — not burn the slot to completion for nobody.
func TestStreamClientDisconnectCancelsRun(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{MaxInFlight: 1, StreamHeartbeat: 5 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	raw, _ := json.Marshal(AnalyzeRequest{Source: longSrc})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze?stream=1", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line so the run is provably started, then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("read first stream line: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && s.metrics.Gauge("server_inflight").Value() != 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if v := s.metrics.Gauge("server_inflight").Value(); v != 0 {
		t.Fatalf("server_inflight = %v after client disconnect, want 0 (run not cancelled)", v)
	}
	// The freed slot serves the next request promptly.
	probe := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	if probe.StatusCode != http.StatusOK {
		t.Fatalf("probe after disconnect: status %d, want 200", probe.StatusCode)
	}
	probe.Body.Close()
	if n, ok := settleGoroutines(base, 6); !ok {
		t.Fatalf("goroutines grew from %d to %d after disconnected stream", base, n)
	}
}

// TestHealthzReportsDrainState covers the drain-visibility satellite:
// /healthz stays 200 through a drain but flips "draining" and counts the
// remaining in-flight runs; /debug/statusz carries the scheduler snapshot.
func TestHealthzReportsDrainState(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, StreamHeartbeat: -1})

	health := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if h := health(); h["draining"] != false || h["inflight"] != float64(0) {
		t.Fatalf("idle healthz: draining=%v inflight=%v, want false/0", h["draining"], h["inflight"])
	}

	// Occupy the slot, then drain with the run still in flight.
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := postJSONTenant(t, context.Background(), ts.URL+"/v1/analyze", "",
			AnalyzeRequest{Source: longSrc, TimeoutMS: 30_000}, nil)
		if err != nil {
			done <- nil
			return
		}
		done <- resp
	}()
	waitInFlight(t, s, 1)
	s.BeginDrain()

	if h := health(); h["draining"] != true || h["inflight"] != float64(1) {
		t.Fatalf("draining healthz: draining=%v inflight=%v, want true/1", h["draining"], h["inflight"])
	}
	var page struct {
		Server    map[string]any `json:"server"`
		Scheduler sched.Snapshot `json:"scheduler"`
	}
	resp, err := http.Get(ts.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if page.Server["draining"] != true {
		t.Fatalf("statusz server.draining = %v, want true", page.Server["draining"])
	}
	if page.Scheduler.Policy != sched.PolicyFIFO || page.Scheduler.InFlight != 1 {
		t.Fatalf("statusz scheduler snapshot = %+v, want fifo with 1 in flight", page.Scheduler)
	}

	// Finish the drain; the run seals sound-partial and healthz empties.
	if clean := s.Drain(200 * time.Millisecond); clean {
		t.Log("drain finished clean (run completed inside the budget)")
	}
	if r := <-done; r != nil {
		if r.StatusCode != http.StatusOK {
			t.Fatalf("drained run status = %d, want 200 sound partial", r.StatusCode)
		}
		out := decodeAnalyze(t, r)
		if !out.Partial {
			t.Error("force-sealed run did not report partial")
		}
	}
	if h := health(); h["draining"] != true || h["inflight"] != float64(0) {
		t.Fatalf("post-drain healthz: draining=%v inflight=%v, want true/0", h["draining"], h["inflight"])
	}
}
