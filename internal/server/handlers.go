package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"determinacy"
	"determinacy/internal/batch"
	"determinacy/internal/cluster"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
	"determinacy/internal/parser"
	"determinacy/internal/server/sched"
)

// AnalyzeRequest is the /v1/analyze body. Only Source is required.
type AnalyzeRequest struct {
	// Name labels the program in diagnostics ("program.js" by default).
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	Seed   uint64 `json:"seed,omitempty"`
	// Runs > 1 merges facts from that many consecutive seeds (§7),
	// bounded by the server's MaxRuns.
	Runs int `json:"runs,omitempty"`
	// TimeoutMS is the client's wall-clock budget; the server's
	// MaxTimeout is a hard ceiling over it. A run stopped by the budget
	// still answers 200 with Partial=true and sound facts.
	TimeoutMS  int64 `json:"timeout_ms,omitempty"`
	MaxFlushes int   `json:"max_flushes,omitempty"`
	MaxSteps   int   `json:"max_steps,omitempty"`
	DOM        bool  `json:"dom,omitempty"`
	DetDOM     bool  `json:"detdom,omitempty"`
	Handlers   int   `json:"handlers,omitempty"`
	// DetOnly returns only determinate facts.
	DetOnly bool `json:"det_only,omitempty"`
}

// StatsJSON summarizes a run for the wire.
type StatsJSON struct {
	Steps           int `json:"steps"`
	HeapFlushes     int `json:"heap_flushes"`
	EnvFlushes      int `json:"env_flushes"`
	Counterfactuals int `json:"counterfactuals"`
	CFAborts        int `json:"cf_aborts"`
	HandlersRan     int `json:"handlers_ran"`
}

// AnalyzeResponse is the /v1/analyze result. Partial responses are sound:
// the facts reflect the executed prefix and DegradeReason says why the
// run stopped (budget, flush-cap, deadline, cancel).
type AnalyzeResponse struct {
	Name           string             `json:"name"`
	Partial        bool               `json:"partial"`
	DegradeReason  string             `json:"degrade_reason,omitempty"`
	NumFacts       int                `json:"num_facts"`
	NumDeterminate int                `json:"num_determinate"`
	Facts          []determinacy.Fact `json:"facts"`
	Stats          StatsJSON          `json:"stats"`
	ElapsedMS      int64              `json:"elapsed_ms"`
}

// ErrorBody is the structured error payload; every non-2xx response
// carries one.
type ErrorBody struct {
	// Kind is the machine-readable taxonomy: bad-request, body-too-large,
	// parse, parse-depth, uncaught-exception, panic, shed, draining,
	// interrupted, internal.
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Phase/Instr/Pos locate a recovered panic (kind "panic").
	Phase string `json:"phase,omitempty"`
	Instr int    `json:"instr,omitempty"`
	Pos   string `json:"pos,omitempty"`
	// RetryAfterMS mirrors the Retry-After header on 429/503.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorResponse wraps ErrorBody for the wire.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// BatchProgram is one entry of a /v1/batch request.
type BatchProgram struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	Seed   uint64 `json:"seed,omitempty"`
}

// BatchRequest analyzes several programs under shared options, fanned
// across the server's worker pool. Admission counts the batch as one
// request; the per-request deadline covers the whole batch.
type BatchRequest struct {
	Programs   []BatchProgram `json:"programs"`
	TimeoutMS  int64          `json:"timeout_ms,omitempty"`
	MaxFlushes int            `json:"max_flushes,omitempty"`
	MaxSteps   int            `json:"max_steps,omitempty"`
	DOM        bool           `json:"dom,omitempty"`
	DetDOM     bool           `json:"detdom,omitempty"`
	Handlers   int            `json:"handlers,omitempty"`
	DetOnly    bool           `json:"det_only,omitempty"`
}

// BatchResult is one program's outcome: exactly one of Result and Error
// is set. A panicking program is quarantined into its Error slot; the
// rest of the batch still completes.
type BatchResult struct {
	Name   string           `json:"name"`
	Result *AnalyzeResponse `json:"result,omitempty"`
	Error  *ErrorBody       `json:"error,omitempty"`
}

// BatchResponse is the /v1/batch reply; always 200 with per-entry status.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	ElapsedMS int64         `json:"elapsed_ms"`
}

// routes builds the mux wrapped in the recovery/accounting middleware.
// The two analysis routes run inside the traced middleware, which mints
// the request's trace ID and records its flight-recorder entry.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+routeAnalyze, s.traced(routeAnalyze, s.digested(s.handleAnalyze)))
	mux.HandleFunc("POST "+routeBatch, s.traced(routeBatch, s.handleBatch))
	mux.HandleFunc("GET "+cluster.CachePath, s.handleClusterCache)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/statusz", s.handleStatusz)
	mux.HandleFunc("GET /debug/tracez", s.handleTracez)
	return s.recoverWrap(mux)
}

// recoverWrap is the outermost panic boundary: anything escaping a
// handler — including faults injected outside the per-request guard
// boundary — becomes a structured 500, never a dead process or an empty
// reply. Responses are buffered by the handlers, so no partial body has
// been written when this fires.
func (s *Server) recoverWrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.cRequests.Inc()
		defer func() {
			if rec := recover(); rec != nil {
				re, ok := rec.(*guard.RunError)
				if !ok {
					re = guard.New("server", rec)
				}
				guard.CountRecovered(s.metrics, "server")
				s.noteQuarantine()
				s.writeError(w, http.StatusInternalServerError, ErrorBody{
					Kind: "panic", Message: re.Error(), Phase: re.Phase, Instr: re.Instr, Pos: re.Pos,
				})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client went away; nothing useful to do
	s.metrics.Counter(fmt.Sprintf(`server_responses_total{code="%d"}`, status)).Inc()
}

func (s *Server) writeError(w http.ResponseWriter, status int, body ErrorBody) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		ra := s.retryAfter()
		body.RetryAfterMS = ra.Milliseconds()
		w.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds()+0.5)))
	}
	s.writeJSON(w, status, ErrorResponse{Error: body})
}

// writeErr is writeError for traced handlers: it classifies the failure
// into the flight-recorder entry (outcome, error kind, panic location)
// before writing the response. rt may be nil.
func (s *Server) writeErr(w http.ResponseWriter, rt *reqTrace, status int, body ErrorBody) {
	if rt != nil {
		rt.entry.Status = status
		rt.entry.ErrorKind = body.Kind
		rt.entry.Outcome = outcomeForKind(body.Kind)
		if body.Kind == "panic" {
			rt.entry.ErrPhase, rt.entry.ErrInstr, rt.entry.ErrPos = body.Phase, body.Instr, body.Pos
		}
	}
	s.writeError(w, status, body)
}

// writeErrRetry is writeErr for refusals carrying their own Retry-After
// guidance; ra <= 0 falls back to the legacy pool-derived estimate. The
// header is whole seconds (minimum 1, per RFC 9110); the body's
// retry_after_ms carries the precise value.
func (s *Server) writeErrRetry(w http.ResponseWriter, rt *reqTrace, status int, body ErrorBody, ra time.Duration) {
	if ra <= 0 {
		s.writeErr(w, rt, status, body)
		return
	}
	if rt != nil {
		rt.entry.Status = status
		rt.entry.ErrorKind = body.Kind
		rt.entry.Outcome = outcomeForKind(body.Kind)
	}
	body.RetryAfterMS = ra.Milliseconds()
	secs := int(ra.Seconds() + 0.5)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, status, ErrorResponse{Error: body})
}

// decodeBody reads a size-limited JSON body into v, answering 413/400
// itself; ok=false means the response has been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, rt *reqTrace, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, rt, http.StatusRequestEntityTooLarge, ErrorBody{
				Kind:    "body-too-large",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			})
		} else {
			s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: "malformed JSON body: " + err.Error()})
		}
		return false
	}
	return true
}

// tenantID extracts the request's tenant identity: the X-Tenant-ID
// header, else the API key's prefix before the first "." (Authorization:
// Bearer <tenant>.<secret> or X-API-Key: <tenant>.<secret>), else "".
// IDs longer than 64 bytes or outside [A-Za-z0-9_.-] are treated as
// absent; unconfigured tenants pool into the shared "other" state anyway,
// so a hostile header can never mint scheduler state or metric labels.
func tenantID(r *http.Request) string {
	id := r.Header.Get("X-Tenant-ID")
	if id == "" {
		key := r.Header.Get("X-API-Key")
		if key == "" {
			const bearer = "Bearer "
			if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, bearer) {
				key = auth[len(bearer):]
			}
		}
		if i := strings.IndexByte(key, '.'); i > 0 {
			id = key[:i]
		}
	}
	if len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == '-':
		default:
			return ""
		}
	}
	return id
}

// schedRequest builds a route's admission request: tenant identity, the
// route's default priority class (overridable by a valid X-Priority
// header; the tenant's configured class overrides both inside the
// scheduler), and the effective deadline driving deadline-aware shedding.
func (s *Server) schedRequest(r *http.Request, class sched.Class, timeoutMS int64) *sched.Request {
	if c, ok := sched.ParseClass(r.Header.Get("X-Priority")); ok {
		class = c
	}
	return &sched.Request{
		Tenant:   tenantID(r),
		Class:    class,
		Deadline: time.Now().Add(s.effTimeout(timeoutMS)),
	}
}

// noteAdmitted records the admitted request's effective tenant and class
// into its flight-recorder entry, and observes its per-tenant latency
// histogram on completion. Both only under the wfq/priority policies:
// under fifo every request is anonymous and the entries (and metric
// families) stay byte-identical to the pre-scheduler server.
func (s *Server) noteAdmitted(rt *reqTrace, sreq *sched.Request, t0 time.Time) func() {
	if !s.tenantLatency {
		return func() {}
	}
	if rt != nil {
		rt.entry.Tenant = sreq.Tenant
		rt.entry.Class = sreq.Class.String()
	}
	h := s.metrics.Histogram(fmt.Sprintf("server_tenant_request_seconds{tenant=%q}", sreq.Tenant), latencyBuckets...)
	return func() { h.Observe(time.Since(t0).Seconds()) }
}

// writeAdmissionError maps an admission refusal to its typed response: a
// scheduler shed is a 429 whose Retry-After carries the scheduler's
// computed guidance (queue depth × observed p50, jittered), draining is
// the drain 503, and anything else means the client went away while
// queued.
func (s *Server) writeAdmissionError(w http.ResponseWriter, rt *reqTrace, err error) {
	var shed *sched.ShedError
	switch {
	case errors.As(err, &shed):
		// With owning peers down, this node absorbs their keyspace: shed
		// guidance stretches by the cluster's degraded factor so clients
		// back off proportionally instead of hammering the survivors.
		if s.cluster != nil {
			shed.ScaleRetryAfter(s.cluster.DegradedFactor(), s.cfg.MaxTimeout)
		}
		s.writeErrRetry(w, rt, http.StatusTooManyRequests, ErrorBody{
			Kind:    "shed",
			Message: fmt.Sprintf("admission refused (%s); retry later", shed.Reason),
		}, shed.RetryAfter)
	case errors.Is(err, sched.ErrDraining):
		s.writeErr(w, rt, http.StatusServiceUnavailable, ErrorBody{Kind: "draining", Message: "server is draining; retry against another replica"})
	default:
		// The client abandoned the request while queued; the status is
		// best-effort since nobody is reading it.
		s.writeErr(w, rt, http.StatusServiceUnavailable, ErrorBody{Kind: "interrupted", Message: "server: admission aborted: " + err.Error()})
	}
}

// classifyRunError maps an analysis failure to its status and wire form.
// Partial results never land here — they answer 200.
func (s *Server) classifyRunError(err error) (int, ErrorBody) {
	var re *determinacy.RunError
	var perr *parser.Error
	switch {
	case errors.As(err, &re):
		return http.StatusInternalServerError, ErrorBody{
			Kind: "panic", Message: re.Error(), Phase: re.Phase, Instr: re.Instr, Pos: re.Pos,
		}
	case errors.Is(err, determinacy.ErrParseDepth):
		return http.StatusBadRequest, ErrorBody{Kind: "parse-depth", Message: err.Error()}
	case errors.As(err, &perr):
		return http.StatusBadRequest, ErrorBody{Kind: "parse", Message: err.Error()}
	case errors.Is(err, determinacy.ErrUncaughtException):
		return http.StatusUnprocessableEntity, ErrorBody{Kind: "uncaught-exception", Message: err.Error()}
	case guard.ContextReason(err) != guard.DegradeNone:
		// Only multi-seed merges surface interrupts as errors (a skipped
		// seed has no partial store to merge); single runs seal partial.
		return http.StatusServiceUnavailable, ErrorBody{Kind: "interrupted", Message: err.Error()}
	default:
		return http.StatusInternalServerError, ErrorBody{Kind: "internal", Message: err.Error()}
	}
}

// noteRunError applies a classified failure's side effects: quarantine
// accounting for panics, and the flight-recorder outcome. Shared by the
// buffered and streaming response paths.
func (s *Server) noteRunError(rt *reqTrace, body ErrorBody) {
	if body.Kind == "panic" {
		s.noteQuarantine()
		guard.CountRecovered(s.metrics, body.Phase)
	}
	if rt != nil {
		rt.entry.ErrorKind = body.Kind
		rt.entry.Outcome = outcomeForKind(body.Kind)
		if body.Kind == "panic" {
			rt.entry.ErrPhase, rt.entry.ErrInstr, rt.entry.ErrPos = body.Phase, body.Instr, body.Pos
		}
	}
}

// writeRunError classifies an analysis failure into a structured
// response.
func (s *Server) writeRunError(w http.ResponseWriter, rt *reqTrace, err error) {
	status, body := s.classifyRunError(err)
	s.noteRunError(rt, body)
	if rt != nil {
		rt.entry.Status = status
	}
	s.writeError(w, status, body)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, rt *reqTrace) {
	var req AnalyzeRequest
	if !s.decodeBody(w, r, rt, &req) {
		return
	}
	if req.Source == "" {
		s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: `missing "source"`})
		return
	}
	if req.Runs < 0 || req.Runs > s.cfg.MaxRuns {
		s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{
			Kind: "bad-request", Message: fmt.Sprintf("runs must be in [0,%d], got %d", s.cfg.MaxRuns, req.Runs),
		})
		return
	}
	if req.TimeoutMS < 0 || req.MaxFlushes < 0 || req.MaxSteps < 0 || req.Handlers < 0 {
		s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: "numeric options must be non-negative"})
		return
	}
	stream, sse := streamMode(r)
	// Sharded serving: a non-streaming request whose content-hash owner is
	// a healthy remote peer is relayed there (warm caches, cluster-wide
	// compile-once). Requests already forwarded once are always served
	// here (loop prevention), as is everything while draining, and every
	// peer failure mode falls through to the local path below.
	if s.cluster != nil && !stream && !s.draining.Load() &&
		r.Header.Get(cluster.ForwardedHeader) == "" {
		if s.tryForward(w, r, rt, &req) {
			return
		}
	}
	sreq := s.schedRequest(r, sched.Interactive, req.TimeoutMS)
	s.wg.Add(1)
	defer s.wg.Done()
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteServerAdmit)
	}
	if err := s.acquire(r.Context(), sreq, s.hQueueWait[rt.route]); err != nil {
		s.writeAdmissionError(w, rt, err)
		return
	}
	defer s.release(sreq)

	if stream {
		defer s.noteAdmitted(rt, sreq, time.Now())()
		s.streamAnalyze(w, r, rt, &req, sse)
		return
	}

	t0 := time.Now()
	observeTenant := s.noteAdmitted(rt, sreq, t0)
	resp, err := s.runAnalyze(r.Context(), &req, rt, rt.obsTracer())
	s.hLatency[rt.route].Observe(time.Since(t0).Seconds())
	observeTenant()
	if err != nil {
		s.writeRunError(w, rt, err)
		return
	}
	s.noteSuccess()
	resp.ElapsedMS = time.Since(t0).Milliseconds()
	s.noteAnalyzeSuccess(rt, resp)
	s.writeJSON(w, http.StatusOK, resp)
}

// noteAnalyzeSuccess copies a successful response's headline stats into
// the request's flight-recorder entry and classifies its outcome: a
// degraded-but-sound partial result is "sound-partial", everything else
// "ok".
func (s *Server) noteAnalyzeSuccess(rt *reqTrace, resp *AnalyzeResponse) {
	if rt == nil {
		return
	}
	rt.entry.Status = http.StatusOK
	if resp.Partial {
		rt.entry.Outcome = outcomeSoundPartial
		rt.entry.DegradeReason = resp.DegradeReason
	} else {
		rt.entry.Outcome = outcomeOK
	}
	rt.entry.Steps = resp.Stats.Steps
	rt.entry.HeapFlushes = resp.Stats.HeapFlushes
	rt.entry.Counterfactuals = resp.Stats.Counterfactuals
	rt.entry.Facts = resp.NumFacts
	rt.entry.Determinate = resp.NumDeterminate
}

// analyzeOptions builds run options shared by both endpoints.
func (s *Server) analyzeOptions(seed uint64, maxFlushes, maxSteps, handlers int, dom, detDOM bool, deadline time.Time) determinacy.Options {
	if maxFlushes == 0 {
		maxFlushes = 1000
	}
	return determinacy.Options{
		Seed:             seed,
		WithDOM:          dom || detDOM,
		DeterministicDOM: detDOM,
		RunHandlers:      handlers,
		MaxFlushes:       maxFlushes,
		MaxSteps:         maxSteps,
		Deadline:         deadline,
		Engine:           s.cfg.Engine,
		// Engine counters (vm_ic_hits/vm_ic_misses) aggregate across
		// requests into the server registry scraped at /metrics.
		Metrics:   s.metrics,
		FactCache: s.cfg.FactCache,
	}
}

// runAnalyze executes one request inside the guard boundary, under the
// effective deadline and the drain force-cancel parent. tracer (nil to
// disable) receives the run's event stream; rt (nil outside traced
// handlers) collects cache-hit attribution.
func (s *Server) runAnalyze(reqCtx context.Context, req *AnalyzeRequest, rt *reqTrace, tracer obs.Tracer) (resp *AnalyzeResponse, err error) {
	budget := s.effTimeout(req.TimeoutMS)
	ctx, cancel := context.WithTimeout(reqCtx, budget)
	defer cancel()
	// Drain past its budget force-cancels every in-flight run.
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()
	defer guard.Boundary(&err, "server", nil)
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteServerRequest)
	}

	name := req.Name
	if name == "" {
		name = "program.js"
	}
	opts := s.analyzeOptions(req.Seed, req.MaxFlushes, req.MaxSteps, req.Handlers, req.DOM, req.DetDOM, time.Now().Add(budget))
	opts.Tracer = tracer

	var res *determinacy.Result
	if req.Runs > 1 {
		// Serial within the request: the server's concurrency comes from
		// concurrent requests, so one merge sweep never hoards workers.
		// Compiles go through the package-global runs cache, which reports
		// no per-call hit information — CacheHit stays false here.
		opts.Workers = 1
		seeds := make([]uint64, req.Runs)
		for i := range seeds {
			seeds[i] = req.Seed + uint64(i)
		}
		res, err = determinacy.AnalyzeRunsContext(ctx, req.Source, opts, seeds...)
	} else {
		var p *determinacy.Program
		var hit bool
		p, hit, err = s.cache.CompileHit(name, req.Source)
		if tracer != nil {
			detail := "miss"
			if hit {
				detail = "hit"
			}
			tracer.Event(obs.Event{Kind: obs.EvCache, Phase: "progcache", Detail: detail})
		}
		if rt != nil {
			rt.entry.CacheHit = hit
		}
		if err == nil {
			res, err = determinacy.AnalyzeProgramContext(ctx, p, opts)
		}
	}
	if err != nil {
		return nil, err
	}
	return buildResponse(name, req.DetOnly, res), nil
}

func buildResponse(name string, detOnly bool, res *determinacy.Result) *AnalyzeResponse {
	facts := res.Facts()
	if detOnly {
		facts = res.DeterminateFacts()
	}
	if facts == nil {
		facts = []determinacy.Fact{} // JSON [] beats null for clients
	}
	st := res.Stats
	return &AnalyzeResponse{
		Name:           name,
		Partial:        res.Partial,
		DegradeReason:  string(res.Degraded),
		NumFacts:       res.NumFacts(),
		NumDeterminate: res.NumDeterminate(),
		Facts:          facts,
		Stats: StatsJSON{
			Steps:           st.Steps,
			HeapFlushes:     st.HeapFlushes,
			EnvFlushes:      st.EnvFlushes,
			Counterfactuals: st.Counterfacts,
			CFAborts:        st.CFAborts,
			HandlersRan:     res.HandlersRan,
		},
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, rt *reqTrace) {
	var req BatchRequest
	if !s.decodeBody(w, r, rt, &req) {
		return
	}
	if len(req.Programs) == 0 {
		s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: `missing "programs"`})
		return
	}
	if len(req.Programs) > s.cfg.MaxBatchPrograms {
		s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{
			Kind: "bad-request", Message: fmt.Sprintf("batch of %d exceeds the %d-program cap", len(req.Programs), s.cfg.MaxBatchPrograms),
		})
		return
	}
	for i, p := range req.Programs {
		if p.Source == "" {
			s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: fmt.Sprintf(`program %d: missing "source"`, i)})
			return
		}
	}
	if req.TimeoutMS < 0 || req.MaxFlushes < 0 || req.MaxSteps < 0 || req.Handlers < 0 {
		s.writeErr(w, rt, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: "numeric options must be non-negative"})
		return
	}
	sreq := s.schedRequest(r, sched.Batch, req.TimeoutMS)
	s.wg.Add(1)
	defer s.wg.Done()
	if err := s.acquire(r.Context(), sreq, s.hQueueWait[rt.route]); err != nil {
		s.writeAdmissionError(w, rt, err)
		return
	}
	defer s.release(sreq)

	t0 := time.Now()
	observeTenant := s.noteAdmitted(rt, sreq, t0)
	defer observeTenant()
	budget := s.effTimeout(req.TimeoutMS)
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()
	deadline := time.Now().Add(budget)

	// One request-scoped tracer across the whole fan-out: the sinks are
	// mutex-guarded, so concurrent jobs interleave rather than race.
	tracer := rt.obsTracer()
	var cacheHits atomic.Int64

	// The priority policy paces bulk batches: before each pool job, the
	// gate briefly yields while strictly higher classes have queued
	// admission waiters.
	var gate func(context.Context) error
	if g, ok := s.sched.(sched.DispatchGater); ok {
		gate = g.JobGate(sreq)
	}

	type progOut struct {
		resp *AnalyzeResponse
		err  error
	}
	outs, qs := batch.MapCtxGated(ctx, s.pool, len(req.Programs), gate, func(i int) progOut {
		p := req.Programs[i]
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("program-%d.js", i)
		}
		if faultinject.Armed() {
			faultinject.Hit(faultinject.SiteServerRequest)
		}
		opts := s.analyzeOptions(p.Seed, req.MaxFlushes, req.MaxSteps, req.Handlers, req.DOM, req.DetDOM, deadline)
		opts.Tracer = tracer
		prog, hit, err := s.cache.CompileHit(name, p.Source)
		if hit {
			cacheHits.Add(1)
		}
		if tracer != nil {
			detail := "miss"
			if hit {
				detail = "hit"
			}
			tracer.Event(obs.Event{Kind: obs.EvCache, Phase: "progcache", Detail: detail})
		}
		if err != nil {
			return progOut{err: err}
		}
		res, err := determinacy.AnalyzeProgramContext(ctx, prog, opts)
		if err != nil {
			return progOut{err: err}
		}
		return progOut{resp: buildResponse(name, req.DetOnly, res)}
	})
	// A quarantined (panicked) or cancel-skipped job reports through its
	// error slot; the batch as a whole still answers 200.
	for _, q := range qs {
		outs[q.Index].err = q.Err
	}

	bresp := BatchResponse{Results: make([]BatchResult, len(outs)), ElapsedMS: time.Since(t0).Milliseconds()}
	anyPanic := false
	var firstPanic *ErrorBody
	for i, out := range outs {
		name := req.Programs[i].Name
		if name == "" {
			name = fmt.Sprintf("program-%d.js", i)
		}
		br := BatchResult{Name: name}
		switch {
		case out.err != nil:
			body := classifyBatchError(out.err)
			if body.Kind == "panic" {
				anyPanic = true
				if firstPanic == nil {
					firstPanic = &body
				}
				guard.CountRecovered(s.metrics, "batch")
			}
			br.Error = &body
			bresp.Failed++
		default:
			br.Result = out.resp
			bresp.Completed++
			if out.resp != nil {
				rt.entry.Steps += out.resp.Stats.Steps
				rt.entry.HeapFlushes += out.resp.Stats.HeapFlushes
				rt.entry.Counterfactuals += out.resp.Stats.Counterfactuals
				rt.entry.Facts += out.resp.NumFacts
				rt.entry.Determinate += out.resp.NumDeterminate
			}
		}
		bresp.Results[i] = br
	}
	// The batch's terminal outcome: quarantined when any entry panicked
	// (with that entry's *RunError location), sound-partial when entries
	// failed for other reasons, ok when everything completed.
	rt.entry.CacheHit = int(cacheHits.Load()) == len(req.Programs)
	switch {
	case anyPanic:
		s.noteQuarantine()
		rt.entry.Outcome = outcomeQuarantined
		rt.entry.ErrorKind = "panic"
		rt.entry.ErrPhase, rt.entry.ErrInstr, rt.entry.ErrPos = firstPanic.Phase, firstPanic.Instr, firstPanic.Pos
	case bresp.Failed > 0:
		s.noteSuccess()
		rt.entry.Outcome = outcomeSoundPartial
	default:
		s.noteSuccess()
		rt.entry.Outcome = outcomeOK
	}
	s.hLatency[rt.route].Observe(time.Since(t0).Seconds())
	s.writeJSON(w, http.StatusOK, bresp)
}

// classifyBatchError maps one batch entry's failure to its wire form.
func classifyBatchError(err error) ErrorBody {
	var re *determinacy.RunError
	var perr *parser.Error
	switch {
	case errors.As(err, &re):
		return ErrorBody{Kind: "panic", Message: re.Error(), Phase: re.Phase, Instr: re.Instr, Pos: re.Pos}
	case errors.Is(err, determinacy.ErrParseDepth):
		return ErrorBody{Kind: "parse-depth", Message: err.Error()}
	case errors.As(err, &perr):
		return ErrorBody{Kind: "parse", Message: err.Error()}
	case errors.Is(err, determinacy.ErrUncaughtException):
		return ErrorBody{Kind: "uncaught-exception", Message: err.Error()}
	case guard.ContextReason(err) != guard.DegradeNone:
		return ErrorBody{Kind: "interrupted", Message: err.Error()}
	default:
		return ErrorBody{Kind: "internal", Message: err.Error()}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Gauge("server_uptime_seconds").Set(time.Since(s.start).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WriteProm(w)
}

// handleHealthz is liveness: 200 as long as the process serves, draining
// or not. The payload carries the build identity (satellite: -version)
// and the drain state with the remaining in-flight count, so operators
// watching a drain can see it empty out.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":           "ok",
		"version":          s.cfg.Version,
		"uptime_ms":        time.Since(s.start).Milliseconds(),
		"draining":         s.draining.Load(),
		"inflight":         s.sched.Snapshot().InFlight,
		"drain_timeout_ms": s.cfg.DrainTimeout.Milliseconds(),
	}
	if s.cluster != nil {
		body["cluster_self"] = s.cluster.Self()
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleReadyz is readiness: 503 while draining or while the quarantine
// circuit breaker is open, so balancers route around this replica.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeError(w, http.StatusServiceUnavailable, ErrorBody{Kind: "draining", Message: "not ready: draining"})
	case s.breakerOpen.Load():
		s.writeError(w, http.StatusServiceUnavailable, ErrorBody{Kind: "circuit-open", Message: fmt.Sprintf(
			"not ready: %d consecutive quarantined requests tripped the breaker", s.consecQuarantine.Load())})
	default:
		s.writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}
