package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"testing"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/server/sched"
)

// postJSONTenant is postJSON with a tenant identity (and optional extra
// headers) attached.
func postJSONTenant(t *testing.T, ctx context.Context, url, tenant string, body any, hdr map[string]string) (*http.Response, error) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant-ID", tenant)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	return http.DefaultClient.Do(req)
}

// overloadTotal resolves the campaign's request volume: the
// SERVER_OVERLOAD_CAMPAIGN_RUNS env var, defaulting to the 510-request
// floor (3 tenants x 170 concurrent clients).
func overloadTotal(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("SERVER_OVERLOAD_CAMPAIGN_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 3 {
			t.Fatalf("SERVER_OVERLOAD_CAMPAIGN_RUNS=%q: want an integer >= 3", v)
		}
		return n
	}
	return 510
}

// TestOverloadFairnessCampaign drives >= 500 concurrent requests from
// three tenants with 5:2:1 weights through a one-slot wfq server and
// checks the fairness contract end to end:
//
//   - while every tenant is backlogged, grants interleave in weight
//     proportion (within 25%);
//   - the capped tenant's overflow is shed as typed 429s with Retry-After;
//   - every response is a clean 200, a sound partial, or a typed 429 —
//     never a hang, a 5xx, or a silent drop;
//   - the scheduler's per-tenant metrics and statusz snapshot agree;
//   - no goroutines leak once the storm drains.
func TestOverloadFairnessCampaign(t *testing.T) {
	base := runtime.NumGoroutine()
	total := overloadTotal(t)
	perTenant := total / 3
	bronzeCap := perTenant / 3

	table, err := sched.ParseTable([]byte(fmt.Sprintf(
		`{"gold":{"weight":5},"silver":{"weight":2},"bronze":{"weight":1,"queue_cap":%d}}`, bronzeCap)))
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		SchedPolicy: sched.PolicyWFQ,
		Tenants:     table,
		MaxInFlight: 1,
		QueueDepth:  4 * total,
		// Budgets far above the storm's duration: nothing times out in
		// queue, so completion counts are pure scheduling.
		DefaultTimeout: 5 * time.Minute,
		MaxTimeout:     5 * time.Minute,
		// The flight recorder retains the whole campaign: grant order is
		// measured from its server-side timestamps below.
		FlightEntries: 4 * total,
	})

	// Occupy the only slot so every client enqueues before dispatch
	// starts; cancelling the holder's request then opens the floodgate.
	long := strings.Replace(slowSrc, "i < 3000", "i < 50000000", 1)
	holdCtx, releaseSlot := context.WithCancel(context.Background())
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		resp, err := postJSONTenant(t, holdCtx, ts.URL+"/v1/analyze", "warm", AnalyzeRequest{Source: long}, nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitInFlight(t, s, 1)

	type result struct {
		tenant string
		status int
		shed   ErrorBody
		retry  string
		hang   bool
	}
	results := make([]result, 3*perTenant)
	var wg sync.WaitGroup
	idx := 0
	for _, tenant := range []string{"gold", "silver", "bronze"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(slot int, tenant string) {
				defer wg.Done()
				res := result{tenant: tenant}
				resp, err := postJSONTenant(t, context.Background(), ts.URL+"/v1/analyze", tenant, AnalyzeRequest{Source: quickSrc}, nil)
				if err != nil {
					res.hang = true
					results[slot] = res
					return
				}
				res.status = resp.StatusCode
				if resp.StatusCode == http.StatusOK {
					var out AnalyzeResponse
					_ = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
				} else {
					res.retry = resp.Header.Get("Retry-After")
					var out ErrorResponse
					_ = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					res.shed = out.Error
				}
				results[slot] = res
			}(idx, tenant)
			idx++
		}
	}

	// Every client is either parked in the scheduler queue or already
	// shed (bronze beyond its cap) before the slot opens.
	wantQueued := 2*perTenant + bronzeCap
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && int(s.metrics.Gauge("server_queue_depth").Value()) < wantQueued {
		time.Sleep(5 * time.Millisecond)
	}
	if got := int(s.metrics.Gauge("server_queue_depth").Value()); got < wantQueued {
		t.Fatalf("only %d of %d clients queued within 30s", got, wantQueued)
	}
	releaseSlot()
	<-holderDone
	wg.Wait()

	// Classify. Allowed terminal states: 200 (clean or sound partial) and
	// typed 429 sheds carrying Retry-After.
	perTenantOK := map[string]int{}
	sheds := map[string]int{}
	for _, res := range results {
		switch {
		case res.hang:
			t.Fatal("a client saw a transport error (hung or dropped response)")
		case res.status == http.StatusOK:
			perTenantOK[res.tenant]++
		case res.status == http.StatusTooManyRequests:
			sheds[res.tenant]++
			if res.shed.Kind != "shed" {
				t.Fatalf("429 with kind %q, want shed", res.shed.Kind)
			}
			if res.retry == "" || res.shed.RetryAfterMS <= 0 {
				t.Fatalf("429 without retry guidance: header=%q body=%d", res.retry, res.shed.RetryAfterMS)
			}
		default:
			t.Fatalf("tenant %s got status %d (%+v), want 200 or 429", res.tenant, res.status, res.shed)
		}
	}
	// Full accounting: every one of the 3*perTenant clients landed on
	// exactly one terminal state, and bronze's cap actually bit. (A bronze
	// straggler that enqueues after dispatch starts completes instead of
	// shedding, so the shed count has a floor, not an exact value.)
	for _, tenant := range []string{"gold", "silver", "bronze"} {
		if perTenantOK[tenant]+sheds[tenant] != perTenant {
			t.Errorf("tenant %s: %d ok + %d shed != %d clients", tenant, perTenantOK[tenant], sheds[tenant], perTenant)
		}
	}
	if min := (perTenant - bronzeCap) / 2; sheds["bronze"] < min {
		t.Errorf("bronze sheds = %d, want >= %d (clients beyond queue_cap %d)", sheds["bronze"], min, bronzeCap)
	}
	if sheds["gold"] != 0 || sheds["silver"] != 0 {
		t.Errorf("uncapped tenants were shed: gold=%d silver=%d", sheds["gold"], sheds["silver"])
	}

	// Weighted fairness over the window where all three tenants were
	// backlogged: the first M completions split 5:2:1 within 25%. Grant
	// order comes from the flight recorder's server-side timestamps
	// (start + elapsed = completion instant) — client-side arrival order
	// is too blurred by goroutine scheduling under 500 concurrent readers.
	m := 8 * bronzeCap / 2 // bronze stays backlogged through m*1/8 <= bronzeCap grants; halve for slack
	type grant struct {
		tenant string
		end    time.Time
	}
	var grants []grant
	for _, e := range s.flight.Entries() {
		if e.Status != http.StatusOK || e.Route != "/v1/analyze" {
			continue
		}
		switch e.Tenant {
		case "gold", "silver", "bronze":
			grants = append(grants, grant{e.Tenant, e.Start.Add(time.Duration(e.ElapsedUS) * time.Microsecond)})
		case "":
			t.Fatal("a 200 entry has no tenant attribution under wfq")
		}
	}
	sort.Slice(grants, func(i, j int) bool { return grants[i].end.Before(grants[j].end) })
	if len(grants) < m {
		t.Fatalf("flight recorder retained %d campaign completions, want >= %d", len(grants), m)
	}
	firstM := map[string]int{}
	for _, g := range grants[:m] {
		firstM[g.tenant]++
	}
	for tenant, weight := range map[string]float64{"gold": 5, "silver": 2, "bronze": 1} {
		want := float64(m) * weight / 8
		got := float64(firstM[tenant])
		t.Logf("tenant=%-6s weight=%g clients=%d completed=%d shed=%d first-%d-share=%d (ideal %.0f)",
			tenant, weight, perTenant, perTenantOK[tenant], sheds[tenant], m, firstM[tenant], want)
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("tenant %s completed %v of the first %d grants, want %v +/- 25%% (weights 5:2:1)", tenant, got, m, want)
		}
	}

	// The scheduler's own accounting agrees with the client-side view.
	snap := s.sched.Snapshot()
	if snap.Policy != sched.PolicyWFQ {
		t.Errorf("snapshot policy = %q, want wfq", snap.Policy)
	}
	byName := map[string]sched.TenantSnapshot{}
	for _, tsnap := range snap.Tenants {
		byName[tsnap.Tenant] = tsnap
	}
	for _, tenant := range []string{"gold", "silver", "bronze"} {
		if int(byName[tenant].Admitted) != perTenantOK[tenant] {
			t.Errorf("snapshot admitted[%s] = %d, clients saw %d", tenant, byName[tenant].Admitted, perTenantOK[tenant])
		}
		if int(byName[tenant].Shed) != sheds[tenant] {
			t.Errorf("snapshot shed[%s] = %d, clients saw %d", tenant, byName[tenant].Shed, sheds[tenant])
		}
	}
	if c := s.metrics.Counter(`sched_sheds_total{reason="tenant-queue-full"}`).Value(); int(c) != sheds["bronze"] {
		t.Errorf(`sched_sheds_total{reason="tenant-queue-full"} = %v, want %d`, c, sheds["bronze"])
	}
	var dump strings.Builder
	_ = s.metrics.WriteProm(&dump)
	for _, series := range []string{
		`sched_queue_depth{tenant="bronze",class="interactive"}`,
		`server_tenant_request_seconds_count{tenant="gold"}`,
		`sched_sheds_total{reason="tenant-queue-full"}`,
	} {
		if !strings.Contains(dump.String(), series) {
			t.Errorf("metrics dump missing %s", series)
		}
	}

	if n, ok := settleGoroutines(base, 12); !ok {
		t.Errorf("goroutines did not settle: %d now vs %d at start", n, base)
	}
}

// TestOverloadChaosCampaign replays seeded fault plans over the two
// scheduler sites while bursts of multi-tenant traffic contend for slots,
// for both the wfq and priority policies. The invariant: every response
// is clean, a sound partial, a typed 429, or the injected fault's
// structured 500 — and after each round the server still serves, holds no
// slots, and leaks no goroutines.
func TestOverloadChaosCampaign(t *testing.T) {
	base := runtime.NumGoroutine()
	table, err := sched.ParseTable([]byte(`{"gold":{"weight":5},"silver":{"weight":2},"bronze":{"weight":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"gold", "silver", "bronze", "unknown-tenant"}
	sites := []string{faultinject.SiteSchedEnqueue, faultinject.SiteSchedDispatch}
	classes := []string{"", "interactive", "batch", "background"}

	const rounds = 8
	const burst = 24
	for round := 0; round < rounds; round++ {
		policy := sched.PolicyWFQ
		if round%2 == 1 {
			policy = sched.PolicyPriority
		}
		site := sites[round/2%2]
		t.Run(fmt.Sprintf("round%d-%s-%s", round, policy, site), func(t *testing.T) {
			s, ts := newTestServer(t, Config{
				SchedPolicy: policy,
				Tenants:     table,
				MaxInFlight: 2,
				QueueDepth:  8,
			})
			faultinject.Arm(&faultinject.Plan{Site: site, After: int64(1 + round*3), Action: faultinject.Panic})
			defer faultinject.Disarm()

			var mu sync.Mutex
			var n200, n429, n500 int
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					hdr := map[string]string{}
					if c := classes[i%len(classes)]; c != "" {
						hdr["X-Priority"] = c
					}
					resp, err := postJSONTenant(t, context.Background(), ts.URL+"/v1/analyze", tenants[i%len(tenants)], AnalyzeRequest{Source: slowSrc, Seed: uint64(i)}, hdr)
					if err != nil {
						t.Errorf("request %d: transport error %v", i, err)
						return
					}
					defer resp.Body.Close()
					var body struct {
						Partial bool `json:"partial"`
						Error   struct {
							Kind    string `json:"kind"`
							Message string `json:"message"`
						} `json:"error"`
					}
					_ = json.NewDecoder(resp.Body).Decode(&body)
					mu.Lock()
					defer mu.Unlock()
					switch resp.StatusCode {
					case http.StatusOK:
						n200++
					case http.StatusTooManyRequests:
						n429++
						if body.Error.Kind != "shed" {
							t.Errorf("request %d: 429 kind %q, want shed", i, body.Error.Kind)
						}
						if resp.Header.Get("Retry-After") == "" {
							t.Errorf("request %d: 429 without Retry-After", i)
						}
					case http.StatusInternalServerError:
						n500++
						if body.Error.Kind != "panic" || body.Error.Message == "" {
							t.Errorf("request %d: 500 kind %q message %q, want typed panic", i, body.Error.Kind, body.Error.Message)
						}
					default:
						t.Errorf("request %d: status %d, want 200/429/500", i, resp.StatusCode)
					}
				}(i)
			}
			wg.Wait()
			if n500 > 1 {
				t.Errorf("%d structured 500s from a single armed fault, want at most 1", n500)
			}
			if n200 == 0 {
				t.Error("no request completed during the chaos round")
			}

			// Recovery: the fault fired and is inert; the server must hold
			// zero slots and serve cleanly.
			faultinject.Disarm()
			if v := s.metrics.Gauge("server_inflight").Value(); v != 0 {
				t.Fatalf("server_inflight = %v after round drained, want 0 (slot leak)", v)
			}
			if got := s.sched.Snapshot(); got.InFlight != 0 || got.Queued != 0 {
				t.Fatalf("scheduler snapshot after round = %+v, want empty", got)
			}
			resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-chaos probe: status %d, want 200", resp.StatusCode)
			}
			resp.Body.Close()
		})
	}
	if n, ok := settleGoroutines(base, 12); !ok {
		t.Errorf("goroutines did not settle after chaos rounds: %d now vs %d at start", n, base)
	}
}

// TestDeadlineAwareShed proves deadline-aware queue control: once the
// observed p50 service time exceeds a request's remaining budget, the
// scheduler sheds it immediately with retry guidance instead of letting
// it burn a slot to seal a near-empty partial.
func TestDeadlineAwareShed(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SchedPolicy: sched.PolicyWFQ,
		MaxInFlight: 1,
		QueueDepth:  8,
	})
	// Warm the service-time window with ~100ms runs.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: slowSrc, Seed: uint64(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if p50 := s.sched.Snapshot().P50MS; p50 < 5 {
		t.Fatalf("p50 after warmup = %.2fms, too fast to drive the deadline check", p50)
	}

	t0 := time.Now()
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: slowSrc, TimeoutMS: 1})
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed request: status %d, want 429", resp.StatusCode)
	}
	body := decodeError(t, resp)
	if body.Kind != "shed" || body.RetryAfterMS <= 0 {
		t.Fatalf("doomed request: kind %q retry_after_ms %d, want typed shed with guidance", body.Kind, body.RetryAfterMS)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline shed took %v, want immediate refusal", elapsed)
	}
	if c := s.metrics.Counter(`sched_sheds_total{reason="deadline-unmeetable"}`).Value(); c < 1 {
		t.Errorf(`sched_sheds_total{reason="deadline-unmeetable"} = %v, want >= 1`, c)
	}

	// A budgeted-but-feasible request still serves.
	resp = postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: slowSrc, TimeoutMS: 10_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feasible request: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}
