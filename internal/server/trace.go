package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"text/tabwriter"
	"time"

	"determinacy/internal/guard"
	"determinacy/internal/obs"
)

// Terminal outcomes recorded per request in the flight recorder. Every
// response lands on exactly one.
const (
	outcomeOK           = "ok"            // 200, complete result
	outcomeSoundPartial = "sound-partial" // 200, degraded but sound (or batch with failed entries)
	outcomeQuarantined  = "quarantined"   // analysis panicked; isolated as a structured 500
	outcomeInterrupted  = "interrupted"   // client went away / merge interrupted
	outcomeShed         = "shed"          // 429, admission queue full
	outcomeDraining     = "draining"      // 503, server draining
	outcomeError        = "error"         // any other 4xx/5xx
)

// outcomeForKind maps an ErrorBody kind to its flight-recorder outcome.
func outcomeForKind(kind string) string {
	switch kind {
	case "shed":
		return outcomeShed
	case "draining":
		return outcomeDraining
	case "interrupted":
		return outcomeInterrupted
	case "panic":
		return outcomeQuarantined
	default:
		return outcomeError
	}
}

// reqTrace is one request's observability context: identity, the retained
// event stream (nil when tracing is disabled), and the flight-recorder
// summary under construction.
type reqTrace struct {
	id     string
	route  string
	start  time.Time
	tracer *obs.RequestTrace
	entry  obs.FlightEntry
}

// obsTracer returns the per-request Tracer as an interface, or a true nil
// interface when tracing is disabled — never a typed nil, which would
// defeat the `if tracer == nil` fast path at every emission site.
func (rt *reqTrace) obsTracer() obs.Tracer {
	if rt == nil || rt.tracer == nil {
		return nil
	}
	return rt.tracer
}

// requestID returns the client's X-Request-ID when it is usable as a label
// (1-64 chars of [A-Za-z0-9_.-]), else a freshly minted random ID.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if n := len(id); n >= 1 && n <= 64 {
		ok := true
		for i := 0; i < n; i++ {
			c := id[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
				c == '_', c == '.', c == '-':
			default:
				ok = false
			}
		}
		if ok {
			return id
		}
	}
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// statusWriter records the first status code written and forwards Flush
// (streaming responses need it through the wrapper).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traced wraps an analysis handler with per-request observability: it
// mints or accepts the trace ID, echoes it on X-Request-ID, attaches the
// per-request Tracer, and — no matter how the handler exits — records a
// flight-recorder entry. A panic unwinding through here is recorded as
// quarantined with its *RunError location before re-panicking into
// recoverWrap, which writes the structured 500; entries for poisoned
// requests are never dropped.
func (s *Server) traced(route string, h func(http.ResponseWriter, *http.Request, *reqTrace)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt := &reqTrace{id: requestID(r), route: route, start: time.Now()}
		if !s.cfg.DisableTracing {
			rt.tracer = obs.NewRequestTrace(rt.id, s.cfg.TraceEventCap)
		}
		w.Header().Set("X-Request-ID", rt.id)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				re, ok := rec.(*guard.RunError)
				if !ok {
					re = guard.New("server", rec)
				}
				rt.entry.Status = http.StatusInternalServerError
				rt.entry.Outcome = outcomeQuarantined
				rt.entry.ErrorKind = "panic"
				rt.entry.ErrPhase, rt.entry.ErrInstr, rt.entry.ErrPos = re.Phase, re.Instr, re.Pos
				s.record(rt)
				panic(re)
			}
			if sw.status != 0 {
				rt.entry.Status = sw.status
			}
			s.record(rt)
		}()
		h(sw, r, rt)
	}
}

// record finalizes one request's flight-recorder entry: identity, elapsed
// time, trace-derived phase spans (also observed into the per-phase
// latency histograms), and a status-derived outcome when the handler did
// not classify one.
func (s *Server) record(rt *reqTrace) {
	rt.entry.TraceID = rt.id
	rt.entry.Route = rt.route
	rt.entry.Start = rt.start
	rt.entry.ElapsedUS = time.Since(rt.start).Microseconds()
	if rt.tracer != nil {
		rt.entry.Events = rt.tracer.Total()
		rt.entry.DroppedEvents = rt.tracer.Dropped()
		rt.entry.Phases = rt.tracer.Spans()
		for _, sp := range rt.entry.Phases {
			s.metrics.Histogram(fmt.Sprintf("server_phase_seconds{phase=%q}", sp.Phase), phaseBuckets...).
				Observe(sp.Seconds())
		}
	}
	if rt.entry.Outcome == "" {
		if rt.entry.Status == 0 || rt.entry.Status < 400 {
			rt.entry.Outcome = outcomeOK
		} else {
			rt.entry.Outcome = outcomeError
		}
	}
	s.flight.Record(rt.entry, rt.tracer)
}

// handleStatusz serves the flight recorder: a server summary plus the
// retained request entries, newest first. ?format=text renders a
// human-readable table; the default is JSON.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	entries := s.flight.Entries()
	snap := s.sched.Snapshot()
	summary := map[string]any{
		"version":        s.cfg.Version,
		"uptime_ms":      time.Since(s.start).Milliseconds(),
		"draining":       s.draining.Load(),
		"breaker_open":   s.breakerOpen.Load(),
		"inflight":       snap.InFlight,
		"queued":         snap.Queued,
		"goroutines":     runtime.NumGoroutine(),
		"requests_total": s.cRequests.Value(),
		"recorded":       s.flight.Total(),
		"retained":       len(entries),
	}
	if r.URL.Query().Get("format") != "text" {
		body := map[string]any{"server": summary, "scheduler": snap, "entries": entries}
		if s.cluster != nil {
			body["cluster"] = s.cluster.Snapshot()
		}
		s.writeJSON(w, http.StatusOK, body)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "detserve %s  uptime=%s  draining=%v  breaker_open=%v  inflight=%d  queued=%d  goroutines=%d\n",
		s.cfg.Version, time.Since(s.start).Round(time.Millisecond),
		s.draining.Load(), s.breakerOpen.Load(), snap.InFlight, snap.Queued, runtime.NumGoroutine())
	fmt.Fprintf(w, "requests=%d  recorded=%d  retained=%d\n\n", s.cRequests.Value(), s.flight.Total(), len(entries))
	fmt.Fprintf(w, "scheduler=%s", snap.Policy)
	if snap.P50MS > 0 {
		fmt.Fprintf(w, "  p50_service=%.1fms", snap.P50MS)
	}
	fmt.Fprintln(w)
	for _, ts := range snap.Tenants {
		fmt.Fprintf(w, "  tenant=%s weight=%g class=%s queued=%d inflight=%d admitted=%d shed=%d\n",
			ts.Tenant, ts.Weight, ts.Class, ts.Queued, ts.InFlight, ts.Admitted, ts.Shed)
	}
	if s.cluster != nil {
		cs := s.cluster.Snapshot()
		fmt.Fprintf(w, "cluster self=%s\n", cs.Self)
		for _, ps := range cs.Peers {
			fmt.Fprintf(w, "  peer=%s url=%s state=%s healthy=%v forwards=%d failures=%d cache_gets=%d cache_hits=%d",
				ps.Name, ps.URL, ps.State, ps.Healthy, ps.Forwards, ps.Failures, ps.CacheGets, ps.CacheHits)
			if ps.LastError != "" {
				fmt.Fprintf(w, " last_error=%q", ps.LastError)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TRACE_ID\tROUTE\tSTATUS\tOUTCOME\tELAPSED\tCACHE\tSTEPS\tFLUSHES\tDEGRADE\tERROR")
	for _, e := range entries {
		cache := "miss"
		if e.CacheHit {
			cache = "hit"
		}
		errCol := e.ErrorKind
		if e.ErrPhase != "" {
			errCol += "@" + e.ErrPhase
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%d\t%d\t%s\t%s\n",
			e.TraceID, e.Route, e.Status, e.Outcome,
			time.Duration(e.ElapsedUS)*time.Microsecond,
			cache, e.Steps, e.HeapFlushes, e.DegradeReason, errCol)
	}
	_ = tw.Flush()
}

// handleTracez dumps one retained request's event stream. ?id= selects the
// request; ?format=chrome renders a Chrome trace_event document, the
// default is JSONL (one summary line, then one line per event).
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad-request", Message: `missing "id" query parameter`})
		return
	}
	entry, tr, ok := s.flight.Lookup(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, ErrorBody{Kind: "not-found", Message: "trace " + id + " not in the flight recorder (evicted or never seen)"})
		return
	}
	if tr == nil {
		s.writeError(w, http.StatusNotFound, ErrorBody{Kind: "not-found", Message: "trace " + id + " has no retained events (tracing disabled)"})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = tr.WriteChromeTrace(w)
		s.metrics.Counter(`server_responses_total{code="200"}`).Inc()
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	writeJSONLine(w, map[string]any{"type": "summary", "entry": entry})
	_ = tr.WriteJSONL(w)
	s.metrics.Counter(`server_responses_total{code="200"}`).Inc()
}

// DebugHandler serves the debug surface alone — /debug/statusz,
// /debug/tracez and /metrics — for mounting on a private listener
// (cmd/detserve -debug-addr) next to net/http/pprof.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/statusz", s.handleStatusz)
	mux.HandleFunc("GET /debug/tracez", s.handleTracez)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}
