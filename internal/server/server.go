// Package server is the network-facing layer of the pipeline: an
// HTTP/JSON analysis service composing the existing layers — the compile
// cache, the batch pool, guard deadlines/cancellation, and obs metrics —
// and hardening them for sustained load. The robustness contract, proved
// by the seeded fault campaign in this package's tests:
//
//   - bounded admission: at most MaxInFlight requests execute and at most
//     QueueDepth wait; everything beyond that is shed with 429 and a
//     Retry-After hint, never buffered unboundedly;
//   - per-request deadlines: the server's MaxTimeout is a hard ceiling
//     over client-requested budgets, threaded into guard checkpoints so a
//     deadline lands as a sound partial result, not a hang;
//   - panic isolation: a poisoned program surfaces as a structured error
//     response via the *RunError boundary and never takes down the
//     process; consecutive quarantines trip a circuit breaker that flips
//     /readyz so a balancer stops routing here;
//   - graceful drain: BeginDrain/Drain stop admission, flip readiness,
//     let in-flight runs finish within a budget, then force-cancel so
//     they seal sound partial results.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"determinacy"
	"determinacy/internal/batch"
	"determinacy/internal/obs"
	"determinacy/internal/version"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing analysis requests
	// (0 = GOMAXPROCS via batch.New's convention: the pool's width).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot
	// (0 = 2×MaxInFlight). Requests beyond the queue are shed with 429.
	QueueDepth int
	// MaxBodyBytes bounds the request body (0 = 4 MiB). Oversized bodies
	// get 413 before any parsing happens; the parser's own MaxDepth guard
	// bounds what a maximally nested body within the limit can cost.
	MaxBodyBytes int64
	// DefaultTimeout applies when a request names no budget (0 = 10s);
	// MaxTimeout is the server-enforced ceiling over client-requested
	// budgets (0 = 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRuns caps a request's multi-seed merge width (0 = 16) and
	// MaxBatchPrograms caps /v1/batch fan-out (0 = 128).
	MaxRuns          int
	MaxBatchPrograms int
	// BreakerThreshold is the consecutive-quarantine count that trips
	// readiness (0 = 5). A later successful analysis closes the breaker.
	BreakerThreshold int
	// CacheEntries bounds the shared compile cache (0 = progcache default).
	CacheEntries int
	// Workers bounds the /v1/batch worker pool (0 = GOMAXPROCS).
	Workers int
	// Metrics receives every server/pool/cache series (nil = fresh
	// registry, readable via /metrics either way).
	Metrics *obs.Metrics
	// Version is echoed by /healthz (empty = internal/version.String()).
	Version string
	// FlightEntries bounds the flight recorder's request-summary ring
	// served at /debug/statusz (0 = obs.DefaultFlightEntries).
	FlightEntries int
	// TraceEventCap bounds retained (and streamed) trace events per
	// request (0 = obs.DefaultTraceEventCap).
	TraceEventCap int
	// DisableTracing turns off per-request event retention: requests run
	// with a nil Tracer (the zero-alloc path) and /debug/tracez has
	// nothing to serve. Flight-recorder summaries are still kept.
	DisableTracing bool
	// Engine selects the execution engine for every analysis the server
	// runs (bytecode when zero). Responses are byte-identical either way.
	Engine determinacy.Engine
	// FactCache, when set, memoizes completed single-run analyses in the
	// on-disk fact DB (L2 under the compile cache's L1). Warm hits serve
	// byte-identical responses; partial/degraded/errored runs never
	// populate it, so cached facts are always from clean completions.
	FactCache *determinacy.FactCache
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = batch.New(0).Workers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxInFlight
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 16
	}
	if c.MaxBatchPrograms <= 0 {
		c.MaxBatchPrograms = 128
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Version == "" {
		c.Version = version.String()
	}
	if c.FlightEntries <= 0 {
		c.FlightEntries = obs.DefaultFlightEntries
	}
	if c.TraceEventCap <= 0 {
		c.TraceEventCap = obs.DefaultTraceEventCap
	}
	return c
}

// Server is the analysis service. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *determinacy.Cache
	pool    *batch.Pool
	start   time.Time

	// slots is the in-flight semaphore; queued counts admission waiters.
	slots  chan struct{}
	queued atomic.Int64

	// wg tracks admitted requests so Drain can wait for them.
	wg sync.WaitGroup

	// draining flips once; drainCh wakes queued waiters; baseCtx is the
	// force-cancel parent of every run context.
	draining   atomic.Bool
	drainCh    chan struct{}
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// consecQuarantine and breakerOpen implement the readiness circuit
	// breaker.
	consecQuarantine atomic.Int64
	breakerOpen      atomic.Bool

	// Handles resolved once so hot paths skip registry lookups. Latency
	// and queue-wait histograms are per route (satellite: {route=...}
	// labels distinguish /v1/analyze from /v1/batch).
	gInFlight, gQueued, gDraining, gBreaker *obs.Gauge
	cRequests, cShed, cQuarantined          *obs.Counter
	hLatency, hQueueWait                    map[string]*obs.Histogram

	// flight retains the last FlightEntries request summaries for
	// /debug/statusz and /debug/tracez.
	flight *obs.FlightRecorder

	mux http.Handler
}

// Served routes, also the {route=...} label values.
const (
	routeAnalyze = "/v1/analyze"
	routeBatch   = "/v1/batch"
)

// latencyBuckets suit request wall times: 1ms up to 30s.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// phaseBuckets suit pipeline phases, which bottom out in microseconds.
var phaseBuckets = []float64{0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// routedHistograms creates one histogram per route under the given base
// name.
func routedHistograms(m *obs.Metrics, base string, buckets []float64) map[string]*obs.Histogram {
	out := make(map[string]*obs.Histogram, 2)
	for _, route := range []string{routeAnalyze, routeBatch} {
		out[route] = m.Histogram(fmt.Sprintf("%s{route=%q}", base, route), buckets...)
	}
	return out
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	s := &Server{
		cfg:     cfg,
		metrics: m,
		cache:   determinacy.NewCache(cfg.CacheEntries).WithMetrics(m),
		pool:    batch.New(cfg.Workers).WithMetrics(m),
		start:   time.Now(),
		slots:   make(chan struct{}, cfg.MaxInFlight),
		drainCh: make(chan struct{}),
		flight:  obs.NewFlightRecorder(cfg.FlightEntries),

		gInFlight:    m.Gauge("server_inflight"),
		gQueued:      m.Gauge("server_queue_depth"),
		gDraining:    m.Gauge("server_draining"),
		gBreaker:     m.Gauge("server_breaker_open"),
		cRequests:    m.Counter("server_requests_total"),
		cShed:        m.Counter("server_shed_total"),
		cQuarantined: m.Counter("server_quarantined_requests_total"),
		hLatency:     routedHistograms(m, "server_request_seconds", latencyBuckets),
		hQueueWait:   routedHistograms(m, "server_queue_wait_seconds", latencyBuckets),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	m.Gauge("server_max_inflight").Set(float64(cfg.MaxInFlight))
	m.Gauge("server_max_queue_depth").Set(float64(cfg.QueueDepth))
	m.Help("server_request_seconds", "End-to-end request wall time by route.")
	m.Help("server_queue_wait_seconds", "Admission-queue wait by route.")
	m.Help("server_phase_seconds", "Per-request pipeline-phase latency, derived from trace spans.")
	m.Help("server_requests_total", "Requests received, before admission.")
	m.Help("server_shed_total", "Requests shed with 429 (admission queue full).")
	m.Help("server_quarantined_requests_total", "Requests whose analysis panicked and was quarantined.")
	s.mux = s.routes()
	return s
}

// Handler is the service's HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (also served at /metrics).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// admissionError classifies why a request was not admitted.
type admissionError struct {
	shed     bool // queue full: 429
	draining bool // server draining: 503
	ctxErr   error
}

func (e *admissionError) Error() string {
	switch {
	case e.shed:
		return "server: admission queue full"
	case e.draining:
		return "server: draining, not accepting new work"
	default:
		return "server: admission aborted: " + e.ctxErr.Error()
	}
}

// acquire admits a request: an execution slot immediately if one is free,
// else a bounded queue wait, else a typed shed. hWait is the route's
// queue-wait histogram. Every admitted request must release().
func (s *Server) acquire(ctx context.Context, hWait *obs.Histogram) error {
	if s.draining.Load() {
		return &admissionError{draining: true}
	}
	select {
	case s.slots <- struct{}{}:
		s.gInFlight.Set(float64(len(s.slots)))
		return nil
	default:
	}
	q := s.queued.Add(1)
	s.gQueued.Set(float64(q))
	if int(q) > s.cfg.QueueDepth {
		s.gQueued.Set(float64(s.queued.Add(-1)))
		s.cShed.Inc()
		return &admissionError{shed: true}
	}
	t0 := time.Now()
	defer func() {
		s.gQueued.Set(float64(s.queued.Add(-1)))
		hWait.Observe(time.Since(t0).Seconds())
	}()
	select {
	case s.slots <- struct{}{}:
		s.gInFlight.Set(float64(len(s.slots)))
		return nil
	case <-s.drainCh:
		return &admissionError{draining: true}
	case <-ctx.Done():
		return &admissionError{ctxErr: ctx.Err()}
	}
}

func (s *Server) release() {
	<-s.slots
	s.gInFlight.Set(float64(len(s.slots)))
}

// retryAfter estimates when a shed client should try again: the pool's
// longest observed job, clamped to [1s, MaxTimeout].
func (s *Server) retryAfter() time.Duration {
	d := s.pool.Snapshot().LongestJob
	if d < time.Second {
		d = time.Second
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// effTimeout resolves a client-requested budget (milliseconds, 0 = server
// default) under the server ceiling.
func (s *Server) effTimeout(clientMS int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if clientMS > 0 {
		d = time.Duration(clientMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// noteQuarantine records a request whose analysis panicked; enough in a
// row trips the readiness breaker.
func (s *Server) noteQuarantine() {
	s.cQuarantined.Inc()
	if s.consecQuarantine.Add(1) >= int64(s.cfg.BreakerThreshold) &&
		s.breakerOpen.CompareAndSwap(false, true) {
		s.gBreaker.Set(1)
	}
}

// noteSuccess resets the quarantine streak and closes the breaker.
func (s *Server) noteSuccess() {
	s.consecQuarantine.Store(0)
	if s.breakerOpen.CompareAndSwap(true, false) {
		s.gBreaker.Set(0)
	}
}

// BeginDrain flips the server into draining mode: /readyz goes 503, new
// analysis requests are refused with 503, queued waiters are released
// with the same refusal. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
		s.gDraining.Set(1)
	}
}

// Drain performs the graceful-shutdown sequence: BeginDrain, then wait up
// to budget for admitted requests to finish on their own; past the budget
// every in-flight run is force-cancelled — the guard checkpoints stop it
// within microseconds and it responds with a sound partial — and Drain
// waits for those responses. Returns true when everything finished within
// the budget, false when the force-cancel was needed.
func (s *Server) Drain(budget time.Duration) bool {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		s.baseCancel()
		<-done
		return false
	}
}
