// Package server is the network-facing layer of the pipeline: an
// HTTP/JSON analysis service composing the existing layers — the compile
// cache, the batch pool, guard deadlines/cancellation, and obs metrics —
// and hardening them for sustained load. The robustness contract, proved
// by the seeded fault campaign in this package's tests:
//
//   - bounded admission: at most MaxInFlight requests execute and at most
//     QueueDepth wait; everything beyond that is shed with 429 and a
//     Retry-After hint, never buffered unboundedly;
//   - per-request deadlines: the server's MaxTimeout is a hard ceiling
//     over client-requested budgets, threaded into guard checkpoints so a
//     deadline lands as a sound partial result, not a hang;
//   - panic isolation: a poisoned program surfaces as a structured error
//     response via the *RunError boundary and never takes down the
//     process; consecutive quarantines trip a circuit breaker that flips
//     /readyz so a balancer stops routing here;
//   - graceful drain: BeginDrain/Drain stop admission, flip readiness,
//     let in-flight runs finish within a budget, then force-cancel so
//     they seal sound partial results.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"determinacy"
	"determinacy/internal/batch"
	"determinacy/internal/cluster"
	"determinacy/internal/obs"
	"determinacy/internal/server/sched"
	"determinacy/internal/version"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing analysis requests
	// (0 = GOMAXPROCS via batch.New's convention: the pool's width).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot
	// (0 = 2×MaxInFlight). Requests beyond the queue are shed with 429.
	QueueDepth int
	// MaxBodyBytes bounds the request body (0 = 4 MiB). Oversized bodies
	// get 413 before any parsing happens; the parser's own MaxDepth guard
	// bounds what a maximally nested body within the limit can cost.
	MaxBodyBytes int64
	// DefaultTimeout applies when a request names no budget (0 = 10s);
	// MaxTimeout is the server-enforced ceiling over client-requested
	// budgets (0 = 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxRuns caps a request's multi-seed merge width (0 = 16) and
	// MaxBatchPrograms caps /v1/batch fan-out (0 = 128).
	MaxRuns          int
	MaxBatchPrograms int
	// BreakerThreshold is the consecutive-quarantine count that trips
	// readiness (0 = 5). A later successful analysis closes the breaker.
	BreakerThreshold int
	// CacheEntries bounds the shared compile cache (0 = progcache default).
	CacheEntries int
	// Workers bounds the /v1/batch worker pool (0 = GOMAXPROCS).
	Workers int
	// Metrics receives every server/pool/cache series (nil = fresh
	// registry, readable via /metrics either way).
	Metrics *obs.Metrics
	// Version is echoed by /healthz (empty = internal/version.String()).
	Version string
	// FlightEntries bounds the flight recorder's request-summary ring
	// served at /debug/statusz (0 = obs.DefaultFlightEntries).
	FlightEntries int
	// TraceEventCap bounds retained (and streamed) trace events per
	// request (0 = obs.DefaultTraceEventCap).
	TraceEventCap int
	// DisableTracing turns off per-request event retention: requests run
	// with a nil Tracer (the zero-alloc path) and /debug/tracez has
	// nothing to serve. Flight-recorder summaries are still kept.
	DisableTracing bool
	// Engine selects the execution engine for every analysis the server
	// runs (bytecode when zero). Responses are byte-identical either way.
	Engine determinacy.Engine
	// FactCache, when set, memoizes completed single-run analyses in the
	// on-disk fact DB (L2 under the compile cache's L1). Warm hits serve
	// byte-identical responses; partial/degraded/errored runs never
	// populate it, so cached facts are always from clean completions.
	FactCache *determinacy.FactCache
	// SchedPolicy selects the admission scheduler: "fifo" (default,
	// byte-compatible with the pre-scheduler admission path), "wfq"
	// (weighted-fair queueing across tenants), or "priority" (strict
	// priority classes). See internal/server/sched.
	SchedPolicy string
	// Tenants configures per-tenant weights, priority classes, token-bucket
	// quotas and queue caps for the wfq/priority policies (cmd/detserve
	// -tenants). The zero Table treats every tenant alike at weight 1.
	Tenants sched.Table
	// ClassCaps bounds queued requests per priority class under the
	// priority policy (0 entries default to QueueDepth).
	ClassCaps map[sched.Class]int
	// StreamHeartbeat is the keepalive interval for ?stream= responses:
	// while an analysis is running, the server emits a heartbeat line
	// (NDJSON {"type":"heartbeat"} or an SSE comment) so idle-timeout
	// proxies keep the connection open (0 = 15s, negative = disabled).
	StreamHeartbeat time.Duration
	// Cluster, when set, makes this node part of a sharded fleet:
	// non-streaming /v1/analyze requests whose content-hash owner is a
	// healthy remote peer are forwarded there, the peer fleet serves as a
	// remote L3 fact tier behind FactCache (wired automatically when both
	// are set), and GET /v1/cluster/cache serves this node's records to
	// peers. Every peer failure mode degrades to local analysis.
	Cluster *cluster.Router
	// DrainTimeout is the graceful-drain budget: how long Drain (and the
	// SIGTERM path in cmd/detserve) waits for in-flight runs before
	// force-cancelling them into sound partials (0 = 10s). Reported on
	// /healthz as drain_timeout_ms.
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = batch.New(0).Workers()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxInFlight
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 16
	}
	if c.MaxBatchPrograms <= 0 {
		c.MaxBatchPrograms = 128
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Version == "" {
		c.Version = version.String()
	}
	if c.FlightEntries <= 0 {
		c.FlightEntries = obs.DefaultFlightEntries
	}
	if c.TraceEventCap <= 0 {
		c.TraceEventCap = obs.DefaultTraceEventCap
	}
	if c.StreamHeartbeat == 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server is the analysis service. Create with New, mount Handler on an
// http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	cache   *determinacy.Cache
	pool    *batch.Pool
	start   time.Time

	// sched is the pluggable admission layer: it owns the execution slots,
	// the bounded queues, and every fairness/priority/quota decision.
	sched sched.Scheduler

	// wg tracks admitted requests so Drain can wait for them.
	wg sync.WaitGroup

	// draining flips once; baseCtx is the force-cancel parent of every run
	// context. The scheduler refuses admission once BeginDrain runs.
	draining   atomic.Bool
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// consecQuarantine and breakerOpen implement the readiness circuit
	// breaker.
	consecQuarantine atomic.Int64
	breakerOpen      atomic.Bool

	// Handles resolved once so hot paths skip registry lookups. The
	// admission series (server_inflight, server_queue_depth,
	// server_shed_total) are owned by the scheduler. Latency and
	// queue-wait histograms are per route (satellite: {route=...} labels
	// distinguish /v1/analyze from /v1/batch).
	gDraining, gBreaker     *obs.Gauge
	cRequests, cQuarantined *obs.Counter
	hLatency, hQueueWait    map[string]*obs.Histogram
	// tenantLatency enables server_tenant_request_seconds{tenant=...}
	// histograms (wfq/priority policies only: under fifo every tenant is
	// anonymous and the series would duplicate server_request_seconds).
	tenantLatency bool

	// flight retains the last FlightEntries request summaries for
	// /debug/statusz and /debug/tracez.
	flight *obs.FlightRecorder

	// cluster is the peer router when this node is part of a sharded
	// fleet (nil for a single node — every cluster code path gates on it).
	cluster *cluster.Router

	mux http.Handler
}

// Served routes, also the {route=...} label values.
const (
	routeAnalyze = "/v1/analyze"
	routeBatch   = "/v1/batch"
)

// latencyBuckets suit request wall times: 1ms up to 30s.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// phaseBuckets suit pipeline phases, which bottom out in microseconds.
var phaseBuckets = []float64{0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// routedHistograms creates one histogram per route under the given base
// name.
func routedHistograms(m *obs.Metrics, base string, buckets []float64) map[string]*obs.Histogram {
	out := make(map[string]*obs.Histogram, 2)
	for _, route := range []string{routeAnalyze, routeBatch} {
		out[route] = m.Histogram(fmt.Sprintf("%s{route=%q}", base, route), buckets...)
	}
	return out
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := cfg.Metrics
	policy, err := sched.ParsePolicy(cfg.SchedPolicy)
	if err != nil {
		// Config is programmatic here; cmd/detserve validates the flag
		// before this point, so a bad name is a caller bug.
		panic(err)
	}
	scheduler, err := sched.New(policy, sched.Config{
		Slots:         cfg.MaxInFlight,
		QueueDepth:    cfg.QueueDepth,
		Tenants:       cfg.Tenants,
		ClassCaps:     cfg.ClassCaps,
		MaxRetryAfter: cfg.MaxTimeout,
		Metrics:       m,
	})
	if err != nil {
		panic(err)
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		cache:   determinacy.NewCache(cfg.CacheEntries).WithMetrics(m),
		pool:    batch.New(cfg.Workers).WithMetrics(m),
		start:   time.Now(),
		sched:   scheduler,
		flight:  obs.NewFlightRecorder(cfg.FlightEntries),

		gDraining:     m.Gauge("server_draining"),
		gBreaker:      m.Gauge("server_breaker_open"),
		cRequests:     m.Counter("server_requests_total"),
		cQuarantined:  m.Counter("server_quarantined_requests_total"),
		hLatency:      routedHistograms(m, "server_request_seconds", latencyBuckets),
		hQueueWait:    routedHistograms(m, "server_queue_wait_seconds", latencyBuckets),
		tenantLatency: policy != sched.PolicyFIFO,
		cluster:       cfg.Cluster,
	}
	// The peer fleet is the L3 fact tier: a local factcache miss consults
	// the owning peer's records (CRC-validated on import) before falling
	// back to a cold analysis.
	if cfg.Cluster != nil && cfg.FactCache != nil {
		cfg.FactCache.Internal().WithRemote(cfg.Cluster)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	m.Gauge("server_max_inflight").Set(float64(cfg.MaxInFlight))
	m.Gauge("server_max_queue_depth").Set(float64(cfg.QueueDepth))
	m.Help("server_request_seconds", "End-to-end request wall time by route.")
	m.Help("server_queue_wait_seconds", "Admission-queue wait by route.")
	m.Help("server_phase_seconds", "Per-request pipeline-phase latency, derived from trace spans.")
	m.Help("server_requests_total", "Requests received, before admission.")
	m.Help("server_shed_total", "Requests shed with 429 (admission queue full).")
	m.Help("server_quarantined_requests_total", "Requests whose analysis panicked and was quarantined.")
	s.mux = s.routes()
	return s
}

// Handler is the service's HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (also served at /metrics).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// DrainBudget reports the configured graceful-drain budget (the effective
// value of Config.DrainTimeout).
func (s *Server) DrainBudget() time.Duration { return s.cfg.DrainTimeout }

// acquire admits a request through the configured scheduler: an execution
// slot immediately if policy allows, else a bounded queue wait, else a
// typed refusal (*sched.ShedError, sched.ErrDraining, or the context's
// error). hWait is the route's queue-wait histogram; it observes exactly
// the requests that actually waited, as the pre-scheduler path did. Every
// admitted request must release(req).
func (s *Server) acquire(ctx context.Context, req *sched.Request, hWait *obs.Histogram) error {
	err := s.sched.Acquire(ctx, req)
	if req.Queued {
		hWait.Observe(req.Wait.Seconds())
	}
	return err
}

func (s *Server) release(req *sched.Request) {
	s.sched.Release(req)
}

// retryAfter estimates when a shed client should try again: the pool's
// longest observed job, clamped to [1s, MaxTimeout].
func (s *Server) retryAfter() time.Duration {
	d := s.pool.Snapshot().LongestJob
	if d < time.Second {
		d = time.Second
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// effTimeout resolves a client-requested budget (milliseconds, 0 = server
// default) under the server ceiling.
func (s *Server) effTimeout(clientMS int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if clientMS > 0 {
		d = time.Duration(clientMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// noteQuarantine records a request whose analysis panicked; enough in a
// row trips the readiness breaker.
func (s *Server) noteQuarantine() {
	s.cQuarantined.Inc()
	if s.consecQuarantine.Add(1) >= int64(s.cfg.BreakerThreshold) &&
		s.breakerOpen.CompareAndSwap(false, true) {
		s.gBreaker.Set(1)
	}
}

// noteSuccess resets the quarantine streak and closes the breaker.
func (s *Server) noteSuccess() {
	s.consecQuarantine.Store(0)
	if s.breakerOpen.CompareAndSwap(true, false) {
		s.gBreaker.Set(0)
	}
}

// BeginDrain flips the server into draining mode: /readyz goes 503, new
// analysis requests are refused with 503, queued waiters are released
// with the same refusal. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.sched.BeginDrain()
		s.gDraining.Set(1)
	}
}

// Drain performs the graceful-shutdown sequence: BeginDrain, then wait up
// to budget for admitted requests to finish on their own; past the budget
// every in-flight run is force-cancelled — the guard checkpoints stop it
// within microseconds and it responds with a sound partial — and Drain
// waits for those responses. Returns true when everything finished within
// the budget, false when the force-cancel was needed.
func (s *Server) Drain(budget time.Duration) bool {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(budget)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		s.baseCancel()
		<-done
		return false
	}
}
