package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"determinacy/internal/obs"
)

// writeJSONLine writes one JSON object and a newline; errors are dropped
// (the stream's client is gone, nothing useful remains to do).
func writeJSONLine(w io.Writer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	data = append(data, '\n')
	_, _ = w.Write(data)
}

// streamEvent is the wire shape of one streamed trace event; the same
// field names as the JSONL sink, wrapped in a type discriminator so
// clients can tell events from the final result line.
type streamEvent struct {
	Type   string `json:"type"`
	Seq    uint64 `json:"seq"`
	TsUS   int64  `json:"ts_us"`
	Ev     string `json:"ev"`
	Phase  string `json:"phase,omitempty"`
	Detail string `json:"detail,omitempty"`
	N1     int64  `json:"n1,omitempty"`
	N2     int64  `json:"n2,omitempty"`
	N3     int64  `json:"n3,omitempty"`
	N4     int64  `json:"n4,omitempty"`
}

// streamResult is the stream's terminal line: exactly one of Result and
// Error is set. Total/Dropped account for the full event stream (events
// beyond the per-request cap are dropped, not buffered).
type streamResult struct {
	Type    string           `json:"type"`
	Events  uint64           `json:"events"`
	Dropped uint64           `json:"dropped_events,omitempty"`
	Result  *AnalyzeResponse `json:"result,omitempty"`
	Error   *ErrorBody       `json:"error,omitempty"`
}

// streamWriter is a Tracer that forwards events to the client as they
// happen, framed as NDJSON lines or SSE data: records, flushing per
// event. Events beyond max are counted as dropped rather than written, so
// a fact-heavy run cannot stall its own analysis on a slow reader.
type streamWriter struct {
	mu    sync.Mutex
	w     http.ResponseWriter
	f     http.Flusher
	sse   bool
	start time.Time
	max   uint64
	seq   uint64
	drop  uint64
	// done flips when the terminal result line is written, so a racing
	// heartbeat tick can never append to a finished stream.
	done bool
}

func newStreamWriter(w http.ResponseWriter, sse bool, maxEvents int) *streamWriter {
	sw := &streamWriter{w: w, sse: sse, start: time.Now(), max: uint64(maxEvents)}
	sw.f, _ = w.(http.Flusher)
	return sw
}

// Event implements obs.Tracer.
func (sw *streamWriter) Event(e obs.Event) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.seq >= sw.max {
		sw.seq++
		sw.drop++
		return
	}
	rec := streamEvent{
		Type: "event", Seq: sw.seq, TsUS: time.Since(sw.start).Microseconds(),
		Ev: e.Kind.String(), Phase: e.Phase, Detail: e.Detail,
		N1: e.N1, N2: e.N2, N3: e.N3, N4: e.N4,
	}
	sw.seq++
	sw.writeLine(rec)
}

// writeLine frames and flushes one record; callers hold sw.mu or are the
// sole remaining writer.
func (sw *streamWriter) writeLine(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if sw.sse {
		_, _ = sw.w.Write([]byte("data: "))
	}
	data = append(data, '\n')
	if sw.sse {
		data = append(data, '\n')
	}
	_, _ = sw.w.Write(data)
	if sw.f != nil {
		sw.f.Flush()
	}
}

// finish writes the terminal result line and stops heartbeats.
func (sw *streamWriter) finish(resp *AnalyzeResponse, errBody *ErrorBody) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.done = true
	sw.writeLine(streamResult{Type: "result", Events: sw.seq, Dropped: sw.drop, Result: resp, Error: errBody})
}

// heartbeat writes one keepalive frame: an NDJSON {"type":"heartbeat"}
// line, or an SSE comment (ignored by EventSource clients). Either way
// idle-timeout proxies between server and client see traffic while a
// long analysis produces no events.
func (sw *streamWriter) heartbeat() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.done {
		return
	}
	if sw.sse {
		_, _ = sw.w.Write([]byte(": keepalive\n\n"))
		if sw.f != nil {
			sw.f.Flush()
		}
		return
	}
	sw.writeLine(struct {
		Type string `json:"type"`
	}{"heartbeat"})
}

// startHeartbeat emits a keepalive every interval until stop is called.
func (sw *streamWriter) startHeartbeat(every time.Duration) (stop func()) {
	t := time.NewTicker(every)
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case <-t.C:
				sw.heartbeat()
			case <-quit:
				return
			}
		}
	}()
	return func() {
		t.Stop()
		close(quit)
	}
}

// streamMode interprets the ?stream= query: "" (no streaming), "sse"
// (text/event-stream framing), or anything else truthy for NDJSON.
func streamMode(r *http.Request) (stream, sse bool) {
	v := r.URL.Query().Get("stream")
	switch v {
	case "", "0", "false":
		return false, false
	case "sse":
		return true, true
	default:
		return true, false
	}
}

// streamAnalyze answers an admitted /v1/analyze?stream=1 request: a 200
// header immediately, trace events as they happen, then a terminal result
// line. The analysis runs inside the same guard boundary as the buffered
// path, so a failure after the header becomes a structured error line on
// a 200 stream — the terminal line's "error" field is the status for
// streaming clients. Flight-recorder bookkeeping (quarantine, breaker,
// outcomes) matches the buffered path.
func (s *Server) streamAnalyze(w http.ResponseWriter, r *http.Request, rt *reqTrace, req *AnalyzeRequest, sse bool) {
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	s.metrics.Counter(`server_responses_total{code="200"}`).Inc()

	sw := newStreamWriter(w, sse, s.cfg.TraceEventCap)
	if hb := s.cfg.StreamHeartbeat; hb > 0 {
		defer sw.startHeartbeat(hb)()
	}
	tracer := obs.Multi(rt.obsTracer(), sw)

	// The run is parented on the request context: a client that
	// disconnects mid-stream cancels the analysis at the next guard
	// checkpoint instead of burning its slot to completion for nobody.

	t0 := time.Now()
	resp, err := s.runAnalyze(r.Context(), req, rt, tracer)
	s.hLatency[rt.route].Observe(time.Since(t0).Seconds())
	if err != nil {
		_, body := s.classifyRunError(err)
		s.noteRunError(rt, body)
		sw.finish(nil, &body)
		return
	}
	s.noteSuccess()
	resp.ElapsedMS = time.Since(t0).Milliseconds()
	s.noteAnalyzeSuccess(rt, resp)
	sw.finish(resp, nil)
}
