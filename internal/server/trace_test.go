package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/guard/faultinject"
	"determinacy/internal/ir"
	"determinacy/internal/obs"
)

// statuszPage mirrors the /debug/statusz JSON wire shape.
type statuszPage struct {
	Server  map[string]any    `json:"server"`
	Entries []obs.FlightEntry `json:"entries"`
}

func getStatusz(t *testing.T, base string) statuszPage {
	t.Helper()
	resp, err := http.Get(base + "/debug/statusz")
	if err != nil {
		t.Fatalf("GET /debug/statusz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	var page statuszPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("decode statusz: %v", err)
	}
	return page
}

func findEntry(t *testing.T, page statuszPage, id string) obs.FlightEntry {
	t.Helper()
	for _, e := range page.Entries {
		if e.TraceID == id {
			return e
		}
	}
	t.Fatalf("trace %s not in statusz (%d entries)", id, len(page.Entries))
	return obs.FlightEntry{}
}

func TestTraceIDEchoAndMint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A well-formed client ID is echoed verbatim.
	b := strings.NewReader(`{"source":"var x = 1;"}`)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", b)
	req.Header.Set("X-Request-ID", "client-id_1.test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id_1.test" {
		t.Fatalf("echoed ID = %q", got)
	}

	// A hostile ID (label-breaking characters) is replaced with a minted
	// one; a missing ID is minted too, and mints are unique.
	mint := func(clientID string) string {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", strings.NewReader(`{"source":"var x = 1;"}`))
		if clientID != "" {
			req.Header.Set("X-Request-ID", clientID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}
	hostile := mint("evil\"} inject{x=\"1")
	if hostile == "" || strings.ContainsAny(hostile, `"{}`) {
		t.Fatalf("hostile ID not replaced: %q", hostile)
	}
	a, b2 := mint(""), mint("")
	if a == "" || a == b2 {
		t.Fatalf("minted IDs not unique: %q vs %q", a, b2)
	}
}

func TestStatuszRecordsOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	do := func(id string, body any) *http.Response {
		raw, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", strings.NewReader(string(raw)))
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	do("req-ok", AnalyzeRequest{Source: quickSrc})
	do("req-hit", AnalyzeRequest{Source: quickSrc}) // same source: cache hit
	do("req-partial", AnalyzeRequest{Source: slowSrc, MaxSteps: 100})
	do("req-parse", AnalyzeRequest{Source: "var nope = ;"})

	page := getStatusz(t, ts.URL)

	ok := findEntry(t, page, "req-ok")
	if ok.Outcome != "ok" || ok.Status != 200 || ok.Route != routeAnalyze {
		t.Fatalf("req-ok entry: %+v", ok)
	}
	if ok.Steps == 0 || ok.Facts == 0 {
		t.Fatalf("req-ok entry missing stats: %+v", ok)
	}
	if len(ok.Phases) == 0 {
		t.Fatalf("req-ok entry has no phase spans: %+v", ok)
	}
	if ok.Events == 0 {
		t.Fatalf("req-ok entry has no trace events: %+v", ok)
	}

	hit := findEntry(t, page, "req-hit")
	if !hit.CacheHit {
		t.Fatalf("req-hit not marked cache-hit: %+v", hit)
	}
	if ok.CacheHit {
		t.Fatalf("req-ok (first compile) marked cache-hit: %+v", ok)
	}

	partial := findEntry(t, page, "req-partial")
	if partial.Outcome != "sound-partial" || partial.DegradeReason == "" {
		t.Fatalf("req-partial entry: %+v", partial)
	}

	parse := findEntry(t, page, "req-parse")
	if parse.Outcome != "error" || parse.ErrorKind != "parse" || parse.Status != 400 {
		t.Fatalf("req-parse entry: %+v", parse)
	}

	// Phase latencies derived from the spans land in the phase histograms.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mraw), `server_phase_seconds_bucket{phase="exec"`) {
		t.Fatal("no server_phase_seconds{phase=\"exec\"} series on /metrics")
	}
}

func TestStatuszTextFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	id := resp.Header.Get("X-Request-ID")
	resp.Body.Close()

	tresp, err := http.Get(ts.URL + "/debug/statusz?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if ct := tresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, _ := io.ReadAll(tresp.Body)
	text := string(raw)
	for _, want := range []string{"TRACE_ID", "ROUTE", "OUTCOME", id, routeAnalyze} {
		if !strings.Contains(text, want) {
			t.Fatalf("text statusz missing %q:\n%s", want, text)
		}
	}
}

func TestTracezDumpFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	id := resp.Header.Get("X-Request-ID")
	resp.Body.Close()

	// Missing and unknown IDs are typed errors.
	r400, _ := http.Get(ts.URL + "/debug/tracez")
	if r400.StatusCode != http.StatusBadRequest {
		t.Fatalf("tracez without id = %d", r400.StatusCode)
	}
	r400.Body.Close()
	r404, _ := http.Get(ts.URL + "/debug/tracez?id=no-such-trace")
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("tracez unknown id = %d", r404.StatusCode)
	}
	r404.Body.Close()

	// JSONL: a summary line then the event stream.
	jresp, err := http.Get(ts.URL + "/debug/tracez?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	sc := bufio.NewScanner(jresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []map[string]any
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) < 3 {
		t.Fatalf("tracez returned %d lines, want summary + events", len(lines))
	}
	if lines[0]["type"] != "summary" {
		t.Fatalf("first line = %v", lines[0])
	}
	sawPhase := false
	for _, rec := range lines[1:] {
		if rec["ev"] == "phase-begin" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Fatal("no phase-begin events in tracez dump")
	}

	// Chrome format: a trace_event document.
	cresp, err := http.Get(ts.URL + "/debug/tracez?id=" + id + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome dump not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome dump has no trace events")
	}
}

// TestQuarantinedRequestRecorded is the regression test for the
// flight-recorder fix: a request whose analysis panics must still land in
// the recorder, classified quarantined, carrying the *RunError location —
// whether the panic is converted inside the run boundary (SiteCoreStep)
// or escapes the handler entirely (SiteServerAdmit).
func TestQuarantinedRequestRecorded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer faultinject.Disarm()

	do := func(id, site, src string) {
		t.Helper()
		faultinject.Arm(&faultinject.Plan{Site: site, After: 1, Action: faultinject.Panic})
		raw, _ := json.Marshal(AnalyzeRequest{Source: src})
		req, _ := http.NewRequest("POST", ts.URL+"/v1/analyze", strings.NewReader(string(raw)))
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := decodeError(t, resp)
		faultinject.Disarm()
		if resp.StatusCode != http.StatusInternalServerError || body.Kind != "panic" {
			t.Fatalf("%s: status=%d kind=%q, want 500 panic", id, resp.StatusCode, body.Kind)
		}
	}

	// slowSrc runs long enough to reach a core.step checkpoint; the admit
	// fault fires before the analysis even starts.
	do("q-core", faultinject.SiteCoreStep, slowSrc)      // panic inside the run boundary
	do("q-admit", faultinject.SiteServerAdmit, quickSrc) // panic escapes the handler

	page := getStatusz(t, ts.URL)
	core := findEntry(t, page, "q-core")
	if core.Outcome != "quarantined" || core.Status != 500 || core.ErrorKind != "panic" {
		t.Fatalf("q-core entry: %+v", core)
	}
	if core.ErrPhase == "" {
		t.Fatalf("q-core entry lost its RunError phase: %+v", core)
	}
	admit := findEntry(t, page, "q-admit")
	if admit.Outcome != "quarantined" || admit.Status != 500 || admit.ErrorKind != "panic" {
		t.Fatalf("q-admit entry: %+v", admit)
	}
	if admit.ErrPhase == "" {
		t.Fatalf("q-admit entry lost its RunError phase: %+v", admit)
	}
}

func TestBatchOutcomeClassification(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	do := func(id string, body BatchRequest) {
		t.Helper()
		raw, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/batch", strings.NewReader(string(raw)))
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	do("b-ok", BatchRequest{Programs: []BatchProgram{{Source: quickSrc}, {Source: quickSrc}}})
	do("b-mixed", BatchRequest{Programs: []BatchProgram{{Source: quickSrc}, {Source: "var nope = ;"}}})

	page := getStatusz(t, ts.URL)
	ok := findEntry(t, page, "b-ok")
	if ok.Outcome != "ok" || ok.Route != routeBatch || !ok.CacheHit {
		// b-ok's two identical programs: the second compile is a hit, but
		// the first is a miss, so CacheHit (all-hit) must be false unless
		// an earlier test warmed program.js — assert route/outcome only.
		if ok.Outcome != "ok" || ok.Route != routeBatch {
			t.Fatalf("b-ok entry: %+v", ok)
		}
	}
	mixed := findEntry(t, page, "b-mixed")
	if mixed.Outcome != "sound-partial" {
		t.Fatalf("b-mixed entry: %+v", mixed)
	}
}

// TestServerNilTracerZeroAlloc re-asserts the zero-alloc nil-tracer
// guarantee with the per-request plumbing in place: with tracing disabled
// the middleware must hand the analysis a true nil Tracer interface (a
// typed nil would defeat every emission-site guard), and the hot path
// must not allocate.
func TestServerNilTracerZeroAlloc(t *testing.T) {
	rt := &reqTrace{id: "z"} // DisableTracing: no RequestTrace attached
	if tr := rt.obsTracer(); tr != nil {
		t.Fatalf("obsTracer() with tracing disabled = %T, want nil interface", tr)
	}
	if tr := obs.Multi(rt.obsTracer()); tr != nil {
		t.Fatalf("Multi(nil request tracer) = %T, want nil interface", tr)
	}

	mod := ir.MustCompile("p.js", "var x = 1;")
	a := core.New(mod, facts.NewStore(), core.Options{Out: io.Discard, Tracer: rt.obsTracer()})
	a.FlushHeap("warmup")
	allocs := testing.AllocsPerRun(200, func() {
		a.FlushHeap("warmup")
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer FlushHeap allocates %v times per op, want 0", allocs)
	}
}

func TestDisableTracingStillRecordsSummaries(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableTracing: true})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	id := resp.Header.Get("X-Request-ID")
	resp.Body.Close()

	page := getStatusz(t, ts.URL)
	e := findEntry(t, page, id)
	if e.Outcome != "ok" || e.Events != 0 || len(e.Phases) != 0 {
		t.Fatalf("untraced entry: %+v", e)
	}
	// tracez has no retained events to serve.
	tresp, _ := http.Get(ts.URL + "/debug/tracez?id=" + id)
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("tracez with tracing disabled = %d, want 404", tresp.StatusCode)
	}
	tresp.Body.Close()
}
