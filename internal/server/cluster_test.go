package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	determinacy "determinacy"
	"determinacy/internal/cluster"
	"determinacy/internal/obs"
	"determinacy/internal/server/sched"
)

// clusterNode is one in-process cluster member: a full Server behind a
// real httptest listener, with its own fact-cache directory and Router.
type clusterNode struct {
	name    string
	srv     *Server
	ts      *httptest.Server
	router  *cluster.Router
	metrics *obs.Metrics
	fc      *determinacy.FactCache
	handler atomic.Pointer[http.Handler]
}

// newClusterNodes builds a fully wired in-process cluster: every node
// gets a listener first (handler indirection breaks the URL/Router
// construction cycle), then a Router over the shared topology, then a
// Server whose handler is swapped in. transport may be nil (default);
// tweak, when non-nil, adjusts each node's cluster config (fast breaker
// cooldowns, disabled hedging, ...).
func newClusterNodes(t *testing.T, names []string, transport http.RoundTripper, tweak func(*cluster.Config)) map[string]*clusterNode {
	t.Helper()
	nodes := make(map[string]*clusterNode, len(names))
	peers := make(map[string]string, len(names))
	for _, name := range names {
		n := &clusterNode{name: name}
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := n.handler.Load()
			if h == nil {
				http.Error(w, "node not ready", http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		t.Cleanup(n.ts.Close)
		nodes[name] = n
		peers[name] = n.ts.URL
	}
	for _, name := range names {
		n := nodes[name]
		n.metrics = obs.NewMetrics()
		ccfg := cluster.Config{
			Topology:        cluster.Topology{Self: name, Peers: peers},
			Transport:       transport,
			Metrics:         n.metrics,
			ProbeInterval:   -1, // tests drive ProbeOnce explicitly
			HedgeDelay:      -1,
			BreakerCooldown: 50 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&ccfg)
		}
		router, err := cluster.New(ccfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", name, err)
		}
		t.Cleanup(router.Close)
		n.router = router

		fc, err := determinacy.OpenFactCache(filepath.Join(t.TempDir(), name))
		if err != nil {
			t.Fatalf("OpenFactCache(%s): %v", name, err)
		}
		n.fc = fc
		n.srv = New(Config{
			FactCache: fc,
			Cluster:   router,
			Metrics:   n.metrics,
		})
		h := n.srv.Handler()
		n.handler.Store(&h)
	}
	return nodes
}

// srcOwnedBy derives a runnable program whose content hash lands on the
// wanted ring owner (salted comments shift the hash, not the facts).
func srcOwnedBy(t *testing.T, r *cluster.Router, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		src := fmt.Sprintf("var x = 1 + 2; console.log(x); // salt %d", i)
		if r.Owner(cluster.HashKey(src)) == owner {
			return src
		}
	}
	t.Fatalf("no source owned by %q found", owner)
	return ""
}

// normalize strips the per-run wall-clock field so responses can be
// compared for semantic byte-identity.
func normalize(a AnalyzeResponse) AnalyzeResponse {
	a.ElapsedMS = 0
	return a
}

// TestClusterForwardToOwner pins the tentpole's happy path: a request
// landing on a non-owner is relayed to the ring owner, the client sees a
// clean 200 identical to asking the owner directly, and both nodes'
// observability agrees on who served it.
func TestClusterForwardToOwner(t *testing.T) {
	nodes := newClusterNodes(t, []string{"a", "b"}, nil, nil)
	a, b := nodes["a"], nodes["b"]
	src := srcOwnedBy(t, a.router, "b")

	resp := postJSON(t, a.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "fwd.js", Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded status = %d, want 200", resp.StatusCode)
	}
	relayed := decodeAnalyze(t, resp)

	direct := decodeAnalyze(t, postJSON(t, b.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "fwd.js", Source: src}))
	if !reflect.DeepEqual(normalize(relayed), normalize(direct)) {
		t.Fatalf("relayed response differs from owner's direct answer:\nrelayed: %+v\ndirect:  %+v", relayed, direct)
	}

	// The forwarder's flight entry names the peer; the owner's does not.
	af := a.srv.flight.Entries()
	if len(af) == 0 || af[0].Peer != "b" {
		t.Fatalf("forwarder flight entry should carry peer=b, got %+v", af)
	}
	bf := b.srv.flight.Entries()
	if len(bf) == 0 || bf[0].Peer != "" {
		t.Fatalf("owner flight entry should have no peer, got %+v", bf)
	}
	if v := a.metrics.Counter(`cluster_requests_total{peer="b",outcome="relayed"}`).Value(); v != 1 {
		t.Fatalf(`cluster_requests_total{peer="b",outcome="relayed"} = %d, want 1`, v)
	}
}

// TestClusterForwardedServedLocally pins loop prevention and the relay
// digest: a request already forwarded once is served where it lands, and
// the response is stamped with a digest over exactly the bytes written.
func TestClusterForwardedServedLocally(t *testing.T) {
	nodes := newClusterNodes(t, []string{"a", "b"}, nil, nil)
	a := nodes["a"]
	src := srcOwnedBy(t, a.router, "b")

	body, _ := json.Marshal(AnalyzeRequest{Name: "loop.js", Source: src})
	req, _ := http.NewRequest(http.MethodPost, a.ts.URL+"/v1/analyze", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (served locally, never re-forwarded)", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	sum := sha256.Sum256(raw)
	if got, want := resp.Header.Get(cluster.DigestHeader), hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("relay digest = %q, want %q (sha256 of body)", got, want)
	}
	if af := a.srv.flight.Entries(); len(af) == 0 || af[0].Peer != "" {
		t.Fatalf("forwarded request must be served locally, got %+v", af)
	}
}

// TestClusterDeadPeerFallsBack pins graceful degradation: with the owner
// gone, requests still answer 200 from local analysis, fallbacks are
// counted by reason, and the owner's circuit opens after the threshold.
func TestClusterDeadPeerFallsBack(t *testing.T) {
	nodes := newClusterNodes(t, []string{"a", "b"}, nil, func(c *cluster.Config) {
		c.ForwardTimeout = 2 * time.Second
		c.BreakerCooldown = time.Minute // keep it open for the assertion
	})
	a, b := nodes["a"], nodes["b"]
	src := srcOwnedBy(t, a.router, "b")
	b.ts.Close() // owner dies before serving anything

	// Request 1 fails its forward AND its L3 cache fetch against the dead
	// owner (two breaker strikes); request 2's forward failure is the
	// third, opening the circuit.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, a.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "dead.js", Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200 via local fallback", i, resp.StatusCode)
		}
		out := decodeAnalyze(t, resp)
		if out.Partial || out.NumFacts == 0 {
			t.Fatalf("request %d: degraded local fallback: %+v", i, out)
		}
	}
	if v := a.metrics.Counter(`cluster_fallback_total{reason="refused"}`).Value(); v != 2 {
		t.Fatalf(`cluster_fallback_total{reason="refused"} = %d, want 2`, v)
	}

	// Circuit now open: the next request falls back without dialing.
	resp := postJSON(t, a.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "dead.js", Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breaker-open status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if v := a.metrics.Counter(`cluster_fallback_total{reason="breaker-open"}`).Value(); v != 1 {
		t.Fatalf(`cluster_fallback_total{reason="breaker-open"} = %d, want 1`, v)
	}
	snap := a.router.Snapshot()
	if len(snap.Peers) != 1 || snap.Peers[0].State != "open" {
		t.Fatalf("peer b should be open, got %+v", snap.Peers)
	}
}

// TestClusterRemoteCacheWarm pins the L3 tier end to end: the owner
// analyzes and caches; a peer forced to serve the same program locally
// pulls the owner's records over /v1/cluster/cache, validates and
// imports them, and answers byte-identically — a cache hit without ever
// analyzing.
func TestClusterRemoteCacheWarm(t *testing.T) {
	nodes := newClusterNodes(t, []string{"a", "b"}, nil, nil)
	a, b := nodes["a"], nodes["b"]
	src := srcOwnedBy(t, a.router, "b")

	// Owner runs cold and caches.
	direct := decodeAnalyze(t, postJSON(t, b.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "warm.js", Source: src}))

	// Force node a to serve locally (forwarded header = loop prevention);
	// its local cache is empty, so the lookup goes remote.
	body, _ := json.Marshal(AnalyzeRequest{Name: "warm.js", Source: src})
	req, _ := http.NewRequest(http.MethodPost, a.ts.URL+"/v1/analyze", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	remote := decodeAnalyze(t, resp)
	if !reflect.DeepEqual(normalize(remote), normalize(direct)) {
		t.Fatalf("remote-warm response differs from owner's:\nremote: %+v\ndirect: %+v", remote, direct)
	}
	st := a.fc.Internal().Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("node a RemoteHits = %d, want 1", st.RemoteHits)
	}
	if v := a.metrics.Counter(`cluster_cachegets_total{outcome="hit"}`).Value(); v != 1 {
		t.Fatalf(`cluster_cachegets_total{outcome="hit"} = %d, want 1`, v)
	}

	// The records imported: a fresh lookup on a hits locally, no new fetch.
	resp2, err := http.DefaultClient.Do(func() *http.Request {
		r2, _ := http.NewRequest(http.MethodPost, a.ts.URL+"/v1/analyze", strings.NewReader(string(body)))
		r2.Header.Set("Content-Type", "application/json")
		r2.Header.Set(cluster.ForwardedHeader, "b")
		return r2
	}())
	if err != nil {
		t.Fatalf("second POST: %v", err)
	}
	decodeAnalyze(t, resp2)
	if v := a.metrics.Counter(`cluster_cachegets_total{outcome="hit"}`).Value(); v != 1 {
		t.Fatalf("second serve should hit locally; cache gets = %d, want still 1", v)
	}
}

// TestClusterCacheEndpoint pins the peer-facing record server's miss
// contract (the 200 stream is exercised end-to-end by
// TestClusterRemoteCacheWarm): unknown and absent keys answer a typed
// 404, never a relayable body.
func TestClusterCacheEndpoint(t *testing.T) {
	nodes := newClusterNodes(t, []string{"a", "b"}, nil, nil)
	b := nodes["b"]

	for _, key := range []string{strings.Repeat("0", 64), ""} {
		missing, err := http.Get(b.ts.URL + cluster.CachePath + "?key=" + key)
		if err != nil {
			t.Fatalf("GET missing: %v", err)
		}
		if missing.StatusCode != http.StatusNotFound {
			t.Fatalf("key %q status = %d, want 404", key, missing.StatusCode)
		}
		if kind := decodeError(t, missing).Kind; kind != "not-found" {
			t.Fatalf("key %q kind = %q, want not-found", key, kind)
		}
	}
}

// TestClusterStatuszAndHealthz pins the operator surface: the peer table
// on /debug/statusz (JSON and text) and the cluster identity plus drain
// budget on /healthz.
func TestClusterStatuszAndHealthz(t *testing.T) {
	nodes := newClusterNodes(t, []string{"a", "b", "c"}, nil, nil)
	a := nodes["a"]

	resp, err := http.Get(a.ts.URL + "/debug/statusz")
	if err != nil {
		t.Fatalf("GET statusz: %v", err)
	}
	var doc struct {
		Cluster cluster.Snapshot `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode statusz: %v", err)
	}
	resp.Body.Close()
	if doc.Cluster.Self != "a" || len(doc.Cluster.Peers) != 2 {
		t.Fatalf("statusz cluster = %+v, want self=a with 2 remote peers", doc.Cluster)
	}
	for _, p := range doc.Cluster.Peers {
		if p.State != "closed" {
			t.Fatalf("fresh peer %s state = %q, want closed", p.Name, p.State)
		}
	}

	text, err := http.Get(a.ts.URL + "/debug/statusz?format=text")
	if err != nil {
		t.Fatalf("GET statusz text: %v", err)
	}
	tb, _ := io.ReadAll(text.Body)
	text.Body.Close()
	if !strings.Contains(string(tb), "cluster self=a") || !strings.Contains(string(tb), "peer=b") {
		t.Fatalf("text statusz missing peer table:\n%s", tb)
	}

	hz, err := http.Get(a.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	var health map[string]any
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	hz.Body.Close()
	if health["cluster_self"] != "a" {
		t.Fatalf("healthz cluster_self = %v, want a", health["cluster_self"])
	}
	if ms, ok := health["drain_timeout_ms"].(float64); !ok || ms != 10000 {
		t.Fatalf("healthz drain_timeout_ms = %v, want 10000 (default)", health["drain_timeout_ms"])
	}
}

// TestClusterProbeRecloses pins health-driven recovery at the server
// level: a dead peer opens, the node comes back, and one probe round
// re-closes the circuit without risking a live request.
func TestClusterProbeRecloses(t *testing.T) {
	var down atomic.Bool
	transport := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if down.Load() {
			return nil, fmt.Errorf("chaos: host unreachable")
		}
		return http.DefaultTransport.RoundTrip(req)
	})
	nodes := newClusterNodes(t, []string{"a", "b"}, transport, func(c *cluster.Config) {
		c.BreakerCooldown = 10 * time.Millisecond
	})
	a := nodes["a"]
	src := srcOwnedBy(t, a.router, "b")

	down.Store(true)
	for i := 0; i < 3; i++ {
		resp := postJSON(t, a.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "probe.js", Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200 fallback", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if snap := a.router.Snapshot(); snap.Peers[0].State != "open" {
		t.Fatalf("peer state = %q, want open", snap.Peers[0].State)
	}

	down.Store(false)
	time.Sleep(20 * time.Millisecond) // past cooldown so the probe is the half-open trial
	a.router.ProbeOnce()
	snap := a.router.Snapshot()
	if snap.Peers[0].State != "closed" || !snap.Peers[0].Healthy {
		t.Fatalf("after recovery probe: %+v, want closed+healthy", snap.Peers[0])
	}

	// Traffic relays again.
	resp := postJSON(t, a.ts.URL+"/v1/analyze", AnalyzeRequest{Name: "probe.js", Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if af := a.srv.flight.Entries(); af[0].Peer != "b" {
		t.Fatalf("post-recovery request should relay to b, got %+v", af[0])
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// TestShedRetryAfterScaling pins the degraded-mode admission guidance:
// Retry-After grows with the open-circuit fraction and clamps at the
// ceiling.
func TestShedRetryAfterScaling(t *testing.T) {
	e := &sched.ShedError{RetryAfter: 2 * time.Second}
	e.ScaleRetryAfter(1.5, 10*time.Second)
	if e.RetryAfter != 3*time.Second {
		t.Fatalf("scaled RetryAfter = %v, want 3s", e.RetryAfter)
	}
	e.ScaleRetryAfter(100, 10*time.Second)
	if e.RetryAfter != 10*time.Second {
		t.Fatalf("clamped RetryAfter = %v, want 10s", e.RetryAfter)
	}
	e2 := &sched.ShedError{RetryAfter: 2 * time.Second}
	e2.ScaleRetryAfter(1, 10*time.Second)
	if e2.RetryAfter != 2*time.Second {
		t.Fatalf("factor 1 must be a no-op, got %v", e2.RetryAfter)
	}
}
