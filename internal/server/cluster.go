package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"determinacy/internal/cluster"
)

// tryForward relays a validated /v1/analyze request to its ring owner.
// It returns true only when a peer response was actually written to the
// client; every failure mode — breaker open, refused, timed out,
// mid-body disconnect, oversize, shedding peer, garbage bytes — returns
// false, counts cluster_fallback_total{reason}, and lets the caller run
// the analysis locally. The caller has already checked that the cluster
// is configured, the request is non-streaming, the node is not draining,
// and the request was not already forwarded by a peer (loop prevention).
func (s *Server) tryForward(w http.ResponseWriter, r *http.Request, rt *reqTrace, req *AnalyzeRequest) bool {
	// Marshal before Route: a true Route admits the request through the
	// peer's circuit breaker, and that admission must always be settled by
	// a Forward call.
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	key := cluster.HashKey(req.Source)
	peerName, ok := s.cluster.Route(key)
	if !ok {
		// Owned locally, or the owner's circuit is open: serve here. Only
		// the unreachable-owner case is a degradation worth counting.
		if peerName != s.cluster.Self() {
			s.cluster.CountFallback(cluster.ReasonBreakerOpen)
		}
		return false
	}

	hdr := http.Header{}
	for _, k := range []string{"X-Tenant-ID", "X-API-Key", "Authorization", "X-Priority"} {
		if v := r.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	hdr.Set("X-Request-ID", rt.id)
	rel, perr := s.cluster.Forward(r.Context(), peerName, routeAnalyze, body, hdr)
	if perr != nil {
		s.cluster.CountFallback(perr.Reason)
		return false
	}

	// Re-validate before a relayed byte reaches the client: the body must
	// decode as the exact wire shape, and is re-encoded from the decoded
	// struct — a peer (or the wire) can inject at most a well-formed
	// response. Bit flips that survive JSON were already caught upstream
	// by the relay digest check in cluster.Forward.
	if rel.Status == http.StatusOK {
		var resp AnalyzeResponse
		if err := json.Unmarshal(rel.Body, &resp); err != nil {
			s.cluster.NoteRelayGarbage(peerName, fmt.Errorf("relayed 200 body does not decode: %w", err))
			s.cluster.CountFallback(cluster.ReasonGarbage)
			return false
		}
		if rt != nil {
			rt.entry.Peer = peerName
		}
		s.noteAnalyzeSuccess(rt, &resp)
		s.writeJSON(w, http.StatusOK, &resp)
		return true
	}
	var er ErrorResponse
	if err := json.Unmarshal(rel.Body, &er); err != nil || er.Error.Kind == "" {
		s.cluster.NoteRelayGarbage(peerName, fmt.Errorf("relayed %d body does not decode", rel.Status))
		s.cluster.CountFallback(cluster.ReasonGarbage)
		return false
	}
	if rt != nil {
		rt.entry.Peer = peerName
	}
	s.writeErr(w, rt, rel.Status, er.Error)
	return true
}

// digested wraps an analysis handler so responses to forwarded requests
// are buffered and stamped with cluster.DigestHeader (sha256 of the
// body). The forwarding node verifies the digest over the bytes it
// received, so in-transit corruption that still parses as JSON — a
// flipped digit inside a fact value, say — is detected and served
// locally instead of relayed. Streaming responses are exempt (the router
// never forwards them; a hand-built forwarded stream request just skips
// the digest).
func (s *Server) digested(h func(http.ResponseWriter, *http.Request, *reqTrace)) func(http.ResponseWriter, *http.Request, *reqTrace) {
	return func(w http.ResponseWriter, r *http.Request, rt *reqTrace) {
		if r.Header.Get(cluster.ForwardedHeader) == "" {
			h(w, r, rt)
			return
		}
		if stream, _ := streamMode(r); stream {
			h(w, r, rt)
			return
		}
		dw := &digestWriter{inner: w}
		h(dw, r, rt)
		dw.finish()
	}
}

// digestWriter buffers one response and emits it with its body digest.
type digestWriter struct {
	inner  http.ResponseWriter
	buf    bytes.Buffer
	status int
}

func (dw *digestWriter) Header() http.Header { return dw.inner.Header() }

func (dw *digestWriter) WriteHeader(code int) {
	if dw.status == 0 {
		dw.status = code
	}
}

func (dw *digestWriter) Write(b []byte) (int, error) {
	if dw.status == 0 {
		dw.status = http.StatusOK
	}
	return dw.buf.Write(b)
}

func (dw *digestWriter) finish() {
	if dw.status == 0 {
		dw.status = http.StatusOK
	}
	sum := sha256.Sum256(dw.buf.Bytes())
	dw.inner.Header().Set(cluster.DigestHeader, hex.EncodeToString(sum[:]))
	dw.inner.WriteHeader(dw.status)
	_, _ = dw.inner.Write(dw.buf.Bytes())
}

// handleClusterCache serves this node's fact records for a key to peers:
// the raw framed stream ExportRecords produces (manifest + chunks, CRC
// per frame), or 404 when the key is absent, invalid locally, or no fact
// cache is configured. Peers validate every frame on import, so this
// endpoint never needs to vouch for the bytes.
func (s *Server) handleClusterCache(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if s.cfg.FactCache == nil || key == "" {
		s.writeError(w, http.StatusNotFound, ErrorBody{Kind: "not-found", Message: "no records for key"})
		return
	}
	data, ok := s.cfg.FactCache.Internal().ExportRecords(key)
	if !ok {
		s.writeError(w, http.StatusNotFound, ErrorBody{Kind: "not-found", Message: "no records for key"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
	s.metrics.Counter(`server_responses_total{code="200"}`).Inc()
}
