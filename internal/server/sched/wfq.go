package sched

// wfqOrder is weighted-fair queueing over tenants, start-time-fair
// virtual-clock style: each queued request gets a virtual finish time
// vfinish = max(vtime, tenant.vfinish) + 1/weight, and dispatch always
// picks the earliest-finishing head. Charging one virtual unit per
// request means that while several tenants stay backlogged, their
// completed-request counts converge to the ratio of their weights; the
// max() term forgives idle periods, so a tenant returning after quiet
// time starts at the current clock instead of a banked advantage.
type wfqOrder struct{}

func (*wfqOrder) name() string { return PolicyWFQ }

func (*wfqOrder) push(c *core, w *waiter) {
	t := w.t
	base := c.vtime
	if t.vfinish > base {
		base = t.vfinish
	}
	w.vfinish = base + 1/t.weight
	t.vfinish = w.vfinish
	t.queue = append(t.queue, w)
	c.active[t] = true
}

func (*wfqOrder) next(c *core) *waiter {
	var best *tenantState
	for t := range c.active {
		if best == nil || t.queue[0].vfinish < best.queue[0].vfinish ||
			(t.queue[0].vfinish == best.queue[0].vfinish && t.name < best.name) {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	w := best.queue[0]
	copy(best.queue, best.queue[1:])
	best.queue[len(best.queue)-1] = nil
	best.queue = best.queue[:len(best.queue)-1]
	if len(best.queue) == 0 {
		delete(c.active, best)
	}
	if w.vfinish > c.vtime {
		c.vtime = w.vfinish
	}
	return w
}

// remove deletes an abandoned waiter in place. Later vfinishes of the
// same tenant are left as charged: a cancelled request costs its tenant
// one virtual unit, which keeps cancellation from being a way to jump
// the fair queue.
func (*wfqOrder) remove(c *core, w *waiter) {
	t := w.t
	for i, q := range t.queue {
		if q == w {
			copy(t.queue[i:], t.queue[i+1:])
			t.queue[len(t.queue)-1] = nil
			t.queue = t.queue[:len(t.queue)-1]
			break
		}
	}
	if len(t.queue) == 0 {
		delete(c.active, t)
	}
}

func (*wfqOrder) chargeImmediate(c *core, t *tenantState) {
	base := c.vtime
	if t.vfinish > base {
		base = t.vfinish
	}
	t.vfinish = base + 1/t.weight
	c.vtime = t.vfinish
}

func (*wfqOrder) higherQueued(*core, Class) bool { return false }
