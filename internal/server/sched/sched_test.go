package sched

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]string{"": PolicyFIFO, "fifo": PolicyFIFO, "wfq": PolicyWFQ, "priority": PolicyPriority} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestParseTable(t *testing.T) {
	tb, err := ParseTable([]byte(`{"pro":{"weight":4,"class":"interactive","rate":50,"burst":100},"bulk":{"weight":1,"queue_cap":8},"*":{"weight":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Tenants["pro"].Weight != 4 || tb.Tenants["bulk"].QueueCap != 8 || tb.Default.Weight != 2 {
		t.Fatalf("parsed table wrong: %+v", tb)
	}
	if !tb.known("pro") || tb.known("*") || tb.known("nobody") {
		t.Error("known() misclassifies tenants")
	}
	for name, bad := range map[string]string{
		"unknown-field":   `{"pro":{"wieght":4}}`,
		"negative-weight": `{"pro":{"weight":-1}}`,
		"bad-class":       `{"pro":{"class":"vip"}}`,
		"not-json":        `{{`,
	} {
		if _, err := ParseTable([]byte(bad)); err == nil {
			t.Errorf("%s: ParseTable accepted %q", name, bad)
		}
	}
}

func TestParseTableFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"pro":{"weight":4}}`), 0o600); err != nil {
		t.Fatal(err)
	}
	tb, err := ParseTableFlag("@" + path)
	if err != nil || tb.Tenants["pro"].Weight != 4 {
		t.Fatalf("ParseTableFlag(@file) = %+v, %v", tb, err)
	}
	if _, err := ParseTableFlag("@" + path + ".missing"); err == nil {
		t.Error("ParseTableFlag accepted a missing file")
	}
	if tb, err := ParseTableFlag(""); err != nil || tb.Tenants != nil {
		t.Errorf("ParseTableFlag(\"\") = %+v, %v; want zero table", tb, err)
	}
}

// mustAcquire acquires or fails the test.
func mustAcquire(t *testing.T, s Scheduler, req *Request) {
	t.Helper()
	if err := s.Acquire(context.Background(), req); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
}

func newSched(t *testing.T, policy string, cfg Config) Scheduler {
	t.Helper()
	s, err := New(policy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestImmediateGrantAndShed(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicyWFQ, PolicyPriority} {
		t.Run(policy, func(t *testing.T) {
			m := obs.NewMetrics()
			s := newSched(t, policy, Config{Slots: 1, QueueDepth: 1, Metrics: m})
			hold := &Request{}
			mustAcquire(t, s, hold)

			// Fill the queue, then overflow it.
			queued := &Request{}
			done := make(chan error, 1)
			go func() { done <- s.Acquire(context.Background(), queued) }()
			waitQueued(t, s, 1)

			var shed *ShedError
			if err := s.Acquire(context.Background(), &Request{}); !errors.As(err, &shed) {
				t.Fatalf("overflow Acquire = %v, want *ShedError", err)
			}
			if m.Counter("server_shed_total").Value() != 1 {
				t.Error("shed did not count into server_shed_total")
			}

			s.Release(hold)
			if err := <-done; err != nil {
				t.Fatalf("queued waiter: %v", err)
			}
			if !queued.Queued || queued.Wait <= 0 {
				t.Errorf("queued waiter not marked: queued=%v wait=%v", queued.Queued, queued.Wait)
			}
			s.Release(queued)
			if snap := s.Snapshot(); snap.InFlight != 0 || snap.Queued != 0 {
				t.Errorf("post-release snapshot = %+v, want empty", snap)
			}
		})
	}
}

func waitQueued(t *testing.T, s Scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Snapshot().Queued >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters", n)
}

// TestWFQGrantRatio proves the fairness invariant at the scheduler level:
// with every tenant backlogged before dispatch starts, grants interleave
// in weight proportion.
func TestWFQGrantRatio(t *testing.T) {
	table, err := ParseTable([]byte(`{"gold":{"weight":3},"bronze":{"weight":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(t, PolicyWFQ, Config{Slots: 1, QueueDepth: 64, Tenants: table})
	hold := &Request{Tenant: "gold"}
	mustAcquire(t, s, hold)

	const perTenant = 12
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				req := &Request{Tenant: tenant}
				if err := s.Acquire(context.Background(), req); err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				s.Release(req)
			}(tenant)
		}
	}
	waitQueued(t, s, 2*perTenant)
	s.Release(hold)
	wg.Wait()

	// While both tenants were backlogged (bronze drains after 4*perTenant/3
	// grants at 3:1), gold should hold ~3/4 of the grants. Check the first
	// 12: exact WFQ gives gold 9, bronze 3; allow slack for release timing.
	gold := 0
	for _, tenant := range order[:perTenant] {
		if tenant == "gold" {
			gold++
		}
	}
	if gold < 7 || gold > 11 {
		t.Fatalf("gold got %d of the first %d grants, want ~9 (3:1 weights); order=%v", gold, perTenant, order)
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	s := newSched(t, PolicyPriority, Config{Slots: 1, QueueDepth: 16})
	hold := &Request{Class: Interactive}
	mustAcquire(t, s, hold)

	var mu sync.Mutex
	var order []Class
	var wg sync.WaitGroup
	// Enqueue lowest class first so FIFO order would invert priority.
	for i, class := range []Class{Background, Batch, Interactive} {
		wg.Add(1)
		go func(class Class) {
			defer wg.Done()
			req := &Request{Class: class}
			if err := s.Acquire(context.Background(), req); err != nil {
				t.Errorf("class %v: %v", class, err)
				return
			}
			mu.Lock()
			order = append(order, class)
			mu.Unlock()
			s.Release(req)
		}(class)
		waitQueued(t, s, i+1) // each enqueue in turn, so order is known
	}
	waitQueued(t, s, 3)
	s.Release(hold)
	wg.Wait()

	want := []Class{Interactive, Batch, Background}
	for i, class := range want {
		if order[i] != class {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

func TestTokenBucketQuota(t *testing.T) {
	table, err := ParseTable([]byte(`{"capped":{"rate":0.001,"burst":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(t, PolicyWFQ, Config{Slots: 2, QueueDepth: 4, Tenants: table})
	first := &Request{Tenant: "capped"}
	mustAcquire(t, s, first)

	var shed *ShedError
	err = s.Acquire(context.Background(), &Request{Tenant: "capped"})
	if !errors.As(err, &shed) || shed.Reason != ReasonQuota {
		t.Fatalf("over-quota Acquire = %v, want quota shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Error("quota shed without Retry-After guidance")
	}
	// Other tenants are unaffected by one tenant's quota.
	other := &Request{Tenant: "free"}
	mustAcquire(t, s, other)
	s.Release(first)
	s.Release(other)
}

func TestDeadlineUnmeetableShed(t *testing.T) {
	s := newSched(t, PolicyWFQ, Config{Slots: 1, QueueDepth: 4})
	// Warm the service-time window to ~20ms.
	for i := 0; i < 3; i++ {
		req := &Request{}
		mustAcquire(t, s, req)
		time.Sleep(20 * time.Millisecond)
		s.Release(req)
	}
	var shed *ShedError
	err := s.Acquire(context.Background(), &Request{Deadline: time.Now().Add(time.Millisecond)})
	if !errors.As(err, &shed) || shed.Reason != ReasonDeadline {
		t.Fatalf("doomed request Acquire = %v, want deadline-unmeetable shed", err)
	}
	// A generous deadline still admits.
	ok := &Request{Deadline: time.Now().Add(time.Minute)}
	mustAcquire(t, s, ok)
	s.Release(ok)
}

func TestTenantAndClassQueueCaps(t *testing.T) {
	table, err := ParseTable([]byte(`{"small":{"queue_cap":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	s := newSched(t, PolicyPriority, Config{
		Slots: 1, QueueDepth: 16, Tenants: table,
		ClassCaps: map[Class]int{Background: 1},
	})
	hold := &Request{}
	mustAcquire(t, s, hold)

	go s.Acquire(context.Background(), &Request{Tenant: "small"}) //nolint:errcheck
	waitQueued(t, s, 1)
	var shed *ShedError
	if err := s.Acquire(context.Background(), &Request{Tenant: "small"}); !errors.As(err, &shed) || shed.Reason != ReasonTenantQueueFull {
		t.Fatalf("tenant-capped Acquire = %v, want tenant-queue-full", err)
	}

	go s.Acquire(context.Background(), &Request{Class: Background}) //nolint:errcheck
	waitQueued(t, s, 2)
	if err := s.Acquire(context.Background(), &Request{Class: Background}); !errors.As(err, &shed) || shed.Reason != ReasonClassQueueFull {
		t.Fatalf("class-capped Acquire = %v, want class-queue-full", err)
	}
	s.BeginDrain() // flush the two parked waiters
}

func TestDrainFlushesWaiters(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicyWFQ, PolicyPriority} {
		t.Run(policy, func(t *testing.T) {
			s := newSched(t, policy, Config{Slots: 1, QueueDepth: 8})
			hold := &Request{}
			mustAcquire(t, s, hold)
			done := make(chan error, 1)
			go func() { done <- s.Acquire(context.Background(), &Request{}) }()
			waitQueued(t, s, 1)
			s.BeginDrain()
			if err := <-done; !errors.Is(err, ErrDraining) {
				t.Fatalf("queued waiter during drain: %v, want ErrDraining", err)
			}
			if err := s.Acquire(context.Background(), &Request{}); !errors.Is(err, ErrDraining) {
				t.Fatalf("post-drain Acquire: %v, want ErrDraining", err)
			}
			s.Release(hold)
		})
	}
}

func TestCancelWhileQueued(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicyWFQ, PolicyPriority} {
		t.Run(policy, func(t *testing.T) {
			s := newSched(t, policy, Config{Slots: 1, QueueDepth: 8})
			hold := &Request{}
			mustAcquire(t, s, hold)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- s.Acquire(ctx, &Request{}) }()
			waitQueued(t, s, 1)
			cancel()
			if err := <-done; !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled waiter: %v, want context.Canceled", err)
			}
			// The abandoned waiter left no queue residue; the slot still
			// cycles.
			if snap := s.Snapshot(); snap.Queued != 0 {
				t.Fatalf("queued = %d after cancellation, want 0", snap.Queued)
			}
			s.Release(hold)
			next := &Request{}
			mustAcquire(t, s, next)
			s.Release(next)
		})
	}
}

// TestDispatchFaultReleasesSlot proves the slot-leak protection on the
// sched.dispatch fault site: an injected panic at the moment of grant
// unwinds with the slot already back in the pool.
func TestDispatchFaultReleasesSlot(t *testing.T) {
	for _, policy := range []string{PolicyFIFO, PolicyWFQ, PolicyPriority} {
		t.Run(policy, func(t *testing.T) {
			s := newSched(t, policy, Config{Slots: 1, QueueDepth: 2})
			faultinject.Arm(&faultinject.Plan{Site: faultinject.SiteSchedDispatch, After: 1, Action: faultinject.Panic})
			defer faultinject.Disarm()
			func() {
				defer func() {
					if recover() == nil {
						t.Error("armed dispatch fault did not fire")
					}
				}()
				_ = s.Acquire(context.Background(), &Request{})
			}()
			if snap := s.Snapshot(); snap.InFlight != 0 {
				t.Fatalf("inflight = %d after injected dispatch panic, want 0 (slot leaked)", snap.InFlight)
			}
			// The slot must still be grantable.
			req := &Request{}
			mustAcquire(t, s, req)
			s.Release(req)
		})
	}
}

func TestUnknownTenantsPoolAsOther(t *testing.T) {
	s := newSched(t, PolicyWFQ, Config{Slots: 4, QueueDepth: 4})
	reqs := make([]*Request, 3)
	for i, id := range []string{"mallory-1", "mallory-2", ""} {
		reqs[i] = &Request{Tenant: id}
		mustAcquire(t, s, reqs[i])
		if reqs[i].Tenant != otherTenant {
			t.Errorf("tenant %q resolved to %q, want %q", id, reqs[i].Tenant, otherTenant)
		}
	}
	snap := s.Snapshot()
	if len(snap.Tenants) != 1 || snap.Tenants[0].Tenant != otherTenant || snap.Tenants[0].InFlight != 3 {
		t.Fatalf("snapshot tenants = %+v, want one pooled %q entry with 3 in flight", snap.Tenants, otherTenant)
	}
	for _, req := range reqs {
		s.Release(req)
	}
}

// TestJobGateYieldsToHigherClasses covers the batch pool's priority-aware
// dispatch hook: a slot-holding background request's gate passes instantly
// on an empty queue, yields a bounded few milliseconds while interactive
// work is queued, and honors cancellation — it never blocks on the queued
// waiters' progress (they need the very slot the gated batch holds).
func TestJobGateYieldsToHigherClasses(t *testing.T) {
	s := newSched(t, PolicyPriority, Config{Slots: 1, QueueDepth: 8})
	g, ok := s.(DispatchGater)
	if !ok {
		t.Fatal("priority scheduler does not implement DispatchGater")
	}
	if fifo := newSched(t, PolicyFIFO, Config{Slots: 1, QueueDepth: 8}); func() bool {
		_, ok := fifo.(DispatchGater)
		return ok
	}() {
		t.Fatal("fifo scheduler unexpectedly implements DispatchGater (no classes to gate on)")
	}

	bg := &Request{Class: Background}
	mustAcquire(t, s, bg)
	gate := g.JobGate(bg)

	// Empty queue: no yield.
	t0 := time.Now()
	if err := gate(context.Background()); err != nil {
		t.Fatalf("gate on empty queue: %v", err)
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Errorf("gate on empty queue took %v, want immediate", d)
	}

	// Interactive work queued behind the held slot: the gate yields, but
	// returns on its own within the bound instead of deadlocking.
	ia := &Request{Class: Interactive}
	done := make(chan error, 1)
	go func() { done <- s.Acquire(context.Background(), ia) }()
	waitQueued(t, s, 1)
	t0 = time.Now()
	if err := gate(context.Background()); err != nil {
		t.Fatalf("gate with interactive queued: %v", err)
	}
	switch d := time.Since(t0); {
	case d < 2*time.Millisecond:
		t.Errorf("gate returned in %v with interactive work queued, want a yield pause", d)
	case d > time.Second:
		t.Errorf("gate yield took %v, want bounded (few ms)", d)
	}

	// A cancelled job context short-circuits the yield loop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := gate(ctx); err == nil {
		t.Error("gate ignored a cancelled context")
	}

	s.Release(bg)
	if err := <-done; err != nil {
		t.Fatalf("queued interactive waiter: %v", err)
	}
	s.Release(ia)
}
