package sched

// priorityOrder is strict priority over classes: every queued
// interactive request dispatches before any batch request, which
// dispatches before any background request; within a class, first come
// first served. Starvation of lower classes under sustained
// higher-class load is the contract, bounded by the per-class queue
// caps (a full lower class sheds with a typed 429 rather than queueing
// forever).
type priorityOrder struct{}

func (*priorityOrder) name() string { return PolicyPriority }

func (*priorityOrder) push(c *core, w *waiter) {
	c.classQ[w.class] = append(c.classQ[w.class], w)
}

func (*priorityOrder) next(c *core) *waiter {
	for class := Class(0); class < numClasses; class++ {
		q := c.classQ[class]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		c.classQ[class] = q[:len(q)-1]
		return w
	}
	return nil
}

func (*priorityOrder) remove(c *core, w *waiter) {
	q := c.classQ[w.class]
	for i, cand := range q {
		if cand == w {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			c.classQ[w.class] = q[:len(q)-1]
			return
		}
	}
}

func (*priorityOrder) chargeImmediate(*core, *tenantState) {}

func (*priorityOrder) higherQueued(c *core, class Class) bool {
	for cl := Class(0); cl < class; cl++ {
		if c.queuedByClass[cl] > 0 {
			return true
		}
	}
	return false
}
