package sched

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

// waiter states, transitioned under core.mu.
const (
	stQueued = iota
	stGranted
	stShed // shed or drained after queueing; ready carries the error
	stCancelled
)

// waiter is one queued admission attempt.
type waiter struct {
	req   *Request
	t     *tenantState
	class Class
	enq   time.Time
	// vfinish is the WFQ virtual finish time; unused by priority.
	vfinish float64
	// ready receives exactly one grant (nil) or refusal; buffered so
	// dispatch never blocks on an abandoning waiter.
	ready chan error
	state int
}

// order is the queueing discipline plugged into core: wfq and priority
// differ only in how waiters are stored and which one dispatches next.
// All methods run under core.mu.
type order interface {
	name() string
	// push enqueues w (and computes its ordering state).
	push(c *core, w *waiter)
	// next pops the waiter to dispatch, nil when no queue is backlogged.
	next(c *core) *waiter
	// remove deletes an abandoned waiter from its queue.
	remove(c *core, w *waiter)
	// chargeImmediate accounts an uncontended grant (empty queue, free
	// slot) so fairness state stays consistent across idle periods.
	chargeImmediate(c *core, t *tenantState)
	// higherQueued reports whether a strictly more urgent waiter than
	// class is queued (drives the batch-pool dispatch gate).
	higherQueued(c *core, class Class) bool
}

// core is the mutex-guarded scheduler shared by the wfq and priority
// policies: bounded per-tenant/per-class queues, token-bucket quotas,
// deadline-aware shedding with computed Retry-After guidance, and a
// pluggable dispatch order.
type core struct {
	cfg Config
	ord order

	mu            sync.Mutex
	free          int
	inflight      int
	queued        int
	queuedByClass [numClasses]int
	draining      bool
	tenants       *tenantBook
	// active tracks tenants with non-empty WFQ queues.
	active map[*tenantState]bool
	// classQ holds the priority policy's per-class FIFO queues.
	classQ [numClasses][]*waiter
	// vtime is the WFQ virtual clock.
	vtime float64
	svc   svcWindow
	rng   *rand.Rand

	m                  *obs.Metrics
	gInFlight, gQueued *obs.Gauge
	cShedLegacy        *obs.Counter
}

func newCore(cfg Config, ord order) *core {
	c := &core{
		cfg:     cfg,
		ord:     ord,
		free:    cfg.Slots,
		tenants: newTenantBook(cfg),
		active:  map[*tenantState]bool{},
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		m:       cfg.Metrics,
	}
	if m := cfg.Metrics; m != nil {
		c.gInFlight = m.Gauge("server_inflight")
		c.gQueued = m.Gauge("server_queue_depth")
		c.cShedLegacy = m.Counter("server_shed_total")
		m.Help("sched_queue_depth", "Queued admission waiters by tenant and priority class.")
		m.Help("sched_sheds_total", "Requests shed by the admission scheduler, by reason.")
	}
	return c
}

func (c *core) Name() string { return c.ord.name() }

func (c *core) Acquire(ctx context.Context, req *Request) error {
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteSchedEnqueue)
	}
	t := c.tenants.get(req.Tenant)
	req.tenant = t
	req.Tenant = t.name // effective identity: unknown tenants pool as "other"
	req.Class = t.classFor(req.Class)
	now := time.Now()

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return ErrDraining
	}
	if ok, wait := t.takeToken(now); !ok {
		err := c.shedLocked(t, req.Class, ReasonQuota, wait)
		c.mu.Unlock()
		return err
	}
	// Deadline-aware queue control: a request whose remaining budget can
	// no longer cover the observed p50 service time would only burn a
	// queue place and a slot to seal a near-empty partial at its deadline;
	// shed it now with live Retry-After guidance instead.
	if p50 := c.svc.p50(); p50 > 0 && !req.Deadline.IsZero() && now.Add(p50).After(req.Deadline) {
		err := c.shedLocked(t, req.Class, ReasonDeadline, c.estimateRetryLocked(p50))
		c.mu.Unlock()
		return err
	}
	if c.free > 0 && c.queued == 0 {
		c.free--
		c.inflight++
		t.noteAdmit()
		req.granted = now
		c.ord.chargeImmediate(c, t)
		c.setInFlightLocked()
		c.mu.Unlock()
		return c.fireDispatch(req)
	}
	// Bounded queueing: global depth, then the tenant's own cap, then the
	// priority policy's per-class cap.
	switch {
	case c.queued >= c.cfg.QueueDepth:
		err := c.shedLocked(t, req.Class, ReasonQueueFull, 0)
		c.mu.Unlock()
		return err
	case int(t.queuedN.Load()) >= c.tenantCap(t):
		err := c.shedLocked(t, req.Class, ReasonTenantQueueFull, 0)
		c.mu.Unlock()
		return err
	case c.queuedByClass[req.Class] >= c.classCap(req.Class):
		err := c.shedLocked(t, req.Class, ReasonClassQueueFull, 0)
		c.mu.Unlock()
		return err
	}
	w := &waiter{req: req, t: t, class: req.Class, enq: now, ready: make(chan error, 1)}
	c.ord.push(c, w)
	c.queued++
	c.queuedByClass[w.class]++
	t.queuedN.Add(1)
	t.queuedClass[w.class]++
	c.setQueueGaugesLocked(t, w.class)
	c.mu.Unlock()

	select {
	case err := <-w.ready:
		req.Queued = true
		req.Wait = time.Since(w.enq)
		if err != nil {
			return err
		}
		return c.fireDispatch(req)
	case <-ctx.Done():
		c.mu.Lock()
		if w.state == stQueued {
			w.state = stCancelled
			c.ord.remove(c, w)
			c.dequeueAccountingLocked(w)
			c.mu.Unlock()
			req.Queued = true
			req.Wait = time.Since(w.enq)
			return ctx.Err()
		}
		c.mu.Unlock()
		// Raced with dispatch or drain: consume the decision; a grant we
		// can no longer use goes straight back to the pool.
		err := <-w.ready
		req.Queued = true
		req.Wait = time.Since(w.enq)
		if err == nil {
			c.Release(req)
		}
		return ctx.Err()
	}
}

// fireDispatch marks the grant complete and fires the sched.dispatch
// fault site on the admitted goroutine. An injected panic releases the
// slot before unwinding so injected faults can never leak pool capacity.
func (c *core) fireDispatch(req *Request) error {
	if faultinject.Armed() {
		defer func() {
			if r := recover(); r != nil {
				c.Release(req)
				panic(r)
			}
		}()
		faultinject.Hit(faultinject.SiteSchedDispatch)
	}
	return nil
}

func (c *core) Release(req *Request) {
	t := req.tenant
	c.mu.Lock()
	c.free++
	c.inflight--
	t.noteDone()
	if !req.granted.IsZero() {
		c.svc.observe(time.Since(req.granted))
	}
	c.setInFlightLocked()
	c.dispatchLocked()
	c.mu.Unlock()
}

// dispatchLocked grants free slots to queued waiters in policy order,
// shedding queued requests whose deadline became unmeetable while they
// waited (their slot goes to the next waiter instead of being wasted).
func (c *core) dispatchLocked() {
	for c.free > 0 {
		w := c.ord.next(c)
		if w == nil {
			return
		}
		c.dequeueAccountingLocked(w)
		if p50 := c.svc.p50(); p50 > 0 && !w.req.Deadline.IsZero() && time.Now().Add(p50).After(w.req.Deadline) {
			w.state = stShed
			w.t.noteShed()
			c.countShedLocked(ReasonDeadline)
			w.ready <- &ShedError{Reason: ReasonDeadline, RetryAfter: c.estimateRetryLocked(p50)}
			continue
		}
		c.free--
		c.inflight++
		w.t.noteAdmit()
		w.req.granted = time.Now()
		w.state = stGranted
		c.setInFlightLocked()
		w.ready <- nil
	}
}

func (c *core) BeginDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	for {
		w := c.ord.next(c)
		if w == nil {
			return
		}
		c.dequeueAccountingLocked(w)
		w.state = stShed
		w.ready <- ErrDraining
	}
}

func (c *core) Snapshot() Snapshot {
	c.mu.Lock()
	snap := Snapshot{
		Policy:   c.ord.name(),
		InFlight: c.inflight,
		Queued:   c.queued,
		P50MS:    float64(c.svc.p50().Microseconds()) / 1000,
	}
	c.mu.Unlock()
	snap.Tenants = c.tenants.snapshot()
	return snap
}

// JobGate is the batch pool's priority-aware dispatch hook: before each
// pool job runs on behalf of req, the gate briefly yields while a
// strictly more urgent class has queued admission waiters, so a bulk
// batch holding a slot stops monopolizing CPU the moment interactive
// work arrives. The yield is bounded (a few milliseconds per job) and
// never blocks on those waiters' progress, so it cannot deadlock the
// slot-holder against the very queue it is yielding to.
func (c *core) JobGate(req *Request) func(context.Context) error {
	class := req.Class
	return func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			c.mu.Lock()
			yield := c.ord.higherQueued(c, class)
			c.mu.Unlock()
			if !yield {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(500 * time.Microsecond):
			}
		}
		return nil
	}
}

// shedLocked accounts a refusal and builds its typed error. wait, when
// positive, is the reason-specific Retry-After (quota refill, deadline
// guidance); zero falls back to the live queue estimate.
func (c *core) shedLocked(t *tenantState, class Class, reason string, wait time.Duration) *ShedError {
	t.noteShed()
	c.countShedLocked(reason)
	if wait <= 0 {
		wait = c.estimateRetryLocked(c.svc.p50())
	}
	if wait > c.cfg.MaxRetryAfter {
		wait = c.cfg.MaxRetryAfter
	}
	return &ShedError{Reason: reason, RetryAfter: wait}
}

// estimateRetryLocked computes shed guidance from live queue depth and
// observed service time, plus jitter so a synchronized thundering herd of
// shed clients does not return in lockstep.
func (c *core) estimateRetryLocked(p50 time.Duration) time.Duration {
	if p50 <= 0 {
		p50 = time.Second
	}
	est := time.Duration(float64(p50) * (float64(c.queued)/float64(c.cfg.Slots) + 1))
	est += time.Duration(c.rng.Int63n(int64(p50)/2 + 1))
	if est > c.cfg.MaxRetryAfter {
		est = c.cfg.MaxRetryAfter
	}
	return est
}

func (c *core) tenantCap(t *tenantState) int {
	if t.cfg.QueueCap > 0 {
		return t.cfg.QueueCap
	}
	return c.cfg.QueueDepth
}

func (c *core) classCap(class Class) int {
	if cap, ok := c.cfg.ClassCaps[class]; ok && cap > 0 {
		return cap
	}
	return c.cfg.QueueDepth
}

// dequeueAccountingLocked unwinds a waiter's queue-side counters and
// gauges (it left the queue: granted, shed, drained, or cancelled).
func (c *core) dequeueAccountingLocked(w *waiter) {
	c.queued--
	c.queuedByClass[w.class]--
	w.t.queuedN.Add(-1)
	w.t.queuedClass[w.class]--
	c.setQueueGaugesLocked(w.t, w.class)
}

func (c *core) countShedLocked(reason string) {
	if c.m == nil {
		return
	}
	c.cShedLegacy.Inc()
	c.m.Counter(fmt.Sprintf("sched_sheds_total{reason=%q}", reason)).Inc()
}

func (c *core) setInFlightLocked() {
	if c.gInFlight != nil {
		c.gInFlight.Set(float64(c.inflight))
	}
}

func (c *core) setQueueGaugesLocked(t *tenantState, class Class) {
	if c.m == nil {
		return
	}
	c.gQueued.Set(float64(c.queued))
	if t.gQueued[class] == nil {
		t.gQueued[class] = c.m.Gauge(fmt.Sprintf("sched_queue_depth{tenant=%q,class=%q}", t.name, class.String()))
	}
	// queuedByClass is global; the per-tenant series wants this tenant's
	// share, tracked on the tenant under the same mutex.
	t.gQueued[class].Set(float64(t.queuedClass[class]))
}
