// Package sched is the server's pluggable admission layer: a Scheduler
// decides which waiting request gets the next execution slot, so
// multi-tenant fairness and priority become configurable policy over the
// same fixed soundness machinery (guard deadlines, sealed partials, typed
// sheds) the rest of the pipeline already proves. Three policies ship:
//
//   - fifo: byte-compatible with the pre-scheduler admission path — a slot
//     semaphore plus a bounded global queue, first come first served;
//   - wfq: weighted-fair queueing across tenants — each backlogged tenant
//     receives execution slots in proportion to its configured weight, so
//     one bulk-batch tenant can no longer starve interactive users;
//   - priority: strict priority classes (interactive > batch > background)
//     with per-class queue caps, FIFO within a class.
//
// The wfq and priority policies add per-tenant token-bucket quotas and
// deadline-aware queue control: a request whose remaining deadline can no
// longer cover the observed p50 service time is shed immediately with
// computed Retry-After guidance instead of timing out in queue and wasting
// a slot. Every shed is a typed *ShedError — the server renders it as a
// 429 with Retry-After, never a wrong or silently dropped answer.
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"determinacy/internal/obs"
)

// Policy names accepted by New and ParsePolicy.
const (
	PolicyFIFO     = "fifo"
	PolicyWFQ      = "wfq"
	PolicyPriority = "priority"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (string, error) {
	switch s {
	case "", PolicyFIFO:
		return PolicyFIFO, nil
	case PolicyWFQ, PolicyPriority:
		return s, nil
	default:
		return "", fmt.Errorf("sched: unknown policy %q (want fifo, wfq, or priority)", s)
	}
}

// Class is a strict priority level. Lower values dispatch first.
type Class int

const (
	Interactive Class = iota
	Batch
	Background
	numClasses
)

func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass resolves a class name; ok is false for anything else.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	case "background":
		return Background, true
	default:
		return 0, false
	}
}

// TenantConfig is one tenant's admission policy. The JSON shape is the
// -tenants flag format.
type TenantConfig struct {
	// Weight is the tenant's WFQ share (<= 0 means 1). A weight-4 tenant
	// receives 4x the slots of a weight-1 tenant while both are backlogged.
	Weight float64 `json:"weight,omitempty"`
	// Class names the tenant's default priority class ("" = per-route
	// default: interactive for /v1/analyze, batch for /v1/batch).
	Class string `json:"class,omitempty"`
	// Rate is the token-bucket refill in requests/second (0 = no quota);
	// Burst is the bucket capacity (0 = max(Rate, 1)).
	Rate  float64 `json:"rate,omitempty"`
	Burst float64 `json:"burst,omitempty"`
	// QueueCap bounds this tenant's queued requests (0 = the scheduler's
	// global queue depth).
	QueueCap int `json:"queue_cap,omitempty"`
}

// Table maps tenant IDs to their configs. The "*" entry, when present,
// configures unknown tenants; otherwise they get the zero TenantConfig
// (weight 1, route-default class, no quota).
type Table struct {
	Tenants map[string]TenantConfig
	Default TenantConfig
}

// ParseTable decodes the -tenants JSON object:
//
//	{"pro": {"weight": 4, "class": "interactive", "rate": 50, "burst": 100},
//	 "bulk": {"weight": 1, "class": "batch", "queue_cap": 8},
//	 "*": {"weight": 1}}
func ParseTable(data []byte) (Table, error) {
	var raw map[string]TenantConfig
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return Table{}, fmt.Errorf("sched: tenants config: %w", err)
	}
	t := Table{Tenants: map[string]TenantConfig{}}
	for name, cfg := range raw {
		if cfg.Weight < 0 || cfg.Rate < 0 || cfg.Burst < 0 || cfg.QueueCap < 0 {
			return Table{}, fmt.Errorf("sched: tenant %q: weight, rate, burst and queue_cap must be non-negative", name)
		}
		if cfg.Class != "" {
			if _, ok := ParseClass(cfg.Class); !ok {
				return Table{}, fmt.Errorf("sched: tenant %q: unknown class %q (want interactive, batch, or background)", name, cfg.Class)
			}
		}
		if name == "*" {
			t.Default = cfg
			continue
		}
		t.Tenants[name] = cfg
	}
	return t, nil
}

// ParseTableFlag resolves the -tenants flag value: inline JSON, or
// @path to read the JSON from a file.
func ParseTableFlag(v string) (Table, error) {
	if v == "" {
		return Table{}, nil
	}
	data := []byte(v)
	if strings.HasPrefix(v, "@") {
		b, err := os.ReadFile(v[1:])
		if err != nil {
			return Table{}, fmt.Errorf("sched: tenants config: %w", err)
		}
		data = b
	}
	return ParseTable(data)
}

// config looks up a tenant, falling back to the table default.
func (t Table) config(name string) TenantConfig {
	if cfg, ok := t.Tenants[name]; ok {
		return cfg
	}
	return t.Default
}

// known reports whether the tenant is explicitly configured; unknown
// tenants share the "other" metric label so cardinality stays bounded by
// the config.
func (t Table) known(name string) bool {
	_, ok := t.Tenants[name]
	return ok
}

// Config tunes a scheduler. Slots and QueueDepth are required (>0).
type Config struct {
	// Slots bounds concurrently executing requests; QueueDepth bounds
	// requests waiting for a slot across all tenants.
	Slots      int
	QueueDepth int
	// Tenants configures per-tenant weights, classes, quotas and caps.
	Tenants Table
	// ClassCaps bounds queued requests per priority class for the priority
	// policy (0 entries default to QueueDepth).
	ClassCaps map[Class]int
	// MaxRetryAfter clamps computed Retry-After guidance (0 = 30s).
	MaxRetryAfter time.Duration
	// Metrics receives scheduler series; nil disables publication.
	Metrics *obs.Metrics
}

func (c Config) withDefaults() Config {
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	return c
}

// Request is one admission attempt. The caller fills Tenant, Class and
// Deadline; the scheduler fills the accounting fields during Acquire.
type Request struct {
	Tenant string
	Class  Class
	// Deadline is the request's effective completion deadline; the zero
	// time disables deadline-aware shedding for this request.
	Deadline time.Time

	// Queued and Wait report whether (and how long) the request waited in
	// the admission queue; valid after Acquire returns.
	Queued bool
	Wait   time.Duration

	// granted stamps slot acquisition so Release can observe service time.
	granted time.Time
	// tenant is the scheduler-internal tenant state, set by Acquire.
	tenant *tenantState
}

// Shed reasons carried by ShedError and the sched_sheds_total{reason}
// counter.
const (
	ReasonQueueFull       = "queue-full"
	ReasonTenantQueueFull = "tenant-queue-full"
	ReasonClassQueueFull  = "class-queue-full"
	ReasonQuota           = "quota"
	ReasonDeadline        = "deadline-unmeetable"
)

// ShedError is a typed admission refusal: the request was not (and will
// not be) executed, and the client should retry after RetryAfter.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("sched: request shed (%s); retry after %v", e.Reason, e.RetryAfter)
}

// ScaleRetryAfter stretches the refusal's guidance by factor, clamped to
// max (0 = no clamp). The server applies it when the cluster is degraded:
// with owning peers down this node absorbs their share of the keyspace,
// so shed clients should back off proportionally instead of hammering the
// survivors. factor <= 1 is a no-op.
func (e *ShedError) ScaleRetryAfter(factor float64, max time.Duration) {
	if factor <= 1 || e.RetryAfter <= 0 {
		return
	}
	d := time.Duration(float64(e.RetryAfter) * factor)
	if max > 0 && d > max {
		d = max
	}
	e.RetryAfter = d
}

// ErrDraining refuses admission while the server drains.
var ErrDraining = errors.New("sched: draining, not accepting new work")

// Scheduler admits requests to execution slots. Implementations are safe
// for concurrent use. Every successful Acquire must be paired with exactly
// one Release.
type Scheduler interface {
	// Name reports the policy name (fifo, wfq, priority).
	Name() string
	// Acquire blocks until req is granted a slot or refused: a *ShedError
	// (bounded queue, quota, or unmeetable deadline), ErrDraining, or the
	// context's error when the caller went away while queued.
	Acquire(ctx context.Context, req *Request) error
	// Release returns req's slot and dispatches the next waiter.
	Release(req *Request)
	// BeginDrain refuses new admissions and fails every queued waiter with
	// ErrDraining. Idempotent.
	BeginDrain()
	// Snapshot reports live per-tenant queue state for /debug/statusz.
	Snapshot() Snapshot
}

// DispatchGater is implemented by schedulers that pace work dispatched on
// behalf of an admitted request (the batch pool's priority-aware hook).
// The returned gate runs before each unit of work; it must be bounded and
// may refuse with the context's error.
type DispatchGater interface {
	JobGate(req *Request) func(context.Context) error
}

// Snapshot is a point-in-time scheduler view, the /debug/statusz
// "scheduler" payload.
type Snapshot struct {
	Policy   string           `json:"policy"`
	InFlight int              `json:"inflight"`
	Queued   int              `json:"queued"`
	P50MS    float64          `json:"p50_service_ms,omitempty"`
	Tenants  []TenantSnapshot `json:"tenants,omitempty"`
}

// TenantSnapshot is one tenant's live admission state.
type TenantSnapshot struct {
	Tenant   string  `json:"tenant"`
	Class    string  `json:"class,omitempty"`
	Weight   float64 `json:"weight"`
	Queued   int     `json:"queued"`
	InFlight int     `json:"inflight"`
	Admitted int64   `json:"admitted"`
	Shed     int64   `json:"shed"`
}

// New builds the named policy. Policy names come from ParsePolicy; an
// unknown name is an error so CLI validation can reject it before a
// listener binds.
func New(policy string, cfg Config) (Scheduler, error) {
	p, err := ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Slots <= 0 || cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("sched: Slots and QueueDepth must be positive (got %d, %d)", cfg.Slots, cfg.QueueDepth)
	}
	switch p {
	case PolicyFIFO:
		return newFIFO(cfg), nil
	case PolicyWFQ:
		return newCore(cfg, &wfqOrder{}), nil
	default:
		return newCore(cfg, &priorityOrder{}), nil
	}
}

// sortTenantSnapshots orders snapshots by name for stable statusz output.
func sortTenantSnapshots(ts []TenantSnapshot) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Tenant < ts[j].Tenant })
}
