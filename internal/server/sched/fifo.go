package sched

import (
	"context"
	"sync/atomic"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

// fifo is the default policy: a slot semaphore plus one bounded global
// queue, first come first served. It is a byte-compatible port of the
// pre-scheduler admission path — same metric series (server_inflight,
// server_queue_depth, server_shed_total), same shed condition (queue
// occupancy beyond QueueDepth), same drain semantics (queued waiters fail
// immediately when drain begins) — so the existing fault campaign, drain
// suite, and Prometheus conformance tests hold unmodified over it.
type fifo struct {
	cfg   Config
	slots chan struct{}

	queued   atomic.Int64
	draining atomic.Bool
	drainCh  chan struct{}

	tenants *tenantBook

	gInFlight, gQueued *obs.Gauge
	cShed              *obs.Counter
}

func newFIFO(cfg Config) *fifo {
	f := &fifo{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Slots),
		drainCh: make(chan struct{}),
		tenants: newTenantBook(cfg),
	}
	if m := cfg.Metrics; m != nil {
		f.gInFlight = m.Gauge("server_inflight")
		f.gQueued = m.Gauge("server_queue_depth")
		f.cShed = m.Counter("server_shed_total")
	}
	return f
}

func (f *fifo) Name() string { return PolicyFIFO }

func (f *fifo) Acquire(ctx context.Context, req *Request) error {
	if f.draining.Load() {
		return ErrDraining
	}
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteSchedEnqueue)
	}
	req.tenant = f.tenants.get(req.Tenant)
	req.Tenant = req.tenant.name
	select {
	case f.slots <- struct{}{}:
		f.setInFlight()
		return f.granted(req)
	default:
	}
	q := f.queued.Add(1)
	f.setQueued(q)
	if int(q) > f.cfg.QueueDepth {
		f.setQueued(f.queued.Add(-1))
		if f.cShed != nil {
			f.cShed.Inc()
		}
		req.tenant.noteShed()
		return &ShedError{Reason: ReasonQueueFull}
	}
	t0 := time.Now()
	defer func() {
		f.setQueued(f.queued.Add(-1))
		req.Queued = true
		req.Wait = time.Since(t0)
	}()
	select {
	case f.slots <- struct{}{}:
		f.setInFlight()
		return f.granted(req)
	case <-f.drainCh:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
}

// granted finalizes a slot grant: accounting, then the sched.dispatch
// fault site. An injected dispatch panic releases the slot before
// unwinding so the pool never leaks capacity.
func (f *fifo) granted(req *Request) error {
	req.granted = time.Now()
	req.tenant.noteAdmit()
	if faultinject.Armed() {
		defer func() {
			if r := recover(); r != nil {
				f.Release(req)
				panic(r)
			}
		}()
		faultinject.Hit(faultinject.SiteSchedDispatch)
	}
	return nil
}

func (f *fifo) Release(req *Request) {
	req.tenant.noteDone()
	<-f.slots
	f.setInFlight()
}

func (f *fifo) BeginDrain() {
	if f.draining.CompareAndSwap(false, true) {
		close(f.drainCh)
	}
}

func (f *fifo) Snapshot() Snapshot {
	return Snapshot{
		Policy:   PolicyFIFO,
		InFlight: len(f.slots),
		Queued:   int(f.queued.Load()),
		Tenants:  f.tenants.snapshot(),
	}
}

func (f *fifo) setInFlight() {
	if f.gInFlight != nil {
		f.gInFlight.Set(float64(len(f.slots)))
	}
}

func (f *fifo) setQueued(q int64) {
	if f.gQueued != nil {
		f.gQueued.Set(float64(q))
	}
}
