package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"determinacy/internal/obs"
)

// otherTenant is the shared bucket for tenants absent from the config
// table: they pool one state (and one metric label), so adversarial or
// misconfigured tenant IDs cannot grow scheduler memory or metric
// cardinality past the configured set plus one.
const otherTenant = "other"

// tenantState is one tenant's live admission state. The counters are
// atomic so the lock-free fifo policy shares the type with the
// mutex-guarded queue core; the queueing fields (queue, vfinish, tokens)
// are owned by the core and guarded by its mutex.
type tenantState struct {
	name     string
	cfg      TenantConfig
	weight   float64
	class    Class // configured default class; classSet says whether it applies
	classSet bool

	queuedN   atomic.Int64
	inflightN atomic.Int64
	admitted  atomic.Int64
	shed      atomic.Int64

	// Queue core state, guarded by core.mu.
	queue       []*waiter
	queuedClass [numClasses]int
	vfinish     float64
	tokens      float64
	lastRefill  time.Time

	// gQueued caches the per-class sched_queue_depth gauge handles.
	gQueued [numClasses]*obs.Gauge
}

func (t *tenantState) noteAdmit() { t.inflightN.Add(1); t.admitted.Add(1) }
func (t *tenantState) noteDone()  { t.inflightN.Add(-1) }
func (t *tenantState) noteShed()  { t.shed.Add(1) }

// classFor resolves the request's priority class: the tenant's configured
// class wins, else the caller's route default carried on the request.
func (t *tenantState) classFor(req Class) Class {
	if t.classSet {
		return t.class
	}
	return req
}

func newTenantState(name string, cfg TenantConfig) *tenantState {
	t := &tenantState{name: name, cfg: cfg, weight: cfg.Weight, lastRefill: time.Now()}
	if t.weight <= 0 {
		t.weight = 1
	}
	if cfg.Class != "" {
		if c, ok := ParseClass(cfg.Class); ok {
			t.class, t.classSet = c, true
		}
	}
	if cfg.Rate > 0 {
		t.tokens = cfg.burst()
	}
	return t
}

// burst resolves the token-bucket capacity: Burst, defaulting to
// max(Rate, 1) so a configured rate always admits at least one request.
func (c TenantConfig) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	if c.Rate > 1 {
		return c.Rate
	}
	return 1
}

// takeToken refills by elapsed wall time and consumes one token; callers
// hold the owning scheduler's mutex. ok=false means the quota is
// exhausted and wait says how long until a token accrues.
func (t *tenantState) takeToken(now time.Time) (ok bool, wait time.Duration) {
	if t.cfg.Rate <= 0 {
		return true, 0
	}
	elapsed := now.Sub(t.lastRefill).Seconds()
	if elapsed > 0 {
		t.tokens += elapsed * t.cfg.Rate
		if b := t.cfg.burst(); t.tokens > b {
			t.tokens = b
		}
		t.lastRefill = now
	}
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	return false, time.Duration((1 - t.tokens) / t.cfg.Rate * float64(time.Second))
}

// tenantBook lazily materializes tenantState per configured tenant (plus
// the shared "other" state) for all policies.
type tenantBook struct {
	mu  sync.Mutex
	cfg Config
	m   map[string]*tenantState
}

func newTenantBook(cfg Config) *tenantBook {
	return &tenantBook{cfg: cfg, m: map[string]*tenantState{}}
}

// get resolves a tenant ID to its state: configured tenants get their own,
// everyone else shares "other" under the table's default config.
func (b *tenantBook) get(name string) *tenantState {
	if !b.cfg.Tenants.known(name) {
		name = otherTenant
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.m[name]
	if !ok {
		cfg := b.cfg.Tenants.Default
		if name != otherTenant {
			cfg = b.cfg.Tenants.config(name)
		}
		t = newTenantState(name, cfg)
		b.m[name] = t
	}
	return t
}

func (b *tenantBook) snapshot() []TenantSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(b.m))
	for _, t := range b.m {
		s := TenantSnapshot{
			Tenant:   t.name,
			Weight:   t.weight,
			Queued:   int(t.queuedN.Load()),
			InFlight: int(t.inflightN.Load()),
			Admitted: t.admitted.Load(),
			Shed:     t.shed.Load(),
		}
		if t.classSet {
			s.Class = t.class.String()
		}
		out = append(out, s)
	}
	sortTenantSnapshots(out)
	return out
}

// svcWindow is a bounded ring of observed service times; p50 drives
// deadline-aware shedding and Retry-After guidance.
type svcWindow struct {
	buf  [64]time.Duration
	n    int // filled entries
	next int
}

func (w *svcWindow) observe(d time.Duration) {
	if d < 0 {
		return
	}
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// p50 reports the window's median (0 when empty). Callers hold the
// scheduler mutex; the copy-and-select over <=64 entries is negligible
// next to an analysis run.
func (w *svcWindow) p50() time.Duration {
	if w.n == 0 {
		return 0
	}
	tmp := make([]time.Duration, w.n)
	copy(tmp, w.buf[:w.n])
	// Insertion sort: n <= 64.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[len(tmp)/2]
}
