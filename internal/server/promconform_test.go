package server

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"determinacy/internal/obs"
)

// promSample is one parsed exposition-format sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromLine splits `name{l="v",...} value`; it fails the test on any
// syntax the text exposition format does not allow.
func parsePromLine(t *testing.T, line string, n int) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: n}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		rest = rest[i+1:]
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", n, line)
		}
		labels, tail := rest[:end], rest[end+1:]
		for labels != "" {
			eq := strings.IndexByte(labels, '=')
			if eq < 0 || len(labels) < eq+2 || labels[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", n, line)
			}
			lname := labels[:eq]
			if !promLabelName.MatchString(lname) {
				t.Fatalf("line %d: bad label name %q", n, lname)
			}
			// Scan the quoted value, honoring \" \\ \n escapes.
			val := labels[eq+2:]
			out := strings.Builder{}
			i := 0
			closed := false
			for i < len(val) {
				c := val[i]
				if c == '\\' {
					if i+1 >= len(val) {
						t.Fatalf("line %d: dangling escape in %q", n, line)
					}
					esc := val[i+1]
					if esc != '"' && esc != '\\' && esc != 'n' {
						t.Fatalf("line %d: invalid escape \\%c in %q", n, esc, line)
					}
					if esc == 'n' {
						out.WriteByte('\n')
					} else {
						out.WriteByte(esc)
					}
					i += 2
					continue
				}
				if c == '"' {
					closed = true
					i++
					break
				}
				if c == '\n' {
					t.Fatalf("line %d: raw newline in label value", n)
				}
				out.WriteByte(c)
				i++
			}
			if !closed {
				t.Fatalf("line %d: unterminated label value in %q", n, line)
			}
			if _, dup := s.labels[lname]; dup {
				t.Fatalf("line %d: duplicate label %q", n, lname)
			}
			s.labels[lname] = out.String()
			labels = val[i:]
			labels = strings.TrimPrefix(labels, ",")
		}
		rest = tail
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value: %q", n, line)
		}
		s.name = rest[:sp]
		rest = rest[sp:]
	}
	if !promMetricName.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", n, s.name)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		t.Fatalf("line %d: want exactly one value, got %q", n, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", n, fields[0], err)
	}
	s.value = v
	return s
}

// histFamily strips the _bucket/_sum/_count suffix, returning the base
// histogram name and which series the sample belongs to.
func histSeries(name string) (base, kind string) {
	switch {
	case strings.HasSuffix(name, "_bucket"):
		return strings.TrimSuffix(name, "_bucket"), "bucket"
	case strings.HasSuffix(name, "_sum"):
		return strings.TrimSuffix(name, "_sum"), "sum"
	case strings.HasSuffix(name, "_count"):
		return strings.TrimSuffix(name, "_count"), "count"
	}
	return name, ""
}

// labelKey canonicalizes a label set minus `le` for grouping bucket series.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// TestMetricsPromConformance drives traffic over both routes (so the
// route-labeled histograms and phase histograms are populated) and then
// strictly validates the full /metrics page: comment ordering, name and
// label syntax, TYPE uniqueness, and histogram invariants (cumulative
// monotone buckets, sorted le, +Inf == _count, matching _sum/_count label
// sets).
func TestMetricsPromConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	decodeAnalyze(t, postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc}))
	postJSON(t, ts.URL+"/v1/batch", BatchRequest{Programs: []BatchProgram{{Source: quickSrc}, {Source: "var nope = ;"}}}).Body.Close()
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: "syntax error ("}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	page := string(raw)

	typeOf := map[string]string{} // family -> declared type
	helpSeen := map[string]bool{} // family -> HELP seen
	samplesAfterType := map[string]int{}
	var samples []promSample
	curFamily := ""
	for i, line := range strings.Split(page, "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("line %d: malformed comment %q", n, line)
			}
			fam := fields[2]
			if !promMetricName.MatchString(fam) {
				t.Fatalf("line %d: bad family name %q", n, fam)
			}
			if fields[1] == "HELP" {
				if helpSeen[fam] {
					t.Fatalf("line %d: duplicate HELP for %s", n, fam)
				}
				if _, ok := typeOf[fam]; ok {
					t.Fatalf("line %d: HELP for %s after its TYPE", n, fam)
				}
				helpSeen[fam] = true
				continue
			}
			if _, dup := typeOf[fam]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", n, fam)
			}
			if samplesAfterType[fam] > 0 {
				t.Fatalf("line %d: TYPE for %s after its samples", n, fam)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", n, fields[3])
			}
			typeOf[fam] = fields[3]
			curFamily = fam
			continue
		}
		s := parsePromLine(t, line, n)
		fam, _ := histSeries(s.name)
		if typeOf[fam] == "" && typeOf[s.name] == "" {
			t.Fatalf("line %d: sample %s has no TYPE declaration", n, s.name)
		}
		if typeOf[fam] != "histogram" {
			fam = s.name
		}
		if fam != curFamily {
			t.Fatalf("line %d: sample %s interleaves into family %s", n, s.name, curFamily)
		}
		samplesAfterType[fam]++
		samples = append(samples, s)
	}

	// Histogram invariants per (family, label set minus le).
	type histKey struct{ fam, labels string }
	buckets := map[histKey][]promSample{}
	sums := map[histKey]float64{}
	counts := map[histKey]float64{}
	for _, s := range samples {
		fam, kind := histSeries(s.name)
		if typeOf[fam] != "histogram" {
			continue
		}
		k := histKey{fam, labelKey(s.labels)}
		switch kind {
		case "bucket":
			if _, ok := s.labels["le"]; !ok {
				t.Fatalf("line %d: %s_bucket without le", s.line, fam)
			}
			buckets[k] = append(buckets[k], s)
		case "sum":
			sums[k] = s.value
		case "count":
			counts[k] = s.value
		default:
			t.Fatalf("line %d: bare sample %s in histogram family %s", s.line, s.name, fam)
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series found on /metrics")
	}
	// The route-labeled request histograms must both be present.
	for _, route := range []string{routeAnalyze, routeBatch} {
		k := histKey{"server_request_seconds", labelKey(map[string]string{"route": route})}
		if len(buckets[k]) == 0 {
			t.Errorf("no server_request_seconds buckets for route %s", route)
		}
	}
	for k, bs := range buckets {
		if _, ok := sums[k]; !ok {
			t.Fatalf("%s{%s}: buckets without _sum", k.fam, k.labels)
		}
		cnt, ok := counts[k]
		if !ok {
			t.Fatalf("%s{%s}: buckets without _count", k.fam, k.labels)
		}
		les := make([]float64, len(bs))
		for i, b := range bs {
			if b.labels["le"] == "+Inf" {
				les[i] = float64(1 << 62)
			} else {
				v, err := strconv.ParseFloat(b.labels["le"], 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q", b.line, b.labels["le"])
				}
				les[i] = v
			}
		}
		if !sort.Float64sAreSorted(les) {
			t.Fatalf("%s{%s}: le bounds not sorted", k.fam, k.labels)
		}
		if bs[len(bs)-1].labels["le"] != "+Inf" {
			t.Fatalf("%s{%s}: missing +Inf bucket", k.fam, k.labels)
		}
		prev := -1.0
		for _, b := range bs {
			if b.value < prev {
				t.Fatalf("line %d: %s bucket counts not cumulative (%v < %v)", b.line, k.fam, b.value, prev)
			}
			prev = b.value
		}
		if inf := bs[len(bs)-1].value; inf != cnt {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", k.fam, k.labels, inf, cnt)
		}
	}

	// The labeled histograms must never render the pre-fix invalid shape
	// name{label}_bucket{le=...}.
	if strings.Contains(page, `}_bucket`) || strings.Contains(page, `}_sum`) || strings.Contains(page, `}_count`) {
		t.Fatal("labeled histogram rendered with label set before the series suffix")
	}
}

// TestPromLabelValueEscaping pins WriteProm's label-value normalization:
// names are registered with %q, whose Go quoting emits \t/\xNN/\uNNNN
// escapes the exposition format forbids. The page must use only the
// format's three escapes (\\ \" \n), every hostile value must survive a
// strict parse round-trip intact, and well-formed names must render
// byte-identically to their registered form.
func TestPromLabelValueEscaping(t *testing.T) {
	hostile := []string{
		`back\slash`,
		`qu"ote`,
		"new\nline",
		"tab\tsep",
		"\x01ctl",
		"ünïcøde",
		"rtl‮override",
		`all three \ " ` + "\n" + ` at once`,
	}
	m := obs.NewMetrics()
	for i, v := range hostile {
		m.Counter(fmt.Sprintf("esc_test_total{v=%q}", v)).Add(int64(i + 1))
		m.Gauge(fmt.Sprintf("esc_gauge{v=%q}", v)).Set(float64(i))
		m.Histogram(fmt.Sprintf("esc_hist_seconds{v=%q}", v), 1, 2).Observe(float64(i))
	}
	var buf strings.Builder
	if err := m.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}

	seen := map[string]bool{}
	for i, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s := parsePromLine(t, line, i+1) // fails the test on any illegal escape
		if s.name == "esc_test_total" {
			seen[s.labels["v"]] = true
		}
	}
	for _, v := range hostile {
		if !seen[v] {
			t.Errorf("hostile value %q did not survive the escape round-trip (got %v)", v, seen)
		}
	}

	// Already-well-formed names stay byte-identical.
	m2 := obs.NewMetrics()
	name := `server_requests_total{route="/v1/analyze",kind="a-b_c.d",msg="say \"hi\" twice"}`
	m2.Counter(name).Inc()
	var buf2 strings.Builder
	if err := m2.WriteProm(&buf2); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	want := "# TYPE server_requests_total counter\n" + name + " 1\n"
	if buf2.String() != want {
		t.Errorf("well-formed name changed:\ngot:  %q\nwant: %q", buf2.String(), want)
	}
}
