package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// streamLines POSTs an analyze request with ?stream=<mode> and returns the
// decoded JSON records in arrival order (SSE framing is stripped).
func streamLines(t *testing.T, url string, body any) []map[string]any {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []map[string]any
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		line = strings.TrimPrefix(line, "data: ")
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan stream: %v", err)
	}
	return out
}

func TestStreamAnalyzeEventsBeforeResult(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	recs := streamLines(t, ts.URL+"/v1/analyze?stream=1", AnalyzeRequest{Source: slowSrc})
	if len(recs) < 2 {
		t.Fatalf("stream returned %d records, want events + result", len(recs))
	}
	// Every record but the last is an event; the last is the result.
	events := 0
	for _, rec := range recs[:len(recs)-1] {
		if rec["type"] != "event" {
			t.Fatalf("mid-stream record of type %v: %v", rec["type"], rec)
		}
		events++
	}
	if events == 0 {
		t.Fatal("no trace events before the sealed result")
	}
	last := recs[len(recs)-1]
	if last["type"] != "result" || last["result"] == nil || last["error"] != nil {
		t.Fatalf("terminal record: %v", last)
	}
	res := last["result"].(map[string]any)
	if res["num_facts"] == nil || res["num_facts"].(float64) == 0 {
		t.Fatalf("streamed result has no facts: %v", res)
	}
	// Phase events arrived live: at least one phase-begin among the events.
	sawPhase := false
	for _, rec := range recs[:len(recs)-1] {
		if rec["ev"] == "phase-begin" {
			sawPhase = true
			break
		}
	}
	if !sawPhase {
		t.Fatal("no phase-begin event in the stream")
	}
}

func TestStreamSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw, _ := json.Marshal(AnalyzeRequest{Source: quickSrc})
	resp, err := http.Post(ts.URL+"/v1/analyze?stream=sse", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	dataLines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("non-SSE line %q", line)
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
			t.Fatalf("SSE data not JSON: %v", err)
		}
		dataLines++
	}
	if dataLines < 2 {
		t.Fatalf("SSE stream carried %d records, want events + result", dataLines)
	}
}

func TestStreamAnalyzeErrorTerminal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	recs := streamLines(t, ts.URL+"/v1/analyze?stream=1", AnalyzeRequest{Source: "var nope = ;"})
	last := recs[len(recs)-1]
	if last["type"] != "result" || last["result"] != nil {
		t.Fatalf("terminal record: %v", last)
	}
	errBody, ok := last["error"].(map[string]any)
	if !ok || errBody["kind"] != "parse" {
		t.Fatalf("stream error payload: %v", last["error"])
	}

	// The failure is a terminal flight-recorder outcome too.
	page := getStatusz(t, ts.URL)
	if len(page.Entries) == 0 || page.Entries[0].Outcome != "error" || page.Entries[0].ErrorKind != "parse" {
		t.Fatalf("streamed parse failure entry: %+v", page.Entries)
	}
}

func TestStreamEventCapDropsNotStalls(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceEventCap: 8})
	recs := streamLines(t, ts.URL+"/v1/analyze?stream=1", AnalyzeRequest{Source: slowSrc})
	last := recs[len(recs)-1]
	if last["type"] != "result" || last["result"] == nil {
		t.Fatalf("terminal record: %v", last)
	}
	if len(recs)-1 > 8 {
		t.Fatalf("stream wrote %d events past the cap of 8", len(recs)-1)
	}
	if last["dropped_events"] == nil || last["dropped_events"].(float64) == 0 {
		t.Fatal("capped stream did not report dropped events")
	}
}

func TestStreamNoGoroutineLeak(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		streamLines(t, ts.URL+"/v1/analyze?stream=1", AnalyzeRequest{Source: quickSrc})
	}
	if n, ok := settleGoroutines(base, 4); !ok {
		t.Fatalf("goroutines grew from %d to %d after streaming sessions", base, n)
	}
}
