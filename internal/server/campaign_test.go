// Seeded fault campaign against a live server: hundreds of requests with
// injected panics, cancellations, and deadline expiries at the HTTP
// admission layer, the request boundary, and the interpreter checkpoints.
// Run under -race this proves the service-level robustness contract: zero
// hangs, zero goroutine leaks, and every response is a clean result, a
// sound partial, or a structured error. Scale with
// SERVER_FAULT_CAMPAIGN_RUNS (CI uses 500).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

// campaignSrc mirrors the guard campaign program, tuned for request
// volume: ~20k instrumented steps (about 10 checkpoint crossings) with a
// call and an indeterminate branch every 100th iteration, so checkpoint-,
// call-, and flush-site plans with trigger counts up to 10 all fire
// mid-run — while the fact store stays small enough (calls happen in few
// distinct contexts) that a clean run plus its rendered response is cheap
// under -race, keeping a 500-request campaign inside CI time.
const campaignSrc = `
var obj = {a: 0, b: 1};
function bump(o, i) { o.a = o.a + i; return o.a; }
var r = Math.random();
var i = 0;
while (i < 1000) {
  obj.a = obj.a + i;
  if (i % 100 == 0) {
    bump(obj, i);
    if (r < 0.5) { obj.b = obj.b + 1; } else { obj.b = obj.b - 1; }
  }
  i = i + 1;
}
console.log(obj.a);
`

// mix is a splitmix64-style hash for deriving plan parameters from seeds.
func mix(a, b uint64) uint64 {
	h := a ^ (b+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func campaignRuns(t *testing.T, def int) int {
	if s := os.Getenv("SERVER_FAULT_CAMPAIGN_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SERVER_FAULT_CAMPAIGN_RUNS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 10
	}
	return def
}

// settleGoroutines waits for the goroutine count to drop back to within
// slack of base, giving finished handlers and keep-alive conns time to
// unwind.
func settleGoroutines(base, slack int) (int, bool) {
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if n = runtime.NumGoroutine(); n <= base+slack {
			return n, true
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	return n, false
}

// TestServerFaultCampaign is the ISSUE's acceptance campaign: >=500
// seeded requests against a live server with faults injected at
// server.admit, server.request, and the interpreter checkpoint sites.
func TestServerFaultCampaign(t *testing.T) {
	runs := campaignRuns(t, 500)
	// FlightEntries covers the whole campaign so the trace-accounting
	// sweep below never races eviction.
	s := New(Config{MaxTimeout: 10 * time.Second, DefaultTimeout: 10 * time.Second,
		FlightEntries: runs + 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	defer faultinject.Disarm()

	// wantOutcome[traceID] is the set of flight-recorder outcomes the
	// response's status/body admits; checked against /debug/statusz after
	// the campaign.
	wantOutcome := map[string][]string{}

	// Warm up (compile cache, conn pool) before the leak baseline.
	warm := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: campaignSrc})
	warm.Body.Close()
	client.CloseIdleConnections()
	base := runtime.NumGoroutine()

	outcomes := map[string]int{}
	count := func(k string) { outcomes[k]++ }

	for seed := uint64(0); seed < uint64(runs); seed++ {
		h := mix(seed, 0x5e12e)
		action := faultinject.Action(h % 3) // Panic, Cancel, Expire
		sites := []string{
			faultinject.SiteCoreStep, faultinject.SiteCoreCall, faultinject.SiteCoreFlush,
			faultinject.SiteServerRequest, faultinject.SiteServerAdmit, "",
		}
		site := sites[(h>>2)%6]
		after := int64(1 + (h>>5)%9)
		mode := (h >> 9) % 4 // analyze / analyze+runs / batch / unarmed
		armed := mode != 3

		func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if armed {
				faultinject.Arm(&faultinject.Plan{Site: site, After: after, Action: action, OnCancel: cancel})
			} else {
				faultinject.Disarm()
			}
			defer faultinject.Disarm()

			var reqBody any
			path := "/v1/analyze"
			switch mode {
			case 1:
				reqBody = AnalyzeRequest{Source: campaignSrc, Seed: seed, Runs: 2}
			case 2:
				path = "/v1/batch"
				reqBody = BatchRequest{Programs: []BatchProgram{
					{Name: "a.js", Source: campaignSrc, Seed: seed},
					{Name: "b.js", Source: campaignSrc, Seed: seed + 1},
					{Name: "c.js", Source: campaignSrc, Seed: seed + 2},
				}}
			default:
				reqBody = AnalyzeRequest{Source: campaignSrc, Seed: seed}
			}
			b, err := json.Marshal(reqBody)
			if err != nil {
				t.Fatalf("seed %d: marshal: %v", seed, err)
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+path, bytes.NewReader(b))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			req.Header.Set("Content-Type", "application/json")

			resp, err := client.Do(req)
			if err != nil {
				// The only tolerated transport failure is our own injected
				// cancellation of the client context.
				if armed && action == faultinject.Cancel && errors.Is(err, context.Canceled) {
					count("client-cancel")
					return
				}
				t.Fatalf("seed %d (site %q after %d action %v mode %d): transport error: %v",
					seed, site, after, action, mode, err)
			}
			defer resp.Body.Close()

			traceID := resp.Header.Get("X-Request-ID")
			if traceID == "" {
				t.Fatalf("seed %d: response without X-Request-ID", seed)
			}
			expect := func(outs ...string) { wantOutcome[traceID] = outs }

			switch {
			case resp.StatusCode == http.StatusOK && mode == 2:
				var out BatchResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatalf("seed %d: batch decode: %v", seed, err)
				}
				if len(out.Results) != 3 {
					t.Fatalf("seed %d: batch returned %d results, want 3", seed, len(out.Results))
				}
				for i, r := range out.Results {
					if (r.Result == nil) == (r.Error == nil) {
						t.Fatalf("seed %d entry %d: want exactly one of result/error: %+v", seed, i, r)
					}
					if r.Error != nil && r.Error.Kind == "" {
						t.Fatalf("seed %d entry %d: error with empty kind", seed, i)
					}
					if r.Result != nil && r.Result.NumDeterminate > r.Result.NumFacts {
						t.Fatalf("seed %d entry %d: incoherent store", seed, i)
					}
				}
				if out.Failed > 0 {
					count("batch-mixed")
					// Failed entries may include interpreter panics, which
					// quarantine the whole batch in the flight recorder.
					expect(outcomeSoundPartial, outcomeQuarantined)
				} else {
					count("clean")
					expect(outcomeOK)
				}
			case resp.StatusCode == http.StatusOK:
				var out AnalyzeResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatalf("seed %d: decode: %v", seed, err)
				}
				if out.NumDeterminate > out.NumFacts {
					t.Fatalf("seed %d: incoherent store: %d determinate of %d facts", seed, out.NumDeterminate, out.NumFacts)
				}
				if out.Partial {
					if out.DegradeReason == "" {
						t.Fatalf("seed %d: partial response without a degrade reason", seed)
					}
					count("partial-" + out.DegradeReason)
					expect(outcomeSoundPartial)
				} else {
					count("clean")
					expect(outcomeOK)
				}
			default:
				var out ErrorResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatalf("seed %d: status %d with undecodable body: %v", seed, resp.StatusCode, err)
				}
				if out.Error.Kind == "" || out.Error.Message == "" {
					t.Fatalf("seed %d: status %d with unstructured error %+v", seed, resp.StatusCode, out)
				}
				switch resp.StatusCode {
				case http.StatusBadRequest, http.StatusUnprocessableEntity,
					http.StatusTooManyRequests, http.StatusInternalServerError,
					http.StatusServiceUnavailable:
				default:
					t.Fatalf("seed %d: unexpected status %d (kind %s)", seed, resp.StatusCode, out.Error.Kind)
				}
				count("error-" + out.Error.Kind)
				expect(outcomeForKind(out.Error.Kind))
			}
		}()
	}

	t.Logf("campaign outcomes over %d runs: %v", runs, outcomes)
	for _, want := range []string{"clean", "error-panic"} {
		if outcomes[want] == 0 {
			t.Errorf("campaign never produced a %q outcome; distribution: %v", want, outcomes)
		}
	}
	if outcomes["partial-deadline"]+outcomes["partial-cancel"]+outcomes["client-cancel"] == 0 {
		t.Errorf("campaign never exercised a cancellation/deadline path; distribution: %v", outcomes)
	}

	// Trace accounting: every request that produced a response must be in
	// the flight recorder under its X-Request-ID, with the terminal outcome
	// its status/body admitted (client-cancelled transports are the only
	// requests we cannot account for, having never seen their response).
	page := getStatusz(t, ts.URL)
	byID := map[string]obs.FlightEntry{}
	for _, e := range page.Entries {
		byID[e.TraceID] = e
	}
	verified := 0
	for id, admitted := range wantOutcome {
		e, ok := byID[id]
		if !ok {
			t.Errorf("trace %s answered a request but is absent from /debug/statusz", id)
			continue
		}
		match := false
		for _, o := range admitted {
			if e.Outcome == o {
				match = true
				break
			}
		}
		if !match {
			t.Errorf("trace %s: flight outcome %q, but the response admits only %v", id, e.Outcome, admitted)
			continue
		}
		verified++
	}
	if verified == 0 {
		t.Error("campaign verified no trace IDs against the flight recorder")
	}
	t.Logf("verified %d/%d trace IDs against /debug/statusz", verified, len(wantOutcome))

	// The process must come back to its baseline goroutine count: no
	// handler, pool worker, or context watcher may leak per request.
	client.CloseIdleConnections()
	if n, ok := settleGoroutines(base, 10); !ok {
		t.Errorf("goroutine leak: %d at baseline, %d after %d faulted requests", base, n, runs)
	}
}

// TestServerDrainDuringCampaignLoad drains mid-load and checks the
// combined contract: in-flight requests answer (clean or sealed partial),
// refused ones get typed 503s, and Drain returns within its budget.
func TestServerDrainDuringCampaignLoad(t *testing.T) {
	s := New(Config{MaxInFlight: 2, QueueDepth: 2, MaxTimeout: 5 * time.Minute, DefaultTimeout: 5 * time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	long := `
var i = 0; var r = Math.random(); var a = 0;
while (i < 50000000) { if (r < 0.5) { a = a + 1; } i = i + 1; }
console.log(a);
`
	type outcome struct {
		status  int
		partial bool
	}
	results := make(chan outcome, 6)
	for k := 0; k < 6; k++ {
		go func(k int) {
			resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: long, Seed: uint64(k)})
			var o outcome
			o.status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				o.partial = decodeAnalyze(t, resp).Partial
			} else {
				resp.Body.Close()
			}
			results <- o
		}(k)
	}
	waitInFlight(t, s, 2)

	t0 := time.Now()
	clean := s.Drain(100 * time.Millisecond)
	if clean {
		t.Error("Drain reported clean for 50M-iteration runs in 100ms")
	}
	if el := time.Since(t0); el > 5*time.Second {
		t.Errorf("Drain took %v past a 100ms budget: force-cancel did not stop runs", el)
	}

	var served, refused int
	for k := 0; k < 6; k++ {
		select {
		case o := <-results:
			switch {
			case o.status == http.StatusOK && o.partial:
				served++
			case o.status == http.StatusTooManyRequests || o.status == http.StatusServiceUnavailable:
				refused++
			default:
				t.Errorf("request finished with status %d partial=%v; want sealed partial or typed refusal", o.status, o.partial)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("request hung through drain")
		}
	}
	if served == 0 {
		t.Error("no in-flight request sealed a partial result through the drain")
	}
	if refused == 0 {
		t.Error("no request was refused during the drain (expected queue overflow or drain refusals)")
	}
}
