package server

// The network-chaos campaign: a 3-node in-process cluster behind one
// seeded flaky transport (drops, latency, torn bodies, bit-flips) with a
// peer killed and revived mid-run. The invariant is the tentpole's
// robustness headline: EVERY client response is a clean 200 whose facts
// are byte-identical to a chaos-free single-node reference (or a typed
// 429), no matter which peer failure mode a request hit; circuits
// re-close once the killed peer returns; and the fleet leaks no
// goroutines. Runs are sized by CLUSTER_CHAOS_RUNS (CI uses 500).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"determinacy/internal/cluster"
	"determinacy/internal/cluster/chaos"
)

func clusterChaosRuns(t *testing.T, def int) int {
	if s := os.Getenv("CLUSTER_CHAOS_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad CLUSTER_CHAOS_RUNS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 10
	}
	return def
}

// chaosSources builds per-owner program variants: for each node, count
// distinct quick programs whose content hash that node owns (salted
// comments steer the hash without touching semantics), so every node
// both forwards and serves during the campaign.
func chaosSources(t *testing.T, r *cluster.Router, owners []string, count int) []string {
	t.Helper()
	var srcs []string
	for _, owner := range owners {
		for k := 0; k < count; k++ {
			body := fmt.Sprintf("var a = %d; var i = 0; while (i < %d) { a = a + i; i = i + 1; } console.log(a);", k, 20+5*k)
			found := false
			for s := 0; s < 10000; s++ {
				src := fmt.Sprintf("%s // %s-%d-%d", body, owner, k, s)
				if r.Owner(cluster.HashKey(src)) == owner {
					srcs = append(srcs, src)
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no variant %d owned by %q found", k, owner)
			}
		}
	}
	return srcs
}

func TestClusterChaosCampaign(t *testing.T) {
	runs := clusterChaosRuns(t, 500)
	const seed = uint64(0xC1A0_5EED)

	chaosT := chaos.New(nil, chaos.Config{
		Seed:        seed,
		DropProb:    0.05,
		LatencyProb: 0.10,
		MaxLatency:  25 * time.Millisecond,
		PartialProb: 0.04,
		CorruptProb: 0.05,
	})
	names := []string{"a", "b", "c"}
	nodes := newClusterNodes(t, names, chaosT, func(c *cluster.Config) {
		c.ForwardTimeout = 3 * time.Second
		c.CacheTimeout = 500 * time.Millisecond
		c.HedgeDelay = 25 * time.Millisecond
		c.BreakerCooldown = 100 * time.Millisecond
	})
	srcs := chaosSources(t, nodes["a"].router, names, 3)

	// Chaos-free single-node reference: the ground truth every clustered
	// response must match byte-for-byte (elapsed_ms aside).
	refSrv := httptest.NewServer(New(Config{}).Handler())
	defer refSrv.Close()
	refs := make([]AnalyzeResponse, len(srcs))
	bodies := make([][]byte, len(srcs))
	for i, src := range srcs {
		refs[i] = normalize(decodeAnalyze(t, postJSON(t, refSrv.URL+"/v1/analyze", AnalyzeRequest{Name: "chaos.js", Source: src, Seed: 3})))
		bodies[i], _ = json.Marshal(AnalyzeRequest{Name: "chaos.js", Source: src, Seed: 3})
	}

	base, _ := settleGoroutines(0, 1<<30) // current count, no assertion yet

	var ok200, shed429, partials atomic.Int64
	runPhase := func(lo, hi int, targets []string) {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					v := int(mix(seed, uint64(i)) % uint64(len(srcs)))
					target := nodes[targets[int(mix(uint64(i), 0xBEEF)%uint64(len(targets)))]]
					resp, err := http.Post(target.ts.URL+"/v1/analyze", "application/json", bytes.NewReader(bodies[v]))
					if err != nil {
						t.Errorf("iter %d: client POST to %s failed: %v", i, target.name, err)
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						var out AnalyzeResponse
						if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
							t.Errorf("iter %d: 200 body does not decode: %v", i, err)
						} else if out.Partial {
							// Chaos rides the wire, not the analysis, so sound
							// partials are unexpected here — but if one occurs
							// it must say why.
							if out.DegradeReason == "" {
								t.Errorf("iter %d: partial result with empty degrade_reason", i)
							}
							partials.Add(1)
						} else if !reflect.DeepEqual(normalize(out), refs[v]) {
							t.Errorf("iter %d (node %s, variant %d): response diverges from chaos-free reference\ngot:  %+v\nwant: %+v",
								i, target.name, v, normalize(out), refs[v])
						}
						ok200.Add(1)
					case http.StatusTooManyRequests:
						var er ErrorResponse
						if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error.Kind != "shed" {
							t.Errorf("iter %d: untyped 429 (err=%v kind=%q)", i, err, er.Error.Kind)
						}
						shed429.Add(1)
					default:
						raw := new(bytes.Buffer)
						raw.ReadFrom(resp.Body)
						t.Errorf("iter %d (node %s): status %d, body %.200s", i, target.name, resp.StatusCode, raw.String())
					}
					resp.Body.Close()
				}
			}()
		}
		for i := lo; i < hi; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	killAt, reviveAt := runs*3/10, runs*6/10
	cHost := strings.TrimPrefix(nodes["c"].ts.URL, "http://")

	// Phase 1: full fleet under wire chaos.
	runPhase(0, killAt, names)

	// Phase 2: peer c dies (SIGKILL stand-in); clients route around it,
	// a and b keep answering for programs c owns.
	chaosT.Kill(cHost)
	runPhase(killAt, reviveAt, []string{"a", "b"})

	// Revive c and let the probers re-close its circuits before phase 3.
	chaosT.Revive(cHost)
	recovered := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		closedEverywhere := true
		for _, n := range []string{"a", "b"} {
			nodes[n].router.ProbeOnce()
			for _, p := range nodes[n].router.Snapshot().Peers {
				if p.Name == "c" && p.State != "closed" {
					closedEverywhere = false
				}
			}
		}
		if closedEverywhere {
			recovered = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("circuits for revived peer c never re-closed")
	}
	forwardsToC := func() (n int64) {
		for _, name := range []string{"a", "b"} {
			for _, p := range nodes[name].router.Snapshot().Peers {
				if p.Name == "c" {
					n += p.Forwards
				}
			}
		}
		return n
	}
	preRecovery := forwardsToC()

	// Phase 3: full fleet again; traffic must relay to c once more.
	runPhase(reviveAt, runs, names)
	if post := forwardsToC(); post <= preRecovery {
		t.Errorf("no forwards reached revived peer c (before %d, after %d)", preRecovery, post)
	}

	if got := ok200.Load() + shed429.Load(); got != int64(runs) {
		t.Errorf("accounted responses = %d, want %d (every request must answer 200 or typed 429)", got, runs)
	}

	// Quiesce: every circuit on every node re-closes once the chaos stops
	// being fed new traffic (probes may still hit random drops, so poll).
	allClosed := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		allClosed = true
		for _, n := range nodes {
			n.router.ProbeOnce()
			for _, p := range n.router.Snapshot().Peers {
				if p.State != "closed" {
					allClosed = false
				}
			}
		}
		if allClosed {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !allClosed {
		for _, n := range nodes {
			t.Logf("node %s: %+v", n.name, n.router.Snapshot().Peers)
		}
		t.Error("breakers did not all re-close after the campaign")
	}

	// Idle keep-alive connections (client and inter-node, both on the
	// default transport under the chaos wrapper) hold reader goroutines;
	// drop them so the settle check sees real leaks only.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	if n, ok := settleGoroutines(base, 10); !ok {
		t.Errorf("goroutine leak: %d at start, %d after settling", base, n)
	}

	// Availability table for EXPERIMENTS.md: how the fleet degraded and
	// recovered, by observable.
	t.Logf("campaign: runs=%d ok200=%d shed429=%d partial=%d", runs, ok200.Load(), shed429.Load(), partials.Load())
	reasons := []string{
		cluster.ReasonBreakerOpen, cluster.ReasonBusy, cluster.ReasonTimeout,
		cluster.ReasonRefused, cluster.ReasonDisconnect, cluster.ReasonOversize,
		cluster.ReasonGarbage, cluster.ReasonPeerShed, cluster.ReasonPeerDraining,
		cluster.ReasonPeer5xx, cluster.ReasonPanic, cluster.ReasonDraining,
	}
	var relayed, fellBack int64
	for _, n := range nodes {
		for _, peerName := range names {
			if peerName == n.name {
				continue
			}
			relayed += n.metrics.Counter(fmt.Sprintf("cluster_requests_total{peer=%q,outcome=%q}", peerName, "relayed")).Value()
		}
		for _, reason := range reasons {
			if v := n.metrics.Counter(fmt.Sprintf("cluster_fallback_total{reason=%q}", reason)).Value(); v > 0 {
				fellBack += v
				t.Logf("node %s fallback reason=%s count=%d", n.name, reason, v)
			}
		}
		st := n.fc.Internal().Stats()
		t.Logf("node %s: hedges=%d remote_hits=%d remote_invalid=%d",
			n.name, n.metrics.Counter("cluster_hedges_total").Value(), st.RemoteHits, st.RemoteInvalid)
	}
	t.Logf("campaign: relayed=%d fallbacks=%d", relayed, fellBack)
	if relayed == 0 {
		t.Error("campaign never relayed a request — the cluster did not cluster")
	}
	if fellBack == 0 {
		t.Error("campaign never fell back — the chaos did not bite")
	}
}
