package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"determinacy/internal/guard/faultinject"
)

// slowSrc runs long enough (~100ms) that a request holding an execution
// slot is observable from concurrent requests, while a force-cancel stops
// it at the next guard checkpoint.
const slowSrc = `
var obj = {a: 0};
var r = Math.random();
var i = 0;
while (i < 3000) {
  obj.a = obj.a + i;
  if (r < 0.5) { obj.a = obj.a + 1; }
  i = i + 1;
}
console.log(obj.a);
`

const quickSrc = `var x = 1 + 2; console.log(x);`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeAnalyze(t *testing.T, resp *http.Response) AnalyzeResponse {
	t.Helper()
	defer resp.Body.Close()
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode analyze response: %v", err)
	}
	return out
}

func decodeError(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var out ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode error response: %v", err)
	}
	if out.Error.Kind == "" {
		t.Fatalf("error response with empty kind: %+v", out)
	}
	return out.Error
}

func TestAnalyzeBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Name: "basic.js", Source: quickSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeAnalyze(t, resp)
	if out.Name != "basic.js" {
		t.Errorf("name = %q, want basic.js", out.Name)
	}
	if out.Partial {
		t.Errorf("clean run reported partial (%s)", out.DegradeReason)
	}
	if out.NumFacts == 0 || len(out.Facts) != out.NumFacts {
		t.Errorf("facts: len=%d num_facts=%d, want equal and positive", len(out.Facts), out.NumFacts)
	}
	if out.NumDeterminate > out.NumFacts {
		t.Errorf("num_determinate %d > num_facts %d", out.NumDeterminate, out.NumFacts)
	}
	if out.Stats.Steps == 0 {
		t.Error("stats.steps = 0, want > 0")
	}
}

func TestAnalyzeFactsNeverNull(t *testing.T) {
	// A program with no observable facts must answer [] — clients iterate
	// the field without a null check.
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: `var x = 0;`, DetOnly: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(raw["facts"]) == "null" {
		t.Error(`facts marshaled as null, want []`)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRuns: 4})
	cases := []struct {
		name string
		req  AnalyzeRequest
	}{
		{"missing source", AnalyzeRequest{}},
		{"runs over cap", AnalyzeRequest{Source: quickSrc, Runs: 5}},
		{"negative timeout", AnalyzeRequest{Source: quickSrc, TimeoutMS: -1}},
		{"negative flushes", AnalyzeRequest{Source: quickSrc, MaxFlushes: -1}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/analyze", tc.req)
		body := decodeError(t, resp)
		if resp.StatusCode != http.StatusBadRequest || body.Kind != "bad-request" {
			t.Errorf("%s: status=%d kind=%q, want 400 bad-request", tc.name, resp.StatusCode, body.Kind)
		}
	}

	// Malformed JSON is a bad request too, not a 500.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(`{"source": `))
	if err != nil {
		t.Fatal(err)
	}
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Kind != "bad-request" {
		t.Errorf("malformed JSON: status=%d kind=%q, want 400 bad-request", resp.StatusCode, body.Kind)
	}

	// Wrong method never reaches a handler.
	getResp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze status = %d, want 405", getResp.StatusCode)
	}
}

func TestAnalyzeParseError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: `var = ;`})
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Kind != "parse" {
		t.Fatalf("status=%d kind=%q, want 400 parse", resp.StatusCode, body.Kind)
	}
}

func TestAnalyzeParseDepthGuard(t *testing.T) {
	// A maximally nested body within the size limit must be rejected by
	// the parser's depth guard, not blow the stack.
	_, ts := newTestServer(t, Config{})
	src := strings.Repeat("(", 600) + "1" + strings.Repeat(")", 600) + ";"
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: "var x = " + src})
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Kind != "parse-depth" {
		t.Fatalf("status=%d kind=%q, want 400 parse-depth", resp.StatusCode, body.Kind)
	}
}

func TestAnalyzeUncaughtException(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: `throw 1;`})
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity || body.Kind != "uncaught-exception" {
		t.Fatalf("status=%d kind=%q, want 422 uncaught-exception", resp.StatusCode, body.Kind)
	}
}

func TestAnalyzeBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: strings.Repeat("var x = 1; ", 100)})
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || body.Kind != "body-too-large" {
		t.Fatalf("status=%d kind=%q, want 413 body-too-large", resp.StatusCode, body.Kind)
	}
}

func TestAnalyzeTimeoutCeilingSealsPartial(t *testing.T) {
	// The client asks for a 60s budget; the server ceiling is 25ms. The
	// run must stop at the ceiling and answer 200 with a sound partial.
	_, ts := newTestServer(t, Config{DefaultTimeout: 25 * time.Millisecond, MaxTimeout: 25 * time.Millisecond})
	long := strings.Replace(slowSrc, "i < 3000", "i < 2000000", 1)
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: long, TimeoutMS: 60000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeAnalyze(t, resp)
	if !out.Partial {
		t.Fatal("run under a 25ms ceiling completed 2M iterations; expected partial")
	}
	if out.DegradeReason != "deadline" && out.DegradeReason != "cancel" {
		t.Fatalf("degrade_reason = %q, want deadline or cancel", out.DegradeReason)
	}
	if out.NumDeterminate > out.NumFacts {
		t.Fatalf("partial store incoherent: %d determinate of %d facts", out.NumDeterminate, out.NumFacts)
	}
}

func TestAnalyzeMultiRunMerge(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc, Runs: 3, Seed: 7, DetOnly: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	out := decodeAnalyze(t, resp)
	for _, f := range out.Facts {
		if !f.Determinate {
			t.Fatalf("det_only response contains indeterminate fact %+v", f)
		}
	}
}

func TestShedUnderOverload(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 1})
	const n = 8
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: slowSrc, Seed: uint64(i)})
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			if resp.StatusCode == http.StatusTooManyRequests {
				body := decodeError(t, resp)
				if body.Kind != "shed" {
					t.Errorf("429 kind = %q, want shed", body.Kind)
				}
				if body.RetryAfterMS <= 0 {
					t.Errorf("429 retry_after_ms = %d, want > 0", body.RetryAfterMS)
				}
			} else {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("429 without a Retry-After header")
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, c)
		}
	}
	if ok == 0 {
		t.Error("overload shed every request; at least one should have been served")
	}
	if shed == 0 {
		t.Errorf("8 concurrent requests against 1 slot + 1 queue place never shed (codes %v)", codes)
	}
}

func TestBatchMixedOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{Programs: []BatchProgram{
		{Name: "ok.js", Source: quickSrc},
		{Source: `var = broken`},
		{Name: "boom.js", Source: `throw "x";`},
	}}
	resp := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 with per-entry outcomes", resp.StatusCode)
	}
	defer resp.Body.Close()
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Results) != 3 || out.Completed != 1 || out.Failed != 2 {
		t.Fatalf("completed=%d failed=%d len=%d, want 1/2/3", out.Completed, out.Failed, len(out.Results))
	}
	for i, r := range out.Results {
		if (r.Result == nil) == (r.Error == nil) {
			t.Errorf("entry %d: want exactly one of result/error, got %+v", i, r)
		}
	}
	if out.Results[0].Name != "ok.js" || out.Results[0].Result == nil {
		t.Errorf("entry 0 = %+v, want ok.js success", out.Results[0])
	}
	if out.Results[1].Name != "program-1.js" || out.Results[1].Error == nil || out.Results[1].Error.Kind != "parse" {
		t.Errorf("entry 1 = %+v, want program-1.js parse error", out.Results[1])
	}
	if out.Results[2].Error == nil || out.Results[2].Error.Kind != "uncaught-exception" {
		t.Errorf("entry 2 = %+v, want uncaught-exception", out.Results[2])
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchPrograms: 2})
	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{})
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Kind != "bad-request" {
		t.Errorf("empty batch: status=%d kind=%q", resp.StatusCode, body.Kind)
	}
	resp = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Programs: []BatchProgram{
		{Source: quickSrc}, {Source: quickSrc}, {Source: quickSrc},
	}})
	body = decodeError(t, resp)
	if resp.StatusCode != http.StatusBadRequest || body.Kind != "bad-request" {
		t.Errorf("oversized batch: status=%d kind=%q", resp.StatusCode, body.Kind)
	}
}

func TestBreakerTripsReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 2})
	defer faultinject.Disarm()

	ready := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if ready() != http.StatusOK {
		t.Fatal("fresh server not ready")
	}

	// Two consecutive injected panics mid-analysis trip the breaker.
	for i := 0; i < 2; i++ {
		faultinject.Arm(&faultinject.Plan{Site: faultinject.SiteServerRequest, After: 1, Action: faultinject.Panic})
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
		body := decodeError(t, resp)
		if resp.StatusCode != http.StatusInternalServerError || body.Kind != "panic" {
			t.Fatalf("injected panic %d: status=%d kind=%q, want 500 panic", i, resp.StatusCode, body.Kind)
		}
		faultinject.Disarm()
	}
	if ready() != http.StatusServiceUnavailable {
		t.Fatal("breaker did not trip readiness after consecutive quarantines")
	}
	if !s.breakerOpen.Load() {
		t.Fatal("breakerOpen flag not set")
	}

	// Liveness is unaffected; only readiness flips.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while breaker open, want 200", resp.StatusCode)
	}

	// One successful analysis closes the breaker.
	okResp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	okResp.Body.Close()
	if okResp.StatusCode != http.StatusOK {
		t.Fatalf("clean request after breaker = %d, want 200", okResp.StatusCode)
	}
	if ready() != http.StatusOK {
		t.Fatal("breaker did not close after a successful analysis")
	}
}

func TestAdmitPanicRecoveredByMiddleware(t *testing.T) {
	// A fault outside the per-request guard boundary must be caught by the
	// HTTP-layer recovery middleware, answer a structured 500, and leave
	// the process serving.
	_, ts := newTestServer(t, Config{})
	defer faultinject.Disarm()
	faultinject.Arm(&faultinject.Plan{Site: faultinject.SiteServerAdmit, After: 1, Action: faultinject.Panic})
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	body := decodeError(t, resp)
	if resp.StatusCode != http.StatusInternalServerError || body.Kind != "panic" {
		t.Fatalf("status=%d kind=%q, want 500 panic", resp.StatusCode, body.Kind)
	}
	faultinject.Disarm()

	after := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc})
	after.Body.Close()
	if after.StatusCode != http.StatusOK {
		t.Fatalf("server dead after recovered panic: status %d", after.StatusCode)
	}
}

func TestHealthzEchoesVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{Version: "test-build-1 (go0.0)"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status   string `json:"status"`
		Version  string `json:"version"`
		UptimeMS int64  `json:"uptime_ms"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Version != "test-build-1 (go0.0)" || out.Draining {
		t.Fatalf("healthz = %+v", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, series := range []string{
		"server_requests_total",
		"server_max_inflight",
		"server_inflight",
		"server_queue_depth",
		"server_uptime_seconds",
		`server_responses_total{code="200"}`,
		"server_request_seconds",
		"progcache_misses_total",
	} {
		if !strings.Contains(dump, series) {
			t.Errorf("metrics dump missing %s", series)
		}
	}
}

func TestResponsesCountedByCode(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: quickSrc}).Body.Close()
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Source: `var = ;`}).Body.Close()
	if got := s.Metrics().Counter(fmt.Sprintf(`server_responses_total{code="%d"}`, 200)).Value(); got != 1 {
		t.Errorf(`responses{200} = %d, want 1`, got)
	}
	if got := s.Metrics().Counter(fmt.Sprintf(`server_responses_total{code="%d"}`, 400)).Value(); got != 1 {
		t.Errorf(`responses{400} = %d, want 1`, got)
	}
}

func TestCompileCacheSharedAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Name: "same.js", Source: quickSrc, Seed: uint64(i)}).Body.Close()
	}
	hits := s.Metrics().Counter("progcache_hits_total").Value()
	if hits < 2 {
		t.Fatalf("progcache hits after 3 identical requests = %d, want >= 2", hits)
	}
}
