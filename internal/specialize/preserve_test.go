package specialize_test

import (
	"testing"

	"determinacy/internal/ast"
	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/parser"
	"determinacy/internal/specialize"
	"determinacy/internal/workload"
)

// TestSpecializePreservesBehaviour: for arbitrary generated programs, the
// specialized output must compute the same observable state as the original
// under identical inputs — branch pruning, constant folding, loop and
// for-in unrolling, context cloning and eval elimination are all
// behaviour-preserving transformations (determinate-false branches never
// run, so even their side effects are preserved vacuously).
func TestSpecializePreservesBehaviour(t *testing.T) {
	inputs := map[string]interp.Value{
		"a": interp.NumberVal(5),
		"b": interp.NumberVal(-1),
		"c": interp.StringVal("zz"),
	}
	finalState := func(src string) map[string]string {
		t.Helper()
		mod, err := ir.Compile("p.js", src)
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		it := interp.New(mod, interp.Options{Seed: 21, Inputs: inputs})
		if _, err := it.Run(); err != nil {
			t.Fatalf("run: %v\n%s", err, src)
		}
		out := map[string]string{}
		for _, k := range it.Global.OwnKeys() {
			v, _ := it.Global.Get(k)
			if v.IsCallable() {
				continue // clones add function globals by design
			}
			out[k] = interp.ToString(v)
		}
		return out
	}

	for seed := uint64(0); seed < 80; seed++ {
		src := workload.RandomProgram(workload.GenConfig{Seed: 11000 + seed, WithForIn: seed%2 == 0})

		prog, err := parser.Parse("p.js", src)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := ir.Lower(prog)
		if err != nil {
			t.Fatal(err)
		}
		store := facts.NewStore()
		a := core.New(mod, store, core.Options{Seed: 21, Inputs: inputs})
		if _, err := a.Run(); err != nil {
			t.Fatalf("seed %d dynamic: %v\n%s", seed, err, src)
		}
		res, err := specialize.Specialize(prog, mod, store, specialize.Options{EliminateEval: true, Generalize: seed%2 == 1})
		if err != nil {
			t.Fatalf("seed %d specialize: %v", seed, err)
		}
		specSrc := ast.Print(res.Program)

		orig := finalState(src)
		spec := finalState(specSrc)
		for k, want := range orig {
			got, ok := spec[k]
			if !ok {
				t.Errorf("seed %d: global %s missing after specialization\n--- original\n%s\n--- specialized\n%s",
					seed, k, src, specSrc)
				continue
			}
			if got != want {
				t.Errorf("seed %d: global %s: original %q vs specialized %q\n--- original\n%s\n--- specialized\n%s",
					seed, k, want, got, src, specSrc)
			}
		}
	}
}

// TestSpecializedOutputsReparse: the printed specialization of any generated
// program must itself lower cleanly (no invalid IR constructs introduced).
func TestSpecializedOutputsReparse(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		src := workload.RandomProgram(workload.GenConfig{Seed: 12000 + seed, WithForIn: true})
		res, out := pipelineOpts(t, src, specialize.Options{EliminateEval: true})
		if _, err := ir.Compile("spec.js", out); err != nil {
			t.Fatalf("seed %d: specialized output does not lower: %v\nstats %+v\n%s", seed, err, res.Stats, out)
		}
	}
}
