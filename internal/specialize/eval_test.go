package specialize_test

import (
	"strings"
	"testing"

	"determinacy/internal/specialize"
)

// evalPipeline runs the dynamic analysis with eval elimination enabled.
func evalPipeline(t *testing.T, src string) (*specialize.Result, string) {
	t.Helper()
	return pipelineOpts(t, src, specialize.Options{EliminateEval: true})
}

func statusOf(res *specialize.Result, line int) (specialize.EvalStatus, bool) {
	for _, s := range res.EvalSites {
		if s.Line == line {
			return s.Status, true
		}
	}
	return 0, false
}

func TestEvalLiteralEliminated(t *testing.T) {
	res, out := evalPipeline(t, `var r = eval("1 + 2"); console.log(r);`)
	if res.Stats.EvalsEliminated != 1 {
		t.Fatalf("stats: %+v\n%s", res.Stats, out)
	}
	if strings.Contains(out, "eval") {
		t.Errorf("eval survived:\n%s", out)
	}
	if got, want := runProgram(t, out), "3\n"; got != want {
		t.Errorf("behaviour: %q want %q", got, want)
	}
}

func TestEvalConcatenationEliminated(t *testing.T) {
	_, out := evalPipeline(t, `
		var registry = {alpha: 41};
		var which = "alpha";
		console.log(eval("registry." + which) + 1);
	`)
	if strings.Contains(out, "eval(") {
		t.Errorf("concatenated eval survived:\n%s", out)
	}
	if !strings.Contains(out, "registry.alpha") {
		t.Errorf("spliced access missing:\n%s", out)
	}
}

func TestEvalNestedCleanedUp(t *testing.T) {
	_, out := evalPipeline(t, `console.log(eval("eval('5 + 5')"));`)
	if strings.Contains(out, "eval") {
		t.Errorf("nested eval survived:\n%s", out)
	}
	if got := runProgram(t, out); got != "10\n" {
		t.Errorf("behaviour: %q", got)
	}
}

func TestEvalIndeterminateArgumentKept(t *testing.T) {
	res, out := evalPipeline(t, `
		var code = "" + Math.random();
		var r = 0;
		try { r = eval(code); } catch (e) { r = -1; }
	`)
	st, ok := statusOf(res, 4)
	if !ok || st != specialize.EvalIndetArg {
		t.Errorf("status = %v (found %v)\n%s", st, ok, out)
	}
	if !strings.Contains(out, "eval(") {
		t.Errorf("indeterminate eval must survive:\n%s", out)
	}
}

func TestEvalThroughMemberCallee(t *testing.T) {
	// eval reached through a heap property: the dynamic fact identifies the
	// callee as the eval native and elimination proceeds.
	_, out := evalPipeline(t, `
		var util = {};
		util.e = eval;
		console.log(util.e("6 * 7"));
	`)
	if strings.Contains(out, `util.e(`) {
		t.Errorf("member eval call survived:\n%s", out)
	}
	if got := runProgram(t, out); got != "42\n" {
		t.Errorf("behaviour: %q", got)
	}
}

func TestEvalShadowedNotTouched(t *testing.T) {
	// A user function named eval is not the eval native; it must be left
	// alone (and may be cloned like any call).
	src := `
		function eval(x) { return x + "!"; }
		console.log(eval("hi"));
	`
	res, out := evalPipeline(t, src)
	if res.Stats.EvalsEliminated != 0 {
		t.Errorf("shadowed eval eliminated: %+v\n%s", res.Stats, out)
	}
	if got := runProgram(t, out); got != "hi!\n" {
		t.Errorf("behaviour: %q", got)
	}
}

func TestForInUnrollDrivesEval(t *testing.T) {
	res, out := evalPipeline(t, `
		var fields = {width: 10, height: 20};
		var total = 0;
		for (var key in fields) {
			total = total + eval("fields." + key);
		}
		console.log(total);
	`)
	if res.Stats.LoopsUnrolled != 1 || res.Stats.UnrolledIterations != 2 {
		t.Fatalf("for-in not unrolled: %+v\n%s", res.Stats, out)
	}
	if res.Stats.EvalsEliminated != 2 {
		t.Errorf("per-iteration evals not eliminated: %+v\n%s", res.Stats, out)
	}
	if got := runProgram(t, out); got != "30\n" {
		t.Errorf("behaviour: %q\n%s", got, out)
	}
}

func TestEvalLoopVaryingArgumentBlocked(t *testing.T) {
	res, out := evalPipeline(t, `
		var n = Math.floor(Math.random() * 2) + 1;
		var s = 0;
		for (var i = 0; i < n; i++) {
			s = s + eval("3 + " + i);
		}
	`)
	st, ok := statusOf(res, 5)
	if !ok || st != specialize.EvalLoopIndet {
		t.Errorf("status = %v (found=%v), want indeterminate-loop-bound\n%s", st, ok, out)
	}
}

func TestEvalStatementParseFailure(t *testing.T) {
	res, _ := evalPipeline(t, `
		try { eval("var zz = 1; zz"); } catch (e) { }
	`)
	st, ok := statusOf(res, 2)
	if !ok || st != specialize.EvalParseFailed {
		t.Errorf("statement-form eval should report parse-failed, got %v (found=%v)", st, ok)
	}
}
