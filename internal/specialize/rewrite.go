package specialize

import (
	"fmt"

	"determinacy/internal/ast"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/lexer"
	"determinacy/internal/parser"
)

func (sp *specializer) stmts(ss []ast.Stmt, e *env) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range ss {
		out = append(out, sp.stmt(s, e)...)
	}
	return out
}

// stmt rewrites one statement; it may expand to several (loop unrolling) or
// fewer (branch pruning).
func (sp *specializer) stmt(s ast.Stmt, e *env) []ast.Stmt {
	switch s := s.(type) {
	case *ast.VarDecl:
		d := &ast.VarDecl{P: s.P}
		for _, decl := range s.Decls {
			nd := ast.Declarator{Name: decl.Name}
			if decl.Init != nil {
				nd.Init = sp.expr(decl.Init, e)
			}
			d.Decls = append(d.Decls, nd)
		}
		return []ast.Stmt{d}
	case *ast.ExprStmt:
		return []ast.Stmt{&ast.ExprStmt{X: sp.expr(s.X, e), P: s.P}}
	case *ast.Block:
		return []ast.Stmt{&ast.Block{Body: sp.stmts(s.Body, e), P: s.P}}
	case *ast.If:
		return sp.ifStmt(s, e)
	case *ast.While:
		if out, ok := sp.tryUnrollWhile(s.P, nil, s.Test, nil, s.Body, e); ok {
			return out
		}
		return []ast.Stmt{&ast.While{Test: sp.expr(s.Test, e), Body: sp.blockStmt(s.Body, e), P: s.P}}
	case *ast.DoWhile:
		return []ast.Stmt{&ast.DoWhile{Body: sp.blockStmt(s.Body, e), Test: sp.expr(s.Test, e), P: s.P}}
	case *ast.For:
		if out, ok := sp.tryUnrollWhile(s.P, s.Init, s.Test, s.Update, s.Body, e); ok {
			return out
		}
		f := &ast.For{P: s.P, Body: sp.blockStmt(s.Body, e)}
		if s.Init != nil {
			init := sp.stmt(s.Init, e)
			if len(init) == 1 {
				f.Init = init[0]
			}
		}
		if s.Test != nil {
			f.Test = sp.expr(s.Test, e)
		}
		if s.Update != nil {
			f.Update = sp.expr(s.Update, e)
		}
		return []ast.Stmt{f}
	case *ast.ForIn:
		if out, ok := sp.tryUnrollForIn(s, e); ok {
			return out
		}
		return []ast.Stmt{&ast.ForIn{Name: s.Name, Declare: s.Declare,
			Obj: sp.expr(s.Obj, e), Body: sp.blockStmt(s.Body, e), P: s.P}}
	case *ast.Return:
		r := &ast.Return{P: s.P}
		if s.Value != nil {
			r.Value = sp.expr(s.Value, e)
		}
		return []ast.Stmt{r}
	case *ast.Throw:
		return []ast.Stmt{&ast.Throw{Value: sp.expr(s.Value, e), P: s.P}}
	case *ast.Try:
		t := &ast.Try{P: s.P, CatchParam: s.CatchParam}
		t.Block = &ast.Block{Body: sp.stmts(s.Block.Body, e), P: s.Block.P}
		if s.Catch != nil {
			t.Catch = &ast.Block{Body: sp.stmts(s.Catch.Body, e), P: s.Catch.P}
		}
		if s.Finally != nil {
			t.Finally = &ast.Block{Body: sp.stmts(s.Finally.Body, e), P: s.Finally.P}
		}
		return []ast.Stmt{t}
	case *ast.FunctionDecl:
		// The generic (unspecialized) body is kept: fact lookups under its
		// own function find nothing for foreign contexts, so the rewrite is
		// the identity apart from nested structure copies.
		fn := sp.fnOfPos[s.Fn.P]
		inner := &env{fn: fn, depth: e.depth, iter: -1}
		return []ast.Stmt{&ast.FunctionDecl{Fn: sp.funcLit(s.Fn, inner), P: s.P}}
	case *ast.Switch:
		sw := &ast.Switch{Disc: sp.expr(s.Disc, e), P: s.P}
		for _, c := range s.Cases {
			nc := ast.Case{Body: sp.stmts(c.Body, e)}
			if c.Test != nil {
				nc.Test = sp.expr(c.Test, e)
			}
			sw.Cases = append(sw.Cases, nc)
		}
		return []ast.Stmt{sw}
	default: // Break, Continue, Empty
		return []ast.Stmt{s}
	}
}

func (sp *specializer) blockStmt(s ast.Stmt, e *env) ast.Stmt {
	out := sp.stmt(s, e)
	if len(out) == 1 {
		return out[0]
	}
	return &ast.Block{Body: out, P: s.Pos()}
}

func (sp *specializer) funcLit(fn *ast.FunctionLit, e *env) *ast.FunctionLit {
	return &ast.FunctionLit{
		Name:   fn.Name,
		Params: fn.Params,
		Body:   sp.stmts(fn.Body, e),
		P:      fn.P,
	}
}

// truthyOf evaluates JavaScript truthiness of a fact snapshot.
func truthyOf(v facts.Snapshot) bool {
	switch v.Kind {
	case facts.VUndefined, facts.VNull:
		return false
	case facts.VBool:
		return v.Bool
	case facts.VNumber:
		return v.Num != 0 && v.Num == v.Num
	case facts.VString:
		return v.Str != ""
	default:
		return true
	}
}

// ifStmt prunes branches with determinate conditions (specialization (i)).
// An impure condition is preserved as an expression statement so runtime
// behaviour is unchanged.
func (sp *specializer) ifStmt(s *ast.If, e *env) []ast.Stmt {
	if !sp.opts.DisableFolding {
		if v, ok := sp.detValue(e, s.Test); ok {
			sp.stats.BranchesPruned++
			sp.deadBranches = append(sp.deadBranches, DeadBranch{
				Line: s.P.Line, Context: e.ctx.Key(), Taken: truthyOf(v),
			})
			var out []ast.Stmt
			if !isPure(s.Test) {
				out = append(out, &ast.ExprStmt{X: sp.expr(s.Test, e), P: s.P})
			}
			if truthyOf(v) {
				out = append(out, sp.stmt(s.Cons, e)...)
			} else if s.Alt != nil {
				out = append(out, sp.stmt(s.Alt, e)...)
			}
			if len(out) == 0 {
				return []ast.Stmt{&ast.Empty{P: s.P}}
			}
			return out
		}
	}
	n := &ast.If{Test: sp.expr(s.Test, e), Cons: sp.blockStmt(s.Cons, e), P: s.P}
	if s.Alt != nil {
		n.Alt = sp.blockStmt(s.Alt, e)
	}
	return []ast.Stmt{n}
}

// ---------------------------------------------------------------------------
// Loop unrolling (specialization (iii))

// hasLoopEscape reports whether body contains a break or continue bound to
// this loop.
func hasLoopEscape(body ast.Stmt) bool {
	found := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		if found {
			return
		}
		switch s := s.(type) {
		case *ast.Break, *ast.Continue:
			found = true
		case *ast.Block:
			for _, t := range s.Body {
				walk(t)
			}
		case *ast.If:
			walk(s.Cons)
			if s.Alt != nil {
				walk(s.Alt)
			}
		case *ast.Try:
			walk(s.Block)
			if s.Catch != nil {
				walk(s.Catch)
			}
			if s.Finally != nil {
				walk(s.Finally)
			}
			// Nested loops and switches own their break/continue.
		}
	}
	walk(body)
	return found
}

// tryUnrollWhile attempts to unroll a loop whose condition facts show a
// determinate trip count. Each unrolled copy is specialized with its
// iteration index as the occurrence sequence, which is what turns
// per-iteration facts (⟦prop⟧ 24₀→15 = "width") into distinct contexts.
func (sp *specializer) tryUnrollWhile(pos lexer.Pos, init ast.Stmt, test ast.Expr, update ast.Expr, body ast.Stmt, e *env) ([]ast.Stmt, bool) {
	if sp.opts.DisableFolding || test == nil || e.iter >= 0 {
		return nil, false
	}
	if !isPure(test) || hasLoopEscape(body) {
		return nil, false
	}
	// Probe the condition facts for a determinate trip structure:
	// true^trips followed by false.
	trips := -1
	for k := 0; k <= sp.opts.MaxUnroll; k++ {
		probe := &env{ctx: e.ctx, iter: k, depth: e.depth, fn: e.fn}
		f := sp.factFor(probe, test)
		if f == nil || !f.Det {
			return nil, false
		}
		if !truthyOf(f.Val) {
			trips = k
			break
		}
	}
	if trips < 0 {
		return nil, false
	}
	sp.stats.LoopsUnrolled++
	sp.stats.UnrolledIterations += trips

	var out []ast.Stmt
	if init != nil {
		out = append(out, sp.stmt(init, e)...)
	}
	for i := 0; i < trips; i++ {
		iterEnv := &env{ctx: e.ctx, iter: i, depth: e.depth, fn: e.fn}
		out = append(out, sp.stmt(body, iterEnv)...)
		if update != nil {
			out = append(out, &ast.ExprStmt{X: sp.expr(update, iterEnv), P: update.Pos()})
		}
	}
	if len(out) == 0 {
		out = []ast.Stmt{&ast.Empty{P: pos}}
	}
	return out, true
}

// tryUnrollForIn unrolls a for-in loop whose visited key sequence is
// determinate (recorded per iteration by the instrumented ForIn rule). This
// realizes §5.2's observation that a determinate property set iterates in
// determinate order, enabling specialization of for-in-driven reflective
// code.
func (sp *specializer) tryUnrollForIn(s *ast.ForIn, e *env) ([]ast.Stmt, bool) {
	if sp.opts.DisableFolding || e.iter >= 0 || hasLoopEscape(s.Body) {
		return nil, false
	}
	in := sp.instrFor(e, s.P, "forin")
	if in == nil {
		return nil, false
	}
	var keys []string
	for seq := 0; ; seq++ {
		f, ok := sp.store.Lookup(in.IID(), e.ctx, seq)
		if !ok {
			break
		}
		if !f.Det || f.Val.Kind != facts.VString {
			return nil, false
		}
		keys = append(keys, f.Val.Str)
		if seq > sp.opts.MaxUnroll {
			return nil, false
		}
	}
	if len(keys) == 0 {
		return nil, false
	}
	sp.stats.LoopsUnrolled++
	sp.stats.UnrolledIterations += len(keys)

	var out []ast.Stmt
	if !isPure(s.Obj) {
		out = append(out, &ast.ExprStmt{X: sp.expr(s.Obj, e), P: s.P})
	}
	for i, k := range keys {
		iterEnv := &env{ctx: e.ctx, iter: i, depth: e.depth, fn: e.fn}
		lit := &ast.StringLit{Value: k, P: s.P}
		if s.Declare && i == 0 {
			out = append(out, &ast.VarDecl{Decls: []ast.Declarator{{Name: s.Name, Init: lit}}, P: s.P})
		} else {
			out = append(out, &ast.ExprStmt{
				X: &ast.Assign{Op: "=", Target: &ast.Ident{Name: s.Name, P: s.P}, Value: lit, P: s.P},
				P: s.P,
			})
		}
		out = append(out, sp.stmt(s.Body, iterEnv)...)
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Expressions

func (sp *specializer) expr(x ast.Expr, e *env) ast.Expr {
	switch x := x.(type) {
	case *ast.NumberLit, *ast.StringLit, *ast.BoolLit, *ast.NullLit,
		*ast.UndefinedLit, *ast.Ident, *ast.ThisExpr:
		return x
	case *ast.FunctionLit:
		fn := sp.fnOfPos[x.P]
		return sp.funcLit(x, &env{fn: fn, depth: e.depth, iter: -1})
	case *ast.ObjectLit:
		o := &ast.ObjectLit{P: x.P}
		for _, p := range x.Props {
			o.Props = append(o.Props, ast.Property{Key: p.Key, Value: sp.expr(p.Value, e)})
		}
		return o
	case *ast.ArrayLit:
		a := &ast.ArrayLit{P: x.P}
		for _, el := range x.Elems {
			a.Elems = append(a.Elems, sp.expr(el, e))
		}
		return a
	case *ast.Member:
		return &ast.Member{Obj: sp.expr(x.Obj, e), Prop: x.Prop, P: x.P}
	case *ast.Index:
		return sp.index(x, e)
	case *ast.Call:
		return sp.call(x, e)
	case *ast.New:
		n := &ast.New{Callee: sp.expr(x.Callee, e), P: x.P}
		for _, a := range x.Args {
			n.Args = append(n.Args, sp.expr(a, e))
		}
		return n
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, X: sp.expr(x.X, e), P: x.P}
	case *ast.Update:
		return &ast.Update{Op: x.Op, X: sp.expr(x.X, e), Prefix: x.Prefix, P: x.P}
	case *ast.Binary:
		return &ast.Binary{Op: x.Op, L: sp.expr(x.L, e), R: sp.expr(x.R, e), P: x.P}
	case *ast.Logical:
		return &ast.Logical{Op: x.Op, L: sp.expr(x.L, e), R: sp.expr(x.R, e), P: x.P}
	case *ast.Cond:
		if !sp.opts.DisableFolding {
			if v, ok := sp.detValue(e, x.Test); ok && isPure(x.Test) {
				sp.stats.ConstsFolded++
				if truthyOf(v) {
					return sp.expr(x.Cons, e)
				}
				return sp.expr(x.Alt, e)
			}
		}
		return &ast.Cond{Test: sp.expr(x.Test, e), Cons: sp.expr(x.Cons, e), Alt: sp.expr(x.Alt, e), P: x.P}
	case *ast.Assign:
		return &ast.Assign{Op: x.Op, Target: sp.expr(x.Target, e), Value: sp.expr(x.Value, e), P: x.P}
	case *ast.Seq:
		return &ast.Seq{L: sp.expr(x.L, e), R: sp.expr(x.R, e), P: x.P}
	default:
		return x
	}
}

// index staticizes dynamic property accesses with determinate names
// (specialization (ii)): o[e] becomes o.name or o["name"]. Like the paper's
// specializer, the (determinate) name computation is dropped even when it
// contains calls; the output is for analysis consumption.
func (sp *specializer) index(x *ast.Index, e *env) ast.Expr {
	obj := sp.expr(x.Obj, e)
	if !sp.opts.DisableFolding {
		if v, ok := sp.detValue(e, x.Index); ok && v.Kind == facts.VString {
			sp.stats.AccessesStaticized++
			if isIdentLike(v.Str) {
				return &ast.Member{Obj: obj, Prop: v.Str, P: x.P}
			}
			return &ast.Index{Obj: obj, Index: &ast.StringLit{Value: v.Str, P: x.Index.Pos()}, P: x.P}
		}
	}
	return &ast.Index{Obj: obj, Index: sp.expr(x.Index, e), P: x.P}
}

func isIdentLike(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '$' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	switch s {
	case "var", "function", "return", "if", "else", "while", "do", "for",
		"in", "new", "delete", "typeof", "instanceof", "null", "true",
		"false", "this", "try", "catch", "finally", "throw", "break",
		"continue", "switch", "case", "default":
		return false
	}
	return true
}

// call performs context cloning: when determinacy facts exist under this
// call site's context and the callee is determinate, the callee is
// specialized for that context — inline for IIFEs, as a named clone for
// declared functions.
func (sp *specializer) call(x *ast.Call, e *env) ast.Expr {
	if sp.opts.EliminateEval {
		if spliced, ok := sp.evalCall(x, e); ok {
			return spliced
		}
	}

	out := &ast.Call{P: x.P}
	for _, a := range x.Args {
		out.Args = append(out.Args, sp.expr(a, e))
	}

	in := sp.instrFor(e, x.P, "call")
	if in == nil || e.depth >= sp.opts.MaxCloneDepth {
		out.Callee = sp.expr(x.Callee, e)
		return out
	}
	childCtx := append(e.ctx.Clone(), facts.ContextEntry{Site: in.IID(), Seq: e.seq()})
	if !sp.ctxPfx[childCtx.Key()] {
		out.Callee = sp.expr(x.Callee, e)
		return out
	}

	// IIFE: specialize the literal body in place.
	if lit, ok := x.Callee.(*ast.FunctionLit); ok {
		fn := sp.fnOfPos[lit.P]
		out.Callee = sp.funcLit(lit, &env{ctx: childCtx, fn: fn, depth: e.depth + 1, iter: -1})
		return out
	}

	// Known determinate callee: emit a context clone when safe.
	if f := sp.factFor(e, x.Callee); f != nil && f.Det && f.Val.Kind == facts.VFunction && f.Val.FnIndex > 0 {
		target := sp.fnByIndex(f.Val.FnIndex)
		if target != nil && target.Decl != nil && sp.hoistSafe(target) {
			cloneName := sp.cloneFor(target, childCtx, e.depth+1)
			if cloneName != "" {
				switch callee := x.Callee.(type) {
				case *ast.Ident:
					out.Callee = &ast.Ident{Name: cloneName, P: callee.P}
					return out
				case *ast.Member:
					// Method call: preserve the receiver via
					// Function.prototype.call.
					recv := sp.expr(callee.Obj, e)
					out.Args = append([]ast.Expr{recv}, out.Args...)
					out.Callee = &ast.Member{
						Obj:  &ast.Ident{Name: cloneName, P: callee.P},
						Prop: "call", P: callee.P,
					}
					return out
				}
			}
		}
	}
	out.Callee = sp.expr(x.Callee, e)
	return out
}

func (sp *specializer) fnByIndex(i int) *ir.Function {
	if i < 0 || i >= len(sp.mod.Funcs) {
		return nil
	}
	return sp.mod.Funcs[i]
}

// hoistSafe reports whether a function can be cloned to the top level: its
// free variables must resolve to globals, which holds when its lexical
// parent is the top level.
func (sp *specializer) hoistSafe(fn *ir.Function) bool {
	return fn.Parent == sp.mod.Top()
}

// cloneFor returns (creating on demand) the top-level clone of fn
// specialized for ctx.
func (sp *specializer) cloneFor(fn *ir.Function, ctx facts.Context, depth int) string {
	key := fmt.Sprintf("%d|%s", fn.Index, ctx.Key())
	if name, ok := sp.clones[key]; ok {
		return name
	}
	sp.nclones++
	base := fn.Name
	if base == "" {
		base = "anon"
	}
	name := fmt.Sprintf("%s$%d", base, sp.nclones)
	sp.clones[key] = name

	before := sp.stats
	body := sp.stmts(fn.Decl.Body, &env{ctx: ctx, fn: fn, depth: depth, iter: -1})
	if sp.stats == before && !referencesName(body, name) {
		// No fact applied inside this context: the clone would be identical
		// to the original, so drop it and leave the call site alone.
		sp.nclones--
		sp.clones[key] = ""
		return ""
	}
	sp.stats.ClonesCreated++
	sp.newDecls = append(sp.newDecls, &ast.FunctionDecl{
		Fn: &ast.FunctionLit{Name: name, Params: fn.Decl.Params, Body: body, P: fn.Decl.P},
		P:  fn.Decl.P,
	})
	return name
}

// evalCall attempts to replace an eval call with the statically parsed form
// of its determinate argument (§2.3). Like the paper's specializer, this
// operates after dynamic facts have resolved the name binding of eval
// itself: the call is only replaced when the callee is determinately the
// global eval native.
func (sp *specializer) evalCall(x *ast.Call, e *env) (ast.Expr, bool) {
	id, syntacticEval := x.Callee.(*ast.Ident)
	syntacticEval = syntacticEval && id.Name == "eval"
	cf := sp.factFor(e, x.Callee)
	// The call is eval-relevant if it is a syntactic eval call, or the
	// dynamically observed callee value was the eval native (even when the
	// observation is indeterminate: that is exactly the §5.2
	// "indeterminate callee" failure category).
	factIsEval := cf != nil && cf.Val.Kind == facts.VFunction && cf.Val.Native == "eval"
	if !syntacticEval && !factIsEval {
		return nil, false
	}
	in := sp.instrFor(e, x.P, "call")
	if in == nil {
		return nil, false
	}
	site := in.IID()
	note := func(s EvalStatus) { sp.noteEval(site, s) }

	// The callee must be determinately the eval native.
	if cf == nil {
		if len(e.ctx) == 0 && e.fn == nil {
			note(EvalNotCovered)
		}
		return nil, false
	}
	if !cf.Det {
		note(EvalIndetCallee)
		return nil, false
	}
	if cf.Val.Kind != facts.VFunction || cf.Val.Native != "eval" {
		return nil, false // shadowed eval: treat as a regular call
	}
	if len(x.Args) == 0 {
		return nil, false
	}

	// The argument string must be determinate, and stable across loop
	// occurrences unless this copy came from unrolling.
	v, ok := sp.detValue(e, x.Args[0])
	if !ok {
		if f := sp.factFor(e, x.Args[0]); f != nil {
			note(EvalIndetArg)
		} else if len(e.ctx) == 0 && e.fn == nil {
			note(EvalNotCovered)
		}
		return nil, false
	}
	if v.Kind != facts.VString {
		return nil, false
	}
	if sp.mod.IsReentrant(site) && e.iter < 0 {
		if !sp.stableAcrossOccurrences(e, x.Args[0]) {
			note(EvalLoopIndet)
			return nil, false
		}
	}

	spliced, err := parser.ParseExpr(v.Str)
	if err != nil {
		note(EvalParseFailed)
		return nil, false
	}
	spliced = sp.cleanNestedEval(spliced)
	note(EvalEliminated)
	sp.stats.EvalsEliminated++
	return spliced, true
}

// cleanNestedEval syntactically eliminates eval-of-string-literal calls
// inside spliced code (eval("eval('...')") patterns): direct eval of a
// literal is always replaceable by its parse.
func (sp *specializer) cleanNestedEval(x ast.Expr) ast.Expr {
	switch x := x.(type) {
	case *ast.Call:
		if id, ok := x.Callee.(*ast.Ident); ok && id.Name == "eval" && len(x.Args) == 1 {
			if lit, ok := x.Args[0].(*ast.StringLit); ok {
				if inner, err := parser.ParseExpr(lit.Value); err == nil {
					sp.stats.EvalsEliminated++
					return sp.cleanNestedEval(inner)
				}
			}
		}
		out := &ast.Call{Callee: sp.cleanNestedEval(x.Callee), P: x.P}
		for _, a := range x.Args {
			out.Args = append(out.Args, sp.cleanNestedEval(a))
		}
		return out
	case *ast.Binary:
		return &ast.Binary{Op: x.Op, L: sp.cleanNestedEval(x.L), R: sp.cleanNestedEval(x.R), P: x.P}
	case *ast.Logical:
		return &ast.Logical{Op: x.Op, L: sp.cleanNestedEval(x.L), R: sp.cleanNestedEval(x.R), P: x.P}
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, X: sp.cleanNestedEval(x.X), P: x.P}
	case *ast.Cond:
		return &ast.Cond{Test: sp.cleanNestedEval(x.Test), Cons: sp.cleanNestedEval(x.Cons), Alt: sp.cleanNestedEval(x.Alt), P: x.P}
	case *ast.Member:
		return &ast.Member{Obj: sp.cleanNestedEval(x.Obj), Prop: x.Prop, P: x.P}
	case *ast.Index:
		return &ast.Index{Obj: sp.cleanNestedEval(x.Obj), Index: sp.cleanNestedEval(x.Index), P: x.P}
	default:
		return x
	}
}

// stableAcrossOccurrences checks that every recorded occurrence of the
// expression's defining instruction (in this context) is determinate with
// the same value, so a single replacement is valid for all iterations.
func (sp *specializer) stableAcrossOccurrences(e *env, x ast.Expr) bool {
	if _, lit := x.(*ast.StringLit); lit {
		return true
	}
	var kinds []string
	if _, ok := x.(*ast.Ident); ok {
		kinds = []string{"loadvar", "loadglobal"}
	} else if k := defKind(x); k != "" {
		kinds = []string{k}
	} else {
		return false
	}
	for _, k := range kinds {
		in := sp.instrFor(e, x.Pos(), k)
		if in == nil {
			continue
		}
		var first *facts.Snapshot
		for seq := 0; ; seq++ {
			f, ok := sp.store.Lookup(in.IID(), e.ctx, seq)
			if !ok {
				return seq > 0
			}
			if !f.Det {
				return false
			}
			if first == nil {
				v := f.Val
				first = &v
			} else if !first.Equal(f.Val) {
				return false
			}
			if seq > sp.store.MaxSeq {
				return false
			}
		}
	}
	return false
}

// referencesName reports whether any identifier in the statements names n
// (a recursive clone reference that must keep the clone alive).
func referencesName(body []ast.Stmt, n string) bool {
	found := false
	for _, s := range body {
		ast.Walk(s, func(node ast.Node) bool {
			if id, ok := node.(*ast.Ident); ok && id.Name == n {
				found = true
			}
			return !found
		})
	}
	return found
}
