// Package specialize rewrites mini-JS programs using determinacy facts, the
// paper's first client (§2.2, §5.1). It performs the three specializations
// the paper describes:
//
//	(i)   removing branches guarded by determinately false conditions;
//	(ii)  making dynamic property accesses with determinate property names
//	      static;
//	(iii) unrolling loops with a determinate maximum number of iterations
//	      when this enables other specializations;
//
// and materializes per-calling-context function clones ("creating clones of
// functions based on the full call stacks present in determinacy facts") so
// that a context-insensitive static analysis of the output enjoys the
// precision of the context-qualified facts.
package specialize

import (
	"fmt"
	"sort"

	"determinacy/internal/ast"
	"determinacy/internal/facts"
	"determinacy/internal/ir"
	"determinacy/internal/lexer"
)

// Options configures the specializer.
type Options struct {
	// MaxUnroll bounds loop unrolling (the paper needed 21 iterations for
	// jQuery 1.0). 0 means the default of 32.
	MaxUnroll int
	// MaxCloneDepth bounds context-clone nesting (the paper reports at most
	// four levels of context were needed). 0 means the default of 4; a
	// negative value disables cloning entirely.
	MaxCloneDepth int
	// FoldConstants enables replacing determinate pure expressions in
	// condition and property-name positions with their literal values.
	// Always on in practice; exposed for ablation.
	DisableFolding bool
	// EliminateEval replaces eval calls whose callee is determinately the
	// global eval and whose argument string is determinate with the parsed
	// code (§2.3, §5.2).
	EliminateEval bool
	// Generalize additionally applies context-insensitive projections of
	// the facts (the paper's §7 "shallower calling contexts" direction):
	// when every observation of a program point agrees on a determinate
	// value, the fact holds under any stack and can specialize the original
	// function body in place, without cloning.
	Generalize bool
}

// EvalStatus classifies one eval call site after specialization.
type EvalStatus int

// Eval site statuses; the §5.2 failure taxonomy.
const (
	EvalEliminated  EvalStatus = iota // replaced by parsed code
	EvalIndetArg                      // argument string indeterminate
	EvalIndetCallee                   // eval binding itself indeterminate (heap flush)
	EvalLoopIndet                     // inside a loop without a determinate bound
	EvalNotCovered                    // never reached by the dynamic analysis
	EvalParseFailed                   // argument did not parse as splicable code
)

func (s EvalStatus) String() string {
	switch s {
	case EvalEliminated:
		return "eliminated"
	case EvalIndetArg:
		return "indeterminate-argument"
	case EvalIndetCallee:
		return "indeterminate-callee"
	case EvalLoopIndet:
		return "indeterminate-loop-bound"
	case EvalNotCovered:
		return "not-covered"
	case EvalParseFailed:
		return "parse-failed"
	}
	return "?"
}

// EvalSite reports the outcome for one syntactic eval call site.
type EvalSite struct {
	Site   ir.ID
	Line   int
	Status EvalStatus
}

// Stats reports what the specializer did.
type Stats struct {
	BranchesPruned     int
	AccessesStaticized int
	LoopsUnrolled      int
	UnrolledIterations int
	ClonesCreated      int
	ConstsFolded       int
	EvalsEliminated    int
}

// DeadBranch reports one branch proven unreachable under a specific
// context: the paper's Figure 1 use case ("identify code that is
// unreachable for this particular invocation... thereby gaining a degree of
// flow sensitivity").
type DeadBranch struct {
	// Line is the source line of the conditional.
	Line int
	// Context renders the calling context the branch is dead under
	// (empty = everywhere observed).
	Context string
	// Taken reports which arm is live: the dead one is the other.
	Taken bool
}

// Result is the specialization output.
type Result struct {
	Program *ast.Program
	Stats   Stats
	// EvalSites reports, per syntactic eval call site, whether it was
	// eliminated and why not otherwise (populated when EliminateEval).
	// A site occurring in several clone contexts reports its worst status.
	EvalSites []EvalSite
	// DeadBranches lists every pruned conditional with its context.
	DeadBranches []DeadBranch
}

// Specialize rewrites prog using facts gathered by running mod (the lowered
// form of prog) under the determinacy analysis.
func Specialize(prog *ast.Program, mod *ir.Module, store *facts.Store, opts Options) (*Result, error) {
	if opts.MaxUnroll == 0 {
		opts.MaxUnroll = 32
	}
	if opts.MaxCloneDepth == 0 {
		opts.MaxCloneDepth = 4
	}
	sp := &specializer{
		mod:        mod,
		store:      store,
		opts:       opts,
		gen:        genStore(store, opts),
		posIdx:     map[posKey][]ir.Instr{},
		ctxPfx:     map[string]bool{},
		clones:     map[string]string{},
		fnOfPos:    map[lexer.Pos]*ir.Function{},
		evalStatus: map[ir.ID]EvalStatus{},
	}
	mod.ForEachInstr(func(in ir.Instr, fn *ir.Function) {
		k := posKey{in.IPos(), kindOf(in)}
		sp.posIdx[k] = append(sp.posIdx[k], in)
	})
	for _, fn := range mod.Funcs {
		if fn.Decl != nil {
			sp.fnOfPos[fn.Decl.P] = fn
		}
	}
	for _, f := range store.All() {
		ctx := f.Ctx
		for i := 0; i <= len(ctx); i++ {
			sp.ctxPfx[ctx[:i].Key()] = true
		}
	}

	out := &ast.Program{File: prog.File, Source: prog.Source}
	body := sp.stmts(prog.Body, &env{ctx: nil, iter: -1})
	out.Body = append(out.Body, sp.newDecls...)
	out.Body = append(out.Body, body...)

	res := &Result{Program: out, Stats: sp.stats, DeadBranches: sp.deadBranches}
	if opts.EliminateEval {
		// Syntactic eval sites never reached under a live context default
		// to not-covered.
		ast.Walk(prog, func(n ast.Node) bool {
			call, ok := n.(*ast.Call)
			if !ok {
				return true
			}
			if id, ok := call.Callee.(*ast.Ident); !ok || id.Name != "eval" {
				return true
			}
			for _, in := range sp.posIdx[posKey{call.P, "call"}] {
				if _, seen := sp.evalStatus[in.IID()]; !seen {
					sp.evalStatus[in.IID()] = EvalNotCovered
				}
			}
			return true
		})
		sites := make([]ir.ID, 0, len(sp.evalStatus))
		for site := range sp.evalStatus {
			sites = append(sites, site)
		}
		// Report in site order: map iteration would make the slice order
		// depend on the hash seed, breaking run-to-run reproducibility.
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, site := range sites {
			line := 0
			if in := mod.InstrAt(site); in != nil {
				line = in.IPos().Line
			}
			res.EvalSites = append(res.EvalSites, EvalSite{Site: site, Line: line, Status: sp.evalStatus[site]})
		}
	}
	return res, nil
}

// env carries the specialization context through the AST walk.
type env struct {
	// ctx is the calling context this code executes under.
	ctx facts.Context
	// iter maps reentrant occurrences: when code is an unrolled loop-body
	// copy, iter is the iteration index used as the occurrence seq for
	// fact lookups; -1 outside unrolled copies.
	iter int
	// depth is the clone nesting depth.
	depth int
	// fn is the ir.Function whose body is being specialized (nil = top).
	fn *ir.Function
}

func (e *env) seq() int {
	if e.iter > 0 {
		return e.iter
	}
	return 0
}

type posKey struct {
	pos  lexer.Pos
	kind string
}

type specializer struct {
	mod   *ir.Module
	store *facts.Store
	// gen is the context-insensitive projection used as a lookup fallback
	// when Options.Generalize is set (nil otherwise).
	gen          *facts.Store
	opts         Options
	stats        Stats
	posIdx       map[posKey][]ir.Instr
	ctxPfx       map[string]bool
	fnOfPos      map[lexer.Pos]*ir.Function
	clones       map[string]string // (fnIndex|ctx) -> clone name
	newDecls     []ast.Stmt
	nclones      int
	evalStatus   map[ir.ID]EvalStatus
	deadBranches []DeadBranch
}

// noteEval records an eval site status, keeping the worst across contexts.
func (sp *specializer) noteEval(site ir.ID, s EvalStatus) {
	if cur, ok := sp.evalStatus[site]; !ok || s > cur {
		sp.evalStatus[site] = s
	}
}

func kindOf(in ir.Instr) string {
	switch in.(type) {
	case *ir.LoadVar:
		return "loadvar"
	case *ir.LoadGlobal:
		return "loadglobal"
	case *ir.GetField:
		return "getfield"
	case *ir.GetProp:
		return "getprop"
	case *ir.BinOp:
		return "binop"
	case *ir.UnOp:
		return "unop"
	case *ir.Call:
		return "call"
	case *ir.Move:
		return "move"
	case *ir.Const:
		return "const"
	case *ir.While:
		return "while"
	case *ir.ForIn:
		return "forin"
	default:
		return fmt.Sprintf("%T", in)
	}
}

// instrFor finds the unique instruction of the given kind at a position
// within fn (nil fn = top level).
func (sp *specializer) instrFor(e *env, pos lexer.Pos, kind string) ir.Instr {
	cands := sp.posIdx[posKey{pos, kind}]
	var match ir.Instr
	for _, in := range cands {
		inFn := sp.mod.FuncOf(in.IID())
		if sameFn(inFn, e.fn, sp.mod) {
			if match != nil {
				return nil // ambiguous
			}
			match = in
		}
	}
	return match
}

func sameFn(a, b *ir.Function, mod *ir.Module) bool {
	if b == nil {
		b = mod.Top()
	}
	if a == nil {
		a = mod.Top()
	}
	return a == b
}

// defKind maps an expression node to the IR kind of its defining
// instruction.
func defKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.Ident:
		return "" // resolved to loadvar or loadglobal; tried in order
	case *ast.Member:
		return "getfield"
	case *ast.Index:
		return "getprop"
	case *ast.Binary:
		return "binop"
	case *ast.Unary:
		return "unop"
	case *ast.Call:
		return "call"
	case *ast.Logical, *ast.Cond:
		return "move" // the result register's final Move carries the pos
	default:
		return ""
	}
}

// factFor returns the determinacy fact for expression e under env, or nil.
func (sp *specializer) factFor(e *env, x ast.Expr) *facts.Fact {
	var kinds []string
	if _, ok := x.(*ast.Ident); ok {
		kinds = []string{"loadvar", "loadglobal"}
	} else if k := defKind(x); k != "" {
		kinds = []string{k}
	} else {
		return nil
	}
	for _, k := range kinds {
		in := sp.instrFor(e, x.Pos(), k)
		if in == nil {
			continue
		}
		if f, ok := sp.store.Lookup(in.IID(), e.ctx, e.seq()); ok {
			return f
		}
		// Generalized fallback: a point determinate with one value across
		// every observed context holds under any stack (§7).
		if sp.gen != nil && e.seq() == 0 {
			if f, ok := sp.gen.Lookup(in.IID(), nil, 0); ok && f.Det {
				return f
			}
		}
	}
	return nil
}

// genStore builds the context-insensitive projection when requested.
func genStore(store *facts.Store, opts Options) *facts.Store {
	if !opts.Generalize {
		return nil
	}
	return store.Generalize()
}

// detValue returns the determinate primitive value of expression x under
// env, if any.
func (sp *specializer) detValue(e *env, x ast.Expr) (facts.Snapshot, bool) {
	// Literals are their own values.
	switch lit := x.(type) {
	case *ast.NumberLit:
		return facts.Snapshot{Kind: facts.VNumber, Num: lit.Value}, true
	case *ast.StringLit:
		return facts.Snapshot{Kind: facts.VString, Str: lit.Value}, true
	case *ast.BoolLit:
		return facts.Snapshot{Kind: facts.VBool, Bool: lit.Value}, true
	case *ast.NullLit:
		return facts.Snapshot{Kind: facts.VNull}, true
	case *ast.UndefinedLit:
		return facts.Snapshot{Kind: facts.VUndefined}, true
	}
	f := sp.factFor(e, x)
	if f == nil || !f.Det {
		return facts.Snapshot{}, false
	}
	return f.Val, true
}

// litFor converts a primitive snapshot to a literal expression.
func litFor(v facts.Snapshot, pos lexer.Pos) ast.Expr {
	switch v.Kind {
	case facts.VNumber:
		if v.Num < 0 {
			return &ast.Unary{Op: "-", X: &ast.NumberLit{Value: -v.Num, P: pos}, P: pos}
		}
		return &ast.NumberLit{Value: v.Num, P: pos}
	case facts.VString:
		return &ast.StringLit{Value: v.Str, P: pos}
	case facts.VBool:
		return &ast.BoolLit{Value: v.Bool, P: pos}
	case facts.VNull:
		return &ast.NullLit{P: pos}
	case facts.VUndefined:
		return &ast.UndefinedLit{P: pos}
	default:
		return nil
	}
}

// isPure reports whether evaluating x can have no side effects (calls,
// assignments, allocation with user code). Property reads count as pure.
func isPure(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.NumberLit, *ast.StringLit, *ast.BoolLit, *ast.NullLit,
		*ast.UndefinedLit, *ast.Ident, *ast.ThisExpr:
		return true
	case *ast.Member:
		return isPure(x.Obj)
	case *ast.Index:
		return isPure(x.Obj) && isPure(x.Index)
	case *ast.Unary:
		return x.Op != "delete" && isPure(x.X)
	case *ast.Binary:
		return isPure(x.L) && isPure(x.R)
	case *ast.Logical:
		return isPure(x.L) && isPure(x.R)
	case *ast.Cond:
		return isPure(x.Test) && isPure(x.Cons) && isPure(x.Alt)
	default:
		return false
	}
}
