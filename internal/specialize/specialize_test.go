package specialize_test

import (
	"strings"
	"testing"

	"determinacy/internal/ast"
	"determinacy/internal/core"
	"determinacy/internal/facts"
	"determinacy/internal/interp"
	"determinacy/internal/ir"
	"determinacy/internal/parser"
	"determinacy/internal/pointsto"
	"determinacy/internal/specialize"
)

// pipeline runs the dynamic analysis on src and specializes it.
func pipeline(t *testing.T, src string, opts specialize.Options) (*specialize.Result, string) {
	t.Helper()
	return pipelineOpts(t, src, opts)
}

func pipelineOpts(t *testing.T, src string, opts specialize.Options) (*specialize.Result, string) {
	t.Helper()
	prog, err := parser.Parse("test.js", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	store := facts.NewStore()
	a := core.New(mod, store, core.Options{})
	if _, err := a.Run(); err != nil {
		t.Fatalf("dynamic analysis: %v", err)
	}
	res, err := specialize.Specialize(prog, mod, store, opts)
	if err != nil {
		t.Fatalf("specialize: %v", err)
	}
	out := ast.Print(res.Program)
	// The output must still parse.
	if _, err := parser.Parse("out.js", out); err != nil {
		t.Fatalf("specialized output does not parse: %v\n%s", err, out)
	}
	return res, out
}

// runProgram executes source and returns console output.
func runProgram(t *testing.T, src string) string {
	t.Helper()
	mod, err := ir.Compile("p.js", src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	var buf strings.Builder
	it := interp.New(mod, interp.Options{Out: &buf})
	if _, err := it.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return buf.String()
}

func TestBranchPruning(t *testing.T) {
	src := `
		var mode = "fast";
		if (mode === "fast") {
			console.log("fast path");
		} else {
			console.log("slow path");
		}
	`
	res, out := pipeline(t, src, specialize.Options{})
	if res.Stats.BranchesPruned == 0 {
		t.Fatalf("expected branch pruning, got %+v\n%s", res.Stats, out)
	}
	if strings.Contains(out, "slow path") {
		t.Errorf("dead branch not removed:\n%s", out)
	}
	if !strings.Contains(out, "fast path") {
		t.Errorf("live branch missing:\n%s", out)
	}
}

func TestIndeterminateBranchKept(t *testing.T) {
	src := `
		if (Math.random() < 0.5) {
			console.log("a");
		} else {
			console.log("b");
		}
	`
	res, out := pipeline(t, src, specialize.Options{})
	if res.Stats.BranchesPruned != 0 {
		t.Errorf("pruned an indeterminate branch:\n%s", out)
	}
	if !strings.Contains(out, "if (") {
		t.Errorf("conditional lost:\n%s", out)
	}
}

func TestStaticizeDynamicAccess(t *testing.T) {
	src := `
		var o = {};
		var key = "wid" + "th";
		o[key] = 10;
		console.log(o[key]);
	`
	res, out := pipeline(t, src, specialize.Options{})
	if res.Stats.AccessesStaticized < 2 {
		t.Fatalf("expected staticized accesses, got %+v\n%s", res.Stats, out)
	}
	if !strings.Contains(out, "o.width") {
		t.Errorf("expected o.width in output:\n%s", out)
	}
}

func TestLoopUnrolling(t *testing.T) {
	src := `
		var props = ["width", "height"];
		var o = {};
		for (var i = 0; i < props.length; i++) {
			o[props[i]] = i;
		}
		console.log(o.width, o.height);
	`
	res, out := pipeline(t, src, specialize.Options{})
	if res.Stats.LoopsUnrolled != 1 || res.Stats.UnrolledIterations != 2 {
		t.Fatalf("expected a 2x unroll, got %+v\n%s", res.Stats, out)
	}
	if !strings.Contains(out, "o.width") || !strings.Contains(out, "o.height") {
		t.Errorf("per-iteration staticization missing:\n%s", out)
	}
	// The specialized program must behave identically.
	if got, want := runProgram(t, out), runProgram(t, src); got != want {
		t.Errorf("behaviour changed: %q vs %q", got, want)
	}
}

func TestIndeterminateLoopNotUnrolled(t *testing.T) {
	src := `
		var n = Math.floor(Math.random() * 3);
		var s = 0;
		for (var i = 0; i < n; i++) s += i;
		console.log(s);
	`
	res, out := pipeline(t, src, specialize.Options{})
	if res.Stats.LoopsUnrolled != 0 {
		t.Errorf("unrolled an indeterminate loop:\n%s", out)
	}
}

// figure3 is the paper's Figure 3 program.
const figure3 = `
function Rectangle(w, h) {
	this.width = w;
	this.height = h;
}
Rectangle.prototype.toString = function() {
	return "[" + this.width + "x" + this.height + "]";
};
String.prototype.cap = function() {
	return this[0].toUpperCase() + this.substr(1);
};
function defAccessors(prop) {
	Rectangle.prototype["get" + prop.cap()] =
		function() { return this[prop]; };
	Rectangle.prototype["set" + prop.cap()] =
		function(v) { this[prop] = v; };
}
var props = ["width", "height"];
for (var i = 0; i < props.length; i++)
	defAccessors(props[i]);
var r = new Rectangle(20, 30);
r.setWidth(r.getWidth() + 20);
console.log(r.toString());
`

func TestFigure3Specialization(t *testing.T) {
	res, out := pipeline(t, figure3, specialize.Options{})
	st := res.Stats
	if st.LoopsUnrolled != 1 || st.UnrolledIterations != 2 {
		t.Errorf("loop not unrolled: %+v", st)
	}
	if st.ClonesCreated != 2 {
		t.Errorf("want 2 defAccessors clones, got %d\n%s", st.ClonesCreated, out)
	}
	if st.AccessesStaticized < 4 {
		t.Errorf("want >=4 staticized accesses (get/set x width/height), got %d\n%s", st.AccessesStaticized, out)
	}
	for _, want := range []string{"getWidth", "setWidth", "getHeight", "setHeight"} {
		if !strings.Contains(out, "Rectangle.prototype."+want) {
			t.Errorf("missing static write to %s:\n%s", want, out)
		}
	}
	// The specialized program still computes [40x30].
	if got := runProgram(t, out); !strings.Contains(got, "[40x30]") {
		t.Errorf("specialized program output %q, want [40x30]\n%s", got, out)
	}
}

// TestFigure3PointsToPrecision is the paper's §2.2 claim: on the baseline
// program the getter call site resolves to getters, setters and toString;
// on the specialized program it resolves to exactly one function.
func TestFigure3PointsToPrecision(t *testing.T) {
	countCallees := func(src string, wantPrecise bool) {
		t.Helper()
		mod, err := ir.Compile("p.js", src)
		if err != nil {
			t.Fatal(err)
		}
		res := pointsto.Analyze(mod, pointsto.Options{})
		// Find the call site of r.getWidth() / its specialized form: a Call
		// whose callee count we inspect via the GetField of "getWidth".
		var callees int
		found := false
		mod.ForEachInstr(func(in ir.Instr, fn *ir.Function) {
			c, ok := in.(*ir.Call)
			if !ok {
				return
			}
			// match calls on the line containing "getWidth"
			if !strings.Contains(lineOf(src, in.IPos().Line), "getWidth()") {
				return
			}
			n := len(res.Callees[c.ID])
			if n > callees {
				callees = n
				found = true
			}
		})
		if !found {
			t.Fatalf("no getWidth call site found")
		}
		if wantPrecise && callees != 1 {
			t.Errorf("specialized: getWidth call resolves to %d callees, want 1", callees)
		}
		if !wantPrecise && callees <= 1 {
			t.Errorf("baseline: getWidth call resolves to %d callees, expected imprecision (>1)", callees)
		}
	}
	countCallees(figure3, false)
	_, out := pipeline(t, figure3, specialize.Options{})
	countCallees(out, true)
}

func lineOf(src string, n int) string {
	lines := strings.Split(src, "\n")
	if n-1 < 0 || n-1 >= len(lines) {
		return ""
	}
	return lines[n-1]
}

func TestClonePreservesBehaviour(t *testing.T) {
	src := `
		function greet(name) {
			if (name === "world") {
				return "hello, world!";
			}
			return "hi " + name;
		}
		console.log(greet("world"));
		console.log(greet("world"));
	`
	_, out := pipeline(t, src, specialize.Options{})
	if got, want := runProgram(t, out), runProgram(t, src); got != want {
		t.Errorf("behaviour changed:\n%q vs %q\n%s", got, want, out)
	}
}

// TestGeneralizedFacts: when every caller passes the same determinate
// argument, the Generalize option specializes the original body in place
// (the paper's §7 "shallower calling contexts" direction) — no clone
// needed, and the dynamic property access staticizes inside the shared
// function.
func TestGeneralizedFacts(t *testing.T) {
	src := `
		var sink = {};
		function install(name, v) {
			sink["cfg" + name] = v;
		}
		install("Mode", 1);
		install("Mode", 2);
		console.log(sink.cfgMode);
	`
	// Without generalization: two contexts, two clones.
	plain, plainOut := pipelineOpts(t, src, specialize.Options{})
	_ = plainOut
	// With generalization the original body staticizes directly.
	gen, genOut := pipelineOpts(t, src, specialize.Options{Generalize: true})
	if gen.Stats.AccessesStaticized == 0 {
		t.Fatalf("generalized facts did not staticize: %+v\n%s", gen.Stats, genOut)
	}
	if !strings.Contains(genOut, "sink.cfgMode") {
		t.Errorf("expected in-place staticization:\n%s", genOut)
	}
	// Behaviour preserved.
	if got, want := runProgram(t, genOut), runProgram(t, src); got != want {
		t.Errorf("behaviour changed: %q vs %q", got, want)
	}
	_ = plain
}

// TestGeneralizeRespectsDisagreement: differing values across contexts must
// not generalize.
func TestGeneralizeRespectsDisagreement(t *testing.T) {
	src := `
		var sink = {};
		function install(name, v) {
			sink["cfg" + name] = v;
		}
		install("A", 1);
		install("B", 2);
		console.log(sink.cfgA, sink.cfgB);
	`
	gen, genOut := pipelineOpts(t, src, specialize.Options{Generalize: true, MaxCloneDepth: -1})
	// MaxCloneDepth<0 suppresses cloning so only generalization could fire;
	// it must not, since name differs per context.
	if strings.Contains(genOut, "sink.cfgA = v") || strings.Contains(genOut, "sink.cfgB = v") {
		t.Errorf("unsound generalization:\n%s", genOut)
	}
	if got, want := runProgram(t, genOut), runProgram(t, src); got != want {
		t.Errorf("behaviour changed: %q vs %q\n%s", got, want, genOut)
	}
	_ = gen
}
