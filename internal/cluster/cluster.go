// Package cluster turns a set of independent detserve nodes into a
// fault-tolerant sharded fleet. A consistent-hash ring keyed by the
// progcache content hash (sha256 of the program source) names one owning
// peer per program, so identical programs land on warm caches and a viral
// script compiles once cluster-wide (the owner's progcache singleflight
// collapses the stampede that the ring funnels to it). Peers are also a
// remote L3 fact-cache tier: a local factcache miss may be served by
// fetching the owner's CRC-framed records (see factcache's Remote hook).
//
// The package is failure-first. Every remote interaction is bounded and
// every failure mode degrades to local analysis, so a cluster node is
// never worse than a single node:
//
//   - per-peer circuit breaker: closed → open after BreakerThreshold
//     consecutive failures → half-open after BreakerCooldown, where a
//     single trial (health probe or real request) decides re-close vs
//     re-open;
//   - per-peer health checking driven off /readyz on ProbeInterval, feeding
//     the same breaker so a recovered peer re-closes its circuit without
//     risking live traffic;
//   - bounded timeouts everywhere, one retry with exponential backoff and
//     jitter for connection-level forward failures, and single-retry
//     hedging for idempotent cache reads (cluster_hedges_total);
//   - bounded per-peer in-flight forwards (a slow peer exhausts its own
//     semaphore, not this node's goroutines);
//   - relayed responses are fully buffered and size-capped before a byte
//     reaches the client, so a mid-body peer disconnect falls back to
//     local analysis instead of truncating a response.
//
// Observability: cluster_peer_state{peer} (0 open, 1 half-open, 2 closed),
// cluster_requests_total{peer,outcome}, cluster_hedges_total,
// cluster_fallback_total{reason}, and a peer table on /debug/statusz via
// Snapshot.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"determinacy/internal/obs"
)

// ForwardedHeader marks a request already routed by a peer; a node never
// forwards a request that carries it, so a routing disagreement (ring skew
// during a topology change) degrades to one extra hop, never a loop.
const ForwardedHeader = "X-Cluster-Forwarded"

// DigestHeader carries the hex sha256 of a relayed response body, set by
// the owning node and verified by the forwarder over the bytes it
// received. It catches in-transit corruption that still parses as JSON —
// framing-level CRCs protect cache records the same way, but a relayed
// analysis response is plain JSON and needs its own integrity check.
const DigestHeader = "X-Relay-Digest"

// CachePath is the remote fact-cache endpoint served by every node:
// GET CachePath?key=<factcache key id> answers the raw framed records
// (manifest then chunks) or 404.
const CachePath = "/v1/cluster/cache"

// Topology names the fleet: this node plus every peer's base URL. The
// JSON shape is the detserve -peers flag format:
//
//	{"self": "a",
//	 "vnodes": 64,
//	 "peers": {"a": "http://10.0.0.1:8420", "b": "http://10.0.0.2:8420"}}
type Topology struct {
	// Self is this node's name; it must appear in Peers.
	Self string `json:"self"`
	// VNodes is the virtual-node count per peer on the hash ring
	// (0 = DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// Peers maps peer names to http(s) base URLs.
	Peers map[string]string `json:"peers"`
}

// DefaultVNodes is the per-peer virtual-node count when the topology
// names none; 64 keeps ownership within a few percent of even for small
// fleets.
const DefaultVNodes = 64

// validName bounds peer names to the label-safe charset shared with
// tenant IDs, so a hostile topology file cannot mint weird metric labels
// or header values.
func validName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '.', c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseTopology decodes and validates the -peers JSON object.
func ParseTopology(data []byte) (Topology, error) {
	var t Topology
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("cluster: peers config: %w", err)
	}
	if t.VNodes < 0 {
		return Topology{}, fmt.Errorf("cluster: vnodes must be non-negative, got %d", t.VNodes)
	}
	if t.Self == "" {
		return Topology{}, fmt.Errorf("cluster: peers config names no %q node", "self")
	}
	if !validName(t.Self) {
		return Topology{}, fmt.Errorf("cluster: invalid self name %q (want 1-64 chars of [A-Za-z0-9_.-])", t.Self)
	}
	if len(t.Peers) == 0 {
		return Topology{}, fmt.Errorf("cluster: peers config names no peers")
	}
	if _, ok := t.Peers[t.Self]; !ok {
		return Topology{}, fmt.Errorf("cluster: self %q is not in the peers map", t.Self)
	}
	for name, raw := range t.Peers {
		if !validName(name) {
			return Topology{}, fmt.Errorf("cluster: invalid peer name %q (want 1-64 chars of [A-Za-z0-9_.-])", name)
		}
		u, err := url.Parse(raw)
		if err != nil {
			return Topology{}, fmt.Errorf("cluster: peer %q: bad URL %q: %w", name, raw, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return Topology{}, fmt.Errorf("cluster: peer %q: URL %q must be http(s)://host[:port]", name, raw)
		}
	}
	return t, nil
}

// ParseTopologyFlag resolves the -peers flag value: inline JSON, or @path
// to read the JSON from a file. The empty value is a valid "no cluster".
func ParseTopologyFlag(v string) (Topology, error) {
	if v == "" {
		return Topology{}, nil
	}
	data := []byte(v)
	if strings.HasPrefix(v, "@") {
		b, err := os.ReadFile(v[1:])
		if err != nil {
			return Topology{}, fmt.Errorf("cluster: peers config: %w", err)
		}
		data = b
	}
	return ParseTopology(data)
}

// Enabled reports whether the topology names a fleet (a zero Topology is
// the single-node configuration).
func (t Topology) Enabled() bool { return t.Self != "" }

// Config tunes a Router. Zero values select the documented defaults.
type Config struct {
	Topology Topology
	// Transport performs the actual HTTP round trips (nil =
	// http.DefaultTransport). Chaos campaigns inject a flaky transport
	// here; production uses the default.
	Transport http.RoundTripper
	// Metrics receives the cluster_* series (nil = none).
	Metrics *obs.Metrics
	// ForwardTimeout bounds one forwarded /v1/analyze round trip,
	// including the retry (0 = 15s). The owner enforces its own analysis
	// deadline; this guards against a hung peer, not a slow program.
	ForwardTimeout time.Duration
	// CacheTimeout bounds one remote cache fetch (0 = 1s); HedgeDelay is
	// how long the first attempt may run before a hedged second request is
	// issued for idempotent cache reads (0 = CacheTimeout/4, negative =
	// hedging disabled).
	CacheTimeout time.Duration
	HedgeDelay   time.Duration
	// ProbeInterval paces the /readyz health prober started by Start
	// (0 = 1s, negative = no background prober; ProbeOnce still works).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit (0 = 3); BreakerCooldown is how long an open circuit
	// waits before half-opening (0 = 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxPeerInFlight bounds concurrent forwards per peer (0 = 32); the
	// excess falls back to local analysis rather than queueing.
	MaxPeerInFlight int
	// MaxRelayBytes caps a buffered peer response (0 = 32 MiB); larger
	// bodies fall back to local analysis.
	MaxRelayBytes int64
}

func (c Config) withDefaults() Config {
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 15 * time.Second
	}
	if c.CacheTimeout <= 0 {
		c.CacheTimeout = time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = c.CacheTimeout / 4
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxPeerInFlight <= 0 {
		c.MaxPeerInFlight = 32
	}
	if c.MaxRelayBytes <= 0 {
		c.MaxRelayBytes = 32 << 20
	}
	return c
}

// peer is one remote node's live state.
type peer struct {
	name string
	url  string

	br       *breaker
	inflight chan struct{} // forward semaphore

	healthy  atomic.Bool
	lastErr  atomic.Pointer[string]
	forwards atomic.Int64 // relayed forward round trips (any outcome)
	failures atomic.Int64 // transport/5xx/garbage failures fed to the breaker
	fetches  atomic.Int64 // remote cache fetch attempts
	cacheOK  atomic.Int64 // remote cache fetches that returned records

	state *obs.Gauge // cluster_peer_state{peer}
}

func (p *peer) noteErr(err error) {
	if err != nil {
		s := err.Error()
		p.lastErr.Store(&s)
	}
}

// publishState mirrors the breaker state into cluster_peer_state{peer}:
// 0 open, 1 half-open, 2 closed.
func (p *peer) publishState() {
	if p.state == nil {
		return
	}
	switch p.br.State() {
	case StateOpen:
		p.state.Set(0)
	case StateHalfOpen:
		p.state.Set(1)
	default:
		p.state.Set(2)
	}
}

// success records a good round trip (closing the breaker if needed).
func (p *peer) success() {
	p.br.Success()
	p.healthy.Store(true)
	p.publishState()
}

// failure records a bad round trip (possibly opening the breaker).
func (p *peer) failure(err error) {
	p.failures.Add(1)
	p.noteErr(err)
	p.br.Failure()
	p.publishState()
}

// Router is the node-local view of the fleet: the ring, every remote
// peer's breaker/health state, and the transport machinery. Safe for
// concurrent use. Create with New, Start the prober, Close on shutdown.
type Router struct {
	cfg   Config
	self  string
	ring  *ring
	peers map[string]*peer // remote peers only; self is served locally

	metrics *obs.Metrics
	hedges  *obs.Counter

	sf singleflight // collapses concurrent remote cache fetches per key

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// New builds a Router from cfg. The topology must be Enabled and valid
// (ParseTopology validates the flag form; programmatic topologies are
// re-validated here).
func New(cfg Config) (*Router, error) {
	top := cfg.Topology
	if !top.Enabled() {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	// Re-validate so programmatic construction gets the same guarantees.
	b, err := json.Marshal(top)
	if err != nil {
		return nil, err
	}
	if top, err = ParseTopology(b); err != nil {
		return nil, err
	}
	cfg.Topology = top
	cfg = cfg.withDefaults()

	names := make([]string, 0, len(top.Peers))
	for name := range top.Peers {
		names = append(names, name)
	}
	sort.Strings(names)
	vnodes := top.VNodes
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	r := &Router{
		cfg:     cfg,
		self:    top.Self,
		ring:    newRing(names, vnodes),
		peers:   make(map[string]*peer, len(top.Peers)-1),
		metrics: cfg.Metrics,
		closed:  make(chan struct{}),
	}
	if r.metrics != nil {
		r.hedges = r.metrics.Counter("cluster_hedges_total")
		r.metrics.Help("cluster_peer_state", "Per-peer circuit state: 0 open, 1 half-open, 2 closed.")
		r.metrics.Help("cluster_requests_total", "Forwarded peer round trips by outcome.")
		r.metrics.Help("cluster_fallback_total", "Requests served by local analysis after a peer failure, by reason.")
		r.metrics.Help("cluster_hedges_total", "Hedged second requests issued for remote cache reads.")
		r.metrics.Help("cluster_cachegets_total", "Remote cache fetch attempts by outcome.")
	}
	for name, u := range top.Peers {
		if name == top.Self {
			continue
		}
		p := &peer{
			name:     name,
			url:      strings.TrimSuffix(u, "/"),
			br:       newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			inflight: make(chan struct{}, cfg.MaxPeerInFlight),
		}
		if r.metrics != nil {
			p.state = r.metrics.Gauge(fmt.Sprintf("cluster_peer_state{peer=%q}", name))
		}
		p.publishState()
		r.peers[name] = p
	}
	return r, nil
}

// Self reports this node's name.
func (r *Router) Self() string { return r.self }

// Peers reports the remote peer names, sorted.
func (r *Router) Peers() []string {
	names := make([]string, 0, len(r.peers))
	for name := range r.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Owner reports the ring owner for a content-hash key.
func (r *Router) Owner(key string) string { return r.ring.owner(key) }

// Route resolves the owner for key: ok is true only when the owner is a
// remote peer whose circuit currently admits a request (closed, or
// half-open with this request as the trial). A false return means "serve
// locally" — the caller needs no further cluster involvement.
func (r *Router) Route(key string) (string, bool) {
	owner := r.ring.owner(key)
	if owner == r.self {
		return owner, false
	}
	p, ok := r.peers[owner]
	if !ok {
		return owner, false
	}
	if !p.br.Allow() {
		p.publishState()
		return owner, false
	}
	p.publishState()
	return owner, true
}

// CountFallback publishes one local-fallback decision by reason; the
// server calls it whenever a peer failure mode lands a request back on
// the local analysis path.
func (r *Router) CountFallback(reason string) {
	if r.metrics != nil {
		r.metrics.Counter(fmt.Sprintf("cluster_fallback_total{reason=%q}", reason)).Inc()
	}
}

// countRequest publishes one peer round-trip outcome.
func (r *Router) countRequest(peerName, outcome string) {
	if r.metrics != nil {
		r.metrics.Counter(fmt.Sprintf("cluster_requests_total{peer=%q,outcome=%q}", peerName, outcome)).Inc()
	}
}

func (r *Router) countCacheGet(outcome string) {
	if r.metrics != nil {
		r.metrics.Counter(fmt.Sprintf("cluster_cachegets_total{outcome=%q}", outcome)).Inc()
	}
}

// DegradedFactor reports how much of the remote fleet is currently
// unreachable, as a Retry-After scale: 1.0 with every circuit closed,
// rising to 2.0 with every remote peer open. The server stretches shed
// guidance by it — when the owning peers are down this node is absorbing
// their load, so clients should back off proportionally.
func (r *Router) DegradedFactor() float64 {
	if len(r.peers) == 0 {
		return 1
	}
	open := 0
	for _, p := range r.peers {
		if p.br.State() == StateOpen {
			open++
		}
	}
	return 1 + float64(open)/float64(len(r.peers))
}

// Snapshot is the /debug/statusz peer table.
type Snapshot struct {
	Self  string         `json:"self"`
	Peers []PeerSnapshot `json:"peers"`
}

// PeerSnapshot is one remote peer's live state.
type PeerSnapshot struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	State       string `json:"state"` // closed, half-open, open
	Healthy     bool   `json:"healthy"`
	ConsecFails int    `json:"consec_fails,omitempty"`
	Forwards    int64  `json:"forwards"`
	Failures    int64  `json:"failures"`
	CacheGets   int64  `json:"cache_gets"`
	CacheHits   int64  `json:"cache_hits"`
	LastError   string `json:"last_error,omitempty"`
}

// Snapshot reports the live peer table, sorted by name.
func (r *Router) Snapshot() Snapshot {
	s := Snapshot{Self: r.self}
	for _, name := range r.Peers() {
		p := r.peers[name]
		ps := PeerSnapshot{
			Name:        name,
			URL:         p.url,
			State:       p.br.State().String(),
			Healthy:     p.healthy.Load(),
			ConsecFails: p.br.ConsecFails(),
			Forwards:    p.forwards.Load(),
			Failures:    p.failures.Load(),
			CacheGets:   p.fetches.Load(),
			CacheHits:   p.cacheOK.Load(),
		}
		if e := p.lastErr.Load(); e != nil {
			ps.LastError = *e
		}
		s.Peers = append(s.Peers, ps)
	}
	return s
}

// Start launches the background health prober (no-op when ProbeInterval
// is negative or the fleet has no remote peers).
func (r *Router) Start() {
	if r.cfg.ProbeInterval < 0 || len(r.peers) == 0 {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.closed:
				return
			case <-t.C:
				r.ProbeOnce()
			}
		}
	}()
}

// Close stops the prober and waits for it. Idempotent.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.closed) })
	r.wg.Wait()
}
