package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// HashKey is the routing key for a program: the hex sha256 of its source,
// the same content hash progcache and factcache key on, so the ring owner
// is exactly the node whose caches are warm for that program.
func HashKey(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// ring is a consistent-hash ring over peer names with virtual nodes.
// Points are the first 8 bytes of sha256("name#i"); a key hashes the same
// way and is owned by the first point clockwise. Immutable after build.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	name string
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

func newRing(names []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*vnodes)}
	for _, name := range names {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", name, i)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so every node sorts identically.
		return r.points[i].name < r.points[j].name
	})
	return r
}

// owner reports the peer owning key (first point at or after the key's
// hash, wrapping).
func (r *ring) owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].name
}
