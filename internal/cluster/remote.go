package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"determinacy/internal/guard/faultinject"
)

// Fetch consults the owning peer for the raw framed fact-cache records of
// keyID (a factcache key id). routeKey is the bare source hash — the same
// key /v1/analyze forwarding shards on — so the lookup lands on the node
// that analyzed the program and therefore holds its facts (an empty
// routeKey falls back to keyID). Fetch structurally implements
// factcache.Remote, so a Router plugs straight into Cache.WithRemote.
//
// The read is idempotent, so it is hedged: if the first attempt has not
// answered within HedgeDelay, a second identical request races it and the
// first response wins (cluster_hedges_total counts the extra requests).
// Returned bytes are NOT validated here — factcache unframes and
// CRC-checks every record on import, so a peer serving bit-flipped or
// version-skewed records is discarded there, counted by reason, and the
// program is analyzed locally.
func (r *Router) Fetch(keyID, routeKey string) (data []byte, ok bool) {
	if routeKey == "" {
		routeKey = keyID
	}
	owner := r.ring.owner(routeKey)
	if owner == r.self {
		return nil, false
	}
	p, pok := r.peers[owner]
	if !pok {
		return nil, false
	}
	// Collapse concurrent local misses for the same key into one peer
	// round trip (with owner routing this is the cluster-wide singleflight
	// for the warm path: the owner compiles once, everyone fetches once).
	return r.sf.Do(keyID, func() (data []byte, ok bool) {
		if !p.br.Allow() {
			p.publishState()
			r.countCacheGet("breaker-open")
			return nil, false
		}
		p.publishState()
		defer func() {
			if v := recover(); v != nil {
				p.failure(fmt.Errorf("cacheget panic: %v", v))
				r.countCacheGet("panic")
				data, ok = nil, false
			}
		}()
		if faultinject.Armed() {
			faultinject.Hit(faultinject.SiteClusterCacheGet)
		}
		p.fetches.Add(1)
		data, status, err := r.hedgedGet(p, CachePath+"?key="+url.QueryEscape(keyID))
		switch {
		case err != nil:
			p.failure(err)
			r.countCacheGet("error")
			return nil, false
		case status == http.StatusOK:
			p.success()
			p.cacheOK.Add(1)
			r.countCacheGet("hit")
			return data, true
		case status == http.StatusNotFound:
			// A clean miss: the peer is healthy, it just has no facts yet.
			p.success()
			r.countCacheGet("miss")
			return nil, false
		default:
			p.failure(fmt.Errorf("cacheget: HTTP %d", status))
			r.countCacheGet("error")
			return nil, false
		}
	})
}

type hedgeResult struct {
	data   []byte
	status int
	err    error
}

// hedgedGet races up to two identical GETs against the peer, separated by
// HedgeDelay, under one CacheTimeout budget. First completed attempt wins
// (success or failure — the loser is canceled either way; with per-request
// fault injection on the wire, a hedge's clean failure racing a slow
// winner is fine: the caller treats any error as a local miss).
func (r *Router) hedgedGet(p *peer, path string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.CacheTimeout)
	defer cancel()

	results := make(chan hedgeResult, 2)
	attempt := func() {
		data, status, err := r.getOnce(ctx, p, path)
		results <- hedgeResult{data, status, err}
	}
	go attempt()

	launched := 1
	if r.cfg.HedgeDelay >= 0 {
		select {
		case res := <-results:
			return res.data, res.status, res.err
		case <-time.After(r.cfg.HedgeDelay):
			if r.hedges != nil {
				r.hedges.Inc()
			}
			go attempt()
			launched = 2
		}
	}
	// Prefer the first success; if every launched attempt fails, report
	// the first failure.
	var firstErr *hedgeResult
	for i := 0; i < launched; i++ {
		res := <-results
		if res.err == nil {
			return res.data, res.status, nil
		}
		if firstErr == nil {
			c := res
			firstErr = &c
		}
	}
	return firstErr.data, firstErr.status, firstErr.err
}

func (r *Router) getOnce(ctx context.Context, p *peer, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+path, nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set(ForwardedHeader, r.self)
	resp, err := r.do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxRelayBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if int64(len(buf)) > r.cfg.MaxRelayBytes {
		return nil, 0, fmt.Errorf("cacheget: response exceeds %d bytes", r.cfg.MaxRelayBytes)
	}
	return buf, resp.StatusCode, nil
}
