// Package chaos is a seeded flaky net layer for cluster tests: an
// http.RoundTripper wrapper that injects latency, connection drops,
// mid-body disconnects, and payload bit-flips deterministically from a
// seed, plus per-host kill/revive switches that simulate a peer process
// dying and coming back. It lives in the production tree (not _test.go)
// so the server campaign, clitest, and diffcheck can all drive the same
// faults, but nothing outside tests imports it.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrDropped is the connection-level error injected for a dropped
// request, standing in for ECONNREFUSED / RST on a real network.
var ErrDropped = errors.New("chaos: connection dropped")

// Config sets the per-request fault probabilities, each in [0,1] and
// checked independently in order: kill, drop, latency, partial, corrupt.
type Config struct {
	Seed uint64
	// DropProb fails the round trip outright with ErrDropped.
	DropProb float64
	// LatencyProb delays the round trip by up to MaxLatency (uniform).
	LatencyProb float64
	MaxLatency  time.Duration
	// PartialProb truncates the response body partway and ends it with
	// an io.ErrUnexpectedEOF, simulating a peer hanging up mid-body.
	PartialProb float64
	// CorruptProb flips one bit of the response body, simulating wire or
	// peer-side corruption that CRC validation must catch.
	CorruptProb float64
}

// Transport wraps a base RoundTripper with seeded fault injection. Safe
// for concurrent use; the fault stream is deterministic for a given seed
// and sequence of calls (concurrency interleaves draws, so campaigns
// assert on invariants, not exact fault placement).
type Transport struct {
	Base http.RoundTripper
	cfg  Config

	mu     sync.Mutex
	rng    uint64
	killed map[string]bool
}

// New builds a chaos transport over base (nil = http.DefaultTransport).
func New(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{Base: base, cfg: cfg, rng: cfg.Seed, killed: make(map[string]bool)}
}

// splitmix64 — the same generator the fault campaigns use.
func (t *Transport) next() uint64 {
	t.mu.Lock()
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	t.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws a uniform float in [0,1).
func (t *Transport) roll() float64 {
	return float64(t.next()>>11) / (1 << 53)
}

// Kill makes every request to host fail as dropped until Revive, the
// in-process stand-in for SIGKILLing a peer.
func (t *Transport) Kill(host string) {
	t.mu.Lock()
	t.killed[host] = true
	t.mu.Unlock()
}

// Revive undoes Kill.
func (t *Transport) Revive(host string) {
	t.mu.Lock()
	delete(t.killed, host)
	t.mu.Unlock()
}

func (t *Transport) isKilled(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed[host]
}

// RoundTrip applies the armed faults, then delegates to Base for the
// surviving requests.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.isKilled(req.URL.Host) {
		return nil, fmt.Errorf("chaos: host %s is down: %w", req.URL.Host, ErrDropped)
	}
	if t.cfg.DropProb > 0 && t.roll() < t.cfg.DropProb {
		return nil, ErrDropped
	}
	if t.cfg.LatencyProb > 0 && t.roll() < t.cfg.LatencyProb && t.cfg.MaxLatency > 0 {
		delay := time.Duration(t.next() % uint64(t.cfg.MaxLatency))
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	resp, err := t.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.cfg.PartialProb > 0 && t.roll() < t.cfg.PartialProb {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = &partialBody{data: body[:len(body)/2]}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	if t.cfg.CorruptProb > 0 && t.roll() < t.cfg.CorruptProb {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			i := int(t.next() % uint64(len(body)))
			body[i] ^= 1 << (t.next() % 8)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		return resp, nil
	}
	return resp, nil
}

// partialBody serves a prefix then fails like a torn connection.
type partialBody struct {
	data []byte
	off  int
}

func (b *partialBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *partialBody) Close() error { return nil }
