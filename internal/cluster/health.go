package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// probeTimeout bounds one /readyz round trip; probes are cheap and a peer
// that cannot answer readiness in a second is not a peer worth routing to.
const probeTimeout = time.Second

// ProbeOnce health-checks every remote peer concurrently and feeds the
// results into the per-peer breakers. An open circuit is probed too —
// Allow admits the probe as the half-open trial once the cooldown
// elapses, which is exactly how a recovered peer's circuit re-closes
// without gambling live traffic on it.
func (r *Router) ProbeOnce() {
	var wg sync.WaitGroup
	for _, p := range r.peers {
		if !p.br.Allow() {
			p.publishState()
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			r.probe(p)
		}(p)
	}
	wg.Wait()
}

func (r *Router) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/readyz", nil)
	if err != nil {
		p.healthy.Store(false)
		p.failure(err)
		return
	}
	resp, err := r.do(req)
	if err != nil {
		p.healthy.Store(false)
		p.failure(err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	// A 503 from /readyz is a peer that is up but draining or tripped; it
	// answers traffic with 503s too, so treat it as a breaker failure and
	// keep routing around it until it reports ready again.
	if resp.StatusCode != http.StatusOK {
		p.healthy.Store(false)
		p.failure(fmt.Errorf("readyz: HTTP %d", resp.StatusCode))
		return
	}
	p.success()
}

// do issues one round trip through the configured transport. Responses
// are closed by the caller.
func (r *Router) do(req *http.Request) (*http.Response, error) {
	return r.cfg.Transport.RoundTrip(req)
}
