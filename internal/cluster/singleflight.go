package cluster

import "sync"

// singleflight collapses concurrent calls with the same key into one
// execution whose result every waiter shares. Used on the remote cache
// fetch path so a stampede of local misses for one viral program issues
// a single peer round trip from this node.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	data []byte
	ok   bool
}

// Do runs fn once per concurrent key; duplicate callers block until the
// winner finishes and receive its result.
func (s *singleflight) Do(key string, fn func() ([]byte, bool)) ([]byte, bool) {
	s.mu.Lock()
	if s.calls == nil {
		s.calls = make(map[string]*sfCall)
	}
	if c, ok := s.calls[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.data, c.ok
	}
	c := &sfCall{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.calls, key)
		s.mu.Unlock()
		close(c.done)
	}()
	c.data, c.ok = fn()
	return c.data, c.ok
}
