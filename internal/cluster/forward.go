package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"determinacy/internal/guard/faultinject"
)

// Fallback reasons, the labels of cluster_fallback_total{reason}. Every
// one names a peer failure mode that landed a request back on the local
// analysis path.
const (
	ReasonBreakerOpen  = "breaker-open"  // owner's circuit rejected the request
	ReasonBusy         = "busy"          // owner's per-peer in-flight cap reached
	ReasonTimeout      = "timeout"       // forward round trip exceeded ForwardTimeout
	ReasonRefused      = "refused"       // connection-level failure (refused, reset, drop)
	ReasonDisconnect   = "disconnect"    // peer hung up mid-body
	ReasonOversize     = "oversize"      // peer response exceeded MaxRelayBytes
	ReasonGarbage      = "garbage"       // peer answered bytes that do not decode
	ReasonPeerShed     = "peer-shed"     // owner answered a 429; serve locally instead
	ReasonPeerDraining = "peer-draining" // owner answered 503 (draining or tripped)
	ReasonPeer5xx      = "peer-5xx"      // owner answered another 5xx
	ReasonPanic        = "panic"         // forward path panicked (fault injection)
	ReasonDraining     = "draining"      // this node is draining; no new forwards
)

// PeerError is a classified forward failure. The server maps it straight
// to a local fallback, counting cluster_fallback_total{reason=Reason}.
type PeerError struct {
	Peer   string
	Reason string
	Err    error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s: %s: %v", e.Peer, e.Reason, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Relay is a buffered peer response fit to return to the client after the
// server re-validates it (decode → re-encode, so a lying peer can inject
// at most a well-formed response, never raw bytes).
type Relay struct {
	Status int
	Body   []byte
}

// relayable reports whether a peer status is returned to the client
// rather than triggering a local fallback: success and the deterministic
// request-shaped 4xxs. 429/503/5xx mean "this peer can't take it" — the
// local node can, so it does.
func relayable(status int) bool {
	switch status {
	case http.StatusOK, http.StatusBadRequest,
		http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

const (
	forwardBackoffBase = 25 * time.Millisecond
	forwardAttempts    = 2 // first try + one retry for connection-level failures
)

// Forward relays a non-streaming /v1/analyze body to peerName and buffers
// the full response. The caller must have gotten peerName from a true
// Route (which admitted the request through the peer's breaker); Forward
// always settles that admission with a breaker Success or Failure.
//
// Connection-level failures (refused, reset, dropped before any response
// byte) are retried once with exponential backoff and jitter; timeouts
// and mid-body disconnects are not (the budget is spent / the POST may
// have side effects in flight). Any failure returns a *PeerError whose
// Reason is a cluster_fallback_total label.
func (r *Router) Forward(ctx context.Context, peerName, path string, body []byte, hdr http.Header) (rel *Relay, perr *PeerError) {
	p, ok := r.peers[peerName]
	if !ok {
		return nil, &PeerError{Peer: peerName, Reason: ReasonRefused, Err: errors.New("unknown peer")}
	}
	select {
	case p.inflight <- struct{}{}:
		defer func() { <-p.inflight }()
	default:
		// Over the per-peer cap: nothing was tried, so release the breaker
		// admission without evidence and serve locally.
		p.br.Release()
		r.countRequest(peerName, ReasonBusy)
		return nil, &PeerError{Peer: peerName, Reason: ReasonBusy, Err: errors.New("peer in-flight cap reached")}
	}

	// Everything below runs inside a recovery boundary: an injected (or
	// real) panic on the forward path becomes a classified failure and a
	// local fallback, never a dropped request.
	defer func() {
		if v := recover(); v != nil {
			err := fmt.Errorf("forward panic: %v", v)
			p.failure(err)
			r.countRequest(peerName, ReasonPanic)
			rel, perr = nil, &PeerError{Peer: peerName, Reason: ReasonPanic, Err: err}
		}
	}()
	if faultinject.Armed() {
		faultinject.Hit(faultinject.SiteClusterForward)
	}

	ctx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
	defer cancel()

	var lastErr *PeerError
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			backoff := forwardBackoffBase << (attempt - 1)
			backoff += time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-ctx.Done():
				attempt = forwardAttempts // budget spent
				continue
			case <-time.After(backoff):
			}
		}
		rel, lastErr = r.forwardOnce(ctx, p, path, body, hdr)
		if lastErr == nil {
			p.forwards.Add(1)
			p.success()
			r.countRequest(peerName, "relayed")
			return rel, nil
		}
		p.forwards.Add(1)
		if lastErr.Reason != ReasonRefused {
			break
		}
	}
	// Settle the breaker: a shedding peer is alive (success resets the
	// failure streak); every other failure mode counts against it.
	if lastErr.Reason == ReasonPeerShed {
		p.success()
	} else {
		p.failure(lastErr.Err)
	}
	r.countRequest(peerName, lastErr.Reason)
	return nil, lastErr
}

func (r *Router) forwardOnce(ctx context.Context, p *peer, path string, body []byte, hdr http.Header) (*Relay, *PeerError) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, &PeerError{Peer: p.name, Reason: ReasonRefused, Err: err}
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, r.self)

	resp, err := r.do(req)
	if err != nil {
		reason := ReasonRefused
		if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
			reason = ReasonTimeout
		}
		return nil, &PeerError{Peer: p.name, Reason: reason, Err: err}
	}
	defer resp.Body.Close()

	buf, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxRelayBytes+1))
	if err != nil {
		reason := ReasonDisconnect
		if ctx.Err() != nil {
			reason = ReasonTimeout
		}
		return nil, &PeerError{Peer: p.name, Reason: reason, Err: err}
	}
	if int64(len(buf)) > r.cfg.MaxRelayBytes {
		return nil, &PeerError{Peer: p.name, Reason: ReasonOversize,
			Err: fmt.Errorf("peer response exceeds %d bytes", r.cfg.MaxRelayBytes)}
	}

	switch {
	case relayable(resp.StatusCode):
		// Verify the peer's body digest over the bytes as received: a bit
		// flip in transit that still parses as JSON downstream is garbage
		// all the same, and must fall back to local analysis.
		if want := resp.Header.Get(DigestHeader); want != "" {
			sum := sha256.Sum256(buf)
			if got := hex.EncodeToString(sum[:]); got != want {
				return nil, &PeerError{Peer: p.name, Reason: ReasonGarbage,
					Err: fmt.Errorf("relay digest mismatch: body %s, header %s", got[:12], want[:min(len(want), 12)])}
			}
		}
		return &Relay{Status: resp.StatusCode, Body: buf}, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return nil, &PeerError{Peer: p.name, Reason: ReasonPeerShed,
			Err: fmt.Errorf("peer shed with HTTP 429")}
	case resp.StatusCode == http.StatusServiceUnavailable:
		return nil, &PeerError{Peer: p.name, Reason: ReasonPeerDraining,
			Err: fmt.Errorf("peer answered HTTP 503")}
	default:
		return nil, &PeerError{Peer: p.name, Reason: ReasonPeer5xx,
			Err: fmt.Errorf("peer answered HTTP %d", resp.StatusCode)}
	}
}

// NoteRelayGarbage records that a relayed body failed to decode on this
// node: the peer is answering garbage, which counts against its circuit
// exactly like a transport failure.
func (r *Router) NoteRelayGarbage(peerName string, err error) {
	if p, ok := r.peers[peerName]; ok {
		p.failure(err)
	}
	r.countRequest(peerName, ReasonGarbage)
}
