package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"determinacy/internal/obs"
)

func mustTopology(t *testing.T, self string, peers map[string]string) Topology {
	t.Helper()
	top := Topology{Self: self, Peers: peers}
	b, err := topologyJSON(top)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTopology(b)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

func topologyJSON(t Topology) ([]byte, error) {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf(`{"self":%q,"peers":{`, t.Self))
	first := true
	for name, u := range t.Peers {
		if !first {
			sb.WriteString(",")
		}
		first = false
		sb.WriteString(fmt.Sprintf("%q:%q", name, u))
	}
	sb.WriteString("}}")
	return []byte(sb.String()), nil
}

// testRouter builds a Router with the prober disabled and fast timeouts.
func testRouter(t *testing.T, self string, peers map[string]string, tweak func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Topology:       mustTopology(t, self, peers),
		Metrics:        obs.NewMetrics(),
		ProbeInterval:  -1,
		ForwardTimeout: 2 * time.Second,
		CacheTimeout:   time.Second,
		HedgeDelay:     -1,
		BreakerCooldown: 50 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestParseTopologyValidation(t *testing.T) {
	bad := []string{
		`{`,
		`{}`,
		`{"self":"a"}`,
		`{"self":"a","peers":{}}`,
		`{"self":"a","peers":{"b":"http://x:1"}}`,                      // self missing from peers
		`{"self":"a","peers":{"a":"ftp://x:1"}}`,                       // bad scheme
		`{"self":"a","peers":{"a":"http://"}}`,                         // no host
		`{"self":"a","peers":{"a":"http://x:1","bad name":"http://y"}}`, // name charset
		`{"self":"a","peers":{"a":"http://x:1"},"vnodes":-1}`,
		`{"self":"a","peers":{"a":"http://x:1"},"extra":1}`, // unknown field
		`{"self":"a b","peers":{"a b":"http://x:1"}}`,
	}
	for _, s := range bad {
		if _, err := ParseTopology([]byte(s)); err == nil {
			t.Errorf("ParseTopology(%s): expected error", s)
		}
	}
	good := `{"self":"a","vnodes":8,"peers":{"a":"http://x:1","b-2":"https://y.example:8420"}}`
	top, err := ParseTopology([]byte(good))
	if err != nil {
		t.Fatalf("ParseTopology(%s): %v", good, err)
	}
	if !top.Enabled() || top.VNodes != 8 || len(top.Peers) != 2 {
		t.Fatalf("unexpected topology: %+v", top)
	}
	if _, err := ParseTopologyFlag(""); err != nil {
		t.Fatalf("empty flag should be a valid no-cluster: %v", err)
	}
	if _, err := ParseTopologyFlag("@/no/such/peers.json"); err == nil {
		t.Fatal("missing @file should error")
	}
}

// TestRingDeterminismAndCoverage pins that every node computes the same
// owner for every key, and that ownership spreads across all peers.
func TestRingDeterminismAndCoverage(t *testing.T) {
	names := []string{"a", "b", "c"}
	r1 := newRing(names, 64)
	r2 := newRing([]string{"c", "a", "b"}, 64) // order must not matter post-sort
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := HashKey(fmt.Sprintf("var x = %d;", i))
		o1, o2 := r1.owner(key), r2.owner(key)
		if o1 != o2 {
			t.Fatalf("ring disagreement for key %s: %s vs %s", key, o1, o2)
		}
		counts[o1]++
	}
	for _, name := range names {
		if counts[name] < 300 { // perfectly even would be 1000 each
			t.Errorf("peer %s owns only %d/3000 keys — ring badly skewed: %v", name, counts[name], counts)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 30*time.Millisecond)
	if !b.Allow() || b.State() != StateClosed {
		t.Fatal("new breaker should be closed and admitting")
	}
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("two failures under threshold 3 should stay closed")
	}
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("third consecutive failure should open")
	}
	if b.Allow() {
		t.Fatal("open breaker must reject before cooldown")
	}
	time.Sleep(40 * time.Millisecond)
	if b.State() != StateHalfOpen {
		t.Fatal("cooldown elapsed: breaker should read half-open")
	}
	if !b.Allow() {
		t.Fatal("half-open must admit one trial")
	}
	if b.Allow() {
		t.Fatal("half-open must admit only one trial at a time")
	}
	b.Failure() // trial failed → re-open
	if b.Allow() {
		t.Fatal("failed trial must re-open the circuit")
	}
	time.Sleep(40 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second trial after cooldown")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("successful trial must re-close")
	}
	// Success resets the consecutive-failure streak.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("failure streak must reset on success")
	}
}

func TestSingleflightCollapses(t *testing.T) {
	var sf singleflight
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, ok := sf.Do("k", func() ([]byte, bool) {
				calls.Add(1)
				<-release
				return []byte("v"), true
			})
			if !ok || string(data) != "v" {
				t.Errorf("singleflight result: %q %v", data, ok)
			}
		}()
	}
	// Give the goroutines a moment to pile onto the key, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
}

// TestForwardAndFallbackClassification drives Forward against live and
// dead peers and checks the breaker, classification, and relay behavior.
func TestForwardAndFallbackClassification(t *testing.T) {
	var hits atomic.Int64
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		hits.Add(1)
		if req.Header.Get(ForwardedHeader) == "" {
			t.Error("forwarded request missing loop-prevention header")
		}
		switch req.URL.Path {
		case "/ok":
			w.Write([]byte(`{"name":"x"}`))
		case "/shed":
			w.WriteHeader(http.StatusTooManyRequests)
		case "/boom":
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer peerSrv.Close()

	r := testRouter(t, "a", map[string]string{"a": "http://unused:1", "b": peerSrv.URL}, nil)

	rel, perr := r.Forward(context.Background(), "b", "/ok", []byte(`{}`), nil)
	if perr != nil {
		t.Fatalf("forward to live peer: %v", perr)
	}
	if rel.Status != 200 || string(rel.Body) != `{"name":"x"}` {
		t.Fatalf("unexpected relay: %d %q", rel.Status, rel.Body)
	}

	if _, perr = r.Forward(context.Background(), "b", "/shed", nil, nil); perr == nil || perr.Reason != ReasonPeerShed {
		t.Fatalf("429 should classify as peer-shed, got %v", perr)
	}
	if _, perr = r.Forward(context.Background(), "b", "/boom", nil, nil); perr == nil || perr.Reason != ReasonPeer5xx {
		t.Fatalf("500 should classify as peer-5xx, got %v", perr)
	}

	// A shedding peer does not open the circuit; transport failures do.
	snap := r.Snapshot()
	if len(snap.Peers) != 1 || snap.Peers[0].State != "closed" {
		t.Fatalf("peer b should still be closed: %+v", snap.Peers)
	}

	// Dead peer: connection-level failures retry once, then open after
	// BreakerThreshold forwards.
	peerSrv.Close()
	for i := 0; i < 3; i++ {
		if _, perr = r.Forward(context.Background(), "b", "/ok", nil, nil); perr == nil || perr.Reason != ReasonRefused {
			t.Fatalf("dead peer should classify refused, got %v", perr)
		}
	}
	if st := r.peers["b"].br.State(); st != StateOpen {
		t.Fatalf("three consecutive refused forwards should open the circuit, got %v", st)
	}
	if _, ok := r.Route("anything"); ok {
		// Route may pick peer a (unroutable) or b (open): either way the
		// answer for a remote route through b must be false now.
		if owner := r.Owner("anything"); owner == "b" {
			t.Fatal("Route admitted a request through an open circuit")
		}
	}
}

// TestProbeReclosesCircuit kills a peer, lets the breaker open, revives
// the peer, and checks ProbeOnce re-closes the circuit.
func TestProbeReclosesCircuit(t *testing.T) {
	var up atomic.Bool
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !up.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer peerSrv.Close()

	r := testRouter(t, "a", map[string]string{"a": "http://unused:1", "b": peerSrv.URL}, nil)
	p := r.peers["b"]

	r.ProbeOnce()
	r.ProbeOnce()
	r.ProbeOnce()
	if st := p.br.State(); st != StateOpen {
		t.Fatalf("three failed probes should open the circuit, got %v", st)
	}
	up.Store(true)
	time.Sleep(60 * time.Millisecond) // past cooldown
	r.ProbeOnce()
	if st := p.br.State(); st != StateClosed {
		t.Fatalf("successful probe after recovery should re-close, got %v", st)
	}
	if !p.healthy.Load() {
		t.Fatal("peer should be marked healthy")
	}
}

// TestFetchHedgesSlowPeer pins the hedged cache read: a first attempt
// stuck past HedgeDelay triggers a second, and the fast answer wins.
func TestFetchHedgesSlowPeer(t *testing.T) {
	var calls atomic.Int64
	block := make(chan struct{})
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) == 1 {
			<-block // first request hangs until the test ends
		}
		w.Write([]byte("RECORDS"))
	}))
	defer peerSrv.Close()
	defer close(block)

	r := testRouter(t, "a", map[string]string{"a": "http://unused:1", "b": peerSrv.URL}, func(c *Config) {
		c.HedgeDelay = 20 * time.Millisecond
		c.CacheTimeout = 5 * time.Second
	})
	// Find a key owned by b so Fetch routes there.
	key := ""
	for i := 0; ; i++ {
		k := HashKey(fmt.Sprintf("prog-%d", i))
		if r.Owner(k) == "b" {
			key = k
			break
		}
	}
	data, ok := r.Fetch(key, key)
	if !ok || string(data) != "RECORDS" {
		t.Fatalf("hedged fetch: %q %v", data, ok)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("expected exactly one hedge (2 requests), got %d", n)
	}
	if v := r.metrics.Counter("cluster_hedges_total").Value(); v != 1 {
		t.Fatalf("cluster_hedges_total = %d, want 1", v)
	}
	// Keys owned by self never fetch.
	for i := 0; ; i++ {
		k := HashKey(fmt.Sprintf("self-%d", i))
		if r.Owner(k) == "a" {
			if _, ok := r.Fetch(k, k); ok {
				t.Fatal("self-owned key must not fetch remotely")
			}
			break
		}
	}
}

// TestDegradedFactor pins the shed-guidance scale: 1.0 with all circuits
// closed, 2.0 with every remote peer open.
func TestDegradedFactor(t *testing.T) {
	r := testRouter(t, "a", map[string]string{
		"a": "http://unused:1", "b": "http://unused:2", "c": "http://unused:3",
	}, nil)
	if f := r.DegradedFactor(); f != 1 {
		t.Fatalf("healthy fleet factor = %v, want 1", f)
	}
	for i := 0; i < 3; i++ {
		r.peers["b"].br.Failure()
	}
	if f := r.DegradedFactor(); f != 1.5 {
		t.Fatalf("one of two remote peers down: factor = %v, want 1.5", f)
	}
	for i := 0; i < 3; i++ {
		r.peers["c"].br.Failure()
	}
	if f := r.DegradedFactor(); f != 2 {
		t.Fatalf("all remote peers down: factor = %v, want 2", f)
	}
}
