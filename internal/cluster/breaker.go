package cluster

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// StateClosed admits requests; failures are counted.
	StateClosed State = iota
	// StateOpen rejects requests until the cooldown elapses.
	StateOpen
	// StateHalfOpen admits a single trial request; its outcome decides
	// whether the circuit re-closes or re-opens.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker: closed → open after threshold
// consecutive failures → half-open after cooldown, where exactly one
// in-flight trial is admitted and its outcome decides the next state.
// Health probes and live requests share one breaker, so a recovered peer
// re-closes via the prober without risking client traffic.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	trial    bool      // a half-open trial is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed now. In half-open it admits
// exactly one trial; callers MUST follow an admitted request with Success
// or Failure (the trial slot is otherwise released by either call).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a good round trip: resets the failure count and closes
// the circuit from half-open.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.trial = false
	b.state = StateClosed
}

// Failure records a bad round trip: re-opens from half-open immediately,
// opens from closed once the consecutive-failure threshold is reached.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	switch b.state {
	case StateHalfOpen:
		b.state = StateOpen
		b.openedAt = time.Now()
		b.fails = b.threshold
	case StateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = StateOpen
			b.openedAt = time.Now()
		}
	default: // already open (e.g. a straggler finishing after the trip)
		b.openedAt = time.Now()
	}
}

// Release abandons an admitted request without evidence either way (e.g.
// rejected by a local cap before any bytes were sent): it clears a
// half-open trial slot without changing state.
func (b *breaker) Release() {
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// State reports the current position (open reads as half-open once the
// cooldown has elapsed, since the next Allow would admit a trial).
func (b *breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && time.Since(b.openedAt) >= b.cooldown {
		return StateHalfOpen
	}
	return b.state
}

// ConsecFails reports the consecutive-failure count (threshold when open).
func (b *breaker) ConsecFails() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
