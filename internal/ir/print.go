package ir

import (
	"fmt"
	"strings"
)

// String renders a module as readable IR, primarily for tests and the
// detrun -dump-ir flag.
func (m *Module) String() string {
	var b strings.Builder
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "func %s#%d(%s) slots=%v\n", name(f), f.Index, strings.Join(f.Params, ", "), f.SlotNames)
		printBlock(&b, f.Body, 1)
	}
	return b.String()
}

func name(f *Function) string {
	if f.Name == "" {
		return "<anon>"
	}
	return f.Name
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	if blk == nil {
		return
	}
	ind := strings.Repeat("  ", depth)
	for _, in := range blk.Instrs {
		fmt.Fprintf(b, "%s%4d| %s\n", ind, in.IID(), InstrString(in))
		switch in := in.(type) {
		case *If:
			printBlock(b, in.Then, depth+1)
			if in.Else != nil {
				fmt.Fprintf(b, "%selse:\n", ind)
				printBlock(b, in.Else, depth+1)
			}
		case *While:
			fmt.Fprintf(b, "%scond:\n", ind)
			printBlock(b, in.CondBlock, depth+1)
			fmt.Fprintf(b, "%sbody:\n", ind)
			printBlock(b, in.Body, depth+1)
			if in.Update != nil {
				fmt.Fprintf(b, "%supdate:\n", ind)
				printBlock(b, in.Update, depth+1)
			}
		case *ForIn:
			printBlock(b, in.Body, depth+1)
		case *Try:
			printBlock(b, in.Body, depth+1)
			if in.Catch != nil {
				fmt.Fprintf(b, "%scatch %s:\n", ind, in.CatchVar.Name)
				printBlock(b, in.Catch, depth+1)
			}
			if in.Finally != nil {
				fmt.Fprintf(b, "%sfinally:\n", ind)
				printBlock(b, in.Finally, depth+1)
			}
		}
	}
}

// InstrString renders one instruction without its nested blocks.
func InstrString(in Instr) string {
	switch in := in.(type) {
	case *Const:
		return fmt.Sprintf("r%d = const %s", in.Dst, litString(in.Val))
	case *Move:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.Src)
	case *LoadVar:
		return fmt.Sprintf("r%d = var %s@%d.%d", in.Dst, in.Var.Name, in.Var.Hops, in.Var.Slot)
	case *StoreVar:
		return fmt.Sprintf("var %s@%d.%d = r%d", in.Var.Name, in.Var.Hops, in.Var.Slot, in.Src)
	case *LoadGlobal:
		return fmt.Sprintf("r%d = global %s", in.Dst, in.Name)
	case *StoreGlobal:
		return fmt.Sprintf("global %s = r%d", in.Name, in.Src)
	case *MakeClosure:
		return fmt.Sprintf("r%d = closure %s#%d", in.Dst, name(in.Fn), in.Fn.Index)
	case *MakeObject:
		var ps []string
		for _, p := range in.Props {
			ps = append(ps, fmt.Sprintf("%s: r%d", p.Key, p.Val))
		}
		return fmt.Sprintf("r%d = object {%s}", in.Dst, strings.Join(ps, ", "))
	case *MakeArray:
		var es []string
		for _, e := range in.Elems {
			es = append(es, fmt.Sprintf("r%d", e))
		}
		return fmt.Sprintf("r%d = array [%s]", in.Dst, strings.Join(es, ", "))
	case *GetField:
		return fmt.Sprintf("r%d = r%d.%s", in.Dst, in.Obj, in.Name)
	case *GetProp:
		return fmt.Sprintf("r%d = r%d[r%d]", in.Dst, in.Obj, in.Prop)
	case *SetField:
		return fmt.Sprintf("r%d.%s = r%d", in.Obj, in.Name, in.Src)
	case *SetProp:
		return fmt.Sprintf("r%d[r%d] = r%d", in.Obj, in.Prop, in.Src)
	case *DelField:
		return fmt.Sprintf("r%d = delete r%d.%s", in.Dst, in.Obj, in.Name)
	case *DelProp:
		return fmt.Sprintf("r%d = delete r%d[r%d]", in.Dst, in.Obj, in.Prop)
	case *BinOp:
		return fmt.Sprintf("r%d = r%d %s r%d", in.Dst, in.L, in.Op, in.R)
	case *UnOp:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.X)
	case *Call:
		return fmt.Sprintf("r%d = call r%d this=r%d args=%s", in.Dst, in.Fn, in.This, regList(in.Args))
	case *New:
		return fmt.Sprintf("r%d = new r%d args=%s", in.Dst, in.Fn, regList(in.Args))
	case *If:
		return fmt.Sprintf("if r%d", in.Cond)
	case *While:
		kind := "while"
		if in.PostTest {
			kind = "do-while"
		}
		return fmt.Sprintf("%s r%d", kind, in.Cond)
	case *ForIn:
		if in.Global {
			return fmt.Sprintf("for %s in r%d", in.TargetGlobal, in.Obj)
		}
		return fmt.Sprintf("for %s in r%d", in.Target.Name, in.Obj)
	case *Return:
		if in.Src == NoReg {
			return "return"
		}
		return fmt.Sprintf("return r%d", in.Src)
	case *Throw:
		return fmt.Sprintf("throw r%d", in.Src)
	case *Break:
		return "break"
	case *Continue:
		return "continue"
	case *Try:
		return "try"
	default:
		return fmt.Sprintf("%T", in)
	}
}

func litString(l Literal) string {
	switch l.Kind {
	case LitUndefined:
		return "undefined"
	case LitNull:
		return "null"
	case LitBool:
		return fmt.Sprintf("%t", l.Bool)
	case LitNumber:
		return fmt.Sprintf("%g", l.Num)
	case LitString:
		return fmt.Sprintf("%q", l.Str)
	}
	return "?"
}

func regList(rs []Reg) string {
	var ss []string
	for _, r := range rs {
		ss = append(ss, fmt.Sprintf("r%d", r))
	}
	return "[" + strings.Join(ss, ", ") + "]"
}
