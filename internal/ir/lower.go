package ir

import (
	"fmt"

	"determinacy/internal/ast"
	"determinacy/internal/lexer"
	"determinacy/internal/parser"
)

// LowerError reports a construct that cannot be lowered to the IR.
type LowerError struct {
	Pos lexer.Pos
	Msg string
}

func (e *LowerError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lower translates a parsed program into an IR module.
func Lower(prog *ast.Program) (*Module, error) {
	m := &Module{File: prog.File, Source: prog.Source}
	l := &lowerer{mod: m}
	top := &Function{Index: 0, Name: "<toplevel>", ThisSlot: -1, SelfSlot: -1}
	m.Funcs = append(m.Funcs, top)
	err := l.catching(func() {
		sc := &fnScope{fn: top, slots: map[string]int{}, isTop: true}
		l.scopes = append(l.scopes, sc)
		top.Body = l.lowerBody(prog.Body, sc)
		l.scopes = l.scopes[:0]
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// MustLower is Lower but panics on error.
func MustLower(prog *ast.Program) *Module {
	m, err := Lower(prog)
	if err != nil {
		panic(err)
	}
	return m
}

// Compile parses and lowers source in one step.
func Compile(file, src string) (*Module, error) {
	prog, err := parser.Parse(file, src)
	if err != nil {
		return nil, err
	}
	return Lower(prog)
}

// MustCompile is Compile but panics on error.
func MustCompile(file, src string) *Module {
	m, err := Compile(file, src)
	if err != nil {
		panic(err)
	}
	return m
}

// LowerEval lowers eval'd source at runtime. The resulting function's Parent
// is caller, so free identifiers resolve through the caller's static scope
// chain. The function returns the value of its final top-level expression
// statement, matching eval's completion-value semantics for the common case.
//
// Deviations from full JavaScript, documented in DESIGN.md: var declarations
// inside eval'd code are scoped to the eval fragment rather than hoisted
// into the calling function.
func LowerEval(m *Module, src string, caller *Function) (*Function, error) {
	prog, err := parser.Parse("<eval>", src)
	if err != nil {
		return nil, err
	}
	l := &lowerer{mod: m}
	fn := &Function{
		Index:    len(m.Funcs),
		Name:     "<eval>",
		Parent:   caller,
		IsEval:   true,
		ThisSlot: -1,
		SelfSlot: -1,
	}
	m.Funcs = append(m.Funcs, fn)
	err = l.catching(func() {
		// Rebuild the lexical scope stack from the caller's Parent chain.
		var chain []*Function
		for f := caller; f != nil; f = f.Parent {
			chain = append(chain, f)
		}
		for i := len(chain) - 1; i >= 0; i-- {
			f := chain[i]
			sc := &fnScope{fn: f, slots: map[string]int{}, isTop: f.Parent == nil && f.Index == 0}
			for idx, name := range f.SlotNames {
				sc.slots[name] = idx
			}
			l.scopes = append(l.scopes, sc)
		}
		sc := &fnScope{fn: fn, slots: map[string]int{}, completion: true}
		l.scopes = append(l.scopes, sc)
		fn.Body = l.lowerBody(prog.Body, sc)
	})
	if err != nil {
		// Undo the speculative registration.
		m.Funcs = m.Funcs[:len(m.Funcs)-1]
		return nil, err
	}
	return fn, nil
}

// ---------------------------------------------------------------------------

type fnScope struct {
	fn    *Function
	slots map[string]int
	isTop bool
	// completion marks eval fragments: the final expression-statement value
	// is returned.
	completion bool
	compReg    Reg
}

type lowerer struct {
	mod    *Module
	scopes []*fnScope
	// loopDepth tracks lexical loop nesting within the current function so
	// emitted instructions can be marked reentrant.
	loopDepth int
	err       error
}

func (l *lowerer) catching(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*LowerError); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func (l *lowerer) fail(pos lexer.Pos, format string, args ...any) {
	panic(&LowerError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *lowerer) cur() *fnScope { return l.scopes[len(l.scopes)-1] }

func (l *lowerer) newID(pos lexer.Pos) instrBase {
	id := ID(l.mod.NumInstrs)
	l.mod.NumInstrs++
	return instrBase{ID: id, Pos: pos}
}

func (l *lowerer) newReg() Reg {
	sc := l.cur()
	r := Reg(sc.fn.NumRegs)
	sc.fn.NumRegs++
	return r
}

// note registers an instruction in the module indexes, marking it
// reentrant when it sits inside a loop of the current function.
func (l *lowerer) note(in Instr) {
	l.mod.register(in, l.cur().fn)
	if l.loopDepth > 0 {
		l.mod.reentrant[in.IID()] = true
	}
}

func (l *lowerer) emit(b *Block, in Instr) {
	l.note(in)
	b.Instrs = append(b.Instrs, in)
}

// resolve finds the variable binding for name. It returns ok=false when the
// name is unbound in all enclosing function scopes, i.e. a global.
func (l *lowerer) resolve(name string) (VarRef, bool) {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		sc := l.scopes[i]
		if slot, ok := sc.slots[name]; ok {
			return VarRef{Hops: len(l.scopes) - 1 - i, Slot: slot, Name: name}, true
		}
	}
	return VarRef{}, false
}

// declare adds a slot for name in the current function scope (top-level
// declarations become globals and get no slot).
func (l *lowerer) declare(name string) {
	sc := l.cur()
	if sc.isTop {
		return
	}
	if _, ok := sc.slots[name]; ok {
		return
	}
	sc.slots[name] = sc.fn.NumSlots
	sc.fn.SlotNames = append(sc.fn.SlotNames, name)
	sc.fn.NumSlots++
}

// hoist collects var and function declarations from a statement list without
// descending into nested functions, mirroring JavaScript hoisting.
func (l *lowerer) hoist(body []ast.Stmt) (fnDecls []*ast.FunctionDecl) {
	var walkStmt func(s ast.Stmt)
	walkStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.VarDecl:
			for _, d := range s.Decls {
				l.declare(d.Name)
			}
		case *ast.FunctionDecl:
			l.declare(s.Fn.Name)
			fnDecls = append(fnDecls, s)
		case *ast.Block:
			for _, t := range s.Body {
				walkStmt(t)
			}
		case *ast.If:
			walkStmt(s.Cons)
			if s.Alt != nil {
				walkStmt(s.Alt)
			}
		case *ast.While:
			walkStmt(s.Body)
		case *ast.DoWhile:
			walkStmt(s.Body)
		case *ast.For:
			if s.Init != nil {
				walkStmt(s.Init)
			}
			walkStmt(s.Body)
		case *ast.ForIn:
			if s.Declare {
				l.declare(s.Name)
			}
			walkStmt(s.Body)
		case *ast.Try:
			walkStmt(s.Block)
			if s.Catch != nil {
				l.declare(s.CatchParam)
				walkStmt(s.Catch)
			}
			if s.Finally != nil {
				walkStmt(s.Finally)
			}
		case *ast.Switch:
			for _, c := range s.Cases {
				for _, t := range c.Body {
					walkStmt(t)
				}
			}
		}
	}
	for _, s := range body {
		walkStmt(s)
	}
	return fnDecls
}

// lowerBody lowers a function (or top-level) body: hoists declarations,
// emits closures for hoisted function declarations, then lowers statements.
func (l *lowerer) lowerBody(body []ast.Stmt, sc *fnScope) *Block {
	b := &Block{}
	fnDecls := l.hoist(body)
	for _, fd := range fnDecls {
		r := l.lowerFunctionLit(b, fd.Fn, true)
		l.storeName(b, fd.Fn.Name, r, fd.P)
	}
	if sc.completion {
		sc.compReg = l.newReg()
		l.emit(b, &Const{instrBase: l.newID(lexer.Pos{}), Dst: sc.compReg, Val: Literal{Kind: LitUndefined}})
	}
	for _, s := range body {
		l.lowerStmt(b, s)
	}
	if sc.completion {
		l.emit(b, &Return{instrBase: l.newID(lexer.Pos{}), Src: sc.compReg})
	}
	return b
}

// storeName assigns r to the named variable or global.
func (l *lowerer) storeName(b *Block, name string, r Reg, pos lexer.Pos) {
	if v, ok := l.resolve(name); ok {
		l.emit(b, &StoreVar{instrBase: l.newID(pos), Var: v, Src: r})
		return
	}
	l.emit(b, &StoreGlobal{instrBase: l.newID(pos), Name: name, Src: r})
}

func (l *lowerer) lowerFunctionLit(b *Block, fn *ast.FunctionLit, isDecl bool) Reg {
	f := &Function{
		Index:    len(l.mod.Funcs),
		Name:     fn.Name,
		Params:   fn.Params,
		Parent:   l.cur().fn,
		Pos:      fn.P,
		Decl:     fn,
		ThisSlot: -1,
		SelfSlot: -1,
	}
	l.mod.Funcs = append(l.mod.Funcs, f)
	sc := &fnScope{fn: f, slots: map[string]int{}}
	l.scopes = append(l.scopes, sc)
	savedDepth := l.loopDepth
	l.loopDepth = 0
	// A named function expression binds its own name inside its body;
	// parameters and vars of the same name shadow it.
	if fn.Name != "" && !isDecl {
		l.declare(fn.Name)
		f.SelfSlot = sc.slots[fn.Name]
	}
	for _, p := range fn.Params {
		l.declare(p)
	}
	// Every function has an implicit `this` binding.
	l.declare("this")
	f.ThisSlot = sc.slots["this"]
	f.Body = l.lowerBody(fn.Body, sc)
	l.scopes = l.scopes[:len(l.scopes)-1]
	l.loopDepth = savedDepth

	dst := l.newReg()
	l.emit(b, &MakeClosure{instrBase: l.newID(fn.P), Dst: dst, Fn: f})
	return dst
}

// ---------------------------------------------------------------------------
// Statements

func (l *lowerer) lowerStmt(b *Block, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.VarDecl:
		for _, d := range s.Decls {
			if d.Init == nil {
				continue
			}
			r := l.lowerExpr(b, d.Init)
			l.storeName(b, d.Name, r, s.P)
		}
	case *ast.FunctionDecl:
		// Lowered during hoisting.
	case *ast.ExprStmt:
		r := l.lowerExpr(b, s.X)
		if sc := l.cur(); sc.completion {
			l.emit(b, &Move{instrBase: l.newID(s.P), Dst: sc.compReg, Src: r})
		}
	case *ast.Block:
		for _, t := range s.Body {
			l.lowerStmt(b, t)
		}
	case *ast.Empty:
	case *ast.If:
		cond := l.lowerExpr(b, s.Test)
		in := &If{instrBase: l.newID(s.P), Cond: cond, Then: &Block{}}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		l.lowerStmt(in.Then, s.Cons)
		if s.Alt != nil {
			in.Else = &Block{}
			l.lowerStmt(in.Else, s.Alt)
		}
	case *ast.While:
		in := &While{instrBase: l.newID(s.P), CondBlock: &Block{}, Body: &Block{}}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		l.loopDepth++
		in.Cond = l.lowerExpr(in.CondBlock, s.Test)
		l.lowerStmt(in.Body, s.Body)
		l.loopDepth--
	case *ast.DoWhile:
		in := &While{instrBase: l.newID(s.P), CondBlock: &Block{}, Body: &Block{}, PostTest: true}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		l.loopDepth++
		in.Cond = l.lowerExpr(in.CondBlock, s.Test)
		l.lowerStmt(in.Body, s.Body)
		l.loopDepth--
	case *ast.For:
		if s.Init != nil {
			l.lowerStmt(b, s.Init)
		}
		in := &While{instrBase: l.newID(s.P), CondBlock: &Block{}, Body: &Block{}}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		l.loopDepth++
		if s.Test != nil {
			in.Cond = l.lowerExpr(in.CondBlock, s.Test)
		} else {
			in.Cond = l.newReg()
			l.emit(in.CondBlock, &Const{instrBase: l.newID(s.P), Dst: in.Cond, Val: Literal{Kind: LitBool, Bool: true}})
		}
		l.lowerStmt(in.Body, s.Body)
		if s.Update != nil {
			in.Update = &Block{}
			l.lowerExpr(in.Update, s.Update)
		}
		l.loopDepth--
	case *ast.ForIn:
		obj := l.lowerExpr(b, s.Obj)
		in := &ForIn{instrBase: l.newID(s.P), Obj: obj, Body: &Block{}}
		if v, ok := l.resolve(s.Name); ok {
			in.Target = v
		} else {
			in.Global = true
			in.TargetGlobal = s.Name
		}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		l.loopDepth++
		l.lowerStmt(in.Body, s.Body)
		l.loopDepth--
	case *ast.Return:
		src := NoReg
		if s.Value != nil {
			src = l.lowerExpr(b, s.Value)
		}
		l.emit(b, &Return{instrBase: l.newID(s.P), Src: src})
	case *ast.Break:
		l.emit(b, &Break{instrBase: l.newID(s.P)})
	case *ast.Continue:
		l.emit(b, &Continue{instrBase: l.newID(s.P)})
	case *ast.Throw:
		src := l.lowerExpr(b, s.Value)
		l.emit(b, &Throw{instrBase: l.newID(s.P), Src: src})
	case *ast.Try:
		in := &Try{instrBase: l.newID(s.P), Body: &Block{}}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		for _, t := range s.Block.Body {
			l.lowerStmt(in.Body, t)
		}
		if s.Catch != nil {
			in.HasCatch = true
			if v, ok := l.resolve(s.CatchParam); ok {
				in.CatchVar = v
			} else {
				// Top level: the catch variable binds a global.
				in.GlobalCatch = s.CatchParam
			}
			in.Catch = &Block{}
			for _, t := range s.Catch.Body {
				l.lowerStmt(in.Catch, t)
			}
		}
		if s.Finally != nil {
			in.Finally = &Block{}
			for _, t := range s.Finally.Body {
				l.lowerStmt(in.Finally, t)
			}
		}
	case *ast.Switch:
		l.lowerSwitch(b, s)
	default:
		l.fail(s.Pos(), "cannot lower statement %T", s)
	}
}

// lowerSwitch lowers a switch statement to an if/else chain. Fall-through
// between non-empty case bodies is not supported; consecutive empty cases
// share the following body (the common "case a: case b:" idiom). Each
// non-final body must end the switch explicitly (break/return/throw); the
// trailing break is stripped during lowering.
func (l *lowerer) lowerSwitch(b *Block, s *ast.Switch) {
	disc := l.lowerExpr(b, s.Disc)

	type group struct {
		tests []ast.Expr // nil test = default
		body  []ast.Stmt
		isDef bool
	}
	var groups []group
	var pending []ast.Expr
	pendingDef := false
	for i, c := range s.Cases {
		if c.Test == nil {
			pendingDef = true
		} else {
			pending = append(pending, c.Test)
		}
		if len(c.Body) == 0 && i < len(s.Cases)-1 {
			continue // empty case falls through to the next test group
		}
		body := c.Body
		if n := len(body); n > 0 {
			if _, ok := body[n-1].(*ast.Break); ok {
				body = body[:n-1]
			} else if i < len(s.Cases)-1 {
				switch body[n-1].(type) {
				case *ast.Return, *ast.Throw, *ast.Continue:
				default:
					l.fail(s.P, "switch fall-through between non-empty cases is not supported")
				}
			}
		}
		for _, t := range body {
			if _, ok := t.(*ast.Break); ok {
				l.fail(s.P, "break in non-trailing position inside switch case is not supported")
			}
		}
		groups = append(groups, group{tests: pending, body: body, isDef: pendingDef})
		pending = nil
		pendingDef = false
	}

	// Build the chain: each group with tests becomes if (disc===t1 || ...),
	// the default group becomes the final else.
	var defGroup *group
	var chain []group
	for i := range groups {
		if groups[i].isDef && len(groups[i].tests) == 0 {
			defGroup = &groups[i]
		} else {
			chain = append(chain, groups[i])
		}
	}
	cur := b
	for _, g := range chain {
		cond := l.newReg()
		first := true
		for _, t := range g.tests {
			tr := l.lowerExpr(cur, t)
			eq := l.newReg()
			l.emit(cur, &BinOp{instrBase: l.newID(t.Pos()), Dst: eq, Op: "===", L: disc, R: tr})
			if first {
				l.emit(cur, &Move{instrBase: l.newID(t.Pos()), Dst: cond, Src: eq})
				first = false
			} else {
				// cond = cond || eq, without short-circuit (tests are pure
				// comparisons against an already-computed register).
				or := l.newReg()
				l.emit(cur, &BinOp{instrBase: l.newID(t.Pos()), Dst: or, Op: "||#", L: cond, R: eq})
				l.emit(cur, &Move{instrBase: l.newID(t.Pos()), Dst: cond, Src: or})
			}
		}
		in := &If{instrBase: l.newID(s.P), Cond: cond, Then: &Block{}, Else: &Block{}}
		l.note(in)
		cur.Instrs = append(cur.Instrs, in)
		for _, t := range g.body {
			l.lowerStmt(in.Then, t)
		}
		if g.isDef && defGroup == nil {
			// A default that shares its body with case labels: the chain
			// must also run this body when nothing else matches. Treat the
			// whole group as default by running the body in the else branch
			// too. Rare; keep behaviour simple and correct.
			for _, t := range g.body {
				l.lowerStmt(in.Else, t)
			}
			return
		}
		cur = in.Else
	}
	if defGroup != nil {
		for _, t := range defGroup.body {
			l.lowerStmt(cur, t)
		}
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (l *lowerer) lowerExpr(b *Block, e ast.Expr) Reg {
	switch e := e.(type) {
	case *ast.NumberLit:
		return l.constReg(b, e.P, Literal{Kind: LitNumber, Num: e.Value})
	case *ast.StringLit:
		return l.constReg(b, e.P, Literal{Kind: LitString, Str: e.Value})
	case *ast.BoolLit:
		return l.constReg(b, e.P, Literal{Kind: LitBool, Bool: e.Value})
	case *ast.NullLit:
		return l.constReg(b, e.P, Literal{Kind: LitNull})
	case *ast.UndefinedLit:
		return l.constReg(b, e.P, Literal{Kind: LitUndefined})
	case *ast.Ident:
		dst := l.newReg()
		if v, ok := l.resolve(e.Name); ok {
			l.emit(b, &LoadVar{instrBase: l.newID(e.P), Dst: dst, Var: v})
		} else {
			l.emit(b, &LoadGlobal{instrBase: l.newID(e.P), Dst: dst, Name: e.Name})
		}
		return dst
	case *ast.ThisExpr:
		// `this` is a reserved local slot inside functions; at the top
		// level it is the global object, predefined as globalThis.
		dst := l.newReg()
		if v, ok := l.resolve("this"); ok {
			l.emit(b, &LoadVar{instrBase: l.newID(e.P), Dst: dst, Var: v})
		} else {
			l.emit(b, &LoadGlobal{instrBase: l.newID(e.P), Dst: dst, Name: "globalThis"})
		}
		return dst
	case *ast.FunctionLit:
		return l.lowerFunctionLit(b, e, false)
	case *ast.ObjectLit:
		var props []Prop
		for _, p := range e.Props {
			r := l.lowerExpr(b, p.Value)
			props = append(props, Prop{Key: p.Key, Val: r})
		}
		dst := l.newReg()
		l.emit(b, &MakeObject{instrBase: l.newID(e.P), Dst: dst, Props: props})
		return dst
	case *ast.ArrayLit:
		var elems []Reg
		for _, el := range e.Elems {
			elems = append(elems, l.lowerExpr(b, el))
		}
		dst := l.newReg()
		l.emit(b, &MakeArray{instrBase: l.newID(e.P), Dst: dst, Elems: elems})
		return dst
	case *ast.Member:
		obj := l.lowerExpr(b, e.Obj)
		dst := l.newReg()
		l.emit(b, &GetField{instrBase: l.newID(e.P), Dst: dst, Obj: obj, Name: e.Prop})
		return dst
	case *ast.Index:
		obj := l.lowerExpr(b, e.Obj)
		idx := l.lowerExpr(b, e.Index)
		dst := l.newReg()
		l.emit(b, &GetProp{instrBase: l.newID(e.P), Dst: dst, Obj: obj, Prop: idx})
		return dst
	case *ast.Call:
		return l.lowerCall(b, e)
	case *ast.New:
		fn := l.lowerExpr(b, e.Callee)
		var args []Reg
		for _, a := range e.Args {
			args = append(args, l.lowerExpr(b, a))
		}
		dst := l.newReg()
		l.emit(b, &New{instrBase: l.newID(e.P), Dst: dst, Fn: fn, Args: args})
		return dst
	case *ast.Unary:
		return l.lowerUnary(b, e)
	case *ast.Update:
		return l.lowerUpdate(b, e)
	case *ast.Binary:
		lr := l.lowerExpr(b, e.L)
		rr := l.lowerExpr(b, e.R)
		dst := l.newReg()
		l.emit(b, &BinOp{instrBase: l.newID(e.P), Dst: dst, Op: e.Op, L: lr, R: rr})
		return dst
	case *ast.Logical:
		// result = L; if (result) result = R   (&&)
		// result = L; if (!result) result = R  (||)
		res := l.newReg()
		lr := l.lowerExpr(b, e.L)
		l.emit(b, &Move{instrBase: l.newID(e.P), Dst: res, Src: lr})
		cond := res
		if e.Op == "||" {
			cond = l.newReg()
			l.emit(b, &UnOp{instrBase: l.newID(e.P), Dst: cond, Op: "!", X: res})
		}
		in := &If{instrBase: l.newID(e.P), Cond: cond, Then: &Block{}}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		rr := l.lowerExpr(in.Then, e.R)
		l.emit(in.Then, &Move{instrBase: l.newID(e.P), Dst: res, Src: rr})
		return res
	case *ast.Cond:
		res := l.newReg()
		cond := l.lowerExpr(b, e.Test)
		in := &If{instrBase: l.newID(e.P), Cond: cond, Then: &Block{}, Else: &Block{}}
		l.note(in)
		b.Instrs = append(b.Instrs, in)
		cr := l.lowerExpr(in.Then, e.Cons)
		l.emit(in.Then, &Move{instrBase: l.newID(e.P), Dst: res, Src: cr})
		ar := l.lowerExpr(in.Else, e.Alt)
		l.emit(in.Else, &Move{instrBase: l.newID(e.P), Dst: res, Src: ar})
		return res
	case *ast.Assign:
		return l.lowerAssign(b, e)
	case *ast.Seq:
		l.lowerExpr(b, e.L)
		return l.lowerExpr(b, e.R)
	default:
		l.fail(e.Pos(), "cannot lower expression %T", e)
		return NoReg
	}
}

func (l *lowerer) constReg(b *Block, pos lexer.Pos, lit Literal) Reg {
	dst := l.newReg()
	l.emit(b, &Const{instrBase: l.newID(pos), Dst: dst, Val: lit})
	return dst
}

func (l *lowerer) lowerCall(b *Block, e *ast.Call) Reg {
	var fn Reg
	this := NoReg
	switch callee := e.Callee.(type) {
	case *ast.Member:
		this = l.lowerExpr(b, callee.Obj)
		fn = l.newReg()
		l.emit(b, &GetField{instrBase: l.newID(callee.P), Dst: fn, Obj: this, Name: callee.Prop})
	case *ast.Index:
		this = l.lowerExpr(b, callee.Obj)
		idx := l.lowerExpr(b, callee.Index)
		fn = l.newReg()
		l.emit(b, &GetProp{instrBase: l.newID(callee.P), Dst: fn, Obj: this, Prop: idx})
	default:
		fn = l.lowerExpr(b, e.Callee)
	}
	var args []Reg
	for _, a := range e.Args {
		args = append(args, l.lowerExpr(b, a))
	}
	dst := l.newReg()
	l.emit(b, &Call{instrBase: l.newID(e.P), Dst: dst, Fn: fn, This: this, Args: args})
	return dst
}

func (l *lowerer) lowerUnary(b *Block, e *ast.Unary) Reg {
	switch e.Op {
	case "typeof":
		// typeof on an unresolved identifier must not throw.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, bound := l.resolve(id.Name); !bound {
				x := l.newReg()
				l.emit(b, &LoadGlobal{instrBase: l.newID(id.P), Dst: x, Name: id.Name, ForTypeof: true})
				dst := l.newReg()
				l.emit(b, &UnOp{instrBase: l.newID(e.P), Dst: dst, Op: "typeof", X: x})
				return dst
			}
		}
		x := l.lowerExpr(b, e.X)
		dst := l.newReg()
		l.emit(b, &UnOp{instrBase: l.newID(e.P), Dst: dst, Op: "typeof", X: x})
		return dst
	case "delete":
		switch t := e.X.(type) {
		case *ast.Member:
			obj := l.lowerExpr(b, t.Obj)
			dst := l.newReg()
			l.emit(b, &DelField{instrBase: l.newID(e.P), Dst: dst, Obj: obj, Name: t.Prop})
			return dst
		case *ast.Index:
			obj := l.lowerExpr(b, t.Obj)
			idx := l.lowerExpr(b, t.Index)
			dst := l.newReg()
			l.emit(b, &DelProp{instrBase: l.newID(e.P), Dst: dst, Obj: obj, Prop: idx})
			return dst
		default:
			// delete of a non-reference yields true without effect.
			l.lowerExpr(b, e.X)
			return l.constReg(b, e.P, Literal{Kind: LitBool, Bool: true})
		}
	default:
		x := l.lowerExpr(b, e.X)
		dst := l.newReg()
		l.emit(b, &UnOp{instrBase: l.newID(e.P), Dst: dst, Op: e.Op, X: x})
		return dst
	}
}

func (l *lowerer) lowerUpdate(b *Block, e *ast.Update) Reg {
	op := "+"
	if e.Op == "--" {
		op = "-"
	}
	one := l.constReg(b, e.P, Literal{Kind: LitNumber, Num: 1})
	load, store := l.lvalue(b, e.X)
	old := load()
	// Coerce the old value to a number so postfix results match JS.
	oldNum := l.newReg()
	l.emit(b, &UnOp{instrBase: l.newID(e.P), Dst: oldNum, Op: "+", X: old})
	upd := l.newReg()
	l.emit(b, &BinOp{instrBase: l.newID(e.P), Dst: upd, Op: op, L: oldNum, R: one})
	store(upd)
	if e.Prefix {
		return upd
	}
	return oldNum
}

func (l *lowerer) lowerAssign(b *Block, e *ast.Assign) Reg {
	load, store := l.lvalue(b, e.Target)
	if e.Op == "=" {
		v := l.lowerExpr(b, e.Value)
		store(v)
		return v
	}
	binOp := e.Op[:len(e.Op)-1] // "+=" -> "+"
	old := load()
	v := l.lowerExpr(b, e.Value)
	dst := l.newReg()
	l.emit(b, &BinOp{instrBase: l.newID(e.P), Dst: dst, Op: binOp, L: old, R: v})
	store(dst)
	return dst
}

// lvalue prepares an assignment target, evaluating its subexpressions once,
// and returns load/store thunks over the prepared registers.
func (l *lowerer) lvalue(b *Block, target ast.Expr) (load func() Reg, store func(Reg)) {
	switch t := target.(type) {
	case *ast.Ident:
		if v, ok := l.resolve(t.Name); ok {
			return func() Reg {
					dst := l.newReg()
					l.emit(b, &LoadVar{instrBase: l.newID(t.P), Dst: dst, Var: v})
					return dst
				}, func(src Reg) {
					l.emit(b, &StoreVar{instrBase: l.newID(t.P), Var: v, Src: src})
				}
		}
		return func() Reg {
				dst := l.newReg()
				l.emit(b, &LoadGlobal{instrBase: l.newID(t.P), Dst: dst, Name: t.Name})
				return dst
			}, func(src Reg) {
				l.emit(b, &StoreGlobal{instrBase: l.newID(t.P), Name: t.Name, Src: src})
			}
	case *ast.Member:
		obj := l.lowerExpr(b, t.Obj)
		return func() Reg {
				dst := l.newReg()
				l.emit(b, &GetField{instrBase: l.newID(t.P), Dst: dst, Obj: obj, Name: t.Prop})
				return dst
			}, func(src Reg) {
				l.emit(b, &SetField{instrBase: l.newID(t.P), Obj: obj, Name: t.Prop, Src: src})
			}
	case *ast.Index:
		obj := l.lowerExpr(b, t.Obj)
		idx := l.lowerExpr(b, t.Index)
		return func() Reg {
				dst := l.newReg()
				l.emit(b, &GetProp{instrBase: l.newID(t.P), Dst: dst, Obj: obj, Prop: idx})
				return dst
			}, func(src Reg) {
				l.emit(b, &SetProp{instrBase: l.newID(t.P), Obj: obj, Prop: idx, Src: src})
			}
	default:
		l.fail(target.Pos(), "invalid assignment target %T", target)
		return nil, nil
	}
}
