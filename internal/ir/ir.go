// Package ir defines the µJS-style intermediate representation executed by
// both the concrete interpreter (internal/interp) and the instrumented
// determinacy interpreter (internal/core).
//
// The paper's implementation section (§4) states that programs are "first
// translated into a form similar to µJS with a small number of additional
// statement forms"; this package is that translation. The IR is three-address
// straight-line code plus *structured* control flow (If/While/ForIn/Try),
// which the instrumented semantics relies on to delimit branches for
// counterfactual execution and post-branch indeterminacy marking (Figure 9).
//
// Every instruction carries a unique ID, its unique program point. Determinacy
// facts are qualified by an instruction ID plus a call stack of call-site
// instruction IDs, mirroring the paper's ⟦e⟧ c notation.
package ir

import (
	"determinacy/internal/ast"
	"determinacy/internal/lexer"
)

// Reg is a function-local virtual register (temporary). Registers are
// assigned single static values per instruction execution; they are never
// captured by closures.
type Reg int

// NoReg marks an absent register operand (e.g. a call without a receiver).
const NoReg Reg = -1

// ID is a unique program point identifier for an instruction.
type ID int

// LitKind classifies a constant operand.
type LitKind int

// Literal kinds.
const (
	LitUndefined LitKind = iota
	LitNull
	LitBool
	LitNumber
	LitString
)

// Literal is a constant operand of a Const instruction.
type Literal struct {
	Kind LitKind
	Bool bool
	Num  float64
	Str  string
}

// VarRef names a resolved local variable: Hops lexical scopes out, slot
// Slot. Name is retained for diagnostics and fact rendering.
type VarRef struct {
	Hops int
	Slot int
	Name string
}

// Instr is implemented by all IR instructions.
type Instr interface {
	IID() ID
	IPos() lexer.Pos
}

// instrBase carries the program point and source position of an instruction.
type instrBase struct {
	ID  ID
	Pos lexer.Pos
}

func (b instrBase) IID() ID         { return b.ID }
func (b instrBase) IPos() lexer.Pos { return b.Pos }

// Block is a sequence of instructions.
type Block struct {
	Instrs []Instr

	// Code holds the block's compiled bytecode (*vm.Code), attached once by
	// internal/vm and shared read-only by every module clone; nil means the
	// block executes by tree walking. Typed as any to keep ir free of a vm
	// dependency.
	Code any
}

// ---------------------------------------------------------------------------
// Straight-line instructions

// Const loads a literal into Dst.
type Const struct {
	instrBase
	Dst Reg
	Val Literal
}

// Move copies Src into Dst.
type Move struct {
	instrBase
	Dst, Src Reg
}

// LoadVar reads a local variable into Dst.
type LoadVar struct {
	instrBase
	Dst Reg
	Var VarRef
}

// StoreVar writes Src into a local variable.
type StoreVar struct {
	instrBase
	Var VarRef
	Src Reg
}

// LoadGlobal reads a global (a property of the global object) into Dst.
// If the global is not defined, execution throws a ReferenceError unless
// ForTypeof is set, in which case Dst receives undefined.
type LoadGlobal struct {
	instrBase
	Dst       Reg
	Name      string
	ForTypeof bool
}

// StoreGlobal writes Src into a global.
type StoreGlobal struct {
	instrBase
	Name string
	Src  Reg
}

// MakeClosure creates a function object closing over the current
// environment.
type MakeClosure struct {
	instrBase
	Dst Reg
	Fn  *Function
}

// Prop is one key-value entry of a MakeObject.
type Prop struct {
	Key string
	Val Reg
}

// MakeObject creates an object literal.
type MakeObject struct {
	instrBase
	Dst   Reg
	Props []Prop
}

// MakeArray creates an array literal.
type MakeArray struct {
	instrBase
	Dst   Reg
	Elems []Reg
}

// GetField reads a statically named property, following the prototype chain.
type GetField struct {
	instrBase
	Dst  Reg
	Obj  Reg
	Name string
}

// GetProp reads a computed property, following the prototype chain.
type GetProp struct {
	instrBase
	Dst  Reg
	Obj  Reg
	Prop Reg
}

// SetField writes a statically named own property.
type SetField struct {
	instrBase
	Obj  Reg
	Name string
	Src  Reg
}

// SetProp writes a computed own property.
type SetProp struct {
	instrBase
	Obj  Reg
	Prop Reg
	Src  Reg
}

// DelField deletes a statically named own property; Dst receives a boolean.
type DelField struct {
	instrBase
	Dst  Reg
	Obj  Reg
	Name string
}

// DelProp deletes a computed own property; Dst receives a boolean.
type DelProp struct {
	instrBase
	Dst  Reg
	Obj  Reg
	Prop Reg
}

// BinOp applies a strict binary operator. Op is one of the mini-JS binary
// operators including "in" and "instanceof"; && and || are lowered to If.
type BinOp struct {
	instrBase
	Dst  Reg
	Op   string
	L, R Reg
}

// UnOp applies a unary operator: ! - + ~ typeof.
type UnOp struct {
	instrBase
	Dst Reg
	Op  string
	X   Reg
}

// Call invokes Fn with receiver This (NoReg for plain calls) and Args.
// The instruction ID doubles as the call-site identifier in fact stacks.
type Call struct {
	instrBase
	Dst  Reg
	Fn   Reg
	This Reg
	Args []Reg
}

// New invokes Fn as a constructor.
type New struct {
	instrBase
	Dst  Reg
	Fn   Reg
	Args []Reg
}

// ---------------------------------------------------------------------------
// Control flow

// If branches on Cond. Else may be nil.
type If struct {
	instrBase
	Cond Reg
	Then *Block
	Else *Block
}

// While evaluates CondBlock, tests Cond, and runs Body while true. Update
// (when non-nil) runs after the body and on continue, before re-testing;
// it carries the update clause of C-style for loops. PostTest marks
// do-while loops: the body runs once before the first condition test.
type While struct {
	instrBase
	CondBlock *Block
	Cond      Reg
	Body      *Block
	Update    *Block
	PostTest  bool
}

// ForIn iterates over the enumerable own-and-inherited property names of the
// object in Obj, assigning each to Target (or TargetGlobal when Global).
type ForIn struct {
	instrBase
	Obj          Reg
	Global       bool
	Target       VarRef
	TargetGlobal string
	Body         *Block
}

// Return exits the current function. Src may be NoReg (returns undefined).
type Return struct {
	instrBase
	Src Reg
}

// Throw raises the value in Src.
type Throw struct {
	instrBase
	Src Reg
}

// Break exits the innermost loop.
type Break struct{ instrBase }

// Continue restarts the innermost loop.
type Continue struct{ instrBase }

// Try runs Body; on a throw, binds the value to CatchVar (or the global
// named GlobalCatch for top-level catches) and runs Catch (when present);
// Finally (when present) always runs.
type Try struct {
	instrBase
	Body        *Block
	HasCatch    bool
	CatchVar    VarRef
	GlobalCatch string
	Catch       *Block
	Finally     *Block
}

// ---------------------------------------------------------------------------
// Functions and modules

// Function is a lowered mini-JS function. Funcs[0] of a Module is the
// synthetic top-level function whose body is the program.
type Function struct {
	Index    int
	Name     string
	Params   []string
	NumSlots int
	NumRegs  int
	// SlotNames maps slot index to variable name (params first).
	SlotNames []string
	// ThisSlot is the slot holding the receiver, or -1 (top level).
	ThisSlot int
	// SelfSlot binds a named function expression to itself, or -1.
	SelfSlot int
	Body     *Block
	Parent   *Function // lexically enclosing function; nil for top level
	Pos      lexer.Pos
	// Decl is the originating AST node (nil for the top level and for
	// runtime-lowered eval code); the specializer uses it to map facts back
	// to source.
	Decl *ast.FunctionLit
	// IsEval marks functions lowered at runtime from eval arguments.
	IsEval bool
}

// Module is a lowered program.
type Module struct {
	Funcs  []*Function
	File   string
	Source string
	// NumInstrs is one more than the largest instruction ID allocated,
	// including instructions in runtime-lowered eval code.
	NumInstrs int

	// VMInfo holds the module's bytecode-compilation metadata (*vm.Info),
	// set once by internal/vm under the same guard that compiles the shared
	// blocks and copied to every clone. Typed as any to keep ir free of a vm
	// dependency.
	VMInfo any

	// byID maps instruction IDs to instructions, for fact rendering.
	byID map[ID]Instr
	// fnOf maps instruction IDs to their enclosing function.
	fnOf map[ID]*Function
	// reentrant marks instructions lexically inside a loop of their own
	// function: they may execute more than once per activation, so their
	// occurrence indices are only stable while the loop structure is
	// determinate. The determinacy analysis consults this to decide whether
	// occurrence-qualified facts are sound (see internal/core).
	reentrant map[ID]bool
}

// IsReentrant reports whether the instruction may execute multiple times
// within one activation of its function (it sits inside a loop).
func (m *Module) IsReentrant(id ID) bool { return m.reentrant[id] }

// Clone returns a module that shares m's functions and instructions (which
// are immutable once lowered) but has an independent function list, index
// maps and instruction-ID counter. Executing a clone — in particular
// lowering eval'd code at runtime, which appends functions and registers
// fresh instructions — never mutates m or any sibling clone, so one
// pristine module can safely back many concurrent analysis runs.
func (m *Module) Clone() *Module {
	out := &Module{
		Funcs:     append([]*Function(nil), m.Funcs...),
		File:      m.File,
		Source:    m.Source,
		NumInstrs: m.NumInstrs,
		VMInfo:    m.VMInfo,
	}
	if m.byID != nil {
		out.byID = make(map[ID]Instr, len(m.byID))
		for k, v := range m.byID {
			out.byID[k] = v
		}
		out.fnOf = make(map[ID]*Function, len(m.fnOf))
		for k, v := range m.fnOf {
			out.fnOf[k] = v
		}
		out.reentrant = make(map[ID]bool, len(m.reentrant))
		for k, v := range m.reentrant {
			out.reentrant[k] = v
		}
	}
	return out
}

// ForEachInstr visits every registered instruction with its enclosing
// function, in unspecified order.
func (m *Module) ForEachInstr(f func(Instr, *Function)) {
	for id, in := range m.byID {
		f(in, m.fnOf[id])
	}
}

// Top returns the synthetic top-level function.
func (m *Module) Top() *Function { return m.Funcs[0] }

// InstrAt returns the instruction with the given ID, or nil.
func (m *Module) InstrAt(id ID) Instr { return m.byID[id] }

// FuncOf returns the function containing the instruction with the given ID,
// or nil.
func (m *Module) FuncOf(id ID) *Function { return m.fnOf[id] }

// register adds an instruction to the lookup indexes.
func (m *Module) register(in Instr, fn *Function) {
	if m.byID == nil {
		m.byID = make(map[ID]Instr)
		m.fnOf = make(map[ID]*Function)
		m.reentrant = make(map[ID]bool)
	}
	m.byID[in.IID()] = in
	m.fnOf[in.IID()] = fn
}

// WritesOf returns the names of local variables that may be written by
// instructions in the block, recursing into nested control flow but not into
// function literals. This implements vd(s) from §3.1, used by the
// counterfactual-abort rule (CNTRABORT).
func WritesOf(b *Block) []VarRef {
	seen := map[string]bool{}
	var out []VarRef
	var walk func(*Block)
	walk = func(b *Block) {
		if b == nil {
			return
		}
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *StoreVar:
				k := varKey(in.Var)
				if !seen[k] {
					seen[k] = true
					out = append(out, in.Var)
				}
			case *ForIn:
				if !in.Global {
					k := varKey(in.Target)
					if !seen[k] {
						seen[k] = true
						out = append(out, in.Target)
					}
				}
				walk(in.Body)
			case *If:
				walk(in.Then)
				walk(in.Else)
			case *While:
				walk(in.CondBlock)
				walk(in.Body)
			case *Try:
				walk(in.Body)
				walk(in.Catch)
				walk(in.Finally)
			}
		}
	}
	walk(b)
	return out
}

func varKey(v VarRef) string {
	return string(rune(v.Hops)) + ":" + string(rune(v.Slot)) + ":" + v.Name
}
