package ir_test

import (
	"strings"
	"testing"

	"determinacy/internal/ir"
)

func TestLoweringBasics(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		var g = 1;
		function f(a, b) {
			var local = a + b;
			return local;
		}
		f(1, 2);
	`)
	if len(mod.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(mod.Funcs))
	}
	f := mod.Funcs[1]
	if f.Name != "f" {
		t.Errorf("function name %q", f.Name)
	}
	// slots: a, b, this, local
	if f.NumSlots != 4 {
		t.Errorf("slots = %d (%v), want 4", f.NumSlots, f.SlotNames)
	}
	if f.ThisSlot < 0 {
		t.Error("missing this slot")
	}
	// Top-level vars are globals, so the top function has no slots.
	if mod.Top().NumSlots != 0 {
		t.Errorf("top-level slots = %d, want 0", mod.Top().NumSlots)
	}
}

func TestScopeResolution(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		function outer() {
			var x = 1;
			function inner() { x = 2; return x; }
			return inner();
		}
	`)
	var inner *ir.Function
	for _, f := range mod.Funcs {
		if f.Name == "inner" {
			inner = f
		}
	}
	if inner == nil {
		t.Fatal("inner not lowered")
	}
	found := false
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		for _, in := range b.Instrs {
			if sv, ok := in.(*ir.StoreVar); ok && sv.Var.Name == "x" {
				if sv.Var.Hops != 1 {
					t.Errorf("x resolved with hops=%d, want 1", sv.Var.Hops)
				}
				found = true
			}
		}
	}
	walk(inner.Body)
	if !found {
		t.Error("no StoreVar for x in inner")
	}
}

func TestReentrancyMarking(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		var a = 1;
		for (var i = 0; i < 3; i++) {
			var b = i * 2;
		}
		function f() { var c = 5; }
	`)
	var inLoop, outLoop, inFn int
	mod.ForEachInstr(func(in ir.Instr, fn *ir.Function) {
		switch {
		case in.IPos().Line == 4 && mod.IsReentrant(in.IID()):
			inLoop++
		case in.IPos().Line == 2 && mod.IsReentrant(in.IID()):
			outLoop++
		case in.IPos().Line == 6 && mod.IsReentrant(in.IID()):
			inFn++
		}
	})
	if inLoop == 0 {
		t.Error("loop body instructions not marked reentrant")
	}
	if outLoop != 0 {
		t.Error("pre-loop instructions marked reentrant")
	}
	if inFn != 0 {
		t.Error("function body (outside loops) marked reentrant")
	}
}

func TestWritesOf(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		function f() {
			var a = 1, b = 2;
			if (a) { b = 3; }
			while (b) { a = 4; }
			function g() { var c = 9; }
		}
	`)
	f := mod.Funcs[1]
	writes := ir.WritesOf(f.Body)
	names := map[string]bool{}
	for _, w := range writes {
		names[w.Name] = true
	}
	if !names["a"] || !names["b"] {
		t.Errorf("writes = %v, want a and b", names)
	}
	if names["c"] {
		t.Error("nested function writes must not leak into vd(s)")
	}
}

func TestLowerEvalScoping(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		function caller() {
			var captured = 10;
			return 0;
		}
	`)
	caller := mod.Funcs[1]
	fn, err := ir.LowerEval(mod, "captured + 1", caller)
	if err != nil {
		t.Fatal(err)
	}
	if !fn.IsEval || fn.Parent != caller {
		t.Error("eval function not linked to caller scope")
	}
	// The free variable resolves into the caller's slots, one hop out.
	found := false
	for _, in := range fn.Body.Instrs {
		if lv, ok := in.(*ir.LoadVar); ok && lv.Var.Name == "captured" {
			if lv.Var.Hops != 1 {
				t.Errorf("captured at hops=%d, want 1", lv.Var.Hops)
			}
			found = true
		}
	}
	if !found {
		t.Error("captured not resolved as a local")
	}
	if _, err := ir.LowerEval(mod, "syntax error (", caller); err == nil {
		t.Error("expected a parse error")
	}
}

func TestSwitchLowering(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		function f(x) {
			switch (x) {
			case 1: return "one";
			case 2:
			case 3: return "few";
			default: return "many";
			}
		}
	`)
	s := mod.String()
	if !strings.Contains(s, "===") {
		t.Errorf("switch not lowered to strict comparisons:\n%s", s)
	}
	// Fall-through between non-empty cases is rejected.
	if _, err := ir.Compile("bad.js", `
		switch (x) { case 1: a(); case 2: b(); }
	`); err == nil {
		t.Error("expected lowering error for fall-through")
	}
}

func TestInstrIDsUniqueAndIndexed(t *testing.T) {
	mod := ir.MustCompile("t.js", `
		var a = 1 + 2;
		function f() { return a * 3; }
		f();
	`)
	seen := map[ir.ID]bool{}
	count := 0
	mod.ForEachInstr(func(in ir.Instr, fn *ir.Function) {
		if seen[in.IID()] {
			t.Errorf("duplicate instruction id %d", in.IID())
		}
		seen[in.IID()] = true
		if mod.InstrAt(in.IID()) != in {
			t.Errorf("InstrAt(%d) mismatch", in.IID())
		}
		if mod.FuncOf(in.IID()) != fn {
			t.Errorf("FuncOf(%d) mismatch", in.IID())
		}
		count++
	})
	if count == 0 || count > mod.NumInstrs {
		t.Errorf("instruction count %d vs NumInstrs %d", count, mod.NumInstrs)
	}
}

func TestLogicalLowering(t *testing.T) {
	// && and || lower to If with a shared result register; the IR printer
	// shows the structure.
	mod := ir.MustCompile("t.js", `var r = a() && b();`)
	s := mod.String()
	if !strings.Contains(s, "if r") {
		t.Errorf("logical not lowered to a conditional:\n%s", s)
	}
}
