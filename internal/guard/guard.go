// Package guard is the run-isolation and graceful-degradation layer of
// the pipeline: cooperative cancellation and wall-clock deadlines
// (CheckInterrupt, polled by the interpreters and the solver every few
// thousand steps), panic boundaries converting interpreter and solver
// panics into structured *RunError values instead of crashing the process
// (Boundary), and the DegradeReason taxonomy for partial results. The
// faultinject subpackage drives every recovery path deterministically.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

// ErrDeadline reports that a run hit its wall-clock deadline. It wraps
// context.DeadlineExceeded so errors.Is treats flag-set deadlines and
// context timeouts uniformly through every API layer.
var ErrDeadline = fmt.Errorf("guard: wall-clock deadline exceeded: %w", context.DeadlineExceeded)

// CheckInterrupt polls the cooperative stop conditions: context
// cancellation and the wall-clock deadline (plus injected deadline
// expiries during fault campaigns). Interpreters call it every few
// thousand steps; with a nil/background context and zero deadline it
// costs a few branches.
func CheckInterrupt(ctx context.Context, deadline time.Time) error {
	if ctx != nil {
		select {
		case <-ctx.Done():
			return fmt.Errorf("guard: run cancelled: %w", context.Cause(ctx))
		default:
		}
	}
	if faultinject.Expired() {
		return ErrDeadline
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return ErrDeadline
	}
	return nil
}

// DegradeReason classifies why a run returned a partial result instead of
// completing.
type DegradeReason string

const (
	DegradeNone     DegradeReason = ""
	DegradeBudget   DegradeReason = "budget"    // step budget exhausted
	DegradeFlushCap DegradeReason = "flush-cap" // heap-flush cap reached
	DegradeDeadline DegradeReason = "deadline"  // wall-clock deadline expired
	DegradeCancel   DegradeReason = "cancel"    // context cancelled
)

// ContextReason maps interrupt errors produced by CheckInterrupt to their
// degrade reasons. The budget and flush-cap sentinels live in
// internal/core; the public API layer classifies those.
func ContextReason(err error) DegradeReason {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return DegradeDeadline
	case errors.Is(err, context.Canceled):
		return DegradeCancel
	}
	return DegradeNone
}

// RunError is the structured form of a panic recovered at a run entry
// point: which pipeline phase panicked, where execution was, the
// recovered value, and the panicking goroutine's stack.
type RunError struct {
	Phase     string // "exec", "interp", "handlers", "solve", "batch"
	Instr     int    // IR instruction ID active at the panic; -1 when unknown
	Pos       string // "line:col" source position of Instr; "" when unknown
	Recovered any    // the recovered panic value
	Stack     []byte // stack trace captured at recovery
}

func (e *RunError) Error() string {
	at := ""
	if e.Pos != "" {
		at = fmt.Sprintf(" at %s (instr %d)", e.Pos, e.Instr)
	}
	return fmt.Sprintf("guard: panic in %s phase%s: %v", e.Phase, at, e.Recovered)
}

// Unwrap exposes a recovered error value (e.g. faultinject.Injected) to
// errors.Is/errors.As chains.
func (e *RunError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// New builds a RunError from a recovered panic value, capturing the
// current stack.
func New(phase string, recovered any) *RunError {
	return &RunError{Phase: phase, Instr: -1, Recovered: recovered, Stack: debug.Stack()}
}

// Boundary is the deferred panic boundary for run entry points:
//
//	func (a *Analysis) Run() (v Value, err error) {
//		defer guard.Boundary(&err, "exec", a.CurrentPoint)
//		...
//
// point, when non-nil, reports the instruction ID and source position
// execution had reached. A *RunError panicking through a nested boundary
// passes through unchanged, keeping the innermost phase attribution.
func Boundary(errp *error, phase string, point func() (instr int, pos string)) {
	r := recover()
	if r == nil {
		return
	}
	if re, ok := r.(*RunError); ok {
		*errp = re
		return
	}
	e := New(phase, r)
	if point != nil {
		e.Instr, e.Pos = point()
	}
	*errp = e
}

// Metric names for guard outcomes published into internal/obs registries.
const (
	MetricRecovered = "guard_recovered_panics_total"
	MetricDegraded  = "guard_degraded_runs_total"
)

// CountRecovered publishes a recovered panic into a metrics registry,
// total plus a per-phase labelled series. nil registries are ignored.
func CountRecovered(m *obs.Metrics, phase string) {
	if m == nil {
		return
	}
	m.Counter(MetricRecovered).Inc()
	m.Counter(fmt.Sprintf(MetricRecovered+`{phase=%q}`, phase)).Inc()
}

// CountDegraded publishes a gracefully degraded (partial-result) run,
// total plus a per-reason labelled series. nil registries and DegradeNone
// are ignored.
func CountDegraded(m *obs.Metrics, reason DegradeReason) {
	if m == nil || reason == DegradeNone {
		return
	}
	m.Counter(MetricDegraded).Inc()
	m.Counter(fmt.Sprintf(MetricDegraded+`{reason=%q}`, string(reason))).Inc()
}
