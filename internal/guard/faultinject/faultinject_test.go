package faultinject

import (
	"context"
	"sync"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() = true with no plan installed")
	}
	Hit(SiteCoreStep) // must be a no-op, not a nil deref
}

func TestPanicFiresExactlyOnceAtTriggerCount(t *testing.T) {
	p := &Plan{Site: SiteCoreStep, After: 3, Action: Panic}
	Arm(p)
	defer Disarm()
	for i := 0; i < 2; i++ {
		Hit(SiteCoreStep)
	}
	fired := func() (fired bool) {
		defer func() { fired = recover() != nil }()
		Hit(SiteCoreStep)
		return false
	}
	if !fired() {
		t.Fatal("third hit did not fire the panic")
	}
	if !p.Fired() {
		t.Fatal("Fired() = false after the fault fired")
	}
	// The plan stays installed but inert: further hits must not re-fire.
	Hit(SiteCoreStep)
	if got := p.Hits(); got != 4 {
		t.Fatalf("Hits() = %d, want 4", got)
	}
}

func TestSiteFilter(t *testing.T) {
	p := &Plan{Site: SiteSolverProp, After: 1, Action: Expire}
	Arm(p)
	defer Disarm()
	Hit(SiteCoreStep)
	Hit(SiteBatchJob)
	if p.Fired() {
		t.Fatal("plan fired on a non-matching site")
	}
	Hit(SiteSolverProp)
	if !p.Fired() || !Expired() {
		t.Fatal("plan did not fire on its own site")
	}
}

func TestEmptySiteMatchesEverySite(t *testing.T) {
	p := &Plan{After: 2, Action: Expire}
	Arm(p)
	defer Disarm()
	Hit(SiteCoreFlush)
	Hit(SiteInterpStep)
	if !p.Fired() {
		t.Fatal("wildcard plan did not fire after 2 hits across different sites")
	}
}

func TestCancelActionInvokesCallback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	Arm(&Plan{Site: SiteCoreCall, After: 1, Action: Cancel, OnCancel: cancel})
	defer Disarm()
	Hit(SiteCoreCall)
	if ctx.Err() == nil {
		t.Fatal("Cancel action did not cancel the context")
	}
}

func TestArmClampsAfter(t *testing.T) {
	p := &Plan{Action: Expire}
	Arm(p)
	defer Disarm()
	Hit(SiteCoreStep)
	if !p.Fired() {
		t.Fatal("After=0 plan should clamp to 1 and fire on the first hit")
	}
}

func TestExpiredRequiresExpireAction(t *testing.T) {
	Arm(&Plan{After: 1, Action: Cancel})
	defer Disarm()
	Hit(SiteCoreStep)
	if Expired() {
		t.Fatal("Expired() = true for a fired Cancel plan")
	}
}

// TestConcurrentHitsFireOnce hammers one plan from many goroutines; under
// -race this proves the CAS-once firing and that exactly one goroutine
// observes the panic.
func TestConcurrentHitsFireOnce(t *testing.T) {
	p := &Plan{Site: SiteBatchJob, After: 50, Action: Panic}
	Arm(p)
	defer Disarm()
	var wg sync.WaitGroup
	var mu sync.Mutex
	panics := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							panics++
							mu.Unlock()
							if inj, ok := r.(Injected); !ok || inj.Site != SiteBatchJob {
								t.Errorf("panic value = %v, want Injected at batch.job", r)
							}
						}
					}()
					Hit(SiteBatchJob)
				}()
			}
		}()
	}
	wg.Wait()
	if panics != 1 {
		t.Fatalf("fault fired %d times, want exactly once", panics)
	}
	if got := p.Hits(); got != 800 {
		t.Fatalf("Hits() = %d, want 800", got)
	}
}
