// Package faultinject is a deterministic, seeded fault-injection harness
// for the guard layer. A Plan armed via Arm fires exactly one fault — a
// panic, a context cancellation, or a simulated deadline expiry — at the
// N-th execution of an instrumented site. The sites sit on the
// interpreters' periodic checkpoint paths and a few structurally
// interesting spots (heap flush, call dispatch, batch job start), so the
// disarmed cost is one atomic pointer load per checkpoint. The campaign
// test in internal/guard replays thousands of seeded plans under -race to
// prove every recovery path in the pipeline.
package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Instrumented sites. Plans may restrict their trigger to one of these.
const (
	SiteCoreStep   = "core.step"      // instrumented-interpreter step checkpoint
	SiteCoreFlush  = "core.flush"     // heap flush entry (§4 flush semantics)
	SiteCoreCall   = "core.call"      // instrumented call dispatch
	SiteInterpStep = "interp.step"    // tree-interpreter step checkpoint
	SiteSolverProp = "pointsto.solve" // points-to propagation checkpoint
	SiteBatchJob   = "batch.job"      // worker-pool job start
	// Server sites, on cmd/detserve's request path. Admit sits outside the
	// per-request guard boundary (a panic there exercises the HTTP-layer
	// recovery middleware); Request sits inside it, mid-analysis.
	SiteServerAdmit   = "server.admit"
	SiteServerRequest = "server.request"
	// Scheduler sites, on the admission scheduler's queue path. Enqueue
	// fires as a request enters admission (before any slot is held);
	// Dispatch fires on the admitted goroutine the moment it is granted an
	// execution slot — schedulers release the slot before re-panicking so
	// an injected dispatch panic can never leak pool capacity.
	SiteSchedEnqueue  = "sched.enqueue"
	SiteSchedDispatch = "sched.dispatch"
	// Cluster sites, on the peer router's remote paths. Forward fires as a
	// request is about to be relayed to its owning peer; CacheGet fires as
	// a remote L3 fact-cache fetch is issued. Both sit inside the router's
	// recovery boundary, so an injected panic degrades to local serving.
	SiteClusterForward  = "cluster.forward"
	SiteClusterCacheGet = "cluster.cacheget"
)

// Action is the fault a plan injects when its trigger count is reached.
type Action int

const (
	// Panic panics with an Injected value at the trigger site, exercising
	// the guard.Boundary recovery paths.
	Panic Action = iota
	// Cancel invokes the plan's OnCancel func (typically the run context's
	// CancelFunc), exercising cooperative cancellation.
	Cancel
	// Expire makes guard.CheckInterrupt report an expired wall-clock
	// deadline from the trigger onward, without racing the real clock.
	Expire
)

func (a Action) String() string {
	switch a {
	case Panic:
		return "panic"
	case Cancel:
		return "cancel"
	case Expire:
		return "expire"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Injected is the panic value used by the Panic action. It implements
// error so recovery layers surface it through *guard.RunError unwrapping.
type Injected struct {
	Site string
	Hit  int64
}

func (e Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", e.Site, e.Hit)
}

// Plan arms one fault. After the fault fires the plan stays installed but
// inert; Disarm removes it. The zero Site matches every site.
type Plan struct {
	// Site restricts the trigger to one instrumented site ("" = any).
	Site string
	// After fires the fault on the After-th matching hit (minimum 1).
	After int64
	// Action selects the injected fault.
	Action Action
	// OnCancel is invoked by the Cancel action.
	OnCancel context.CancelFunc

	hits  atomic.Int64
	fired atomic.Bool
}

// Hits reports how many matching site executions the plan has observed.
func (p *Plan) Hits() int64 { return p.hits.Load() }

// Fired reports whether the fault has been injected.
func (p *Plan) Fired() bool { return p.fired.Load() }

var current atomic.Pointer[Plan]

// Arm installs the plan process-wide. Only test harnesses arm plans; the
// production path never does and pays one atomic load per checkpoint.
func Arm(p *Plan) {
	if p != nil && p.After < 1 {
		p.After = 1
	}
	current.Store(p)
}

// Disarm removes any armed plan.
func Disarm() { current.Store(nil) }

// Armed reports whether a plan is installed. Checkpoint sites guard their
// Hit call with it so the disarmed fast path stays branch-only.
func Armed() bool { return current.Load() != nil }

// Hit marks execution reaching an instrumented site, firing the armed
// plan's fault once its trigger count is reached. Safe for concurrent use
// from pool workers; exactly one hit fires the fault.
func Hit(site string) {
	if p := current.Load(); p != nil {
		p.hit(site)
	}
}

func (p *Plan) hit(site string) {
	if p.Site != "" && p.Site != site {
		return
	}
	n := p.hits.Add(1)
	if n < p.After || !p.fired.CompareAndSwap(false, true) {
		return
	}
	switch p.Action {
	case Panic:
		panic(Injected{Site: site, Hit: n})
	case Cancel:
		if p.OnCancel != nil {
			p.OnCancel()
		}
	case Expire:
		// Nothing to do here: Expired reports the fired state to the
		// deadline check.
	}
}

// Expired reports whether an armed Expire plan has fired. The guard
// deadline check consults it so campaigns can expire deadlines at an exact
// step count instead of racing the wall clock.
func Expired() bool {
	p := current.Load()
	return p != nil && p.Action == Expire && p.fired.Load()
}
