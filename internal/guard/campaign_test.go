// Campaign test: thousands of seeded fault plans — panics, cancellations,
// and deadline expiries at every instrumented site — fired into the full
// public-API pipeline. Run under -race this proves the hard robustness
// contract: no injected fault ever crashes the process, deadlocks a pool,
// or escapes as anything other than a structured *RunError or a sound
// partial Result. Scale with FAULT_CAMPAIGN_RUNS (CI uses 1250).
package guard_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"determinacy"
	"determinacy/internal/guard"
	"determinacy/internal/guard/faultinject"
)

// campaignSrc runs long enough (~55k instrumented steps — about 26
// checkpoint crossings — with a call and an indeterminate branch per
// iteration) that checkpoint-site plans with small trigger counts
// reliably fire mid-run, while one clean run stays around 50ms so the
// full campaign finishes in CI time.
const campaignSrc = `
var obj = {a: 0, b: 1};
function bump(o, i) { o.a = o.a + i; return o.a; }
var r = Math.random();
var i = 0;
while (i < 1500) {
  bump(obj, i);
  if (r < 0.5) { obj.b = obj.b + 1; } else { obj.b = obj.b - 1; }
  i = i + 1;
}
console.log(obj.a);
`

// mix is a splitmix64-style hash for deriving plan parameters from seeds.
func mix(a, b uint64) uint64 {
	h := a ^ (b+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func campaignRuns(t *testing.T, def int) int {
	if s := os.Getenv("FAULT_CAMPAIGN_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad FAULT_CAMPAIGN_RUNS=%q", s)
		}
		return n
	}
	if testing.Short() {
		return def / 10
	}
	return def
}

// TestFaultCampaign is the ISSUE's acceptance campaign: >=1000 seeded
// runs mixing injected panics, deadline expiries, and cancellations
// across the instrumented-interpreter, tree-interpreter, and batch entry
// points. Every outcome must be clean, a partial result with sound
// bookkeeping, or a structured *RunError.
func TestFaultCampaign(t *testing.T) {
	runs := campaignRuns(t, 1000)
	outcomes := map[string]int{}
	count := func(k string) { outcomes[k]++ }

	for seed := uint64(0); seed < uint64(runs); seed++ {
		h := mix(seed, 0xfa017)
		action := faultinject.Action(h % 3) // Panic, Cancel, Expire
		sites := []string{faultinject.SiteCoreStep, faultinject.SiteCoreCall, faultinject.SiteCoreFlush, ""}
		site := sites[(h>>2)%4]
		after := int64(1 + (h>>4)%9)
		mode := (h >> 8) % 4 // analyze, interp, batch, analyze-with-deadline-budget mix

		func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			plan := &faultinject.Plan{Site: site, After: after, Action: action, OnCancel: cancel}
			if mode == 1 {
				plan.Site = faultinject.SiteInterpStep
			}
			if mode == 2 && site == "" {
				plan.Site = faultinject.SiteBatchJob
			}
			faultinject.Arm(plan)
			defer faultinject.Disarm()

			opts := determinacy.Options{Seed: seed, MaxFlushes: 100000}
			// Half the campaign runs on each execution engine, so the
			// robustness contract — structured errors, sound partials,
			// no deadlocks — is proven for the bytecode dispatch loop
			// and the tree walker alike.
			if (h>>10)&1 == 1 {
				opts.Engine = determinacy.EngineTree
			}
			switch mode {
			case 1: // plain tree interpreter
				_, err := determinacy.RunContext(ctx, campaignSrc, opts)
				checkRunOutcome(t, seed, plan, err, count)
			case 2: // batch fan-out over 4 seeds
				opts.Workers = 4
				res, err := determinacy.AnalyzeRunsContext(ctx, campaignSrc, opts, seed, seed+1, seed+2, seed+3)
				checkAnalyzeOutcome(t, seed, plan, res, err, count)
			default: // instrumented analysis
				res, err := determinacy.AnalyzeContext(ctx, campaignSrc, opts)
				checkAnalyzeOutcome(t, seed, plan, res, err, count)
			}
		}()
	}

	t.Logf("campaign outcomes over %d runs: %v", runs, outcomes)
	for _, want := range []string{"panic", "partial-cancel", "partial-deadline", "clean"} {
		if outcomes[want] == 0 {
			t.Errorf("campaign never produced a %q outcome; distribution: %v", want, outcomes)
		}
	}
}

// checkAnalyzeOutcome validates one Analyze/AnalyzeRuns campaign result.
func checkAnalyzeOutcome(t *testing.T, seed uint64, plan *faultinject.Plan, res *determinacy.Result, err error, count func(string)) {
	t.Helper()
	switch {
	case err != nil:
		var re *determinacy.RunError
		if errors.As(err, &re) {
			var inj faultinject.Injected
			if !errors.As(err, &inj) {
				t.Fatalf("seed %d: RunError %v does not unwrap to the injected fault", seed, err)
			}
			count("panic")
			return
		}
		// Batch mode: seeds skipped after a cancellation surface their
		// ctx-wrapped error rather than a RunError.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			count("error-cancelled")
			return
		}
		t.Fatalf("seed %d (plan %+v): unexpected failure kind: %v", seed, plan, err)
	case res == nil:
		t.Fatalf("seed %d: nil result with nil error", seed)
	case res.Partial:
		if res.Stopped == nil {
			t.Fatalf("seed %d: partial result with nil Stopped", seed)
		}
		switch res.Degraded {
		case determinacy.DegradeCancel:
			count("partial-cancel")
		case determinacy.DegradeDeadline:
			count("partial-deadline")
		case determinacy.DegradeBudget, determinacy.DegradeFlushCap:
			count("partial-" + string(res.Degraded))
		default:
			t.Fatalf("seed %d: partial result with unclassified reason %q", seed, res.Degraded)
		}
		// A partial store must still be coherent: rendering facts must not
		// panic and determinate count cannot exceed the total.
		if res.NumDeterminate() > res.NumFacts() {
			t.Fatalf("seed %d: partial store incoherent: %d determinate of %d facts",
				seed, res.NumDeterminate(), res.NumFacts())
		}
		_ = res.Facts()
	default:
		if plan.Fired() && plan.Action != faultinject.Expire {
			// A fired panic/cancel must never yield a silently complete result
			// (Expire can fire after the last checkpoint and go unnoticed).
			if plan.Action == faultinject.Panic {
				t.Fatalf("seed %d: plan fired (%v) but run reported success", seed, plan.Action)
			}
			count("clean-late-cancel")
			return
		}
		count("clean")
	}
}

// checkRunOutcome validates one plain-interpreter campaign result.
func checkRunOutcome(t *testing.T, seed uint64, plan *faultinject.Plan, err error, count func(string)) {
	t.Helper()
	switch {
	case err == nil:
		count("clean")
	case errors.Is(err, context.Canceled):
		count("partial-cancel")
	case errors.Is(err, context.DeadlineExceeded):
		count("partial-deadline")
	default:
		var re *determinacy.RunError
		if !errors.As(err, &re) {
			t.Fatalf("seed %d: interp error %v is neither ctx stop nor RunError", seed, err)
		}
		if re.Phase != "interp" {
			t.Fatalf("seed %d: RunError phase %q, want interp", seed, re.Phase)
		}
		count("panic")
	}
}

// TestInjectedDeadlineYieldsPartialFacts pins the end-to-end deadline
// path: an Expire plan must surface as ErrDeadline, a partial result, and
// the documented exit-code classification.
func TestInjectedDeadlineYieldsPartialFacts(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.Arm(&faultinject.Plan{Site: faultinject.SiteCoreStep, After: 3, Action: faultinject.Expire})
	res, err := determinacy.Analyze(campaignSrc, determinacy.Options{})
	if err != nil {
		t.Fatalf("Analyze returned error %v, want partial result", err)
	}
	if !res.Partial || res.Degraded != determinacy.DegradeDeadline {
		t.Fatalf("Partial=%v Degraded=%q, want partial deadline", res.Partial, res.Degraded)
	}
	if !errors.Is(res.Stopped, determinacy.ErrDeadline) {
		t.Fatalf("Stopped = %v, want ErrDeadline", res.Stopped)
	}
	m := determinacy.NewMetrics()
	res.ExportMetrics(m)
	if got := m.Counter(guard.MetricDegraded).Value(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}
	if got := m.Counter(fmt.Sprintf(guard.MetricDegraded+`{reason=%q}`, "deadline")).Value(); got != 1 {
		t.Fatalf("degraded{deadline} counter = %d, want 1", got)
	}
}

// TestPanicBoundaryReportsProgramPoint checks that a panic mid-execution
// carries the IR instruction and source position it happened at.
func TestPanicBoundaryReportsProgramPoint(t *testing.T) {
	defer faultinject.Disarm()
	faultinject.Arm(&faultinject.Plan{Site: faultinject.SiteCoreCall, After: 10, Action: faultinject.Panic})
	_, err := determinacy.Analyze(campaignSrc, determinacy.Options{})
	var re *determinacy.RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Phase != "exec" || re.Instr < 0 || re.Pos == "" {
		t.Fatalf("RunError = phase %q instr %d pos %q, want exec phase with a program point", re.Phase, re.Instr, re.Pos)
	}
	if len(re.Stack) == 0 {
		t.Fatal("RunError.Stack empty")
	}
}
