package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"determinacy/internal/guard/faultinject"
	"determinacy/internal/obs"
)

func TestCheckInterruptNilAndZero(t *testing.T) {
	if err := CheckInterrupt(nil, time.Time{}); err != nil {
		t.Fatalf("CheckInterrupt(nil, zero) = %v, want nil", err)
	}
	if err := CheckInterrupt(context.Background(), time.Time{}); err != nil {
		t.Fatalf("CheckInterrupt(background, zero) = %v, want nil", err)
	}
}

func TestCheckInterruptCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CheckInterrupt(ctx, time.Time{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want wrapped context.Canceled", err)
	}
	if ContextReason(err) != DegradeCancel {
		t.Fatalf("ContextReason(%v) = %q, want cancel", err, ContextReason(err))
	}
}

func TestCheckInterruptCancelCause(t *testing.T) {
	cause := errors.New("operator hit ^C")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := CheckInterrupt(ctx, time.Time{})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the cancellation cause preserved", err)
	}
}

func TestCheckInterruptDeadline(t *testing.T) {
	past := time.Now().Add(-time.Second)
	err := CheckInterrupt(nil, past)
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrDeadline wrapping DeadlineExceeded", err)
	}
	if ContextReason(err) != DegradeDeadline {
		t.Fatalf("ContextReason = %q, want deadline", ContextReason(err))
	}
	if err := CheckInterrupt(nil, time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("future deadline: err = %v, want nil", err)
	}
}

func TestCheckInterruptInjectedExpiry(t *testing.T) {
	p := &faultinject.Plan{Action: faultinject.Expire, After: 1}
	faultinject.Arm(p)
	defer faultinject.Disarm()
	if err := CheckInterrupt(nil, time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("unfired expire plan tripped the deadline: %v", err)
	}
	faultinject.Hit(faultinject.SiteCoreStep)
	err := CheckInterrupt(nil, time.Now().Add(time.Hour))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("fired expire plan: err = %v, want ErrDeadline", err)
	}
}

func TestBoundaryRecovers(t *testing.T) {
	run := func() (err error) {
		defer Boundary(&err, "exec", func() (int, string) { return 42, "7:3" })
		panic("kaboom")
	}
	err := run()
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *RunError", err, err)
	}
	if re.Phase != "exec" || re.Instr != 42 || re.Pos != "7:3" {
		t.Fatalf("RunError = %+v, want phase exec at 7:3 (instr 42)", re)
	}
	if len(re.Stack) == 0 {
		t.Fatal("RunError.Stack empty, want captured stack")
	}
	if !strings.Contains(re.Error(), "panic in exec phase at 7:3 (instr 42): kaboom") {
		t.Fatalf("Error() = %q", re.Error())
	}
}

func TestBoundaryNoPanicLeavesErrorAlone(t *testing.T) {
	sentinel := errors.New("ordinary failure")
	run := func() (err error) {
		defer Boundary(&err, "exec", nil)
		return sentinel
	}
	if err := run(); err != sentinel {
		t.Fatalf("err = %v, want the function's own return", err)
	}
}

func TestBoundaryNestedKeepsInnermostPhase(t *testing.T) {
	inner := func() (err error) {
		defer Boundary(&err, "solve", nil)
		panic(faultinject.Injected{Site: "pointsto.solve", Hit: 9})
	}
	outer := func() (err error) {
		defer Boundary(&err, "exec", nil)
		if ierr := inner(); ierr != nil {
			panic(ierr.(*RunError))
		}
		return nil
	}
	err := outer()
	var re *RunError
	if !errors.As(err, &re) || re.Phase != "solve" {
		t.Fatalf("err = %v, want inner solve-phase RunError to pass through", err)
	}
	var inj faultinject.Injected
	if !errors.As(err, &inj) || inj.Site != "pointsto.solve" {
		t.Fatalf("err = %v does not unwrap to the injected fault", err)
	}
}

func TestRunErrorUnwrapNonError(t *testing.T) {
	re := New("interp", "plain string panic")
	if re.Unwrap() != nil {
		t.Fatalf("Unwrap of non-error panic = %v, want nil", re.Unwrap())
	}
}

func TestGuardCounters(t *testing.T) {
	m := obs.NewMetrics()
	CountRecovered(m, "exec")
	CountRecovered(m, "exec")
	CountRecovered(m, "batch")
	CountDegraded(m, DegradeDeadline)
	CountDegraded(m, DegradeNone) // ignored
	if got := m.Counter(MetricRecovered).Value(); got != 3 {
		t.Fatalf("recovered total = %d, want 3", got)
	}
	if got := m.Counter(fmt.Sprintf(MetricRecovered+`{phase=%q}`, "exec")).Value(); got != 2 {
		t.Fatalf("recovered{exec} = %d, want 2", got)
	}
	if got := m.Counter(MetricDegraded).Value(); got != 1 {
		t.Fatalf("degraded total = %d, want 1", got)
	}
	// nil registries must be safe no-ops.
	CountRecovered(nil, "exec")
	CountDegraded(nil, DegradeCancel)
}
