package workload

import (
	"fmt"
	"strings"
)

// JQueryVersion names one synthetic library variant. Each variant is
// engineered to embody the per-version characteristic §5.1 attributes the
// Table 1 outcome to:
//
//	1.0: eager reflective initialization — accessor and event-shortcut
//	     methods installed through computed property names in loops (one
//	     needing a 21-fold unroll), plus DOM feature detection;
//	1.1: like 1.0, but the computed names also depend on DOM reads
//	     (userAgent vendor prefix), so without a determinate DOM the
//	     critical writes stay dynamic;
//	1.2: the expensive initialization is lazy: installed behind a ready
//	     callback never invoked without client code, so it is statically
//	     dead; the page-level polling it does at runtime floods the dynamic
//	     analysis with flushes unless the DOM is determinate;
//	1.3: the reflective initialization happens inside event handlers, whose
//	     entry flushes defeat the dynamic analysis even with a determinate
//	     DOM.
type JQueryVersion string

// Supported versions.
const (
	JQ10 JQueryVersion = "1.0"
	JQ11 JQueryVersion = "1.1"
	JQ12 JQueryVersion = "1.2"
	JQ13 JQueryVersion = "1.3"
)

// JQueryVersions lists the Table 1 rows in order.
var JQueryVersions = []JQueryVersion{JQ10, JQ11, JQ12, JQ13}

// attrProps is the 21-name accessor list (the paper: "one loop had to be
// unrolled 21 times to enable specialization of two critical property
// writes").
var attrProps = []string{
	"width", "height", "top", "left", "right", "bottom", "color",
	"background", "border", "margin", "padding", "opacity", "display",
	"position", "overflow", "visibility", "zIndex", "fontSize",
	"lineHeight", "minWidth", "maxWidth",
}

// eventNames generates the event shortcut methods, jQuery-style.
var eventNames = []string{
	"click", "dblclick", "focus", "blur", "submit", "change", "select",
	"keydown", "keypress", "keyup", "mouseover", "mouseout", "mousedown",
	"mouseup", "mousemove", "load", "unload", "error", "resize", "scroll",
}

func jsStringArray(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	return "[" + strings.Join(quoted, ", ") + "]"
}

// jqCore is the version-independent part of the library: the polymorphic
// constructor (Figure 1's $), the method table, and utilities.
const jqCore = `
function jQuery(selector) {
	if (typeof selector === "string") {
		if (selector.charAt(0) === "<") {
			var holder = document.createElement("div");
			holder.innerHTML = selector;
			this.elems = [holder.firstChild];
		} else if (selector.charAt(0) === "#") {
			this.elems = [document.getElementById(selector.substr(1))];
		} else {
			this.elems = document.getElementsByTagName(selector);
		}
	} else if (typeof selector === "function") {
		jQuery.readyList.push(selector);
		this.elems = [];
	} else {
		this.elems = [selector];
	}
	this.length = this.elems.length;
	this.attrCache = {};
	this.handlers = {};
	this.defaults = {};
	this.dirty = {};
}
jQuery.readyList = [];
jQuery.fn = jQuery.prototype;

jQuery.fn.get = function(i) { return this.elems[i]; };
jQuery.fn.size = function() { return this.length; };
jQuery.fn.each = function(fn) {
	for (var ei = 0; ei < this.elems.length; ei++) {
		fn.call(this.elems[ei], ei);
	}
	return this;
};
jQuery.fn.bind = function(type, fn) {
	this.handlers[type] = fn;
	return this;
};
jQuery.fn.trigger = function(type) {
	var h = this.handlers[type];
	if (h) { h.call(this); }
	return this;
};
jQuery.fn.attr = function(name, value) {
	if (value === undefined) { return this.attrCache[name]; }
	this.attrCache[name] = value;
	return this;
};
jQuery.fn.html = function(markup) {
	this.each(function() { this.innerHTML = markup; });
	return this;
};
jQuery.fn.defaultFor = function(name) { return this.defaults[name]; };
jQuery.fn.invalidate = function(name) {
	this.dirty[name] = true;
	return this;
};
jQuery.fn.notify = function(name, v) {
	var h = this.handlers[name];
	if (h) { h.call(this, v); }
	return this;
};
jQuery.extend = function(target, source) {
	for (var k in source) { target[k] = source[k]; }
	return target;
};
function $(s) { return new jQuery(s); }

function cap(s) { return s.charAt(0).toUpperCase() + s.substr(1); }
`

// jqAccessorLoop installs the 21 get/set accessor pairs through computed
// property names; prefixExpr lets 1.1 make the names DOM-dependent.
func jqAccessorLoop(prefixGet, prefixSet string) string {
	return fmt.Sprintf(`
var attrProps = %s;
function defAccessor(name) {
	jQuery.fn[%s + cap(name)] = function() {
		var cached = this.attr(name);
		if (cached === undefined) { cached = this.defaultFor(name); }
		return cached;
	};
	jQuery.fn[%s + cap(name)] = function(v) {
		this.attr(name, v);
		this.invalidate(name);
		return this.notify(name, v);
	};
}
for (var pi = 0; pi < attrProps.length; pi++) {
	defAccessor(attrProps[pi]);
}
`, jsStringArray(attrProps), prefixGet, prefixSet)
}

// jqHooksLoop installs per-property css hook objects through computed
// names, a second reflective population that the baseline smears together
// with everything else.
const jqHooksLoopSrc = `
jQuery.cssHooks = {};
function defHook(name) {
	var hook = {
		prop: name,
		get: function(el) { return el.attr(name); },
		set: function(el, v) { el.attr(name, v); return el; }
	};
	jQuery.cssHooks["hook" + cap(name)] = hook;
	jQuery.fn["css" + cap(name)] = function(v) {
		var h = jQuery.cssHooks["hook" + cap(name)];
		if (v === undefined) { return h.get(this); }
		return h.set(this, v);
	};
}
for (var hi = 0; hi < attrProps.length; hi++) {
	defHook(attrProps[hi]);
}
`

// jqEventLoop installs the event shortcut methods.
const jqEventLoopSrc = `
function defShortcut(type) {
	jQuery.fn[type] = function(fn) {
		if (fn === undefined) { return this.trigger(type); }
		return this.bind(type, fn);
	};
}
for (var si = 0; si < eventNames.length; si++) {
	defShortcut(eventNames[si]);
}
`

// jqFeatureDetect performs browser feature detection against the DOM; its
// results are indeterminate without the DetDOM assumption.
const jqFeatureDetect = `
var testDiv = document.createElement("div");
testDiv.innerHTML = "<link/><table></table><a href='x'>a</a>";
jQuery.support = {
	htmlSerialize: testDiv.getElementsByTagName("link").length > 0,
	tbody: testDiv.getElementsByTagName("tbody").length === 0,
	anchors: testDiv.getElementsByTagName("a").length === 1
};
var ua = navigator.userAgent;
jQuery.browser = {
	mozilla: ua.indexOf("Gecko") >= 0,
	msie: ua.indexOf("MSIE") >= 0,
	webkit: ua.indexOf("WebKit") >= 0
};
if (jQuery.browser.msie) {
	jQuery.fn.fixAttach = function(type, fn) {
		var probe = document.createElement("span");
		probe.setAttribute("data-ev", type);
		return this.bind(type, fn);
	};
}
if (!jQuery.support.htmlSerialize) {
	jQuery.fn.cleanHTML = function(h) {
		var wrapper = document.createElement("div");
		wrapper.innerHTML = "<div>" + h + "</div>";
		return wrapper.firstChild;
	};
}
// Normalization pass over the document: per-element dispatch on DOM state.
// Every callee lookup below is DOM-derived, so without the DetDOM
// assumption each call is indeterminate and costs a heap flush — the bulk
// of the flush counts in Table 1's Spec column.
function normBlock(el) { el.setAttribute("data-norm", "block"); return 1; }
function normInline(el) { el.setAttribute("data-norm", "inline"); return 2; }
var allElems = document.getElementsByTagName("*");
for (var ni = 0; ni < allElems.length; ni++) {
	var el = allElems[ni];
	var normalizer = el.tagName === "DIV" ? normBlock : normInline;
	normalizer(el);
}
`

// jqExpando models jQuery's unique expando stamping: the id derives from
// Date.now, an indeterminate source even under the DetDOM assumption, so
// the dispatch below accounts for the small residual flush counts in the
// Spec+DetDOM column.
const jqExpando = `
jQuery.expando = "jq" + Date.now();
function stampEven(o) { o[jQuery.expando] = 0; return o; }
function stampOdd(o) { o[jQuery.expando] = 1; return o; }
var stamper = Date.now() - Math.floor(Date.now()) >= 0 && Date.now() % 2 === 0 ? stampEven : stampOdd;
stamper(jQuery.fn);
`

// jqUsage exercises the installed API so the call sites the static analysis
// must resolve are real.
const jqUsage = `
var box = $("#main");
box.setWidth(100).setHeight(50).setColor("red");
var w = box.getWidth();
var h = box.getHeight();
box.setTop(w + h).setLeft(w - h);
box.attr("title", "box");
box.cssOpacity(0.5);
var side = $("#content");
side.setMargin(4).setPadding(8);
side.cssBorder("1px");
var banner = $("#banner");
banner.setBackground("blue").setDisplay("block");
$("#content").each(function(i) { var el = this; });
$("div").bind("refresh", function() { return 1; });
var items = $("ul");
items.click(function() { return items.size(); });
items.keyup(function() { return 2; });
items.mouseover(function() { return banner.getBackground(); });
var form = $("#mainform");
form.submit(function() { return form.attr("title"); });
form.setVisibility("hidden");
window.jQuery = jQuery;
window.$ = $;
`

// JQuery returns the synthetic library source for a version. The page
// driver (tests and benchmarks) appends nothing: each source is a complete
// program run against the DOM emulation.
func JQuery(v JQueryVersion) string {
	var b strings.Builder
	b.WriteString("var eventNames = " + jsStringArray(eventNames) + ";\n")
	switch v {
	case JQ10:
		b.WriteString(jqCore)
		b.WriteString(jqAccessorLoop(`"get"`, `"set"`))
		b.WriteString(jqHooksLoopSrc)
		b.WriteString(jqEventLoopSrc)
		b.WriteString(jqFeatureDetect)
		b.WriteString(jqUsage)
		b.WriteString(jqExpando)
	case JQ11:
		b.WriteString(jqCore)
		// The vendor prefix is computed from the user agent: a DOM read.
		b.WriteString(`
var vendor = navigator.userAgent.indexOf("Gecko") >= 0 ? "get" : "Get";
var vendorSet = navigator.userAgent.indexOf("Gecko") >= 0 ? "set" : "Set";
`)
		b.WriteString(jqAccessorLoop("vendor", "vendorSet"))
		b.WriteString(jqHooksLoopSrc)
		b.WriteString(jqEventLoopSrc)
		b.WriteString(jqFeatureDetect)
		b.WriteString(jqUsage)
		b.WriteString(jqExpando)
		b.WriteString(`
// 1.1 also stamps a session nonce the same indeterminate way.
var nonceStamper = Date.now() % 3 === 0 ? stampEven : stampOdd;
nonceStamper(jQuery.readyList);
`)
	case JQ12:
		b.WriteString(jqCore)
		// Lazy initialization: the reflective setup only runs from ready(),
		// which no code on this page calls — statically dead without
		// client code (the paper: "complex initialization code executes
		// lazily; without client code, this code is dead").
		b.WriteString(`
jQuery.initialized = false;
jQuery.initialize = function() {
	if (jQuery.initialized) { return; }
	jQuery.initialized = true;
` + jqAccessorLoop(`"get"`, `"set"`) + jqEventLoopSrc + `
};
jQuery.ready = function() {
	jQuery.initialize();
	for (var ri = 0; ri < jQuery.readyList.length; ri++) {
		jQuery.readyList[ri].call(document);
	}
};
// Page-level polling: every tick reads mutable DOM state and dispatches on
// it, flooding the analysis with indeterminate calls unless the DOM is
// assumed determinate.
function poll() {
	var state = document.readyState;
	var probes = [function() { return 1; }, function() { return 2; }];
	for (var qi = 0; qi < 1200; qi++) {
		var pick = probes[state === "loading" ? 0 : 1];
		pick();
	}
}
poll();
window.jQuery = jQuery;
window.$ = $;
`)
	case JQ13:
		b.WriteString(jqCore)
		b.WriteString("var attrProps = " + jsStringArray(attrProps) + ";\n")
		// The reflective initialization moved inside the ready event
		// handler; handler entry flushes the heap (§4), so the property
		// name list is indeterminate by the time the critical writes run.
		b.WriteString(`
jQuery.propList = ` + jsStringArray(attrProps) + `;
document.addEventListener("DOMContentLoaded", function() {
	var names = jQuery.propList;
	for (var pi = 0; pi < names.length; pi++) {
		defAccessor(names[pi]);
	}
	for (var si = 0; si < eventNames.length; si++) {
		defShortcut(eventNames[si]);
	}
	jQuery.cssHooks = {};
	for (var hi = 0; hi < names.length; hi++) {
		defHook(names[hi]);
	}
	// Boot sequence: exercise the freshly installed API. By handler-entry
	// flushing, everything here is indeterminate to the dynamic analysis.
	var box = $("#main");
	box.cssOpacity(0.5);
	box.cssBorder("1px");
	box.setWidth(100).setHeight(50).setColor("red");
	box.setTop(box.getWidth() + box.getHeight()).setLeft(1);
	var side = $("#content");
	side.setMargin(4).setPadding(8);
	var banner = $("#banner");
	banner.setBackground("blue").setDisplay("block");
	var items = $("ul");
	items.click(function() { return items.size(); });
	items.keyup(function() { return 2; });
	items.mouseover(function() { return banner.getBackground(); });
	var form = $("#mainform");
	form.submit(function() { return form.attr("title"); });
	form.setVisibility("hidden");
});
function defAccessor(name) {
	jQuery.fn["get" + cap(name)] = function() {
		var cached = this.attr(name);
		if (cached === undefined) { cached = this.defaultFor(name); }
		return cached;
	};
	jQuery.fn["set" + cap(name)] = function(v) {
		this.attr(name, v);
		this.invalidate(name);
		return this.notify(name, v);
	};
}
function defShortcut(type) {
	jQuery.fn[type] = function(fn) {
		if (fn === undefined) { return this.trigger(type); }
		return this.bind(type, fn);
	};
}
function defHook(name) {
	var hook = {
		prop: name,
		get: function(el) { return el.attr(name); },
		set: function(el, v) { el.attr(name, v); return el; }
	};
	jQuery.cssHooks["hook" + cap(name)] = hook;
	jQuery.fn["css" + cap(name)] = function(v) {
		var h = jQuery.cssHooks["hook" + cap(name)];
		if (v === undefined) { return h.get(this); }
		return h.set(this, v);
	};
}
// Live-event dispatch handler: every event replays the handler table
// through indeterminate lookups, so each entry costs a flush and the
// flush budget drains.
document.addEventListener("dispatch", function(ev) {
	var table = [function() { return 1; }, function() { return 2; }];
	for (var di = 0; di < 1200; di++) {
		var f = table[Math.random() < 0.5 ? 0 : 1];
		f();
	}
});
`)
		b.WriteString(jqFeatureDetect)
		b.WriteString(`
window.jQuery = jQuery;
window.$ = $;
var lateBox = $("#main");
lateBox.attr("probe", 1);
`)
	}
	return b.String()
}
