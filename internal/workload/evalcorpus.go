package workload

// EvalBenchmark is one program of the synthetic eval-elimination corpus,
// modeled on the Jensen et al. [17] suite used in §5.2. Each program
// embodies one of the outcome categories the paper reports; the pipeline in
// internal/evalelim classifies them by actually running the analysis, not
// by reading these annotations.
type EvalBenchmark struct {
	Name   string
	Source string
	// Runnable is false for the four programs the paper had to disregard
	// ("3 benchmarks that are missing required code, and one that cannot be
	// run in ZombieJS").
	Runnable bool
	// SyntacticConst marks benchmarks whose eval argument is a syntactic
	// constant at the call site, i.e. the fragment a purely syntactic
	// rewriter (unevalizer-style) can also handle.
	SyntacticConst bool
	// Note describes the embodied category for documentation.
	Note string
}

// EvalCorpus returns the 28 benchmarks.
func EvalCorpus() []EvalBenchmark {
	var out []EvalBenchmark
	add := func(name, note, src string, runnable, syntactic bool) {
		out = append(out, EvalBenchmark{Name: name, Source: src, Runnable: runnable, SyntacticConst: syntactic, Note: note})
	}

	// --- 1-14: fully specializable without the DetDOM assumption. ---

	add("const-expr", "literal eval argument", `
var r = eval("6 * 7");
console.log(r);
`, true, true)

	add("const-global", "literal eval reading a global", `
var config = {mode: "fast", depth: 3};
var depth = eval("config.depth");
console.log(depth);
`, true, true)

	add("const-call", "literal eval invoking a function", `
function double(x) { return x + x; }
var r = eval("double(21)");
console.log(r);
`, true, true)

	add("concat-ivymap", "Figure 4: argument built by string concatenation", `
var ivymap = window.ivymap || {};
ivymap["pc.sy.banner.tcck."] = function() { console.log("tcck"); };
ivymap["pc.sy.banner.duilian."] = function() { console.log("duilian"); };
function showIvyViaJs(locationId) {
	var _f = undefined;
	var _fconv = "ivymap['" + locationId + "']";
	try {
		_f = eval(_fconv);
		if (_f != undefined) {
			_f();
		}
	} catch (e) {
	}
}
showIvyViaJs('pc.sy.banner.tcck.');
showIvyViaJs('pc.sy.banner.duilian.');
`, true, false)

	add("concat-field", "argument concatenated from a determinate variable", `
var registry = {alpha: 1, beta: 2};
var which = "alpha";
var v = eval("registry." + which);
console.log(v);
`, true, false)

	add("loop-det-array", "eval in a loop with a determinate bound", `
var handlers = {h0: function(){return 0;}, h1: function(){return 1;}};
var names = ["h0", "h1"];
var sum = 0;
for (var i = 0; i < names.length; i++) {
	var f = eval("handlers." + names[i]);
	sum = sum + f();
}
console.log(sum);
`, true, false)

	add("forin-det", "eval driven by for-in over a determinate object", `
var fields = {width: 10, height: 20};
var total = 0;
for (var key in fields) {
	total = total + eval("fields." + key);
}
console.log(total);
`, true, false)

	add("eval-defines-fn", "eval result called later", `
var mk = eval("(function(n) { return n + 1; })");
console.log(mk(41));
`, true, true)

	add("eval-ternary-arg", "argument from a determinate conditional", `
var debug = false;
var expr = debug ? "1 + 1" : "2 + 2";
var r = eval(expr);
console.log(r);
`, true, false)

	add("eval-nested", "eval of code containing eval", `
var inner = eval("eval('5 + 5')");
console.log(inner);
`, true, true)

	add("eval-json-like", "configuration object from eval", `
var cfg = eval("({retries: 3, verbose: false})");
console.log(cfg.retries);
`, true, true)

	add("eval-fn-table", "dispatch table key determinate via branch pruning", `
var ops = {add: function(a, b) { return a + b; }, mul: function(a, b) { return a * b; }};
var mode = "add";
var op;
if (mode === "add") {
	op = eval("ops.add");
} else {
	op = eval("ops.mul");
}
console.log(op(2, 3));
`, true, false)

	add("eval-var-indirection", "argument passes through locals", `
function run(code) {
	var snippet = code;
	return eval(snippet);
}
console.log(run("3 + 4"));
`, true, false)

	add("eval-getter-gen", "accessor body built by concatenation", `
var model = {width: 7};
function makeGetter(prop) {
	return eval("(function() { return model." + prop + "; })");
}
var getWidth = makeGetter("width");
console.log(getWidth());
`, true, false)

	// --- 15: genuinely indeterminate argument. ---
	add("indet-input", "eval of user input: genuinely indeterminate", `
var code = "" + __input("expr");
var r = 0;
try { r = eval(code); } catch (e) { r = -1; }
console.log(r);
`, true, false)

	// --- 16-19: uses not covered by the dynamic analysis but statically
	// reachable (WALA-reachable, in the paper's terms). 16 and 17 sit in
	// dispatch-table entries selected by indeterminate input, so the
	// dynamic run never enters them while the static call graph does. 18
	// and 19 are guarded by DOM-dependent branches containing DOM calls
	// (which abort counterfactual exploration); a determinate DOM resolves
	// the guards to false, letting branch pruning remove the eval (the
	// paper's "detection of unreachable code"). ---
	add("uncovered-dispatch", "eval in an input-selected dispatch-table entry", `
function plainMode() { return "plain"; }
function richMode() { return eval("'rich:' + 'mode'"); }
var table = {plain: plainMode, rich: richMode};
var pick = __input("mode") ? "rich" : "plain";
var handler = table[pick];
console.log(handler());
`, true, true)

	add("uncovered-command", "eval in a command handler the run never selects", `
var commands = {};
commands.help = function() { return "usage: ..."; };
commands.exec = function(arg) { return eval("1 + " + arg); };
function run(name, arg) {
	var c = commands[name];
	if (c) { return c(arg); }
	return "unknown";
}
console.log(run(__input("cmd") ? "exec" : "help", "2"));
`, true, false)

	add("uncovered-dom-branch", "eval behind a DOM feature test (prunable with DetDOM)", `
var probe = document.createElement("canvas");
if (probe.tagName !== "CANVAS") {
	var shimDiv = document.createElement("div");
	shimDiv.setAttribute("role", "canvas-shim");
	console.log(eval("'no canvas support'"));
}
console.log("checked");
`, true, true)

	add("uncovered-dom-legacy", "legacy-browser eval path (prunable with DetDOM)", `
var ua = navigator.userAgent;
if (ua.indexOf("MSIE 6") >= 0) {
	var marker = document.createElement("div");
	marker.setAttribute("class", "ie6");
	document.body.appendChild(marker);
	var shim = eval("(function(){ return 'shimmed'; })");
	console.log(shim());
}
console.log("modern");
`, true, true)

	// --- 20: heap flush makes the callee of eval indeterminate; DetDOM
	// avoids the flush. ---
	add("indet-callee", "eval reference stored on the heap across DOM flushes", `
var util = {};
util.e = eval;
function domNoise() {
	var els = document.getElementsByTagName("div");
	for (var i = 0; i < els.length; i++) {
		var act = els[i].tagName === "DIV" ? markA : markB;
		act(els[i]);
	}
}
function markA(el) { el.setAttribute("m", "a"); return 1; }
function markB(el) { el.setAttribute("m", "b"); return 2; }
domNoise();
console.log(util.e("20 + 22"));
`, true, false)

	// --- 21-24: eval inside loops. 21-23 have DOM-derived bounds
	// (determinate under DetDOM, enabling unrolling); 24 is truly
	// indeterminate. ---
	add("loop-dom-bound-1", "loop bound from childNodes.length", `
var kids = document.getElementById("items").childNodes;
var acc = 0;
var exprs = ["1", "2", "3"];
for (var i = 0; i < kids.length; i++) {
	acc = acc + eval(exprs[i]);
}
console.log(acc);
`, true, false)

	add("loop-dom-bound-2", "loop bound from getElementsByTagName", `
var rows = document.getElementsByTagName("li");
var total = 0;
var weights = {w0: 1, w1: 2, w2: 3};
for (var i = 0; i < rows.length; i++) {
	total = total + eval("weights.w" + i);
}
console.log(total);
`, true, false)

	add("loop-dom-bound-3", "loop bound derived from document.title", `
var title = document.title;
var count = title.charAt(0) === "d" ? 2 : 3;
var out = 0;
for (var i = 0; i < count; i++) {
	out = out + eval("10 + " + i);
}
console.log(out);
`, true, false)

	add("loop-indet-bound", "loop bound genuinely indeterminate", `
var n = Math.floor(Math.random() * 3) + 1;
var s = 0;
for (var i = 0; i < n; i++) {
	s = s + eval("2 * " + i);
}
console.log(s);
`, true, false)

	// --- 25-27: missing required code (cannot run). ---
	add("missing-lib-1", "calls a library that is not part of the benchmark", `
initTracker();
console.log(eval("tracker.id"));
`, false, false)

	add("missing-lib-2", "reads globals an absent script defines", `
var widget = WidgetFactory.create("main");
widget.render(eval("widget.template"));
`, false, false)

	add("missing-lib-3", "requires an absent module loader", `
var mod = require("analytics");
mod.send(eval("payload"));
`, false, false)

	// --- 28: cannot run under the DOM emulation. ---
	add("unsupported-dom", "uses a DOM API the emulator does not provide", `
var ctx = document.getElementById("main").getContext("2d");
ctx.fillRect(0, 0, 10, 10);
console.log(eval("'drawn'"));
`, false, false)

	return out
}
